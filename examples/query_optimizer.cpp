// Query-optimizer statistics in one pass (Section 1.1): while loading a
// "orders" table, maintain (a) a selectivity summary over order amounts for
// range-predicate estimation [SALP79], and (b) per-region p50/p95 latency
// aggregates the way a Group By plan computes many quantile aggregates at
// once (Section 1.3). Everything is one scan, constant memory per summary,
// no knowledge of the final table size.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "app/group_by.h"
#include "app/selectivity.h"
#include "stream/distribution.h"
#include "util/random.h"

int main() {
  constexpr std::size_t kRows = 1'500'000;
  constexpr int kRegions = 6;

  mrl::SelectivityEstimator::Options sel_options;
  sel_options.eps = 0.005;
  sel_options.delta = 1e-4;
  sel_options.seed = 3;
  mrl::SelectivityEstimator amounts =
      std::move(mrl::SelectivityEstimator::Create(sel_options)).value();

  mrl::GroupByQuantiles::Options gb_options;
  gb_options.eps = 0.01;
  gb_options.delta = 1e-4;
  gb_options.seed = 5;
  mrl::GroupByQuantiles latency_by_region =
      std::move(mrl::GroupByQuantiles::Create(gb_options)).value();

  // Synthesize the load: amounts are log-normal; latency depends on the
  // region (farther regions are slower and noisier). Ground truth counters
  // are kept only to grade the estimates afterwards.
  mrl::Random rng(7);
  mrl::LogNormalDistribution amount_dist(3.0, 1.2);
  std::uint64_t truth_under_50 = 0, truth_50_to_200 = 0;
  for (std::size_t i = 0; i < kRows; ++i) {
    const double amount = amount_dist.Draw(&rng);
    amounts.Add(amount);
    if (amount <= 50.0) ++truth_under_50;
    if (amount > 50.0 && amount <= 200.0) ++truth_50_to_200;

    const std::int64_t region =
        static_cast<std::int64_t>(rng.UniformUint64(kRegions));
    const double latency =
        5.0 + 3.0 * static_cast<double>(region) +
        rng.Exponential(1.0 / (1.0 + 0.5 * static_cast<double>(region)));
    latency_by_region.Add(region, latency);
  }

  std::printf("loaded %zu rows; optimizer summaries use %llu + %llu stored "
              "elements\n\n",
              kRows,
              static_cast<unsigned long long>(amounts.MemoryElements()),
              static_cast<unsigned long long>(
                  latency_by_region.MemoryElements()));

  std::printf("selectivity of range predicates on amount:\n");
  const double n = static_cast<double>(kRows);
  std::printf("  %-28s %10s %10s\n", "predicate", "estimate", "truth");
  std::printf("  %-28s %10.4f %10.4f\n", "amount <= 50",
              amounts.LessOrEqual(50.0).value(),
              static_cast<double>(truth_under_50) / n);
  std::printf("  %-28s %10.4f %10.4f\n", "50 < amount <= 200",
              amounts.Range(50.0, 200.0).value(),
              static_cast<double>(truth_50_to_200) / n);

  std::printf("\nper-region latency aggregates (GROUP BY region):\n");
  std::printf("  %-8s %12s %10s %10s\n", "region", "rows", "p50", "p95");
  std::vector<std::int64_t> keys = latency_by_region.Keys();
  std::sort(keys.begin(), keys.end());
  for (std::int64_t region : keys) {
    std::printf("  %-8lld %12llu %10.3f %10.3f\n",
                static_cast<long long>(region),
                static_cast<unsigned long long>(
                    latency_by_region.GroupCount(region)),
                latency_by_region.Query(region, 0.5).value(),
                latency_by_region.Query(region, 0.95).value());
  }
  return 0;
}
