// Splitter computation for value-range partitioning (Section 1.1 / Section
// 6): a parallel database loading a table across P nodes needs splitters
// dividing the key space into approximately equal parts. Each node scans
// its own shard independently (one thread each, no communication), ships a
// couple of buffers to a coordinator, and the coordinator emits splitters
// for the union.

#include <cstdio>
#include <vector>

#include "app/splitters.h"
#include "stream/generator.h"

int main() {
  constexpr int kNodes = 8;
  constexpr int kParts = 16;

  // Each node holds a differently-seeded (and differently-skewed) shard:
  // shard i sees values biased toward its own range, as happens when data
  // was previously range-partitioned by an outdated key.
  std::vector<std::vector<mrl::Value>> shards;
  std::size_t total = 0;
  for (int i = 0; i < kNodes; ++i) {
    mrl::StreamSpec spec;
    spec.distribution = (i % 2 == 0) ? "gaussian" : "exponential";
    spec.n = 150'000 + static_cast<std::size_t>(i) * 40'000;
    spec.seed = 100 + static_cast<std::uint64_t>(i);
    auto values = mrl::GenerateStream(spec).values();
    // Shift each shard so ranges overlap only partially.
    for (mrl::Value& v : values) v += 0.5 * i;
    total += values.size();
    shards.push_back(std::move(values));
  }
  std::printf("%d nodes, %zu rows total\n\n", kNodes, total);

  mrl::SplitterOptions options;
  options.num_parts = kParts;
  options.eps = 0.002;  // each splitter within 0.2% of its target rank
  options.delta = 1e-4;
  options.seed = 9;
  mrl::Result<std::vector<mrl::Value>> splitters =
      mrl::ComputeSplittersParallel(shards, options);
  if (!splitters.ok()) {
    std::fprintf(stderr, "%s\n", splitters.status().ToString().c_str());
    return 1;
  }

  std::printf("%-10s %12s\n", "splitter", "value");
  for (std::size_t i = 0; i < splitters.value().size(); ++i) {
    std::printf("%-10zu %12.5f\n", i + 1, splitters.value()[i]);
  }

  // Validate against the materialized union: how unbalanced is the worst
  // partition?
  std::vector<mrl::Value> all;
  all.reserve(total);
  for (const auto& s : shards) all.insert(all.end(), s.begin(), s.end());
  double skew = mrl::MaxPartitionSkew(all, splitters.value());
  std::printf(
      "\nworst partition deviates %.4f%% of N from the ideal %zu rows "
      "(guarantee: ~%.2f%%)\n",
      100.0 * skew, total / kParts, 100.0 * 2 * options.eps);
  return skew <= 2 * options.eps + 0.005 ? 0 : 1;
}
