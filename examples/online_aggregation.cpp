// Online aggregation (Section 1.5, [Hel97]): a long scan over a
// disk-resident file drives a progress display whose quantile estimates
// refine as the scan proceeds. Because the unknown-N guarantee covers
// every prefix and Output never destroys state, the estimates shown at 10%
// of the scan are just as trustworthy (relative to the rows seen) as the
// final ones.

#include <cstdio>
#include <string>

#include "app/online_aggregation.h"
#include "stream/file_stream.h"
#include "stream/generator.h"

int main() {
  // Materialize a "table" on disk: 3 million rows, bimodal values (two
  // customer populations).
  const std::string path = "/tmp/mrlquant_online_aggregation.bin";
  {
    mrl::StreamSpec spec;
    spec.distribution = "gaussian";
    spec.n = 3'000'000;
    spec.seed = 23;
    auto values = mrl::GenerateStream(spec).values();
    for (std::size_t i = 0; i < values.size(); i += 3) {
      values[i] += 8.0;  // second mode
    }
    mrl::Status st = mrl::WriteValuesFile(path, values);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }

  mrl::OnlineAggregator::Options options;
  options.eps = 0.005;
  options.delta = 1e-4;
  options.tracked_phis = {0.1, 0.5, 0.9};
  options.report_every = 300'000;
  options.seed = 29;
  mrl::OnlineAggregator aggregator =
      std::move(mrl::OnlineAggregator::Create(options)).value();

  // Single buffered pass over the file.
  mrl::FileValueReader reader;
  mrl::Status st = reader.Open(path);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  mrl::Value v;
  while (reader.Next(&v)) aggregator.Add(v);
  if (!reader.status().ok()) {
    std::fprintf(stderr, "%s\n", reader.status().ToString().c_str());
    return 1;
  }

  std::printf("progress of the scan (estimates refine as rows arrive):\n");
  std::printf("%12s %10s %10s %10s\n", "rows seen", "p10", "median", "p90");
  for (const auto& snap : aggregator.history()) {
    std::printf("%12llu %10.4f %10.4f %10.4f\n",
                static_cast<unsigned long long>(snap.rows_seen),
                snap.estimates[0], snap.estimates[1], snap.estimates[2]);
  }
  auto final_estimates = aggregator.Current().value();
  std::printf("%12s %10.4f %10.4f %10.4f  <- final\n", "all",
              final_estimates[0], final_estimates[1], final_estimates[2]);
  std::remove(path.c_str());
  return 0;
}
