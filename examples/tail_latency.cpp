// Extreme quantiles with tiny memory (Section 7): estimating p99.9 of a
// latency-like, heavily right-skewed stream. The specialized estimator
// keeps only the k largest sampled elements — far less than the general
// algorithm needs — because the rank distribution of an extreme order
// statistic of a random sample clusters more tightly than the median's.

#include <cstdio>

#include "core/extreme.h"
#include "core/params.h"
#include "stream/generator.h"

int main() {
  const double phi = 0.999;   // p99.9
  const double eps = 0.0005;  // within 0.05% of N in rank
  const double delta = 1e-4;

  mrl::StreamSpec spec;
  spec.distribution = "exponential";  // long right tail, like latencies
  spec.n = 5'000'000;
  spec.seed = 13;
  mrl::Dataset latencies = mrl::GenerateStream(spec);

  // --- Specialized extreme-value sketch (knows N) --------------------
  mrl::ExtremeValueOptions options;
  options.phi = phi;
  options.eps = eps;
  options.delta = delta;
  options.n = latencies.size();
  options.seed = 17;
  mrl::ExtremeValueSketch sketch =
      std::move(mrl::ExtremeValueSketch::Create(options)).value();
  for (mrl::Value v : latencies.values()) sketch.Add(v);

  mrl::Value est = sketch.Query(phi).value();
  std::printf("extreme-value sketch (Section 7):\n");
  std::printf("  p99.9 estimate : %.5f\n", est);
  std::printf("  exact p99.9    : %.5f\n", latencies.ExactQuantile(phi));
  std::printf("  rank error     : %.6f (guarantee %.6f)\n",
              latencies.QuantileError(est, phi), eps);
  std::printf("  memory         : %llu elements (sample size %llu)\n",
              static_cast<unsigned long long>(sketch.MemoryElements()),
              static_cast<unsigned long long>(sketch.sizing().sample_size));

  // --- What the general-purpose algorithm would need -----------------
  std::uint64_t general =
      mrl::UnknownNMemoryElements(eps, delta).value_or(0);
  std::printf("\ngeneral unknown-N sketch at the same (eps, delta): %llu "
              "elements\n",
              static_cast<unsigned long long>(general));
  std::printf("memory ratio: %.1fx smaller for the extreme estimator\n\n",
              static_cast<double>(general) /
                  static_cast<double>(sketch.MemoryElements()));

  // --- Unknown-N variant (our extension) ------------------------------
  mrl::AdaptiveExtremeValueSketch::Options adaptive_options;
  adaptive_options.phi = phi;
  adaptive_options.eps = eps;
  adaptive_options.delta = delta;
  adaptive_options.seed = 19;
  mrl::AdaptiveExtremeValueSketch adaptive =
      std::move(mrl::AdaptiveExtremeValueSketch::Create(adaptive_options))
          .value();
  for (mrl::Value v : latencies.values()) adaptive.Add(v);
  mrl::Value adaptive_est = adaptive.Query(phi).value();
  std::printf("adaptive (unknown-N) variant:\n");
  std::printf("  p99.9 estimate : %.5f (rank error %.6f)\n", adaptive_est,
              latencies.QuantileError(adaptive_est, phi));
  std::printf("  memory         : %llu elements, final sample rate %.5f\n",
              static_cast<unsigned long long>(adaptive.MemoryElements()),
              adaptive.sample_probability());
  return 0;
}
