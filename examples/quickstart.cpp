// Quickstart: compute approximate quantiles of a stream whose length is not
// known in advance — the headline capability of MRL99.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/unknown_n.h"
#include "stream/generator.h"

int main() {
  // 1. Create a sketch: answers are within eps of the true rank with
  //    probability at least 1 - delta, for ANY stream length and order.
  mrl::UnknownNOptions options;
  options.eps = 0.01;    // rank error at most 1% of the stream length
  options.delta = 1e-4;  // ... with probability 99.99%
  options.seed = 42;
  mrl::Result<mrl::UnknownNSketch> created =
      mrl::UnknownNSketch::Create(options);
  if (!created.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  mrl::UnknownNSketch& sketch = created.value();
  std::printf("sketch memory: %llu elements (b=%d buffers of k=%zu)\n\n",
              static_cast<unsigned long long>(sketch.MemoryElements()),
              sketch.params().b, sketch.params().k);

  // 2. Feed it a stream — here 2 million Gaussian values; in a DBMS this
  //    would be a single scan of a table column. AddBatch is the fast
  //    path: it ingests a whole span with per-block instead of per-element
  //    work, and is bit-identical to element-wise Add under the same seed.
  mrl::StreamSpec spec;
  spec.distribution = "gaussian";
  spec.n = 2'000'000;
  spec.seed = 7;
  mrl::Dataset data = mrl::GenerateStream(spec);
  sketch.AddBatch(data.values());

  // 3. Query any quantiles, any time. Output is non-destructive.
  std::printf("%8s %12s %12s %10s\n", "phi", "estimate", "exact",
              "rank err");
  for (double phi : {0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99}) {
    mrl::Value estimate = sketch.Query(phi).value();
    std::printf("%8.2f %12.5f %12.5f %10.5f\n", phi, estimate,
                data.ExactQuantile(phi), data.QuantileError(estimate, phi));
  }
  std::printf("\nconsumed %llu elements in one pass using %llu stored\n",
              static_cast<unsigned long long>(sketch.count()),
              static_cast<unsigned long long>(sketch.MemoryElements()));
  return 0;
}
