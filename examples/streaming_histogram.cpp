// Equi-depth histogram maintenance over a dynamically growing table
// (Sections 1.1-1.2): a query optimizer wants bucket boundaries that stay
// accurate while rows keep arriving, without rescanning the table.
//
// We simulate a "quarterly sales" table: most transactions are small, a few
// are huge (exponential distribution), arriving in bursts.

#include <cstdio>
#include <string>

#include "app/equidepth_histogram.h"
#include "stream/generator.h"

namespace {

void PrintHistogram(const mrl::EquiDepthHistogram& hist) {
  auto buckets = hist.Buckets();
  if (!buckets.ok()) {
    std::printf("  (histogram unavailable: %s)\n",
                buckets.status().ToString().c_str());
    return;
  }
  std::printf("  %-8s %12s %12s %10s\n", "bucket", "low", "high", "~rows");
  for (std::size_t i = 0; i < buckets.value().size(); ++i) {
    const auto& b = buckets.value()[i];
    std::printf("  %-8zu %12.3f %12.3f %10llu\n", i + 1, b.lo, b.hi,
                static_cast<unsigned long long>(b.depth));
  }
}

}  // namespace

int main() {
  mrl::EquiDepthHistogram::Options options;
  options.num_buckets = 8;
  options.delta = 1e-4;
  options.seed = 11;
  mrl::Result<mrl::EquiDepthHistogram> created =
      mrl::EquiDepthHistogram::Create(options);
  if (!created.ok()) {
    std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
    return 1;
  }
  mrl::EquiDepthHistogram& hist = created.value();

  // The table grows in four batches; after each batch the optimizer reads
  // fresh, still-accurate boundaries — no advance knowledge of the final
  // table size was ever needed.
  mrl::StreamSpec spec;
  spec.distribution = "exponential";
  spec.n = 2'000'000;
  spec.seed = 3;
  mrl::Dataset table = mrl::GenerateStream(spec);

  std::size_t fed = 0;
  for (std::size_t batch_end :
       {std::size_t{50'000}, std::size_t{400'000}, std::size_t{1'000'000},
        table.size()}) {
    for (; fed < batch_end; ++fed) {
      hist.Add(table.values()[fed]);
    }
    std::printf("after %zu rows (memory: %llu stored elements):\n", fed,
                static_cast<unsigned long long>(hist.MemoryElements()));
    PrintHistogram(hist);
    std::printf("\n");
  }
  return 0;
}
