// Suspend and resume a scan with checkpoints: a long-running aggregation
// writes its sketch state to disk periodically; after a "crash" the scan
// resumes from the last checkpoint and ends up bit-identical to a run that
// never stopped. (Checkpointing is an engineering extension of this
// library; the format is documented in docs/checkpoint_format.md.)

#include <cstdio>
#include <string>
#include <vector>

#include "core/unknown_n.h"
#include "stream/generator.h"

namespace {

bool WriteBlob(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  std::size_t written = std::fwrite(b.data(), 1, b.size(), f);
  return std::fclose(f) == 0 && written == b.size();
}

std::vector<std::uint8_t> ReadBlob(const std::string& path) {
  std::vector<std::uint8_t> out;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return out;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.insert(out.end(), buf, buf + got);
  }
  std::fclose(f);
  return out;
}

}  // namespace

int main() {
  const std::string checkpoint_path = "/tmp/mrlquant_checkpoint.bin";
  mrl::StreamSpec spec;
  spec.n = 1'000'000;
  spec.seed = 3;
  spec.distribution = "gaussian";
  mrl::Dataset stream = mrl::GenerateStream(spec);

  mrl::UnknownNOptions options;
  options.eps = 0.01;
  options.delta = 1e-4;
  options.seed = 7;

  // Reference run: never interrupted.
  mrl::UnknownNSketch reference =
      std::move(mrl::UnknownNSketch::Create(options)).value();
  for (mrl::Value v : stream.values()) reference.Add(v);

  // Interrupted run: checkpoint every 250k rows, "crash" at 600k, resume
  // from the 500k checkpoint and replay from there (a DBMS would pair the
  // checkpoint with the scan cursor position — here: the element index).
  mrl::UnknownNSketch live =
      std::move(mrl::UnknownNSketch::Create(options)).value();
  std::size_t checkpointed_at = 0;
  for (std::size_t i = 0; i < 600'000; ++i) {
    live.Add(stream.values()[i]);
    if ((i + 1) % 250'000 == 0) {
      if (!WriteBlob(checkpoint_path, live.Serialize())) {
        std::fprintf(stderr, "checkpoint write failed\n");
        return 1;
      }
      checkpointed_at = i + 1;
      std::printf("checkpoint at row %zu (%zu bytes)\n", checkpointed_at,
                  ReadBlob(checkpoint_path).size());
    }
  }
  std::printf("crash at row 600000; resuming from row %zu\n",
              checkpointed_at);

  mrl::Result<mrl::UnknownNSketch> resumed_r =
      mrl::UnknownNSketch::Deserialize(ReadBlob(checkpoint_path));
  if (!resumed_r.ok()) {
    std::fprintf(stderr, "restore failed: %s\n",
                 resumed_r.status().ToString().c_str());
    return 1;
  }
  mrl::UnknownNSketch& resumed = resumed_r.value();
  for (std::size_t i = checkpointed_at; i < stream.size(); ++i) {
    resumed.Add(stream.values()[i]);
  }

  std::printf("\n%8s %16s %16s\n", "phi", "uninterrupted", "resumed");
  bool identical = true;
  for (double phi : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    double a = reference.Query(phi).value();
    double b = resumed.Query(phi).value();
    identical = identical && (a == b);
    std::printf("%8.2f %16.6f %16.6f\n", phi, a, b);
  }
  std::printf("\nresumed run is bit-identical to the uninterrupted one: %s\n",
              identical ? "yes" : "NO");
  std::remove(checkpoint_path.c_str());
  return identical ? 0 : 1;
}
