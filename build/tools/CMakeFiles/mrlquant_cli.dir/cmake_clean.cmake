file(REMOVE_RECURSE
  "CMakeFiles/mrlquant_cli.dir/mrlquant_cli.cc.o"
  "CMakeFiles/mrlquant_cli.dir/mrlquant_cli.cc.o.d"
  "mrlquant_cli"
  "mrlquant_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrlquant_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
