# Empty dependencies file for mrlquant_cli.
# This may be replaced when dependencies are built.
