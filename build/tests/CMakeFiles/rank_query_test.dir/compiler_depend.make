# Empty compiler generated dependencies file for rank_query_test.
# This may be replaced when dependencies are built.
