file(REMOVE_RECURSE
  "CMakeFiles/rank_query_test.dir/rank_query_test.cc.o"
  "CMakeFiles/rank_query_test.dir/rank_query_test.cc.o.d"
  "rank_query_test"
  "rank_query_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rank_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
