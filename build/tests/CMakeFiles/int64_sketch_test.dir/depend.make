# Empty dependencies file for int64_sketch_test.
# This may be replaced when dependencies are built.
