file(REMOVE_RECURSE
  "CMakeFiles/int64_sketch_test.dir/int64_sketch_test.cc.o"
  "CMakeFiles/int64_sketch_test.dir/int64_sketch_test.cc.o.d"
  "int64_sketch_test"
  "int64_sketch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/int64_sketch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
