# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for int64_sketch_test.
