# Empty compiler generated dependencies file for unknown_n_property_test.
# This may be replaced when dependencies are built.
