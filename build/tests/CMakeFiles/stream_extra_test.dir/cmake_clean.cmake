file(REMOVE_RECURSE
  "CMakeFiles/stream_extra_test.dir/stream_extra_test.cc.o"
  "CMakeFiles/stream_extra_test.dir/stream_extra_test.cc.o.d"
  "stream_extra_test"
  "stream_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
