# Empty dependencies file for stream_extra_test.
# This may be replaced when dependencies are built.
