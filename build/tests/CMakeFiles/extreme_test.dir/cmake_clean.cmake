file(REMOVE_RECURSE
  "CMakeFiles/extreme_test.dir/extreme_test.cc.o"
  "CMakeFiles/extreme_test.dir/extreme_test.cc.o.d"
  "extreme_test"
  "extreme_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extreme_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
