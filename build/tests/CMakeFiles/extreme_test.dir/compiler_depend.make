# Empty compiler generated dependencies file for extreme_test.
# This may be replaced when dependencies are built.
