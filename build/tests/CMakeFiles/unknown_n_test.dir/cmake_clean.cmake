file(REMOVE_RECURSE
  "CMakeFiles/unknown_n_test.dir/unknown_n_test.cc.o"
  "CMakeFiles/unknown_n_test.dir/unknown_n_test.cc.o.d"
  "unknown_n_test"
  "unknown_n_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unknown_n_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
