# Empty dependencies file for dynamic_alloc_test.
# This may be replaced when dependencies are built.
