file(REMOVE_RECURSE
  "CMakeFiles/dynamic_alloc_test.dir/dynamic_alloc_test.cc.o"
  "CMakeFiles/dynamic_alloc_test.dir/dynamic_alloc_test.cc.o.d"
  "dynamic_alloc_test"
  "dynamic_alloc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_alloc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
