file(REMOVE_RECURSE
  "CMakeFiles/output_test.dir/output_test.cc.o"
  "CMakeFiles/output_test.dir/output_test.cc.o.d"
  "output_test"
  "output_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/output_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
