file(REMOVE_RECURSE
  "CMakeFiles/coordinator_edge_test.dir/coordinator_edge_test.cc.o"
  "CMakeFiles/coordinator_edge_test.dir/coordinator_edge_test.cc.o.d"
  "coordinator_edge_test"
  "coordinator_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coordinator_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
