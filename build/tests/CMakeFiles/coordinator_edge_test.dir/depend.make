# Empty dependencies file for coordinator_edge_test.
# This may be replaced when dependencies are built.
