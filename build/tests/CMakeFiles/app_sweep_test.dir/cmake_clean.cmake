file(REMOVE_RECURSE
  "CMakeFiles/app_sweep_test.dir/app_sweep_test.cc.o"
  "CMakeFiles/app_sweep_test.dir/app_sweep_test.cc.o.d"
  "app_sweep_test"
  "app_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
