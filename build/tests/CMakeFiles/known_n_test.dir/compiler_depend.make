# Empty compiler generated dependencies file for known_n_test.
# This may be replaced when dependencies are built.
