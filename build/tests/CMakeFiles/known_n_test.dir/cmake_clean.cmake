file(REMOVE_RECURSE
  "CMakeFiles/known_n_test.dir/known_n_test.cc.o"
  "CMakeFiles/known_n_test.dir/known_n_test.cc.o.d"
  "known_n_test"
  "known_n_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/known_n_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
