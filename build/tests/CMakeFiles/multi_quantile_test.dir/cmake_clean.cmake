file(REMOVE_RECURSE
  "CMakeFiles/multi_quantile_test.dir/multi_quantile_test.cc.o"
  "CMakeFiles/multi_quantile_test.dir/multi_quantile_test.cc.o.d"
  "multi_quantile_test"
  "multi_quantile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_quantile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
