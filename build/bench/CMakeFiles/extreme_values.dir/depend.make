# Empty dependencies file for extreme_values.
# This may be replaced when dependencies are built.
