file(REMOVE_RECURSE
  "CMakeFiles/extreme_values.dir/extreme_values.cc.o"
  "CMakeFiles/extreme_values.dir/extreme_values.cc.o.d"
  "extreme_values"
  "extreme_values.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extreme_values.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
