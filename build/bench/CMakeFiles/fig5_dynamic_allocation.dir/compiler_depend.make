# Empty compiler generated dependencies file for fig5_dynamic_allocation.
# This may be replaced when dependencies are built.
