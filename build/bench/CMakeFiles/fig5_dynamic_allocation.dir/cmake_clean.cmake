file(REMOVE_RECURSE
  "CMakeFiles/fig5_dynamic_allocation.dir/fig5_dynamic_allocation.cc.o"
  "CMakeFiles/fig5_dynamic_allocation.dir/fig5_dynamic_allocation.cc.o.d"
  "fig5_dynamic_allocation"
  "fig5_dynamic_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_dynamic_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
