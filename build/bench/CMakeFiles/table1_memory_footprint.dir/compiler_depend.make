# Empty compiler generated dependencies file for table1_memory_footprint.
# This may be replaced when dependencies are built.
