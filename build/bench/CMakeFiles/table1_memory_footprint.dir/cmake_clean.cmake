file(REMOVE_RECURSE
  "CMakeFiles/table1_memory_footprint.dir/table1_memory_footprint.cc.o"
  "CMakeFiles/table1_memory_footprint.dir/table1_memory_footprint.cc.o.d"
  "table1_memory_footprint"
  "table1_memory_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_memory_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
