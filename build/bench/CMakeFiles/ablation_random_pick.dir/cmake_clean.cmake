file(REMOVE_RECURSE
  "CMakeFiles/ablation_random_pick.dir/ablation_random_pick.cc.o"
  "CMakeFiles/ablation_random_pick.dir/ablation_random_pick.cc.o.d"
  "ablation_random_pick"
  "ablation_random_pick.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_random_pick.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
