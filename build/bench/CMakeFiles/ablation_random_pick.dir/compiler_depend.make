# Empty compiler generated dependencies file for ablation_random_pick.
# This may be replaced when dependencies are built.
