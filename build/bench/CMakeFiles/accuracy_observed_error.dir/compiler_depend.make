# Empty compiler generated dependencies file for accuracy_observed_error.
# This may be replaced when dependencies are built.
