file(REMOVE_RECURSE
  "CMakeFiles/accuracy_observed_error.dir/accuracy_observed_error.cc.o"
  "CMakeFiles/accuracy_observed_error.dir/accuracy_observed_error.cc.o.d"
  "accuracy_observed_error"
  "accuracy_observed_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accuracy_observed_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
