# Empty compiler generated dependencies file for table2_multiple_quantiles.
# This may be replaced when dependencies are built.
