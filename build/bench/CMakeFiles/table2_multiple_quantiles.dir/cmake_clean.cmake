file(REMOVE_RECURSE
  "CMakeFiles/table2_multiple_quantiles.dir/table2_multiple_quantiles.cc.o"
  "CMakeFiles/table2_multiple_quantiles.dir/table2_multiple_quantiles.cc.o.d"
  "table2_multiple_quantiles"
  "table2_multiple_quantiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_multiple_quantiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
