# Empty compiler generated dependencies file for fig4_memory_vs_n.
# This may be replaced when dependencies are built.
