# Empty compiler generated dependencies file for ablation_offset_alternation.
# This may be replaced when dependencies are built.
