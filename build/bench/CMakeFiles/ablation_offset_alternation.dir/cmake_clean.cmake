file(REMOVE_RECURSE
  "CMakeFiles/ablation_offset_alternation.dir/ablation_offset_alternation.cc.o"
  "CMakeFiles/ablation_offset_alternation.dir/ablation_offset_alternation.cc.o.d"
  "ablation_offset_alternation"
  "ablation_offset_alternation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_offset_alternation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
