file(REMOVE_RECURSE
  "CMakeFiles/ablation_memory_error_tradeoff.dir/ablation_memory_error_tradeoff.cc.o"
  "CMakeFiles/ablation_memory_error_tradeoff.dir/ablation_memory_error_tradeoff.cc.o.d"
  "ablation_memory_error_tradeoff"
  "ablation_memory_error_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_memory_error_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
