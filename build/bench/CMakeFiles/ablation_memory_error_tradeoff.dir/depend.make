# Empty dependencies file for ablation_memory_error_tradeoff.
# This may be replaced when dependencies are built.
