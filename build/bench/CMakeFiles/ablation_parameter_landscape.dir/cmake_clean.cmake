file(REMOVE_RECURSE
  "CMakeFiles/ablation_parameter_landscape.dir/ablation_parameter_landscape.cc.o"
  "CMakeFiles/ablation_parameter_landscape.dir/ablation_parameter_landscape.cc.o.d"
  "ablation_parameter_landscape"
  "ablation_parameter_landscape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_parameter_landscape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
