# Empty dependencies file for ablation_parameter_landscape.
# This may be replaced when dependencies are built.
