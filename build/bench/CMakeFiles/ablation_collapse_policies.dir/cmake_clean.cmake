file(REMOVE_RECURSE
  "CMakeFiles/ablation_collapse_policies.dir/ablation_collapse_policies.cc.o"
  "CMakeFiles/ablation_collapse_policies.dir/ablation_collapse_policies.cc.o.d"
  "ablation_collapse_policies"
  "ablation_collapse_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_collapse_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
