file(REMOVE_RECURSE
  "CMakeFiles/mrl_util.dir/math.cc.o"
  "CMakeFiles/mrl_util.dir/math.cc.o.d"
  "CMakeFiles/mrl_util.dir/random.cc.o"
  "CMakeFiles/mrl_util.dir/random.cc.o.d"
  "CMakeFiles/mrl_util.dir/status.cc.o"
  "CMakeFiles/mrl_util.dir/status.cc.o.d"
  "libmrl_util.a"
  "libmrl_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrl_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
