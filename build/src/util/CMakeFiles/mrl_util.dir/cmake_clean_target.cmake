file(REMOVE_RECURSE
  "libmrl_util.a"
)
