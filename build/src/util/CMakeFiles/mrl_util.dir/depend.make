# Empty dependencies file for mrl_util.
# This may be replaced when dependencies are built.
