file(REMOVE_RECURSE
  "libmrl_core.a"
)
