# Empty compiler generated dependencies file for mrl_core.
# This may be replaced when dependencies are built.
