
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/buffer.cc" "src/core/CMakeFiles/mrl_core.dir/buffer.cc.o" "gcc" "src/core/CMakeFiles/mrl_core.dir/buffer.cc.o.d"
  "/root/repo/src/core/collapse.cc" "src/core/CMakeFiles/mrl_core.dir/collapse.cc.o" "gcc" "src/core/CMakeFiles/mrl_core.dir/collapse.cc.o.d"
  "/root/repo/src/core/collapse_policy.cc" "src/core/CMakeFiles/mrl_core.dir/collapse_policy.cc.o" "gcc" "src/core/CMakeFiles/mrl_core.dir/collapse_policy.cc.o.d"
  "/root/repo/src/core/dynamic_alloc.cc" "src/core/CMakeFiles/mrl_core.dir/dynamic_alloc.cc.o" "gcc" "src/core/CMakeFiles/mrl_core.dir/dynamic_alloc.cc.o.d"
  "/root/repo/src/core/extreme.cc" "src/core/CMakeFiles/mrl_core.dir/extreme.cc.o" "gcc" "src/core/CMakeFiles/mrl_core.dir/extreme.cc.o.d"
  "/root/repo/src/core/framework.cc" "src/core/CMakeFiles/mrl_core.dir/framework.cc.o" "gcc" "src/core/CMakeFiles/mrl_core.dir/framework.cc.o.d"
  "/root/repo/src/core/int64_sketch.cc" "src/core/CMakeFiles/mrl_core.dir/int64_sketch.cc.o" "gcc" "src/core/CMakeFiles/mrl_core.dir/int64_sketch.cc.o.d"
  "/root/repo/src/core/known_n.cc" "src/core/CMakeFiles/mrl_core.dir/known_n.cc.o" "gcc" "src/core/CMakeFiles/mrl_core.dir/known_n.cc.o.d"
  "/root/repo/src/core/multi_quantile.cc" "src/core/CMakeFiles/mrl_core.dir/multi_quantile.cc.o" "gcc" "src/core/CMakeFiles/mrl_core.dir/multi_quantile.cc.o.d"
  "/root/repo/src/core/output.cc" "src/core/CMakeFiles/mrl_core.dir/output.cc.o" "gcc" "src/core/CMakeFiles/mrl_core.dir/output.cc.o.d"
  "/root/repo/src/core/parallel.cc" "src/core/CMakeFiles/mrl_core.dir/parallel.cc.o" "gcc" "src/core/CMakeFiles/mrl_core.dir/parallel.cc.o.d"
  "/root/repo/src/core/params.cc" "src/core/CMakeFiles/mrl_core.dir/params.cc.o" "gcc" "src/core/CMakeFiles/mrl_core.dir/params.cc.o.d"
  "/root/repo/src/core/sharded.cc" "src/core/CMakeFiles/mrl_core.dir/sharded.cc.o" "gcc" "src/core/CMakeFiles/mrl_core.dir/sharded.cc.o.d"
  "/root/repo/src/core/summary.cc" "src/core/CMakeFiles/mrl_core.dir/summary.cc.o" "gcc" "src/core/CMakeFiles/mrl_core.dir/summary.cc.o.d"
  "/root/repo/src/core/unknown_n.cc" "src/core/CMakeFiles/mrl_core.dir/unknown_n.cc.o" "gcc" "src/core/CMakeFiles/mrl_core.dir/unknown_n.cc.o.d"
  "/root/repo/src/core/weighted_merge.cc" "src/core/CMakeFiles/mrl_core.dir/weighted_merge.cc.o" "gcc" "src/core/CMakeFiles/mrl_core.dir/weighted_merge.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mrl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/mrl_sampling.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
