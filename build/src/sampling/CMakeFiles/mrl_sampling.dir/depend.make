# Empty dependencies file for mrl_sampling.
# This may be replaced when dependencies are built.
