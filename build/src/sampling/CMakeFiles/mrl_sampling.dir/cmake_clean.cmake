file(REMOVE_RECURSE
  "CMakeFiles/mrl_sampling.dir/block_sampler.cc.o"
  "CMakeFiles/mrl_sampling.dir/block_sampler.cc.o.d"
  "CMakeFiles/mrl_sampling.dir/reservoir.cc.o"
  "CMakeFiles/mrl_sampling.dir/reservoir.cc.o.d"
  "libmrl_sampling.a"
  "libmrl_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrl_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
