# Empty compiler generated dependencies file for mrl_sampling.
# This may be replaced when dependencies are built.
