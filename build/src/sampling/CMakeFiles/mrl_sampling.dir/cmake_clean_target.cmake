file(REMOVE_RECURSE
  "libmrl_sampling.a"
)
