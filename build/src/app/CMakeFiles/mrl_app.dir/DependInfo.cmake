
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/equidepth_histogram.cc" "src/app/CMakeFiles/mrl_app.dir/equidepth_histogram.cc.o" "gcc" "src/app/CMakeFiles/mrl_app.dir/equidepth_histogram.cc.o.d"
  "/root/repo/src/app/group_by.cc" "src/app/CMakeFiles/mrl_app.dir/group_by.cc.o" "gcc" "src/app/CMakeFiles/mrl_app.dir/group_by.cc.o.d"
  "/root/repo/src/app/online_aggregation.cc" "src/app/CMakeFiles/mrl_app.dir/online_aggregation.cc.o" "gcc" "src/app/CMakeFiles/mrl_app.dir/online_aggregation.cc.o.d"
  "/root/repo/src/app/selectivity.cc" "src/app/CMakeFiles/mrl_app.dir/selectivity.cc.o" "gcc" "src/app/CMakeFiles/mrl_app.dir/selectivity.cc.o.d"
  "/root/repo/src/app/splitters.cc" "src/app/CMakeFiles/mrl_app.dir/splitters.cc.o" "gcc" "src/app/CMakeFiles/mrl_app.dir/splitters.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mrl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mrl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/mrl_sampling.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
