file(REMOVE_RECURSE
  "libmrl_app.a"
)
