file(REMOVE_RECURSE
  "CMakeFiles/mrl_app.dir/equidepth_histogram.cc.o"
  "CMakeFiles/mrl_app.dir/equidepth_histogram.cc.o.d"
  "CMakeFiles/mrl_app.dir/group_by.cc.o"
  "CMakeFiles/mrl_app.dir/group_by.cc.o.d"
  "CMakeFiles/mrl_app.dir/online_aggregation.cc.o"
  "CMakeFiles/mrl_app.dir/online_aggregation.cc.o.d"
  "CMakeFiles/mrl_app.dir/selectivity.cc.o"
  "CMakeFiles/mrl_app.dir/selectivity.cc.o.d"
  "CMakeFiles/mrl_app.dir/splitters.cc.o"
  "CMakeFiles/mrl_app.dir/splitters.cc.o.d"
  "libmrl_app.a"
  "libmrl_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrl_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
