# Empty dependencies file for mrl_app.
# This may be replaced when dependencies are built.
