file(REMOVE_RECURSE
  "libmrl_stream.a"
)
