
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/dataset.cc" "src/stream/CMakeFiles/mrl_stream.dir/dataset.cc.o" "gcc" "src/stream/CMakeFiles/mrl_stream.dir/dataset.cc.o.d"
  "/root/repo/src/stream/distribution.cc" "src/stream/CMakeFiles/mrl_stream.dir/distribution.cc.o" "gcc" "src/stream/CMakeFiles/mrl_stream.dir/distribution.cc.o.d"
  "/root/repo/src/stream/file_stream.cc" "src/stream/CMakeFiles/mrl_stream.dir/file_stream.cc.o" "gcc" "src/stream/CMakeFiles/mrl_stream.dir/file_stream.cc.o.d"
  "/root/repo/src/stream/generator.cc" "src/stream/CMakeFiles/mrl_stream.dir/generator.cc.o" "gcc" "src/stream/CMakeFiles/mrl_stream.dir/generator.cc.o.d"
  "/root/repo/src/stream/order.cc" "src/stream/CMakeFiles/mrl_stream.dir/order.cc.o" "gcc" "src/stream/CMakeFiles/mrl_stream.dir/order.cc.o.d"
  "/root/repo/src/stream/text_stream.cc" "src/stream/CMakeFiles/mrl_stream.dir/text_stream.cc.o" "gcc" "src/stream/CMakeFiles/mrl_stream.dir/text_stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mrl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
