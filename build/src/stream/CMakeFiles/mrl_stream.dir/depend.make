# Empty dependencies file for mrl_stream.
# This may be replaced when dependencies are built.
