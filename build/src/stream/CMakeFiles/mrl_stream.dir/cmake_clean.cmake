file(REMOVE_RECURSE
  "CMakeFiles/mrl_stream.dir/dataset.cc.o"
  "CMakeFiles/mrl_stream.dir/dataset.cc.o.d"
  "CMakeFiles/mrl_stream.dir/distribution.cc.o"
  "CMakeFiles/mrl_stream.dir/distribution.cc.o.d"
  "CMakeFiles/mrl_stream.dir/file_stream.cc.o"
  "CMakeFiles/mrl_stream.dir/file_stream.cc.o.d"
  "CMakeFiles/mrl_stream.dir/generator.cc.o"
  "CMakeFiles/mrl_stream.dir/generator.cc.o.d"
  "CMakeFiles/mrl_stream.dir/order.cc.o"
  "CMakeFiles/mrl_stream.dir/order.cc.o.d"
  "CMakeFiles/mrl_stream.dir/text_stream.cc.o"
  "CMakeFiles/mrl_stream.dir/text_stream.cc.o.d"
  "libmrl_stream.a"
  "libmrl_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrl_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
