
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/ars.cc" "src/baseline/CMakeFiles/mrl_baseline.dir/ars.cc.o" "gcc" "src/baseline/CMakeFiles/mrl_baseline.dir/ars.cc.o.d"
  "/root/repo/src/baseline/exact.cc" "src/baseline/CMakeFiles/mrl_baseline.dir/exact.cc.o" "gcc" "src/baseline/CMakeFiles/mrl_baseline.dir/exact.cc.o.d"
  "/root/repo/src/baseline/munro_paterson.cc" "src/baseline/CMakeFiles/mrl_baseline.dir/munro_paterson.cc.o" "gcc" "src/baseline/CMakeFiles/mrl_baseline.dir/munro_paterson.cc.o.d"
  "/root/repo/src/baseline/reservoir_quantile.cc" "src/baseline/CMakeFiles/mrl_baseline.dir/reservoir_quantile.cc.o" "gcc" "src/baseline/CMakeFiles/mrl_baseline.dir/reservoir_quantile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mrl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/mrl_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mrl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
