file(REMOVE_RECURSE
  "CMakeFiles/mrl_baseline.dir/ars.cc.o"
  "CMakeFiles/mrl_baseline.dir/ars.cc.o.d"
  "CMakeFiles/mrl_baseline.dir/exact.cc.o"
  "CMakeFiles/mrl_baseline.dir/exact.cc.o.d"
  "CMakeFiles/mrl_baseline.dir/munro_paterson.cc.o"
  "CMakeFiles/mrl_baseline.dir/munro_paterson.cc.o.d"
  "CMakeFiles/mrl_baseline.dir/reservoir_quantile.cc.o"
  "CMakeFiles/mrl_baseline.dir/reservoir_quantile.cc.o.d"
  "libmrl_baseline.a"
  "libmrl_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrl_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
