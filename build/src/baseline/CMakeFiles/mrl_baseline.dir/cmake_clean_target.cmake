file(REMOVE_RECURSE
  "libmrl_baseline.a"
)
