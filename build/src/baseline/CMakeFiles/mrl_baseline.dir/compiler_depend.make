# Empty compiler generated dependencies file for mrl_baseline.
# This may be replaced when dependencies are built.
