# Empty compiler generated dependencies file for streaming_histogram.
# This may be replaced when dependencies are built.
