file(REMOVE_RECURSE
  "CMakeFiles/streaming_histogram.dir/streaming_histogram.cpp.o"
  "CMakeFiles/streaming_histogram.dir/streaming_histogram.cpp.o.d"
  "streaming_histogram"
  "streaming_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
