file(REMOVE_RECURSE
  "CMakeFiles/parallel_splitters.dir/parallel_splitters.cpp.o"
  "CMakeFiles/parallel_splitters.dir/parallel_splitters.cpp.o.d"
  "parallel_splitters"
  "parallel_splitters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_splitters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
