# Empty dependencies file for parallel_splitters.
# This may be replaced when dependencies are built.
