// Fuzz harness for the mrlquantd wire-protocol decoder
// (src/server/protocol.h).
//
// A frame is untrusted input: anything that can open the daemon's socket
// can send arbitrary bytes. The contract under test is that the decoder
// NEVER aborts or reads out of bounds — it either yields a validated
// request/response view or a Status. The harness walks the input as a
// stream (the server's framing loop), then drives every request decoder
// and the response decoders over each structurally valid frame, exactly as
// the server and client library would.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "server/protocol.h"
#include "util/status.h"

namespace {

void ExerciseFrame(const mrl::server::FrameView& frame) {
  using mrl::server::MsgType;
  const std::uint8_t* payload = frame.payload;
  const std::size_t len = frame.payload_len;
  std::vector<double> doubles;
  switch (frame.type) {
    case MsgType::kCreateSketch:
      (void)mrl::server::DecodeCreateSketch(payload, len);
      break;
    case MsgType::kAddBatch: {
      mrl::Result<mrl::server::AddBatchRequest> req =
          mrl::server::DecodeAddBatch(payload, len);
      if (req.ok()) {
        (void)mrl::server::DecodeDoublesInto(req.value().values_le,
                                             req.value().count,
                                             /*reject_nan=*/true, &doubles);
      }
      break;
    }
    case MsgType::kQuery:
      (void)mrl::server::DecodeQuery(payload, len);
      break;
    case MsgType::kQueryMulti: {
      mrl::Result<mrl::server::QueryMultiRequest> req =
          mrl::server::DecodeQueryMulti(payload, len);
      if (req.ok()) {
        (void)mrl::server::DecodeDoublesInto(req.value().phis_le,
                                             req.value().count,
                                             /*reject_nan=*/true, &doubles);
      }
      break;
    }
    case MsgType::kSnapshot:
    case MsgType::kDelete:
    case MsgType::kStats:
      (void)mrl::server::DecodeNameRequest(frame.type, payload, len);
      break;
    case MsgType::kResponse: {
      mrl::Result<mrl::server::ResponseView> response =
          mrl::server::DecodeResponse(payload, len);
      if (response.ok()) {
        // Drive every typed body decoder; at most one can match the echoed
        // request type, the rest must fail cleanly.
        std::vector<mrl::Value> values;
        std::vector<std::uint8_t> blob;
        (void)mrl::server::DecodeAddBatchOk(response.value());
        (void)mrl::server::DecodeQueryOk(response.value());
        (void)mrl::server::DecodeQueryMultiOk(response.value(), &values);
        (void)mrl::server::DecodeSnapshotOk(response.value(), &blob);
        (void)mrl::server::DecodeStatsOk(response.value());
      }
      break;
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // Stream framing loop: consume frames front to back until the buffer is
  // exhausted, a frame is malformed (InvalidArgument — a server would drop
  // or answer), or the remainder is an incomplete frame (OutOfRange — a
  // server would wait for more bytes).
  std::size_t offset = 0;
  while (offset < size) {
    mrl::Result<mrl::server::FrameView> frame =
        mrl::server::DecodeFrame(data + offset, size - offset);
    if (!frame.ok()) break;
    ExerciseFrame(frame.value());
    offset += frame.value().frame_size;
  }
  // The body-only entry point (transport already consumed the length
  // prefix) must be equally safe on the raw input.
  if (size >= 4) {
    mrl::Result<mrl::server::FrameView> body =
        mrl::server::DecodeFrameBody(data + 4, size - 4);
    if (body.ok()) ExerciseFrame(body.value());
  }
  return 0;
}
