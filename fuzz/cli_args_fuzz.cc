// Fuzz harness for mrlquant_cli argument parsing.
//
// ParseArgs is the first thing that touches user input in the CLI; it must
// never crash, overflow, or touch the filesystem regardless of argv
// contents. The harness splits the fuzz input on newlines into an argv
// vector (argv[0] is synthesized) and runs the parser.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "cli_options.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  constexpr std::size_t kMaxArgs = 64;
  std::vector<std::string> tokens;
  tokens.emplace_back("mrlquant_cli");
  std::string current;
  for (std::size_t i = 0; i < size && tokens.size() < kMaxArgs; ++i) {
    char c = static_cast<char>(data[i]);
    if (c == '\n') {
      tokens.push_back(current);
      current.clear();
    } else if (c != '\0') {  // embedded NUL would truncate the C string
      current.push_back(c);
    }
  }
  if (!current.empty() && tokens.size() < kMaxArgs) {
    tokens.push_back(current);
  }

  std::vector<char*> argv;
  argv.reserve(tokens.size());
  for (std::string& t : tokens) argv.push_back(t.data());

  mrl::cli::CliOptions options;
  std::string error;
  bool ok = mrl::cli::ParseArgs(static_cast<int>(argv.size()), argv.data(),
                                &options, &error);
  if (!ok && error.empty()) {
    __builtin_trap();  // failures must always carry a reason
  }
  return 0;
}
