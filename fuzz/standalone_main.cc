// Minimal replacement for the libFuzzer driver, used when the toolchain
// cannot link -fsanitize=fuzzer (gcc). Each command-line argument is a
// corpus file or a directory of corpus files; every file is read whole and
// fed to LLVMFuzzerTestOneInput once. No mutation — this is a corpus
// replayer, enough to regression-test known inputs on any compiler.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

int RunFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  std::printf("ran %s (%zu bytes)\n", path.c_str(), bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    std::filesystem::path arg(argv[i]);
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        if (entry.is_regular_file()) failures += RunFile(entry.path());
      }
    } else {
      failures += RunFile(arg);
    }
  }
  return failures == 0 ? 0 : 1;
}
