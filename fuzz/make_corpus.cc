// Writes a deterministic seed corpus for checkpoint_fuzz into the
// directory named by argv[1]: valid v2 checkpoints of all three sketch
// kinds at several stream lengths (empty, mid-fill, post-collapse), so the
// fuzzer starts from byte strings that reach deep into the decoders
// instead of dying at the magic-number check.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/extreme.h"
#include "core/known_n.h"
#include "core/unknown_n.h"

namespace {

bool WriteFile(const std::filesystem::path& dir, const std::string& name,
               const std::vector<std::uint8_t>& bytes) {
  std::filesystem::path path = dir / name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), bytes.size());
  return true;
}

// A fixed full-period LCG keeps the corpus byte-identical across runs and
// platforms (no std::mt19937 distribution variance).
double Synthetic(std::uint64_t i) {
  std::uint64_t x = i * 6364136223846793005ULL + 1442695040888963407ULL;
  return static_cast<double>(x >> 11) / 9007199254740992.0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: make_corpus <output-dir>\n");
    return 1;
  }
  std::filesystem::path dir(argv[1]);
  std::filesystem::create_directories(dir);
  bool ok = true;

  for (std::uint64_t n : {0ULL, 1000ULL, 200000ULL}) {
    mrl::UnknownNOptions uopt;
    uopt.eps = 0.05;
    uopt.delta = 1e-3;
    mrl::Result<mrl::UnknownNSketch> usketch =
        mrl::UnknownNSketch::Create(uopt);
    if (!usketch.ok()) return 1;
    for (std::uint64_t i = 0; i < n; ++i) usketch.value().Add(Synthetic(i));
    ok = WriteFile(dir, "unknown_n_" + std::to_string(n),
                   usketch.value().Serialize()) &&
         ok;

    mrl::KnownNOptions kopt;
    kopt.eps = 0.05;
    kopt.delta = 1e-3;
    kopt.n = n + 1;
    mrl::Result<mrl::KnownNSketch> ksketch =
        mrl::KnownNSketch::Create(kopt);
    if (!ksketch.ok()) return 1;
    for (std::uint64_t i = 0; i < n; ++i) ksketch.value().Add(Synthetic(i));
    ok = WriteFile(dir, "known_n_" + std::to_string(n),
                   ksketch.value().Serialize()) &&
         ok;

    mrl::ExtremeValueOptions eopt;
    eopt.phi = 0.01;
    eopt.eps = 0.005;
    eopt.delta = 1e-3;
    eopt.n = n + 1;
    mrl::Result<mrl::ExtremeValueSketch> esketch =
        mrl::ExtremeValueSketch::Create(eopt);
    if (!esketch.ok()) return 1;
    for (std::uint64_t i = 0; i < n; ++i) esketch.value().Add(Synthetic(i));
    ok = WriteFile(dir, "extreme_" + std::to_string(n),
                   esketch.value().Serialize()) &&
         ok;
  }
  return ok ? 0 : 1;
}
