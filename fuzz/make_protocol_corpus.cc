// Writes a deterministic seed corpus for fuzz_protocol_decode into the
// directory named by argv[1]: one well-formed frame of every request type
// plus every response shape, built with the real encoders so the fuzzer
// starts past the header/CRC checks and inside the request decoders.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "server/protocol.h"

namespace {

bool WriteFile(const std::filesystem::path& dir, const std::string& name,
               const std::vector<std::uint8_t>& bytes) {
  std::filesystem::path path = dir / name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), bytes.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mrl::server;  // NOLINT(build/namespaces)
  if (argc != 2) {
    std::fprintf(stderr, "usage: make_protocol_corpus <output-dir>\n");
    return 1;
  }
  std::filesystem::path dir(argv[1]);
  std::filesystem::create_directories(dir);
  bool ok = true;
  std::vector<std::uint8_t> wire;

  TenantConfig sharded;
  sharded.kind = SketchKind::kSharded;
  sharded.eps = 0.02;
  sharded.delta = 1e-3;
  sharded.num_shards = 8;
  sharded.seed = 42;
  EncodeCreateSketch("tenant-a", sharded, &wire);
  ok = WriteFile(dir, "create_sharded", wire) && ok;

  wire.clear();
  EncodeCreateSketch("t", TenantConfig{}, &wire);
  ok = WriteFile(dir, "create_default", wire) && ok;

  // Protocol v2 backends: seed the fuzzer with well-formed CREATE_SKETCH
  // frames for each new kind byte so mutations explore the kind validator
  // from inside valid frames.
  wire.clear();
  TenantConfig kll;
  kll.kind = SketchKind::kKll;
  kll.eps = 0.005;
  kll.delta = 1e-4;
  kll.seed = 7;
  EncodeCreateSketch("tenant-k", kll, &wire);
  ok = WriteFile(dir, "create_kll", wire) && ok;

  wire.clear();
  TenantConfig reservoir;
  reservoir.kind = SketchKind::kDetReservoir;
  reservoir.eps = 0.01;
  reservoir.delta = 1e-3;
  reservoir.seed = 9;
  EncodeCreateSketch("tenant-r", reservoir, &wire);
  ok = WriteFile(dir, "create_det_reservoir", wire) && ok;

  wire.clear();
  const std::vector<mrl::Value> values = {1.5, -2.25, 0.0, 1e300, -1e-300};
  EncodeAddBatch("tenant-a", values, &wire);
  ok = WriteFile(dir, "add_batch", wire) && ok;

  wire.clear();
  EncodeAddBatch("t", {}, &wire);
  ok = WriteFile(dir, "add_batch_empty", wire) && ok;

  wire.clear();
  EncodeQuery("tenant-a", 0.5, &wire);
  ok = WriteFile(dir, "query", wire) && ok;

  wire.clear();
  const std::vector<double> phis = {0.001, 0.25, 0.5, 0.99};
  EncodeQueryMulti("tenant-a", phis, &wire);
  ok = WriteFile(dir, "query_multi", wire) && ok;

  wire.clear();
  EncodeNameRequest(MsgType::kSnapshot, "tenant-a", &wire);
  ok = WriteFile(dir, "snapshot", wire) && ok;

  wire.clear();
  EncodeNameRequest(MsgType::kDelete, "tenant-a", &wire);
  ok = WriteFile(dir, "delete", wire) && ok;

  wire.clear();
  EncodeNameRequest(MsgType::kStats, "", &wire);
  ok = WriteFile(dir, "stats_global", wire) && ok;

  wire.clear();
  EncodeErrorResponse(MsgType::kQuery,
                      mrl::Status::NotFound("unknown tenant"), &wire);
  ok = WriteFile(dir, "response_error", wire) && ok;

  wire.clear();
  EncodeEmptyOk(MsgType::kCreateSketch, &wire);
  ok = WriteFile(dir, "response_empty_ok", wire) && ok;

  wire.clear();
  EncodeAddBatchOk(123456789, &wire);
  ok = WriteFile(dir, "response_add_batch", wire) && ok;

  wire.clear();
  EncodeQueryOk(3.25, &wire);
  ok = WriteFile(dir, "response_query", wire) && ok;

  wire.clear();
  EncodeQueryMultiOk(values, &wire);
  ok = WriteFile(dir, "response_query_multi", wire) && ok;

  wire.clear();
  const std::vector<std::uint8_t> blob = {0x4D, 0x52, 0x4C, 0x51, 0x02};
  EncodeSnapshotOk(blob, &wire);
  ok = WriteFile(dir, "response_snapshot", wire) && ok;

  wire.clear();
  StatsReply stats;
  stats.num_tenants = 2;
  stats.total_count = 1000000;
  stats.tenant_present = true;
  stats.tenant_kind = SketchKind::kSharded;
  stats.tenant_count = 600000;
  stats.tenant_memory_elements = 4096;
  EncodeStatsOk(stats, &wire);
  ok = WriteFile(dir, "response_stats", wire) && ok;

  // A two-frame stream exercises the framing advance in the harness.
  wire.clear();
  EncodeQuery("a", 0.25, &wire);
  EncodeNameRequest(MsgType::kDelete, "b", &wire);
  ok = WriteFile(dir, "two_frames", wire) && ok;

  return ok ? 0 : 1;
}
