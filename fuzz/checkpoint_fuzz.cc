// Fuzz harness for the checkpoint decode paths (serde format v2).
//
// A checkpoint is untrusted input: a DBMS operator may hand the library a
// file that was truncated by a crashed writer, bit-flipped by a bad disk,
// or crafted by an attacker. The contract under test is that Deserialize
// NEVER aborts, reads out of bounds, or leaks — it either returns a valid
// sketch or a Status. When decode succeeds, the harness also exercises the
// query path and a re-serialize round trip, so "accepted but internally
// inconsistent" states surface as crashes here instead of in production.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/extreme.h"
#include "core/known_n.h"
#include "core/unknown_n.h"
#include "util/status.h"

namespace {

// Accepted checkpoints must behave like real sketches: queries answer (or
// fail with a Status) and a serialize/deserialize round trip must succeed.
template <typename Sketch>
void ExerciseDecoded(const mrl::Result<Sketch>& decoded) {
  if (!decoded.ok()) return;
  const Sketch& sketch = decoded.value();
  for (double phi : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    mrl::Result<mrl::Value> q = sketch.Query(phi);
    (void)q;
  }
  std::vector<std::uint8_t> again = sketch.Serialize();
  mrl::Result<Sketch> round = Sketch::Deserialize(again);
  if (!round.ok()) {
    // Deserialize accepted bytes it cannot reproduce: a decode/encode
    // asymmetry the fuzzer should report loudly.
    __builtin_trap();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::vector<std::uint8_t> bytes(data, data + size);
  // The header names one sketch kind, but decode of every kind must be
  // safe on arbitrary bytes, so try all three unconditionally.
  ExerciseDecoded(mrl::UnknownNSketch::Deserialize(bytes));
  ExerciseDecoded(mrl::KnownNSketch::Deserialize(bytes));
  ExerciseDecoded(mrl::ExtremeValueSketch::Deserialize(bytes));
  return 0;
}
