// Microbenchmarks for the radix sort engine (util/sort.h) against the
// comparison-sort reference kept in the library as SortValuesNaive /
// SortPairsNaive — the SelectWeightedPositionsNaive pattern: old and new
// kernels run side by side here and differentially in tests/sort_test.cc.
//
// BM_BufferSortSteadyState additionally asserts the PR's zero-allocation
// claim: a global operator new hook counts heap allocations around each
// steady-state fill + MarkFull (which runs SortValues through the
// thread-local scratch) and aborts the binary if any occur. The hook is
// compiled out under sanitizers and MRLQUANT_AUDIT builds, whose
// instrumentation allocates behind our back.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include "bench_reporter.h"
#include "core/buffer.h"
#include "util/random.h"
#include "util/sort.h"
#include "util/types.h"

#if defined(MRLQUANT_AUDIT) || defined(__SANITIZE_ADDRESS__) || \
    defined(__SANITIZE_THREAD__)
#define MRL_BENCH_COUNT_ALLOCS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define MRL_BENCH_COUNT_ALLOCS 0
#else
#define MRL_BENCH_COUNT_ALLOCS 1
#endif
#else
#define MRL_BENCH_COUNT_ALLOCS 1
#endif

#if MRL_BENCH_COUNT_ALLOCS

// GCC cannot see that the replaced operator new/delete pair below is
// internally consistent (malloc in new, free in delete) and reports a
// mismatched-new-delete false positive at every call site in this TU.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n) { return ::operator new(n); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif  // MRL_BENCH_COUNT_ALLOCS

namespace mrl {
namespace {

std::uint64_t AllocCount() {
#if MRL_BENCH_COUNT_ALLOCS
  return g_alloc_count.load(std::memory_order_relaxed);
#else
  return 0;
#endif
}

void CheckNoAllocs(std::uint64_t before, const char* where) {
#if MRL_BENCH_COUNT_ALLOCS
  const std::uint64_t after = AllocCount();
  if (after != before) {
    std::fprintf(stderr,
                 "FATAL: %s performed %llu heap allocation(s) in steady "
                 "state; the scratch-arena contract is broken\n",
                 where, static_cast<unsigned long long>(after - before));
    std::abort();
  }
#else
  (void)before;
  (void)where;
#endif
}

std::vector<Value> MakeUniform(std::size_t n) {
  Random rng(0x5bd1e995U + n);
  std::vector<Value> v(n);
  for (Value& x : v) x = rng.UniformDouble() * 2.0 - 1.0;
  return v;
}

void BM_StdSortValues(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::vector<Value> pristine = MakeUniform(n);
  std::vector<Value> work(n);
  for (auto _ : state) {
    std::memcpy(work.data(), pristine.data(), n * sizeof(Value));
    SortValuesNaive(work.data(), n);
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
// The grid deliberately includes non-lane-multiple and cutoff-straddling
// sizes: 3/17/255 take the sub-cutoff comparison fallback, 257 is the
// smallest radix path (with a 1-element SIMD tail), and 4097 straddles the
// AVX2 partial-histogram cutoff — so the tail and dispatch overheads are
// measured, not just the 4-lane-aligned steady state.
BENCHMARK(BM_StdSortValues)
    ->Arg(3)
    ->Arg(17)
    ->Arg(255)
    ->Arg(257)
    ->Arg(1024)
    ->Arg(4097)
    ->Arg(16384)
    ->Arg(65536)
    ->Arg(262144);

void BM_RadixSortValues(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::vector<Value> pristine = MakeUniform(n);
  std::vector<Value> work(n);
  SortScratch scratch;
  for (auto _ : state) {
    std::memcpy(work.data(), pristine.data(), n * sizeof(Value));
    SortValues(work.data(), n, &scratch);
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RadixSortValues)
    ->Arg(3)
    ->Arg(17)
    ->Arg(255)
    ->Arg(257)
    ->Arg(1024)
    ->Arg(4097)
    ->Arg(16384)
    ->Arg(65536)
    ->Arg(262144);

// Presorted input exercises the per-pass skip detection: passes whose byte
// position carries no information cost one histogram probe each.
void BM_RadixSortValuesPresorted(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<Value> pristine = MakeUniform(n);
  SortValuesNaive(pristine.data(), n);
  std::vector<Value> work(n);
  SortScratch scratch;
  for (auto _ : state) {
    std::memcpy(work.data(), pristine.data(), n * sizeof(Value));
    SortValues(work.data(), n, &scratch);
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RadixSortValuesPresorted)->Arg(65536);

// All-equal input: every pass's histogram collapses to one bucket, so the
// engine reduces to the 8 skip probes plus the key transform round trip.
void BM_RadixSortValuesAllEqual(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<Value> work(n, 3.25);
  SortScratch scratch;
  for (auto _ : state) {
    SortValues(work.data(), n, &scratch);
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RadixSortValuesAllEqual)->Arg(65536);

std::vector<KeyedPayload> MakeUniformPairs(std::size_t n) {
  Random rng(0xc2b2ae35U + n);
  std::vector<KeyedPayload> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = {rng.UniformDouble() * 2.0 - 1.0, static_cast<std::uint64_t>(i)};
  }
  return v;
}

void BM_StdSortPairs(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::vector<KeyedPayload> pristine = MakeUniformPairs(n);
  std::vector<KeyedPayload> work(n);
  for (auto _ : state) {
    std::copy(pristine.begin(), pristine.end(), work.begin());
    SortPairsNaive(work.data(), n);
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_StdSortPairs)->Arg(257)->Arg(4097)->Arg(65536);

void BM_RadixSortPairs(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::vector<KeyedPayload> pristine = MakeUniformPairs(n);
  std::vector<KeyedPayload> work(n);
  SortScratch scratch;
  for (auto _ : state) {
    std::copy(pristine.begin(), pristine.end(), work.begin());
    SortPairs(work.data(), n, &scratch);
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RadixSortPairs)->Arg(257)->Arg(4097)->Arg(65536);

// The framework's actual hot call site: refill a Buffer to capacity and
// promote it with MarkFull, whose sort now runs through the engine's
// thread-local scratch. After one warm-up round (vector capacities, the
// scratch arena) the whole cycle must be allocation free.
void BM_BufferSortSteadyState(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const std::vector<Value> pristine = MakeUniform(k);
  Buffer buffer(k);

  const auto one_round = [&] {
    buffer.Clear();
    buffer.StartFill();
    buffer.AppendSpan(pristine.data(), k);
    buffer.MarkFull(/*weight=*/1, /*level=*/0);
  };
  one_round();  // warm every capacity before asserting zero allocations

  for (auto _ : state) {
    buffer.Clear();
    buffer.StartFill();
    buffer.AppendSpan(pristine.data(), k);
    const std::uint64_t before = AllocCount();
    buffer.MarkFull(/*weight=*/1, /*level=*/0);
    CheckNoAllocs(before, "Buffer::MarkFull");
    benchmark::DoNotOptimize(buffer.values().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k));
}
BENCHMARK(BM_BufferSortSteadyState)->Arg(1024)->Arg(16384)->Arg(65536);

}  // namespace
}  // namespace mrl

int main(int argc, char** argv) {
  return mrl::bench::RunBenchmarksWithReporter(argc, argv, "sort_kernels");
}
