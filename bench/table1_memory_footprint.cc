// Reproduces Table 1: number of buffers b, buffer size k, and total memory
// b*k required by the unknown-N algorithm across (eps, delta), side by side
// with the known-N algorithm's requirement (N large enough that sampling
// kicks in, as in the paper). The paper's claim: the new algorithm needs no
// more than twice the memory of the old one.
//
// Absolute entries differ from the paper's by small constant factors (we
// re-derived the garbled constants; see DESIGN.md), but the shape — growth
// in 1/eps, weak growth in log(1/delta), unknown-N <= 2x known-N — is the
// reproduction target recorded in EXPERIMENTS.md.

#include <cstdio>

#include "bench_reporter.h"
#include "core/params.h"

int main() {
  mrl::bench::BenchReporter reporter("table1_memory_footprint");
  const double epss[] = {0.1, 0.05, 0.01, 0.005, 0.001};
  const double deltas[] = {1e-2, 1e-3, 1e-4};
  const std::uint64_t big_n = std::uint64_t{1} << 50;

  std::printf("Table 1: memory (in stored elements; K = 1000) for the "
              "unknown-N vs known-N algorithms\n\n");
  std::printf("%-8s %-8s | %-22s | %-12s | %-6s\n", "eps", "delta",
              "unknown-N  b x k = bk", "known-N bk", "ratio");
  std::printf("--------------------------------------------------------------"
              "--------\n");
  for (double eps : epss) {
    for (double delta : deltas) {
      mrl::UnknownNParams u = mrl::SolveUnknownN(eps, delta).value();
      std::uint64_t known =
          mrl::KnownNMemoryElements(eps, delta, big_n).value();
      std::printf("%-8g %-8.0e | %3d x %6zu = %7.2fK | %9.2fK   | %5.2f\n",
                  eps, delta, u.b, u.k,
                  static_cast<double>(u.MemoryElements()) / 1000.0,
                  static_cast<double>(known) / 1000.0,
                  static_cast<double>(u.MemoryElements()) /
                      static_cast<double>(known));
      const std::string cell = "eps=" + mrl::bench::FormatG(eps) +
                               "/delta=" + mrl::bench::FormatG(delta);
      reporter.ReportValue("unknown_n_mem/" + cell,
                           static_cast<double>(u.MemoryElements()),
                           "elements");
      reporter.ReportValue("ratio_vs_known_n/" + cell,
                           static_cast<double>(u.MemoryElements()) /
                               static_cast<double>(known),
                           "x");
    }
  }
  std::printf("\npaper reference points (SIGMOD'99 Table 1, eps=0.01): "
              "unknown-N ~4.7-4.9K, known-N ~2.5-2.8K, ratio <= 2\n");
  return 0;
}
