// Single-pass cost (Section 1.3: the algorithm must keep up with a scan):
// google-benchmark microbenchmarks of per-element insertion for every
// estimator in the library, plus query cost, plus the effect of sampling
// (deep vs shallow trees) on insertion throughput. Element-wise Add and
// the batch ingestion path (AddBatch) are reported side by side — compare
// items_per_second between BM_*Add and BM_*AddBatch at the same args.

#include <benchmark/benchmark.h>

#include <span>

#include "bench_reporter.h"

#include "baseline/exact.h"
#include "baseline/munro_paterson.h"
#include "baseline/reservoir_quantile.h"
#include "core/extreme.h"
#include "core/known_n.h"
#include "core/unknown_n.h"
#include "sampling/block_sampler.h"
#include "stream/generator.h"
#include "util/random.h"

namespace {

const std::vector<mrl::Value>& InputStream() {
  static const auto* values = [] {
    mrl::StreamSpec spec;
    spec.n = 1 << 20;
    spec.seed = 3;
    return new std::vector<mrl::Value>(mrl::GenerateStream(spec).values());
  }();
  return *values;
}

void BM_UnknownNAdd(benchmark::State& state) {
  const auto& input = InputStream();
  mrl::UnknownNOptions options;
  options.eps = 1.0 / static_cast<double>(state.range(0));
  options.delta = 1e-4;
  auto sketch = std::move(mrl::UnknownNSketch::Create(options)).value();
  std::size_t i = 0;
  for (auto _ : state) {
    sketch.Add(input[i++ & (input.size() - 1)]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["mem_elems"] =
      static_cast<double>(sketch.MemoryElements());
}
BENCHMARK(BM_UnknownNAdd)->Arg(20)->Arg(100)->Arg(1000);

void BM_UnknownNAddBatch(benchmark::State& state) {
  // Same configuration as BM_UnknownNAdd, fed through the batch path in
  // 64Ki-value spans. Answers are bit-identical; only the per-element
  // bookkeeping (virtual dispatch, buffer-capacity checks, RNG calls when
  // sampling) is amortized over whole blocks.
  const auto& input = InputStream();
  mrl::UnknownNOptions options;
  options.eps = 1.0 / static_cast<double>(state.range(0));
  options.delta = 1e-4;
  auto sketch = std::move(mrl::UnknownNSketch::Create(options)).value();
  const std::size_t chunk = std::size_t{1} << 16;
  std::size_t i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    if (i + chunk > input.size()) i = 0;
    state.ResumeTiming();
    sketch.AddBatch(std::span<const mrl::Value>(input.data() + i, chunk));
    i += chunk;
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * chunk));
  state.counters["mem_elems"] =
      static_cast<double>(sketch.MemoryElements());
}
BENCHMARK(BM_UnknownNAddBatch)->Arg(20)->Arg(100)->Arg(1000);

// Add vs AddBatch at a pinned sampling rate (explicit KnownN params, so
// the rate never changes mid-run — the unknown-N sketch's rate grows with
// the stream, which would make the two runs incomparable). This isolates
// the acceptance claim: at rate r >= 8 the batch path advances whole
// blocks with one uniform draw each instead of r per-element steps.
mrl::KnownNSketch MakeFixedRateSketch(mrl::Weight rate) {
  mrl::KnownNParams p;
  p.b = 8;
  p.k = 1024;
  p.h = 4;
  p.rate = rate;
  p.alpha = 0.5;
  p.n = std::uint64_t{1} << 62;
  mrl::KnownNOptions options;
  options.params = p;
  return std::move(mrl::KnownNSketch::Create(options)).value();
}

void BM_KnownNAddFixedRate(benchmark::State& state) {
  const auto& input = InputStream();
  auto sketch = MakeFixedRateSketch(static_cast<mrl::Weight>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    sketch.Add(input[i++ & (input.size() - 1)]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_KnownNAddFixedRate)->Arg(1)->Arg(8)->Arg(64);

void BM_KnownNAddBatchFixedRate(benchmark::State& state) {
  const auto& input = InputStream();
  auto sketch = MakeFixedRateSketch(static_cast<mrl::Weight>(state.range(0)));
  const std::size_t chunk = std::size_t{1} << 16;
  std::size_t i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    if (i + chunk > input.size()) i = 0;
    state.ResumeTiming();
    sketch.AddBatch(std::span<const mrl::Value>(input.data() + i, chunk));
    i += chunk;
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * chunk));
}
BENCHMARK(BM_KnownNAddBatchFixedRate)->Arg(1)->Arg(8)->Arg(64);

void BM_BlockSamplerAdd(benchmark::State& state) {
  const auto& input = InputStream();
  mrl::BlockSampler sampler(mrl::Random(7),
                            static_cast<mrl::Weight>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Add(input[i++ & (input.size() - 1)]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BlockSamplerAdd)->Arg(1)->Arg(8)->Arg(64);

void BM_BlockSamplerAddBatch(benchmark::State& state) {
  const auto& input = InputStream();
  mrl::BlockSampler sampler(mrl::Random(7),
                            static_cast<mrl::Weight>(state.range(0)));
  std::vector<mrl::Value> out;
  const std::size_t chunk = std::size_t{1} << 16;
  std::size_t i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    if (i + chunk > input.size()) i = 0;
    out.clear();
    state.ResumeTiming();
    sampler.AddBatch(input.data() + i, chunk, out);
    i += chunk;
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * chunk));
}
BENCHMARK(BM_BlockSamplerAddBatch)->Arg(1)->Arg(8)->Arg(64);

void BM_UnknownNAddDeepTree(benchmark::State& state) {
  // Small forced parameters: collapses and rate doublings happen
  // constantly; measures the amortized worst case.
  const auto& input = InputStream();
  mrl::UnknownNParams p;
  p.b = 4;
  p.k = 64;
  p.h = 3;
  p.alpha = 0.5;
  mrl::UnknownNOptions options;
  options.params = p;
  auto sketch = std::move(mrl::UnknownNSketch::Create(options)).value();
  std::size_t i = 0;
  for (auto _ : state) {
    sketch.Add(input[i++ & (input.size() - 1)]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_UnknownNAddDeepTree);

void BM_KnownNAdd(benchmark::State& state) {
  const auto& input = InputStream();
  mrl::KnownNOptions options;
  options.eps = 0.01;
  options.delta = 1e-4;
  options.n = std::uint64_t{1} << 40;  // sampling active
  auto sketch = std::move(mrl::KnownNSketch::Create(options)).value();
  std::size_t i = 0;
  for (auto _ : state) {
    sketch.Add(input[i++ & (input.size() - 1)]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_KnownNAdd);

void BM_MunroPatersonAdd(benchmark::State& state) {
  const auto& input = InputStream();
  mrl::MunroPatersonSketch::Options options;
  options.eps = 0.01;
  options.n = std::uint64_t{1} << 30;
  auto sketch = std::move(mrl::MunroPatersonSketch::Create(options)).value();
  std::size_t i = 0;
  for (auto _ : state) {
    sketch.Add(input[i++ & (input.size() - 1)]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MunroPatersonAdd);

void BM_ReservoirAdd(benchmark::State& state) {
  const auto& input = InputStream();
  mrl::ReservoirQuantileSketch::Options options;
  options.eps = 0.01;
  options.delta = 1e-4;
  auto sketch =
      std::move(mrl::ReservoirQuantileSketch::Create(options)).value();
  std::size_t i = 0;
  for (auto _ : state) {
    sketch.Add(input[i++ & (input.size() - 1)]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ReservoirAdd);

void BM_ExtremeValueAdd(benchmark::State& state) {
  const auto& input = InputStream();
  mrl::ExtremeValueOptions options;
  options.phi = 0.999;
  options.eps = 0.0005;
  options.delta = 1e-4;
  options.n = std::uint64_t{1} << 30;
  auto sketch = std::move(mrl::ExtremeValueSketch::Create(options)).value();
  std::size_t i = 0;
  for (auto _ : state) {
    sketch.Add(input[i++ & (input.size() - 1)]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ExtremeValueAdd);

void BM_UnknownNQuery(benchmark::State& state) {
  const auto& input = InputStream();
  mrl::UnknownNOptions options;
  options.eps = 0.01;
  options.delta = 1e-4;
  auto sketch = std::move(mrl::UnknownNSketch::Create(options)).value();
  for (mrl::Value v : input) sketch.Add(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.Query(0.5));
  }
}
BENCHMARK(BM_UnknownNQuery);

void BM_UnknownNQueryMany(benchmark::State& state) {
  // Batch query: histograms ask for many phis in one merge pass.
  const auto& input = InputStream();
  mrl::UnknownNOptions options;
  options.eps = 0.01;
  options.delta = 1e-4;
  auto sketch = std::move(mrl::UnknownNSketch::Create(options)).value();
  for (mrl::Value v : input) sketch.Add(v);
  std::vector<double> phis;
  for (int i = 1; i < 100; ++i) phis.push_back(i / 100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.QueryMany(phis));
  }
}
BENCHMARK(BM_UnknownNQueryMany);

void BM_SerializeSketch(benchmark::State& state) {
  // Checkpoint encode cost; the counter reports the checkpoint size.
  const auto& input = InputStream();
  mrl::UnknownNOptions options;
  options.eps = 0.01;
  options.delta = 1e-4;
  auto sketch = std::move(mrl::UnknownNSketch::Create(options)).value();
  for (mrl::Value v : input) sketch.Add(v);
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto blob = sketch.Serialize();
    bytes = blob.size();
    benchmark::DoNotOptimize(blob);
  }
  state.counters["checkpoint_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_SerializeSketch);

void BM_DeserializeSketch(benchmark::State& state) {
  const auto& input = InputStream();
  mrl::UnknownNOptions options;
  options.eps = 0.01;
  options.delta = 1e-4;
  auto sketch = std::move(mrl::UnknownNSketch::Create(options)).value();
  for (mrl::Value v : input) sketch.Add(v);
  const auto blob = sketch.Serialize();
  for (auto _ : state) {
    auto restored = mrl::UnknownNSketch::Deserialize(blob);
    benchmark::DoNotOptimize(restored);
  }
}
BENCHMARK(BM_DeserializeSketch);

void BM_ExportSummary(benchmark::State& state) {
  const auto& input = InputStream();
  mrl::UnknownNOptions options;
  options.eps = 0.01;
  options.delta = 1e-4;
  auto sketch = std::move(mrl::UnknownNSketch::Create(options)).value();
  for (mrl::Value v : input) sketch.Add(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.ExportSummary());
  }
}
BENCHMARK(BM_ExportSummary);

void BM_SummaryQuery(benchmark::State& state) {
  // Repeated queries against a frozen summary: the O(log m) path.
  const auto& input = InputStream();
  mrl::UnknownNOptions options;
  options.eps = 0.01;
  options.delta = 1e-4;
  auto sketch = std::move(mrl::UnknownNSketch::Create(options)).value();
  for (mrl::Value v : input) sketch.Add(v);
  mrl::QuantileSummary summary = sketch.ExportSummary();
  double phi = 0.001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(summary.Quantile(phi));
    phi += 0.001;
    if (phi > 1.0) phi = 0.001;
  }
}
BENCHMARK(BM_SummaryQuery);

}  // namespace

int main(int argc, char** argv) {
  return mrl::bench::RunBenchmarksWithReporter(argc, argv, "throughput");
}
