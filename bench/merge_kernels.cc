// Microbenchmarks for the weighted-merge selection kernel and the collapse
// hot path. The pre-loser-tree flat scan is kept in the library as
// SelectWeightedPositionsNaive so old and new kernels run side by side here
// (and differentially in tests/merge_differential_test.cc).
//
// BM_CollapseSteadyState additionally asserts the PR's zero-allocation
// claim: a global operator new hook counts heap allocations around each
// steady-state Collapse and aborts the binary if any occur. The hook is
// compiled out under sanitizers and MRLQUANT_AUDIT builds, whose
// instrumentation allocates behind our back.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <vector>

#include "bench_reporter.h"
#include "core/buffer.h"
#include "core/collapse.h"
#include "core/sharded.h"
#include "core/weighted_merge.h"
#include "util/random.h"
#include "util/types.h"

#if defined(MRLQUANT_AUDIT) || defined(__SANITIZE_ADDRESS__) || \
    defined(__SANITIZE_THREAD__)
#define MRL_BENCH_COUNT_ALLOCS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define MRL_BENCH_COUNT_ALLOCS 0
#else
#define MRL_BENCH_COUNT_ALLOCS 1
#endif
#else
#define MRL_BENCH_COUNT_ALLOCS 1
#endif

#if MRL_BENCH_COUNT_ALLOCS

// GCC cannot see that the replaced operator new/delete pair below is
// internally consistent (malloc in new, free in delete) and reports a
// mismatched-new-delete false positive at every call site in this TU.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n) { return ::operator new(n); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif  // MRL_BENCH_COUNT_ALLOCS

namespace mrl {
namespace {

constexpr std::size_t kK = 1024;

std::uint64_t AllocCount() {
#if MRL_BENCH_COUNT_ALLOCS
  return g_alloc_count.load(std::memory_order_relaxed);
#else
  return 0;
#endif
}

void CheckNoAllocs(std::uint64_t before, const char* where) {
#if MRL_BENCH_COUNT_ALLOCS
  const std::uint64_t after = AllocCount();
  if (after != before) {
    std::fprintf(stderr,
                 "FATAL: %s performed %llu heap allocation(s) in steady "
                 "state; the scratch-arena contract is broken\n",
                 where, static_cast<unsigned long long>(after - before));
    std::abort();
  }
#else
  (void)before;
  (void)where;
#endif
}

/// b sorted runs of kK elements each with mixed weights, plus the k
/// collapse-selected target positions for that weight — the exact input
/// shape Collapse feeds the merge kernel.
struct MergeInput {
  std::vector<std::vector<Value>> storage;
  std::vector<WeightedRun> runs;
  std::vector<Weight> targets;
};

MergeInput MakeMergeInput(std::size_t num_runs) {
  MergeInput in;
  Random rng(0x9e3779b9U + num_runs);
  Weight total_weight = 0;
  in.storage.resize(num_runs);
  for (std::size_t i = 0; i < num_runs; ++i) {
    std::vector<Value>& run = in.storage[i];
    run.resize(kK);
    double x = 0;
    for (Value& v : run) {
      x += rng.UniformDouble();
      v = x;
    }
    const Weight w = (i % 3) + 1;
    total_weight += w;
    in.runs.push_back({run.data(), run.size(), w});
  }
  CollapsePositionsInto(total_weight, kK, /*even_low=*/false, &in.targets);
  return in;
}

void BM_SelectNaive(benchmark::State& state) {
  const MergeInput in =
      MakeMergeInput(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::vector<Value> out = SelectWeightedPositionsNaive(in.runs, in.targets);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(in.runs.size() * kK));
}
// Odd run counts (3, 17) exercise the loser tree's padded non-power-of-two
// bracket and the prefetch paths on partially exhausted leaves.
BENCHMARK(BM_SelectNaive)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Arg(10)
    ->Arg(16)
    ->Arg(17)
    ->Arg(32);

void BM_SelectLoserTree(benchmark::State& state) {
  const MergeInput in =
      MakeMergeInput(static_cast<std::size_t>(state.range(0)));
  MergeScratch scratch;
  std::vector<Value> out(kK);
  for (auto _ : state) {
    SelectWeightedPositionsInto(in.runs.data(), in.runs.size(),
                                in.targets.data(), in.targets.size(), &scratch,
                                out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(in.runs.size() * kK));
}
BENCHMARK(BM_SelectLoserTree)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Arg(10)
    ->Arg(16)
    ->Arg(17)
    ->Arg(32);

void BM_CollapseSteadyState(benchmark::State& state) {
  const std::size_t b = static_cast<std::size_t>(state.range(0));
  const MergeInput in = MakeMergeInput(b);
  std::vector<Buffer> buffers(b, Buffer(kK));
  std::vector<Buffer*> inputs;
  for (Buffer& buf : buffers) inputs.push_back(&buf);
  CollapseScratch scratch;
  bool even_low = true;

  const auto one_round = [&] {
    for (std::size_t i = 0; i < b; ++i) {
      buffers[i].AssignSortedCopy(in.storage[i].data(), kK, in.runs[i].weight,
                                  /*level=*/0);
    }
    Collapse(inputs, /*output_slot=*/0, /*output_level=*/1, &even_low,
             &scratch);
  };
  // Warm every capacity (scratch vectors, buffer storage, tournament tree)
  // before asserting the zero-allocation steady state.
  for (int i = 0; i < 4; ++i) one_round();

  for (auto _ : state) {
    for (std::size_t i = 0; i < b; ++i) {
      buffers[i].AssignSortedCopy(in.storage[i].data(), kK, in.runs[i].weight,
                                  /*level=*/0);
    }
    const std::uint64_t before = AllocCount();
    Collapse(inputs, /*output_slot=*/0, /*output_level=*/1, &even_low,
             &scratch);
    CheckNoAllocs(before, "Collapse");
    benchmark::DoNotOptimize(buffers[0].values().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(b * kK));
  state.counters["mem_elems"] =
      static_cast<double>(b * kK + scratch.selected.capacity());
}
BENCHMARK(BM_CollapseSteadyState)->Arg(3)->Arg(10)->Arg(16);

void BM_ShardedQueryMany(benchmark::State& state) {
  ShardedQuantileSketch::Options options;
  options.eps = 0.01;
  options.delta = 1e-4;
  options.num_shards = 4;
  options.seed = 7;
  ShardedQuantileSketch sketch =
      std::move(ShardedQuantileSketch::Create(options)).value();
  Random rng(11);
  std::vector<Value> batch(4096);
  for (int shard = 0; shard < options.num_shards; ++shard) {
    for (int rep = 0; rep < 8; ++rep) {
      for (Value& v : batch) v = rng.UniformDouble();
      sketch.AddBatch(shard, batch);
    }
  }
  const std::vector<double> phis = {0.01, 0.25, 0.5, 0.75, 0.99};
  for (auto _ : state) {
    Result<std::vector<Value>> q = sketch.QueryMany(phis);
    benchmark::DoNotOptimize(q.value().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(phis.size()));
  state.counters["mem_elems"] = static_cast<double>(sketch.MemoryElements());
}
BENCHMARK(BM_ShardedQueryMany);

}  // namespace
}  // namespace mrl

int main(int argc, char** argv) {
  return mrl::bench::RunBenchmarksWithReporter(argc, argv, "merge_kernels");
}
