// Distributed-tier throughput: an in-process Router fronting three
// in-process QuantileServer backends over Unix-domain sockets, driven
// through the same client library as server_throughput — the full routed
// path (client encode, router frame decode, backend RPC on a pooled
// connection, response relay).
//
// Reported rows (values/s unless noted):
//   router_add_batch_direct      baseline: one backend, no router
//   router_add_batch_routed      routed to the tenant's ring owner
//   router_add_batch_replicated  routed + mirrored to the ring replica
//   router_add_batch_partitioned batch split across all three backends
//   router_query_latency_us      forwarded QUERY round trip, mean us
//   router_fanout_query_latency_us  partitioned QUERY: FETCH_SUMMARY
//                                fan-out + Section 6 merge, mean us
//   router_overhead_ratio        routed / direct (x; lower is better)

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench_reporter.h"
#include "router/router.h"
#include "server/client.h"
#include "server/server.h"
#include "util/random.h"
#include "util/types.h"

namespace mrl {
namespace {

using router::Router;
using router::RouterOptions;
using server::Client;
using server::QuantileServer;
using server::ServerOptions;
using server::TenantConfig;

constexpr std::size_t kBatch = 65536;
constexpr std::size_t kStream = std::size_t{2} << 20;

std::vector<Value> UniformStream(std::size_t n, std::uint64_t seed) {
  Random rng(seed);
  std::vector<Value> values(n);
  for (Value& v : values) v = rng.UniformDouble();
  return values;
}

struct Backend {
  std::unique_ptr<QuantileServer> server;
  std::string uds_path;
};

Backend StartBackend(const char* tag) {
  Backend b;
  b.uds_path = "/tmp/mrlq_rbench." +
               std::to_string(static_cast<long>(::getpid())) + "." + tag +
               ".sock";
  ServerOptions options;
  options.uds_path = b.uds_path;
  options.num_shards = 1;
  Result<std::unique_ptr<QuantileServer>> server =
      QuantileServer::Create(std::move(options));
  if (!server.ok()) {
    std::fprintf(stderr, "backend start failed: %s\n",
                 server.status().ToString().c_str());
    std::exit(1);
  }
  b.server = std::move(server).value();
  return b;
}

/// Pushes `values` serially in kBatch chunks; returns values/s.
double PushRate(Client* client, const char* tenant,
                const std::vector<Value>& values) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < values.size(); i += kBatch) {
    const std::size_t n = std::min(values.size() - i, kBatch);
    Result<std::uint64_t> count = client->AddBatch(
        tenant, std::span<const Value>(values.data() + i, n));
    if (!count.ok()) {
      std::fprintf(stderr, "ADD_BATCH failed: %s\n",
                   count.status().ToString().c_str());
      std::exit(1);
    }
  }
  const auto end = std::chrono::steady_clock::now();
  return static_cast<double>(values.size()) /
         std::chrono::duration<double>(end - start).count();
}

double QueryLatencyUs(Client* client, const char* tenant, int queries) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < queries; ++i) {
    const double phi = 0.001 + 0.998 * (static_cast<double>(i) / queries);
    if (!client->Query(tenant, phi).ok()) {
      std::fprintf(stderr, "QUERY failed\n");
      std::exit(1);
    }
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(end - start).count() /
         queries;
}

int Run() {
  bench::BenchReporter reporter("router_throughput");

  Backend b0 = StartBackend("b0");
  Backend b1 = StartBackend("b1");
  Backend b2 = StartBackend("b2");

  const std::string router_uds =
      "/tmp/mrlq_rbench." + std::to_string(static_cast<long>(::getpid())) +
      ".front.sock";
  RouterOptions options;
  options.uds_path = router_uds;
  options.backends = {"unix:" + b0.uds_path, "unix:" + b1.uds_path,
                      "unix:" + b2.uds_path};
  options.replicate = false;
  options.partitioned = {"part"};
  Result<std::unique_ptr<Router>> created = Router::Create(options);
  if (!created.ok()) {
    std::fprintf(stderr, "router start failed: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Router> front = std::move(created).value();

  const std::vector<Value> warmup = UniformStream(std::size_t{1} << 20, 1);
  const std::vector<Value> data = UniformStream(kStream, 2);
  TenantConfig config;

  // --- Baseline: the same client loop straight at one backend. ----------
  double direct = 0;
  {
    Result<Client> client = Client::ConnectUnix(b0.uds_path);
    if (!client.ok()) return 1;
    if (!client.value().CreateSketch("direct", config).ok()) return 1;
    PushRate(&client.value(), "direct", warmup);
    direct = PushRate(&client.value(), "direct", data);
    std::printf("router_add_batch_direct: %.3g values/s\n", direct);
    reporter.ReportValue("router_add_batch_direct", direct, "values/s");
  }

  // --- Routed to the ring owner. ----------------------------------------
  double routed = 0;
  {
    Result<Client> client = Client::ConnectUnix(router_uds);
    if (!client.ok()) return 1;
    if (!client.value().CreateSketch("routed", config).ok()) return 1;
    PushRate(&client.value(), "routed", warmup);
    routed = PushRate(&client.value(), "routed", data);
    std::printf("router_add_batch_routed: %.3g values/s\n", routed);
    reporter.ReportValue("router_add_batch_routed", routed, "values/s");

    const double query_us = QueryLatencyUs(&client.value(), "routed", 2000);
    std::printf("router_query_latency_us: %.3g us\n", query_us);
    reporter.ReportValue("router_query_latency_us", query_us, "us");
  }

  // --- Partitioned tenant: every batch split across all three backends. -
  {
    Result<Client> client = Client::ConnectUnix(router_uds);
    if (!client.ok()) return 1;
    if (!client.value().CreateSketch("part", config).ok()) return 1;
    PushRate(&client.value(), "part", warmup);
    const double rate = PushRate(&client.value(), "part", data);
    std::printf("router_add_batch_partitioned: %.3g values/s\n", rate);
    reporter.ReportValue("router_add_batch_partitioned", rate, "values/s");

    // Fan-out query: FETCH_SUMMARY from every backend + Section 6 merge.
    const double fanout_us = QueryLatencyUs(&client.value(), "part", 200);
    std::printf("router_fanout_query_latency_us: %.3g us\n", fanout_us);
    reporter.ReportValue("router_fanout_query_latency_us", fanout_us, "us");
  }

  // --- Replicated writes: mirrored to the ring replica (2x RPC volume). -
  front->Stop();
  front.reset();
  options.replicate = true;
  options.partitioned.clear();
  created = Router::Create(options);
  if (!created.ok()) return 1;
  front = std::move(created).value();
  {
    Result<Client> client = Client::ConnectUnix(router_uds);
    if (!client.ok()) return 1;
    if (!client.value().CreateSketch("mirrored", config).ok()) return 1;
    PushRate(&client.value(), "mirrored", warmup);
    const double rate = PushRate(&client.value(), "mirrored", data);
    std::printf("router_add_batch_replicated: %.3g values/s\n", rate);
    reporter.ReportValue("router_add_batch_replicated", rate, "values/s");
  }

  std::printf("router_overhead_ratio: %.2fx\n", direct / routed);
  reporter.ReportValue("router_overhead_ratio", direct / routed, "x");

  front->Stop();
  front.reset();
  b0.server->Stop();
  b1.server->Stop();
  b2.server->Stop();
  std::remove(router_uds.c_str());
  std::remove(b0.uds_path.c_str());
  std::remove(b1.uds_path.c_str());
  std::remove(b2.uds_path.c_str());
  return 0;
}

}  // namespace
}  // namespace mrl

int main() { return mrl::Run(); }
