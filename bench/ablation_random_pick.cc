// Ablation: WHY the block sampler must pick uniformly at random within
// each block (Section 3.1). The deterministic alternative — take the first
// element of every block ("systematic sampling") — looks equivalent on
// shuffled data but is catastrophically biased when the arrival order is
// periodic with a period related to the sampling rate, which real operator
// pipelines produce all the time (round-robin merges, clustered scans).
//
// Stream construction: v(i) = (i mod P) * 1000 + small noise. Once the
// sampling rate reaches P (or a multiple), first-of-block only ever sees
// residue-0 elements: the sample covers one P-th of the value space.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_reporter.h"
#include "core/unknown_n.h"
#include "stream/dataset.h"
#include "util/random.h"

namespace {

mrl::Dataset PeriodicStream(std::size_t n, int period, std::uint64_t seed) {
  mrl::Random rng(seed);
  std::vector<mrl::Value> values;
  values.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    values.push_back(1000.0 * static_cast<double>(i % static_cast<std::size_t>(
                                  period)) +
                     rng.UniformDouble());
  }
  return mrl::Dataset(std::move(values));
}

double WorstError(const mrl::Dataset& ds, bool first_of_block,
                  std::uint64_t seed) {
  mrl::UnknownNParams p;
  p.b = 4;
  p.k = 128;
  p.h = 3;
  p.alpha = 0.5;
  mrl::UnknownNOptions options;
  options.params = p;  // small params: sampling rate climbs quickly
  options.seed = seed;
  options.ablation_first_of_block_sampling = first_of_block;
  mrl::UnknownNSketch sketch =
      std::move(mrl::UnknownNSketch::Create(options)).value();
  for (mrl::Value v : ds.values()) sketch.Add(v);
  double worst = 0;
  for (double phi : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    worst = std::max(worst,
                     ds.QuantileError(sketch.Query(phi).value(), phi));
  }
  return worst;
}

}  // namespace

int main() {
  mrl::bench::BenchReporter reporter("ablation_random_pick");
  const std::size_t n = 400'000;
  std::printf("Ablation: uniform within-block pick vs deterministic "
              "first-of-block, periodic arrival order, N=%zu\n\n",
              n);
  std::printf("%-10s %18s %18s\n", "period", "uniform (paper)",
              "first-of-block");
  std::printf("------------------------------------------------\n");
  for (int period : {2, 4, 8, 16}) {
    mrl::Dataset ds = PeriodicStream(n, period, 7);
    double uniform = WorstError(ds, /*first_of_block=*/false, 11);
    double systematic = WorstError(ds, /*first_of_block=*/true, 11);
    std::printf("%-10d %18.5f %18.5f\n", period, uniform, systematic);
    const std::string tag = "/period=" + std::to_string(period);
    reporter.ReportValue("uniform_err" + tag, uniform, "rank");
    reporter.ReportValue("first_of_block_err" + tag, systematic, "rank");
  }
  std::printf("\nexpected shape: the uniform pick stays within the small-"
              "parameter budget (~0.05) on every period; first-of-block "
              "collapses to sampling a single residue class and its error "
              "explodes toward (period-1)/(2*period)\n");
  return 0;
}
