// End-to-end daemon throughput: an in-process QuantileServer on a
// Unix-domain socket, driven through the client library — the full wire
// path (encode, syscalls, frame decode, shard event loop, registry,
// sketch ingestion).
//
// Also enforces the PR's zero-allocation claim for the steady-state shard
// ingest path: after warmup, a global operator new hook counts heap
// allocations across client encode, shard readv/decode, registry lookup,
// sketch ingestion and response writev for a window of pipelined frames
// and aborts the binary if any occur. The hook is compiled out under
// sanitizers and MRLQUANT_AUDIT builds, whose instrumentation allocates
// behind our back.
//
// Reported rows (values/s unless noted):
//   server_add_batch_uds         single client, serial, 64Ki batches
//   server_query_latency_us      QUERY round-trip, mean microseconds
//   server_add_batch_serial_small  1 conn, request-per-RTT, 512-value
//                                  batches — the PR5 worker-pool protocol
//                                  behavior, the sweep's baseline
//   server_add_batch_c{C}_s{S}   C pipelined connections x S shards,
//                                aggregate, 512-value batches
//
// The acceptance ratio for PR8 (>= 3x) compares the best 4-shard
// pipelined row against server_add_batch_serial_small: on a many-core box
// the shards add parallel speedup on top; on a single-core box the win is
// pipelining amortizing per-request round trips, which is exactly the
// synchronization-and-syscall overhead this PR removes.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_reporter.h"
#include "server/client.h"
#include "server/server.h"
#include "util/random.h"
#include "util/types.h"

#if defined(MRLQUANT_AUDIT) || defined(__SANITIZE_ADDRESS__) || \
    defined(__SANITIZE_THREAD__)
#define MRL_BENCH_COUNT_ALLOCS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define MRL_BENCH_COUNT_ALLOCS 0
#else
#define MRL_BENCH_COUNT_ALLOCS 1
#endif
#else
#define MRL_BENCH_COUNT_ALLOCS 1
#endif

#if MRL_BENCH_COUNT_ALLOCS

// GCC cannot see that the replaced operator new/delete pair below is
// internally consistent (malloc in new, free in delete) and reports a
// mismatched-new-delete false positive at every call site in this TU.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n) { return ::operator new(n); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif  // MRL_BENCH_COUNT_ALLOCS

namespace mrl {
namespace {

using server::Client;
using server::QuantileServer;
using server::ServerOptions;
using server::SketchKind;
using server::TenantConfig;

constexpr std::size_t kBatch = 65536;
/// Small frames for the connection sweep: per-request overhead dominated,
/// which is what sharding + pipelining attack. (At 32 values/frame the
/// round-trip cost dwarfs ingestion; by ~512 the per-value sketch work
/// dominates and the sweep would only measure the sketch.)
constexpr std::size_t kSmallBatch = 32;
constexpr std::size_t kPipelineDepth = 32;

std::uint64_t AllocCount() {
#if MRL_BENCH_COUNT_ALLOCS
  return g_alloc_count.load(std::memory_order_relaxed);
#else
  return 0;
#endif
}

void CheckNoAllocs(std::uint64_t before, const char* where) {
#if MRL_BENCH_COUNT_ALLOCS
  const std::uint64_t after = AllocCount();
  if (after != before) {
    std::fprintf(stderr,
                 "FATAL: %s performed %llu heap allocation(s) in steady "
                 "state; the zero-allocation ADD_BATCH contract is broken\n",
                 where, static_cast<unsigned long long>(after - before));
    std::abort();
  }
#else
  (void)before;
  (void)where;
#endif
}

std::vector<Value> UniformStream(std::size_t n, std::uint64_t seed) {
  Random rng(seed);
  std::vector<Value> values(n);
  for (Value& v : values) v = rng.UniformDouble();
  return values;
}

/// Pushes `values` serially (one request per round trip) in `batch`
/// chunks; returns elapsed seconds.
double PushAllSerial(Client* client, const char* tenant,
                     const std::vector<Value>& values, std::size_t batch) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < values.size(); i += batch) {
    const std::size_t n = std::min(values.size() - i, batch);
    Result<std::uint64_t> count = client->AddBatch(
        tenant, std::span<const Value>(values.data() + i, n));
    if (!count.ok()) {
      std::fprintf(stderr, "ADD_BATCH failed: %s\n",
                   count.status().ToString().c_str());
      std::exit(1);
    }
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

/// Pushes `values` in kSmallBatch frames, kPipelineDepth frames per
/// flush. Exits on any failed request.
void PushAllPipelined(Client* client, const char* tenant,
                      const std::vector<Value>& values) {
  std::size_t i = 0;
  while (i < values.size()) {
    for (std::size_t d = 0; d < kPipelineDepth && i < values.size(); ++d) {
      const std::size_t n = std::min(values.size() - i, kSmallBatch);
      client->PipelineAddBatch(
          tenant, std::span<const Value>(values.data() + i, n));
      i += n;
    }
    const Status flushed = client->PipelineFlush(nullptr);
    if (!flushed.ok()) {
      std::fprintf(stderr, "pipelined ADD_BATCH failed: %s\n",
                   flushed.ToString().c_str());
      std::exit(1);
    }
  }
}

struct SweepServer {
  std::unique_ptr<QuantileServer> server;
  std::string uds_path;
};

SweepServer StartServer(int num_shards, const char* tag) {
  SweepServer s;
  s.uds_path = "/tmp/mrlq_bench." +
               std::to_string(static_cast<long>(::getpid())) + "." + tag +
               ".sock";
  ServerOptions options;
  options.uds_path = s.uds_path;
  options.num_shards = num_shards;
  Result<std::unique_ptr<QuantileServer>> server =
      QuantileServer::Create(std::move(options));
  if (!server.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 server.status().ToString().c_str());
    std::exit(1);
  }
  s.server = std::move(server).value();
  return s;
}

/// Aggregate pipelined ADD_BATCH throughput: `connections` client threads
/// pushing `per_conn` values each into per-connection tenants (tenant
/// names spread connections across shards via the registry hash).
double SweepConfig(const std::string& uds_path, int connections,
                   std::size_t per_conn) {
  std::vector<std::vector<Value>> chunks;
  chunks.reserve(static_cast<std::size_t>(connections));
  for (int c = 0; c < connections; ++c) {
    chunks.push_back(
        UniformStream(per_conn, 9000 + static_cast<std::uint64_t>(c)));
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> pushers;
  const auto start = std::chrono::steady_clock::now();
  for (int c = 0; c < connections; ++c) {
    pushers.emplace_back([&, c] {
      Result<Client> client = Client::ConnectUnix(uds_path);
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      const std::string tenant = "sweep" + std::to_string(c);
      if (!client.value().CreateSketch(tenant, TenantConfig{}).ok()) {
        failures.fetch_add(1);
        return;
      }
      PushAllPipelined(&client.value(), tenant.c_str(),
                       chunks[static_cast<std::size_t>(c)]);
      if (!client.value().Delete(tenant).ok()) failures.fetch_add(1);
    });
  }
  for (std::thread& p : pushers) p.join();
  const auto end = std::chrono::steady_clock::now();
  if (failures.load() != 0) {
    std::fprintf(stderr, "sweep config failed\n");
    std::exit(1);
  }
  const double total =
      static_cast<double>(connections) * static_cast<double>(per_conn);
  return total / std::chrono::duration<double>(end - start).count();
}

int Run() {
  bench::BenchReporter reporter("server_throughput");

  // --- Single-shard server: legacy rows + the sweep baseline. -----------
  SweepServer s1 = StartServer(/*num_shards=*/1, "s1");

  Result<Client> connected = Client::ConnectUnix(s1.uds_path);
  if (!connected.ok()) return 1;
  Client client = std::move(connected).value();

  // --- Single-client ADD_BATCH throughput (unknown-N tenant). -----------
  if (!client.CreateSketch("bench", TenantConfig{}).ok()) return 1;
  const std::vector<Value> warmup = UniformStream(1 << 21, 1);
  PushAllSerial(&client, "bench", warmup, kBatch);  // warm all layers

  // Zero-allocation window (serial): every layer of the ADD_BATCH path is
  // warmed; further frames must not touch the heap from any thread.
  {
    const std::uint64_t before = AllocCount();
    for (int i = 0; i < 32; ++i) {
      std::span<const Value> batch(warmup.data() + i * 1024, kBatch / 2);
      if (!client.AddBatch("bench", batch).ok()) return 1;
    }
    CheckNoAllocs(before, "steady-state ADD_BATCH");
  }

  // Zero-allocation window (pipelined): the same contract through the
  // shard's multi-frame-per-readv decode loop and batched writev flush.
  {
    PushAllPipelined(&client, "bench", warmup);  // warm the pipelined path
    const std::uint64_t before = AllocCount();
    for (int i = 0; i < 4; ++i) {
      for (std::size_t d = 0; d < kPipelineDepth; ++d) {
        client.PipelineAddBatch(
            "bench", std::span<const Value>(warmup.data() + d * kSmallBatch,
                                            kSmallBatch));
      }
      if (!client.PipelineFlush(nullptr).ok()) return 1;
    }
    CheckNoAllocs(before, "steady-state pipelined ADD_BATCH");
  }

  const std::vector<Value> data = UniformStream(std::size_t{4} << 20, 2);
  const double seconds = PushAllSerial(&client, "bench", data, kBatch);
  const double rate = static_cast<double>(data.size()) / seconds;
  std::printf("server_add_batch_uds: %.3g values/s\n", rate);
  reporter.ReportValue("server_add_batch_uds", rate, "values/s");

  // --- QUERY round-trip latency. ----------------------------------------
  {
    constexpr int kQueries = 2000;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kQueries; ++i) {
      const double phi = 0.001 + 0.998 * (static_cast<double>(i) / kQueries);
      if (!client.Query("bench", phi).ok()) return 1;
    }
    const auto end = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(end - start).count() /
        kQueries;
    std::printf("server_query_latency_us: %.3g us\n", us);
    reporter.ReportValue("server_query_latency_us", us, "us");
  }

  // --- Sweep baseline: request-per-RTT with small frames (the PR5 worker
  // pool served exactly this protocol behavior). -------------------------
  double serial_small = 0;
  {
    const std::vector<Value> small = UniformStream(std::size_t{1} << 19, 3);
    PushAllSerial(&client, "bench", small, kSmallBatch);  // warm
    const double secs = PushAllSerial(&client, "bench", small, kSmallBatch);
    serial_small = static_cast<double>(small.size()) / secs;
    std::printf("server_add_batch_serial_small: %.3g values/s\n",
                serial_small);
    reporter.ReportValue("server_add_batch_serial_small", serial_small,
                         "values/s");
  }

  // --- Connection-scaling sweep: C pipelined connections x S shards. ----
  const int kConnCounts[] = {1, 4, 16, 64};
  double best_s4 = 0;
  for (const int shards : {1, 4}) {
    // The single-shard pass reuses s1 (moving it in); the 4-shard pass
    // gets a fresh server after s1 is stopped below.
    SweepServer srv = shards == 1 ? std::move(s1) : StartServer(4, "s4");
    for (const int conns : kConnCounts) {
      // Fixed total work per config so slow configs do not dominate
      // wall-clock; at least one flush-window per connection.
      const std::size_t total = std::size_t{1} << 21;
      const std::size_t per_conn =
          std::max<std::size_t>(total / static_cast<std::size_t>(conns),
                                kSmallBatch * kPipelineDepth);
      const double sweep_rate =
          SweepConfig(srv.uds_path, conns, per_conn);
      char row[64];
      std::snprintf(row, sizeof(row), "server_add_batch_c%d_s%d", conns,
                    shards);
      std::printf("%s: %.3g values/s\n", row, sweep_rate);
      reporter.ReportValue(row, sweep_rate, "values/s");
      if (shards == 4) best_s4 = std::max(best_s4, sweep_rate);
    }
    srv.server->Stop();
    std::remove(srv.uds_path.c_str());
  }

  std::printf("pr8_speedup_best4shard_vs_serial: %.2fx\n",
              best_s4 / serial_small);
  reporter.ReportValue("pr8_speedup_best4shard_vs_serial",
                       best_s4 / serial_small, "x");
  return 0;
}

}  // namespace
}  // namespace mrl

int main() { return mrl::Run(); }
