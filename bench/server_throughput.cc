// End-to-end daemon throughput: an in-process QuantileServer on a
// Unix-domain socket, driven through the client library — the full wire
// path (encode, syscalls, frame decode, registry, sketch ingestion).
//
// Also enforces the PR's zero-allocation claim for the steady-state
// ADD_BATCH path: after warmup, a global operator new hook counts heap
// allocations across client encode, server decode, registry lookup, and
// sketch ingestion for a window of frames and aborts the binary if any
// occur. The hook is compiled out under sanitizers and MRLQUANT_AUDIT
// builds, whose instrumentation allocates behind our back.
//
// Reported rows (values/s unless noted):
//   server_add_batch_uds         single client, unknown-N tenant
//   server_add_batch_uds_4x      4 clients, sharded tenant (4 shards)
//   server_query_latency_us      QUERY round-trip, mean microseconds

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_reporter.h"
#include "server/client.h"
#include "server/server.h"
#include "util/random.h"
#include "util/types.h"

#if defined(MRLQUANT_AUDIT) || defined(__SANITIZE_ADDRESS__) || \
    defined(__SANITIZE_THREAD__)
#define MRL_BENCH_COUNT_ALLOCS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define MRL_BENCH_COUNT_ALLOCS 0
#else
#define MRL_BENCH_COUNT_ALLOCS 1
#endif
#else
#define MRL_BENCH_COUNT_ALLOCS 1
#endif

#if MRL_BENCH_COUNT_ALLOCS

// GCC cannot see that the replaced operator new/delete pair below is
// internally consistent (malloc in new, free in delete) and reports a
// mismatched-new-delete false positive at every call site in this TU.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n) { return ::operator new(n); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif  // MRL_BENCH_COUNT_ALLOCS

namespace mrl {
namespace {

using server::Client;
using server::QuantileServer;
using server::ServerOptions;
using server::SketchKind;
using server::TenantConfig;

constexpr std::size_t kBatch = 65536;

std::uint64_t AllocCount() {
#if MRL_BENCH_COUNT_ALLOCS
  return g_alloc_count.load(std::memory_order_relaxed);
#else
  return 0;
#endif
}

void CheckNoAllocs(std::uint64_t before, const char* where) {
#if MRL_BENCH_COUNT_ALLOCS
  const std::uint64_t after = AllocCount();
  if (after != before) {
    std::fprintf(stderr,
                 "FATAL: %s performed %llu heap allocation(s) in steady "
                 "state; the zero-allocation ADD_BATCH contract is broken\n",
                 where, static_cast<unsigned long long>(after - before));
    std::abort();
  }
#else
  (void)before;
  (void)where;
#endif
}

std::vector<Value> UniformStream(std::size_t n, std::uint64_t seed) {
  Random rng(seed);
  std::vector<Value> values(n);
  for (Value& v : values) v = rng.UniformDouble();
  return values;
}

/// Pushes `values` in kBatch chunks; returns elapsed seconds.
double PushAll(Client* client, const char* tenant,
               const std::vector<Value>& values) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < values.size(); i += kBatch) {
    const std::size_t n = std::min(values.size() - i, kBatch);
    Result<std::uint64_t> count = client->AddBatch(
        tenant, std::span<const Value>(values.data() + i, n));
    if (!count.ok()) {
      std::fprintf(stderr, "ADD_BATCH failed: %s\n",
                   count.status().ToString().c_str());
      std::exit(1);
    }
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

int Run() {
  bench::BenchReporter reporter("server_throughput");
  const std::string uds_path =
      "/tmp/mrlq_bench." + std::to_string(static_cast<long>(::getpid())) +
      ".sock";

  ServerOptions options;
  options.uds_path = uds_path;
  options.num_workers = 8;
  Result<std::unique_ptr<QuantileServer>> server =
      QuantileServer::Create(std::move(options));
  if (!server.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }

  Result<Client> connected = Client::ConnectUnix(uds_path);
  if (!connected.ok()) return 1;
  Client client = std::move(connected).value();

  // --- Single-client ADD_BATCH throughput (unknown-N tenant). -----------
  if (!client.CreateSketch("bench", TenantConfig{}).ok()) return 1;
  const std::vector<Value> warmup = UniformStream(1 << 21, 1);
  PushAll(&client, "bench", warmup);  // warm scratch, buffers, allocator

  // Zero-allocation window: every layer of the ADD_BATCH path is warmed;
  // a window of further frames must not touch the heap from any thread.
  {
    const std::uint64_t before = AllocCount();
    for (int i = 0; i < 32; ++i) {
      std::span<const Value> batch(warmup.data() + i * 1024, kBatch / 2);
      if (!client.AddBatch("bench", batch).ok()) return 1;
    }
    CheckNoAllocs(before, "steady-state ADD_BATCH");
  }

  const std::vector<Value> data = UniformStream(std::size_t{4} << 20, 2);
  const double seconds = PushAll(&client, "bench", data);
  const double rate = static_cast<double>(data.size()) / seconds;
  std::printf("server_add_batch_uds: %.3g values/s\n", rate);
  reporter.ReportValue("server_add_batch_uds", rate, "values/s");

  // --- QUERY round-trip latency. ----------------------------------------
  {
    constexpr int kQueries = 2000;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kQueries; ++i) {
      const double phi = 0.001 + 0.998 * (static_cast<double>(i) / kQueries);
      if (!client.Query("bench", phi).ok()) return 1;
    }
    const auto end = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(end - start).count() /
        kQueries;
    std::printf("server_query_latency_us: %.3g us\n", us);
    reporter.ReportValue("server_query_latency_us", us, "us");
  }

  // --- 4 concurrent clients into a sharded tenant. ----------------------
  {
    constexpr int kClients = 4;
    TenantConfig config;
    config.kind = SketchKind::kSharded;
    config.num_shards = kClients;
    if (!client.CreateSketch("bench4x", config).ok()) return 1;

    std::vector<std::vector<Value>> chunks;
    chunks.reserve(kClients);
    for (int t = 0; t < kClients; ++t) {
      chunks.push_back(UniformStream(std::size_t{1} << 20, 100 + t));
    }
    std::atomic<int> failures{0};
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> pushers;
    for (int t = 0; t < kClients; ++t) {
      pushers.emplace_back([&, t] {
        Result<Client> c = Client::ConnectUnix(uds_path);
        if (!c.ok()) {
          failures.fetch_add(1);
          return;
        }
        PushAll(&c.value(), "bench4x", chunks[static_cast<std::size_t>(t)]);
      });
    }
    for (std::thread& p : pushers) p.join();
    const auto end = std::chrono::steady_clock::now();
    if (failures.load() != 0) return 1;
    const double total = static_cast<double>(kClients) *
                         static_cast<double>(std::size_t{1} << 20);
    const double rate4 =
        total / std::chrono::duration<double>(end - start).count();
    std::printf("server_add_batch_uds_4x: %.3g values/s\n", rate4);
    reporter.ReportValue("server_add_batch_uds_4x", rate4, "values/s");
  }

  server.value()->Stop();
  std::remove(uds_path.c_str());
  return 0;
}

}  // namespace
}  // namespace mrl

int main() { return mrl::Run(); }
