// Ablation: the collapse POLICY is the design choice MRL98/99 make inside
// the shared framework. At identical memory (same b, k, no sampling), run
// the same stream through the three policies and compare observed error,
// the number of collapses C, the sum of collapse weights W (Lemma 4 bounds
// the rank error by ~(W - C)/2 + w_max), and the tree height. The MRL
// lowest-level policy should dominate: smallest W for the same input.

#include <algorithm>
#include <cstdio>

#include "bench_reporter.h"

#include "baseline/ars.h"
#include "baseline/munro_paterson.h"
#include "core/known_n.h"
#include "stream/generator.h"

namespace {

struct Row {
  const char* policy;
  double worst_error;
  std::uint64_t collapses;
  std::uint64_t sum_weights;
  int height;
};

template <typename Sketch>
Row Measure(const char* name, Sketch& sketch, const mrl::Dataset& ds) {
  for (mrl::Value v : ds.values()) sketch.Add(v);
  double worst = 0;
  for (double phi : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    worst = std::max(worst,
                     ds.QuantileError(sketch.Query(phi).value(), phi));
  }
  return {name, worst, sketch.tree_stats().num_collapses,
          sketch.tree_stats().sum_collapse_weights,
          sketch.tree_stats().max_level};
}

}  // namespace

int main() {
  const int b = 6;
  const std::size_t k = 512;
  const std::size_t n = 600'000;

  mrl::StreamSpec spec;
  spec.n = n;
  spec.seed = 3;
  mrl::Dataset ds = mrl::GenerateStream(spec);

  std::printf("Ablation: collapse policy at identical memory (b=%d, k=%zu, "
              "N=%zu, no sampling)\n\n",
              b, k, n);
  std::printf("%-16s %12s %10s %14s %8s\n", "policy", "worst err",
              "collapses", "sum weights W", "height");
  std::printf("----------------------------------------------------------------"
              "\n");

  std::vector<Row> rows;
  {
    mrl::KnownNParams p;  // the MRL policy, rate 1
    p.b = b;
    p.k = k;
    p.h = 50;
    p.rate = 1;
    p.alpha = 1.0;
    p.n = n;
    mrl::KnownNOptions options;
    options.params = p;
    auto sketch = std::move(mrl::KnownNSketch::Create(options)).value();
    rows.push_back(Measure("mrl (lowest set)", sketch, ds));
  }
  {
    mrl::MunroPatersonParams p;
    p.b = b;
    p.k = k;
    p.n = n;
    mrl::MunroPatersonSketch::Options options;
    options.params = p;
    auto sketch =
        std::move(mrl::MunroPatersonSketch::Create(options)).value();
    rows.push_back(Measure("munro-paterson", sketch, ds));
  }
  {
    mrl::ArsParams p;
    p.b = b;
    p.k = k;
    p.n = n;
    mrl::ArsSketch::Options options;
    options.params = p;
    auto sketch = std::move(mrl::ArsSketch::Create(options)).value();
    rows.push_back(Measure("collapse-all", sketch, ds));
  }
  mrl::bench::BenchReporter reporter("ablation_collapse_policies");
  for (const Row& r : rows) {
    std::printf("%-16s %12.5f %10llu %14llu %8d\n", r.policy, r.worst_error,
                static_cast<unsigned long long>(r.collapses),
                static_cast<unsigned long long>(r.sum_weights), r.height);
    reporter.ReportValue(std::string("worst_err/") + r.policy, r.worst_error,
                         "rank");
    reporter.ReportValue(std::string("sum_collapse_weights/") + r.policy,
                         static_cast<double>(r.sum_weights), "weight");
  }
  std::printf("\nexpected shape: the MRL policy needs the smallest W (and so "
              "the smallest error bound) for the same memory — the reason "
              "MRL98 selected it and MRL99 builds on it\n");
  return 0;
}
