// Empirical verification of the Section 4 guarantee and the Section 1.3
// data-independence requirement: observed rank error of the unknown-N
// sketch across value distributions and arrival orders, all far below the
// promised eps; plus a failure-rate estimate against delta at a loose
// delta where failures are observable in a reasonable number of trials.

#include <algorithm>
#include <cstdio>

#include "bench_reporter.h"
#include "core/unknown_n.h"
#include "stream/generator.h"

namespace {

double WorstError(const mrl::Dataset& ds, const mrl::UnknownNSketch& sketch) {
  double worst = 0;
  for (double phi : {0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    worst = std::max(worst,
                     ds.QuantileError(sketch.Query(phi).value(), phi));
  }
  return worst;
}

}  // namespace

int main() {
  mrl::bench::BenchReporter reporter("accuracy_observed_error");
  const double eps = 0.01;
  const double delta = 1e-4;
  const std::size_t n = 1'200'000;  // past the sampling onset for eps=0.01

  std::printf("Observed worst-case rank error over 9 quantiles, eps=%.3f, "
              "delta=%.0e, N=%zu\n\n",
              eps, delta, n);
  std::printf("%-14s %-14s %12s %10s\n", "distribution", "order",
              "worst error", "rate");
  std::printf("------------------------------------------------------\n");
  double global_worst = 0;
  for (const char* dist : {"uniform", "gaussian", "exponential", "zipf"}) {
    for (mrl::ArrivalOrder order :
         {mrl::ArrivalOrder::kAsDrawn, mrl::ArrivalOrder::kSortedAsc,
          mrl::ArrivalOrder::kSortedDesc, mrl::ArrivalOrder::kAlternating}) {
      mrl::StreamSpec spec;
      spec.distribution = dist;
      spec.order = order;
      spec.n = n;
      spec.seed = 1;
      mrl::Dataset ds = mrl::GenerateStream(spec);
      mrl::UnknownNOptions options;
      options.eps = eps;
      options.delta = delta;
      options.seed = 2;
      mrl::UnknownNSketch sketch =
          std::move(mrl::UnknownNSketch::Create(options)).value();
      for (mrl::Value v : ds.values()) sketch.Add(v);
      double worst = WorstError(ds, sketch);
      global_worst = std::max(global_worst, worst);
      std::printf("%-14s %-14s %12.5f %10llu\n", dist,
                  mrl::ArrivalOrderName(order).c_str(), worst,
                  static_cast<unsigned long long>(sketch.sampling_rate()));
      reporter.ReportValue(
          std::string("worst_err/") + dist + "/" + mrl::ArrivalOrderName(order),
          worst, "rank");
    }
  }
  std::printf("\nglobal worst observed error: %.5f (guarantee: %.3f) -> %s\n",
              global_worst, eps, global_worst <= eps ? "PASS" : "FAIL");
  reporter.ReportValue("global_worst_err", global_worst, "rank");

  // Failure-rate check at a loose delta: small forced parameters so the
  // sampling error dominates and failures are actually possible.
  std::printf("\nfailure-rate check (forced small params, 60 trials):\n");
  int failures = 0;
  const int trials = 60;
  const double loose_eps = 0.05;
  for (int t = 0; t < trials; ++t) {
    mrl::StreamSpec spec;
    spec.n = 100'000;
    spec.seed = 100 + static_cast<std::uint64_t>(t);
    mrl::Dataset ds = mrl::GenerateStream(spec);
    mrl::UnknownNParams p;
    p.b = 4;
    p.k = 128;
    p.h = 4;
    p.alpha = 0.5;
    mrl::UnknownNOptions options;
    options.params = p;
    options.seed = 500 + static_cast<std::uint64_t>(t);
    mrl::UnknownNSketch sketch =
        std::move(mrl::UnknownNSketch::Create(options)).value();
    for (mrl::Value v : ds.values()) sketch.Add(v);
    double err = ds.QuantileError(sketch.Query(0.5).value(), 0.5);
    if (err > loose_eps) ++failures;
  }
  std::printf("  %d / %d medians outside eps=%.2f at b=4,k=128,h=4\n",
              failures, trials, loose_eps);
  reporter.ReportValue("failure_rate",
                       static_cast<double>(failures) / trials, "fraction");
  return global_worst <= eps ? 0 : 1;
}
