// Reproduces Figure 4: memory requirement as a function of the dataset
// size N (log10 scale), for eps = 0.01 and delta = 0.0001. The known-N
// algorithm exploits small N (no sampling needed) and plateaus once
// sampling takes over; the unknown-N algorithm pays a constant amount
// regardless of N. The crossover — known-N cheaper for small N, the two
// comparable at the plateau — is the reproduction target.

#include <cmath>
#include <cstdio>

#include "bench_reporter.h"
#include "core/params.h"

int main() {
  mrl::bench::BenchReporter reporter("fig4_memory_vs_n");
  const double eps = 0.01;
  const double delta = 1e-4;
  const std::uint64_t unknown = mrl::UnknownNMemoryElements(eps, delta)
                                    .value();
  reporter.ReportValue("unknown_n_mem", static_cast<double>(unknown),
                       "elements");

  std::printf("Figure 4: memory vs log10(N), eps = %.2f, delta = %.0e\n\n",
              eps, delta);
  std::printf("%-10s %14s %14s\n", "log10(N)", "known-N (K)", "unknown-N (K)");
  std::printf("----------------------------------------\n");
  for (int exp10 = 3; exp10 <= 12; ++exp10) {
    const std::uint64_t n =
        static_cast<std::uint64_t>(std::pow(10.0, exp10));
    const std::uint64_t known =
        mrl::KnownNMemoryElements(eps, delta, n).value();
    std::printf("%-10d %13.2fK %13.2fK\n", exp10,
                static_cast<double>(known) / 1000.0,
                static_cast<double>(unknown) / 1000.0);
    reporter.ReportValue("known_n_mem/log10N=" + std::to_string(exp10),
                         static_cast<double>(known), "elements");
  }
  std::printf("\nexpected shape: known-N grows with N then flattens "
              "(sampling); unknown-N is constant and within 2x of the "
              "plateau\n");
  return 0;
}
