// Ablation: the Section 4.5 optimization surface. For eps = 0.01,
// delta = 1e-4, print the memory b*k over the (b, h) grid where k is the
// smallest buffer size satisfying the sampling constraint (Eq. 1) and the
// tree constraint (Eq. 2) with the optimally balanced alpha. Shows why the
// solver's chosen (b, h) is where it is: too few buffers or too small a
// pre-sampling height starves the sampling constraint (leaf counts L_d,
// L_s collapse); too many buffers waste memory linearly.

#include <cmath>
#include <cstdio>

#include "bench_reporter.h"
#include "util/math.h"

int main() {
  const double eps = 0.01;
  const double delta = 1e-4;
  const double log_term = std::log(2.0 / delta);

  std::printf("Section 4.5 optimization landscape: memory b*k (K elements) "
              "over (b, h), eps=%.2f delta=%.0e\n\n",
              eps, delta);
  std::printf("%4s |", "b\\h");
  for (int h = 1; h <= 12; ++h) std::printf(" %7d", h);
  std::printf("\n-----+");
  for (int h = 1; h <= 12; ++h) std::printf("--------");
  std::printf("\n");

  double best = 1e18;
  int best_b = 0, best_h = 0;
  for (int b = 2; b <= 12; ++b) {
    std::printf("%4d |", b);
    for (int h = 1; h <= 12; ++h) {
      const double ld = static_cast<double>(mrl::SaturatingBinomial(
          static_cast<std::uint64_t>(b + h - 2),
          static_cast<std::uint64_t>(h - 1)));
      const double ls = static_cast<double>(mrl::SaturatingBinomial(
          static_cast<std::uint64_t>(b + h - 3),
          static_cast<std::uint64_t>(h - 1)));
      const double leaf_min = std::min(ld, (8.0 / 3.0) * ls);
      const double c1 = log_term / (2.0 * eps * eps * leaf_min);
      const double c2 = static_cast<double>(h + 1) / (2.0 * eps);
      const double bq = 2.0 * c2 + c1;
      const double alpha = 2.0 * c2 / (bq + std::sqrt(bq * bq - 4 * c2 * c2));
      const double k = std::max(c1 / ((1 - alpha) * (1 - alpha)), c2 / alpha);
      const double memory = static_cast<double>(b) * std::ceil(k);
      if (memory < best) {
        best = memory;
        best_b = b;
        best_h = h;
      }
      if (memory < 1e6) {
        std::printf(" %7.1f", memory / 1000.0);
      } else {
        std::printf(" %7s", ">1000");
      }
    }
    std::printf("\n");
  }
  std::printf("\noptimum in this window: b=%d, h=%d at %.2fK — a shallow "
              "valley: several (b, h) pairs within ~10%%, so the solver's "
              "exact pick is not fragile\n",
              best_b, best_h, best / 1000.0);
  mrl::bench::BenchReporter reporter("ablation_parameter_landscape");
  reporter.ReportValue("best_mem/b=" + std::to_string(best_b) +
                           "/h=" + std::to_string(best_h),
                       best, "elements");
  return 0;
}
