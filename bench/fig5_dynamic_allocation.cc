// Reproduces Figure 5: a valid buffer-allocation schedule whose memory
// usage stays within user-specified upper limits at every stream length,
// plotted against the known-N requirement curve. eps = 0.01 and
// delta = 0.0001 as in the paper.
//
// The schedule is verified two ways: analytically by the planner's tree
// simulation, and empirically by running the sketch under the schedule on
// a real stream and checking both the memory trajectory and the final
// answer's accuracy.

#include <cmath>
#include <cstdio>

#include "bench_reporter.h"
#include "core/dynamic_alloc.h"
#include "core/params.h"
#include "core/unknown_n.h"
#include "stream/generator.h"

int main() {
  mrl::bench::BenchReporter reporter("fig5_dynamic_allocation");
  const double eps = 0.01;
  const double delta = 1e-4;

  // User-specified limits: roughly double every decade, Figure 5 style.
  std::vector<mrl::MemoryLimitPoint> limits = {
      {0, 2'000},        {10'000, 4'000},    {100'000, 8'000},
      {1'000'000, 16'000}, {10'000'000, 32'000}};

  mrl::Result<mrl::DynamicAllocationPlan> planned =
      mrl::PlanDynamicAllocation(eps, delta, limits);
  if (!planned.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 planned.status().ToString().c_str());
    return 1;
  }
  const mrl::DynamicAllocationPlan& plan = planned.value();
  std::printf("Figure 5: valid schedule for eps=%.2f, delta=%.0e: "
              "b=%d buffers of k=%zu (h=%d, alpha=%.2f)\n\n",
              eps, delta, plan.params.b, plan.params.k, plan.params.h,
              plan.params.alpha);

  auto limit_at = [&](std::uint64_t n) {
    std::uint64_t v = 0;
    for (const auto& p : limits) {
      if (p.n > n) break;
      v = p.max_elements;
    }
    return v;
  };

  std::printf("%-10s %14s %14s %14s\n", "log10(N)", "schedule (K)",
              "user limit (K)", "known-N (K)");
  std::printf("--------------------------------------------------------\n");
  for (double exp10 = 3.0; exp10 <= 7.0; exp10 += 0.5) {
    const std::uint64_t n =
        static_cast<std::uint64_t>(std::pow(10.0, exp10));
    const std::uint64_t known =
        mrl::KnownNMemoryElements(eps, delta, n).value();
    std::printf("%-10.1f %13.2fK %13.2fK %13.2fK\n", exp10,
                static_cast<double>(plan.MemoryElementsAt(n)) / 1000.0,
                static_cast<double>(limit_at(n)) / 1000.0,
                static_cast<double>(known) / 1000.0);
    reporter.ReportValue(
        "schedule_mem/log10N=" + mrl::bench::FormatG(exp10),
        static_cast<double>(plan.MemoryElementsAt(n)), "elements");
  }

  // Empirical validation: run the sketch under the schedule.
  mrl::UnknownNOptions options;
  options.params = plan.params;
  options.buffer_allowance = plan.AllowanceFunction();
  options.seed = 7;
  mrl::UnknownNSketch sketch =
      std::move(mrl::UnknownNSketch::Create(options)).value();
  mrl::StreamSpec spec;
  spec.n = 2'000'000;
  spec.seed = 11;
  mrl::Dataset ds = mrl::GenerateStream(spec);
  bool within_limits = true;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    sketch.Add(ds.values()[i]);
    if ((i + 1) % 100'000 == 0 &&
        sketch.CurrentMemoryElements() > limit_at(i + 1)) {
      within_limits = false;
    }
  }
  double worst = 0;
  for (double phi : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    worst = std::max(worst,
                     ds.QuantileError(sketch.Query(phi).value(), phi));
  }
  std::printf("\nempirical run over %zu elements: memory within limits: %s; "
              "worst observed rank error %.5f (guarantee %.2f)\n",
              ds.size(), within_limits ? "yes" : "NO", worst, eps);
  reporter.ReportValue("within_limits", within_limits ? 1.0 : 0.0, "bool");
  reporter.ReportValue("worst_rank_error", worst, "rank");
  return within_limits && worst <= eps ? 0 : 1;
}
