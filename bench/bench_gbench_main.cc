// Shared main() for the google-benchmark based benches. Runs the usual
// console reporter and mirrors every non-aggregate run into a
// BenchReporter, so bench binaries contribute rows to the shared JSON perf
// artifact (BENCH_PR4.json) without per-bench plumbing.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "bench_reporter.h"

namespace mrl {
namespace bench {

namespace {

class MirroringReporter : public benchmark::ConsoleReporter {
 public:
  explicit MirroringReporter(BenchReporter* sink) : sink_(sink) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      BenchRecord record;
      record.name = run.benchmark_name();
      record.iterations = static_cast<std::uint64_t>(run.iterations);
      if (run.iterations > 0) {
        record.ns_per_op = run.real_accumulated_time /
                           static_cast<double>(run.iterations) * 1e9;
      }
      auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) record.elements_per_s = it->second;
      it = run.counters.find("mem_elems");
      if (it != run.counters.end()) record.mem_elements = it->second;
      sink_->Report(std::move(record));
    }
    ConsoleReporter::ReportRuns(reports);
  }

 private:
  BenchReporter* sink_;
};

}  // namespace

int RunBenchmarksWithReporter(int argc, char** argv, const char* bench_name) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  BenchReporter reporter(bench_name);
  MirroringReporter console(&reporter);
  benchmark::RunSpecifiedBenchmarks(&console);
  reporter.Flush();
  return 0;
}

}  // namespace bench
}  // namespace mrl
