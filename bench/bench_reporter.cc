#include "bench_reporter.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/simd.h"

namespace mrl {
namespace bench {

namespace {

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // names are ASCII
    out.push_back(c);
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void AppendField(std::string* json, const char* key, const std::string& value,
                 bool quoted) {
  *json += ", \"";
  *json += key;
  *json += quoted ? "\": \"" : "\": ";
  *json += value;
  if (quoted) *json += '"';
}

}  // namespace

std::string FormatG(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::string BenchReporter::OutputPath() {
  const char* env = std::getenv("MRLQUANT_BENCH_JSON");
  return (env != nullptr && env[0] != '\0') ? env : "BENCH_PR9.json";
}

BenchReporter::BenchReporter(std::string bench_name)
    : bench_name_(std::move(bench_name)) {}

BenchReporter::~BenchReporter() { Flush(); }

void BenchReporter::Report(BenchRecord record) {
  records_.push_back(std::move(record));
}

void BenchReporter::ReportValue(std::string name, double value,
                                std::string unit) {
  BenchRecord record;
  record.name = std::move(name);
  record.value = value;
  record.unit = std::move(unit);
  records_.push_back(std::move(record));
}

void BenchReporter::Flush() {
  if (records_.empty()) return;

  // Stamped on every row: which kernel table produced these numbers and on
  // what silicon. bench_diff refuses to silently compare rows whose
  // dispatch path or feature set differ (an "avx2" baseline diffed against
  // a "forced-scalar" run measures the dispatch, not the change).
  const std::string dispatch = simd::ActivePathName();
  const std::string cpu = simd::CpuFeatureString();

  std::string entries;
  for (const BenchRecord& r : records_) {
    if (!entries.empty()) entries += ",\n";
    entries += "  {\"bench\": \"" + EscapeJson(bench_name_) +
               "\", \"name\": \"" + EscapeJson(r.name) + "\"";
    AppendField(&entries, "dispatch", EscapeJson(dispatch), true);
    AppendField(&entries, "cpu_features", EscapeJson(cpu), true);
    if (r.ns_per_op > 0) {
      AppendField(&entries, "ns_per_op", FormatDouble(r.ns_per_op), false);
    }
    if (r.elements_per_s > 0) {
      AppendField(&entries, "elements_per_s", FormatDouble(r.elements_per_s),
                  false);
    }
    if (r.mem_elements > 0) {
      AppendField(&entries, "mem_elements", FormatDouble(r.mem_elements),
                  false);
    }
    if (r.iterations > 0) {
      AppendField(&entries, "iterations",
                  std::to_string(r.iterations), false);
    }
    if (!r.unit.empty()) {
      AppendField(&entries, "value", FormatDouble(r.value), false);
      AppendField(&entries, "unit", EscapeJson(r.unit), true);
    }
    entries += "}";
  }
  records_.clear();

  const std::string path = OutputPath();
  std::string existing;
  {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      existing = ss.str();
    }
  }
  // Splice before the closing bracket of an existing array; start a fresh
  // array otherwise (missing, empty, or malformed file).
  const std::size_t close = existing.find_last_of(']');
  std::string out;
  if (close != std::string::npos &&
      existing.find_first_of('[') != std::string::npos) {
    out = existing.substr(0, close);
    while (!out.empty() &&
           (out.back() == '\n' || out.back() == ' ' || out.back() == '\r')) {
      out.pop_back();
    }
    if (out.back() != '[') out += ",";
    out += "\n" + entries + "\n]\n";
  } else {
    out = "[\n" + entries + "\n]\n";
  }
  std::ofstream of(path, std::ios::binary | std::ios::trunc);
  of << out;
}

}  // namespace bench
}  // namespace mrl
