// Backend shootout: every registry-instantiable sketch backend raced on
// the same stream under the same (eps, delta) budget, reporting the three
// axes that matter when picking a backend — space (MemoryBytes), update
// cost (ns per Add), and observed worst-case rank error against the exact
// sorted baseline. Rows land in the shared JSON perf artifact
// (BENCH_PR6.json in CI via MRLQUANT_BENCH_JSON) for trend tracking; the
// run is informational, not a gate.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_reporter.h"
#include "core/det_reservoir.h"
#include "core/estimator.h"
#include "core/kll.h"
#include "core/sharded.h"
#include "core/unknown_n.h"
#include "stream/generator.h"

namespace {

using mrl::QuantileEstimator;
using mrl::Value;

constexpr double kEps = 0.01;
constexpr double kDelta = 1e-4;
constexpr std::size_t kN = 1'000'000;

struct Contender {
  const char* name;
  std::function<std::unique_ptr<QuantileEstimator>()> make;
};

std::vector<Contender> Contenders() {
  std::vector<Contender> list;
  list.push_back({"mrl99", [] {
    mrl::UnknownNOptions options;
    options.eps = kEps;
    options.delta = kDelta;
    options.seed = 2;
    return std::unique_ptr<QuantileEstimator>(new mrl::UnknownNSketch(
        std::move(mrl::UnknownNSketch::Create(options)).value()));
  }});
  list.push_back({"mrl99_sharded4", [] {
    mrl::ShardedQuantileSketch::Options options;
    options.eps = kEps;
    options.delta = kDelta;
    options.num_shards = 4;
    options.seed = 2;
    return std::unique_ptr<QuantileEstimator>(new mrl::ShardedQuantileSketch(
        std::move(mrl::ShardedQuantileSketch::Create(options)).value()));
  }});
  list.push_back({"kll", [] {
    mrl::KllOptions options;
    options.eps = kEps;
    options.delta = kDelta;
    options.seed = 2;
    return std::unique_ptr<QuantileEstimator>(new mrl::KllSketch(
        std::move(mrl::KllSketch::Create(options)).value()));
  }});
  list.push_back({"det_reservoir", [] {
    mrl::DetReservoirOptions options;
    options.eps = kEps;
    options.delta = kDelta;
    options.seed = 2;
    return std::unique_ptr<QuantileEstimator>(
        new mrl::DeterministicReservoirSketch(std::move(
            mrl::DeterministicReservoirSketch::Create(options)).value()));
  }});
  return list;
}

double WorstError(const mrl::Dataset& ds, const QuantileEstimator& sketch) {
  double worst = 0;
  for (double phi : {0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    worst = std::max(worst,
                     ds.QuantileError(sketch.Query(phi).value(), phi));
  }
  return worst;
}

}  // namespace

int main() {
  mrl::bench::BenchReporter reporter("backend_shootout");

  mrl::StreamSpec spec;
  spec.n = kN;
  spec.seed = 7;
  const mrl::Dataset ds = mrl::GenerateStream(spec);

  std::printf("Backend shootout: N=%zu uniform, eps=%g, delta=%g\n\n",
              kN, kEps, kDelta);
  std::printf("%-16s %12s %12s %12s %12s\n", "backend", "update ns",
              "mem elems", "mem KiB", "worst err");
  std::printf("%s\n", std::string(68, '-').c_str());

  bool all_within_eps = true;
  for (const Contender& contender : Contenders()) {
    std::unique_ptr<QuantileEstimator> sketch = contender.make();

    const auto start = std::chrono::steady_clock::now();
    for (Value v : ds.values()) sketch->Add(v);
    const auto stop = std::chrono::steady_clock::now();
    const double ns_per_add =
        std::chrono::duration<double, std::nano>(stop - start).count() /
        static_cast<double>(kN);

    const double worst = WorstError(ds, *sketch);
    const double mem_elements =
        static_cast<double>(sketch->MemoryElements());
    const double mem_bytes = static_cast<double>(sketch->MemoryBytes());
    all_within_eps = all_within_eps && worst <= kEps;

    std::printf("%-16s %12.1f %12.0f %12.1f %12.5f\n", contender.name,
                ns_per_add, mem_elements, mem_bytes / 1024.0, worst);

    const std::string prefix = contender.name;
    reporter.ReportValue(prefix + "/update_ns", ns_per_add, "ns");
    reporter.ReportValue(prefix + "/mem_elements", mem_elements, "elements");
    reporter.ReportValue(prefix + "/mem_bytes", mem_bytes, "bytes");
    reporter.ReportValue(prefix + "/observed_err", worst, "rank");
  }

  std::printf("\nall backends within configured eps: %s\n",
              all_within_eps ? "yes" : "NO");
  return all_within_eps ? 0 : 1;
}
