// Section 2 context: the unknown-N algorithm against its antecedents.
//  (a) Memory at fixed (eps, delta): MRL99 vs the reservoir folklore
//      baseline (quadratic in 1/eps, Section 2.2) and the known-N
//      deterministic baselines (Munro-Paterson, ARS-style) at various N.
//  (b) Observed error when every algorithm gets the same stream: all meet
//      their budgets; the interesting column is the memory they paid.

#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench_reporter.h"

#include "baseline/ars.h"
#include "baseline/exact.h"
#include "baseline/munro_paterson.h"
#include "baseline/reservoir_quantile.h"
#include "core/params.h"
#include "core/unknown_n.h"
#include "stream/generator.h"

int main() {
  mrl::bench::BenchReporter reporter("baseline_comparison");
  const double delta = 1e-4;

  std::printf("(a) memory (K elements) at fixed accuracy, delta=%.0e\n\n",
              delta);
  std::printf("%-8s %12s %12s %14s %12s\n", "eps", "mrl99", "reservoir",
              "munro-pat.*", "ars*");
  std::printf("   (* deterministic known-N baselines sized for N = 10^9)\n");
  std::printf("----------------------------------------------------------------"
              "\n");
  for (double eps : {0.05, 0.01, 0.005, 0.001}) {
    std::uint64_t mrl = mrl::UnknownNMemoryElements(eps, delta).value();
    std::uint64_t res = mrl::ReservoirMemoryElements(eps, delta);
    std::uint64_t mp =
        mrl::SolveMunroPaterson(eps, 1'000'000'000).value().MemoryElements();
    std::uint64_t ars =
        mrl::SolveArs(eps, 1'000'000'000).value().MemoryElements();
    std::printf("%-8g %11.2fK %11.2fK %13.2fK %11.2fK\n", eps,
                mrl / 1000.0, res / 1000.0, mp / 1000.0, ars / 1000.0);
    const std::string tag = "/eps=" + mrl::bench::FormatG(eps);
    reporter.ReportValue("mrl99_mem" + tag, static_cast<double>(mrl),
                         "elements");
    reporter.ReportValue("reservoir_mem" + tag, static_cast<double>(res),
                         "elements");
  }

  std::printf("\n(b) same stream, every algorithm at eps=0.01: observed "
              "worst error over 7 quantiles and memory paid\n\n");
  const std::size_t n = 500'000;
  mrl::StreamSpec spec;
  spec.n = n;
  spec.seed = 5;
  spec.distribution = "gaussian";
  mrl::Dataset ds = mrl::GenerateStream(spec);

  std::vector<std::unique_ptr<mrl::QuantileEstimator>> estimators;
  {
    mrl::UnknownNOptions o;
    o.eps = 0.01;
    o.delta = delta;
    o.seed = 7;
    estimators.push_back(std::make_unique<mrl::UnknownNSketch>(
        std::move(mrl::UnknownNSketch::Create(o)).value()));
  }
  {
    mrl::ReservoirQuantileSketch::Options o;
    o.eps = 0.01;
    o.delta = delta;
    o.seed = 9;
    estimators.push_back(std::make_unique<mrl::ReservoirQuantileSketch>(
        std::move(mrl::ReservoirQuantileSketch::Create(o)).value()));
  }
  {
    mrl::MunroPatersonSketch::Options o;
    o.eps = 0.01;
    o.n = n;
    estimators.push_back(std::make_unique<mrl::MunroPatersonSketch>(
        std::move(mrl::MunroPatersonSketch::Create(o)).value()));
  }
  {
    mrl::ArsSketch::Options o;
    o.eps = 0.01;
    o.n = n;
    estimators.push_back(std::make_unique<mrl::ArsSketch>(
        std::move(mrl::ArsSketch::Create(o)).value()));
  }
  estimators.push_back(std::make_unique<mrl::ExactQuantileEstimator>());

  std::printf("%-18s %12s %14s %10s\n", "algorithm", "memory", "worst error",
              "knows N?");
  std::printf("----------------------------------------------------------\n");
  for (auto& est : estimators) {
    est->AddAll(ds.values());
    double worst = 0;
    for (double phi : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
      worst = std::max(worst,
                       ds.QuantileError(est->Query(phi).value(), phi));
    }
    const bool knows_n = est->name() == "munro_paterson" ||
                         est->name() == "ars";
    std::printf("%-18s %11.2fK %14.5f %10s\n", est->name().c_str(),
                est->MemoryElements() / 1000.0, worst,
                est->name() == "exact" ? "stores all"
                                       : (knows_n ? "yes" : "no"));
    reporter.ReportValue("mem/" + est->name(),
                         static_cast<double>(est->MemoryElements()),
                         "elements");
    reporter.ReportValue("worst_err/" + est->name(), worst, "rank");
  }
  std::printf("\nexpected shape: mrl99 and the known-N baselines are within "
              "eps at a fraction of reservoir's memory; reservoir's gap "
              "widens quadratically as eps shrinks (table a)\n");
  return 0;
}
