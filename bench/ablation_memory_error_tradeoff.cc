// Ablation: the empirical memory/accuracy tradeoff behind the constraint
// system. Fix b and h, sweep the buffer size k, and measure the observed
// worst rank error over a quantile grid (mean of several trials). The
// analytical bound says error ~ c1/k (tree) + c2/sqrt(k * leaves)
// (sampling): halving memory should roughly double the error, and the
// observed curve should sit well under the certified eps(k) line — the
// guarantee is conservative, as a high-probability bound must be.

#include <algorithm>
#include <cstdio>

#include "bench_reporter.h"
#include "core/unknown_n.h"
#include "stream/generator.h"

namespace {

double MeanWorstError(int b, std::size_t k, int h, std::size_t n,
                      int trials) {
  double total = 0;
  for (int t = 0; t < trials; ++t) {
    mrl::StreamSpec spec;
    spec.n = n;
    spec.seed = 300 + static_cast<std::uint64_t>(t);
    mrl::Dataset ds = mrl::GenerateStream(spec);
    mrl::UnknownNParams p;
    p.b = b;
    p.k = k;
    p.h = h;
    p.alpha = 0.5;
    mrl::UnknownNOptions options;
    options.params = p;
    options.seed = 900 + static_cast<std::uint64_t>(t);
    mrl::UnknownNSketch sketch =
        std::move(mrl::UnknownNSketch::Create(options)).value();
    for (mrl::Value v : ds.values()) sketch.Add(v);
    double worst = 0;
    for (double phi : {0.1, 0.25, 0.5, 0.75, 0.9}) {
      worst = std::max(worst,
                       ds.QuantileError(sketch.Query(phi).value(), phi));
    }
    total += worst;
  }
  return total / trials;
}

}  // namespace

int main() {
  mrl::bench::BenchReporter reporter("ablation_memory_error_tradeoff");
  const int b = 5;
  const int h = 4;
  const std::size_t n = 300'000;
  const int trials = 5;

  std::printf("Ablation: memory vs observed error, b=%d, h=%d, N=%zu, "
              "%d trials per point\n\n",
              b, h, n, trials);
  std::printf("%-8s %12s %16s %18s\n", "k", "memory b*k", "mean worst err",
              "certified eps(k)");
  std::printf("------------------------------------------------------------\n");
  for (std::size_t k : {32u, 64u, 128u, 256u, 512u, 1024u, 2048u}) {
    const double err = MeanWorstError(b, k, h, n, trials);
    // Invert Eq. 2 with alpha = 0.5: eps >= (h + 1) / (2 * alpha * k).
    const double certified =
        static_cast<double>(h + 1) / (2.0 * 0.5 * static_cast<double>(k));
    std::printf("%-8zu %12zu %16.5f %18.5f\n", k,
                static_cast<std::size_t>(b) * k, err, certified);
    reporter.ReportValue("mean_worst_err/k=" + std::to_string(k), err,
                         "rank");
  }
  std::printf("\nexpected shape: observed error shrinks roughly like 1/k and "
              "stays a comfortable factor below the certified bound at "
              "every memory point\n");
  return 0;
}
