// Ablation: the Collapse even-weight offset alternation (Section 3.2).
// When w(Y) is even there is no exact middle position; always taking the
// low choice rounds every collapse's selection downward and the bias
// compounds multiplicatively over the tree. The effect is visible exactly
// when collapse inputs have EQUAL weights (every output weight is even and
// the +-1 weighted-position shift crosses an element boundary), so we use
// Munro-Paterson-style binary collapses of weight-1 leaves: weights
// 2, 4, 8, ... — all even, every level.
//
// Measured: signed normalized rank error of the median (estimate rank
// minus N/2, over N), averaged across trials. Alternation centers it;
// freezing the low offset drags it negative by an amount that grows with
// the tree height.

#include <cmath>
#include <cstdio>

#include "bench_reporter.h"
#include "core/collapse_policy.h"
#include "core/framework.h"
#include "core/output.h"
#include "stream/generator.h"

namespace {

double SignedMedianError(const mrl::Dataset& ds, std::size_t k,
                         bool alternation) {
  const int b = 12;  // room for a full binary tree over the leaves
  mrl::CollapseFramework fw(
      b, k, mrl::MakeCollapsePolicy(mrl::CollapsePolicyKind::kMunroPaterson));
  fw.SetOffsetAlternationEnabled(alternation);
  std::size_t slot = 0;
  bool filling = false;
  for (mrl::Value v : ds.values()) {
    if (!filling) {
      slot = fw.AcquireEmptySlot();
      fw.buffer(slot).StartFill();
      filling = true;
    }
    fw.buffer(slot).Append(v);
    if (fw.buffer(slot).size() == k) {
      fw.CommitFull(slot, 1, 0);
      filling = false;
    }
  }
  mrl::Value est =
      mrl::WeightedQuantile(fw.FullBufferRuns(), 0.5).value();
  auto iv = ds.RankOf(est);
  double rank =
      0.5 * (static_cast<double>(iv.lo) + static_cast<double>(iv.hi));
  double n = static_cast<double>(fw.FullWeight());
  return (rank - 0.5 * n) / n;
}

}  // namespace

int main() {
  const std::size_t k = 16;         // small buffers -> deep trees
  const std::size_t n = 16 * 4096;  // 4096 leaves -> 12 binary levels
  const int trials = 100;

  std::printf("Ablation: even-weight offset alternation under binary "
              "equal-weight collapses (k=%zu, %zu leaves, %d trials)\n\n",
              k, n / k, trials);

  double sum_alt = 0, sum_frozen = 0, sq_alt = 0, sq_frozen = 0;
  for (int t = 0; t < trials; ++t) {
    mrl::StreamSpec spec;
    spec.n = n;
    spec.seed = 100 + static_cast<std::uint64_t>(t);
    mrl::Dataset ds = mrl::GenerateStream(spec);
    double alt = SignedMedianError(ds, k, /*alternation=*/true);
    double frozen = SignedMedianError(ds, k, /*alternation=*/false);
    sum_alt += alt;
    sum_frozen += frozen;
    sq_alt += alt * alt;
    sq_frozen += frozen * frozen;
  }
  auto stderr_of = [&](double sum, double sq) {
    double mean = sum / trials;
    return std::sqrt((sq / trials - mean * mean) / trials);
  };
  std::printf("%-22s %14s %12s\n", "variant", "mean signed", "stderr");
  std::printf("--------------------------------------------------\n");
  std::printf("%-22s %14.5f %12.5f\n", "alternating (paper)",
              sum_alt / trials, stderr_of(sum_alt, sq_alt));
  std::printf("%-22s %14.5f %12.5f\n", "frozen low offset",
              sum_frozen / trials, stderr_of(sum_frozen, sq_frozen));
  mrl::bench::BenchReporter reporter("ablation_offset_alternation");
  reporter.ReportValue("mean_signed_err/alternating", sum_alt / trials,
                       "rank");
  reporter.ReportValue("mean_signed_err/frozen", sum_frozen / trials,
                       "rank");
  std::printf("\nexpected shape: the alternating variant's mean signed error "
              "sits near zero; freezing the offset biases the median "
              "estimate consistently downward (~6x at these parameters)\n");
  return 0;
}
