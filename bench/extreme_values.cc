// Reproduces the Section 7 claims: (a) the extreme-value estimator's
// memory k = ceil(phi * s) is dramatically smaller than the general
// algorithm's b*k for quantiles near the extremes, growing as phi moves
// inward; (b) empirically, its answers satisfy the (eps, delta) guarantee.
// Also shows the Stein-vs-Hoeffding sample-size gap that powers (a).

#include <algorithm>
#include <cstdio>

#include "bench_reporter.h"
#include "core/extreme.h"
#include "core/params.h"
#include "stream/generator.h"
#include "util/math.h"

int main() {
  mrl::bench::BenchReporter reporter("extreme_values");
  const double eps = 0.001;
  const double delta = 1e-4;
  const std::uint64_t n = 2'000'000;

  const std::uint64_t general = mrl::UnknownNMemoryElements(eps, delta)
                                    .value();
  reporter.ReportValue("general_mem", static_cast<double>(general),
                       "elements");
  std::printf("Section 7: extreme-value estimator vs the general algorithm, "
              "eps=%.4f, delta=%.0e, N=%llu\n",
              eps, delta, static_cast<unsigned long long>(n));
  std::printf("general unknown-N sketch: %.1fK elements\n\n",
              static_cast<double>(general) / 1000.0);

  std::printf("%-8s %12s %12s %10s %12s\n", "phi", "sample s", "memory k",
              "ratio", "obs. error");
  std::printf("------------------------------------------------------------\n");

  mrl::StreamSpec spec;
  spec.distribution = "exponential";
  spec.n = n;
  spec.seed = 3;
  mrl::Dataset ds = mrl::GenerateStream(spec);

  for (double phi : {0.002, 0.005, 0.01, 0.02, 0.05}) {
    mrl::ExtremeValueOptions options;
    options.phi = phi;
    options.eps = eps;
    options.delta = delta;
    options.n = n;
    options.seed = 7;
    mrl::ExtremeValueSketch sketch =
        std::move(mrl::ExtremeValueSketch::Create(options)).value();
    for (mrl::Value v : ds.values()) sketch.Add(v);
    double err = ds.QuantileError(sketch.Query(phi).value(), phi);
    std::printf("%-8g %12llu %12llu %9.1fx %12.6f\n", phi,
                static_cast<unsigned long long>(sketch.sizing().sample_size),
                static_cast<unsigned long long>(sketch.MemoryElements()),
                static_cast<double>(general) /
                    static_cast<double>(sketch.MemoryElements()),
                err);
    reporter.ReportValue("mem/phi=" + mrl::bench::FormatG(phi),
                         static_cast<double>(sketch.MemoryElements()),
                         "elements");
    reporter.ReportValue("obs_err/phi=" + mrl::bench::FormatG(phi), err,
                         "rank");
  }

  std::printf("\nsample-size comparison (the statistical fact behind the "
              "savings):\n");
  std::printf("%-8s %16s %16s\n", "phi", "Stein (KL)", "Hoeffding");
  for (double phi : {0.002, 0.01, 0.05, 0.25}) {
    std::printf("%-8g %16llu %16llu\n", phi,
                static_cast<unsigned long long>(
                    mrl::SteinSampleSize(phi, eps, delta)),
                static_cast<unsigned long long>(
                    mrl::HoeffdingSampleSize(eps, delta)));
  }
  std::printf("\nexpected shape: memory grows with phi; the estimator wins "
              "by orders of magnitude for extreme phi and the advantage "
              "shrinks toward the median\n");
  return 0;
}
