// Section 6 evaluation: the parallel algorithm across worker counts —
// wall-clock for the sketch phase (workers run concurrently on their own
// threads), bytes shipped to the coordinator (the "minimal communication"
// requirement: at most one full and two partial buffers per worker), and
// accuracy of the merged answer against the union of all shards.

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_reporter.h"
#include "core/parallel.h"
#include "stream/generator.h"
#include "util/stopwatch.h"

int main() {
  mrl::bench::BenchReporter reporter("parallel_scaling");
  const double eps = 0.01;
  const double delta = 1e-4;
  const std::size_t total_elements = 2'000'000;

  std::printf("Parallel unknown-N algorithm, eps=%.2f, delta=%.0e, %zu "
              "elements total, split across P workers\n\n",
              eps, delta, total_elements);
  std::printf("%-4s %12s %14s %16s %12s\n", "P", "time (ms)",
              "shipped (elems)", "coord. height", "worst err");
  std::printf("---------------------------------------------------------------"
              "\n");

  for (int workers : {1, 2, 4, 8}) {
    std::vector<std::vector<mrl::Value>> shards;
    std::vector<mrl::Value> all;
    for (int i = 0; i < workers; ++i) {
      mrl::StreamSpec spec;
      spec.n = total_elements / static_cast<std::size_t>(workers);
      spec.seed = 50 + static_cast<std::uint64_t>(i);
      auto values = mrl::GenerateStream(spec).values();
      all.insert(all.end(), values.begin(), values.end());
      shards.push_back(std::move(values));
    }
    mrl::Dataset union_ds(std::move(all));

    mrl::ParallelOptions options;
    options.eps = eps;
    options.delta = delta;
    options.num_workers = workers;
    options.seed = 9;
    mrl::UnknownNParams params =
        mrl::SolveParallelWorker(options).value();

    mrl::Stopwatch watch;
    mrl::Random seeder(options.seed);
    std::vector<mrl::UnknownNSketch> sketches;
    for (int i = 0; i < workers; ++i) {
      mrl::UnknownNOptions worker_options;
      worker_options.params = params;
      worker_options.seed = seeder.NextUint64();
      sketches.push_back(
          std::move(mrl::UnknownNSketch::Create(worker_options)).value());
    }
    {
      std::vector<std::thread> threads;
      for (int i = 0; i < workers; ++i) {
        threads.emplace_back([&, i] {
          sketches[static_cast<std::size_t>(i)].AddAll(
              shards[static_cast<std::size_t>(i)]);
        });
      }
      for (auto& t : threads) t.join();
    }
    std::uint64_t shipped = 0;
    mrl::ParallelCoordinator coordinator(params, seeder.NextUint64());
    for (auto& sketch : sketches) {
      auto buffers = sketch.FinishAndExport();
      for (const auto& b : buffers) shipped += b.values.size();
      coordinator.Ingest(std::move(buffers));
    }
    double worst = 0;
    for (double phi : {0.1, 0.25, 0.5, 0.75, 0.9}) {
      worst = std::max(worst, union_ds.QuantileError(
                                  coordinator.Query(phi).value(), phi));
    }
    std::printf("%-4d %12.1f %15llu %16d %12.5f\n", workers,
                watch.ElapsedSeconds() * 1e3,
                static_cast<unsigned long long>(shipped),
                coordinator.tree_stats().max_level, worst);
    const std::string tag = "/P=" + std::to_string(workers);
    reporter.ReportValue("sketch_time" + tag,
                         watch.ElapsedSeconds() * 1e3, "ms");
    reporter.ReportValue("shipped" + tag, static_cast<double>(shipped),
                         "elements");
    reporter.ReportValue("worst_err" + tag, worst, "rank");
  }
  std::printf("\nexpected shape: shipped data stays ~P * (k..2k) elements "
              "(independent of N), the coordinator tree stays within h', "
              "and the merged error respects eps for every P\n");
  return 0;
}
