// Reproduces Table 2: memory required when p quantiles are requested
// simultaneously (delta -> delta/p union bound), for p in {1, 10, 100,
// 1000}, plus the upper bound from the pre-computation trick that serves
// arbitrarily many quantiles (last column). delta fixed at 1e-4, as in the
// paper. Expected shape: very slow growth in p; the precompute column is
// several times larger (it pays for eps/2).

#include <cstdio>

#include "bench_reporter.h"
#include "core/params.h"

int main() {
  mrl::bench::BenchReporter reporter("table2_multiple_quantiles");
  const double epss[] = {0.1, 0.05, 0.01, 0.005, 0.001};
  const std::uint64_t ps[] = {1, 10, 100, 1000};
  const double delta = 1e-4;

  std::printf("Table 2: memory (K elements) for p simultaneous quantiles, "
              "delta = 1e-4\n\n");
  std::printf("%-8s", "eps");
  for (std::uint64_t p : ps) std::printf(" %9s%llu", "p=",
                                         static_cast<unsigned long long>(p));
  std::printf(" %12s\n", "precompute");
  std::printf("---------------------------------------------------------------"
              "--\n");
  for (double eps : epss) {
    std::printf("%-8g", eps);
    for (std::uint64_t p : ps) {
      std::uint64_t mem =
          mrl::MultiQuantileMemoryElements(eps, delta, p).value();
      std::printf(" %9.2fK", static_cast<double>(mem) / 1000.0);
      reporter.ReportValue("mem/eps=" + mrl::bench::FormatG(eps) +
                               "/p=" + std::to_string(p),
                           static_cast<double>(mem), "elements");
    }
    std::uint64_t grid = mrl::PrecomputedGridMemoryElements(eps, delta)
                             .value();
    std::printf(" %11.2fK\n", static_cast<double>(grid) / 1000.0);
    reporter.ReportValue("precompute_mem/eps=" + mrl::bench::FormatG(eps),
                         static_cast<double>(grid), "elements");
  }
  std::printf("\npaper reference (Table 2, eps=0.01): 4.78K / 4.87K / 4.97K "
              "/ ... / 11.3K — slow growth in p, larger precompute bound\n");
  return 0;
}
