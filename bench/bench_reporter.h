#ifndef MRLQUANT_BENCH_BENCH_REPORTER_H_
#define MRLQUANT_BENCH_BENCH_REPORTER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mrl {
namespace bench {

/// One benchmark result row, mirrored into the shared JSON perf artifact
/// (BENCH_PR9.json by default; override with the MRLQUANT_BENCH_JSON env
/// var). Fields that do not apply stay zero/empty and are omitted from the
/// JSON: google-benchmark rows fill ns_per_op / elements_per_s /
/// mem_elements; table-reproduction rows report their headline number via
/// value + unit. Every row additionally carries the SIMD dispatch path
/// ("avx2" / "scalar" / "forced-scalar", util/simd.h) and the detected CPU
/// feature set that produced it, so tools/bench_diff can warn before
/// comparing numbers from different kernels or silicon.
struct BenchRecord {
  std::string name;            ///< row identifier, e.g. "BM_Select/10"
  double ns_per_op = 0;        ///< wall time per iteration
  double elements_per_s = 0;   ///< throughput (items_per_second)
  double mem_elements = 0;     ///< peak MemoryElements of the sketch(es)
  std::uint64_t iterations = 0;
  double value = 0;            ///< headline metric for table benches
  std::string unit;            ///< unit of `value`; empty when unused
};

/// Collects BenchRecords for one bench binary and appends them to the
/// shared JSON artifact on Flush (also called by the destructor). The file
/// is a single JSON array; successive bench binaries append to it, so one
/// CI lane running the whole suite produces one machine-readable
/// trajectory. Not thread-safe; benches report from their main thread.
class BenchReporter {
 public:
  /// `bench_name` tags every record with the producing binary.
  explicit BenchReporter(std::string bench_name);
  ~BenchReporter();

  BenchReporter(const BenchReporter&) = delete;
  BenchReporter& operator=(const BenchReporter&) = delete;

  void Report(BenchRecord record);

  /// Convenience for table benches: one headline metric row.
  void ReportValue(std::string name, double value, std::string unit);

  /// Appends all pending records to OutputPath() and clears them. Creates
  /// the file (as `[...]`) when missing; otherwise splices before the
  /// closing bracket.
  void Flush();

  /// Resolved JSON artifact path: $MRLQUANT_BENCH_JSON or "BENCH_PR9.json".
  static std::string OutputPath();

 private:
  std::string bench_name_;
  std::vector<BenchRecord> records_;
};

/// "%g"-formatted double for building record names ("0.01", "1e-05").
std::string FormatG(double v);

/// Drop-in replacement for BENCHMARK_MAIN() that mirrors every
/// google-benchmark run into a BenchReporter (console output unchanged).
/// Defined in bench_gbench_main.cc so table benches that only need
/// BenchReporter do not link google-benchmark.
int RunBenchmarksWithReporter(int argc, char** argv, const char* bench_name);

}  // namespace bench
}  // namespace mrl

#endif  // MRLQUANT_BENCH_BENCH_REPORTER_H_
