// End-to-end daemon tests: an in-process QuantileServer on a Unix-domain
// socket driven purely through the client library (src/server/client.h) —
// the same code path tools/mrlquant_client uses. Covers the tenant
// lifecycle over the wire, a multi-threaded ingestion run of >= 10M values
// checked against an exact baseline, and kill + restart mid-stream with
// checkpoint recovery.

#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "util/random.h"

namespace mrl {
namespace server {
namespace {

std::string TempName(const char* tag) {
  std::string path = "/tmp/mrlq_";
  path += tag;
  path += '.';
  path += std::to_string(::getpid());
  return path;
}

std::vector<Value> UniformStream(std::size_t n, std::uint64_t seed) {
  Random rng(seed);
  std::vector<Value> values(n);
  for (Value& v : values) v = rng.UniformDouble();
  return values;
}

double RankOf(const std::vector<Value>& sorted, Value answer) {
  const auto it = std::upper_bound(sorted.begin(), sorted.end(), answer);
  return static_cast<double>(it - sorted.begin()) /
         static_cast<double>(sorted.size());
}

class ServerE2eTest : public ::testing::Test {
 protected:
  std::unique_ptr<QuantileServer> StartServer(ServerOptions options) {
    options.uds_path = uds_path_;
    Result<std::unique_ptr<QuantileServer>> server =
        QuantileServer::Create(std::move(options));
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    return server.ok() ? std::move(server).value() : nullptr;
  }

  Client Connect() {
    Result<Client> client = Client::ConnectUnix(uds_path_);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  void TearDown() override {
    std::remove(uds_path_.c_str());
    if (!checkpoint_path_.empty()) std::remove(checkpoint_path_.c_str());
  }

  std::string uds_path_ = TempName("e2e") + ".sock";
  std::string checkpoint_path_;
};

TEST_F(ServerE2eTest, TenantLifecycleOverTheWire) {
  std::unique_ptr<QuantileServer> server = StartServer(ServerOptions{});
  ASSERT_NE(server, nullptr);
  Client client = Connect();
  ASSERT_TRUE(client.connected());

  // Errors before the tenant exists.
  EXPECT_EQ(client.Query("t", 0.5).status().code(), StatusCode::kNotFound);

  TenantConfig config;
  ASSERT_TRUE(client.CreateSketch("t", config).ok());
  EXPECT_EQ(client.CreateSketch("t", config).code(),
            StatusCode::kFailedPrecondition);
  // The error response must leave the connection usable.
  ASSERT_TRUE(client.connected());

  Result<std::uint64_t> count =
      client.AddBatch("t", std::vector<Value>{3.0, 1.0, 2.0});
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(count.value(), 3u);

  Result<double> median = client.Query("t", 0.5);
  ASSERT_TRUE(median.ok());
  EXPECT_EQ(median.value(), 2.0);

  std::vector<Value> answers;
  ASSERT_TRUE(
      client.QueryMulti("t", std::vector<double>{0.5, 1.0}, &answers).ok());
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_EQ(answers[0], 2.0);
  EXPECT_EQ(answers[1], 3.0);

  Result<StatsReply> stats = client.Stats("t");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().num_tenants, 1u);
  EXPECT_EQ(stats.value().total_count, 3u);
  EXPECT_TRUE(stats.value().tenant_present);
  EXPECT_EQ(stats.value().tenant_count, 3u);

  std::vector<std::uint8_t> blob;
  ASSERT_TRUE(client.Snapshot("t", &blob).ok());
  EXPECT_FALSE(blob.empty());

  ASSERT_TRUE(client.Delete("t").ok());
  EXPECT_EQ(client.Delete("t").code(), StatusCode::kNotFound);
  EXPECT_EQ(client.Query("t", 0.5).status().code(), StatusCode::kNotFound);

  // Invalid requests are rejected server-side without dropping the link.
  EXPECT_EQ(client.Query("t", 1.5).status().code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(client.connected());

  server->Stop();
}

TEST_F(ServerE2eTest, MultiThreadedIngestionMeetsEpsBound) {
  ServerOptions options;
  options.num_shards = 4;  // connections migrate to the tenant's home shard
  std::unique_ptr<QuantileServer> server = StartServer(std::move(options));
  ASSERT_NE(server, nullptr);

  constexpr int kThreads = 4;
  constexpr std::size_t kPerThread = 2'500'000;  // 10M total
  constexpr std::size_t kBatch = 65536;
  constexpr double kEps = 0.01;

  TenantConfig config;
  config.kind = SketchKind::kSharded;
  config.eps = kEps;
  config.num_shards = kThreads;
  {
    Client admin = Connect();
    ASSERT_TRUE(admin.CreateSketch("latency", config).ok());
  }

  // Pre-generate every thread's data so the exact baseline sees the same
  // multiset the server ingests.
  std::vector<std::vector<Value>> data;
  data.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    data.push_back(UniformStream(kPerThread, 1000 + t));
  }

  std::vector<std::thread> pushers;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    pushers.emplace_back([this, &data, &failures, t] {
      Result<Client> client = Client::ConnectUnix(uds_path_);
      if (!client.ok()) {
        failures[t] = 1;
        return;
      }
      const std::vector<Value>& mine = data[static_cast<std::size_t>(t)];
      for (std::size_t i = 0; i < mine.size(); i += kBatch) {
        const std::size_t n = std::min(mine.size() - i, std::size_t{kBatch});
        Result<std::uint64_t> count = client.value().AddBatch(
            "latency", std::span<const Value>(mine.data() + i, n));
        if (!count.ok()) {
          failures[t] = 1;
          return;
        }
      }
    });
  }
  for (std::thread& p : pushers) p.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "pusher " << t << " failed";
  }

  Client client = Connect();
  Result<StatsReply> stats = client.Stats("latency");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().tenant_count, kThreads * kPerThread);

  std::vector<Value> sorted;
  sorted.reserve(kThreads * kPerThread);
  for (const std::vector<Value>& chunk : data) {
    sorted.insert(sorted.end(), chunk.begin(), chunk.end());
  }
  std::sort(sorted.begin(), sorted.end());

  const std::vector<double> phis = {0.001, 0.01, 0.1, 0.25, 0.5,
                                    0.75,  0.9,  0.99, 0.999};
  std::vector<Value> answers;
  ASSERT_TRUE(client.QueryMulti("latency", phis, &answers).ok());
  ASSERT_EQ(answers.size(), phis.size());
  for (std::size_t i = 0; i < phis.size(); ++i) {
    EXPECT_NEAR(RankOf(sorted, answers[i]), phis[i], kEps)
        << "phi=" << phis[i];
  }

  server->Stop();
}

TEST_F(ServerE2eTest, KillAndRestartRecoversFromCheckpoint) {
  checkpoint_path_ = TempName("e2e_ckpt");
  ServerOptions options;
  options.registry.checkpoint_path = checkpoint_path_;
  options.checkpoint_on_stop = false;  // Stop() models a crash

  constexpr std::size_t kFirstHalf = 120000;
  constexpr std::size_t kSecondHalf = 80000;
  constexpr std::size_t kBatch = 10000;
  const std::vector<Value> values =
      UniformStream(kFirstHalf + kSecondHalf, 77);

  {
    std::unique_ptr<QuantileServer> server = StartServer(options);
    ASSERT_NE(server, nullptr);
    Client client = Connect();
    ASSERT_TRUE(client.CreateSketch("t", TenantConfig{}).ok());
    for (std::size_t i = 0; i < kFirstHalf; i += kBatch) {
      ASSERT_TRUE(client
                      .AddBatch("t", std::span<const Value>(
                                         values.data() + i, kBatch))
                      .ok());
    }
    // Durable point: SNAPSHOT persists the registry checkpoint.
    std::vector<std::uint8_t> blob;
    ASSERT_TRUE(client.Snapshot("t", &blob).ok());

    // More ingestion that the "crash" will lose.
    ASSERT_TRUE(client
                    .AddBatch("t", std::span<const Value>(
                                       values.data() + kFirstHalf, kBatch))
                    .ok());
    server->Stop();
  }

  {
    std::unique_ptr<QuantileServer> server = StartServer(options);
    ASSERT_NE(server, nullptr);
    Client client = Connect();

    // Recovery resumes from the snapshot point, not the crash point.
    Result<StatsReply> stats = client.Stats("t");
    ASSERT_TRUE(stats.ok());
    EXPECT_TRUE(stats.value().tenant_present);
    EXPECT_EQ(stats.value().tenant_count, kFirstHalf);

    // The client replays the lost tail and continues the stream.
    for (std::size_t i = kFirstHalf; i < values.size(); i += kBatch) {
      ASSERT_TRUE(client
                      .AddBatch("t", std::span<const Value>(
                                         values.data() + i, kBatch))
                      .ok());
    }
    stats = client.Stats("t");
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats.value().tenant_count, values.size());

    std::vector<Value> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    for (double phi : {0.1, 0.5, 0.9}) {
      Result<double> answer = client.Query("t", phi);
      ASSERT_TRUE(answer.ok());
      EXPECT_NEAR(RankOf(sorted, answer.value()), phi, 0.01) << "phi=" << phi;
    }
    server->Stop();
  }
}

TEST_F(ServerE2eTest, DisabledBackendErrorTextReachesClient) {
  ServerOptions options;
  options.registry.allowed_kinds = {SketchKind::kUnknownN,
                                    SketchKind::kSharded};
  std::unique_ptr<QuantileServer> server = StartServer(std::move(options));
  ASSERT_NE(server, nullptr);
  Client client = Connect();

  // CREATE_SKETCH for a backend outside --backends: the server's exact
  // error text must round-trip to the caller, naming the backend.
  TenantConfig kll_config;
  kll_config.kind = SketchKind::kKll;
  const Status disabled = client.CreateSketch("t", kll_config);
  EXPECT_EQ(disabled.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(disabled.message().find("disabled on this server"),
            std::string::npos)
      << disabled.message();
  EXPECT_NE(disabled.message().find("kll"), std::string::npos)
      << disabled.message();

  // Re-creating an existing tenant under a different kind names both the
  // held and the requested backend in the error.
  ASSERT_TRUE(client.CreateSketch("t", TenantConfig{}).ok());
  TenantConfig sharded_config;
  sharded_config.kind = SketchKind::kSharded;
  const Status mismatch = client.CreateSketch("t", sharded_config);
  EXPECT_EQ(mismatch.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(mismatch.message().find("unknown_n"), std::string::npos)
      << mismatch.message();
  EXPECT_NE(mismatch.message().find("sharded"), std::string::npos)
      << mismatch.message();

  // The error responses must leave the connection usable.
  ASSERT_TRUE(client.AddBatch("t", std::vector<Value>{1.0}).ok());
  server->Stop();
}

TEST_F(ServerE2eTest, KllTenantSurvivesDaemonSigkill) {
  checkpoint_path_ = TempName("e2e_kll_ckpt");
  const std::string uds_flag = "--uds=" + uds_path_;
  const std::string ckpt_flag = "--checkpoint=" + checkpoint_path_;

  // Launches the real daemon binary — the process a SIGKILL can reach.
  const auto spawn_daemon = [&]() -> pid_t {
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::execl(MRLQUANT_DAEMON_PATH, "mrlquantd", uds_flag.c_str(),
              ckpt_flag.c_str(), static_cast<char*>(nullptr));
      ::_exit(127);  // exec failed
    }
    return pid;
  };
  const auto wait_for_daemon = [&]() -> Client {
    for (int attempt = 0; attempt < 200; ++attempt) {
      Result<Client> client = Client::ConnectUnix(uds_path_);
      if (client.ok()) return std::move(client).value();
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    ADD_FAILURE() << "daemon did not come up on " << uds_path_;
    return std::move(Client::ConnectUnix(uds_path_)).value();
  };

  constexpr std::size_t kFirstHalf = 60000;
  constexpr std::size_t kSecondHalf = 40000;
  constexpr std::size_t kBatch = 10000;
  const std::vector<Value> values =
      UniformStream(kFirstHalf + kSecondHalf, 123);

  pid_t pid = spawn_daemon();
  ASSERT_GT(pid, 0);
  {
    Client client = wait_for_daemon();
    TenantConfig config;
    config.kind = SketchKind::kKll;
    config.eps = 0.01;
    ASSERT_TRUE(client.CreateSketch("k", config).ok());
    for (std::size_t i = 0; i < kFirstHalf; i += kBatch) {
      ASSERT_TRUE(client
                      .AddBatch("k", std::span<const Value>(
                                         values.data() + i, kBatch))
                      .ok());
    }
    // Durable point, then a real SIGKILL: no shutdown path runs at all.
    std::vector<std::uint8_t> blob;
    ASSERT_TRUE(client.Snapshot("k", &blob).ok());
    ASSERT_TRUE(client
                    .AddBatch("k", std::span<const Value>(
                                       values.data() + kFirstHalf, kBatch))
                    .ok());
  }
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus));

  pid = spawn_daemon();
  ASSERT_GT(pid, 0);
  {
    Client client = wait_for_daemon();
    Result<StatsReply> stats = client.Stats("k");
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_TRUE(stats.value().tenant_present);
    EXPECT_EQ(stats.value().tenant_kind, SketchKind::kKll);
    EXPECT_EQ(stats.value().tenant_count, kFirstHalf);

    // Replay the lost tail and finish the stream on the recovered tenant.
    for (std::size_t i = kFirstHalf; i < values.size(); i += kBatch) {
      ASSERT_TRUE(client
                      .AddBatch("k", std::span<const Value>(
                                         values.data() + i, kBatch))
                      .ok());
    }
    std::vector<Value> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    for (double phi : {0.1, 0.5, 0.9}) {
      Result<double> answer = client.Query("k", phi);
      ASSERT_TRUE(answer.ok());
      EXPECT_NEAR(RankOf(sorted, answer.value()), phi, 0.01) << "phi=" << phi;
    }
  }
  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
}

// SIGKILL + recovery with the sharded registry layout: tenants hash into
// four partitions, so the checkpoint writer walks all of them and
// recovery re-hashes the flat on-disk list back into partitions. Each
// tenant also lives on a different shard, so the pre-kill ingestion
// exercises cross-shard connection migration too.
TEST_F(ServerE2eTest, ShardedRegistrySurvivesDaemonSigkill) {
  checkpoint_path_ = TempName("e2e_shard_ckpt");
  const std::string uds_flag = "--uds=" + uds_path_;
  const std::string ckpt_flag = "--checkpoint=" + checkpoint_path_;

  const auto spawn_daemon = [&]() -> pid_t {
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::execl(MRLQUANT_DAEMON_PATH, "mrlquantd", uds_flag.c_str(),
              ckpt_flag.c_str(), "--shards=4", static_cast<char*>(nullptr));
      ::_exit(127);  // exec failed
    }
    return pid;
  };
  const auto wait_for_daemon = [&]() -> Client {
    for (int attempt = 0; attempt < 200; ++attempt) {
      Result<Client> client = Client::ConnectUnix(uds_path_);
      if (client.ok()) return std::move(client).value();
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    ADD_FAILURE() << "daemon did not come up on " << uds_path_;
    return std::move(Client::ConnectUnix(uds_path_)).value();
  };

  constexpr int kTenants = 8;
  constexpr std::size_t kPerTenant = 20000;
  const std::vector<Value> values = UniformStream(kPerTenant, 321);

  pid_t pid = spawn_daemon();
  ASSERT_GT(pid, 0);
  {
    // One connection per tenant: each migrates to its tenant's home shard
    // on the first frame.
    std::vector<Client> clients;
    for (int t = 0; t < kTenants; ++t) {
      Client client = t == 0 ? wait_for_daemon() : Connect();
      const std::string name = "shard_t" + std::to_string(t);
      ASSERT_TRUE(client.CreateSketch(name, TenantConfig{}).ok());
      ASSERT_TRUE(client.AddBatch(name, values).ok());
      clients.push_back(std::move(client));
    }
    // Durable point: any SNAPSHOT persists the whole registry.
    std::vector<std::uint8_t> blob;
    ASSERT_TRUE(clients[0].Snapshot("shard_t0", &blob).ok());
    // Post-snapshot ingestion the SIGKILL must lose.
    ASSERT_TRUE(clients[1].AddBatch("shard_t1", values).ok());
  }
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus));

  pid = spawn_daemon();
  ASSERT_GT(pid, 0);
  {
    Client client = wait_for_daemon();
    for (int t = 0; t < kTenants; ++t) {
      const std::string name = "shard_t" + std::to_string(t);
      Result<StatsReply> stats = client.Stats(name);
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      EXPECT_TRUE(stats.value().tenant_present) << name;
      // Every tenant recovers to the snapshot point — including the
      // post-snapshot batch on shard_t1 being lost.
      EXPECT_EQ(stats.value().tenant_count, kPerTenant) << name;
      EXPECT_TRUE(client.Query(name, 0.5).ok()) << name;
    }
    Result<StatsReply> global = client.Stats("");
    ASSERT_TRUE(global.ok());
    EXPECT_EQ(global.value().num_tenants, static_cast<std::uint64_t>(kTenants));
  }
  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
}

// C10k: 10,000 concurrent connections against the real daemon binary —
// open them all, let them idle (shards multiplex idle connections for
// free), then a burst where every connection does one STATS round trip.
// The daemon runs in its own process so each side spends its own
// RLIMIT_NOFILE budget; the test raises its soft limit and skips (with a
// message) where the hard limit cannot cover the fan-out.
TEST_F(ServerE2eTest, TenThousandConnectionsOpenIdleBurst) {
  constexpr int kConns = 10000;

  rlimit nofile{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &nofile), 0);
  const rlim_t needed = kConns + 512;  // sockets + gtest/runtime slack
  if (nofile.rlim_max < needed) {
    GTEST_SKIP() << "RLIMIT_NOFILE hard limit " << nofile.rlim_max
                 << " cannot cover " << kConns << " connections";
  }
  if (nofile.rlim_cur < needed) {
    rlimit raised = nofile;
    raised.rlim_cur = needed;
    if (::setrlimit(RLIMIT_NOFILE, &raised) != 0) {
      GTEST_SKIP() << "cannot raise RLIMIT_NOFILE to " << needed << ": "
                   << std::strerror(errno);
    }
  }

  const std::string uds_flag = "--uds=" + uds_path_;
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execl(MRLQUANT_DAEMON_PATH, "mrlquantd", uds_flag.c_str(), "--shards=4",
            static_cast<char*>(nullptr));
    ::_exit(127);
  }
  ASSERT_GT(pid, 0);
  {
    bool up = false;
    for (int attempt = 0; attempt < 200 && !up; ++attempt) {
      up = Client::ConnectUnix(uds_path_).ok();
      if (!up) std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    ASSERT_TRUE(up) << "daemon did not come up on " << uds_path_;
  }

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, uds_path_.c_str(), uds_path_.size() + 1);

  // Open phase. Connect can transiently fail while the acceptor drains
  // the (somaxconn-bounded) backlog; retry with a short pause.
  std::vector<int> fds;
  fds.reserve(kConns);
  for (int i = 0; i < kConns; ++i) {
    int fd = -1;
    for (int attempt = 0; attempt < 100; ++attempt) {
      fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      ASSERT_GE(fd, 0) << std::strerror(errno);
      if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        break;
      }
      ::close(fd);
      fd = -1;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_GE(fd, 0) << "connection " << i << " never connected";
    fds.push_back(fd);
  }

  // Idle phase: nothing to assert beyond the daemon staying alive — the
  // event loops hold 10k quiescent connections with zero wakeups.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_EQ(::waitpid(pid, nullptr, WNOHANG), 0) << "daemon died while idle";

  // Burst phase: every connection sends one global-STATS frame, then all
  // responses are collected — 10k in-flight requests across 4 shards.
  std::vector<std::uint8_t> frame;
  EncodeNameRequest(MsgType::kStats, "", &frame);
  const auto send_all = [](int fd, const std::uint8_t* data, std::size_t n) {
    std::size_t sent = 0;
    while (sent < n) {
      const ssize_t w = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<std::size_t>(w);
    }
    return true;
  };
  const auto recv_all = [](int fd, std::uint8_t* data, std::size_t n) {
    std::size_t got = 0;
    while (got < n) {
      const ssize_t r = ::recv(fd, data + got, n - got, 0);
      if (r == 0) return false;
      if (r < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      got += static_cast<std::size_t>(r);
    }
    return true;
  };
  for (int i = 0; i < kConns; ++i) {
    ASSERT_TRUE(send_all(fds[static_cast<std::size_t>(i)], frame.data(),
                         frame.size()))
        << "send on connection " << i;
  }
  int answered = 0;
  std::vector<std::uint8_t> body;
  for (int i = 0; i < kConns; ++i) {
    const int fd = fds[static_cast<std::size_t>(i)];
    std::uint8_t prefix[4];
    ASSERT_TRUE(recv_all(fd, prefix, sizeof(prefix))) << "conn " << i;
    const std::uint32_t body_len =
        static_cast<std::uint32_t>(prefix[0]) |
        (static_cast<std::uint32_t>(prefix[1]) << 8) |
        (static_cast<std::uint32_t>(prefix[2]) << 16) |
        (static_cast<std::uint32_t>(prefix[3]) << 24);
    ASSERT_LE(body_len, kMaxPayload + kFrameHeaderSize - 4);
    body.resize(body_len);
    ASSERT_TRUE(recv_all(fd, body.data(), body.size())) << "conn " << i;
    Result<FrameView> decoded = DecodeFrameBody(body.data(), body.size());
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    Result<ResponseView> view = DecodeResponse(decoded.value().payload,
                                               decoded.value().payload_len);
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    EXPECT_EQ(view.value().code, StatusCode::kOk);
    ++answered;
  }
  EXPECT_EQ(answered, kConns);

  for (const int fd : fds) ::close(fd);
  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
}

TEST_F(ServerE2eTest, ConnectionSurvivesMalformedFrame) {
  std::unique_ptr<QuantileServer> server = StartServer(ServerOptions{});
  ASSERT_NE(server, nullptr);
  Client client = Connect();
  ASSERT_TRUE(client.CreateSketch("t", TenantConfig{}).ok());

  // A second client pushing garbage must not disturb the first connection.
  {
    Result<Client> attacker = Client::ConnectUnix(uds_path_);
    ASSERT_TRUE(attacker.ok());
    // (The client API only emits valid frames; the decoder fuzz harness
    // covers malformed bytes. Here we just verify an abrupt disconnect.)
  }

  ASSERT_TRUE(client.AddBatch("t", std::vector<Value>{1.0}).ok());
  Result<double> answer = client.Query("t", 1.0);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer.value(), 1.0);
  server->Stop();
}

}  // namespace
}  // namespace server
}  // namespace mrl
