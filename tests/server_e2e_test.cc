// End-to-end daemon tests: an in-process QuantileServer on a Unix-domain
// socket driven purely through the client library (src/server/client.h) —
// the same code path tools/mrlquant_client uses. Covers the tenant
// lifecycle over the wire, a multi-threaded ingestion run of >= 10M values
// checked against an exact baseline, and kill + restart mid-stream with
// checkpoint recovery.

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "server/client.h"
#include "server/server.h"
#include "util/random.h"

namespace mrl {
namespace server {
namespace {

std::string TempName(const char* tag) {
  std::string path = "/tmp/mrlq_";
  path += tag;
  path += '.';
  path += std::to_string(::getpid());
  return path;
}

std::vector<Value> UniformStream(std::size_t n, std::uint64_t seed) {
  Random rng(seed);
  std::vector<Value> values(n);
  for (Value& v : values) v = rng.UniformDouble();
  return values;
}

double RankOf(const std::vector<Value>& sorted, Value answer) {
  const auto it = std::upper_bound(sorted.begin(), sorted.end(), answer);
  return static_cast<double>(it - sorted.begin()) /
         static_cast<double>(sorted.size());
}

class ServerE2eTest : public ::testing::Test {
 protected:
  std::unique_ptr<QuantileServer> StartServer(ServerOptions options) {
    options.uds_path = uds_path_;
    Result<std::unique_ptr<QuantileServer>> server =
        QuantileServer::Create(std::move(options));
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    return server.ok() ? std::move(server).value() : nullptr;
  }

  Client Connect() {
    Result<Client> client = Client::ConnectUnix(uds_path_);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  void TearDown() override {
    std::remove(uds_path_.c_str());
    if (!checkpoint_path_.empty()) std::remove(checkpoint_path_.c_str());
  }

  std::string uds_path_ = TempName("e2e") + ".sock";
  std::string checkpoint_path_;
};

TEST_F(ServerE2eTest, TenantLifecycleOverTheWire) {
  std::unique_ptr<QuantileServer> server = StartServer(ServerOptions{});
  ASSERT_NE(server, nullptr);
  Client client = Connect();
  ASSERT_TRUE(client.connected());

  // Errors before the tenant exists.
  EXPECT_EQ(client.Query("t", 0.5).status().code(), StatusCode::kNotFound);

  TenantConfig config;
  ASSERT_TRUE(client.CreateSketch("t", config).ok());
  EXPECT_EQ(client.CreateSketch("t", config).code(),
            StatusCode::kFailedPrecondition);
  // The error response must leave the connection usable.
  ASSERT_TRUE(client.connected());

  Result<std::uint64_t> count =
      client.AddBatch("t", std::vector<Value>{3.0, 1.0, 2.0});
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(count.value(), 3u);

  Result<double> median = client.Query("t", 0.5);
  ASSERT_TRUE(median.ok());
  EXPECT_EQ(median.value(), 2.0);

  std::vector<Value> answers;
  ASSERT_TRUE(
      client.QueryMulti("t", std::vector<double>{0.5, 1.0}, &answers).ok());
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_EQ(answers[0], 2.0);
  EXPECT_EQ(answers[1], 3.0);

  Result<StatsReply> stats = client.Stats("t");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().num_tenants, 1u);
  EXPECT_EQ(stats.value().total_count, 3u);
  EXPECT_TRUE(stats.value().tenant_present);
  EXPECT_EQ(stats.value().tenant_count, 3u);

  std::vector<std::uint8_t> blob;
  ASSERT_TRUE(client.Snapshot("t", &blob).ok());
  EXPECT_FALSE(blob.empty());

  ASSERT_TRUE(client.Delete("t").ok());
  EXPECT_EQ(client.Delete("t").code(), StatusCode::kNotFound);
  EXPECT_EQ(client.Query("t", 0.5).status().code(), StatusCode::kNotFound);

  // Invalid requests are rejected server-side without dropping the link.
  EXPECT_EQ(client.Query("t", 1.5).status().code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(client.connected());

  server->Stop();
}

TEST_F(ServerE2eTest, MultiThreadedIngestionMeetsEpsBound) {
  ServerOptions options;
  options.num_workers = 8;
  std::unique_ptr<QuantileServer> server = StartServer(std::move(options));
  ASSERT_NE(server, nullptr);

  constexpr int kThreads = 4;
  constexpr std::size_t kPerThread = 2'500'000;  // 10M total
  constexpr std::size_t kBatch = 65536;
  constexpr double kEps = 0.01;

  TenantConfig config;
  config.kind = SketchKind::kSharded;
  config.eps = kEps;
  config.num_shards = kThreads;
  {
    Client admin = Connect();
    ASSERT_TRUE(admin.CreateSketch("latency", config).ok());
  }

  // Pre-generate every thread's data so the exact baseline sees the same
  // multiset the server ingests.
  std::vector<std::vector<Value>> data;
  data.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    data.push_back(UniformStream(kPerThread, 1000 + t));
  }

  std::vector<std::thread> pushers;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    pushers.emplace_back([this, &data, &failures, t] {
      Result<Client> client = Client::ConnectUnix(uds_path_);
      if (!client.ok()) {
        failures[t] = 1;
        return;
      }
      const std::vector<Value>& mine = data[static_cast<std::size_t>(t)];
      for (std::size_t i = 0; i < mine.size(); i += kBatch) {
        const std::size_t n = std::min(mine.size() - i, std::size_t{kBatch});
        Result<std::uint64_t> count = client.value().AddBatch(
            "latency", std::span<const Value>(mine.data() + i, n));
        if (!count.ok()) {
          failures[t] = 1;
          return;
        }
      }
    });
  }
  for (std::thread& p : pushers) p.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "pusher " << t << " failed";
  }

  Client client = Connect();
  Result<StatsReply> stats = client.Stats("latency");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().tenant_count, kThreads * kPerThread);

  std::vector<Value> sorted;
  sorted.reserve(kThreads * kPerThread);
  for (const std::vector<Value>& chunk : data) {
    sorted.insert(sorted.end(), chunk.begin(), chunk.end());
  }
  std::sort(sorted.begin(), sorted.end());

  const std::vector<double> phis = {0.001, 0.01, 0.1, 0.25, 0.5,
                                    0.75,  0.9,  0.99, 0.999};
  std::vector<Value> answers;
  ASSERT_TRUE(client.QueryMulti("latency", phis, &answers).ok());
  ASSERT_EQ(answers.size(), phis.size());
  for (std::size_t i = 0; i < phis.size(); ++i) {
    EXPECT_NEAR(RankOf(sorted, answers[i]), phis[i], kEps)
        << "phi=" << phis[i];
  }

  server->Stop();
}

TEST_F(ServerE2eTest, KillAndRestartRecoversFromCheckpoint) {
  checkpoint_path_ = TempName("e2e_ckpt");
  ServerOptions options;
  options.registry.checkpoint_path = checkpoint_path_;
  options.checkpoint_on_stop = false;  // Stop() models a crash

  constexpr std::size_t kFirstHalf = 120000;
  constexpr std::size_t kSecondHalf = 80000;
  constexpr std::size_t kBatch = 10000;
  const std::vector<Value> values =
      UniformStream(kFirstHalf + kSecondHalf, 77);

  {
    std::unique_ptr<QuantileServer> server = StartServer(options);
    ASSERT_NE(server, nullptr);
    Client client = Connect();
    ASSERT_TRUE(client.CreateSketch("t", TenantConfig{}).ok());
    for (std::size_t i = 0; i < kFirstHalf; i += kBatch) {
      ASSERT_TRUE(client
                      .AddBatch("t", std::span<const Value>(
                                         values.data() + i, kBatch))
                      .ok());
    }
    // Durable point: SNAPSHOT persists the registry checkpoint.
    std::vector<std::uint8_t> blob;
    ASSERT_TRUE(client.Snapshot("t", &blob).ok());

    // More ingestion that the "crash" will lose.
    ASSERT_TRUE(client
                    .AddBatch("t", std::span<const Value>(
                                       values.data() + kFirstHalf, kBatch))
                    .ok());
    server->Stop();
  }

  {
    std::unique_ptr<QuantileServer> server = StartServer(options);
    ASSERT_NE(server, nullptr);
    Client client = Connect();

    // Recovery resumes from the snapshot point, not the crash point.
    Result<StatsReply> stats = client.Stats("t");
    ASSERT_TRUE(stats.ok());
    EXPECT_TRUE(stats.value().tenant_present);
    EXPECT_EQ(stats.value().tenant_count, kFirstHalf);

    // The client replays the lost tail and continues the stream.
    for (std::size_t i = kFirstHalf; i < values.size(); i += kBatch) {
      ASSERT_TRUE(client
                      .AddBatch("t", std::span<const Value>(
                                         values.data() + i, kBatch))
                      .ok());
    }
    stats = client.Stats("t");
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats.value().tenant_count, values.size());

    std::vector<Value> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    for (double phi : {0.1, 0.5, 0.9}) {
      Result<double> answer = client.Query("t", phi);
      ASSERT_TRUE(answer.ok());
      EXPECT_NEAR(RankOf(sorted, answer.value()), phi, 0.01) << "phi=" << phi;
    }
    server->Stop();
  }
}

TEST_F(ServerE2eTest, DisabledBackendErrorTextReachesClient) {
  ServerOptions options;
  options.registry.allowed_kinds = {SketchKind::kUnknownN,
                                    SketchKind::kSharded};
  std::unique_ptr<QuantileServer> server = StartServer(std::move(options));
  ASSERT_NE(server, nullptr);
  Client client = Connect();

  // CREATE_SKETCH for a backend outside --backends: the server's exact
  // error text must round-trip to the caller, naming the backend.
  TenantConfig kll_config;
  kll_config.kind = SketchKind::kKll;
  const Status disabled = client.CreateSketch("t", kll_config);
  EXPECT_EQ(disabled.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(disabled.message().find("disabled on this server"),
            std::string::npos)
      << disabled.message();
  EXPECT_NE(disabled.message().find("kll"), std::string::npos)
      << disabled.message();

  // Re-creating an existing tenant under a different kind names both the
  // held and the requested backend in the error.
  ASSERT_TRUE(client.CreateSketch("t", TenantConfig{}).ok());
  TenantConfig sharded_config;
  sharded_config.kind = SketchKind::kSharded;
  const Status mismatch = client.CreateSketch("t", sharded_config);
  EXPECT_EQ(mismatch.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(mismatch.message().find("unknown_n"), std::string::npos)
      << mismatch.message();
  EXPECT_NE(mismatch.message().find("sharded"), std::string::npos)
      << mismatch.message();

  // The error responses must leave the connection usable.
  ASSERT_TRUE(client.AddBatch("t", std::vector<Value>{1.0}).ok());
  server->Stop();
}

TEST_F(ServerE2eTest, KllTenantSurvivesDaemonSigkill) {
  checkpoint_path_ = TempName("e2e_kll_ckpt");
  const std::string uds_flag = "--uds=" + uds_path_;
  const std::string ckpt_flag = "--checkpoint=" + checkpoint_path_;

  // Launches the real daemon binary — the process a SIGKILL can reach.
  const auto spawn_daemon = [&]() -> pid_t {
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::execl(MRLQUANT_DAEMON_PATH, "mrlquantd", uds_flag.c_str(),
              ckpt_flag.c_str(), static_cast<char*>(nullptr));
      ::_exit(127);  // exec failed
    }
    return pid;
  };
  const auto wait_for_daemon = [&]() -> Client {
    for (int attempt = 0; attempt < 200; ++attempt) {
      Result<Client> client = Client::ConnectUnix(uds_path_);
      if (client.ok()) return std::move(client).value();
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    ADD_FAILURE() << "daemon did not come up on " << uds_path_;
    return std::move(Client::ConnectUnix(uds_path_)).value();
  };

  constexpr std::size_t kFirstHalf = 60000;
  constexpr std::size_t kSecondHalf = 40000;
  constexpr std::size_t kBatch = 10000;
  const std::vector<Value> values =
      UniformStream(kFirstHalf + kSecondHalf, 123);

  pid_t pid = spawn_daemon();
  ASSERT_GT(pid, 0);
  {
    Client client = wait_for_daemon();
    TenantConfig config;
    config.kind = SketchKind::kKll;
    config.eps = 0.01;
    ASSERT_TRUE(client.CreateSketch("k", config).ok());
    for (std::size_t i = 0; i < kFirstHalf; i += kBatch) {
      ASSERT_TRUE(client
                      .AddBatch("k", std::span<const Value>(
                                         values.data() + i, kBatch))
                      .ok());
    }
    // Durable point, then a real SIGKILL: no shutdown path runs at all.
    std::vector<std::uint8_t> blob;
    ASSERT_TRUE(client.Snapshot("k", &blob).ok());
    ASSERT_TRUE(client
                    .AddBatch("k", std::span<const Value>(
                                       values.data() + kFirstHalf, kBatch))
                    .ok());
  }
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus));

  pid = spawn_daemon();
  ASSERT_GT(pid, 0);
  {
    Client client = wait_for_daemon();
    Result<StatsReply> stats = client.Stats("k");
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_TRUE(stats.value().tenant_present);
    EXPECT_EQ(stats.value().tenant_kind, SketchKind::kKll);
    EXPECT_EQ(stats.value().tenant_count, kFirstHalf);

    // Replay the lost tail and finish the stream on the recovered tenant.
    for (std::size_t i = kFirstHalf; i < values.size(); i += kBatch) {
      ASSERT_TRUE(client
                      .AddBatch("k", std::span<const Value>(
                                         values.data() + i, kBatch))
                      .ok());
    }
    std::vector<Value> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    for (double phi : {0.1, 0.5, 0.9}) {
      Result<double> answer = client.Query("k", phi);
      ASSERT_TRUE(answer.ok());
      EXPECT_NEAR(RankOf(sorted, answer.value()), phi, 0.01) << "phi=" << phi;
    }
  }
  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
}

TEST_F(ServerE2eTest, ConnectionSurvivesMalformedFrame) {
  std::unique_ptr<QuantileServer> server = StartServer(ServerOptions{});
  ASSERT_NE(server, nullptr);
  Client client = Connect();
  ASSERT_TRUE(client.CreateSketch("t", TenantConfig{}).ok());

  // A second client pushing garbage must not disturb the first connection.
  {
    Result<Client> attacker = Client::ConnectUnix(uds_path_);
    ASSERT_TRUE(attacker.ok());
    // (The client API only emits valid frames; the decoder fuzz harness
    // covers malformed bytes. Here we just verify an abrupt disconnect.)
  }

  ASSERT_TRUE(client.AddBatch("t", std::vector<Value>{1.0}).ok());
  Result<double> answer = client.Query("t", 1.0);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer.value(), 1.0);
  server->Stop();
}

}  // namespace
}  // namespace server
}  // namespace mrl
