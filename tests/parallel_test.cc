#include <vector>

#include <gtest/gtest.h>

#include "core/parallel.h"
#include "stream/generator.h"

namespace mrl {
namespace {

std::vector<std::vector<Value>> MakeShards(int num_shards,
                                           std::size_t per_shard,
                                           std::uint64_t seed,
                                           const char* dist = "uniform") {
  std::vector<std::vector<Value>> shards;
  for (int i = 0; i < num_shards; ++i) {
    StreamSpec spec;
    spec.distribution = dist;
    spec.n = per_shard;
    spec.seed = seed + static_cast<std::uint64_t>(i);
    shards.push_back(GenerateStream(spec).values());
  }
  return shards;
}

Dataset Union(const std::vector<std::vector<Value>>& shards) {
  std::vector<Value> all;
  for (const auto& s : shards) all.insert(all.end(), s.begin(), s.end());
  return Dataset(std::move(all));
}

TEST(SolveParallelWorkerTest, ValidatesOptions) {
  ParallelOptions options;
  options.num_workers = 0;
  EXPECT_FALSE(SolveParallelWorker(options).ok());
  options.num_workers = 2;
  options.coordinator_extra_height = -1;
  EXPECT_FALSE(SolveParallelWorker(options).ok());
}

TEST(SolveParallelWorkerTest, ExtraHeightIncreasesK) {
  ParallelOptions options;
  options.eps = 0.01;
  options.delta = 1e-4;
  options.coordinator_extra_height = 0;
  std::uint64_t flat = SolveParallelWorker(options).value().MemoryElements();
  options.coordinator_extra_height = 6;
  std::uint64_t tall = SolveParallelWorker(options).value().MemoryElements();
  EXPECT_GE(tall, flat);
}

class ParallelShardsTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelShardsTest, MergedAnswerIsAccurate) {
  const int shards_count = GetParam();
  auto shards = MakeShards(shards_count, 30000, 100);
  Dataset all = Union(shards);

  ParallelOptions options;
  options.eps = 0.02;
  options.delta = 1e-3;
  options.seed = 5;
  std::vector<double> phis = {0.1, 0.25, 0.5, 0.75, 0.9};
  Result<std::vector<Value>> r = ParallelQuantiles(shards, options, phis);
  ASSERT_TRUE(r.ok()) << r.status();
  for (std::size_t i = 0; i < phis.size(); ++i) {
    EXPECT_LE(all.QuantileError(r.value()[i], phis[i]), options.eps)
        << shards_count << " shards, phi " << phis[i];
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ParallelShardsTest,
                         ::testing::Values(1, 2, 4, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "P" + std::to_string(info.param);
                         });

TEST(ParallelTest, UnevenShardsAndTerminationAnyTime) {
  // The paper allows any input sequence to terminate at any time: shards of
  // wildly different sizes, including one that is tiny.
  std::vector<std::vector<Value>> shards = {
      MakeShards(1, 50000, 300)[0],
      MakeShards(1, 700, 301)[0],
      MakeShards(1, 12345, 302)[0],
      {1.0, 2.0, 3.0},
  };
  Dataset all = Union(shards);
  ParallelOptions options;
  options.eps = 0.02;
  options.delta = 1e-3;
  options.seed = 7;
  Result<std::vector<Value>> r =
      ParallelQuantiles(shards, options, {0.5, 0.9});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_LE(all.QuantileError(r.value()[0], 0.5), options.eps);
  EXPECT_LE(all.QuantileError(r.value()[1], 0.9), options.eps);
}

TEST(ParallelTest, SkewedShardDistributions) {
  // Workers see disjoint value ranges (a common partitioned-table reality);
  // only the merge can see the global picture.
  std::vector<std::vector<Value>> shards;
  for (int i = 0; i < 4; ++i) {
    std::vector<Value> shard;
    for (int j = 0; j < 20000; ++j) {
      shard.push_back(i * 1000.0 + (j % 997));
    }
    shards.push_back(std::move(shard));
  }
  Dataset all = Union(shards);
  ParallelOptions options;
  options.eps = 0.02;
  options.delta = 1e-3;
  options.seed = 11;
  Result<std::vector<Value>> r =
      ParallelQuantiles(shards, options, {0.125, 0.375, 0.625, 0.875});
  ASSERT_TRUE(r.ok());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_LE(all.QuantileError(r.value()[i], 0.125 + 0.25 * i),
              options.eps);
  }
}

TEST(ParallelTest, EmptyShardListRejected) {
  ParallelOptions options;
  EXPECT_EQ(ParallelQuantiles({}, options, {0.5}).status().code(),
            StatusCode::kInvalidArgument);
}

// --------------------------------------------------------- Coordinator

TEST(CoordinatorTest, EqualWeightPartialsConcatenate) {
  UnknownNParams params;
  params.b = 3;
  params.k = 4;
  params.h = 2;
  params.alpha = 0.5;
  ParallelCoordinator coordinator(params, 1);
  coordinator.Ingest({{{1.0, 2.0}, 2, false}});
  coordinator.Ingest({{{3.0, 4.0}, 2, false}});
  EXPECT_EQ(coordinator.ReceivedWeight(), 8u);
  // 4 staged elements of weight 2 = one promoted full buffer of weight 2.
  Value med = coordinator.Query(0.5).value();
  EXPECT_GE(med, 1.0);
  EXPECT_LE(med, 4.0);
}

TEST(CoordinatorTest, FullBuffersEnterTree) {
  UnknownNParams params;
  params.b = 3;
  params.k = 2;
  params.h = 2;
  params.alpha = 0.5;
  ParallelCoordinator coordinator(params, 1);
  for (int i = 0; i < 10; ++i) {
    coordinator.Ingest({{{i * 1.0, i + 0.5}, 4, true}});
  }
  EXPECT_EQ(coordinator.ReceivedWeight(), 10u * 2 * 4);
  EXPECT_TRUE(coordinator.Query(0.5).ok());
}

TEST(CoordinatorTest, UnequalWeightsReconcileApproximately) {
  UnknownNParams params;
  params.b = 3;
  params.k = 100;
  params.h = 2;
  params.alpha = 0.5;
  ParallelCoordinator coordinator(params, 42);
  // Weight-1 partial of 60 elements + weight-4 partial of 60 elements: the
  // light one is subsampled at ~1/4 and re-weighted to 4.
  std::vector<Value> light, heavy;
  for (int i = 0; i < 60; ++i) {
    light.push_back(i);
    heavy.push_back(1000 + i);
  }
  coordinator.Ingest({{light, 1, false}});
  coordinator.Ingest({{heavy, 4, false}});
  // Query must still work and land in the combined range.
  Value q = coordinator.Query(0.9).value();
  EXPECT_GE(q, 0.0);
  EXPECT_LE(q, 1059.0);
}

TEST(CoordinatorTest, QueryWithNothingIngestedFails) {
  UnknownNParams params;
  params.b = 3;
  params.k = 4;
  params.h = 2;
  params.alpha = 0.5;
  ParallelCoordinator coordinator(params, 1);
  EXPECT_EQ(coordinator.Query(0.5).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ParallelTest, CoordinatorTreeStaysShallow) {
  // Sixteen workers with real streams: the coordinator's own collapse tree
  // must stay within a few levels (the h' budget).
  auto shards = MakeShards(16, 5000, 800);
  ParallelOptions options;
  options.eps = 0.05;
  options.delta = 1e-3;
  options.num_workers = 16;
  options.seed = 13;
  Result<UnknownNParams> params = SolveParallelWorker(options);
  ASSERT_TRUE(params.ok());

  Random seeder(options.seed);
  ParallelCoordinator coordinator(params.value(), 99);
  for (auto& shard : shards) {
    UnknownNOptions worker_options;
    worker_options.params = params.value();
    worker_options.seed = seeder.NextUint64();
    UnknownNSketch w =
        std::move(UnknownNSketch::Create(worker_options)).value();
    w.AddAll(shard);
    coordinator.Ingest(w.FinishAndExport());
  }
  EXPECT_LE(coordinator.tree_stats().max_level,
            options.coordinator_extra_height);
  Dataset all = Union(shards);
  EXPECT_LE(all.QuantileError(coordinator.Query(0.5).value(), 0.5),
            options.eps);
}

}  // namespace
}  // namespace mrl
