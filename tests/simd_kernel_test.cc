// Differential coverage of the SIMD kernel lane (util/simd.h): every AVX2
// kernel must be bit-identical to its scalar reference over adversarial
// inputs — the two zeros, the infinities, denormals, duplicate-heavy
// streams — at every tail length (n mod 4) and every element offset from a
// 32-byte boundary (the kernels use unaligned loads; spans come from
// Buffer storage and arbitrary user batches). On hosts without AVX2 the
// differential half skips and the suite still pins the dispatch/naming
// contract and the scalar lane against the canonical OrderedKeyFromValue.
//
// The final tests force each dispatch path through the whole sketch stack
// and require byte-identical serialized state — the in-process equivalent
// of running twice with MRLQUANT_FORCE_SCALAR=1 and unset, which the CI
// forced-scalar lanes exercise across real processes.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/unknown_n.h"
#include "util/random.h"
#include "util/simd.h"
#include "util/sort.h"

namespace mrl {
namespace {

using simd::DispatchPath;
using simd::SortKernelOps;

constexpr std::size_t kHistBytes = 8 * 256 * sizeof(std::size_t);

/// The values most likely to break a bit-twiddling vector kernel: both
/// zeros, both infinities, denormals at both ends, and the extremes of the
/// normal range. (NaN is excluded by the sketch boundary contract.)
std::vector<Value> AdversarialPalette() {
  return {
      +0.0,
      -0.0,
      std::numeric_limits<Value>::infinity(),
      -std::numeric_limits<Value>::infinity(),
      std::numeric_limits<Value>::denorm_min(),
      -std::numeric_limits<Value>::denorm_min(),
      std::numeric_limits<Value>::min(),
      -std::numeric_limits<Value>::min(),
      std::numeric_limits<Value>::max(),
      std::numeric_limits<Value>::lowest(),
      1.0,
      -1.0,
      1e-300,
      -1e-300,
  };
}

enum class InputKind { kUniform, kDuplicateHeavy, kAdversarial };

std::vector<Value> MakeInput(InputKind kind, std::size_t n,
                             std::uint64_t seed) {
  std::vector<Value> v(n);
  Random rng(seed);
  const std::vector<Value> palette = AdversarialPalette();
  for (std::size_t i = 0; i < n; ++i) {
    switch (kind) {
      case InputKind::kUniform:
        v[i] = rng.UniformDouble(-1e9, 1e9);
        break;
      case InputKind::kDuplicateHeavy:
        // 7 distinct values: every partial histogram table sees the same
        // few counters over and over — the conflict-stall shape.
        v[i] = std::floor(rng.UniformDouble() * 7.0) * 0.5 - 1.5;
        break;
      case InputKind::kAdversarial:
        v[i] = palette[(i + seed) % palette.size()];
        break;
    }
  }
  return v;
}

/// Sizes that straddle every interesting boundary: all SIMD tail lengths
/// 0..8 at two bases, the radix small-n cutoff (256), and the AVX2
/// partial-histogram cutoff (4096).
std::vector<std::size_t> BoundarySizes() {
  std::vector<std::size_t> sizes;
  for (std::size_t t = 0; t <= 8; ++t) sizes.push_back(t);
  for (std::size_t t = 0; t <= 8; ++t) sizes.push_back(4096 + t);
  for (std::size_t n : {std::size_t{255}, std::size_t{256}, std::size_t{257},
                        std::size_t{1024}, std::size_t{4095},
                        std::size_t{5000}}) {
    sizes.push_back(n);
  }
  return sizes;
}

const SortKernelOps* Avx2OrSkip() {
  const SortKernelOps* avx2 = simd::Avx2SortKernelsOrNull();
  if (avx2 == nullptr) {
    // Skipping (not failing) keeps the suite green on non-AVX2 hosts; the
    // scalar-only assertions below still run there.
    return nullptr;
  }
  return avx2;
}

// ----------------------------------------------------------- scalar lane

TEST(SimdKernelTest, ScalarTransformMatchesCanonicalForm) {
  const std::vector<Value> in = MakeInput(InputKind::kAdversarial, 1000, 1);
  std::vector<std::uint64_t> keys(in.size());
  simd::ScalarSortKernels().transform_keys(in.data(), keys.data(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(keys[i], OrderedKeyFromValue(in[i])) << "at " << i;
  }
  std::vector<Value> back(in.size());
  simd::ScalarSortKernels().inverse_keys(keys.data(), back.data(),
                                         keys.size());
  EXPECT_EQ(std::memcmp(back.data(), in.data(), in.size() * sizeof(Value)),
            0);
}

TEST(SimdKernelTest, ScalarFusedHistogramMatchesPlainHistogram) {
  const std::vector<Value> in = MakeInput(InputKind::kUniform, 4321, 2);
  std::vector<std::uint64_t> keys_a(in.size());
  std::vector<std::uint64_t> keys_b(in.size());
  std::size_t hist_a[8][256];
  std::size_t hist_b[8][256];
  const SortKernelOps& scalar = simd::ScalarSortKernels();
  scalar.transform_and_histogram(in.data(), keys_a.data(), in.size(), hist_a);
  scalar.transform_keys(in.data(), keys_b.data(), in.size());
  scalar.histogram(keys_b.data(), in.size(), hist_b);
  EXPECT_EQ(std::memcmp(keys_a.data(), keys_b.data(),
                        in.size() * sizeof(std::uint64_t)),
            0);
  EXPECT_EQ(std::memcmp(hist_a, hist_b, kHistBytes), 0);
}

// ----------------------------------------- AVX2 vs scalar, element-level

/// Sweeps one (kind, size, offset) cell: both tables over the same
/// unaligned span must emit identical keys, identical inverses, and
/// identical histograms.
void ExpectKernelsMatch(const SortKernelOps& avx2, InputKind kind,
                        std::size_t n, std::size_t offset,
                        std::uint64_t seed) {
  SCOPED_TRACE(::testing::Message() << "kind=" << static_cast<int>(kind)
                                    << " n=" << n << " offset=" << offset);
  // Over-allocate so data() + offset walks through every element alignment
  // relative to the vector's (32-byte-aligned-or-not) base.
  std::vector<Value> storage = MakeInput(kind, n + offset, seed);
  const Value* in = storage.data() + offset;

  const SortKernelOps& scalar = simd::ScalarSortKernels();

  std::vector<std::uint64_t> keys_scalar(n + 1), keys_avx2(n + 1);
  scalar.transform_keys(in, keys_scalar.data(), n);
  avx2.transform_keys(in, keys_avx2.data(), n);
  ASSERT_EQ(std::memcmp(keys_scalar.data(), keys_avx2.data(),
                        n * sizeof(std::uint64_t)),
            0);

  std::vector<Value> back_scalar(n + 1), back_avx2(n + 1);
  scalar.inverse_keys(keys_scalar.data(), back_scalar.data(), n);
  avx2.inverse_keys(keys_scalar.data(), back_avx2.data(), n);
  ASSERT_EQ(std::memcmp(back_scalar.data(), back_avx2.data(),
                        n * sizeof(Value)),
            0);
  // Round trip restores the exact input bits (including -0.0 vs +0.0).
  ASSERT_EQ(std::memcmp(back_avx2.data(), in, n * sizeof(Value)), 0);

  std::size_t hist_scalar[8][256];
  std::size_t hist_avx2[8][256];
  scalar.histogram(keys_scalar.data(), n, hist_scalar);
  avx2.histogram(keys_scalar.data(), n, hist_avx2);
  ASSERT_EQ(std::memcmp(hist_scalar, hist_avx2, kHistBytes), 0);

  std::vector<std::uint64_t> fused_keys(n + 1);
  std::size_t fused_hist[8][256];
  avx2.transform_and_histogram(in, fused_keys.data(), n, fused_hist);
  ASSERT_EQ(std::memcmp(fused_keys.data(), keys_scalar.data(),
                        n * sizeof(std::uint64_t)),
            0);
  ASSERT_EQ(std::memcmp(fused_hist, hist_scalar, kHistBytes), 0);
}

TEST(SimdKernelTest, Avx2MatchesScalarAcrossTailsAndOffsets) {
  const SortKernelOps* avx2 = Avx2OrSkip();
  if (avx2 == nullptr) GTEST_SKIP() << "host or build lacks AVX2";
  std::uint64_t seed = 100;
  for (InputKind kind : {InputKind::kUniform, InputKind::kDuplicateHeavy,
                         InputKind::kAdversarial}) {
    for (std::size_t n : BoundarySizes()) {
      for (std::size_t offset = 0; offset < 8; ++offset) {
        ExpectKernelsMatch(*avx2, kind, n, offset, ++seed);
      }
    }
  }
}

// ------------------------------------------------ dispatch and the names

TEST(SimdKernelTest, DispatchNamesAreStable) {
  EXPECT_STREQ(simd::DispatchPathName(DispatchPath::kScalar), "scalar");
  EXPECT_STREQ(simd::DispatchPathName(DispatchPath::kForcedScalar),
               "forced-scalar");
  EXPECT_STREQ(simd::DispatchPathName(DispatchPath::kAvx2), "avx2");
  EXPECT_STREQ(simd::ActivePathName(),
               simd::DispatchPathName(simd::ActivePath()));
  EXPECT_FALSE(simd::CpuFeatureString().empty());
}

TEST(SimdKernelTest, ForceDispatchSwapsTableAndName) {
  const DispatchPath original =
      simd::ForceDispatchForTesting(DispatchPath::kForcedScalar);
  EXPECT_STREQ(simd::ActivePathName(), "forced-scalar");
  EXPECT_EQ(&simd::ActiveSortKernels(), &simd::ScalarSortKernels());
  simd::ForceDispatchForTesting(original);
  EXPECT_EQ(simd::ActivePath(), original);
}

// ----------------------------------- both paths through the whole engine

/// Serialized sketch state after a fixed stream under the given dispatch
/// path — the end-to-end function whose output must not depend on the
/// kernel table.
std::vector<std::uint8_t> SketchStateUnder(DispatchPath path) {
  const DispatchPath original = simd::ForceDispatchForTesting(path);
  UnknownNOptions options;
  options.eps = 0.01;
  options.delta = 1e-4;
  options.seed = 2026;
  Result<UnknownNSketch> sketch = UnknownNSketch::Create(options);
  EXPECT_TRUE(sketch.ok());
  Random rng(77);
  std::vector<Value> batch(4096);
  const std::vector<Value> palette = AdversarialPalette();
  for (int rep = 0; rep < 40; ++rep) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      // Mostly random with a sprinkle of the adversarial palette, so the
      // collapse tree sorts duplicate zeros and infinities too.
      batch[i] = (i % 67 == 0) ? palette[(i + rep) % palette.size()]
                               : rng.UniformDouble(-1e9, 1e9);
    }
    sketch.value().AddBatch(batch);
  }
  std::vector<std::uint8_t> state = sketch.value().Serialize();
  simd::ForceDispatchForTesting(original);
  return state;
}

TEST(SimdKernelTest, ForcedScalarAndAvx2SerializeIdenticalSketchState) {
  if (Avx2OrSkip() == nullptr) GTEST_SKIP() << "host or build lacks AVX2";
  const std::vector<std::uint8_t> scalar_state =
      SketchStateUnder(DispatchPath::kForcedScalar);
  const std::vector<std::uint8_t> avx2_state =
      SketchStateUnder(DispatchPath::kAvx2);
  ASSERT_EQ(scalar_state.size(), avx2_state.size());
  EXPECT_EQ(scalar_state, avx2_state)
      << "dispatch path changed serialized sketch state";
}

TEST(SimdKernelTest, SortEngineBitIdenticalAcrossPaths) {
  if (Avx2OrSkip() == nullptr) GTEST_SKIP() << "host or build lacks AVX2";
  for (std::size_t n : BoundarySizes()) {
    std::vector<Value> a = MakeInput(InputKind::kAdversarial, n, n + 9);
    std::vector<Value> b = a;

    DispatchPath original =
        simd::ForceDispatchForTesting(DispatchPath::kForcedScalar);
    SortScratch scratch_a;
    SortValues(a.data(), a.size(), &scratch_a);
    simd::ForceDispatchForTesting(DispatchPath::kAvx2);
    SortScratch scratch_b;
    SortValues(b.data(), b.size(), &scratch_b);
    simd::ForceDispatchForTesting(original);

    ASSERT_EQ(std::memcmp(a.data(), b.data(), n * sizeof(Value)), 0)
        << "n=" << n;
  }
}

}  // namespace
}  // namespace mrl
