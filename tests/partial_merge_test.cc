// Partial-summary export, wire round-trip, and Section 6 merge rules
// (core/partial.h) — including the degenerate merges a router must
// survive: a single partial, partials with empty buffer sets, and
// summaries produced by sketches with mismatched tree heights.

#include "core/partial.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "core/kll.h"
#include "core/sharded.h"
#include "core/unknown_n.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace mrl {
namespace {

std::vector<Value> UniformStream(std::size_t n, std::uint64_t seed) {
  Random rng(seed);
  std::vector<Value> values(n);
  for (Value& v : values) v = rng.UniformDouble();
  return values;
}

double RankOf(const std::vector<Value>& sorted, Value answer) {
  const auto it = std::upper_bound(sorted.begin(), sorted.end(), answer);
  return static_cast<double>(it - sorted.begin()) /
         static_cast<double>(sorted.size());
}

UnknownNSketch MakeSketch(double eps, double delta, std::uint64_t seed) {
  UnknownNOptions options;
  options.eps = eps;
  options.delta = delta;
  options.seed = seed;
  Result<UnknownNSketch> sketch = UnknownNSketch::Create(options);
  EXPECT_TRUE(sketch.ok()) << sketch.status().ToString();
  return std::move(sketch).value();
}

TEST(PartialSummaryTest, SerializeRoundTrip) {
  UnknownNSketch sketch = MakeSketch(0.05, 1e-3, 7);
  const std::vector<Value> data = UniformStream(10000, 42);
  sketch.AddBatch(data);

  PartialSummary summary;
  ASSERT_TRUE(sketch.ExportPartial(&summary).ok());
  EXPECT_EQ(summary.count, data.size());
  EXPECT_FALSE(summary.buffers.empty());

  std::vector<std::uint8_t> blob;
  SerializePartialSummary(summary, &blob);
  Result<PartialSummary> restored = DeserializePartialSummary(blob);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  EXPECT_EQ(restored.value().params.b, summary.params.b);
  EXPECT_EQ(restored.value().params.k, summary.params.k);
  EXPECT_EQ(restored.value().params.h, summary.params.h);
  EXPECT_EQ(restored.value().count, summary.count);
  ASSERT_EQ(restored.value().buffers.size(), summary.buffers.size());
  for (std::size_t i = 0; i < summary.buffers.size(); ++i) {
    EXPECT_EQ(restored.value().buffers[i].values, summary.buffers[i].values);
    EXPECT_EQ(restored.value().buffers[i].weight, summary.buffers[i].weight);
    EXPECT_EQ(restored.value().buffers[i].full, summary.buffers[i].full);
  }
}

TEST(PartialSummaryTest, ExportIsNonDestructive) {
  UnknownNSketch sketch = MakeSketch(0.05, 1e-3, 7);
  sketch.AddBatch(UniformStream(5000, 9));
  const Result<Value> before = sketch.Query(0.5);
  PartialSummary summary;
  ASSERT_TRUE(sketch.ExportPartial(&summary).ok());
  const Result<Value> after = sketch.Query(0.5);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before.value(), after.value());
  // And the sketch keeps ingesting normally.
  sketch.AddBatch(UniformStream(5000, 10));
  EXPECT_EQ(sketch.count(), 10000u);
}

// Degenerate merge: exactly one partial summary. The answer must carry the
// producing sketch's eps guarantee.
TEST(PartialMergeTest, SinglePartialMatchesDirectSketch) {
  constexpr double kEps = 0.05;
  constexpr std::size_t kN = 50000;
  UnknownNSketch sketch = MakeSketch(kEps, 1e-3, 3);
  std::vector<Value> data = UniformStream(kN, 11);
  sketch.AddBatch(data);

  PartialSummary summary;
  ASSERT_TRUE(sketch.ExportPartial(&summary).ok());

  const std::vector<double> phis = {0.05, 0.25, 0.5, 0.75, 0.95};
  Result<std::vector<Value>> merged = MergePartialQuantiles({summary}, 99,
                                                            phis);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();

  std::sort(data.begin(), data.end());
  for (std::size_t i = 0; i < phis.size(); ++i) {
    EXPECT_NEAR(RankOf(data, merged.value()[i]), phis[i], 2 * kEps)
        << "phi=" << phis[i];
  }
}

TEST(PartialMergeTest, MultiWayMergeIsAccurate) {
  constexpr double kEps = 0.05;
  constexpr int kWorkers = 3;
  constexpr std::size_t kPerWorker = 30000;

  std::vector<PartialSummary> parts;
  std::vector<Value> all;
  for (int w = 0; w < kWorkers; ++w) {
    UnknownNSketch sketch = MakeSketch(kEps, 1e-3, 100 + w);
    const std::vector<Value> data = UniformStream(kPerWorker, 500 + w);
    sketch.AddBatch(data);
    all.insert(all.end(), data.begin(), data.end());
    PartialSummary summary;
    ASSERT_TRUE(sketch.ExportPartial(&summary).ok());
    parts.push_back(std::move(summary));
  }

  const std::vector<double> phis = {0.1, 0.5, 0.9};
  Result<std::vector<Value>> merged = MergePartialQuantiles(parts, 1, phis);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();

  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < phis.size(); ++i) {
    EXPECT_NEAR(RankOf(all, merged.value()[i]), phis[i], 2 * kEps)
        << "phi=" << phis[i];
  }
}

// Degenerate merge: summaries whose buffer lists are empty (freshly created
// sketches) must not fail the merge as long as one summary holds data —
// and an all-empty merge is a clean FailedPrecondition, not a crash.
TEST(PartialMergeTest, EmptyBufferPartials) {
  UnknownNSketch empty1 = MakeSketch(0.05, 1e-3, 1);
  UnknownNSketch empty2 = MakeSketch(0.05, 1e-3, 2);
  UnknownNSketch loaded = MakeSketch(0.05, 1e-3, 3);
  std::vector<Value> data = UniformStream(20000, 21);
  loaded.AddBatch(data);

  PartialSummary p_empty1, p_empty2, p_loaded;
  ASSERT_TRUE(empty1.ExportPartial(&p_empty1).ok());
  ASSERT_TRUE(empty2.ExportPartial(&p_empty2).ok());
  ASSERT_TRUE(loaded.ExportPartial(&p_loaded).ok());
  EXPECT_TRUE(p_empty1.buffers.empty());

  Result<std::vector<Value>> merged = MergePartialQuantiles(
      {p_empty1, p_loaded, p_empty2}, 5, {0.5});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  std::sort(data.begin(), data.end());
  EXPECT_NEAR(RankOf(data, merged.value()[0]), 0.5, 0.1);

  Result<std::vector<Value>> all_empty = MergePartialQuantiles(
      {p_empty1, p_empty2}, 5, {0.5});
  ASSERT_FALSE(all_empty.ok());
  EXPECT_EQ(all_empty.status().code(), StatusCode::kFailedPrecondition);

  Result<std::vector<Value>> none = MergePartialQuantiles({}, 5, {0.5});
  ASSERT_FALSE(none.ok());
}

// Degenerate merge: producers solved with different (eps, delta) have
// different tree heights and buffer counts. Merging is defined whenever k
// agrees; mismatched k must be a clean error.
TEST(PartialMergeTest, MismatchedHeights) {
  UnknownNSketch a = MakeSketch(0.05, 1e-3, 1);
  UnknownNSketch b = MakeSketch(0.05, 1e-5, 2);  // deeper tree, same story
  std::vector<Value> data_a = UniformStream(20000, 31);
  std::vector<Value> data_b = UniformStream(20000, 32);
  a.AddBatch(data_a);
  b.AddBatch(data_b);

  PartialSummary pa, pb;
  ASSERT_TRUE(a.ExportPartial(&pa).ok());
  ASSERT_TRUE(b.ExportPartial(&pb).ok());

  if (pa.params.k == pb.params.k) {
    Result<std::vector<Value>> merged = MergePartialQuantiles({pa, pb}, 3,
                                                              {0.5});
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    std::vector<Value> all = data_a;
    all.insert(all.end(), data_b.begin(), data_b.end());
    std::sort(all.begin(), all.end());
    EXPECT_NEAR(RankOf(all, merged.value()[0]), 0.5, 0.15);
  }

  // Force a k mismatch and require a clean InvalidArgument.
  pb.params.k = pa.params.k + 1;
  Result<std::vector<Value>> mismatched = MergePartialQuantiles({pa, pb}, 3,
                                                                {0.5});
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.status().code(), StatusCode::kInvalidArgument);
}

TEST(PartialSummaryTest, HostileBlobsAreCleanErrors) {
  UnknownNSketch sketch = MakeSketch(0.05, 1e-3, 7);
  sketch.AddBatch(UniformStream(10000, 42));
  PartialSummary summary;
  ASSERT_TRUE(sketch.ExportPartial(&summary).ok());
  std::vector<std::uint8_t> good;
  SerializePartialSummary(summary, &good);

  // Truncations at every length must fail cleanly.
  for (std::size_t n = 0; n < good.size(); n += 7) {
    EXPECT_FALSE(
        DeserializePartialSummary(std::span<const std::uint8_t>(good.data(),
                                                                n))
            .ok())
        << "truncated to " << n;
  }

  std::vector<std::uint8_t> bad = good;
  bad[0] ^= 0xFF;  // magic
  EXPECT_FALSE(DeserializePartialSummary(bad).ok());

  bad = good;
  bad[4] = 0x7F;  // version
  EXPECT_FALSE(DeserializePartialSummary(bad).ok());

  // Trailing garbage is rejected.
  bad = good;
  bad.push_back(0);
  EXPECT_FALSE(DeserializePartialSummary(bad).ok());

  // An empty buffer is a valid summary (no payload after the header).
  PartialSummary empty;
  empty.params = summary.params;
  empty.count = 0;
  std::vector<std::uint8_t> empty_blob;
  SerializePartialSummary(empty, &empty_blob);
  EXPECT_TRUE(DeserializePartialSummary(empty_blob).ok());
}

TEST(PartialSummaryTest, ShardedBackendExports) {
  ShardedQuantileSketch::Options options;
  options.eps = 0.05;
  options.delta = 1e-3;
  options.num_shards = 3;
  options.seed = 8;
  Result<ShardedQuantileSketch> sharded =
      ShardedQuantileSketch::Create(options);
  ASSERT_TRUE(sharded.ok());
  std::vector<Value> data = UniformStream(30000, 55);
  sharded.value().AddBatch(data);

  ASSERT_TRUE(sharded.value().SupportsPartialExport());
  PartialSummary summary;
  ASSERT_TRUE(sharded.value().ExportPartial(&summary).ok());
  EXPECT_EQ(summary.count, data.size());

  Result<std::vector<Value>> merged = MergePartialQuantiles({summary}, 2,
                                                            {0.5});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  std::sort(data.begin(), data.end());
  EXPECT_NEAR(RankOf(data, merged.value()[0]), 0.5, 0.1);
}

TEST(PartialSummaryTest, KllBackendDeclinesExport) {
  KllOptions options;
  options.eps = 0.05;
  Result<KllSketch> kll = KllSketch::Create(options);
  ASSERT_TRUE(kll.ok());
  EXPECT_FALSE(kll.value().SupportsPartialExport());
  PartialSummary summary;
  const Status status = kll.value().ExportPartial(&summary);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace mrl
