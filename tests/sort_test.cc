// Tests for the radix sort engine (util/sort.h): the order-preserving key
// transform (round trip + order preservation against std::strong_order),
// and differential tests of SortValues / SortPairs / SortValuesDescending
// against the comparison-sort references over adversarial inputs — ±0.0,
// ±inf, denormals, all-equal, presorted, reverse, organ-pipe — at sizes
// straddling the radix cutoff. Outputs are compared bit for bit, which is
// what lets the sketches' golden state hashes survive the engine swap.

#include "util/sort.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <compare>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "util/random.h"
#include "util/types.h"

namespace mrl {
namespace {

/// Random non-NaN double drawn uniformly over bit patterns, so the full
/// exponent range (denormals, both zeros, both infinities) is exercised.
Value RandomNonNaNBits(Random* rng) {
  for (;;) {
    const Value v = std::bit_cast<Value>(rng->NextUint64());
    if (!std::isnan(v)) return v;
  }
}

TEST(OrderedKeyTest, RoundTripsRandomBitPatterns) {
  Random rng(1);
  for (int i = 0; i < 200000; ++i) {
    const Value v = RandomNonNaNBits(&rng);
    const Value back = ValueFromOrderedKey(OrderedKeyFromValue(v));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(v),
              std::bit_cast<std::uint64_t>(back));
  }
}

TEST(OrderedKeyTest, RoundTripsSpecialValues) {
  const Value specials[] = {
      0.0,
      -0.0,
      std::numeric_limits<Value>::infinity(),
      -std::numeric_limits<Value>::infinity(),
      std::numeric_limits<Value>::denorm_min(),
      -std::numeric_limits<Value>::denorm_min(),
      std::numeric_limits<Value>::min(),
      std::numeric_limits<Value>::max(),
      std::numeric_limits<Value>::lowest(),
      1.0,
      -1.0,
  };
  for (Value v : specials) {
    const Value back = ValueFromOrderedKey(OrderedKeyFromValue(v));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(v),
              std::bit_cast<std::uint64_t>(back));
  }
}

TEST(OrderedKeyTest, MatchesStrongOrderOnRandomPairs) {
  Random rng(2);
  for (int i = 0; i < 200000; ++i) {
    const Value a = RandomNonNaNBits(&rng);
    const Value b = RandomNonNaNBits(&rng);
    const std::uint64_t ka = OrderedKeyFromValue(a);
    const std::uint64_t kb = OrderedKeyFromValue(b);
    // On non-NaN doubles the transform's order IS IEEE totalOrder, which
    // std::strong_order implements.
    const std::strong_ordering expected = std::strong_order(a, b);
    if (expected == std::strong_ordering::less) {
      EXPECT_LT(ka, kb) << a << " vs " << b;
    } else if (expected == std::strong_ordering::greater) {
      EXPECT_GT(ka, kb) << a << " vs " << b;
    } else {
      EXPECT_EQ(ka, kb) << a << " vs " << b;
    }
  }
}

TEST(OrderedKeyTest, ZerosAreAdjacentWithNegativeFirst) {
  const std::uint64_t k_neg = OrderedKeyFromValue(-0.0);
  const std::uint64_t k_pos = OrderedKeyFromValue(0.0);
  EXPECT_EQ(k_neg + 1, k_pos);
}

TEST(OrderedKeyTest, TotalOrderEndpoints) {
  const Value inf = std::numeric_limits<Value>::infinity();
  const Value denorm = std::numeric_limits<Value>::denorm_min();
  EXPECT_LT(OrderedKeyFromValue(-inf),
            OrderedKeyFromValue(std::numeric_limits<Value>::lowest()));
  EXPECT_LT(OrderedKeyFromValue(-denorm), OrderedKeyFromValue(-0.0));
  EXPECT_LT(OrderedKeyFromValue(0.0), OrderedKeyFromValue(denorm));
  EXPECT_LT(OrderedKeyFromValue(std::numeric_limits<Value>::max()),
            OrderedKeyFromValue(inf));
}

/// Adversarial input families, by name for failure messages.
std::vector<Value> MakeInput(const std::string& family, std::size_t n,
                             Random* rng) {
  std::vector<Value> v(n);
  if (family == "uniform") {
    for (Value& x : v) x = rng->UniformDouble(-1.0, 1.0);
  } else if (family == "bits") {
    for (Value& x : v) x = RandomNonNaNBits(rng);
  } else if (family == "zeros_and_infs") {
    const Value pool[] = {0.0, -0.0, 1.0, -1.0,
                          std::numeric_limits<Value>::infinity(),
                          -std::numeric_limits<Value>::infinity(),
                          std::numeric_limits<Value>::denorm_min(),
                          -std::numeric_limits<Value>::denorm_min()};
    for (Value& x : v) x = pool[rng->UniformUint64(8)];
  } else if (family == "all_equal") {
    for (Value& x : v) x = 42.0;
  } else if (family == "presorted") {
    double acc = -1000.0;
    for (Value& x : v) {
      acc += rng->UniformDouble();
      x = acc;
    }
  } else if (family == "reverse") {
    double acc = 1000.0;
    for (Value& x : v) {
      acc -= rng->UniformDouble();
      x = acc;
    }
  } else if (family == "organ_pipe") {
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = static_cast<Value>(std::min(i, n - i));
    }
  } else if (family == "narrow_range") {
    // Keys agreeing on most high bytes: exercises pass skipping mid-sort.
    for (Value& x : v) x = 1.0 + rng->UniformDouble() * 1e-12;
  } else {
    ADD_FAILURE() << "unknown family " << family;
  }
  return v;
}

void ExpectBitIdentical(const std::vector<Value>& got,
                        const std::vector<Value>& want,
                        const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(got[i]),
              std::bit_cast<std::uint64_t>(want[i]))
        << what << " differs at index " << i << ": " << got[i] << " vs "
        << want[i];
  }
}

TEST(SortValuesTest, MatchesNaiveBitForBit) {
  const char* families[] = {"uniform",   "bits",      "zeros_and_infs",
                            "all_equal", "presorted", "reverse",
                            "organ_pipe", "narrow_range"};
  // Sizes straddle the radix cutoff (both comparison and radix paths).
  const std::size_t sizes[] = {0, 1, 2, 3, 17, 255, 256, 257, 1024, 8192};
  Random rng(3);
  SortScratch scratch;
  for (const char* family : families) {
    for (std::size_t n : sizes) {
      std::vector<Value> input = MakeInput(family, n, &rng);
      std::vector<Value> got = input;
      std::vector<Value> want = input;
      SortValues(got.data(), got.size(), &scratch);
      SortValuesNaive(want.data(), want.size());
      ExpectBitIdentical(got, want,
                         std::string(family) + "/" + std::to_string(n));
      EXPECT_TRUE(std::is_sorted(got.begin(), got.end(), OrderedLess));
    }
  }
}

TEST(SortValuesTest, ThreadLocalOverloadMatchesScratchOverload) {
  Random rng(4);
  std::vector<Value> input = MakeInput("bits", 4096, &rng);
  std::vector<Value> a = input;
  std::vector<Value> b = input;
  SortScratch scratch;
  SortValues(a.data(), a.size(), &scratch);
  SortValues(b.data(), b.size());
  ExpectBitIdentical(a, b, "thread-local overload");
}

TEST(SortValuesDescendingTest, IsReversedTotalOrder) {
  Random rng(5);
  SortScratch scratch;
  for (std::size_t n : {std::size_t{0}, std::size_t{7}, std::size_t{255},
                        std::size_t{257}, std::size_t{4096}}) {
    std::vector<Value> input = MakeInput("zeros_and_infs", n, &rng);
    std::vector<Value> got = input;
    std::vector<Value> want = input;
    SortValuesDescending(got.data(), got.size());
    SortValues(want.data(), want.size(), &scratch);
    std::reverse(want.begin(), want.end());
    ExpectBitIdentical(got, want, "descending/" + std::to_string(n));
  }
}

TEST(SortPairsTest, MatchesStableNaiveBitForBit) {
  Random rng(6);
  SortScratch scratch;
  for (std::size_t n : {std::size_t{0}, std::size_t{3}, std::size_t{255},
                        std::size_t{256}, std::size_t{257}, std::size_t{1024},
                        std::size_t{8192}}) {
    std::vector<KeyedPayload> input(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Few distinct keys -> many ties, so stability is load-bearing.
      input[i] = {static_cast<Value>(rng.UniformUint64(16)) * 0.5, i};
    }
    std::vector<KeyedPayload> got = input;
    std::vector<KeyedPayload> want = input;
    SortPairs(got.data(), got.size(), &scratch);
    SortPairsNaive(want.data(), want.size());
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(std::bit_cast<std::uint64_t>(got[i].first),
                std::bit_cast<std::uint64_t>(want[i].first))
          << "key at " << i;
      ASSERT_EQ(got[i].second, want[i].second) << "payload at " << i;
    }
  }
}

TEST(SortPairsTest, StableOnEqualKeysIncludingBothZeros) {
  // All keys compare equal per byte except the zeros; payloads of
  // bitwise-identical keys must keep input order.
  std::vector<KeyedPayload> input;
  for (std::uint64_t i = 0; i < 600; ++i) {
    input.push_back({(i % 2 == 0) ? 0.0 : -0.0, i});
  }
  SortPairs(input.data(), input.size());
  // Total order puts all -0.0 first, then all +0.0, each group in input
  // (odd/even payload) order.
  for (std::size_t i = 0; i < 300; ++i) {
    EXPECT_TRUE(std::signbit(input[i].first)) << i;
    EXPECT_EQ(input[i].second, 2 * i + 1) << i;
  }
  for (std::size_t i = 300; i < 600; ++i) {
    EXPECT_FALSE(std::signbit(input[i].first)) << i;
    EXPECT_EQ(input[i].second, 2 * (i - 300)) << i;
  }
}

TEST(SortValuesTest, ScratchIsReusableAcrossSizes) {
  // Shrinking then growing n must not confuse the arena.
  Random rng(7);
  SortScratch scratch;
  for (std::size_t n : {std::size_t{8192}, std::size_t{16}, std::size_t{300},
                        std::size_t{8192}, std::size_t{257}}) {
    std::vector<Value> input = MakeInput("uniform", n, &rng);
    std::vector<Value> want = input;
    SortValues(input.data(), input.size(), &scratch);
    SortValuesNaive(want.data(), want.size());
    ExpectBitIdentical(input, want, "reuse/" + std::to_string(n));
  }
}

}  // namespace
}  // namespace mrl
