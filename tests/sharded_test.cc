#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/sharded.h"
#include "core/summary.h"
#include "stream/generator.h"

namespace mrl {
namespace {

// ----------------------------------------------------------- Summary merge

TEST(SummaryMergeTest, MergeEqualsUnionFromRuns) {
  std::vector<Value> a = {1, 3, 5};
  std::vector<Value> b = {2, 3, 9};
  std::vector<WeightedRun> run_a = {{a.data(), a.size(), 2}};
  std::vector<WeightedRun> run_b = {{b.data(), b.size(), 4}};
  QuantileSummary sa = QuantileSummary::FromRuns(run_a);
  QuantileSummary sb = QuantileSummary::FromRuns(run_b);
  QuantileSummary merged = QuantileSummary::Merge({&sa, &sb});

  std::vector<WeightedRun> both = {{a.data(), a.size(), 2},
                                   {b.data(), b.size(), 4}};
  QuantileSummary direct = QuantileSummary::FromRuns(both);
  ASSERT_EQ(merged.size(), direct.size());
  EXPECT_EQ(merged.total_weight(), direct.total_weight());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_DOUBLE_EQ(merged.entries()[i].value, direct.entries()[i].value);
    EXPECT_EQ(merged.entries()[i].cumulative_weight,
              direct.entries()[i].cumulative_weight);
  }
}

TEST(SummaryMergeTest, MergeOfEmptiesIsEmpty) {
  QuantileSummary empty_a, empty_b;
  QuantileSummary merged = QuantileSummary::Merge({&empty_a, &empty_b});
  EXPECT_TRUE(merged.empty());
  EXPECT_TRUE(QuantileSummary::Merge({}).empty());
}

TEST(SummaryMergeTest, MergeIsOrderInsensitive) {
  std::vector<Value> a = {1, 2};
  std::vector<Value> b = {3};
  std::vector<WeightedRun> run_a = {{a.data(), a.size(), 1}};
  std::vector<WeightedRun> run_b = {{b.data(), b.size(), 7}};
  QuantileSummary sa = QuantileSummary::FromRuns(run_a);
  QuantileSummary sb = QuantileSummary::FromRuns(run_b);
  QuantileSummary ab = QuantileSummary::Merge({&sa, &sb});
  QuantileSummary ba = QuantileSummary::Merge({&sb, &sa});
  EXPECT_EQ(ab.total_weight(), ba.total_weight());
  EXPECT_DOUBLE_EQ(ab.Quantile(0.5).value(), ba.Quantile(0.5).value());
}

// ------------------------------------------------------------ Sharded sketch

TEST(ShardedTest, RejectsZeroShards) {
  ShardedQuantileSketch::Options options;
  options.num_shards = 0;
  EXPECT_FALSE(ShardedQuantileSketch::Create(options).ok());
}

TEST(ShardedTest, SingleShardMatchesPlainSketch) {
  ShardedQuantileSketch::Options options;
  options.eps = 0.02;
  options.num_shards = 1;
  options.seed = 3;
  ShardedQuantileSketch sharded =
      std::move(ShardedQuantileSketch::Create(options)).value();
  StreamSpec spec;
  spec.n = 20000;
  spec.seed = 5;
  Dataset ds = GenerateStream(spec);
  for (Value v : ds.values()) sharded.Add(0, v);
  EXPECT_EQ(sharded.count(), ds.size());
  EXPECT_DOUBLE_EQ(sharded.Query(0.5).value(),
                   sharded.shard(0).Query(0.5).value());
}

TEST(ShardedTest, UnionAccuracyAcrossSkewedShards) {
  ShardedQuantileSketch::Options options;
  options.eps = 0.02;
  options.delta = 1e-3;
  options.num_shards = 4;
  options.seed = 7;
  ShardedQuantileSketch sharded =
      std::move(ShardedQuantileSketch::Create(options)).value();
  // Each shard sees a different value range (partitioned table reality).
  std::vector<Value> all;
  Random rng(9);
  for (int s = 0; s < 4; ++s) {
    for (int i = 0; i < 30000; ++i) {
      Value v = 100.0 * s + rng.UniformDouble() * 100.0;
      sharded.Add(s, v);
      all.push_back(v);
    }
  }
  Dataset union_ds(std::move(all));
  for (double phi : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    EXPECT_LE(union_ds.QuantileError(sharded.Query(phi).value(), phi),
              options.eps)
        << "phi " << phi;
  }
}

TEST(ShardedTest, ConcurrentWritersThenQuery) {
  ShardedQuantileSketch::Options options;
  options.eps = 0.02;
  options.delta = 1e-3;
  options.num_shards = 4;
  options.seed = 11;
  ShardedQuantileSketch sharded =
      std::move(ShardedQuantileSketch::Create(options)).value();
  std::vector<std::vector<Value>> shards;
  for (int s = 0; s < 4; ++s) {
    StreamSpec spec;
    spec.n = 50000;
    spec.seed = 100 + static_cast<std::uint64_t>(s);
    shards.push_back(GenerateStream(spec).values());
  }
  {
    std::vector<std::thread> threads;
    for (int s = 0; s < 4; ++s) {
      threads.emplace_back([&sharded, &shards, s] {
        for (Value v : shards[static_cast<std::size_t>(s)]) {
          sharded.Add(s, v);
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  std::vector<Value> all;
  for (const auto& s : shards) all.insert(all.end(), s.begin(), s.end());
  Dataset union_ds(std::move(all));
  EXPECT_EQ(sharded.count(), union_ds.size());
  EXPECT_LE(union_ds.QuantileError(sharded.Query(0.5).value(), 0.5),
            options.eps);
}

TEST(ShardedTest, QueryManyAlignsWithSingles) {
  ShardedQuantileSketch::Options options;
  options.eps = 0.05;
  options.num_shards = 2;
  ShardedQuantileSketch sharded =
      std::move(ShardedQuantileSketch::Create(options)).value();
  for (int i = 0; i < 5000; ++i) sharded.Add(i % 2, i);
  std::vector<Value> batch = sharded.QueryMany({0.3, 0.7}).value();
  EXPECT_DOUBLE_EQ(batch[0], sharded.Query(0.3).value());
  EXPECT_DOUBLE_EQ(batch[1], sharded.Query(0.7).value());
}

TEST(ShardedTest, EmptyQueryFails) {
  ShardedQuantileSketch::Options options;
  options.eps = 0.05;
  options.num_shards = 2;
  ShardedQuantileSketch sharded =
      std::move(ShardedQuantileSketch::Create(options)).value();
  EXPECT_EQ(sharded.Query(0.5).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ShardedTest, IdleShardsDoNotPerturbAnswers) {
  ShardedQuantileSketch::Options options;
  options.eps = 0.05;
  options.num_shards = 8;
  ShardedQuantileSketch sharded =
      std::move(ShardedQuantileSketch::Create(options)).value();
  for (int i = 1; i <= 1000; ++i) sharded.Add(3, i);  // only one shard used
  EXPECT_EQ(sharded.count(), 1000u);
  EXPECT_DOUBLE_EQ(sharded.Query(1.0).value(), 1000.0);
}

}  // namespace
}  // namespace mrl
