#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/unknown_n.h"
#include "stream/generator.h"
#include "util/math.h"

namespace mrl {
namespace {

UnknownNParams SmallParams() {
  // Tiny explicit parameters that force sampling onset quickly:
  // b=3, k=20, h=2 -> onset after C(4,2)=6 leaves = 120 elements.
  UnknownNParams p;
  p.b = 3;
  p.k = 20;
  p.h = 2;
  p.alpha = 0.5;
  p.leaves_before_sampling = 6;
  return p;
}

UnknownNSketch MakeSmall(std::uint64_t seed = 1) {
  UnknownNOptions options;
  options.params = SmallParams();
  options.seed = seed;
  Result<UnknownNSketch> r = UnknownNSketch::Create(options);
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

TEST(UnknownNSketchTest, CreateSolvesParamsWhenUnspecified) {
  UnknownNOptions options;
  options.eps = 0.01;
  options.delta = 1e-4;
  Result<UnknownNSketch> r = UnknownNSketch::Create(options);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.value().params().b, 2);
  EXPECT_EQ(r.value().MemoryElements(),
            static_cast<std::uint64_t>(r.value().params().b) *
                r.value().params().k);
}

TEST(UnknownNSketchTest, CreateRejectsBadExplicitParams) {
  UnknownNOptions options;
  UnknownNParams p = SmallParams();
  p.b = 1;
  options.params = p;
  EXPECT_EQ(UnknownNSketch::Create(options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(UnknownNSketchTest, CreateRejectsBadEps) {
  UnknownNOptions options;
  options.eps = 0.0;
  EXPECT_FALSE(UnknownNSketch::Create(options).ok());
  options.eps = 1.5;
  EXPECT_FALSE(UnknownNSketch::Create(options).ok());
}

TEST(UnknownNSketchTest, QueryBeforeAnyElementFails) {
  UnknownNSketch s = MakeSmall();
  EXPECT_EQ(s.Query(0.5).status().code(), StatusCode::kFailedPrecondition);
}

TEST(UnknownNSketchTest, QueryRejectsBadPhi) {
  UnknownNSketch s = MakeSmall();
  s.Add(1.0);
  EXPECT_EQ(s.Query(0.0).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.Query(1.5).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.Query(-0.1).status().code(), StatusCode::kInvalidArgument);
}

TEST(UnknownNSketchTest, SingleElementStream) {
  UnknownNSketch s = MakeSmall();
  s.Add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.HeldWeight(), 1u);
  EXPECT_DOUBLE_EQ(s.Query(0.5).value(), 42.0);
  EXPECT_DOUBLE_EQ(s.Query(1.0).value(), 42.0);
  EXPECT_DOUBLE_EQ(s.Query(0.001).value(), 42.0);
}

TEST(UnknownNSketchTest, HeldWeightEqualsCountAtEveryStep) {
  // The central bookkeeping invariant: the sketch always represents
  // exactly the elements consumed, across buffer fills, collapses, rate
  // doublings, and in-flight blocks.
  UnknownNSketch s = MakeSmall();
  StreamSpec spec;
  spec.n = 3000;
  spec.seed = 5;
  Dataset ds = GenerateStream(spec);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    s.Add(ds.values()[i]);
    ASSERT_EQ(s.HeldWeight(), i + 1) << "after element " << i;
  }
}

TEST(UnknownNSketchTest, SamplingOnsetFollowsTreeGrowth) {
  UnknownNSketch s = MakeSmall();
  EXPECT_EQ(s.sampling_rate(), 1u);
  // The tree holds C(b+h-1, h) = 6 unsampled leaves of k=20 elements; the
  // next Add triggers the collapse that creates the first level-h buffer,
  // and that same New switches to rate 2 (Section 3.7).
  for (int i = 0; i < 120; ++i) s.Add(i);
  EXPECT_EQ(s.tree_stats().max_level, 1);
  EXPECT_EQ(s.sampling_rate(), 1u);
  s.Add(120);
  EXPECT_EQ(s.tree_stats().max_level, 2);
  EXPECT_EQ(s.sampling_rate(), 2u);
}

TEST(UnknownNSketchTest, SamplingRateKeepsDoubling) {
  UnknownNSketch s = MakeSmall();
  Weight max_rate = 1;
  for (int i = 0; i < 20000; ++i) {
    s.Add(i);
    max_rate = std::max(max_rate, s.sampling_rate());
  }
  EXPECT_GE(max_rate, 4u);
  EXPECT_TRUE(IsPow2(s.sampling_rate()));
  EXPECT_EQ(s.HeldWeight(), 20000u);
}

TEST(UnknownNSketchTest, PostOnsetLeavesEnterAtHigherLevels) {
  UnknownNSketch s = MakeSmall();
  for (int i = 0; i < 500; ++i) s.Add(i);
  // After onset (max_level >= h), any filling happens at level
  // max_level - h + 1 >= 1; check the committed buffers' levels are
  // plausible: no full buffer sits below level 0 and levels never exceed
  // max_level.
  const CollapseFramework& fw = s.framework();
  for (int i = 0; i < fw.num_buffers(); ++i) {
    const Buffer& buf = fw.buffer(static_cast<std::size_t>(i));
    if (buf.state() == BufferState::kFull) {
      EXPECT_GE(buf.level(), 0);
      EXPECT_LE(buf.level(), fw.max_level());
    }
  }
  EXPECT_GE(fw.max_level(), 2);
}

TEST(UnknownNSketchTest, DeterministicAcrossRuns) {
  StreamSpec spec;
  spec.n = 5000;
  spec.seed = 9;
  Dataset ds = GenerateStream(spec);
  UnknownNSketch a = MakeSmall(123);
  UnknownNSketch b = MakeSmall(123);
  for (Value v : ds.values()) {
    a.Add(v);
    b.Add(v);
  }
  for (double phi : {0.1, 0.5, 0.9}) {
    EXPECT_DOUBLE_EQ(a.Query(phi).value(), b.Query(phi).value());
  }
}

TEST(UnknownNSketchTest, QueryManyAgreesWithSingleQueries) {
  UnknownNSketch s = MakeSmall(7);
  StreamSpec spec;
  spec.n = 2500;
  spec.seed = 11;
  Dataset ds = GenerateStream(spec);
  for (Value v : ds.values()) s.Add(v);
  std::vector<double> phis = {0.9, 0.1, 0.5, 0.5, 0.25};
  std::vector<Value> batch = s.QueryMany(phis).value();
  ASSERT_EQ(batch.size(), phis.size());
  for (std::size_t i = 0; i < phis.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], s.Query(phis[i]).value()) << "phi " << phis[i];
  }
}

TEST(UnknownNSketchTest, AnytimeQueriesAreMonotoneInPhi) {
  UnknownNSketch s = MakeSmall(3);
  StreamSpec spec;
  spec.n = 4000;
  spec.seed = 13;
  Dataset ds = GenerateStream(spec);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    s.Add(ds.values()[i]);
    if ((i + 1) % 500 == 0) {
      Value q25 = s.Query(0.25).value();
      Value q50 = s.Query(0.5).value();
      Value q75 = s.Query(0.75).value();
      EXPECT_LE(q25, q50);
      EXPECT_LE(q50, q75);
    }
  }
}

TEST(UnknownNSketchTest, QueriesDoNotPerturbState) {
  UnknownNSketch s = MakeSmall(21);
  for (int i = 0; i < 1000; ++i) s.Add(i);
  Value before = s.Query(0.5).value();
  for (int i = 0; i < 50; ++i) s.Query(0.37);
  EXPECT_DOUBLE_EQ(s.Query(0.5).value(), before);
  EXPECT_EQ(s.count(), 1000u);
  EXPECT_EQ(s.HeldWeight(), 1000u);
}

TEST(UnknownNSketchTest, FinishAndExportConservesWeight) {
  UnknownNSketch s = MakeSmall(31);
  for (int i = 0; i < 777; ++i) s.Add(i);
  std::vector<ShippedBuffer> shipped = s.FinishAndExport();
  Weight total = 0;
  int fulls = 0;
  for (const ShippedBuffer& b : shipped) {
    total += static_cast<Weight>(b.values.size()) * b.weight;
    fulls += b.full ? 1 : 0;
    if (b.full) {
      EXPECT_EQ(b.values.size(), SmallParams().k);
    }
  }
  EXPECT_EQ(total, 777u);
  EXPECT_LE(fulls, 1) << "final collapse leaves at most one full buffer";
  EXPECT_LE(shipped.size(), 3u);
}

TEST(UnknownNSketchTest, ExtremePhiReturnsheldExtremes) {
  UnknownNSketch s = MakeSmall(41);
  for (int i = 1; i <= 60; ++i) s.Add(i);  // fewer than 6 leaves: no loss
  // With no sampling and no collapse error at the extremes of a small
  // stream, phi=1 must be the true max's neighborhood.
  EXPECT_DOUBLE_EQ(s.Query(1.0).value(), 60.0);
  EXPECT_DOUBLE_EQ(s.Query(0.0001).value(), 1.0);
}

}  // namespace
}  // namespace mrl
