// Differential test for the loser-tree weighted-merge kernel: on random
// inputs, SelectWeightedPositionsInto must produce byte-identical output to
// SelectWeightedPositionsNaive (the original flat cursor scan, kept as the
// reference implementation). The adversarial knobs are the ones the loser
// tree actually branches on: run count (1..12, crossing power-of-two tree
// sizes), duplicate-heavy values (small alphabets force the cross-run
// tie-break), uneven run lengths including empty runs, mixed weights, and
// target sets ranging from a single position to denser-than-element grids.

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/weighted_merge.h"
#include "util/types.h"

namespace mrl {
namespace {

class Xorshift {
 public:
  explicit Xorshift(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }

  // Uniform in [0, bound).
  std::uint64_t Below(std::uint64_t bound) { return Next() % bound; }

 private:
  std::uint64_t state_;
};

struct Trial {
  std::vector<std::vector<Value>> storage;
  std::vector<WeightedRun> runs;
  std::vector<Weight> targets;
};

Trial MakeTrial(Xorshift* rng) {
  Trial trial;
  const std::size_t num_runs = 1 + rng->Below(12);
  // A small alphabet (sometimes just 2 symbols) makes equal heads across
  // runs the common case, stressing the (value, run index) tie-break and
  // the gallop's upper/lower-bound asymmetry.
  const std::uint64_t alphabet = 1 + rng->Below(rng->Below(2) ? 8 : 200);
  trial.storage.reserve(num_runs);
  for (std::size_t r = 0; r < num_runs; ++r) {
    const std::size_t size = rng->Below(5) ? rng->Below(40) : 0;
    std::vector<Value> run(size);
    for (Value& v : run) {
      v = static_cast<Value>(rng->Below(alphabet));
    }
    std::sort(run.begin(), run.end());
    trial.storage.push_back(std::move(run));
  }
  for (std::size_t r = 0; r < num_runs; ++r) {
    const Weight weight = 1 + rng->Below(9);
    trial.runs.push_back(
        {trial.storage[r].data(), trial.storage[r].size(), weight});
  }

  const Weight total = TotalRunWeight(trial.runs);
  if (total == 0) return trial;  // all-empty: only the empty target set
  const std::size_t num_targets = rng->Below(3 * trial.storage.size() + 4);
  for (std::size_t i = 0; i < num_targets; ++i) {
    trial.targets.push_back(1 + rng->Below(total));
  }
  std::sort(trial.targets.begin(), trial.targets.end());
  return trial;
}

TEST(MergeDifferentialTest, MatchesNaiveOnRandomInputs) {
  Xorshift rng(0x9e3779b97f4a7c15ull);
  MergeScratch scratch;  // reused across trials, like the collapse path
  for (int trial_idx = 0; trial_idx < 10000; ++trial_idx) {
    Trial trial = MakeTrial(&rng);
    std::vector<Value> expected =
        SelectWeightedPositionsNaive(trial.runs, trial.targets);
    std::vector<Value> actual(trial.targets.size());
    SelectWeightedPositionsInto(trial.runs.data(), trial.runs.size(),
                                trial.targets.data(), trial.targets.size(),
                                &scratch, actual.data());
    ASSERT_EQ(expected, actual)
        << "divergence at trial " << trial_idx << " with "
        << trial.runs.size() << " runs and " << trial.targets.size()
        << " targets";
  }
}

TEST(MergeDifferentialTest, SingleRunWholeSelection) {
  // Every position of a single weighted run: the loser tree degenerates to
  // one leaf and the gallop must consume the entire run in one chunk.
  std::vector<Value> run = {1, 2, 2, 3, 5, 8, 13};
  std::vector<WeightedRun> runs = {{run.data(), run.size(), 3}};
  std::vector<Weight> targets;
  for (Weight t = 1; t <= 21; ++t) targets.push_back(t);
  EXPECT_EQ(SelectWeightedPositions(runs, targets),
            SelectWeightedPositionsNaive(runs, targets));
}

TEST(MergeDifferentialTest, AllRunsIdenticalValues) {
  // Pure tie-breaking: every element of every run is equal, so the merge
  // order is decided solely by run index.
  std::vector<Value> a(16, 7.0);
  std::vector<Value> b(16, 7.0);
  std::vector<Value> c(16, 7.0);
  std::vector<WeightedRun> runs = {
      {a.data(), a.size(), 2}, {b.data(), b.size(), 5},
      {c.data(), c.size(), 1}};
  std::vector<Weight> targets = {1, 2, 31, 32, 33, 64, 100, 128};
  EXPECT_EQ(SelectWeightedPositions(runs, targets),
            SelectWeightedPositionsNaive(runs, targets));
}

TEST(MergeDifferentialTest, SparseTargetsSkipChunks) {
  // Two far-apart targets over many runs: most chunks fall strictly
  // between targets and must be skipped arithmetically.
  Xorshift rng(42);
  std::vector<std::vector<Value>> storage;
  std::vector<WeightedRun> runs;
  for (int r = 0; r < 10; ++r) {
    std::vector<Value> run(100);
    for (Value& v : run) v = static_cast<Value>(rng.Below(1000));
    std::sort(run.begin(), run.end());
    storage.push_back(std::move(run));
  }
  for (int r = 0; r < 10; ++r) {
    runs.push_back({storage[r].data(), storage[r].size(),
                    static_cast<Weight>(r + 1)});
  }
  const Weight total = TotalRunWeight(runs);
  std::vector<Weight> targets = {1, total / 2, total};
  EXPECT_EQ(SelectWeightedPositions(runs, targets),
            SelectWeightedPositionsNaive(runs, targets));
}

}  // namespace
}  // namespace mrl
