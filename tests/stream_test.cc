#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "stream/dataset.h"
#include "stream/distribution.h"
#include "stream/file_stream.h"
#include "stream/generator.h"
#include "stream/order.h"
#include "util/random.h"

namespace mrl {
namespace {

// ---------------------------------------------------------- Distributions

TEST(DistributionTest, FactoryKnowsAllNames) {
  for (const char* name : {"uniform", "gaussian", "exponential", "zipf",
                           "constant", "two_point"}) {
    auto dist = MakeDistribution(name);
    ASSERT_NE(dist, nullptr) << name;
    EXPECT_EQ(dist->name(), name);
  }
  EXPECT_EQ(MakeDistribution("nope"), nullptr);
}

TEST(DistributionTest, UniformStaysInRange) {
  UniformDistribution dist(2.0, 5.0);
  Random rng(1);
  for (int i = 0; i < 1000; ++i) {
    Value v = dist.Draw(&rng);
    ASSERT_GE(v, 2.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(DistributionTest, ZipfProducesIntegerRanksWithSkew) {
  ZipfDistribution dist(100, 1.2);
  Random rng(2);
  int ones = 0;
  for (int i = 0; i < 10000; ++i) {
    Value v = dist.Draw(&rng);
    ASSERT_GE(v, 1.0);
    ASSERT_LE(v, 100.0);
    ASSERT_EQ(v, std::floor(v));
    if (v == 1.0) ++ones;
  }
  // Rank 1 carries by far the most mass under skew 1.2 (~18%).
  EXPECT_GT(ones, 1000);
}

TEST(DistributionTest, ExponentialIsNonNegativeAndSkewed) {
  ExponentialDistribution dist(1.0);
  Random rng(3);
  double sum = 0;
  Value max = 0;
  for (int i = 0; i < 20000; ++i) {
    Value v = dist.Draw(&rng);
    ASSERT_GE(v, 0.0);
    sum += v;
    max = std::max(max, v);
  }
  EXPECT_NEAR(sum / 20000.0, 1.0, 0.05);
  EXPECT_GT(max, 5.0);  // heavy right tail exists
}

TEST(DistributionTest, TwoPointMixesBothValues) {
  TwoPointDistribution dist(-1.0, 1.0, 0.3);
  Random rng(4);
  int lows = 0;
  for (int i = 0; i < 10000; ++i) {
    Value v = dist.Draw(&rng);
    ASSERT_TRUE(v == -1.0 || v == 1.0);
    if (v == -1.0) ++lows;
  }
  EXPECT_NEAR(lows / 10000.0, 0.3, 0.03);
}

// ----------------------------------------------------------------- Orders

class ArrivalOrderTest : public ::testing::TestWithParam<ArrivalOrder> {};

TEST_P(ArrivalOrderTest, IsAPermutation) {
  StreamSpec spec;
  spec.distribution = "uniform";
  spec.n = 5000;
  spec.seed = 10;
  Dataset base = GenerateStream(spec);
  std::vector<Value> values = base.values();
  Random rng(11);
  ApplyArrivalOrder(GetParam(), &rng, &values);
  ASSERT_EQ(values.size(), base.size());
  std::vector<Value> a = values;
  std::vector<Value> b = base.values();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b) << "order " << ArrivalOrderName(GetParam())
                  << " must not change the multiset";
}

INSTANTIATE_TEST_SUITE_P(
    AllOrders, ArrivalOrderTest, ::testing::ValuesIn(AllArrivalOrders()),
    [](const ::testing::TestParamInfo<ArrivalOrder>& info) {
      return ArrivalOrderName(info.param);
    });

TEST(ArrivalOrderDetailTest, SortedAscIsSorted) {
  std::vector<Value> v = {3, 1, 2};
  Random rng(1);
  ApplyArrivalOrder(ArrivalOrder::kSortedAsc, &rng, &v);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(ArrivalOrderDetailTest, SortedDescIsReverseSorted) {
  std::vector<Value> v = {3, 1, 2};
  Random rng(1);
  ApplyArrivalOrder(ArrivalOrder::kSortedDesc, &rng, &v);
  EXPECT_TRUE(std::is_sorted(v.rbegin(), v.rend()));
}

TEST(ArrivalOrderDetailTest, AlternatingStartsFromBothExtremes) {
  std::vector<Value> v = {1, 2, 3, 4, 5};
  Random rng(1);
  ApplyArrivalOrder(ArrivalOrder::kAlternating, &rng, &v);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[1], 5.0);
  EXPECT_DOUBLE_EQ(v[2], 2.0);
}

TEST(ArrivalOrderDetailTest, AllOrdersHaveDistinctNames) {
  std::vector<std::string> names;
  for (ArrivalOrder o : AllArrivalOrders()) {
    names.push_back(ArrivalOrderName(o));
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

// ---------------------------------------------------------------- Dataset

TEST(DatasetTest, ExactQuantileMatchesDefinition) {
  // Sorted sequence: 10 20 30 40 50; phi-quantile = element at ceil(phi*5).
  Dataset ds({50, 10, 40, 20, 30});
  EXPECT_DOUBLE_EQ(ds.ExactQuantile(0.2), 10);
  EXPECT_DOUBLE_EQ(ds.ExactQuantile(0.21), 20);
  EXPECT_DOUBLE_EQ(ds.ExactQuantile(0.5), 30);   // the median
  EXPECT_DOUBLE_EQ(ds.ExactQuantile(1.0), 50);
  EXPECT_DOUBLE_EQ(ds.ExactQuantile(0.01), 10);
}

TEST(DatasetTest, RankIntervalWithDuplicates) {
  Dataset ds({5, 5, 5, 1, 9});
  auto iv = ds.RankOf(5);
  EXPECT_EQ(iv.lo, 2u);
  EXPECT_EQ(iv.hi, 4u);
  auto lo = ds.RankOf(1);
  EXPECT_EQ(lo.lo, 1u);
  EXPECT_EQ(lo.hi, 1u);
}

TEST(DatasetTest, RankIntervalOfAbsentValue) {
  Dataset ds({10, 20, 30});
  auto iv = ds.RankOf(15);
  EXPECT_EQ(iv.lo, 2u);  // would be inserted at position 2
  EXPECT_EQ(iv.hi, 1u);  // hi < lo flags absence
}

TEST(DatasetTest, QuantileErrorZeroInsideDuplicateRun) {
  Dataset ds({5, 5, 5, 5, 1, 9, 9, 9, 9, 9});
  // Value 5 occupies ranks 2..5 of 10; phi = 0.4 targets rank 4.
  EXPECT_DOUBLE_EQ(ds.QuantileError(5, 0.4), 0.0);
  // phi = 0.9 targets rank 9, distance 4 ranks -> 0.4.
  EXPECT_NEAR(ds.QuantileError(5, 0.9), 0.4, 1e-12);
}

TEST(DatasetTest, QuantileErrorForAbsentValue) {
  Dataset ds({10, 20, 30, 40});
  // 25 splits at insertion rank 3 - 0.5 = 2.5; phi=0.5 targets rank 2.
  EXPECT_NEAR(ds.QuantileError(25, 0.5), 0.5 / 4, 1e-12);
}

TEST(DatasetTest, IsApproxQuantileHonorsEps) {
  Dataset ds({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  EXPECT_TRUE(ds.IsApproxQuantile(5, 0.5, 0.0));
  EXPECT_TRUE(ds.IsApproxQuantile(6, 0.5, 0.1));
  EXPECT_FALSE(ds.IsApproxQuantile(8, 0.5, 0.1));
}

TEST(DatasetTest, MinMax) {
  Dataset ds({3, -2, 8});
  EXPECT_DOUBLE_EQ(ds.Min(), -2);
  EXPECT_DOUBLE_EQ(ds.Max(), 8);
}

TEST(GeneratorTest, DeterministicFromSpec) {
  StreamSpec spec;
  spec.distribution = "gaussian";
  spec.order = ArrivalOrder::kShuffled;
  spec.n = 1000;
  spec.seed = 42;
  Dataset a = GenerateStream(spec);
  Dataset b = GenerateStream(spec);
  EXPECT_EQ(a.values(), b.values());
  spec.seed = 43;
  Dataset c = GenerateStream(spec);
  EXPECT_NE(a.values(), c.values());
}

// ------------------------------------------------------------ FileStream

TEST(FileStreamTest, RoundTrip) {
  std::string path = ::testing::TempDir() + "/mrl_roundtrip.bin";
  std::vector<Value> values = {1.5, -2.25, 3.75, 0.0, 1e300};
  ASSERT_TRUE(WriteValuesFile(path, values).ok());

  FileValueReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  EXPECT_EQ(reader.size(), values.size());
  std::vector<Value> read_back;
  Value v;
  while (reader.Next(&v)) read_back.push_back(v);
  EXPECT_TRUE(reader.status().ok());
  EXPECT_EQ(read_back, values);
  std::remove(path.c_str());
}

TEST(FileStreamTest, LargeRoundTripCrossesBufferBoundary) {
  std::string path = ::testing::TempDir() + "/mrl_large.bin";
  StreamSpec spec;
  spec.n = 200000;  // > the reader's 64K-value buffer
  spec.seed = 5;
  Dataset ds = GenerateStream(spec);
  ASSERT_TRUE(WriteValuesFile(path, ds.values()).ok());
  FileValueReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  std::uint64_t n = 0;
  double sum = 0, expect_sum = 0;
  Value v;
  while (reader.Next(&v)) {
    sum += v;
    ++n;
  }
  for (Value x : ds.values()) expect_sum += x;
  EXPECT_EQ(n, ds.size());
  EXPECT_DOUBLE_EQ(sum, expect_sum);
  std::remove(path.c_str());
}

TEST(FileStreamTest, OpenMissingFileFails) {
  FileValueReader reader;
  Status s = reader.Open("/nonexistent/never/here.bin");
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(FileStreamTest, RejectsTruncatedFile) {
  std::string path = ::testing::TempDir() + "/mrl_truncated.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[5] = {1, 2, 3, 4, 5};  // not a multiple of sizeof(double)
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  FileValueReader reader;
  EXPECT_EQ(reader.Open(path).code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(FileStreamTest, DoubleOpenFails) {
  std::string path = ::testing::TempDir() + "/mrl_double_open.bin";
  ASSERT_TRUE(WriteValuesFile(path, {1.0}).ok());
  FileValueReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  EXPECT_EQ(reader.Open(path).code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(FileStreamTest, EmptyFileYieldsNothing) {
  std::string path = ::testing::TempDir() + "/mrl_empty.bin";
  ASSERT_TRUE(WriteValuesFile(path, {}).ok());
  FileValueReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  Value v;
  EXPECT_FALSE(reader.Next(&v));
  EXPECT_TRUE(reader.status().ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mrl
