// Genuinely concurrent stress tests, written to run under
// -fsanitize=thread (the CI tsan lane). They exercise exactly the thread
// contracts the headers document:
//
//  * ShardedQuantileSketch: shard s is single-writer; writers on distinct
//    shards need no synchronization; queries happen after a barrier.
//  * ParallelQuantiles / ParallelCoordinator: workers run on their own
//    threads and never communicate until termination; the coordinator is
//    externally synchronized.
//  * Query / QueryMany on a quiescent sketch are const and may run from
//    many reader threads at once.
//
// Without TSan these still pass; under TSan any data race in the batch
// ingestion or merge paths becomes a hard failure.

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cstdint>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/parallel.h"
#include "core/sharded.h"
#include "core/unknown_n.h"
#include "util/random.h"

namespace mrl {
namespace {

constexpr int kThreads = 4;
constexpr std::uint64_t kPerShard = 60000;

std::vector<Value> ShardValues(int shard, std::uint64_t n) {
  // Distinct deterministic data per shard; the union is a permutation of
  // 0 .. kThreads*n-1, so union quantiles are exactly predictable.
  std::vector<Value> values;
  values.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    values.push_back(static_cast<Value>(i * kThreads +
                                        static_cast<std::uint64_t>(shard)));
  }
  Random rng(static_cast<std::uint64_t>(shard) + 1);
  for (std::size_t i = values.size(); i > 1; --i) {
    std::swap(values[i - 1],
              values[rng.NextUint64() % static_cast<std::uint64_t>(i)]);
  }
  return values;
}

TEST(ShardedConcurrencyTest, ParallelWritersDistinctShardsThenQuery) {
  ShardedQuantileSketch::Options options;
  options.eps = 0.02;
  options.delta = 1e-3;
  options.num_shards = kThreads;
  Result<ShardedQuantileSketch> created =
      ShardedQuantileSketch::Create(options);
  ASSERT_TRUE(created.ok());
  ShardedQuantileSketch& sketch = created.value();

  // All writers finish ingesting before anyone reads: the documented scan
  // barrier. The std::barrier also gives TSan a clear happens-before edge
  // to validate the contract against.
  std::barrier sync(kThreads + 1);
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int shard = 0; shard < kThreads; ++shard) {
    writers.emplace_back([&sketch, &sync, shard] {
      std::vector<Value> values = ShardValues(shard, kPerShard);
      // Mix batch and per-element ingestion to cover both write paths.
      std::size_t half = values.size() / 2;
      sketch.AddBatch(shard,
                      std::span<const Value>(values.data(), half));
      for (std::size_t i = half; i < values.size(); ++i) {
        sketch.Add(shard, values[i]);
      }
      sync.arrive_and_wait();
    });
  }
  sync.arrive_and_wait();

  const std::uint64_t total = kThreads * kPerShard;
  EXPECT_EQ(sketch.count(), total);
  Result<Value> median = sketch.Query(0.5);
  ASSERT_TRUE(median.ok());
  EXPECT_NEAR(median.value() / static_cast<double>(total), 0.5,
              2.0 * options.eps);

  for (std::thread& t : writers) t.join();
}

TEST(ShardedConcurrencyTest, ConcurrentConstQueriesOnQuiescentSketch) {
  ShardedQuantileSketch::Options options;
  options.eps = 0.05;
  options.delta = 1e-3;
  options.num_shards = 2;
  Result<ShardedQuantileSketch> created =
      ShardedQuantileSketch::Create(options);
  ASSERT_TRUE(created.ok());
  ShardedQuantileSketch& sketch = created.value();
  for (int shard = 0; shard < 2; ++shard) {
    std::vector<Value> values = ShardValues(shard, 30000);
    sketch.AddBatch(shard, values);
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (int r = 0; r < kThreads; ++r) {
    readers.emplace_back([&sketch, &failures] {
      for (int iter = 0; iter < 20; ++iter) {
        Result<std::vector<Value>> q =
            sketch.QueryMany({0.1, 0.5, 0.9});
        if (!q.ok() || q.value().size() != 3) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ParallelConcurrencyTest, WorkerThreadsFeedCoordinator) {
  ParallelOptions options;
  options.eps = 0.03;
  options.delta = 1e-3;
  options.num_workers = kThreads;
  Result<UnknownNParams> params = SolveParallelWorker(options);
  ASSERT_TRUE(params.ok());

  ParallelCoordinator coordinator(params.value(), /*seed=*/11);
  std::mutex coordinator_mutex;  // Ingest is externally synchronized
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      UnknownNOptions worker_options;
      worker_options.params = params.value();
      worker_options.seed = 1000 + static_cast<std::uint64_t>(w);
      Result<UnknownNSketch> sketch =
          UnknownNSketch::Create(worker_options);
      ASSERT_TRUE(sketch.ok());
      std::vector<Value> values =
          ShardValues(w, kPerShard + static_cast<std::uint64_t>(w) * 331);
      sketch.value().AddBatch(values);
      std::vector<ShippedBuffer> shipped =
          sketch.value().FinishAndExport();
      std::lock_guard<std::mutex> lock(coordinator_mutex);
      coordinator.Ingest(std::move(shipped));
    });
  }
  for (std::thread& t : workers) t.join();

  Result<Value> median = coordinator.Query(0.5);
  ASSERT_TRUE(median.ok());
  EXPECT_GT(coordinator.ReceivedWeight(), 0u);
}

TEST(ParallelConcurrencyTest, EndToEndHelperUnderThreads) {
  // ParallelQuantiles spawns one thread per shard internally; run it with
  // uneven shard sizes so worker lifetimes overlap asymmetrically.
  std::vector<std::vector<Value>> shards;
  for (int w = 0; w < kThreads; ++w) {
    shards.push_back(
        ShardValues(w, 20000 + static_cast<std::uint64_t>(w) * 7000));
  }
  ParallelOptions options;
  options.eps = 0.05;
  options.delta = 1e-3;
  options.num_workers = kThreads;
  Result<std::vector<Value>> answers =
      ParallelQuantiles(shards, options, {0.25, 0.5, 0.75});
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers.value().size(), 3u);
}

}  // namespace
}  // namespace mrl
