#include <vector>

#include <gtest/gtest.h>

#include "core/extreme.h"
#include "core/params.h"
#include "stream/generator.h"

namespace mrl {
namespace {

// ------------------------------------------------------------------ Sizing

TEST(ExtremeValueSizingTest, ValidatesArguments) {
  EXPECT_FALSE(SolveExtremeValue(0.0, 0.001, 1e-4, 1000).ok());
  EXPECT_FALSE(SolveExtremeValue(0.5, 0.001, 1e-4, 1000).ok());
  EXPECT_FALSE(SolveExtremeValue(0.01, 0.02, 1e-4, 1000).ok());  // eps > phi
  EXPECT_FALSE(SolveExtremeValue(0.01, 0.001, 0.0, 1000).ok());
  EXPECT_FALSE(SolveExtremeValue(0.01, 0.001, 1e-4, 0).ok());
}

TEST(ExtremeValueSizingTest, KIsPhiFractionOfSample) {
  auto sizing = SolveExtremeValue(0.01, 0.002, 1e-4, 1'000'000).value();
  EXPECT_GE(sizing.k, 1u);
  EXPECT_NEAR(static_cast<double>(sizing.k),
              0.01 * static_cast<double>(sizing.sample_size), 1.0);
  EXPECT_LE(sizing.sample_probability, 1.0);
}

TEST(ExtremeValueSizingTest, HighTailMirrorsLowTail) {
  auto low = SolveExtremeValue(0.01, 0.002, 1e-4, 1'000'000).value();
  auto high = SolveExtremeValue(0.99, 0.002, 1e-4, 1'000'000).value();
  EXPECT_EQ(low.k, high.k);
  EXPECT_EQ(low.sample_size, high.sample_size);
}

TEST(ExtremeValueSizingTest, Section7ClaimLessMemoryThanGeneralAlgorithm) {
  // The headline of Section 7: for phi near 0 the estimator needs far less
  // memory than the general-purpose sketch at the same (eps, delta).
  const double eps = 0.001;
  const double delta = 1e-4;
  std::uint64_t general = UnknownNMemoryElements(eps, delta).value();
  for (double phi : {0.002, 0.005, 0.01}) {
    auto sizing = SolveExtremeValue(phi, eps, delta, 100'000'000).value();
    EXPECT_LT(sizing.k * 5, general) << "phi=" << phi;
  }
}

// ------------------------------------------------------------------ Sketch

TEST(ExtremeValueSketchTest, LowTailAccuracy) {
  const double phi = 0.01;
  const double eps = 0.004;
  StreamSpec spec;
  spec.n = 500000;
  spec.seed = 21;
  spec.distribution = "exponential";
  Dataset ds = GenerateStream(spec);

  ExtremeValueOptions options;
  options.phi = phi;
  options.eps = eps;
  options.delta = 1e-3;
  options.n = ds.size();
  options.seed = 5;
  ExtremeValueSketch sketch =
      std::move(ExtremeValueSketch::Create(options)).value();
  for (Value v : ds.values()) sketch.Add(v);
  Value est = sketch.Query(phi).value();
  EXPECT_LE(ds.QuantileError(est, phi), eps);
}

TEST(ExtremeValueSketchTest, HighTailAccuracy) {
  const double phi = 0.995;
  const double eps = 0.002;
  StreamSpec spec;
  spec.n = 400000;
  spec.seed = 23;
  Dataset ds = GenerateStream(spec);

  ExtremeValueOptions options;
  options.phi = phi;
  options.eps = eps;
  options.delta = 1e-3;
  options.n = ds.size();
  options.seed = 7;
  ExtremeValueSketch sketch =
      std::move(ExtremeValueSketch::Create(options)).value();
  for (Value v : ds.values()) sketch.Add(v);
  Value est = sketch.Query(phi).value();
  EXPECT_LE(ds.QuantileError(est, phi), eps);
}

TEST(ExtremeValueSketchTest, FailureRateWithinDelta) {
  // 40 independent trials at delta = 0.05: expect ~2 failures; 8 would be
  // a > 4-sigma fluke.
  const double phi = 0.02;
  const double eps = 0.008;
  int failures = 0;
  constexpr int kTrials = 40;
  for (int t = 0; t < kTrials; ++t) {
    StreamSpec spec;
    spec.n = 60000;
    spec.seed = 1000 + static_cast<std::uint64_t>(t);
    Dataset ds = GenerateStream(spec);
    ExtremeValueOptions options;
    options.phi = phi;
    options.eps = eps;
    options.delta = 0.05;
    options.n = ds.size();
    options.seed = 2000 + static_cast<std::uint64_t>(t);
    ExtremeValueSketch sketch =
        std::move(ExtremeValueSketch::Create(options)).value();
    for (Value v : ds.values()) sketch.Add(v);
    if (ds.QuantileError(sketch.Query(phi).value(), phi) > eps) ++failures;
  }
  EXPECT_LE(failures, 8);
}

TEST(ExtremeValueSketchTest, WrongTailQueryRejected) {
  ExtremeValueOptions options;
  options.phi = 0.01;
  options.eps = 0.005;
  options.n = 1000;
  ExtremeValueSketch sketch =
      std::move(ExtremeValueSketch::Create(options)).value();
  for (int i = 0; i < 1000; ++i) sketch.Add(i);
  EXPECT_EQ(sketch.Query(0.9).status().code(), StatusCode::kInvalidArgument);
}

TEST(ExtremeValueSketchTest, NonExtremeQueryOutOfRange) {
  ExtremeValueOptions options;
  options.phi = 0.01;
  options.eps = 0.005;
  options.n = 1'000'000;
  options.seed = 3;
  ExtremeValueSketch sketch =
      std::move(ExtremeValueSketch::Create(options)).value();
  for (int i = 0; i < 1'000'000; ++i) {
    sketch.Add(static_cast<Value>(i));
  }
  // phi = 0.4 needs ~40% of the sample but the heap only holds ~1%.
  EXPECT_EQ(sketch.Query(0.4).status().code(), StatusCode::kOutOfRange);
}

TEST(ExtremeValueSketchTest, EmptyQueryFails) {
  ExtremeValueOptions options;
  options.phi = 0.01;
  options.eps = 0.005;
  options.n = 1000;
  ExtremeValueSketch sketch =
      std::move(ExtremeValueSketch::Create(options)).value();
  EXPECT_EQ(sketch.Query(0.01).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ExtremeValueSketchTest, ShortStreamDegradesGracefully) {
  ExtremeValueOptions options;
  options.phi = 0.01;
  options.eps = 0.005;
  options.n = 1'000'000;  // expects a long stream...
  options.seed = 9;
  ExtremeValueSketch sketch =
      std::move(ExtremeValueSketch::Create(options)).value();
  for (int i = 0; i < 100; ++i) sketch.Add(i);  // ...but gets a short one
  Result<Value> est = sketch.Query(0.01);
  if (sketch.sampled_count() > 0) {
    EXPECT_TRUE(est.ok());
  } else {
    EXPECT_EQ(est.status().code(), StatusCode::kFailedPrecondition);
  }
}

// ---------------------------------------------------------------- Adaptive

TEST(AdaptiveExtremeTest, UnknownNAccuracy) {
  AdaptiveExtremeValueSketch::Options options;
  options.phi = 0.01;
  options.eps = 0.005;
  options.delta = 1e-3;
  options.seed = 11;
  AdaptiveExtremeValueSketch sketch =
      std::move(AdaptiveExtremeValueSketch::Create(options)).value();

  StreamSpec spec;
  spec.n = 300000;
  spec.seed = 13;
  Dataset ds = GenerateStream(spec);
  for (Value v : ds.values()) sketch.Add(v);
  EXPECT_LT(sketch.sample_probability(), 1.0)
      << "the rate must have halved on a long stream";
  Value est = sketch.Query(0.01).value();
  EXPECT_LE(ds.QuantileError(est, 0.01), 2 * options.eps);
}

TEST(AdaptiveExtremeTest, AccurateAtMultiplePrefixLengths) {
  AdaptiveExtremeValueSketch::Options options;
  options.phi = 0.05;
  options.eps = 0.02;
  options.delta = 1e-3;
  options.seed = 17;
  AdaptiveExtremeValueSketch sketch =
      std::move(AdaptiveExtremeValueSketch::Create(options)).value();
  StreamSpec spec;
  spec.n = 120000;
  spec.seed = 19;
  Dataset ds = GenerateStream(spec);
  std::vector<Value> prefix;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    sketch.Add(ds.values()[i]);
    prefix.push_back(ds.values()[i]);
    if ((i + 1) == 1000 || (i + 1) == 30000 || (i + 1) == 120000) {
      Dataset prefix_ds(prefix);
      Value est = sketch.Query(0.05).value();
      EXPECT_LE(prefix_ds.QuantileError(est, 0.05), 2 * options.eps)
          << "prefix " << (i + 1);
    }
  }
}

TEST(AdaptiveExtremeTest, HighTail) {
  AdaptiveExtremeValueSketch::Options options;
  options.phi = 0.99;
  options.eps = 0.004;
  options.delta = 1e-3;
  options.seed = 23;
  AdaptiveExtremeValueSketch sketch =
      std::move(AdaptiveExtremeValueSketch::Create(options)).value();
  StreamSpec spec;
  spec.n = 200000;
  spec.seed = 29;
  spec.distribution = "exponential";
  Dataset ds = GenerateStream(spec);
  for (Value v : ds.values()) sketch.Add(v);
  Value est = sketch.Query(0.99).value();
  EXPECT_LE(ds.QuantileError(est, 0.99), 2 * options.eps);
}

TEST(AdaptiveExtremeTest, MemoryStaysBounded) {
  AdaptiveExtremeValueSketch::Options options;
  options.phi = 0.01;
  options.eps = 0.005;
  options.delta = 1e-3;
  AdaptiveExtremeValueSketch sketch =
      std::move(AdaptiveExtremeValueSketch::Create(options)).value();
  std::uint64_t cap = sketch.MemoryElements();
  EXPECT_GT(cap, 0u);
  // Memory must not depend on the stream length.
  for (int i = 0; i < 500000; ++i) sketch.Add(i);
  EXPECT_EQ(sketch.MemoryElements(), cap);
}

}  // namespace
}  // namespace mrl
