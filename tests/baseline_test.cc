#include <vector>

#include <gtest/gtest.h>

#include "baseline/ars.h"
#include "baseline/exact.h"
#include "baseline/munro_paterson.h"
#include "baseline/reservoir_quantile.h"
#include "core/params.h"
#include "stream/generator.h"
#include "util/math.h"

namespace mrl {
namespace {

// ----------------------------------------------------------------- Exact

TEST(ExactTest, MatchesDatasetDefinition) {
  StreamSpec spec;
  spec.n = 10000;
  spec.seed = 3;
  Dataset ds = GenerateStream(spec);
  ExactQuantileEstimator exact;
  exact.AddAll(ds.values());
  for (double phi : {0.001, 0.1, 0.5, 0.9, 1.0}) {
    EXPECT_DOUBLE_EQ(exact.Query(phi).value(), ds.ExactQuantile(phi));
  }
  EXPECT_EQ(exact.MemoryElements(), ds.size());
}

TEST(ExactTest, ErrorsOnBadInput) {
  ExactQuantileEstimator exact;
  EXPECT_EQ(exact.Query(0.5).status().code(),
            StatusCode::kFailedPrecondition);
  exact.Add(1.0);
  EXPECT_EQ(exact.Query(0.0).status().code(), StatusCode::kInvalidArgument);
}

TEST(ExactTest, InterleavedAddQuery) {
  ExactQuantileEstimator exact;
  exact.Add(5.0);
  EXPECT_DOUBLE_EQ(exact.Query(0.5).value(), 5.0);
  exact.Add(1.0);
  exact.Add(9.0);
  EXPECT_DOUBLE_EQ(exact.Query(0.5).value(), 5.0);
  exact.Add(0.0);
  EXPECT_DOUBLE_EQ(exact.Query(1.0).value(), 9.0);
}

// ------------------------------------------------------------- Reservoir

TEST(ReservoirQuantileTest, MemoryIsHoeffdingSize) {
  ReservoirQuantileSketch::Options options;
  options.eps = 0.05;
  options.delta = 1e-3;
  ReservoirQuantileSketch sketch =
      std::move(ReservoirQuantileSketch::Create(options)).value();
  EXPECT_EQ(sketch.MemoryElements(), HoeffdingSampleSize(0.05, 1e-3));
}

TEST(ReservoirQuantileTest, AccurateWithinEps) {
  StreamSpec spec;
  spec.n = 100000;
  spec.seed = 5;
  Dataset ds = GenerateStream(spec);
  ReservoirQuantileSketch::Options options;
  options.eps = 0.05;
  options.delta = 1e-3;
  options.seed = 7;
  ReservoirQuantileSketch sketch =
      std::move(ReservoirQuantileSketch::Create(options)).value();
  sketch.AddAll(ds.values());
  for (double phi : {0.1, 0.5, 0.9}) {
    EXPECT_LE(ds.QuantileError(sketch.Query(phi).value(), phi), 0.05);
  }
}

TEST(ReservoirQuantileTest, ShortStreamIsExact) {
  ReservoirQuantileSketch::Options options;
  options.eps = 0.1;
  options.delta = 0.01;
  ReservoirQuantileSketch sketch =
      std::move(ReservoirQuantileSketch::Create(options)).value();
  for (int i = 1; i <= 9; ++i) sketch.Add(i);
  EXPECT_DOUBLE_EQ(sketch.Query(0.5).value(), 5.0);
}

// -------------------------------------------------------- Munro-Paterson

TEST(MunroPatersonTest, SolverSatisfiesConstraints) {
  for (double eps : {0.05, 0.01}) {
    for (std::uint64_t n : {std::uint64_t{100000}, std::uint64_t{10000000}}) {
      MunroPatersonParams p = SolveMunroPaterson(eps, n).value();
      EXPECT_LE(static_cast<double>(p.b), 2.0 * eps * p.k + 1e-9);
      EXPECT_GE((std::uint64_t{1} << (p.b - 1)) * p.k, n);
    }
  }
}

TEST(MunroPatersonTest, DeterministicAccuracy) {
  StreamSpec spec;
  spec.n = 60000;
  spec.seed = 9;
  spec.distribution = "gaussian";
  Dataset ds = GenerateStream(spec);
  MunroPatersonSketch::Options options;
  options.eps = 0.02;
  options.n = ds.size();
  MunroPatersonSketch sketch =
      std::move(MunroPatersonSketch::Create(options)).value();
  sketch.AddAll(ds.values());
  for (double phi : {0.1, 0.5, 0.9}) {
    EXPECT_LE(ds.QuantileError(sketch.Query(phi).value(), phi), 0.02);
  }
}

TEST(MunroPatersonTest, SortedInputStillAccurate) {
  StreamSpec spec;
  spec.n = 60000;
  spec.seed = 9;
  spec.order = ArrivalOrder::kSortedAsc;
  Dataset ds = GenerateStream(spec);
  MunroPatersonSketch::Options options;
  options.eps = 0.02;
  options.n = ds.size();
  MunroPatersonSketch sketch =
      std::move(MunroPatersonSketch::Create(options)).value();
  sketch.AddAll(ds.values());
  EXPECT_LE(ds.QuantileError(sketch.Query(0.5).value(), 0.5), 0.02);
}

TEST(MunroPatersonTest, NeedsMoreMemoryThanMrlForLargeN) {
  // MP is deterministic, O(eps^-1 log^2 (eps N)): at some N it must exceed
  // the N-independent randomized MRL99 footprint.
  std::uint64_t mrl = UnknownNMemoryElements(0.01, 1e-4).value();
  std::uint64_t mp =
      SolveMunroPaterson(0.01, std::uint64_t{1} << 36).value()
          .MemoryElements();
  EXPECT_GT(mp, mrl);
}

// -------------------------------------------------------------------- ARS

TEST(ArsTest, SolverProducesFeasibleParams) {
  ArsParams p = SolveArs(0.02, 1000000).value();
  EXPECT_GE(p.b, 2);
  EXPECT_GE(p.k, 1u);
}

TEST(ArsTest, AccuracyOnRandomStream) {
  StreamSpec spec;
  spec.n = 50000;
  spec.seed = 13;
  Dataset ds = GenerateStream(spec);
  ArsSketch::Options options;
  options.eps = 0.02;
  options.n = ds.size();
  ArsSketch sketch = std::move(ArsSketch::Create(options)).value();
  sketch.AddAll(ds.values());
  for (double phi : {0.25, 0.5, 0.75}) {
    EXPECT_LE(ds.QuantileError(sketch.Query(phi).value(), phi), 0.02);
  }
}

TEST(ArsTest, WiderTreeThanMrlPolicy) {
  // The collapse-everything policy produces heavy buffers quickly; its
  // solver needs more memory than the unknown-N algorithm needs for the
  // same eps at large N (part of MRL98's motivation for the new policy).
  std::uint64_t mrl = UnknownNMemoryElements(0.01, 1e-4).value();
  std::uint64_t ars =
      SolveArs(0.01, std::uint64_t{1} << 36).value().MemoryElements();
  EXPECT_GT(ars, mrl);
}

}  // namespace
}  // namespace mrl
