// End-to-end tests of the mrlquant_cli binary (path injected by CMake as
// MRLQUANT_CLI_PATH). Exercises both input formats, quantile and rank
// output, and the error paths' exit codes.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "stream/file_stream.h"
#include "stream/text_stream.h"

namespace mrl {
namespace {

std::string CliPath() { return MRLQUANT_CLI_PATH; }

// Runs the CLI, captures stdout into a string, returns the exit code.
int RunCli(const std::string& args, std::string* output) {
  std::string out_path = ::testing::TempDir() + "/mrl_cli_out.txt";
  std::string cmd = CliPath() + " " + args + " > " + out_path + " 2>/dev/null";
  int rc = std::system(cmd.c_str());
  output->clear();
  if (std::FILE* f = std::fopen(out_path.c_str(), "r")) {
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      output->append(buf, got);
    }
    std::fclose(f);
  }
  std::remove(out_path.c_str());
  return WEXITSTATUS(rc);
}

TEST(CliTest, TextInputQuantilesAndRanks) {
  std::string path = ::testing::TempDir() + "/mrl_cli_vals.txt";
  std::vector<Value> values;
  for (int i = 1; i <= 1000; ++i) values.push_back(i);
  ASSERT_TRUE(WriteValuesTextFile(path, values).ok());
  std::string out;
  int rc = RunCli("--eps=0.02 --phi=0.5 --rank=250 " + path, &out);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("quantile\t0.5\t"), std::string::npos) << out;
  EXPECT_NE(out.find("rank\t250\t"), std::string::npos) << out;
  // The median of 1..1000 at eps=0.02 must print as ~500.
  const std::string prefix = "quantile\t0.5\t";
  std::size_t pos = out.find(prefix);
  ASSERT_NE(pos, std::string::npos);
  double med = std::atof(out.c_str() + pos + prefix.size());
  EXPECT_NEAR(med, 500.0, 25.0);
  std::remove(path.c_str());
}

TEST(CliTest, BinaryInput) {
  std::string path = ::testing::TempDir() + "/mrl_cli_vals.bin";
  std::vector<Value> values;
  for (int i = 0; i < 500; ++i) values.push_back(i * 2.0);
  ASSERT_TRUE(WriteValuesFile(path, values).ok());
  std::string out;
  int rc = RunCli("--format=bin --eps=0.05 --phi=1.0 " + path, &out);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("quantile\t1\t998"), std::string::npos) << out;
  std::remove(path.c_str());
}

TEST(CliTest, MissingFileExitsNonZero) {
  std::string out;
  EXPECT_NE(RunCli("/no/such/file.txt", &out), 0);
}

TEST(CliTest, MalformedInputExitsNonZero) {
  std::string path = ::testing::TempDir() + "/mrl_cli_bad.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("1.0\nnope\n", f);
  std::fclose(f);
  std::string out;
  EXPECT_NE(RunCli(path, &out), 0);
  std::remove(path.c_str());
}

TEST(CliTest, BadFlagsExitNonZero) {
  std::string out;
  EXPECT_NE(RunCli("--format=csv /tmp/x", &out), 0);
  EXPECT_NE(RunCli("--wat=1 /tmp/x", &out), 0);
  EXPECT_NE(RunCli("", &out), 0);  // no file
}

TEST(CliTest, EmptyFileExitsNonZero) {
  std::string path = ::testing::TempDir() + "/mrl_cli_empty.txt";
  ASSERT_TRUE(WriteValuesTextFile(path, {}).ok());
  std::string out;
  EXPECT_NE(RunCli(path, &out), 0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mrl
