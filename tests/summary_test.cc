#include <vector>

#include <gtest/gtest.h>

#include "core/extreme.h"
#include "core/known_n.h"
#include "core/summary.h"
#include "core/unknown_n.h"
#include "stream/generator.h"
#include "util/serde.h"

namespace mrl {
namespace {

// ----------------------------------------------------------------- Summary

TEST(SummaryTest, FromRunsCoalescesAndAccumulates) {
  std::vector<Value> a = {1, 2, 2, 5};
  std::vector<Value> b = {2, 3};
  std::vector<WeightedRun> runs = {{a.data(), a.size(), 2},
                                   {b.data(), b.size(), 3}};
  QuantileSummary s = QuantileSummary::FromRuns(runs);
  // Expanded: 1(w2), 2(w2+2+3=7), 3(w3), 5(w2); cum: 2, 9, 12, 14.
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s.total_weight(), 14u);
  EXPECT_DOUBLE_EQ(s.entries()[1].value, 2.0);
  EXPECT_EQ(s.entries()[1].cumulative_weight, 9u);
}

TEST(SummaryTest, QuantileAndRankAgreeWithWeightedOps) {
  StreamSpec spec;
  spec.n = 30000;
  spec.seed = 3;
  Dataset ds = GenerateStream(spec);
  UnknownNOptions options;
  options.eps = 0.02;
  options.seed = 5;
  UnknownNSketch sketch = std::move(UnknownNSketch::Create(options)).value();
  for (Value v : ds.values()) sketch.Add(v);
  QuantileSummary summary = sketch.ExportSummary();
  EXPECT_EQ(summary.total_weight(), ds.size());
  for (double phi : {0.1, 0.5, 0.9}) {
    EXPECT_DOUBLE_EQ(summary.Quantile(phi).value(),
                     sketch.Query(phi).value());
  }
  for (Value c : {0.2, 0.5, 0.8}) {
    EXPECT_DOUBLE_EQ(summary.Rank(c).value(), sketch.RankOf(c).value());
  }
}

TEST(SummaryTest, SnapshotIsDecoupledFromLiveSketch) {
  UnknownNOptions options;
  options.eps = 0.05;
  UnknownNSketch sketch = std::move(UnknownNSketch::Create(options)).value();
  for (int i = 0; i < 1000; ++i) sketch.Add(i);
  QuantileSummary summary = sketch.ExportSummary();
  Value before = summary.Quantile(0.5).value();
  for (int i = 1000; i < 5000; ++i) sketch.Add(10 * i);
  EXPECT_DOUBLE_EQ(summary.Quantile(0.5).value(), before)
      << "the snapshot must not see later inserts";
  EXPECT_EQ(summary.total_weight(), 1000u);
}

TEST(SummaryTest, RankEdges) {
  std::vector<Value> a = {10, 20, 30};
  std::vector<WeightedRun> runs = {{a.data(), a.size(), 1}};
  QuantileSummary s = QuantileSummary::FromRuns(runs);
  EXPECT_DOUBLE_EQ(s.Rank(5).value(), 0.0);
  EXPECT_DOUBLE_EQ(s.Rank(10).value(), 1.0 / 3);
  EXPECT_DOUBLE_EQ(s.Rank(25).value(), 2.0 / 3);
  EXPECT_DOUBLE_EQ(s.Rank(99).value(), 1.0);
}

TEST(SummaryTest, CdfPointsAreMonotone) {
  StreamSpec spec;
  spec.n = 5000;
  spec.seed = 9;
  Dataset ds = GenerateStream(spec);
  UnknownNOptions options;
  options.eps = 0.05;
  UnknownNSketch sketch = std::move(UnknownNSketch::Create(options)).value();
  for (Value v : ds.values()) sketch.Add(v);
  auto cdf = sketch.ExportSummary().CdfPoints(20).value();
  ASSERT_EQ(cdf.size(), 20u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].first, cdf[i].first);
    EXPECT_LT(cdf[i - 1].second, cdf[i].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(SummaryTest, EmptySummaryFailsQueries) {
  QuantileSummary s;
  EXPECT_EQ(s.Quantile(0.5).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(s.Rank(1.0).status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(s.CdfPoints(10).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(s.CdfPoints(1).status().code(), StatusCode::kInvalidArgument);
}

TEST(SummaryTest, SerializationRoundTrip) {
  std::vector<Value> a = {1, 2, 3, 4};
  std::vector<WeightedRun> runs = {{a.data(), a.size(), 7}};
  QuantileSummary s = QuantileSummary::FromRuns(runs);
  BinaryWriter w;
  s.SerializeTo(&w);
  std::vector<std::uint8_t> bytes = w.Take();
  BinaryReader r(bytes);
  QuantileSummary restored =
      std::move(QuantileSummary::DeserializeFrom(&r)).value();
  EXPECT_EQ(restored.size(), s.size());
  EXPECT_EQ(restored.total_weight(), s.total_weight());
  EXPECT_DOUBLE_EQ(restored.Quantile(0.5).value(),
                   s.Quantile(0.5).value());
}

TEST(SummaryTest, DeserializeRejectsNonMonotone) {
  BinaryWriter w;
  w.PutU64(2);
  w.PutDouble(5.0);
  w.PutU64(10);
  w.PutDouble(4.0);  // values must ascend
  w.PutU64(20);
  std::vector<std::uint8_t> bytes = w.Take();
  BinaryReader r(bytes);
  EXPECT_FALSE(QuantileSummary::DeserializeFrom(&r).ok());
}

// ------------------------------------------- KnownN / Extreme checkpoints

TEST(KnownNCheckpointTest, RoundTripMidStream) {
  KnownNParams p;
  p.b = 4;
  p.k = 64;
  p.h = 5;
  p.rate = 4;
  p.alpha = 0.5;
  p.n = 100000;
  KnownNOptions options;
  options.params = p;
  options.seed = 11;
  KnownNSketch original = std::move(KnownNSketch::Create(options)).value();
  StreamSpec spec;
  spec.n = 100000;
  spec.seed = 13;
  Dataset ds = GenerateStream(spec);
  const std::size_t cut = 34567;
  for (std::size_t i = 0; i < cut; ++i) original.Add(ds.values()[i]);

  Result<KnownNSketch> restored_r =
      KnownNSketch::Deserialize(original.Serialize());
  ASSERT_TRUE(restored_r.ok()) << restored_r.status();
  KnownNSketch& restored = restored_r.value();
  for (std::size_t i = cut; i < ds.size(); ++i) {
    original.Add(ds.values()[i]);
    restored.Add(ds.values()[i]);
  }
  EXPECT_EQ(restored.HeldWeight(), ds.size());
  for (double phi : {0.1, 0.5, 0.9}) {
    EXPECT_DOUBLE_EQ(restored.Query(phi).value(),
                     original.Query(phi).value());
  }
}

TEST(KnownNCheckpointTest, KindsAreNotInterchangeable) {
  KnownNParams p;
  p.b = 3;
  p.k = 8;
  p.h = 2;
  p.rate = 1;
  p.alpha = 1.0;
  p.n = 100;
  KnownNOptions options;
  options.params = p;
  KnownNSketch known = std::move(KnownNSketch::Create(options)).value();
  known.Add(1.0);
  // A known-N checkpoint must not deserialize as an unknown-N sketch.
  EXPECT_FALSE(UnknownNSketch::Deserialize(known.Serialize()).ok());
}

TEST(ExtremeCheckpointTest, RoundTripMidStream) {
  ExtremeValueOptions options;
  options.phi = 0.01;
  options.eps = 0.004;
  options.delta = 1e-3;
  options.n = 200000;
  options.seed = 17;
  ExtremeValueSketch original =
      std::move(ExtremeValueSketch::Create(options)).value();
  StreamSpec spec;
  spec.n = 200000;
  spec.seed = 19;
  Dataset ds = GenerateStream(spec);
  const std::size_t cut = 77777;
  for (std::size_t i = 0; i < cut; ++i) original.Add(ds.values()[i]);

  Result<ExtremeValueSketch> restored_r =
      ExtremeValueSketch::Deserialize(original.Serialize());
  ASSERT_TRUE(restored_r.ok()) << restored_r.status();
  ExtremeValueSketch& restored = restored_r.value();
  EXPECT_EQ(restored.count(), original.count());
  EXPECT_EQ(restored.sampled_count(), original.sampled_count());
  for (std::size_t i = cut; i < ds.size(); ++i) {
    original.Add(ds.values()[i]);
    restored.Add(ds.values()[i]);
  }
  EXPECT_DOUBLE_EQ(restored.Query(0.01).value(),
                   original.Query(0.01).value());
}

TEST(ExtremeCheckpointTest, RejectsTruncation) {
  ExtremeValueOptions options;
  options.phi = 0.01;
  options.eps = 0.004;
  options.n = 10000;
  ExtremeValueSketch sketch =
      std::move(ExtremeValueSketch::Create(options)).value();
  for (int i = 0; i < 10000; ++i) sketch.Add(i);
  std::vector<std::uint8_t> bytes = sketch.Serialize();
  for (std::size_t len : {bytes.size() / 3, bytes.size() - 1}) {
    std::vector<std::uint8_t> prefix(bytes.begin(),
                                     bytes.begin() + static_cast<long>(len));
    EXPECT_FALSE(ExtremeValueSketch::Deserialize(prefix).ok());
  }
}

}  // namespace
}  // namespace mrl
