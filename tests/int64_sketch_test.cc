#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/int64_sketch.h"
#include "util/random.h"

namespace mrl {
namespace {

Int64QuantileSketch Make(double eps = 0.02, std::uint64_t seed = 1) {
  Int64QuantileSketch::Options options;
  options.eps = eps;
  options.seed = seed;
  return std::move(Int64QuantileSketch::Create(options)).value();
}

TEST(Int64SketchTest, AnswersAreExactIntegers) {
  Int64QuantileSketch sketch = Make();
  Random rng(3);
  std::vector<std::int64_t> values;
  for (int i = 0; i < 50000; ++i) {
    // Large, irregular integers that would expose rounding.
    std::int64_t v = static_cast<std::int64_t>(rng.UniformUint64(
                         std::uint64_t{1} << 50)) -
                     (std::int64_t{1} << 49);
    values.push_back(v);
    EXPECT_TRUE(sketch.Add(v));
  }
  std::sort(values.begin(), values.end());
  for (double phi : {0.1, 0.5, 0.9}) {
    std::int64_t q = sketch.Query(phi).value();
    // The answer must be one of the inserted values...
    EXPECT_TRUE(std::binary_search(values.begin(), values.end(), q));
    // ...with rank within eps of the target.
    auto lo = std::lower_bound(values.begin(), values.end(), q);
    auto hi = std::upper_bound(values.begin(), values.end(), q);
    double n = static_cast<double>(values.size());
    double target = phi * n;
    double rank_lo = static_cast<double>(lo - values.begin()) + 1;
    double rank_hi = static_cast<double>(hi - values.begin());
    EXPECT_LE(rank_lo - target, 0.02 * n + 1);
    EXPECT_LE(target - rank_hi, 0.02 * n + 1);
  }
}

TEST(Int64SketchTest, RejectsOutOfRange) {
  Int64QuantileSketch sketch = Make();
  EXPECT_TRUE(sketch.Add(Int64QuantileSketch::kMaxMagnitude));
  EXPECT_TRUE(sketch.Add(-Int64QuantileSketch::kMaxMagnitude));
  EXPECT_FALSE(sketch.Add(Int64QuantileSketch::kMaxMagnitude + 1));
  EXPECT_FALSE(sketch.Add(std::numeric_limits<std::int64_t>::min()));
  EXPECT_EQ(sketch.count(), 2u);
  EXPECT_EQ(sketch.rejected_count(), 2u);
}

TEST(Int64SketchTest, BoundaryValuesRoundTrip) {
  Int64QuantileSketch sketch = Make();
  sketch.Add(Int64QuantileSketch::kMaxMagnitude);
  sketch.Add(-Int64QuantileSketch::kMaxMagnitude);
  sketch.Add(0);
  EXPECT_EQ(sketch.Query(1.0).value(), Int64QuantileSketch::kMaxMagnitude);
  EXPECT_EQ(sketch.Query(0.01).value(),
            -Int64QuantileSketch::kMaxMagnitude);
}

TEST(Int64SketchTest, QueryManyMatchesSingles) {
  Int64QuantileSketch sketch = Make();
  for (int i = 1; i <= 10000; ++i) sketch.Add(i);
  auto batch = sketch.QueryMany({0.25, 0.75}).value();
  EXPECT_EQ(batch[0], sketch.Query(0.25).value());
  EXPECT_EQ(batch[1], sketch.Query(0.75).value());
}

TEST(Int64SketchTest, RankClampsOutOfRangeProbes) {
  Int64QuantileSketch sketch = Make();
  for (int i = 1; i <= 100; ++i) sketch.Add(i);
  EXPECT_DOUBLE_EQ(
      sketch.RankOf(std::numeric_limits<std::int64_t>::max()).value(), 1.0);
  EXPECT_DOUBLE_EQ(
      sketch.RankOf(std::numeric_limits<std::int64_t>::min()).value(), 0.0);
  EXPECT_NEAR(sketch.RankOf(50).value(), 0.5, 0.02);
}

TEST(Int64SketchTest, EmptyQueryFails) {
  Int64QuantileSketch sketch = Make();
  EXPECT_EQ(sketch.Query(0.5).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(Int64SketchTest, DuplicateHeavyColumn) {
  // Low-cardinality dimension column: ranks must respect duplicate runs.
  Int64QuantileSketch sketch = Make(0.01, 7);
  Random rng(9);
  for (int i = 0; i < 60000; ++i) {
    sketch.Add(static_cast<std::int64_t>(rng.UniformUint64(5)));  // 0..4
  }
  // Uniform over 5 values: the median is 2.
  EXPECT_EQ(sketch.Query(0.5).value(), 2);
  EXPECT_NEAR(sketch.RankOf(0).value(), 0.2, 0.01);
  EXPECT_NEAR(sketch.RankOf(3).value(), 0.8, 0.01);
}

}  // namespace
}  // namespace mrl
