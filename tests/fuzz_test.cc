// Randomized stress tests: drive the framework and the sketches through
// randomly generated configurations and interleavings, asserting structural
// invariants rather than specific outputs. Seeds are fixed, so failures
// reproduce exactly.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/collapse_policy.h"
#include "core/framework.h"
#include "core/output.h"
#include "core/unknown_n.h"
#include "stream/generator.h"
#include "util/random.h"

namespace mrl {
namespace {

// ------------------------------------------------------- Framework fuzzing

struct FuzzConfig {
  int b;
  std::size_t k;
  CollapsePolicyKind policy;
  std::uint64_t seed;
};

class FrameworkFuzzTest : public ::testing::TestWithParam<FuzzConfig> {};

TEST_P(FrameworkFuzzTest, InvariantsHoldThroughRandomDriving) {
  const FuzzConfig& cfg = GetParam();
  CollapseFramework fw(cfg.b, cfg.k, MakeCollapsePolicy(cfg.policy));
  Random rng(cfg.seed);

  Weight expected_weight = 0;
  std::uint64_t leaves = 0;
  const int rounds = 400;
  for (int round = 0; round < rounds; ++round) {
    // Feed one leaf with a random (power-of-two-ish) weight at a random
    // low level, as the unknown-N algorithm would.
    const Weight w = Weight{1} << rng.UniformUint64(4);
    const int level = static_cast<int>(rng.UniformUint64(3));
    std::size_t slot = fw.AcquireEmptySlot();
    fw.buffer(slot).StartFill();
    for (std::size_t j = 0; j < cfg.k; ++j) {
      fw.buffer(slot).Append(rng.UniformDouble(-100, 100));
    }
    fw.CommitFull(slot, w, level);
    expected_weight += w * cfg.k;
    ++leaves;

    if (round % 7 == 0) {
      // Invariants after arbitrary interleaving:
      EXPECT_EQ(fw.FullWeight(), expected_weight);
      EXPECT_EQ(fw.stats().leaves_created, leaves);
      EXPECT_LE(fw.CountState(BufferState::kFull),
                static_cast<std::size_t>(cfg.b));
      for (int i = 0; i < fw.num_buffers(); ++i) {
        const Buffer& buf = fw.buffer(static_cast<std::size_t>(i));
        if (buf.state() == BufferState::kFull) {
          EXPECT_EQ(buf.size(), cfg.k);
          EXPECT_GE(buf.weight(), 1u);
          EXPECT_LE(buf.level(), fw.max_level());
          EXPECT_TRUE(
              std::is_sorted(buf.values().begin(), buf.values().end()));
        }
      }
      // Weighted queries remain well-formed and within the value range.
      Value med = WeightedQuantile(fw.FullBufferRuns(), 0.5).value();
      EXPECT_GE(med, -100);
      EXPECT_LE(med, 100);
    }
  }
}

std::vector<FuzzConfig> MakeFuzzConfigs() {
  std::vector<FuzzConfig> configs;
  std::uint64_t seed = 1000;
  for (CollapsePolicyKind policy :
       {CollapsePolicyKind::kMrl, CollapsePolicyKind::kMunroPaterson,
        CollapsePolicyKind::kCollapseAll}) {
    for (int b : {2, 3, 7}) {
      for (std::size_t k : {std::size_t{1}, std::size_t{5}, std::size_t{32}}) {
        configs.push_back({b, k, policy, seed++});
      }
    }
  }
  return configs;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, FrameworkFuzzTest, ::testing::ValuesIn(MakeFuzzConfigs()),
    [](const ::testing::TestParamInfo<FuzzConfig>& info) {
      const char* policy =
          info.param.policy == CollapsePolicyKind::kMrl
              ? "mrl"
              : (info.param.policy == CollapsePolicyKind::kMunroPaterson
                     ? "mp"
                     : "all");
      return std::string(policy) + "_b" + std::to_string(info.param.b) +
             "_k" + std::to_string(info.param.k) + "_s" +
             std::to_string(info.param.seed);
    });

// ------------------------------------------------------------ Sketch fuzz

TEST(SketchFuzzTest, RandomParamsRandomStreamsKeepInvariants) {
  Random rng(42);
  for (int trial = 0; trial < 25; ++trial) {
    UnknownNParams p;
    p.b = 2 + static_cast<int>(rng.UniformUint64(6));
    p.k = 1 + static_cast<std::size_t>(rng.UniformUint64(200));
    p.h = 1 + static_cast<int>(rng.UniformUint64(6));
    p.alpha = 0.5;
    UnknownNOptions options;
    options.params = p;
    options.seed = rng.NextUint64();
    UnknownNSketch sketch =
        std::move(UnknownNSketch::Create(options)).value();
    const std::size_t n = 1 + rng.UniformUint64(30000);
    for (std::size_t i = 0; i < n; ++i) {
      sketch.Add(rng.Gaussian());
    }
    ASSERT_EQ(sketch.count(), n) << "trial " << trial;
    ASSERT_EQ(sketch.HeldWeight(), n)
        << "trial " << trial << " b=" << p.b << " k=" << p.k
        << " h=" << p.h;
    // Queries at the extremes bracket interior ones.
    Value lo = sketch.Query(1e-9).value();
    Value mid = sketch.Query(0.5).value();
    Value hi = sketch.Query(1.0).value();
    EXPECT_LE(lo, mid);
    EXPECT_LE(mid, hi);
  }
}

TEST(SketchFuzzTest, InterleavedQueriesNeverDisturbAccounting) {
  Random rng(77);
  UnknownNParams p;
  p.b = 3;
  p.k = 17;  // deliberately odd-sized
  p.h = 2;
  p.alpha = 0.5;
  UnknownNOptions options;
  options.params = p;
  options.seed = 5;
  UnknownNSketch sketch = std::move(UnknownNSketch::Create(options)).value();
  for (int i = 1; i <= 20000; ++i) {
    sketch.Add(rng.UniformDouble());
    if (rng.Bernoulli(0.05)) {
      (void)sketch.Query(rng.UniformDouble(0.01, 1.0));
      (void)sketch.RankOf(rng.UniformDouble());
    }
    if (i % 997 == 0) {
      ASSERT_EQ(sketch.HeldWeight(), static_cast<Weight>(i));
    }
  }
}

TEST(SketchFuzzTest, SerializeAnywhereRestoresEquivalentSketch) {
  Random rng(99);
  UnknownNParams p;
  p.b = 3;
  p.k = 23;
  p.h = 2;
  p.alpha = 0.5;
  UnknownNOptions options;
  options.params = p;
  options.seed = 7;
  UnknownNSketch sketch = std::move(UnknownNSketch::Create(options)).value();
  for (int i = 0; i < 5000; ++i) {
    sketch.Add(rng.Gaussian());
    if (rng.Bernoulli(0.002)) {
      Result<UnknownNSketch> restored =
          UnknownNSketch::Deserialize(sketch.Serialize());
      ASSERT_TRUE(restored.ok()) << "at element " << i;
      ASSERT_EQ(restored.value().HeldWeight(), sketch.HeldWeight());
      ASSERT_EQ(restored.value().Query(0.5).value(),
                sketch.Query(0.5).value());
    }
  }
}

}  // namespace
}  // namespace mrl
