#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/unknown_n.h"
#include "stream/generator.h"

namespace mrl {
namespace {

// Property sweep of the paper's central claim: for any value distribution,
// any arrival order, and any prefix length, every answer is
// eps-approximate (with probability 1 - delta; the seeds below are fixed,
// so each case is deterministic and was verified to satisfy the guarantee
// — a regression here means the algorithm changed, not bad luck).
struct GuaranteeCase {
  std::string distribution;
  ArrivalOrder order;
  double eps;
  std::size_t n;

  std::string Name() const {
    std::string s = distribution + "_" + ArrivalOrderName(order) + "_eps" +
                    std::to_string(static_cast<int>(1000 * eps)) + "_n" +
                    std::to_string(n);
    return s;
  }
};

class GuaranteeTest : public ::testing::TestWithParam<GuaranteeCase> {};

TEST_P(GuaranteeTest, AllQuantilesWithinEps) {
  const GuaranteeCase& c = GetParam();
  StreamSpec spec;
  spec.distribution = c.distribution;
  spec.order = c.order;
  spec.n = c.n;
  spec.seed = 1234;
  Dataset ds = GenerateStream(spec);

  UnknownNOptions options;
  options.eps = c.eps;
  options.delta = 1e-4;
  options.seed = 99;
  Result<UnknownNSketch> r = UnknownNSketch::Create(options);
  ASSERT_TRUE(r.ok());
  UnknownNSketch& sketch = r.value();
  for (Value v : ds.values()) sketch.Add(v);

  for (double phi : {0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    Result<Value> est = sketch.Query(phi);
    ASSERT_TRUE(est.ok());
    EXPECT_LE(ds.QuantileError(est.value(), phi), c.eps)
        << "phi=" << phi << " case " << c.Name();
  }
}

std::vector<GuaranteeCase> MakeGuaranteeCases() {
  std::vector<GuaranteeCase> cases;
  for (const char* dist : {"uniform", "gaussian", "exponential", "zipf"}) {
    for (ArrivalOrder order :
         {ArrivalOrder::kAsDrawn, ArrivalOrder::kSortedAsc,
          ArrivalOrder::kSortedDesc, ArrivalOrder::kAlternating}) {
      cases.push_back({dist, order, 0.02, 30000});
    }
  }
  // Extra eps sweep on the default distribution/order.
  for (double eps : {0.1, 0.05, 0.01}) {
    cases.push_back({"uniform", ArrivalOrder::kShuffled, eps, 50000});
  }
  // Remaining arrival orders at least once.
  cases.push_back({"uniform", ArrivalOrder::kSawtooth, 0.02, 30000});
  cases.push_back({"uniform", ArrivalOrder::kBlockShuffled, 0.02, 30000});
  // Heavy duplication.
  cases.push_back({"constant", ArrivalOrder::kAsDrawn, 0.05, 20000});
  cases.push_back({"two_point", ArrivalOrder::kShuffled, 0.05, 20000});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GuaranteeTest, ::testing::ValuesIn(MakeGuaranteeCases()),
    [](const ::testing::TestParamInfo<GuaranteeCase>& info) {
      return info.param.Name();
    });

// Prefix property: the guarantee holds at *every* prefix, not just at the
// end — this is what makes the algorithm an online-aggregation operator.
class PrefixGuaranteeTest : public ::testing::TestWithParam<ArrivalOrder> {};

TEST_P(PrefixGuaranteeTest, EveryCheckedPrefixIsAccurate) {
  StreamSpec spec;
  spec.distribution = "uniform";
  spec.order = GetParam();
  spec.n = 40000;
  spec.seed = 777;
  Dataset ds = GenerateStream(spec);

  UnknownNOptions options;
  options.eps = 0.03;
  options.delta = 1e-4;
  options.seed = 5;
  UnknownNSketch sketch = std::move(UnknownNSketch::Create(options)).value();

  std::vector<Value> prefix;
  prefix.reserve(ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    sketch.Add(ds.values()[i]);
    prefix.push_back(ds.values()[i]);
    if ((i + 1) % 5000 == 0) {
      Dataset prefix_ds(prefix);
      for (double phi : {0.1, 0.5, 0.9}) {
        Value est = sketch.Query(phi).value();
        EXPECT_LE(prefix_ds.QuantileError(est, phi), options.eps)
            << "prefix " << (i + 1) << " phi " << phi;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Orders, PrefixGuaranteeTest,
    ::testing::Values(ArrivalOrder::kAsDrawn, ArrivalOrder::kSortedAsc,
                      ArrivalOrder::kSortedDesc),
    [](const ::testing::TestParamInfo<ArrivalOrder>& info) {
      return ArrivalOrderName(info.param);
    });

// With tiny forced parameters the sketch samples aggressively; accuracy
// should still track the (weaker) guarantee those parameters imply. This
// exercises deep trees: many rate doublings within a modest stream.
TEST(DeepTreeTest, AggressiveSamplingStaysReasonable) {
  UnknownNOptions options;
  UnknownNParams p;
  p.b = 4;
  p.k = 64;
  p.h = 3;
  p.alpha = 0.5;
  options.params = p;
  options.seed = 17;
  UnknownNSketch sketch = std::move(UnknownNSketch::Create(options)).value();

  StreamSpec spec;
  spec.n = 200000;
  spec.seed = 31;
  Dataset ds = GenerateStream(spec);
  for (Value v : ds.values()) sketch.Add(v);
  EXPECT_GE(sketch.sampling_rate(), 8u);
  EXPECT_EQ(sketch.HeldWeight(), ds.size());
  // b=4, k=64, h=3 supports roughly eps ~ (h+1)/(2 alpha k) ~ 0.06 for the
  // tree alone; allow 2x sampling slack.
  for (double phi : {0.25, 0.5, 0.75}) {
    Value est = sketch.Query(phi).value();
    EXPECT_LE(ds.QuantileError(est, phi), 0.12) << "phi " << phi;
  }
}

}  // namespace
}  // namespace mrl
