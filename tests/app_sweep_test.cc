// Parameterized sweeps over the application layer, plus a checkpoint
// format-stability guard.

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "app/equidepth_histogram.h"
#include "app/splitters.h"
#include "core/unknown_n.h"
#include "stream/generator.h"

namespace mrl {
namespace {

// ------------------------------------------------------- Histogram sweep

class HistogramBucketSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HistogramBucketSweep, EveryBoundaryWithinDefaultEps) {
  const std::size_t buckets = GetParam();
  StreamSpec spec;
  spec.n = 40000;
  spec.seed = 3;
  spec.distribution = "lognormal";
  Dataset ds = GenerateStream(spec);
  EquiDepthHistogram::Options options;
  options.num_buckets = buckets;
  options.seed = 5;
  EquiDepthHistogram hist =
      std::move(EquiDepthHistogram::Create(options)).value();
  for (Value v : ds.values()) hist.Add(v);
  std::vector<Value> bs = hist.Boundaries().value();
  ASSERT_EQ(bs.size(), buckets - 1);
  const double eps = 1.0 / (10.0 * static_cast<double>(buckets));
  for (std::size_t i = 0; i < bs.size(); ++i) {
    const double phi =
        static_cast<double>(i + 1) / static_cast<double>(buckets);
    EXPECT_LE(ds.QuantileError(bs[i], phi), eps)
        << "buckets=" << buckets << " boundary=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Buckets, HistogramBucketSweep,
                         ::testing::Values(2, 3, 4, 8, 16, 50),
                         [](const ::testing::TestParamInfo<std::size_t>& i) {
                           return "p" + std::to_string(i.param);
                         });

// -------------------------------------------------------- Splitter sweep

struct SplitterCase {
  int parts;
  const char* distribution;
};

class SplitterSweep : public ::testing::TestWithParam<SplitterCase> {};

TEST_P(SplitterSweep, SkewWithinTwoEpsOnContinuousData) {
  const SplitterCase& c = GetParam();
  StreamSpec spec;
  spec.n = 60000;
  spec.seed = 7;
  spec.distribution = c.distribution;
  Dataset ds = GenerateStream(spec);
  SplitterOptions options;
  options.num_parts = c.parts;
  options.eps = 0.005;
  options.seed = 9;
  std::vector<Value> splitters =
      ComputeSplittersSequential(ds.values(), options).value();
  ASSERT_EQ(splitters.size(), static_cast<std::size_t>(c.parts) - 1);
  EXPECT_LE(MaxPartitionSkew(ds.values(), splitters), 2 * options.eps);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SplitterSweep,
    ::testing::Values(SplitterCase{2, "uniform"}, SplitterCase{4, "gaussian"},
                      SplitterCase{8, "exponential"},
                      SplitterCase{16, "lognormal"},
                      SplitterCase{32, "pareto"}),
    [](const ::testing::TestParamInfo<SplitterCase>& i) {
      return std::string(i.param.distribution) + "_p" +
             std::to_string(i.param.parts);
    });

// --------------------------------------------------- Format stability

// If encode determinism or the decode/encode fixed point breaks, the
// on-disk checkpoint format changed: either revert the change or bump
// kCheckpointVersion and update docs/checkpoint_format.md.
TEST(FormatStabilityTest, CheckpointBytesAreReproducible) {
  UnknownNParams p;
  p.b = 3;
  p.k = 16;
  p.h = 2;
  p.alpha = 0.5;
  p.leaves_before_sampling = 3;
  UnknownNOptions options;
  options.params = p;
  options.seed = 12345;
  UnknownNSketch sketch = std::move(UnknownNSketch::Create(options)).value();
  for (int i = 0; i < 1000; ++i) {
    sketch.Add(static_cast<Value>((i * 37) % 101));
  }
  std::vector<std::uint8_t> blob = sketch.Serialize();
  // Two encodes of the same state must be byte-identical...
  EXPECT_EQ(blob, sketch.Serialize());
  // ...and a decode/encode cycle must be a fixed point.
  UnknownNSketch restored =
      std::move(UnknownNSketch::Deserialize(blob)).value();
  EXPECT_EQ(restored.Serialize(), blob);
}

}  // namespace
}  // namespace mrl
