#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "stream/distribution.h"
#include "stream/generator.h"
#include "stream/text_stream.h"
#include "util/random.h"

namespace mrl {
namespace {

// ------------------------------------------------------ New distributions

TEST(ExtraDistributionTest, FactoryKnowsNewNames) {
  for (const char* name : {"lognormal", "pareto", "bimodal"}) {
    auto dist = MakeDistribution(name);
    ASSERT_NE(dist, nullptr) << name;
    EXPECT_EQ(dist->name(), name);
  }
}

TEST(ExtraDistributionTest, LogNormalMedianIsExpMu) {
  LogNormalDistribution dist(2.0, 0.7);
  Random rng(3);
  std::vector<Value> values;
  for (int i = 0; i < 40000; ++i) values.push_back(dist.Draw(&rng));
  Dataset ds(std::move(values));
  // Median of lognormal(mu, sigma) is exp(mu).
  EXPECT_NEAR(ds.ExactQuantile(0.5), std::exp(2.0), 0.15);
  EXPECT_GT(ds.Min(), 0.0);
}

TEST(ExtraDistributionTest, ParetoQuantilesMatchClosedForm) {
  const double scale = 2.0, shape = 1.5;
  ParetoDistribution dist(scale, shape);
  Random rng(5);
  std::vector<Value> values;
  for (int i = 0; i < 60000; ++i) values.push_back(dist.Draw(&rng));
  Dataset ds(std::move(values));
  // Q(p) = scale / (1-p)^(1/shape).
  for (double p : {0.5, 0.9}) {
    double expected = scale / std::pow(1.0 - p, 1.0 / shape);
    EXPECT_NEAR(ds.ExactQuantile(p) / expected, 1.0, 0.05) << "p=" << p;
  }
  EXPECT_GE(ds.Min(), scale);
}

TEST(ExtraDistributionTest, BimodalHasMassAtBothModes) {
  BimodalDistribution dist(-5.0, 5.0, 1.0);
  Random rng(7);
  int low = 0, high = 0;
  for (int i = 0; i < 20000; ++i) {
    Value v = dist.Draw(&rng);
    if (v < 0) ++low;
    if (v > 0) ++high;
  }
  EXPECT_NEAR(low, 10000, 400);
  EXPECT_NEAR(high, 10000, 400);
}

TEST(ExtraDistributionTest, GeneratorAcceptsNewNames) {
  StreamSpec spec;
  spec.distribution = "pareto";
  spec.n = 100;
  spec.seed = 9;
  EXPECT_EQ(GenerateStream(spec).size(), 100u);
}

// ------------------------------------------------------------ Text stream

TEST(TextStreamTest, RoundTrip) {
  std::string path = ::testing::TempDir() + "/mrl_text_roundtrip.txt";
  std::vector<Value> values = {1.5, -2.25, 0.0, 1e300, 5e-324};
  ASSERT_TRUE(WriteValuesTextFile(path, values).ok());
  TextValueReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  std::vector<Value> read_back;
  Value v;
  while (reader.Next(&v)) read_back.push_back(v);
  EXPECT_TRUE(reader.status().ok());
  EXPECT_EQ(read_back, values);
  std::remove(path.c_str());
}

TEST(TextStreamTest, SkipsBlanksAndComments) {
  std::string path = ::testing::TempDir() + "/mrl_text_comments.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("# header comment\n\n  1.5\n   # indented comment\n2.5 \n\n",
             f);
  std::fclose(f);
  TextValueReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  std::vector<Value> values;
  Value v;
  while (reader.Next(&v)) values.push_back(v);
  EXPECT_TRUE(reader.status().ok());
  EXPECT_EQ(values, (std::vector<Value>{1.5, 2.5}));
  std::remove(path.c_str());
}

TEST(TextStreamTest, MalformedLineReportsLineNumber) {
  std::string path = ::testing::TempDir() + "/mrl_text_bad.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("1.0\n2.0\nnot_a_number\n4.0\n", f);
  std::fclose(f);
  TextValueReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  Value v;
  EXPECT_TRUE(reader.Next(&v));
  EXPECT_TRUE(reader.Next(&v));
  EXPECT_FALSE(reader.Next(&v));
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(reader.status().message().find("line 3"), std::string::npos)
      << reader.status().message();
  std::remove(path.c_str());
}

TEST(TextStreamTest, TrailingGarbageRejected) {
  std::string path = ::testing::TempDir() + "/mrl_text_trailing.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("3.5 oops\n", f);
  std::fclose(f);
  TextValueReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  Value v;
  EXPECT_FALSE(reader.Next(&v));
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(TextStreamTest, MissingFileFails) {
  TextValueReader reader;
  EXPECT_EQ(reader.Open("/no/such/file.txt").code(), StatusCode::kNotFound);
}

TEST(TextStreamTest, EmptyFileYieldsNothing) {
  std::string path = ::testing::TempDir() + "/mrl_text_empty.txt";
  ASSERT_TRUE(WriteValuesTextFile(path, {}).ok());
  TextValueReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  Value v;
  EXPECT_FALSE(reader.Next(&v));
  EXPECT_TRUE(reader.status().ok());
  std::remove(path.c_str());
}

TEST(TextStreamTest, DoubleOpenFails) {
  std::string path = ::testing::TempDir() + "/mrl_text_double.txt";
  ASSERT_TRUE(WriteValuesTextFile(path, {1.0}).ok());
  TextValueReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  EXPECT_EQ(reader.Open(path).code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(GeneratedStreamReaderTest, MatchesGenerateStreamForAnyChunking) {
  Random chunker(61);
  for (ArrivalOrder order : {ArrivalOrder::kAsDrawn, ArrivalOrder::kSortedAsc,
                             ArrivalOrder::kShuffled}) {
    StreamSpec spec;
    spec.distribution = "gaussian";
    spec.order = order;
    spec.n = 5000;
    spec.seed = 12;
    const std::vector<Value> expected = GenerateStream(spec).values();

    GeneratedStreamReader reader(spec);
    EXPECT_EQ(reader.size(), spec.n);
    std::vector<Value> got;
    std::vector<Value> chunk(257);
    while (true) {
      std::size_t want =
          1 + static_cast<std::size_t>(chunker.UniformUint64(chunk.size()));
      std::size_t n = reader.ReadBatch(chunk.data(), want);
      if (n == 0) break;
      got.insert(got.end(), chunk.begin(), chunk.begin() + n);
      EXPECT_EQ(reader.position(), got.size());
    }
    EXPECT_EQ(got, expected);
    EXPECT_EQ(reader.ReadBatch(chunk.data(), chunk.size()), 0u);
  }
}

}  // namespace
}  // namespace mrl
