// TSan-targeted stress test for the registry's locking scheme
// (src/server/registry.h): global LRU eviction + free-pool recycling
// racing concurrent STATS / QUERY / ADD_BATCH / DELETE on the *same*
// tenant names, across both a single partition and the sharded-server
// layout (one partition per shard). The dangerous interleaving is a
// reader holding a shared_ptr<Tenant> across an eviction of that tenant:
// eviction must recycle the sketch only once the registry holds the last
// reference, and every sketch access must go through the tenant's own
// lock. With multiple partitions, EvictGlobalLru additionally scans and
// then locks partitions it does not own the names of — racing creates in
// *other* partitions. Run under -fsanitize=thread (the CI tsan lane) this
// test turns any violation of the documented cross_mu_ -> Partition::mu ->
// Tenant::mu contract into a hard failure; under plain builds it still
// exercises the shared_ptr lifetime rules.
//
// Assertions here are deliberately weak (no answer-value checks): racing a
// DELETE or eviction legitimately yields NotFound, and an operation that
// caught the outgoing instance legitimately succeeds. What must hold is
// memory safety and statuses from the documented set.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "server/registry.h"
#include "util/random.h"

namespace mrl {
namespace server {
namespace {

std::vector<Value> UniformStream(std::size_t n, std::uint64_t seed) {
  Random rng(seed);
  std::vector<Value> values(n);
  for (Value& v : values) v = rng.UniformDouble();
  return values;
}

// Tenant name from a small pool, so threads collide on the same names and
// creates constantly push the registry past max_tenants. (Built char by
// char: `"t" + std::to_string(i)` trips GCC 12's -Wrestrict false
// positive.)
std::string TenantName(std::uint64_t i) {
  std::string name(1, 't');
  name.push_back(static_cast<char>('0' + (i % 6)));
  return name;
}

void RunEvictionRace(std::size_t num_partitions) {
  RegistryOptions options;
  options.max_tenants = 3;  // far fewer than the name pool: constant churn
  options.max_free_pool = 2;
  options.num_partitions = num_partitions;
  SketchRegistry registry(options);

  TenantConfig config;
  config.eps = 0.05;  // small sketches keep per-op cost low

  constexpr int kThreads = 8;
  constexpr std::uint64_t kOpsPerThread = 400;
  const std::vector<Value> batch = UniformStream(256, /*seed=*/7);

  std::atomic<bool> start{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) {
      }
      Random rng(static_cast<std::uint64_t>(t) + 1);
      for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
        const std::string name = TenantName(rng.UniformUint64(6));
        switch (rng.UniformUint64(5)) {
          case 0: {
            // Creating past max_tenants evicts the LRU tenant while other
            // threads may hold shared_ptr handles to it.
            const Status s = registry.Create(name, config);
            EXPECT_TRUE(s.ok() || s.code() == StatusCode::kFailedPrecondition)
                << s.message();
            break;
          }
          case 1: {
            const Result<std::uint64_t> count =
                registry.AddBatch(name, batch);
            EXPECT_TRUE(count.ok() ||
                        count.status().code() == StatusCode::kNotFound)
                << count.status().message();
            break;
          }
          case 2: {
            const Result<Value> q = registry.Query(name, 0.5);
            EXPECT_TRUE(q.ok() ||
                        q.status().code() == StatusCode::kNotFound ||
                        q.status().code() == StatusCode::kFailedPrecondition)
                << q.status().message();
            break;
          }
          case 3: {
            // Stats shared-locks the tenant the same way QUERY does; a
            // vanished tenant reports present == false.
            const TenantStats stats = registry.Stats(name);
            if (stats.present) {
              EXPECT_LE(stats.memory_elements, 1u << 24);
            }
            break;
          }
          case 4: {
            const Status s = registry.Delete(name);
            EXPECT_TRUE(s.ok() || s.code() == StatusCode::kNotFound)
                << s.message();
            break;
          }
        }
      }
    });
  }

  start.store(true, std::memory_order_release);
  for (std::thread& th : threads) th.join();

  // The registry must still be coherent: directory bounded by the cap,
  // aggregate stats readable, and a fresh tenant fully usable.
  const RegistryStats global = registry.GlobalStats();
  EXPECT_LE(global.num_tenants, options.max_tenants);

  ASSERT_TRUE(registry.Create("post", config).ok());
  ASSERT_TRUE(registry.AddBatch("post", batch).ok());
  EXPECT_TRUE(registry.Query("post", 0.5).ok());
}

TEST(RegistryRaceTest, EvictionRacesReadsOnSameTenants) {
  RunEvictionRace(/*num_partitions=*/1);
}

// The sharded-server layout: the six churned names spread over four
// partitions, so the global eviction pass constantly crosses partition
// boundaries while the partitions' own locks are contended.
TEST(RegistryRaceTest, EvictionRacesReadsAcrossPartitions) {
  RunEvictionRace(/*num_partitions=*/4);
}

}  // namespace
}  // namespace server
}  // namespace mrl
