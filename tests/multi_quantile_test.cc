#include <vector>

#include <gtest/gtest.h>

#include "core/multi_quantile.h"
#include "stream/generator.h"

namespace mrl {
namespace {

TEST(MultiQuantileTest, RejectsZeroQuantiles) {
  MultiQuantileSketch::Options options;
  options.num_quantiles = 0;
  EXPECT_EQ(MultiQuantileSketch::Create(options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(MultiQuantileTest, MemoryGrowsWithP) {
  MultiQuantileSketch::Options base;
  base.eps = 0.01;
  base.delta = 1e-4;
  base.num_quantiles = 1;
  std::uint64_t m1 =
      MultiQuantileSketch::Create(base).value().MemoryElements();
  base.num_quantiles = 100;
  std::uint64_t m100 =
      MultiQuantileSketch::Create(base).value().MemoryElements();
  EXPECT_GE(m100, m1);
  EXPECT_LT(m100, 2 * m1);  // Table 2: growth is O(log log p)
}

TEST(MultiQuantileTest, EnforcesJointQueryBudget) {
  MultiQuantileSketch::Options options;
  options.eps = 0.05;
  options.num_quantiles = 3;
  MultiQuantileSketch sketch =
      std::move(MultiQuantileSketch::Create(options)).value();
  for (int i = 0; i < 100; ++i) sketch.Add(i);
  EXPECT_TRUE(sketch.QueryMany({0.2, 0.5, 0.8}).ok());
  EXPECT_EQ(sketch.QueryMany({0.2, 0.4, 0.6, 0.8}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(MultiQuantileTest, AllSplittersAccurateSimultaneously) {
  // The equi-depth use case: 9 deciles, each eps-approximate.
  StreamSpec spec;
  spec.n = 40000;
  spec.seed = 3;
  spec.distribution = "exponential";
  Dataset ds = GenerateStream(spec);
  MultiQuantileSketch::Options options;
  options.eps = 0.02;
  options.delta = 1e-4;
  options.num_quantiles = 9;
  options.seed = 5;
  MultiQuantileSketch sketch =
      std::move(MultiQuantileSketch::Create(options)).value();
  for (Value v : ds.values()) sketch.Add(v);
  std::vector<double> phis;
  for (int i = 1; i <= 9; ++i) phis.push_back(i / 10.0);
  std::vector<Value> deciles = sketch.QueryMany(phis).value();
  for (std::size_t i = 0; i < phis.size(); ++i) {
    EXPECT_LE(ds.QuantileError(deciles[i], phis[i]), options.eps)
        << "decile " << (i + 1);
  }
  // Deciles of a distribution with a strictly increasing cdf must ascend.
  for (std::size_t i = 1; i < deciles.size(); ++i) {
    EXPECT_LE(deciles[i - 1], deciles[i]);
  }
}

// ------------------------------------------------------------ Precomputed

TEST(PrecomputedQuantilesTest, GridCoversUnitInterval) {
  PrecomputedQuantiles::Options options;
  options.eps = 0.1;
  PrecomputedQuantiles sketch =
      std::move(PrecomputedQuantiles::Create(options)).value();
  const std::vector<double>& grid = sketch.grid();
  ASSERT_FALSE(grid.empty());
  EXPECT_NEAR(grid.front(), 0.05, 1e-12);
  // Spacing eps, so any phi is within eps/2 of a grid point.
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_NEAR(grid[i] - grid[i - 1], 0.1, 1e-9);
  }
  EXPECT_GT(grid.back(), 1.0 - 0.1);
}

TEST(PrecomputedQuantilesTest, AnswersArbitraryPhiWithinEps) {
  StreamSpec spec;
  spec.n = 30000;
  spec.seed = 7;
  Dataset ds = GenerateStream(spec);
  PrecomputedQuantiles::Options options;
  options.eps = 0.05;
  options.delta = 1e-3;
  options.seed = 9;
  PrecomputedQuantiles sketch =
      std::move(PrecomputedQuantiles::Create(options)).value();
  for (Value v : ds.values()) sketch.Add(v);
  // Query phis that are NOT grid points.
  for (double phi : {0.013, 0.21, 0.333, 0.5, 0.666, 0.87, 0.999}) {
    Value est = sketch.Query(phi).value();
    EXPECT_LE(ds.QuantileError(est, phi), options.eps) << "phi " << phi;
  }
}

TEST(PrecomputedQuantilesTest, RejectsBadPhi) {
  PrecomputedQuantiles::Options options;
  options.eps = 0.1;
  PrecomputedQuantiles sketch =
      std::move(PrecomputedQuantiles::Create(options)).value();
  sketch.Add(1.0);
  EXPECT_EQ(sketch.Query(0.0).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(sketch.Query(1.1).status().code(), StatusCode::kInvalidArgument);
}

TEST(PrecomputedQuantilesTest, RejectsBadEps) {
  PrecomputedQuantiles::Options options;
  options.eps = 0.0;
  EXPECT_FALSE(PrecomputedQuantiles::Create(options).ok());
}

}  // namespace
}  // namespace mrl
