#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/bounded_heap.h"
#include "util/math.h"
#include "util/random.h"
#include "util/status.h"

namespace mrl {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad eps");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad eps");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad eps");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument,
        StatusCode::kFailedPrecondition, StatusCode::kOutOfRange,
        StatusCode::kResourceExhausted, StatusCode::kInternal,
        StatusCode::kNotFound, StatusCode::kUnimplemented}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_FALSE(Status::Internal("x") == Status::Internal("y"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, WorksWithMoveOnlyTypes) {
  struct MoveOnly {
    explicit MoveOnly(int x) : x(x) {}
    MoveOnly(MoveOnly&&) = default;
    MoveOnly& operator=(MoveOnly&&) = default;
    int x;
  };
  Result<MoveOnly> r = MoveOnly(5);
  ASSERT_TRUE(r.ok());
  MoveOnly taken = std::move(r).value();
  EXPECT_EQ(taken.x, 5);
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  auto inner = []() -> Status { return Status::Internal("boom"); };
  auto outer = [&]() -> Status {
    MRL_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------- Math

TEST(MathTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(10, 3), 4u);
  EXPECT_EQ(CeilDiv(9, 3), 3u);
  EXPECT_EQ(CeilDiv(1, 100), 1u);
}

TEST(MathTest, BinomialSmallValues) {
  EXPECT_EQ(SaturatingBinomial(5, 0), 1u);
  EXPECT_EQ(SaturatingBinomial(5, 5), 1u);
  EXPECT_EQ(SaturatingBinomial(5, 2), 10u);
  EXPECT_EQ(SaturatingBinomial(10, 3), 120u);
  EXPECT_EQ(SaturatingBinomial(3, 7), 0u);  // r > n
}

TEST(MathTest, BinomialPascalIdentity) {
  for (std::uint64_t n = 2; n < 40; ++n) {
    for (std::uint64_t r = 1; r < n; ++r) {
      EXPECT_EQ(SaturatingBinomial(n, r),
                SaturatingBinomial(n - 1, r - 1) + SaturatingBinomial(n - 1, r))
          << "n=" << n << " r=" << r;
    }
  }
}

TEST(MathTest, BinomialSaturates) {
  EXPECT_EQ(SaturatingBinomial(500, 250),
            std::numeric_limits<std::uint64_t>::max());
  // C(64, 32) fits in 64 bits and must not be treated as saturated.
  EXPECT_EQ(SaturatingBinomial(64, 32), 1832624140942590534ull);
}

TEST(MathTest, LogBinomialMatchesExact) {
  EXPECT_NEAR(LogBinomial(10, 3), std::log(120.0), 1e-9);
  EXPECT_NEAR(LogBinomial(40, 20), std::log(137846528820.0), 1e-6);
}

TEST(MathTest, KlBernoulliBasics) {
  EXPECT_DOUBLE_EQ(KlBernoulli(0.3, 0.3), 0.0);
  EXPECT_GT(KlBernoulli(0.3, 0.2), 0.0);
  EXPECT_GT(KlBernoulli(0.3, 0.4), 0.0);
  // Known closed form: D(0||q) = -ln(1-q).
  EXPECT_NEAR(KlBernoulli(0.0, 0.5), -std::log(0.5), 1e-12);
  EXPECT_TRUE(std::isinf(KlBernoulli(0.5, 0.0)));
  EXPECT_TRUE(std::isinf(KlBernoulli(0.5, 1.0)));
}

TEST(MathTest, KlBernoulliDominatesQuadraticBound) {
  // Pinsker-style: D(p || p - e) >= 2 e^2.
  for (double p : {0.1, 0.3, 0.5, 0.9}) {
    for (double e : {0.01, 0.05}) {
      EXPECT_GE(KlBernoulli(p, p - e), 2 * e * e);
    }
  }
}

TEST(MathTest, HoeffdingSampleSize) {
  // 2 exp(-2 s eps^2) <= delta at the returned s, and not at s - 1.
  for (double eps : {0.1, 0.01}) {
    for (double delta : {0.1, 1e-4}) {
      std::uint64_t s = HoeffdingSampleSize(eps, delta);
      EXPECT_LE(2 * std::exp(-2.0 * static_cast<double>(s) * eps * eps),
                delta);
      EXPECT_GT(
          2 * std::exp(-2.0 * static_cast<double>(s - 1) * eps * eps),
          delta);
    }
  }
}

TEST(MathTest, HoeffdingQuadraticInEps) {
  std::uint64_t s1 = HoeffdingSampleSize(0.01, 1e-4);
  std::uint64_t s2 = HoeffdingSampleSize(0.001, 1e-4);
  // eps/10 should cost ~100x.
  EXPECT_NEAR(static_cast<double>(s2) / static_cast<double>(s1), 100.0, 1.0);
}

TEST(MathTest, SteinSampleSizeSatisfiesCondition) {
  for (double phi : {0.01, 0.05, 0.2}) {
    for (double eps : {0.002, 0.005}) {
      if (eps > phi) continue;
      for (double delta : {0.01, 1e-4}) {
        double s = static_cast<double>(SteinSampleSize(phi, eps, delta));
        double fail = std::exp(-s * KlBernoulli(phi, phi - eps)) +
                      std::exp(-s * KlBernoulli(phi, phi + eps));
        EXPECT_LE(fail, delta * (1.0 + 1e-9));
      }
    }
  }
}

TEST(MathTest, SteinBeatsHoeffdingForExtremeQuantiles) {
  // The whole point of Section 7: for small phi the KL-based sample size is
  // far below the Hoeffding one at the same (eps, delta).
  std::uint64_t stein = SteinSampleSize(0.01, 0.005, 1e-4);
  std::uint64_t hoeffding = HoeffdingSampleSize(0.005, 1e-4);
  EXPECT_LT(stein * 10, hoeffding);
}

TEST(MathTest, NextPow2) {
  EXPECT_EQ(NextPow2(1), 1u);
  EXPECT_EQ(NextPow2(2), 2u);
  EXPECT_EQ(NextPow2(3), 4u);
  EXPECT_EQ(NextPow2(1000), 1024u);
  EXPECT_TRUE(IsPow2(64));
  EXPECT_FALSE(IsPow2(65));
  EXPECT_FALSE(IsPow2(0));
}

// ---------------------------------------------------------------- Random

TEST(RandomTest, DeterministicFromSeed) {
  Random a(123), b(123), c(124);
  bool all_equal = true;
  bool any_diff_seed_differs = false;
  for (int i = 0; i < 100; ++i) {
    std::uint64_t va = a.NextUint64();
    all_equal = all_equal && (va == b.NextUint64());
    any_diff_seed_differs = any_diff_seed_differs || (va != c.NextUint64());
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_seed_differs);
}

TEST(RandomTest, UniformUint64StaysInRange) {
  Random rng(7);
  for (std::uint64_t n : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.UniformUint64(n), n);
    }
  }
}

TEST(RandomTest, UniformUint64IsRoughlyUniform) {
  Random rng(99);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.UniformUint64(kBuckets)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 500);  // ~5 sigma
  }
}

TEST(RandomTest, UniformDoubleInUnitInterval) {
  Random rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.UniformDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RandomTest, BernoulliEdgesAndMean) {
  Random rng(11);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RandomTest, GaussianMoments) {
  Random rng(13);
  double sum = 0, sum2 = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.03);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.05);
}

TEST(RandomTest, ExponentialMean) {
  Random rng(17);
  double sum = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(RandomTest, ForkProducesIndependentStream) {
  Random a(21);
  Random b = a.Fork();
  // Forked stream should not replay the parent's output.
  Random a2(21);
  a2.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 3);
}

// ---------------------------------------------------------------- KBest

TEST(KBestTest, KeepsSmallest) {
  KBest heap(3);
  for (Value v : {5.0, 1.0, 9.0, 3.0, 7.0, 2.0}) heap.Push(v);
  EXPECT_EQ(heap.size(), 3u);
  EXPECT_TRUE(heap.full());
  EXPECT_DOUBLE_EQ(heap.Worst(), 3.0);  // largest of {1, 2, 3}
  std::vector<Value> sorted = heap.SortedFromExtreme();
  EXPECT_EQ(sorted, (std::vector<Value>{1.0, 2.0, 3.0}));
}

TEST(KBestTest, KeepsLargest) {
  KBest heap(2, /*keep_largest=*/true);
  for (Value v : {5.0, 1.0, 9.0, 3.0}) heap.Push(v);
  EXPECT_DOUBLE_EQ(heap.Worst(), 5.0);  // smallest of {9, 5}
  EXPECT_EQ(heap.SortedFromExtreme(), (std::vector<Value>{9.0, 5.0}));
}

TEST(KBestTest, PushReportsRetention) {
  KBest heap(2);
  EXPECT_TRUE(heap.Push(10.0));
  EXPECT_TRUE(heap.Push(20.0));
  EXPECT_FALSE(heap.Push(30.0));  // worse than both
  EXPECT_TRUE(heap.Push(5.0));    // evicts 20
  EXPECT_DOUBLE_EQ(heap.Worst(), 10.0);
}

TEST(KBestTest, FilterRebuildsHeap) {
  KBest heap(4);
  for (Value v : {4.0, 2.0, 3.0, 1.0}) heap.Push(v);
  heap.Filter([](Value v) { return v <= 2.0; });
  EXPECT_EQ(heap.size(), 2u);
  EXPECT_DOUBLE_EQ(heap.Worst(), 2.0);
  heap.Push(0.5);
  EXPECT_EQ(heap.SortedFromExtreme(), (std::vector<Value>{0.5, 1.0, 2.0}));
}

TEST(KBestTest, DuplicatesAreKept) {
  KBest heap(3);
  for (Value v : {2.0, 2.0, 2.0, 1.0}) heap.Push(v);
  EXPECT_EQ(heap.SortedFromExtreme(), (std::vector<Value>{1.0, 2.0, 2.0}));
}

}  // namespace
}  // namespace mrl
