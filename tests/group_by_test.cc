#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "app/group_by.h"
#include "stream/generator.h"

namespace mrl {
namespace {

TEST(GroupByTest, RejectsZeroMaxGroups) {
  GroupByQuantiles::Options options;
  options.max_groups = 0;
  EXPECT_FALSE(GroupByQuantiles::Create(options).ok());
}

TEST(GroupByTest, UnknownGroupIsNotFound) {
  GroupByQuantiles::Options options;
  options.eps = 0.05;
  GroupByQuantiles gb = std::move(GroupByQuantiles::Create(options)).value();
  gb.Add(1, 10.0);
  EXPECT_EQ(gb.Query(2, 0.5).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(gb.GroupCount(2), 0u);
}

TEST(GroupByTest, GroupsAreIndependent) {
  GroupByQuantiles::Options options;
  options.eps = 0.02;
  options.seed = 3;
  GroupByQuantiles gb = std::move(GroupByQuantiles::Create(options)).value();
  // Group g's values live around 1000 * g; medians must separate cleanly.
  Random rng(5);
  for (int round = 0; round < 30'000; ++round) {
    for (std::int64_t g = 0; g < 4; ++g) {
      gb.Add(g, 1000.0 * static_cast<double>(g) + rng.UniformDouble());
    }
  }
  EXPECT_EQ(gb.num_groups(), 4u);
  for (std::int64_t g = 0; g < 4; ++g) {
    EXPECT_EQ(gb.GroupCount(g), 30'000u);
    Value med = gb.Query(g, 0.5).value();
    EXPECT_NEAR(med, 1000.0 * static_cast<double>(g) + 0.5, 0.05)
        << "group " << g;
  }
}

TEST(GroupByTest, PerGroupAccuracyMatchesGroundTruth) {
  GroupByQuantiles::Options options;
  options.eps = 0.02;
  options.delta = 1e-3;
  options.seed = 7;
  GroupByQuantiles gb = std::move(GroupByQuantiles::Create(options)).value();
  std::vector<std::vector<Value>> per_group(3);
  Random rng(9);
  for (int i = 0; i < 90'000; ++i) {
    std::int64_t g = static_cast<std::int64_t>(rng.UniformUint64(3));
    Value v = rng.Gaussian() * (1.0 + static_cast<double>(g));
    gb.Add(g, v);
    per_group[static_cast<std::size_t>(g)].push_back(v);
  }
  for (std::int64_t g = 0; g < 3; ++g) {
    Dataset ds(per_group[static_cast<std::size_t>(g)]);
    for (double phi : {0.1, 0.5, 0.9}) {
      Value est = gb.Query(g, phi).value();
      EXPECT_LE(ds.QuantileError(est, phi), options.eps)
          << "group " << g << " phi " << phi;
    }
  }
}

TEST(GroupByTest, MemoryScalesLinearlyInGroups) {
  GroupByQuantiles::Options options;
  options.eps = 0.05;
  GroupByQuantiles gb = std::move(GroupByQuantiles::Create(options)).value();
  gb.Add(1, 1.0);
  std::uint64_t one = gb.MemoryElements();
  for (std::int64_t g = 2; g <= 10; ++g) gb.Add(g, 1.0);
  EXPECT_EQ(gb.MemoryElements(), 10 * one);
}

TEST(GroupByTest, MaxGroupsCapDropsNewGroupsOnly) {
  GroupByQuantiles::Options options;
  options.eps = 0.05;
  options.max_groups = 2;
  GroupByQuantiles gb = std::move(GroupByQuantiles::Create(options)).value();
  gb.Add(1, 1.0);
  gb.Add(2, 2.0);
  gb.Add(3, 3.0);  // dropped: cap reached
  gb.Add(1, 4.0);  // existing group still accepts
  EXPECT_EQ(gb.num_groups(), 2u);
  EXPECT_EQ(gb.dropped_rows(), 1u);
  EXPECT_EQ(gb.GroupCount(1), 2u);
  EXPECT_EQ(gb.Query(3, 0.5).status().code(), StatusCode::kNotFound);
}

TEST(GroupByTest, KeysEnumeratesAllGroups) {
  GroupByQuantiles::Options options;
  options.eps = 0.05;
  GroupByQuantiles gb = std::move(GroupByQuantiles::Create(options)).value();
  for (std::int64_t g : {7, -3, 0, 42}) gb.Add(g, 1.0);
  std::vector<std::int64_t> keys = gb.Keys();
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(keys, (std::vector<std::int64_t>{-3, 0, 7, 42}));
}

}  // namespace
}  // namespace mrl
