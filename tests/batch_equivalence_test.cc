// Property tests for the batch ingestion path: for ANY partition of a
// stream into batches — including random split points and rate changes at
// block boundaries — AddBatch must leave bit-identical state and produce
// bit-identical answers to element-wise Add under the same seed. The
// equivalence is exact, not statistical: the sampler draws its pick offset
// once per block at the block's first element, so RNG consumption depends
// only on the stream position, never on the chunking.

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "app/equidepth_histogram.h"
#include "app/online_aggregation.h"
#include "app/selectivity.h"
#include "core/det_reservoir.h"
#include "core/estimator.h"
#include "core/extreme.h"
#include "core/int64_sketch.h"
#include "core/kll.h"
#include "core/known_n.h"
#include "core/sharded.h"
#include "core/unknown_n.h"
#include "sampling/block_sampler.h"
#include "stream/generator.h"
#include "util/random.h"

namespace mrl {
namespace {

// Splits [0, n) into random-length chunks drawn from `rng` (chunk lengths
// 0..max_chunk inclusive, so empty batches are exercised too).
std::vector<std::size_t> RandomSplits(std::size_t n, std::size_t max_chunk,
                                      Random* rng) {
  std::vector<std::size_t> sizes;
  std::size_t used = 0;
  while (used < n) {
    std::size_t take = static_cast<std::size_t>(
        rng->UniformUint64(static_cast<std::uint64_t>(max_chunk) + 1));
    if (take > n - used) take = n - used;
    sizes.push_back(take);
    used += take;
  }
  return sizes;
}

void ExpectSamplerStatesEqual(const BlockSampler& a, const BlockSampler& b) {
  BlockSampler::State sa = a.SaveState();
  BlockSampler::State sb = b.SaveState();
  EXPECT_EQ(sa.rng.state, sb.rng.state);
  EXPECT_EQ(sa.rng.inc, sb.rng.inc);
  EXPECT_EQ(sa.rate, sb.rate);
  EXPECT_EQ(sa.seen_in_block, sb.seen_in_block);
  EXPECT_EQ(sa.pick_offset, sb.pick_offset);
  EXPECT_EQ(sa.candidate, sb.candidate);
}

// ------------------------------------------------------------ BlockSampler

TEST(BatchEquivalenceTest, BlockSamplerRandomSplits) {
  Random splitter(99);
  for (Weight rate : {Weight{1}, Weight{2}, Weight{3}, Weight{8},
                      Weight{64}, Weight{1000}}) {
    for (int trial = 0; trial < 5; ++trial) {
      StreamSpec spec;
      spec.n = 4096 + static_cast<std::size_t>(splitter.UniformUint64(512));
      spec.seed = 100 + static_cast<std::uint64_t>(trial);
      std::vector<Value> stream = GenerateStream(spec).values();

      const std::uint64_t sampler_seed = 7 * rate + trial;
      BlockSampler elementwise(Random(sampler_seed), rate);
      BlockSampler batched(Random(sampler_seed), rate);

      std::vector<Value> out_elementwise;
      for (Value v : stream) {
        if (auto s = elementwise.Add(v)) out_elementwise.push_back(*s);
      }

      std::vector<Value> out_batched;
      std::size_t pos = 0;
      for (std::size_t chunk : RandomSplits(stream.size(), 200, &splitter)) {
        batched.AddBatch(stream.data() + pos, chunk, out_batched);
        pos += chunk;
      }

      ASSERT_EQ(out_elementwise.size(), out_batched.size())
          << "rate " << rate << " trial " << trial;
      for (std::size_t i = 0; i < out_elementwise.size(); ++i) {
        ASSERT_EQ(out_elementwise[i], out_batched[i]) << "survivor " << i;
      }
      ExpectSamplerStatesEqual(elementwise, batched);
    }
  }
}

TEST(BatchEquivalenceTest, BlockSamplerRateChangesAtBoundaries) {
  // Feed segments whose lengths are multiples of the current rate, doubling
  // the rate at each (guaranteed) block boundary — the unknown-N usage.
  Random splitter(5);
  const std::uint64_t sampler_seed = 42;
  BlockSampler elementwise(Random(sampler_seed), 1);
  BlockSampler batched(Random(sampler_seed), 1);
  std::vector<Value> out_elementwise, out_batched;

  Value next_value = 0;
  Weight rate = 1;
  for (int segment = 0; segment < 8; ++segment) {
    const std::size_t blocks =
        1 + static_cast<std::size_t>(splitter.UniformUint64(5));
    std::vector<Value> seg;
    for (std::size_t i = 0; i < blocks * rate; ++i) seg.push_back(next_value++);

    for (Value v : seg) {
      if (auto s = elementwise.Add(v)) out_elementwise.push_back(*s);
    }
    std::size_t pos = 0;
    for (std::size_t chunk : RandomSplits(seg.size(), 2 * rate, &splitter)) {
      batched.AddBatch(seg.data() + pos, chunk, out_batched);
      pos += chunk;
    }
    ExpectSamplerStatesEqual(elementwise, batched);

    ASSERT_TRUE(elementwise.at_block_boundary());
    ASSERT_TRUE(batched.at_block_boundary());
    rate *= 2;
    elementwise.SetRate(rate);
    batched.SetRate(rate);
  }
  EXPECT_EQ(out_elementwise, out_batched);
}

// ----------------------------------------------------------- UnknownNSketch

UnknownNSketch MakeUnknownN(std::uint64_t seed, bool small_params) {
  UnknownNOptions options;
  options.seed = seed;
  if (small_params) {
    // Tiny forced parameters: collapses and sampling-rate doublings happen
    // every few hundred elements, exercising the batch path's interaction
    // with StartNewFill/CommitFull constantly.
    UnknownNParams p;
    p.b = 4;
    p.k = 32;
    p.h = 2;
    p.alpha = 0.5;
    options.params = p;
  } else {
    options.eps = 0.02;
    options.delta = 1e-3;
  }
  return std::move(UnknownNSketch::Create(options)).value();
}

TEST(BatchEquivalenceTest, UnknownNSketchBitIdenticalState) {
  Random splitter(17);
  for (bool small_params : {true, false}) {
    for (int trial = 0; trial < 4; ++trial) {
      StreamSpec spec;
      spec.distribution = trial % 2 == 0 ? "uniform" : "gaussian";
      spec.n = 20000 + static_cast<std::size_t>(splitter.UniformUint64(5000));
      spec.seed = 300 + static_cast<std::uint64_t>(trial);
      std::vector<Value> stream = GenerateStream(spec).values();

      UnknownNSketch elementwise = MakeUnknownN(9 + trial, small_params);
      UnknownNSketch batched = MakeUnknownN(9 + trial, small_params);

      for (Value v : stream) elementwise.Add(v);
      std::size_t pos = 0;
      for (std::size_t chunk : RandomSplits(stream.size(), 700, &splitter)) {
        batched.AddBatch(
            std::span<const Value>(stream.data() + pos, chunk));
        pos += chunk;
      }

      // Strongest possible equivalence: the full checkpoint encodings —
      // parameters, counters, sampler (with RNG state and in-flight
      // block), and every buffer — must agree byte for byte.
      EXPECT_EQ(elementwise.Serialize(), batched.Serialize())
          << "small=" << small_params << " trial " << trial;
      EXPECT_EQ(elementwise.count(), batched.count());
      EXPECT_EQ(elementwise.sampling_rate(), batched.sampling_rate());
      EXPECT_EQ(elementwise.tree_stats().num_collapses,
                batched.tree_stats().num_collapses);
      EXPECT_EQ(elementwise.tree_stats().leaves_created,
                batched.tree_stats().leaves_created);
      EXPECT_EQ(elementwise.tree_stats().max_level,
                batched.tree_stats().max_level);

      const std::vector<double> phis = {0.01, 0.1, 0.25, 0.5,
                                        0.75, 0.9, 0.99};
      auto qa = elementwise.QueryMany(phis);
      auto qb = batched.QueryMany(phis);
      ASSERT_TRUE(qa.ok());
      ASSERT_TRUE(qb.ok());
      EXPECT_EQ(qa.value(), qb.value());
    }
  }
}

TEST(BatchEquivalenceTest, UnknownNSketchSingleGiantBatch) {
  StreamSpec spec;
  spec.n = 50000;
  spec.seed = 11;
  std::vector<Value> stream = GenerateStream(spec).values();

  UnknownNSketch elementwise = MakeUnknownN(3, /*small_params=*/true);
  UnknownNSketch batched = MakeUnknownN(3, /*small_params=*/true);
  for (Value v : stream) elementwise.Add(v);
  batched.AddBatch(stream);
  EXPECT_EQ(elementwise.Serialize(), batched.Serialize());
}

// ------------------------------------------------------------- KnownNSketch

TEST(BatchEquivalenceTest, KnownNSketchBitIdenticalState) {
  Random splitter(23);
  StreamSpec spec;
  spec.n = 30000;
  spec.seed = 4;
  std::vector<Value> stream = GenerateStream(spec).values();

  KnownNOptions options;
  options.eps = 0.01;
  options.delta = 1e-4;
  options.n = std::uint64_t{1} << 30;  // sampling active (rate > 1)
  options.seed = 5;
  KnownNSketch elementwise = std::move(KnownNSketch::Create(options)).value();
  KnownNSketch batched = std::move(KnownNSketch::Create(options)).value();
  ASSERT_GT(elementwise.params().rate, 1u);

  for (Value v : stream) elementwise.Add(v);
  std::size_t pos = 0;
  for (std::size_t chunk : RandomSplits(stream.size(), 997, &splitter)) {
    batched.AddBatch(std::span<const Value>(stream.data() + pos, chunk));
    pos += chunk;
  }
  EXPECT_EQ(elementwise.Serialize(), batched.Serialize());
}

// ------------------------------------------------------- Int64QuantileSketch

TEST(BatchEquivalenceTest, Int64SketchBatchValidateAndConvert) {
  Random splitter(31);
  std::vector<std::int64_t> stream;
  for (int i = 0; i < 20000; ++i) {
    std::int64_t v =
        static_cast<std::int64_t>(splitter.UniformUint64(1000000)) - 500000;
    if (i % 997 == 0) v = Int64QuantileSketch::kMaxMagnitude + 1;  // rejected
    if (i % 1499 == 0) v = -Int64QuantileSketch::kMaxMagnitude - 7;
    stream.push_back(v);
  }

  Int64QuantileSketch::Options options;
  options.seed = 77;
  Int64QuantileSketch elementwise =
      std::move(Int64QuantileSketch::Create(options)).value();
  Int64QuantileSketch batched =
      std::move(Int64QuantileSketch::Create(options)).value();

  std::size_t accepted_elementwise = 0;
  for (std::int64_t v : stream) {
    if (elementwise.Add(v)) ++accepted_elementwise;
  }
  std::size_t accepted_batched = 0;
  std::size_t pos = 0;
  for (std::size_t chunk : RandomSplits(stream.size(), 512, &splitter)) {
    accepted_batched += batched.AddBatch(
        std::span<const std::int64_t>(stream.data() + pos, chunk));
    pos += chunk;
  }

  EXPECT_EQ(accepted_elementwise, accepted_batched);
  EXPECT_EQ(elementwise.count(), batched.count());
  EXPECT_EQ(elementwise.rejected_count(), batched.rejected_count());
  const std::vector<double> phis = {0.05, 0.5, 0.95};
  EXPECT_EQ(elementwise.QueryMany(phis).value(),
            batched.QueryMany(phis).value());
}

// ---------------------------------------------------- ShardedQuantileSketch

TEST(BatchEquivalenceTest, ShardedSketchPerShardBatches) {
  Random splitter(41);
  StreamSpec spec;
  spec.n = 24000;
  spec.seed = 6;
  std::vector<Value> stream = GenerateStream(spec).values();

  ShardedQuantileSketch::Options options;
  options.num_shards = 3;
  options.seed = 13;
  ShardedQuantileSketch elementwise =
      std::move(ShardedQuantileSketch::Create(options)).value();
  ShardedQuantileSketch batched =
      std::move(ShardedQuantileSketch::Create(options)).value();

  // Round-robin in runs so the batch path can route whole spans: shard s
  // receives identical subsequences in both sketches.
  std::size_t pos = 0;
  int shard = 0;
  for (std::size_t chunk : RandomSplits(stream.size(), 300, &splitter)) {
    for (std::size_t i = 0; i < chunk; ++i) {
      elementwise.Add(shard, stream[pos + i]);
    }
    batched.AddBatch(shard,
                     std::span<const Value>(stream.data() + pos, chunk));
    pos += chunk;
    shard = (shard + 1) % options.num_shards;
  }

  EXPECT_EQ(elementwise.count(), batched.count());
  for (int s = 0; s < options.num_shards; ++s) {
    EXPECT_EQ(elementwise.shard(s).Serialize(), batched.shard(s).Serialize())
        << "shard " << s;
  }
  const std::vector<double> phis = {0.1, 0.5, 0.9};
  EXPECT_EQ(elementwise.QueryMany(phis).value(),
            batched.QueryMany(phis).value());
}

// ------------------------------------------------------------------- Apps

TEST(BatchEquivalenceTest, OnlineAggregatorHistoryMatches) {
  Random splitter(53);
  StreamSpec spec;
  spec.n = 25000;
  spec.seed = 8;
  std::vector<Value> stream = GenerateStream(spec).values();

  OnlineAggregator::Options options;
  options.report_every = 1000;
  options.seed = 21;
  OnlineAggregator elementwise =
      std::move(OnlineAggregator::Create(options)).value();
  OnlineAggregator batched =
      std::move(OnlineAggregator::Create(options)).value();

  for (Value v : stream) elementwise.Add(v);
  std::size_t pos = 0;
  for (std::size_t chunk : RandomSplits(stream.size(), 2600, &splitter)) {
    batched.AddBatch(std::span<const Value>(stream.data() + pos, chunk));
    pos += chunk;
  }

  ASSERT_EQ(elementwise.history().size(), batched.history().size());
  for (std::size_t i = 0; i < elementwise.history().size(); ++i) {
    EXPECT_EQ(elementwise.history()[i].rows_seen,
              batched.history()[i].rows_seen);
    EXPECT_EQ(elementwise.history()[i].estimates,
              batched.history()[i].estimates);
  }
}

TEST(BatchEquivalenceTest, EquiDepthHistogramMatches) {
  StreamSpec spec;
  spec.distribution = "exponential";
  spec.n = 15000;
  spec.seed = 9;
  std::vector<Value> stream = GenerateStream(spec).values();

  EquiDepthHistogram::Options options;
  options.num_buckets = 8;
  options.seed = 33;
  EquiDepthHistogram elementwise =
      std::move(EquiDepthHistogram::Create(options)).value();
  EquiDepthHistogram batched =
      std::move(EquiDepthHistogram::Create(options)).value();

  for (Value v : stream) elementwise.Add(v);
  batched.AddBatch(stream);

  EXPECT_EQ(elementwise.Boundaries().value(), batched.Boundaries().value());
  auto ba = elementwise.Buckets().value();
  auto bb = batched.Buckets().value();
  ASSERT_EQ(ba.size(), bb.size());
  for (std::size_t i = 0; i < ba.size(); ++i) {
    EXPECT_EQ(ba[i].lo, bb[i].lo);
    EXPECT_EQ(ba[i].hi, bb[i].hi);
  }
}

TEST(BatchEquivalenceTest, SelectivityEstimatorMatches) {
  StreamSpec spec;
  spec.n = 12000;
  spec.seed = 10;
  std::vector<Value> stream = GenerateStream(spec).values();

  SelectivityEstimator::Options options;
  options.seed = 44;
  SelectivityEstimator elementwise =
      std::move(SelectivityEstimator::Create(options)).value();
  SelectivityEstimator batched =
      std::move(SelectivityEstimator::Create(options)).value();

  for (Value v : stream) elementwise.Add(v);
  batched.AddBatch(stream);

  EXPECT_EQ(elementwise.count(), batched.count());
  for (Value c : {0.1, 0.5, 0.9}) {
    EXPECT_EQ(elementwise.LessOrEqual(c).value(),
              batched.LessOrEqual(c).value());
  }
}

// --------------------------------------------- interface-level backend sweep

// Every registry-instantiable backend, driven purely through the
// QuantileEstimator interface: AddBatch over ANY chunking must leave
// bit-identical serialized state to element-wise Add. This is the contract
// the server's batch ingestion path (registry AddBatch) relies on.
TEST(BatchEquivalenceTest, EveryBackendAddBatchBitIdenticalToAdd) {
  struct Backend {
    const char* name;
    std::function<std::unique_ptr<QuantileEstimator>(std::uint64_t)> make;
  };
  std::vector<Backend> backends;
  backends.push_back({"unknown_n", [](std::uint64_t seed) {
    UnknownNOptions options;
    options.eps = 0.05;
    options.delta = 1e-3;
    options.seed = seed;
    return std::unique_ptr<QuantileEstimator>(new UnknownNSketch(
        std::move(UnknownNSketch::Create(options)).value()));
  }});
  backends.push_back({"known_n", [](std::uint64_t seed) {
    KnownNOptions options;
    options.eps = 0.02;
    options.delta = 1e-3;
    options.n = std::uint64_t{1} << 20;
    options.seed = seed;
    return std::unique_ptr<QuantileEstimator>(
        new KnownNSketch(std::move(KnownNSketch::Create(options)).value()));
  }});
  backends.push_back({"sharded", [](std::uint64_t seed) {
    ShardedQuantileSketch::Options options;
    options.eps = 0.05;
    options.delta = 1e-3;
    options.num_shards = 3;
    options.seed = seed;
    return std::unique_ptr<QuantileEstimator>(new ShardedQuantileSketch(
        std::move(ShardedQuantileSketch::Create(options)).value()));
  }});
  backends.push_back({"extreme_value", [](std::uint64_t seed) {
    ExtremeValueOptions options;
    options.phi = 0.05;
    options.eps = 0.01;
    options.delta = 1e-3;
    options.n = 100000;
    options.seed = seed;
    return std::unique_ptr<QuantileEstimator>(new ExtremeValueSketch(
        std::move(ExtremeValueSketch::Create(options)).value()));
  }});
  backends.push_back({"kll", [](std::uint64_t seed) {
    KllOptions options;
    options.eps = 0.02;
    options.delta = 1e-3;
    options.seed = seed;
    return std::unique_ptr<QuantileEstimator>(
        new KllSketch(std::move(KllSketch::Create(options)).value()));
  }});
  backends.push_back({"det_reservoir", [](std::uint64_t seed) {
    DetReservoirOptions options;
    options.eps = 0.02;
    options.delta = 1e-3;
    options.seed = seed;
    return std::unique_ptr<QuantileEstimator>(new DeterministicReservoirSketch(
        std::move(DeterministicReservoirSketch::Create(options)).value()));
  }});

  Random splitter(61);
  for (const Backend& backend : backends) {
    SCOPED_TRACE(backend.name);
    for (int trial = 0; trial < 3; ++trial) {
      StreamSpec spec;
      spec.distribution = trial % 2 == 0 ? "uniform" : "gaussian";
      spec.n = 25000 + static_cast<std::size_t>(splitter.UniformUint64(5000));
      spec.seed = 500 + static_cast<std::uint64_t>(trial);
      const std::vector<Value> stream = GenerateStream(spec).values();

      std::unique_ptr<QuantileEstimator> elementwise =
          backend.make(9 + static_cast<std::uint64_t>(trial));
      std::unique_ptr<QuantileEstimator> batched =
          backend.make(9 + static_cast<std::uint64_t>(trial));

      for (Value v : stream) elementwise->Add(v);
      std::size_t pos = 0;
      for (std::size_t chunk : RandomSplits(stream.size(), 800, &splitter)) {
        batched->AddBatch(
            std::span<const Value>(stream.data() + pos, chunk));
        pos += chunk;
      }

      EXPECT_EQ(elementwise->count(), batched->count()) << "trial " << trial;
      EXPECT_EQ(elementwise->Serialize(), batched->Serialize())
          << "trial " << trial;
    }
  }
}

// ---------------------------------------------------- validation regression

TEST(BatchEquivalenceDeathTest, BlockSamplerRejectsRateZero) {
  EXPECT_DEATH(BlockSampler(Random(1), /*rate=*/0), "rate");
  BlockSampler sampler(Random(1), 2);
  EXPECT_DEATH(sampler.SetRate(0), "rate");
}

TEST(BatchEquivalenceTest, ShardedCreateRejectsZeroShards) {
  ShardedQuantileSketch::Options options;
  options.num_shards = 0;
  Result<ShardedQuantileSketch> r = ShardedQuantileSketch::Create(options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  options.num_shards = -3;
  EXPECT_EQ(ShardedQuantileSketch::Create(options).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace mrl
