// Cross-backend differential tests: every registry-instantiable backend,
// driven purely through the QuantileEstimator interface, raced against an
// exact sorted baseline on adversarial input orders — pre-sorted, reverse
// sorted, Zipf-like duplicate-heavy, three-valued, and IEEE specials
// (+/-inf and +/-0.0 mixed into normals). An answer passes when the rank
// band it covers in the sorted stream intersects [phi - eps, phi + eps].
//
// Also covers the merge contracts of the two PR 6 backends: KLL level-wise
// merge (accuracy preserved, k/type mismatches rejected) and the
// deterministic reservoir's collision-exact merge (equal-seed requirement,
// determinism of the merged state).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/det_reservoir.h"
#include "core/estimator.h"
#include "core/kll.h"
#include "core/known_n.h"
#include "core/sharded.h"
#include "core/unknown_n.h"
#include "util/random.h"

namespace mrl {
namespace {

constexpr double kEps = 0.02;
constexpr double kDelta = 1e-4;
constexpr std::size_t kStreamLen = 40000;

struct NamedStream {
  std::string name;
  std::vector<Value> values;
};

std::vector<NamedStream> AdversarialStreams(std::size_t n) {
  Random rng(2024);
  std::vector<NamedStream> streams;

  NamedStream uniform{"uniform_shuffled", {}};
  uniform.values.resize(n);
  for (Value& v : uniform.values) v = rng.UniformDouble(-1e6, 1e6);
  streams.push_back(uniform);

  NamedStream sorted{"sorted_ascending", uniform.values};
  std::sort(sorted.values.begin(), sorted.values.end());
  streams.push_back(sorted);

  NamedStream reversed{"sorted_descending", sorted.values};
  std::reverse(reversed.values.begin(), reversed.values.end());
  streams.push_back(std::move(reversed));

  // Log-uniform over [1, 1000]: heavy duplication of small integers, the
  // classic Zipf-like frequency skew.
  NamedStream zipf{"zipf_duplicates", {}};
  zipf.values.resize(n);
  for (Value& v : zipf.values) {
    v = std::floor(std::exp(rng.UniformDouble() * std::log(1000.0)));
  }
  streams.push_back(std::move(zipf));

  // Only three distinct values: every quantile answer covers a huge rank
  // band, and ties dominate every compaction / collapse decision.
  NamedStream three{"three_distinct_values", {}};
  three.values.resize(n);
  for (Value& v : three.values) {
    const std::uint64_t r = rng.UniformUint64(10);
    v = r < 6 ? 1.0 : (r < 9 ? 2.0 : 3.0);
  }
  streams.push_back(std::move(three));

  // IEEE specials: infinities at the tails, signed zeros mid-stream.
  NamedStream specials{"ieee_specials", {}};
  specials.values.resize(n);
  for (Value& v : specials.values) {
    const std::uint64_t r = rng.UniformUint64(100);
    if (r < 2) {
      v = std::numeric_limits<Value>::infinity();
    } else if (r < 4) {
      v = -std::numeric_limits<Value>::infinity();
    } else if (r < 14) {
      v = 0.0;
    } else if (r < 24) {
      v = -0.0;
    } else {
      v = rng.UniformDouble(-1.0, 1.0);
    }
  }
  streams.push_back(std::move(specials));

  return streams;
}

/// Checks that the rank band `answer` covers in `sorted` intersects
/// [phi - eps, phi + eps]. With duplicates an answer covers a band, not a
/// point, so both edges get the tolerance.
void ExpectWithinEps(const std::vector<Value>& sorted, Value answer,
                     double phi, double eps) {
  const double n = static_cast<double>(sorted.size());
  const double rank_lo = static_cast<double>(
      std::lower_bound(sorted.begin(), sorted.end(), answer) -
      sorted.begin()) / n;
  const double rank_hi = static_cast<double>(
      std::upper_bound(sorted.begin(), sorted.end(), answer) -
      sorted.begin()) / n;
  EXPECT_LE(rank_lo - eps, phi)
      << "answer " << answer << " sits entirely above phi=" << phi;
  EXPECT_GE(rank_hi + eps, phi)
      << "answer " << answer << " sits entirely below phi=" << phi;
}

struct Backend {
  const char* name;
  std::function<std::unique_ptr<QuantileEstimator>(std::uint64_t)> make;
};

std::vector<Backend> RegistryBackends() {
  std::vector<Backend> backends;
  backends.push_back({"unknown_n", [](std::uint64_t seed) {
    UnknownNOptions options;
    options.eps = kEps;
    options.delta = kDelta;
    options.seed = seed;
    return std::unique_ptr<QuantileEstimator>(new UnknownNSketch(
        std::move(UnknownNSketch::Create(options)).value()));
  }});
  backends.push_back({"known_n", [](std::uint64_t seed) {
    KnownNOptions options;
    options.eps = kEps;
    options.delta = kDelta;
    options.n = kStreamLen;
    options.seed = seed;
    return std::unique_ptr<QuantileEstimator>(
        new KnownNSketch(std::move(KnownNSketch::Create(options)).value()));
  }});
  backends.push_back({"sharded", [](std::uint64_t seed) {
    ShardedQuantileSketch::Options options;
    options.eps = kEps;
    options.delta = kDelta;
    options.num_shards = 4;
    options.seed = seed;
    return std::unique_ptr<QuantileEstimator>(new ShardedQuantileSketch(
        std::move(ShardedQuantileSketch::Create(options)).value()));
  }});
  backends.push_back({"kll", [](std::uint64_t seed) {
    KllOptions options;
    options.eps = kEps;
    options.delta = kDelta;
    options.seed = seed;
    return std::unique_ptr<QuantileEstimator>(
        new KllSketch(std::move(KllSketch::Create(options)).value()));
  }});
  backends.push_back({"det_reservoir", [](std::uint64_t seed) {
    DetReservoirOptions options;
    options.eps = kEps;
    options.delta = kDelta;
    options.seed = seed;
    return std::unique_ptr<QuantileEstimator>(new DeterministicReservoirSketch(
        std::move(DeterministicReservoirSketch::Create(options)).value()));
  }});
  return backends;
}

const std::vector<double> kPhis = {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99};

TEST(BackendDifferentialTest, EveryBackendWithinEpsOnAdversarialOrders) {
  const std::vector<NamedStream> streams = AdversarialStreams(kStreamLen);
  for (const Backend& backend : RegistryBackends()) {
    for (const NamedStream& stream : streams) {
      SCOPED_TRACE(std::string(backend.name) + " on " + stream.name);
      std::unique_ptr<QuantileEstimator> sketch = backend.make(7);
      sketch->AddAll(stream.values);
      ASSERT_EQ(sketch->count(), stream.values.size());

      std::vector<Value> sorted = stream.values;
      std::sort(sorted.begin(), sorted.end());

      Result<std::vector<Value>> query = sketch->QueryMany(kPhis);
      ASSERT_TRUE(query.ok()) << query.status().ToString();
      const std::vector<Value> answers = std::move(query).value();
      ASSERT_EQ(answers.size(), kPhis.size());
      for (std::size_t i = 0; i < kPhis.size(); ++i) {
        SCOPED_TRACE("phi=" + std::to_string(kPhis[i]));
        ExpectWithinEps(sorted, answers[i], kPhis[i], kEps);
      }
    }
  }
}

// The acceptance bar for the KLL backend specifically: observed error must
// stay within the CONFIGURED eps on every adversarial distribution, across
// several seeds — not just the one lucky draw.
TEST(BackendDifferentialTest, KllObservedErrorWithinConfiguredEps) {
  const std::vector<NamedStream> streams = AdversarialStreams(kStreamLen);
  for (std::uint64_t seed : {1ull, 17ull, 404ull}) {
    for (const NamedStream& stream : streams) {
      SCOPED_TRACE(stream.name + " seed=" + std::to_string(seed));
      KllOptions options;
      options.eps = kEps;
      options.delta = kDelta;
      options.seed = seed;
      KllSketch sketch = std::move(KllSketch::Create(options)).value();
      sketch.AddAll(stream.values);

      std::vector<Value> sorted = stream.values;
      std::sort(sorted.begin(), sorted.end());
      for (double phi : kPhis) {
        SCOPED_TRACE("phi=" + std::to_string(phi));
        Result<Value> answer = sketch.Query(phi);
        ASSERT_TRUE(answer.ok()) << answer.status().ToString();
        ExpectWithinEps(sorted, answer.value(), phi, kEps);
      }
    }
  }
}

// ------------------------------------------------------------------- merges

TEST(BackendDifferentialTest, KllMergePreservesAccuracy) {
  Random rng(99);
  std::vector<Value> all(2 * kStreamLen);
  for (Value& v : all) v = rng.UniformDouble(-1e3, 1e3);

  KllOptions options;
  options.eps = kEps;
  options.delta = kDelta;
  options.seed = 3;
  KllSketch left = std::move(KllSketch::Create(options)).value();
  options.seed = 4;
  KllSketch right = std::move(KllSketch::Create(options)).value();
  for (std::size_t i = 0; i < kStreamLen; ++i) left.Add(all[i]);
  for (std::size_t i = kStreamLen; i < all.size(); ++i) right.Add(all[i]);

  ASSERT_TRUE(left.Merge(right).ok());
  EXPECT_EQ(left.count(), all.size());

  std::vector<Value> sorted = all;
  std::sort(sorted.begin(), sorted.end());
  for (double phi : kPhis) {
    SCOPED_TRACE("phi=" + std::to_string(phi));
    Result<Value> answer = left.Query(phi);
    ASSERT_TRUE(answer.ok());
    ExpectWithinEps(sorted, answer.value(), phi, kEps);
  }
}

TEST(BackendDifferentialTest, KllMergeRejectsMismatches) {
  KllOptions options;
  options.eps = kEps;
  options.seed = 1;
  KllSketch a = std::move(KllSketch::Create(options)).value();
  EXPECT_EQ(a.Merge(a).code(), StatusCode::kInvalidArgument);

  options.eps = kEps / 4;  // different k
  KllSketch b = std::move(KllSketch::Create(options)).value();
  ASSERT_NE(a.k(), b.k());
  EXPECT_EQ(a.Merge(b).code(), StatusCode::kFailedPrecondition);

  DetReservoirOptions res_options;
  DeterministicReservoirSketch reservoir =
      std::move(DeterministicReservoirSketch::Create(res_options)).value();
  EXPECT_EQ(a.Merge(reservoir).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(reservoir.Merge(a).code(), StatusCode::kInvalidArgument);
}

TEST(BackendDifferentialTest, DetReservoirMergeIsDeterministicAndAccurate) {
  Random rng(123);
  std::vector<Value> all(2 * kStreamLen);
  for (Value& v : all) v = rng.UniformDouble(0.0, 1.0);

  DetReservoirOptions options;
  options.eps = kEps;
  options.delta = kDelta;
  options.seed = 11;

  auto build_merged = [&]() {
    DeterministicReservoirSketch left =
        std::move(DeterministicReservoirSketch::Create(options)).value();
    DeterministicReservoirSketch right =
        std::move(DeterministicReservoirSketch::Create(options)).value();
    for (std::size_t i = 0; i < kStreamLen; ++i) left.Add(all[i]);
    for (std::size_t i = kStreamLen; i < all.size(); ++i) right.Add(all[i]);
    EXPECT_TRUE(left.Merge(right).ok());
    return left;
  };

  DeterministicReservoirSketch merged = build_merged();
  EXPECT_EQ(merged.count(), all.size());

  // No PRNG state anywhere: rebuilding and re-merging must be bit-identical.
  DeterministicReservoirSketch again = build_merged();
  EXPECT_EQ(merged.Serialize(), again.Serialize());

  // Merged positions collide across the two inputs, so the effective sample
  // halves in the worst case — allow twice the configured tolerance.
  std::vector<Value> sorted = all;
  std::sort(sorted.begin(), sorted.end());
  for (double phi : kPhis) {
    SCOPED_TRACE("phi=" + std::to_string(phi));
    Result<Value> answer = merged.Query(phi);
    ASSERT_TRUE(answer.ok());
    ExpectWithinEps(sorted, answer.value(), phi, 2 * kEps);
  }
}

TEST(BackendDifferentialTest, DetReservoirMergeRequiresEqualSeeds) {
  DetReservoirOptions options;
  options.seed = 1;
  DeterministicReservoirSketch a =
      std::move(DeterministicReservoirSketch::Create(options)).value();
  EXPECT_EQ(a.Merge(a).code(), StatusCode::kInvalidArgument);

  options.seed = 2;
  DeterministicReservoirSketch b =
      std::move(DeterministicReservoirSketch::Create(options)).value();
  EXPECT_EQ(a.Merge(b).code(), StatusCode::kFailedPrecondition);
}

// Backends that opt out of Merge must say so cleanly, not crash.
TEST(BackendDifferentialTest, MergeUnimplementedIsCleanStatus) {
  UnknownNOptions options;
  Result<UnknownNSketch> a = UnknownNSketch::Create(options);
  Result<UnknownNSketch> b = UnknownNSketch::Create(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().Merge(b.value()).code(), StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace mrl
