// SketchRegistry unit tests: tenancy lifecycle, LRU eviction, free-pool
// recycling, and checkpoint/recover (src/server/registry.h).

#include "server/registry.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "core/unknown_n.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace mrl {
namespace server {
namespace {

std::vector<Value> UniformStream(std::size_t n, std::uint64_t seed) {
  Random rng(seed);
  std::vector<Value> values(n);
  for (Value& v : values) v = rng.UniformDouble();
  return values;
}

/// Exact normalized rank of `answer` in `sorted`.
double RankOf(const std::vector<Value>& sorted, Value answer) {
  const auto it = std::upper_bound(sorted.begin(), sorted.end(), answer);
  return static_cast<double>(it - sorted.begin()) /
         static_cast<double>(sorted.size());
}

std::string TempPath(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  std::string path = dir != nullptr ? dir : "/tmp";
  path += '/';
  path += name;
  path += '.';
  path += std::to_string(::getpid());
  return path;
}

TEST(RegistryTest, LifecycleAndErrors) {
  SketchRegistry registry(RegistryOptions{});
  TenantConfig config;

  EXPECT_EQ(registry.Create("bad name!", config).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(registry.Create("t", config).ok());
  EXPECT_EQ(registry.Create("t", config).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(registry.size(), 1u);

  const std::vector<Value> values = {3.0, 1.0, 2.0};
  Result<std::uint64_t> count = registry.AddBatch("t", values);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), 3u);
  EXPECT_EQ(registry.AddBatch("ghost", values).status().code(),
            StatusCode::kNotFound);

  Result<Value> median = registry.Query("t", 0.5);
  ASSERT_TRUE(median.ok());
  EXPECT_EQ(median.value(), 2.0);
  EXPECT_EQ(registry.Query("ghost", 0.5).status().code(),
            StatusCode::kNotFound);

  std::vector<Value> answers;
  ASSERT_TRUE(registry.QueryMany("t", std::vector<double>{0.5, 1.0},
                                 &answers)
                  .ok());
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_EQ(answers[1], 3.0);

  const TenantStats stats = registry.Stats("t");
  EXPECT_TRUE(stats.present);
  EXPECT_EQ(stats.count, 3u);
  EXPECT_FALSE(registry.Stats("ghost").present);

  ASSERT_TRUE(registry.Delete("t").ok());
  EXPECT_EQ(registry.Delete("t").code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.size(), 0u);
}

TEST(RegistryTest, ShardedTenantRoundRobin) {
  SketchRegistry registry(RegistryOptions{});
  TenantConfig config;
  config.kind = SketchKind::kSharded;
  config.num_shards = 4;
  ASSERT_TRUE(registry.Create("s", config).ok());

  const std::size_t kN = 200000;
  const std::vector<Value> values = UniformStream(kN, 7);
  std::vector<Value> sorted = values;
  std::sort(sorted.begin(), sorted.end());

  // Feed in many small batches so every shard sees work.
  const std::size_t kBatch = 1000;
  for (std::size_t i = 0; i < kN; i += kBatch) {
    std::span<const Value> batch(values.data() + i, kBatch);
    ASSERT_TRUE(registry.AddBatch("s", batch).ok());
  }
  EXPECT_EQ(registry.Stats("s").count, kN);

  for (double phi : {0.1, 0.5, 0.9, 0.99}) {
    Result<Value> answer = registry.Query("s", phi);
    ASSERT_TRUE(answer.ok());
    EXPECT_NEAR(RankOf(sorted, answer.value()), phi, config.eps)
        << "phi=" << phi;
  }
}

TEST(RegistryTest, LruEvictionAndRecycling) {
  RegistryOptions options;
  options.max_tenants = 3;
  SketchRegistry registry(options);
  TenantConfig config;

  ASSERT_TRUE(registry.Create("a", config).ok());
  ASSERT_TRUE(registry.Create("b", config).ok());
  ASSERT_TRUE(registry.Create("c", config).ok());

  // Touch a and c so b is the LRU entry.
  ASSERT_TRUE(registry.AddBatch("a", std::vector<Value>{1.0}).ok());
  ASSERT_TRUE(registry.AddBatch("c", std::vector<Value>{1.0}).ok());

  ASSERT_TRUE(registry.Create("d", config).ok());
  EXPECT_EQ(registry.size(), 3u);
  EXPECT_FALSE(registry.Stats("b").present);
  EXPECT_TRUE(registry.Stats("a").present);
  EXPECT_TRUE(registry.Stats("c").present);
  EXPECT_TRUE(registry.Stats("d").present);

  const RegistryStats global = registry.GlobalStats();
  EXPECT_EQ(global.evictions, 1u);
  // d's create was served from the pool (b's evicted sketch recycled).
  EXPECT_EQ(global.recycled_creates, 1u);

  // A recycled slot must behave exactly like a fresh sketch.
  ASSERT_TRUE(registry.AddBatch("d", std::vector<Value>{5.0}).ok());
  Result<Value> answer = registry.Query("d", 1.0);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer.value(), 5.0);
  EXPECT_EQ(registry.Stats("d").count, 1u);
}

// The sharded-server layout: one partition per shard, tenants spread by
// NameHash. Every operation must behave identically to the single-map
// registry, and global accounting must aggregate across partitions.
TEST(RegistryTest, PartitionedRegistryFullLifecycle) {
  RegistryOptions options;
  options.num_partitions = 4;
  SketchRegistry registry(options);
  EXPECT_EQ(registry.num_partitions(), 4u);
  TenantConfig config;

  constexpr int kTenants = 32;
  bool partition_hit[4] = {false, false, false, false};
  for (int i = 0; i < kTenants; ++i) {
    const std::string name = "tenant" + std::to_string(i);
    const std::size_t p = registry.PartitionOf(name);
    ASSERT_LT(p, 4u);
    EXPECT_EQ(registry.PartitionOf(name), p);  // hash is stable
    partition_hit[p] = true;
    ASSERT_TRUE(registry.Create(name, config).ok()) << name;
    ASSERT_TRUE(registry.AddBatch(name, std::vector<Value>{1.0, 2.0}).ok());
  }
  // 32 FNV-hashed names into 4 buckets leave none empty (deterministic
  // for this name set; a miss here means the hash or modulus regressed).
  for (int p = 0; p < 4; ++p) EXPECT_TRUE(partition_hit[p]) << p;

  EXPECT_EQ(registry.size(), static_cast<std::size_t>(kTenants));
  EXPECT_EQ(registry.GlobalStats().total_count, 2u * kTenants);

  for (int i = 0; i < kTenants; i += 2) {
    ASSERT_TRUE(registry.Delete("tenant" + std::to_string(i)).ok());
  }
  EXPECT_EQ(registry.size(), static_cast<std::size_t>(kTenants) / 2);
  EXPECT_FALSE(registry.Stats("tenant0").present);
  EXPECT_TRUE(registry.Stats("tenant1").present);
  Result<Value> answer = registry.Query("tenant1", 1.0);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer.value(), 2.0);
}

// Eviction is global LRU: the victim is the globally-oldest tenant even
// when it lives in a different partition than the incoming create.
TEST(RegistryTest, EvictionPicksGlobalLruAcrossPartitions) {
  RegistryOptions options;
  options.num_partitions = 4;
  options.max_tenants = 3;
  SketchRegistry registry(options);
  TenantConfig config;

  ASSERT_TRUE(registry.Create("a", config).ok());
  ASSERT_TRUE(registry.Create("b", config).ok());
  ASSERT_TRUE(registry.Create("c", config).ok());

  // Touch a and c so b — wherever it hashed — is globally LRU.
  ASSERT_TRUE(registry.AddBatch("a", std::vector<Value>{1.0}).ok());
  ASSERT_TRUE(registry.AddBatch("c", std::vector<Value>{1.0}).ok());

  ASSERT_TRUE(registry.Create("d", config).ok());
  EXPECT_EQ(registry.size(), 3u);
  EXPECT_FALSE(registry.Stats("b").present);
  EXPECT_TRUE(registry.Stats("a").present);
  EXPECT_TRUE(registry.Stats("c").present);
  EXPECT_TRUE(registry.Stats("d").present);
  EXPECT_EQ(registry.GlobalStats().evictions, 1u);
}

// Checkpoints are partition-agnostic on disk: a registry checkpointed
// with one layout recovers into any other, re-hashing tenants into their
// new home partitions.
TEST(RegistryTest, CheckpointIsPartitionLayoutAgnostic) {
  const std::string path = TempPath("registry_ckpt_parts");
  const std::vector<Value> values = UniformStream(20000, 17);

  {
    RegistryOptions options;
    options.checkpoint_path = path;
    options.num_partitions = 4;
    SketchRegistry registry(options);
    TenantConfig config;
    for (int i = 0; i < 8; ++i) {
      const std::string name = "t" + std::to_string(i);
      ASSERT_TRUE(registry.Create(name, config).ok());
      ASSERT_TRUE(registry.AddBatch(name, values).ok());
    }
    ASSERT_TRUE(registry.CheckpointNow().ok());
  }

  for (const std::size_t partitions : {std::size_t{1}, std::size_t{4},
                                       std::size_t{7}}) {
    RegistryOptions options;
    options.checkpoint_path = path;
    options.num_partitions = partitions;
    SketchRegistry recovered(options);
    ASSERT_TRUE(recovered.RecoverFromDisk().ok());
    EXPECT_EQ(recovered.size(), 8u);
    for (int i = 0; i < 8; ++i) {
      const std::string name = "t" + std::to_string(i);
      EXPECT_EQ(recovered.Stats(name).count, values.size()) << name;
      EXPECT_TRUE(recovered.Query(name, 0.5).ok()) << name;
    }
  }
  std::remove(path.c_str());
}

TEST(RegistryTest, CheckpointRecoverRoundTrip) {
  const std::string path = TempPath("registry_ckpt");
  const std::vector<Value> values = UniformStream(50000, 11);

  RegistryStats before;
  {
    RegistryOptions options;
    options.checkpoint_path = path;
    SketchRegistry registry(options);
    TenantConfig unknown_cfg;
    TenantConfig sharded_cfg;
    sharded_cfg.kind = SketchKind::kSharded;
    sharded_cfg.num_shards = 3;
    ASSERT_TRUE(registry.Create("u", unknown_cfg).ok());
    ASSERT_TRUE(registry.Create("s", sharded_cfg).ok());
    for (std::size_t i = 0; i < values.size(); i += 5000) {
      std::span<const Value> batch(values.data() + i, 5000);
      ASSERT_TRUE(registry.AddBatch("u", batch).ok());
      ASSERT_TRUE(registry.AddBatch("s", batch).ok());
    }
    ASSERT_TRUE(registry.CheckpointNow().ok());
    before = registry.GlobalStats();
  }

  RegistryOptions options;
  options.checkpoint_path = path;
  SketchRegistry recovered(options);
  ASSERT_TRUE(recovered.RecoverFromDisk().ok());
  EXPECT_EQ(recovered.size(), 2u);
  EXPECT_EQ(recovered.GlobalStats().total_count, before.total_count);
  EXPECT_EQ(recovered.Stats("u").count, values.size());
  EXPECT_EQ(recovered.Stats("s").count, values.size());
  EXPECT_EQ(recovered.Stats("s").config.kind, SketchKind::kSharded);

  std::vector<Value> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (const char* tenant : {"u", "s"}) {
    Result<Value> answer = recovered.Query(tenant, 0.5);
    ASSERT_TRUE(answer.ok());
    EXPECT_NEAR(RankOf(sorted, answer.value()), 0.5, 0.01);
  }

  // Recovered tenants keep ingesting.
  ASSERT_TRUE(recovered.AddBatch("u", std::vector<Value>{0.5}).ok());
  EXPECT_EQ(recovered.Stats("u").count, values.size() + 1);

  std::remove(path.c_str());
}

TEST(RegistryTest, RecoverRejectsCorruptCheckpoint) {
  const std::string path = TempPath("registry_ckpt_corrupt");
  {
    RegistryOptions options;
    options.checkpoint_path = path;
    SketchRegistry registry(options);
    ASSERT_TRUE(registry.Create("t", TenantConfig{}).ok());
    ASSERT_TRUE(registry.CheckpointNow().ok());
  }

  // Flip one byte mid-file: the CRC trailer must catch it.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 10, SEEK_SET), 0);
  const int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, 10, SEEK_SET), 0);
  std::fputc(c ^ 0xFF, f);
  std::fclose(f);

  RegistryOptions options;
  options.checkpoint_path = path;
  SketchRegistry recovered(options);
  const Status status = recovered.RecoverFromDisk();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(recovered.size(), 0u);

  std::remove(path.c_str());
}

TEST(RegistryTest, MissingCheckpointIsEmptyRegistry) {
  RegistryOptions options;
  options.checkpoint_path = TempPath("registry_ckpt_missing");
  SketchRegistry registry(options);
  EXPECT_TRUE(registry.RecoverFromDisk().ok());
  EXPECT_EQ(registry.size(), 0u);
}

TEST(RegistryTest, SnapshotBlobMatchesSketchSerialization) {
  SketchRegistry registry(RegistryOptions{});
  ASSERT_TRUE(registry.Create("t", TenantConfig{}).ok());
  ASSERT_TRUE(registry.AddBatch("t", UniformStream(10000, 3)).ok());

  std::vector<std::uint8_t> blob;
  ASSERT_TRUE(registry.Snapshot("t", &blob).ok());
  ASSERT_FALSE(blob.empty());

  // An unknown-N tenant snapshot is a u32 length + the sketch's own v2
  // checkpoint bytes; the embedded blob must deserialize standalone.
  ASSERT_GE(blob.size(), 4u);
  const std::uint32_t len = static_cast<std::uint32_t>(blob[0]) |
                            (static_cast<std::uint32_t>(blob[1]) << 8) |
                            (static_cast<std::uint32_t>(blob[2]) << 16) |
                            (static_cast<std::uint32_t>(blob[3]) << 24);
  ASSERT_EQ(blob.size(), 4u + len);
  const std::vector<std::uint8_t> sketch_bytes(blob.begin() + 4, blob.end());
  Result<UnknownNSketch> sketch = UnknownNSketch::Deserialize(sketch_bytes);
  ASSERT_TRUE(sketch.ok()) << sketch.status().ToString();
  EXPECT_EQ(sketch.value().count(), 10000u);
}

}  // namespace
}  // namespace server
}  // namespace mrl
