// Request-pipelining and stream-framing edge cases for the sharded
// event-loop server (src/server/shard.cc): the wire protocol is
// length-prefixed frames over a byte stream, so the server must decode
// correctly no matter how the bytes are sliced into reads — and it must
// survive clients that write many requests before reading any response.
//
// Raw-socket tests drive the framing layer directly (frames split across
// read boundaries, many frames in one read); Client-API tests cover the
// pipelining contract of docs/wire_protocol.md (responses per connection
// in request order); the slow-reader tests pin the per-connection
// write-buffer cap behavior: a graceful ResourceExhausted ERROR response
// followed by close, never unbounded buffering.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "util/random.h"

namespace mrl {
namespace server {
namespace {

std::vector<Value> UniformStream(std::size_t n, std::uint64_t seed) {
  Random rng(seed);
  std::vector<Value> values(n);
  for (Value& v : values) v = rng.UniformDouble();
  return values;
}

/// One decoded response, materialized (no borrowed views) so many can be
/// collected before asserting.
struct Reply {
  MsgType request_type = MsgType::kResponse;
  StatusCode code = StatusCode::kOk;
  std::string message;
  std::vector<std::uint8_t> body;
};

class ServerPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    uds_path_ = "/tmp/mrlq_pipe_test." +
                std::to_string(static_cast<long>(::getpid())) + ".sock";
  }

  void TearDown() override {
    server_.reset();
    std::remove(uds_path_.c_str());
  }

  void StartServer(std::size_t write_buffer_cap = 0) {
    ServerOptions options;
    options.uds_path = uds_path_;
    options.num_shards = 2;  // exercise tenant-affinity migration too
    options.write_buffer_cap = write_buffer_cap;
    Result<std::unique_ptr<QuantileServer>> server =
        QuantileServer::Create(std::move(options));
    ASSERT_TRUE(server.ok()) << server.status().message();
    server_ = std::move(server).value();
  }

  /// Raw connected socket (caller closes).
  int ConnectRaw() {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, uds_path_.c_str(), uds_path_.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0)
        << std::strerror(errno);
    return fd;
  }

  static bool SendAll(int fd, const std::uint8_t* data, std::size_t n) {
    std::size_t sent = 0;
    while (sent < n) {
      const ssize_t w = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<std::size_t>(w);
    }
    return true;
  }

  static bool RecvAll(int fd, std::uint8_t* data, std::size_t n) {
    std::size_t got = 0;
    while (got < n) {
      const ssize_t r = ::recv(fd, data + got, n - got, 0);
      if (r == 0) return false;
      if (r < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      got += static_cast<std::size_t>(r);
    }
    return true;
  }

  /// Reads and decodes exactly one response frame. False on EOF or a
  /// malformed frame (asserts on the latter).
  static bool ReadReply(int fd, Reply* out) {
    std::uint8_t prefix[4];
    if (!RecvAll(fd, prefix, sizeof(prefix))) return false;
    const std::uint32_t body_len =
        static_cast<std::uint32_t>(prefix[0]) |
        (static_cast<std::uint32_t>(prefix[1]) << 8) |
        (static_cast<std::uint32_t>(prefix[2]) << 16) |
        (static_cast<std::uint32_t>(prefix[3]) << 24);
    std::vector<std::uint8_t> body(body_len);
    if (!RecvAll(fd, body.data(), body.size())) return false;
    Result<FrameView> frame = DecodeFrameBody(body.data(), body.size());
    EXPECT_TRUE(frame.ok()) << frame.status().message();
    if (!frame.ok()) return false;
    EXPECT_EQ(frame.value().type, MsgType::kResponse);
    Result<ResponseView> view =
        DecodeResponse(frame.value().payload, frame.value().payload_len);
    EXPECT_TRUE(view.ok()) << view.status().message();
    if (!view.ok()) return false;
    out->request_type = view.value().request_type;
    out->code = view.value().code;
    out->message = std::string(view.value().message);
    out->body.assign(view.value().body,
                     view.value().body + view.value().body_len);
    return true;
  }

  std::string uds_path_;
  std::unique_ptr<QuantileServer> server_;
};

// A frame dribbled in one-byte writes — the length prefix, header, and
// payload all split across readv boundaries — must decode exactly as if
// it arrived whole.
TEST_F(ServerPipelineTest, PartialFramesAcrossReadBoundaries) {
  StartServer();
  const int fd = ConnectRaw();

  std::vector<std::uint8_t> wire;
  EncodeCreateSketch("dribble", TenantConfig{}, &wire);
  for (const std::uint8_t byte : wire) {
    ASSERT_TRUE(SendAll(fd, &byte, 1));
  }
  Reply reply;
  ASSERT_TRUE(ReadReply(fd, &reply));
  EXPECT_EQ(reply.request_type, MsgType::kCreateSketch);
  EXPECT_EQ(reply.code, StatusCode::kOk) << reply.message;

  // An ADD_BATCH split at awkward offsets: mid-length-prefix, mid-header,
  // and mid-payload.
  wire.clear();
  const std::vector<Value> values = UniformStream(100, 3);
  EncodeAddBatch("dribble", values, &wire);
  const std::size_t cuts[] = {2, kFrameHeaderSize - 1, kFrameHeaderSize + 37,
                              wire.size()};
  std::size_t at = 0;
  for (const std::size_t cut : cuts) {
    ASSERT_TRUE(SendAll(fd, wire.data() + at, cut - at));
    at = cut;
  }
  ASSERT_TRUE(ReadReply(fd, &reply));
  EXPECT_EQ(reply.request_type, MsgType::kAddBatch);
  EXPECT_EQ(reply.code, StatusCode::kOk) << reply.message;

  ::close(fd);
}

// Many frames written back-to-back arrive in one readv; the shard must
// decode them all from a single readiness event and answer each, in
// order.
TEST_F(ServerPipelineTest, MultipleFramesPerReadAnswerInOrder) {
  StartServer();
  const int fd = ConnectRaw();

  constexpr int kBatches = 16;
  std::vector<std::uint8_t> wire;
  EncodeCreateSketch("burst", TenantConfig{}, &wire);
  for (int i = 0; i < kBatches; ++i) {
    EncodeAddBatch("burst", std::vector<Value>{static_cast<Value>(i)}, &wire);
  }
  EncodeQuery("burst", 1.0, &wire);
  ASSERT_TRUE(SendAll(fd, wire.data(), wire.size()));

  Reply reply;
  ASSERT_TRUE(ReadReply(fd, &reply));
  EXPECT_EQ(reply.request_type, MsgType::kCreateSketch);
  EXPECT_EQ(reply.code, StatusCode::kOk) << reply.message;
  for (int i = 0; i < kBatches; ++i) {
    ASSERT_TRUE(ReadReply(fd, &reply));
    EXPECT_EQ(reply.request_type, MsgType::kAddBatch);
    ASSERT_EQ(reply.code, StatusCode::kOk) << reply.message;
    // The ADD_BATCH body is the running element count: in-order proof.
    ASSERT_EQ(reply.body.size(), 8u);
    std::uint64_t count = 0;
    std::memcpy(&count, reply.body.data(), 8);
    EXPECT_EQ(count, static_cast<std::uint64_t>(i) + 1);
  }
  ASSERT_TRUE(ReadReply(fd, &reply));
  EXPECT_EQ(reply.request_type, MsgType::kQuery);
  EXPECT_EQ(reply.code, StatusCode::kOk) << reply.message;

  ::close(fd);
}

// The Client pipelining API end to end: one flush carries CREATE + many
// ADD_BATCH + QUERY, and the replies come back positionally.
TEST_F(ServerPipelineTest, ClientPipelineRepliesMatchRequests) {
  StartServer();
  Result<Client> connected = Client::ConnectUnix(uds_path_);
  ASSERT_TRUE(connected.ok()) << connected.status().message();
  Client client = std::move(connected).value();

  const std::vector<Value> values = UniformStream(4096, 5);
  client.PipelineCreateSketch("pipe", TenantConfig{});
  constexpr int kBatches = 8;
  for (int i = 0; i < kBatches; ++i) {
    client.PipelineAddBatch(
        "pipe", std::span<const Value>(values.data() + i * 512, 512));
  }
  client.PipelineQuery("pipe", 0.5);
  EXPECT_EQ(client.pipeline_depth(), static_cast<std::size_t>(kBatches) + 2);

  // A blocking call with a pipeline queued is a usage error and must not
  // disturb the queued requests.
  EXPECT_EQ(client.CreateSketch("other", TenantConfig{}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(client.pipeline_depth(), static_cast<std::size_t>(kBatches) + 2);

  std::vector<Client::PipelineReply> replies;
  ASSERT_TRUE(client.PipelineFlush(&replies).ok());
  ASSERT_EQ(replies.size(), static_cast<std::size_t>(kBatches) + 2);
  EXPECT_EQ(replies.front().request_type, MsgType::kCreateSketch);
  EXPECT_TRUE(replies.front().status.ok()) << replies.front().status.message();
  for (int i = 0; i < kBatches; ++i) {
    const Client::PipelineReply& reply = replies[static_cast<std::size_t>(i) + 1];
    EXPECT_EQ(reply.request_type, MsgType::kAddBatch);
    ASSERT_TRUE(reply.status.ok()) << reply.status.message();
    EXPECT_EQ(reply.count, static_cast<std::uint64_t>(i + 1) * 512);
  }
  const Client::PipelineReply& query = replies.back();
  EXPECT_EQ(query.request_type, MsgType::kQuery);
  ASSERT_TRUE(query.status.ok()) << query.status.message();
  EXPECT_GT(query.value, 0.0);
  EXPECT_LT(query.value, 1.0);

  // The connection (and plain blocking calls) remain usable after a flush.
  EXPECT_EQ(client.pipeline_depth(), 0u);
  Result<std::uint64_t> count =
      client.AddBatch("pipe", std::span<const Value>(values.data(), 1));
  ASSERT_TRUE(count.ok()) << count.status().message();
  EXPECT_EQ(count.value(), static_cast<std::uint64_t>(kBatches) * 512 + 1);
}

// Server-side per-request errors are isolated to their reply; the
// requests after them still execute and the connection survives.
TEST_F(ServerPipelineTest, PipelinedErrorsAreIsolatedPerRequest) {
  StartServer();
  Result<Client> connected = Client::ConnectUnix(uds_path_);
  ASSERT_TRUE(connected.ok());
  Client client = std::move(connected).value();

  client.PipelineAddBatch("ghost", std::vector<Value>{1.0});  // NotFound
  client.PipelineCreateSketch("real", TenantConfig{});
  client.PipelineAddBatch("real", std::vector<Value>{1.0, 2.0});
  client.PipelineQuery("ghost", 0.5);  // NotFound again

  std::vector<Client::PipelineReply> replies;
  ASSERT_TRUE(client.PipelineFlush(&replies).ok());
  ASSERT_EQ(replies.size(), 4u);
  EXPECT_EQ(replies[0].status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(replies[1].status.ok()) << replies[1].status.message();
  EXPECT_TRUE(replies[2].status.ok()) << replies[2].status.message();
  EXPECT_EQ(replies[2].count, 2u);
  EXPECT_EQ(replies[3].status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(client.connected());
}

// A response backlog larger than the socket buffers: the server's writev
// returns short/EAGAIN, it arms EPOLLOUT, and drains the queue as the
// client reads. Every response must still arrive, in order.
TEST_F(ServerPipelineTest, ResponseBacklogDrainsViaShortWrites) {
  StartServer();  // default (generous) write-buffer cap
  const int fd = ConnectRaw();

  // One tenant with enough data that QUERY_MULTI responses are meaty.
  std::vector<std::uint8_t> wire;
  EncodeCreateSketch("backlog", TenantConfig{}, &wire);
  EncodeAddBatch("backlog", UniformStream(100000, 7), &wire);
  ASSERT_TRUE(SendAll(fd, wire.data(), wire.size()));
  Reply reply;
  ASSERT_TRUE(ReadReply(fd, &reply));
  ASSERT_EQ(reply.code, StatusCode::kOk) << reply.message;
  ASSERT_TRUE(ReadReply(fd, &reply));
  ASSERT_EQ(reply.code, StatusCode::kOk) << reply.message;

  // 64 QUERY_MULTI frames x 1000 ranks: ~8 KiB per response, ~512 KiB of
  // backlog — past any default socket buffer, so the server must hold the
  // tail in its write buffer and flush incrementally.
  std::vector<double> phis(1000);
  for (std::size_t i = 0; i < phis.size(); ++i) {
    phis[i] = (static_cast<double>(i) + 1) / (phis.size() + 1);
  }
  constexpr int kRequests = 64;
  wire.clear();
  for (int i = 0; i < kRequests; ++i) {
    EncodeQueryMulti("backlog", phis, &wire);
  }
  ASSERT_TRUE(SendAll(fd, wire.data(), wire.size()));

  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(ReadReply(fd, &reply)) << "response " << i;
    EXPECT_EQ(reply.request_type, MsgType::kQueryMulti);
    ASSERT_EQ(reply.code, StatusCode::kOk) << reply.message;
    // u64 count + 1000 doubles.
    EXPECT_EQ(reply.body.size(), 8u + phis.size() * 8u);
  }

  ::close(fd);
}

// A slow reader that pipelines past the per-connection write-buffer cap
// gets a graceful ResourceExhausted ERROR response and a close — the
// server never buffers without bound. Responses completed before the
// overflow still arrive first (the guarantee is in-order up to the
// error).
TEST_F(ServerPipelineTest, SlowReaderHitsWriteBufferCap) {
  StartServer(/*write_buffer_cap=*/64u << 10);
  const int fd = ConnectRaw();

  std::vector<std::uint8_t> wire;
  EncodeCreateSketch("slow", TenantConfig{}, &wire);
  EncodeAddBatch("slow", UniformStream(100000, 9), &wire);
  ASSERT_TRUE(SendAll(fd, wire.data(), wire.size()));
  Reply reply;
  ASSERT_TRUE(ReadReply(fd, &reply));
  ASSERT_EQ(reply.code, StatusCode::kOk) << reply.message;
  ASSERT_TRUE(ReadReply(fd, &reply));
  ASSERT_EQ(reply.code, StatusCode::kOk) << reply.message;

  // SNAPSHOT requests are ~20 bytes but their responses carry the whole
  // tenant blob (tens of KiB here): 512 of them fit comfortably in the
  // socket buffers — the send below cannot block — while the responses
  // would total many MiB. Without reading a single one, the backlog blows
  // through the 64 KiB cap and the server must fail this connection
  // cleanly instead of buffering it all.
  constexpr int kRequests = 512;
  wire.clear();
  for (int i = 0; i < kRequests; ++i) {
    EncodeNameRequest(MsgType::kSnapshot, "slow", &wire);
  }
  ASSERT_TRUE(SendAll(fd, wire.data(), wire.size()));

  // Now read: some number of completed responses, then exactly one
  // ResourceExhausted ERROR, then EOF.
  int ok_responses = 0;
  bool saw_cap_error = false;
  while (ReadReply(fd, &reply)) {
    if (reply.code == StatusCode::kOk) {
      ASSERT_FALSE(saw_cap_error) << "response after the cap error";
      ++ok_responses;
      continue;
    }
    EXPECT_EQ(reply.code, StatusCode::kResourceExhausted);
    EXPECT_FALSE(saw_cap_error) << "more than one cap error";
    saw_cap_error = true;
  }
  EXPECT_TRUE(saw_cap_error);
  EXPECT_LT(ok_responses, kRequests);

  ::close(fd);

  // The server itself is unaffected: a fresh connection works.
  Result<Client> connected = Client::ConnectUnix(uds_path_);
  ASSERT_TRUE(connected.ok());
  EXPECT_TRUE(connected.value().Query("slow", 0.5).ok());
}

}  // namespace
}  // namespace server
}  // namespace mrl
