#include <cstdio>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/exact.h"
#include "baseline/munro_paterson.h"
#include "baseline/reservoir_quantile.h"
#include "core/known_n.h"
#include "core/unknown_n.h"
#include "stream/file_stream.h"
#include "stream/generator.h"

namespace mrl {
namespace {

// End-to-end over a disk-resident dataset: generate, spill to a file, run
// the sketch in a single buffered pass (the paper's DBMS setting), compare
// against ground truth.
TEST(IntegrationTest, SinglePassOverDiskResidentData) {
  StreamSpec spec;
  spec.n = 250000;
  spec.seed = 3;
  spec.distribution = "gaussian";
  Dataset ds = GenerateStream(spec);
  std::string path = ::testing::TempDir() + "/mrl_disk_stream.bin";
  ASSERT_TRUE(WriteValuesFile(path, ds.values()).ok());

  UnknownNOptions options;
  options.eps = 0.01;
  options.delta = 1e-4;
  options.seed = 5;
  UnknownNSketch sketch = std::move(UnknownNSketch::Create(options)).value();

  FileValueReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  Value v;
  while (reader.Next(&v)) sketch.Add(v);
  ASSERT_TRUE(reader.status().ok());
  EXPECT_EQ(sketch.count(), ds.size());

  for (double phi : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    EXPECT_LE(ds.QuantileError(sketch.Query(phi).value(), phi), 0.01)
        << "phi " << phi;
  }
  std::remove(path.c_str());
}

// All estimators consume the same stream through the common interface and
// all meet their respective guarantees.
TEST(IntegrationTest, AllEstimatorsAgreeWithGroundTruth) {
  StreamSpec spec;
  spec.n = 120000;
  spec.seed = 7;
  Dataset ds = GenerateStream(spec);

  std::vector<std::unique_ptr<QuantileEstimator>> estimators;
  {
    UnknownNOptions o;
    o.eps = 0.02;
    o.delta = 1e-3;
    o.seed = 11;
    estimators.push_back(std::make_unique<UnknownNSketch>(
        std::move(UnknownNSketch::Create(o)).value()));
  }
  {
    KnownNOptions o;
    o.eps = 0.02;
    o.delta = 1e-3;
    o.n = ds.size();
    o.seed = 13;
    estimators.push_back(std::make_unique<KnownNSketch>(
        std::move(KnownNSketch::Create(o)).value()));
  }
  {
    MunroPatersonSketch::Options o;
    o.eps = 0.02;
    o.n = ds.size();
    estimators.push_back(std::make_unique<MunroPatersonSketch>(
        std::move(MunroPatersonSketch::Create(o)).value()));
  }
  {
    ReservoirQuantileSketch::Options o;
    o.eps = 0.02;
    o.delta = 1e-3;
    o.seed = 17;
    estimators.push_back(std::make_unique<ReservoirQuantileSketch>(
        std::move(ReservoirQuantileSketch::Create(o)).value()));
  }
  estimators.push_back(std::make_unique<ExactQuantileEstimator>());

  for (auto& est : estimators) {
    est->AddAll(ds.values());
    EXPECT_EQ(est->count(), ds.size()) << est->name();
    for (double phi : {0.1, 0.5, 0.9}) {
      Result<Value> q = est->Query(phi);
      ASSERT_TRUE(q.ok()) << est->name();
      EXPECT_LE(ds.QuantileError(q.value(), phi), 0.02)
          << est->name() << " phi " << phi;
    }
  }
}

// A long stream with small forced parameters: multiple rate doublings,
// thousands of collapses, weight accounting still exact, guarantee of the
// forced parameters still met at the end.
TEST(IntegrationTest, LongStreamStressWithAggressiveSampling) {
  UnknownNParams p;
  p.b = 5;
  p.k = 100;
  p.h = 3;
  p.alpha = 0.5;
  UnknownNOptions options;
  options.params = p;
  options.seed = 19;
  UnknownNSketch sketch = std::move(UnknownNSketch::Create(options)).value();

  StreamSpec spec;
  spec.n = 1'000'000;
  spec.seed = 23;
  Dataset ds = GenerateStream(spec);
  for (Value v : ds.values()) sketch.Add(v);
  EXPECT_EQ(sketch.HeldWeight(), ds.size());
  EXPECT_GE(sketch.sampling_rate(), 8u);
  EXPECT_GT(sketch.tree_stats().num_collapses, 50u);
  // b=5,k=100,h=3 implies roughly (h+1)/(2*alpha*k) = 0.04 tree error plus
  // sampling noise; 0.08 is a comfortable certified envelope for the forced
  // parameters.
  for (double phi : {0.1, 0.5, 0.9}) {
    EXPECT_LE(ds.QuantileError(sketch.Query(phi).value(), phi), 0.08);
  }
}

// Duplicate-heavy and adversarial order at once.
TEST(IntegrationTest, ZipfSortedDescending) {
  StreamSpec spec;
  spec.n = 80000;
  spec.seed = 29;
  spec.distribution = "zipf";
  spec.order = ArrivalOrder::kSortedDesc;
  Dataset ds = GenerateStream(spec);
  UnknownNOptions options;
  options.eps = 0.02;
  options.delta = 1e-3;
  options.seed = 31;
  UnknownNSketch sketch = std::move(UnknownNSketch::Create(options)).value();
  for (Value v : ds.values()) sketch.Add(v);
  for (double phi : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_LE(ds.QuantileError(sketch.Query(phi).value(), phi), 0.02)
        << "phi " << phi;
  }
}

// NaN-free handling of pathological doubles (denormals, huge magnitudes,
// negative zero) — the sketch is comparison-based and must not care.
TEST(IntegrationTest, PathologicalDoubleValues) {
  UnknownNParams p;
  p.b = 3;
  p.k = 8;
  p.h = 2;
  p.alpha = 0.5;
  UnknownNOptions options;
  options.params = p;
  UnknownNSketch sketch = std::move(UnknownNSketch::Create(options)).value();
  std::vector<Value> values = {0.0,   -0.0,  1e-308, -1e-308, 1e308,
                               -1e308, 42.0, -42.0,  5e-324,  2.25};
  for (int rep = 0; rep < 30; ++rep) {
    for (Value v : values) sketch.Add(v);
  }
  EXPECT_EQ(sketch.HeldWeight(), 300u);
  Value lo = sketch.Query(0.05).value();
  Value hi = sketch.Query(0.999).value();
  EXPECT_LE(lo, hi);
  EXPECT_GE(lo, -1e308);
  EXPECT_LE(hi, 1e308);
}

}  // namespace
}  // namespace mrl
