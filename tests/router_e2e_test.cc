// End-to-end tests for the distributed tier (src/router/): an in-process
// Router fronting three real mrlquantd processes over Unix sockets.
// Covers consistent-hash forwarding, the Section 6 fan-out merge for
// partitioned tenants, replicated writes, SNAPSHOT→RESTORE replica
// resync, and the acceptance scenario: SIGKILL the owning backend
// mid-ingest, the router fails the tenant over to its replica, and
// subsequent queries stay within the configured eps of the exact
// baseline.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "router/router.h"
#include "server/client.h"
#include "util/random.h"

namespace mrl {
namespace router {
namespace {

using server::Client;
using server::TenantConfig;

std::vector<Value> UniformStream(std::size_t n, std::uint64_t seed) {
  Random rng(seed);
  std::vector<Value> values(n);
  for (Value& v : values) v = rng.UniformDouble();
  return values;
}

double RankOf(const std::vector<Value>& sorted, Value answer) {
  const auto it = std::upper_bound(sorted.begin(), sorted.end(), answer);
  return static_cast<double>(it - sorted.begin()) /
         static_cast<double>(sorted.size());
}

constexpr int kBackends = 3;

class RouterE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string base =
        "/tmp/mrlq_router_" + std::to_string(::getpid()) + "_" +
        std::to_string(reinterpret_cast<std::uintptr_t>(this) & 0xFFFF);
    router_uds_ = base + "_front.sock";
    for (int i = 0; i < kBackends; ++i) {
      backend_uds_[i] = base + "_b" + std::to_string(i) + ".sock";
      backend_pid_[i] = SpawnBackend(i);
      ASSERT_GT(backend_pid_[i], 0);
    }
    for (int i = 0; i < kBackends; ++i) WaitForBackend(i);
  }

  void TearDown() override {
    router_.reset();
    for (int i = 0; i < kBackends; ++i) KillBackend(i);
    ::unlink(router_uds_.c_str());
    for (int i = 0; i < kBackends; ++i) {
      ::unlink(backend_uds_[i].c_str());
    }
  }

  pid_t SpawnBackend(int i) {
    const std::string uds_flag = "--uds=" + backend_uds_[i];
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::execl(MRLQUANT_DAEMON_PATH, "mrlquantd", uds_flag.c_str(),
              static_cast<char*>(nullptr));
      ::_exit(127);  // exec failed
    }
    return pid;
  }

  void WaitForBackend(int i) {
    for (int attempt = 0; attempt < 200; ++attempt) {
      Result<Client> client = Client::ConnectUnix(backend_uds_[i]);
      if (client.ok()) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    FAIL() << "backend " << i << " did not come up on " << backend_uds_[i];
  }

  void KillBackend(int i) {
    if (backend_pid_[i] <= 0) return;
    ::kill(backend_pid_[i], SIGKILL);
    int wstatus = 0;
    ::waitpid(backend_pid_[i], &wstatus, 0);
    backend_pid_[i] = -1;
  }

  void RestartBackend(int i) {
    backend_pid_[i] = SpawnBackend(i);
    ASSERT_GT(backend_pid_[i], 0);
    WaitForBackend(i);
  }

  void StartRouter(RouterOptions options) {
    options.uds_path = router_uds_;
    for (int i = 0; i < kBackends; ++i) {
      options.backends.push_back("unix:" + backend_uds_[i]);
    }
    // Fast health cadence so failure detection and resync happen within
    // test-sized windows.
    options.health_interval_ms = 50;
    options.rpc_timeout_ms = 2000;
    options.fail_threshold = 2;
    Result<std::unique_ptr<Router>> router = Router::Create(std::move(options));
    ASSERT_TRUE(router.ok()) << router.status().ToString();
    router_ = std::move(router).value();
  }

  Client ConnectRouter() {
    Result<Client> client = Client::ConnectUnix(router_uds_);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  std::string router_uds_;
  std::string backend_uds_[kBackends];
  pid_t backend_pid_[kBackends] = {-1, -1, -1};
  std::unique_ptr<Router> router_;
};

TEST_F(RouterE2eTest, RoutedBasicOpsAndPing) {
  StartRouter(RouterOptions{});
  Client client = ConnectRouter();

  // PING is answered by the router itself.
  ASSERT_TRUE(client.Ping().ok());

  constexpr double kEps = 0.02;
  constexpr std::size_t kN = 60000;
  TenantConfig config;
  config.eps = kEps;
  config.seed = 7;

  // Several tenants so the ring actually spreads them around.
  const std::vector<std::string> tenants = {"alpha", "bravo", "charlie",
                                            "delta", "echo"};
  for (const std::string& name : tenants) {
    ASSERT_TRUE(client.CreateSketch(name, config).ok()) << name;
  }
  bool spread = false;
  for (const std::string& name : tenants) {
    if (router_->OwnerIndexOf(name) != router_->OwnerIndexOf(tenants[0])) {
      spread = true;
    }
  }
  EXPECT_TRUE(spread) << "all tenants landed on one backend";

  std::vector<Value> data = UniformStream(kN, 11);
  mrl::Result<std::uint64_t> count =
      client.AddBatch(tenants[0], std::span<const Value>(data));
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(count.value(), kN);

  std::sort(data.begin(), data.end());
  const std::vector<double> phis = {0.1, 0.5, 0.9};
  std::vector<Value> answers;
  ASSERT_TRUE(client.QueryMulti(tenants[0], phis, &answers).ok());
  ASSERT_EQ(answers.size(), phis.size());
  for (std::size_t i = 0; i < phis.size(); ++i) {
    EXPECT_NEAR(RankOf(data, answers[i]), phis[i], kEps) << "phi=" << phis[i];
  }

  // Stats through the router: named hits the owner, empty aggregates.
  mrl::Result<server::StatsReply> stats = client.Stats(tenants[0]);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats.value().tenant_present);
  EXPECT_EQ(stats.value().tenant_count, kN);
  mrl::Result<server::StatsReply> global = client.Stats("");
  ASSERT_TRUE(global.ok());
  EXPECT_EQ(global.value().num_tenants, tenants.size());
  EXPECT_EQ(global.value().total_count, kN);

  // FETCH_SUMMARY forwards and returns a decodable partial summary.
  std::vector<std::uint8_t> blob;
  ASSERT_TRUE(client.FetchSummary(tenants[0], &blob).ok());
  EXPECT_FALSE(blob.empty());

  ASSERT_TRUE(client.Delete(tenants[0]).ok());
  EXPECT_FALSE(client.Query(tenants[0], 0.5).ok());
}

TEST_F(RouterE2eTest, PartitionedTenantFanOutMerge) {
  RouterOptions options;
  options.partitioned = {"wide"};
  StartRouter(std::move(options));
  Client client = ConnectRouter();

  constexpr double kEps = 0.05;
  constexpr std::size_t kN = 90000;
  constexpr std::size_t kBatch = 9000;
  TenantConfig config;
  config.eps = kEps;
  config.seed = 3;
  ASSERT_TRUE(client.CreateSketch("wide", config).ok());

  std::vector<Value> data = UniformStream(kN, 17);
  for (std::size_t i = 0; i < kN; i += kBatch) {
    mrl::Result<std::uint64_t> count = client.AddBatch(
        "wide", std::span<const Value>(data.data() + i, kBatch));
    ASSERT_TRUE(count.ok()) << count.status().ToString();
  }

  // Every backend holds a real partition of the data.
  for (int i = 0; i < kBackends; ++i) {
    Result<Client> direct = Client::ConnectUnix(backend_uds_[i]);
    ASSERT_TRUE(direct.ok());
    mrl::Result<server::StatsReply> stats = direct.value().Stats("wide");
    ASSERT_TRUE(stats.ok());
    EXPECT_TRUE(stats.value().tenant_present) << "backend " << i;
    EXPECT_GT(stats.value().tenant_count, 0u) << "backend " << i;
  }

  // Named stats aggregate to the full stream length across partitions.
  mrl::Result<server::StatsReply> stats = client.Stats("wide");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().tenant_count, kN);

  // Queries fan out FETCH_SUMMARY and merge with the Section 6 rules.
  std::sort(data.begin(), data.end());
  const std::vector<double> phis = {0.05, 0.25, 0.5, 0.75, 0.95};
  std::vector<Value> answers;
  ASSERT_TRUE(client.QueryMulti("wide", phis, &answers).ok());
  ASSERT_EQ(answers.size(), phis.size());
  for (std::size_t i = 0; i < phis.size(); ++i) {
    EXPECT_NEAR(RankOf(data, answers[i]), phis[i], 2 * kEps)
        << "phi=" << phis[i];
  }

  const mrl::Result<double> median = client.Query("wide", 0.5);
  ASSERT_TRUE(median.ok());
  EXPECT_NEAR(RankOf(data, median.value()), 0.5, 2 * kEps);
}

// The acceptance scenario: replication on, SIGKILL the owning backend in
// the middle of the ingest stream, keep writing — the router promotes the
// replica within the health-check window — and final quantiles stay within
// the configured eps of the exact sorted baseline.
TEST_F(RouterE2eTest, FailoverUnderSigkillKeepsAccuracy) {
  RouterOptions options;
  options.replicate = true;
  StartRouter(std::move(options));
  Client client = ConnectRouter();

  constexpr double kEps = 0.02;
  constexpr std::size_t kN = 100000;
  constexpr std::size_t kBatch = 5000;
  TenantConfig config;
  config.eps = kEps;
  config.seed = 19;
  ASSERT_TRUE(client.CreateSketch("t", config).ok());

  const int owner = router_->OwnerIndexOf("t");
  const int replica = router_->ReplicaIndexOf("t");
  ASSERT_GE(replica, 0);
  ASSERT_NE(owner, replica);

  const std::vector<Value> data = UniformStream(kN, 29);
  std::size_t sent = 0;
  for (; sent < kN / 2; sent += kBatch) {
    mrl::Result<std::uint64_t> count = client.AddBatch(
        "t", std::span<const Value>(data.data() + sent, kBatch));
    ASSERT_TRUE(count.ok()) << count.status().ToString();
  }

  // Kill the primary cold: no shutdown handler runs, connections die.
  KillBackend(owner);

  // Keep ingesting. The first write after the kill rides the failover
  // retry inside the router, so the client never sees an error.
  for (; sent < kN; sent += kBatch) {
    mrl::Result<std::uint64_t> count = client.AddBatch(
        "t", std::span<const Value>(data.data() + sent, kBatch));
    ASSERT_TRUE(count.ok()) << "batch at " << sent << ": "
                            << count.status().ToString();
  }

  EXPECT_TRUE(router_->failed_over("t"));

  // The health loop marks the dead backend down within its window.
  for (int attempt = 0; attempt < 100; ++attempt) {
    if (router_->backend_state(owner) == BackendState::kDown) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(router_->backend_state(owner), BackendState::kDown);

  // Quantiles served from the replica cover the WHOLE stream (the replica
  // mirrored every acknowledged batch) within the configured eps.
  std::vector<Value> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  const std::vector<double> phis = {0.1, 0.25, 0.5, 0.75, 0.9};
  std::vector<Value> answers;
  ASSERT_TRUE(client.QueryMulti("t", phis, &answers).ok());
  ASSERT_EQ(answers.size(), phis.size());
  for (std::size_t i = 0; i < phis.size(); ++i) {
    EXPECT_NEAR(RankOf(sorted, answers[i]), phis[i], kEps)
        << "phi=" << phis[i];
  }

  // The replica holds every element the client was acknowledged for.
  mrl::Result<server::StatsReply> stats = client.Stats("t");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().tenant_count, kN);
}

// Replica resync: kill the REPLICA, write through (the mirror misses →
// dirty), restart the replica, let the health thread ship a
// SNAPSHOT→RESTORE, then kill the primary — the freshly resynced replica
// must serve the full stream.
TEST_F(RouterE2eTest, ReplicaResyncThenFailover) {
  RouterOptions options;
  options.replicate = true;
  StartRouter(std::move(options));
  Client client = ConnectRouter();

  constexpr double kEps = 0.02;
  constexpr std::size_t kN = 60000;
  constexpr std::size_t kBatch = 5000;
  TenantConfig config;
  config.eps = kEps;
  config.seed = 23;
  ASSERT_TRUE(client.CreateSketch("r", config).ok());

  const int owner = router_->OwnerIndexOf("r");
  const int replica = router_->ReplicaIndexOf("r");
  ASSERT_GE(replica, 0);

  const std::vector<Value> data = UniformStream(kN, 31);
  std::size_t sent = 0;
  for (; sent < kN / 3; sent += kBatch) {
    ASSERT_TRUE(client
                    .AddBatch("r", std::span<const Value>(data.data() + sent,
                                                          kBatch))
                    .ok());
  }

  // Replica goes away; the next batches miss their mirror.
  KillBackend(replica);
  for (; sent < (2 * kN) / 3; sent += kBatch) {
    ASSERT_TRUE(client
                    .AddBatch("r", std::span<const Value>(data.data() + sent,
                                                          kBatch))
                    .ok());
  }

  // Replica returns empty; the health thread resyncs it from the primary.
  RestartBackend(replica);
  bool resynced = false;
  for (int attempt = 0; attempt < 200 && !resynced; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    Result<Client> direct = Client::ConnectUnix(backend_uds_[replica]);
    if (!direct.ok()) continue;
    mrl::Result<server::StatsReply> stats = direct.value().Stats("r");
    resynced = stats.ok() && stats.value().tenant_present &&
               stats.value().tenant_count >= sent;
  }
  ASSERT_TRUE(resynced) << "replica was not resynced from the primary";

  // Finish the stream (mirrored again), then lose the primary for good.
  for (; sent < kN; sent += kBatch) {
    ASSERT_TRUE(client
                    .AddBatch("r", std::span<const Value>(data.data() + sent,
                                                          kBatch))
                    .ok());
  }
  KillBackend(owner);

  std::vector<Value> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  const std::vector<double> phis = {0.1, 0.5, 0.9};
  std::vector<Value> answers;
  ASSERT_TRUE(client.QueryMulti("r", phis, &answers).ok());
  ASSERT_EQ(answers.size(), phis.size());
  for (std::size_t i = 0; i < answers.size(); ++i) {
    EXPECT_NEAR(RankOf(sorted, answers[i]), phis[i], kEps)
        << "phi=" << phis[i];
  }
  mrl::Result<server::StatsReply> stats = client.Stats("r");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().tenant_count, kN);
}

}  // namespace
}  // namespace router
}  // namespace mrl
