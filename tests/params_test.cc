#include <cmath>

#include <gtest/gtest.h>

#include "core/params.h"
#include "util/math.h"

namespace mrl {
namespace {

// ---------------------------------------------------------- SolveUnknownN

struct EpsDelta {
  double eps;
  double delta;
};

class UnknownNSolverTest : public ::testing::TestWithParam<EpsDelta> {};

TEST_P(UnknownNSolverTest, SolutionSatisfiesAllConstraints) {
  const double eps = GetParam().eps;
  const double delta = GetParam().delta;
  Result<UnknownNParams> r = SolveUnknownN(eps, delta);
  ASSERT_TRUE(r.ok()) << r.status();
  const UnknownNParams& p = r.value();
  EXPECT_GE(p.b, 2);
  EXPECT_GE(p.k, 1u);
  EXPECT_GE(p.h, 1);
  EXPECT_GT(p.alpha, 0.0);
  EXPECT_LT(p.alpha, 1.0);

  const double ld = static_cast<double>(SaturatingBinomial(
      static_cast<std::uint64_t>(p.b + p.h - 2),
      static_cast<std::uint64_t>(p.h - 1)));
  const double ls = static_cast<double>(SaturatingBinomial(
      static_cast<std::uint64_t>(p.b + p.h - 3),
      static_cast<std::uint64_t>(p.h - 1)));
  const double k = static_cast<double>(p.k);
  // Eq. 1 (sampling): min(L_d k, 8/3 L_s k) >= ln(2/delta)/(2(1-a)^2 eps^2).
  const double lhs = std::min(ld * k, (8.0 / 3.0) * ls * k);
  const double rhs = std::log(2.0 / delta) /
                     (2.0 * (1.0 - p.alpha) * (1.0 - p.alpha) * eps * eps);
  EXPECT_GE(lhs * (1 + 1e-9) + 1, rhs);
  // Eq. 2 (tree): h + 1 <= 2 alpha eps k.
  EXPECT_LE(p.h + 1, 2.0 * p.alpha * eps * k * (1 + 1e-9) + 1);
  // Eq. 3 is implied by Eq. 2 (alpha < 1).
  EXPECT_LE(p.h + 1, 2.0 * eps * k * (1 + 1e-9) + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, UnknownNSolverTest,
    ::testing::Values(EpsDelta{0.1, 1e-2}, EpsDelta{0.1, 1e-4},
                      EpsDelta{0.05, 1e-3}, EpsDelta{0.01, 1e-2},
                      EpsDelta{0.01, 1e-4}, EpsDelta{0.005, 1e-3},
                      EpsDelta{0.001, 1e-4}, EpsDelta{0.3, 0.5}),
    [](const ::testing::TestParamInfo<EpsDelta>& info) {
      return "eps" + std::to_string(static_cast<int>(1e4 * info.param.eps)) +
             "_delta" +
             std::to_string(static_cast<int>(-std::log10(info.param.delta)));
    });

TEST(UnknownNSolverTest, MemoryGrowsAsEpsShrinks) {
  std::uint64_t prev = 0;
  for (double eps : {0.1, 0.05, 0.01, 0.005, 0.001}) {
    std::uint64_t mem = UnknownNMemoryElements(eps, 1e-4).value();
    EXPECT_GT(mem, prev) << "eps=" << eps;
    prev = mem;
  }
}

TEST(UnknownNSolverTest, MemoryGrowsSlowlyInDelta) {
  // Theorem 1: the delta dependence is log log — going from 1e-2 to 1e-6
  // must cost well under 2x.
  std::uint64_t loose = UnknownNMemoryElements(0.01, 1e-2).value();
  std::uint64_t tight = UnknownNMemoryElements(0.01, 1e-6).value();
  EXPECT_GE(tight, loose);
  EXPECT_LT(tight, 2 * loose);
}

TEST(UnknownNSolverTest, NearlyLinearInInverseEps) {
  // Theorem 1: space is O(eps^-1 log^2 eps^-1) — a 10x tighter eps should
  // cost far less than the reservoir baseline's 100x.
  std::uint64_t a = UnknownNMemoryElements(0.01, 1e-4).value();
  std::uint64_t bm = UnknownNMemoryElements(0.001, 1e-4).value();
  double ratio = static_cast<double>(bm) / static_cast<double>(a);
  EXPECT_GT(ratio, 8.0);
  EXPECT_LT(ratio, 40.0);
}

TEST(UnknownNSolverTest, ExtraHeightCostsMemory) {
  std::uint64_t base =
      SolveUnknownN(0.01, 1e-4, 0).value().MemoryElements();
  std::uint64_t taller =
      SolveUnknownN(0.01, 1e-4, 6).value().MemoryElements();
  EXPECT_GE(taller, base);
  EXPECT_LT(taller, 2 * base);  // the parallel overhead is modest
}

TEST(UnknownNSolverTest, RejectsInvalidArguments) {
  EXPECT_EQ(SolveUnknownN(0.0, 0.5).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SolveUnknownN(1.0, 0.5).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SolveUnknownN(0.01, 0.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SolveUnknownN(0.01, 1.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SolveUnknownN(0.01, 0.5, -1).status().code(),
            StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------ SolveKnownN

TEST(KnownNSolverTest, SmallStreamsUseDeterministicVariant) {
  Result<KnownNParams> p = SolveKnownN(0.01, 1e-4, 10000);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().rate, 1u);
  // Capacity covers the stream.
  const std::uint64_t leaves = SaturatingBinomial(
      static_cast<std::uint64_t>(p.value().b + p.value().h - 2),
      static_cast<std::uint64_t>(p.value().h - 1));
  EXPECT_GE(leaves * p.value().k, 10000u);
}

TEST(KnownNSolverTest, HugeStreamsSample) {
  Result<KnownNParams> p = SolveKnownN(0.01, 1e-4, std::uint64_t{1} << 40);
  ASSERT_TRUE(p.ok());
  EXPECT_GT(p.value().rate, 1u);
  EXPECT_GT(p.value().alpha, 0.0);
  EXPECT_LT(p.value().alpha, 1.0);
}

TEST(KnownNSolverTest, MemoryGrowsThenPlateaus) {
  // The Figure 4 "Known N" shape: nondecreasing-ish growth for small N,
  // then a plateau once sampling dominates.
  std::uint64_t mem_small = KnownNMemoryElements(0.01, 1e-4, 1000).value();
  std::uint64_t mem_mid =
      KnownNMemoryElements(0.01, 1e-4, 10'000'000).value();
  std::uint64_t mem_big =
      KnownNMemoryElements(0.01, 1e-4, std::uint64_t{1} << 50).value();
  std::uint64_t mem_huge =
      KnownNMemoryElements(0.01, 1e-4, std::uint64_t{1} << 60).value();
  EXPECT_LT(mem_small, mem_mid);
  // Plateau: another 2^10 of growth costs nothing.
  EXPECT_EQ(mem_big, mem_huge);
}

TEST(KnownNSolverTest, UnknownNWithinTwiceKnownN) {
  // The paper's headline comparison (Table 1): the unknown-N algorithm
  // needs no more than twice the memory of the known-N one.
  for (double eps : {0.05, 0.01, 0.005}) {
    std::uint64_t unknown = UnknownNMemoryElements(eps, 1e-4).value();
    std::uint64_t known =
        KnownNMemoryElements(eps, 1e-4, std::uint64_t{1} << 50).value();
    EXPECT_LE(unknown, 2 * known) << "eps=" << eps;
  }
}

TEST(KnownNSolverTest, RejectsZeroN) {
  EXPECT_EQ(SolveKnownN(0.01, 1e-4, 0).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------- Others

TEST(ReservoirMemoryTest, QuadraticGap) {
  // Section 2.2: reservoir needs O(eps^-2) while MRL99 needs ~eps^-1; at
  // eps = 0.001 the gap must be enormous.
  std::uint64_t reservoir = ReservoirMemoryElements(0.001, 1e-4);
  std::uint64_t mrl = UnknownNMemoryElements(0.001, 1e-4).value();
  EXPECT_GT(reservoir, 50 * mrl);
}

TEST(MultiQuantileMemoryTest, GrowsSlowlyWithP) {
  // Table 2: p from 1 to 1000 costs only a small factor.
  std::uint64_t p1 = MultiQuantileMemoryElements(0.01, 1e-4, 1).value();
  std::uint64_t p1000 =
      MultiQuantileMemoryElements(0.01, 1e-4, 1000).value();
  EXPECT_GE(p1000, p1);
  EXPECT_LT(p1000, 2 * p1);
}

TEST(MultiQuantileMemoryTest, RejectsZeroP) {
  EXPECT_EQ(MultiQuantileMemoryElements(0.01, 1e-4, 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PrecomputedGridMemoryTest, CostsMoreThanModerateP) {
  // Table 2's last column: the precompute trick costs noticeably more than
  // p = 1000 but is independent of p.
  std::uint64_t p1000 =
      MultiQuantileMemoryElements(0.01, 1e-4, 1000).value();
  std::uint64_t grid = PrecomputedGridMemoryElements(0.01, 1e-4).value();
  EXPECT_GT(grid, p1000);
}

}  // namespace
}  // namespace mrl
