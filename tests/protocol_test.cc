// Wire protocol round-trip and strictness tests (src/server/protocol.h).

#include "server/protocol.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "gtest/gtest.h"

namespace mrl {
namespace server {
namespace {

// Decodes a whole encoded request buffer into a FrameView, asserting well-
// formedness on the way.
FrameView MustDecode(const std::vector<std::uint8_t>& wire) {
  Result<FrameView> frame = DecodeFrame(wire.data(), wire.size());
  EXPECT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame.value().frame_size, wire.size());
  return frame.value();
}

TEST(Crc32Test, MatchesKnownVectors) {
  // The classic IEEE CRC-32 check value for "123456789".
  const char* check = "123456789";
  EXPECT_EQ(Crc32(reinterpret_cast<const std::uint8_t*>(check), 9),
            0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(TenantNameTest, Validation) {
  EXPECT_TRUE(IsValidTenantName("latency"));
  EXPECT_TRUE(IsValidTenantName("a"));
  EXPECT_TRUE(IsValidTenantName("svc-1.region_2"));
  EXPECT_TRUE(IsValidTenantName(std::string(kMaxTenantNameLen, 'x')));
  EXPECT_FALSE(IsValidTenantName(""));
  EXPECT_FALSE(IsValidTenantName(".hidden"));
  EXPECT_FALSE(IsValidTenantName("has space"));
  EXPECT_FALSE(IsValidTenantName("sla$h"));
  EXPECT_FALSE(IsValidTenantName(std::string(kMaxTenantNameLen + 1, 'x')));
  EXPECT_FALSE(IsValidTenantName(std::string_view("nul\0byte", 8)));
}

TEST(FrameTest, CreateSketchRoundTrip) {
  TenantConfig config;
  config.kind = SketchKind::kSharded;
  config.eps = 0.02;
  config.delta = 1e-3;
  config.num_shards = 8;
  config.seed = 42;
  std::vector<std::uint8_t> wire;
  EncodeCreateSketch("tenant-a", config, &wire);

  const FrameView frame = MustDecode(wire);
  ASSERT_EQ(frame.type, MsgType::kCreateSketch);
  Result<CreateSketchRequest> req =
      DecodeCreateSketch(frame.payload, frame.payload_len);
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req.value().name, "tenant-a");
  EXPECT_TRUE(req.value().config == config);
}

TEST(SketchKindTest, ValidatorCoversExactlyTheKnownKinds) {
  EXPECT_TRUE(IsKnownSketchKind(0));
  EXPECT_TRUE(IsKnownSketchKind(1));
  EXPECT_TRUE(IsKnownSketchKind(2));
  EXPECT_TRUE(IsKnownSketchKind(3));
  for (int kind = 4; kind <= 255; ++kind) {
    EXPECT_FALSE(IsKnownSketchKind(static_cast<std::uint8_t>(kind)))
        << "kind " << kind;
  }
  EXPECT_EQ(SketchKindName(SketchKind::kUnknownN), "unknown_n");
  EXPECT_EQ(SketchKindName(SketchKind::kSharded), "sharded");
  EXPECT_EQ(SketchKindName(SketchKind::kKll), "kll");
  EXPECT_EQ(SketchKindName(SketchKind::kDetReservoir), "det_reservoir");
  EXPECT_EQ(SketchKindName(static_cast<SketchKind>(200)), "invalid");
}

TEST(FrameTest, ProtocolV2KindsRoundTrip) {
  for (SketchKind kind : {SketchKind::kKll, SketchKind::kDetReservoir}) {
    TenantConfig config;
    config.kind = kind;
    config.eps = 0.01;
    config.delta = 1e-4;
    config.seed = 7;
    std::vector<std::uint8_t> wire;
    EncodeCreateSketch("t", config, &wire);
    const FrameView frame = MustDecode(wire);
    Result<CreateSketchRequest> req =
        DecodeCreateSketch(frame.payload, frame.payload_len);
    ASSERT_TRUE(req.ok()) << req.status().ToString();
    EXPECT_TRUE(req.value().config == config);
  }
}

TEST(FrameTest, UnknownSketchKindByteIsCleanError) {
  // Hand-build CREATE_SKETCH payloads carrying hostile kind bytes: every
  // one must come back as InvalidArgument from the decoder — never an
  // abort, and never a half-decoded request.
  for (int kind : {4, 5, 17, 128, 255}) {
    std::vector<std::uint8_t> wire;
    {
      FrameBuilder frame(MsgType::kCreateSketch, &wire);
      frame.PutName("t");
      frame.PutU8(static_cast<std::uint8_t>(kind));
      frame.PutDouble(0.01);   // eps
      frame.PutDouble(1e-4);   // delta
      frame.PutU32(4);         // num_shards
      frame.PutU64(1);         // seed
      frame.Finish();
    }
    const FrameView frame = MustDecode(wire);
    Result<CreateSketchRequest> req =
        DecodeCreateSketch(frame.payload, frame.payload_len);
    ASSERT_FALSE(req.ok()) << "kind " << kind;
    EXPECT_EQ(req.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ResponseTest, StatsReplyUnknownKindRejected) {
  StatsReply stats;
  stats.tenant_present = true;
  stats.tenant_kind = static_cast<SketchKind>(9);
  std::vector<std::uint8_t> wire;
  EncodeStatsOk(stats, &wire);
  const FrameView frame = MustDecode(wire);
  Result<ResponseView> response =
      DecodeResponse(frame.payload, frame.payload_len);
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(DecodeStatsOk(response.value()).ok());
}

TEST(FrameTest, AddBatchRoundTrip) {
  const std::vector<Value> values = {1.5, -2.25, 0.0, 1e300};
  std::vector<std::uint8_t> wire;
  EncodeAddBatch("t", values, &wire);

  const FrameView frame = MustDecode(wire);
  ASSERT_EQ(frame.type, MsgType::kAddBatch);
  Result<AddBatchRequest> req = DecodeAddBatch(frame.payload,
                                               frame.payload_len);
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req.value().name, "t");
  ASSERT_EQ(req.value().count, values.size());
  std::vector<double> decoded;
  ASSERT_TRUE(DecodeDoublesInto(req.value().values_le, req.value().count,
                                /*reject_nan=*/true, &decoded)
                  .ok());
  EXPECT_EQ(decoded, values);
}

TEST(FrameTest, QueryAndQueryMultiRoundTrip) {
  std::vector<std::uint8_t> wire;
  EncodeQuery("t", 0.5, &wire);
  FrameView frame = MustDecode(wire);
  Result<QueryRequest> q = DecodeQuery(frame.payload, frame.payload_len);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().name, "t");
  EXPECT_EQ(q.value().phi, 0.5);

  wire.clear();
  const std::vector<double> phis = {0.1, 0.5, 0.99};
  EncodeQueryMulti("t", phis, &wire);
  frame = MustDecode(wire);
  Result<QueryMultiRequest> qm =
      DecodeQueryMulti(frame.payload, frame.payload_len);
  ASSERT_TRUE(qm.ok());
  std::vector<double> decoded;
  ASSERT_TRUE(DecodeDoublesInto(qm.value().phis_le, qm.value().count,
                                /*reject_nan=*/true, &decoded)
                  .ok());
  EXPECT_EQ(decoded, phis);
}

TEST(FrameTest, NameRequestsRoundTrip) {
  for (MsgType type :
       {MsgType::kSnapshot, MsgType::kDelete, MsgType::kStats}) {
    std::vector<std::uint8_t> wire;
    EncodeNameRequest(type, "t", &wire);
    const FrameView frame = MustDecode(wire);
    ASSERT_EQ(frame.type, type);
    Result<NameRequest> req =
        DecodeNameRequest(type, frame.payload, frame.payload_len);
    ASSERT_TRUE(req.ok());
    EXPECT_EQ(req.value().name, "t");
  }
  // STATS (and only STATS) accepts an empty name: global statistics.
  std::vector<std::uint8_t> wire;
  EncodeNameRequest(MsgType::kStats, "", &wire);
  const FrameView frame = MustDecode(wire);
  EXPECT_TRUE(
      DecodeNameRequest(MsgType::kStats, frame.payload, frame.payload_len)
          .ok());
}

TEST(FrameTest, PingRoundTrip) {
  std::vector<std::uint8_t> wire;
  EncodePing(&wire);
  const FrameView frame = MustDecode(wire);
  ASSERT_EQ(frame.type, MsgType::kPing);
  EXPECT_EQ(frame.payload_len, 0u);
  EXPECT_TRUE(DecodePing(frame.payload, frame.payload_len).ok());
  // PING is strictly empty; a stray byte is rejected.
  const std::uint8_t junk[1] = {0};
  EXPECT_FALSE(DecodePing(junk, 1).ok());
}

TEST(FrameTest, FetchSummaryRoundTrip) {
  std::vector<std::uint8_t> wire;
  EncodeNameRequest(MsgType::kFetchSummary, "t", &wire);
  const FrameView frame = MustDecode(wire);
  ASSERT_EQ(frame.type, MsgType::kFetchSummary);
  Result<NameRequest> req =
      DecodeNameRequest(MsgType::kFetchSummary, frame.payload,
                        frame.payload_len);
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req.value().name, "t");
  // FETCH_SUMMARY needs a tenant; an empty name is rejected.
  wire.clear();
  EncodeNameRequest(MsgType::kStats, "", &wire);
  const FrameView empty = MustDecode(wire);
  EXPECT_FALSE(DecodeNameRequest(MsgType::kFetchSummary, empty.payload,
                                 empty.payload_len)
                   .ok());
}

TEST(FrameTest, RestoreRoundTrip) {
  TenantConfig config;
  config.kind = SketchKind::kSharded;
  config.eps = 0.02;
  config.delta = 1e-5;
  config.num_shards = 3;
  config.seed = 99;
  const std::uint8_t blob[4] = {1, 2, 3, 4};
  std::vector<std::uint8_t> wire;
  EncodeRestore("t", config, blob, &wire);
  const FrameView frame = MustDecode(wire);
  ASSERT_EQ(frame.type, MsgType::kRestore);
  Result<RestoreRequest> req = DecodeRestore(frame.payload, frame.payload_len);
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req.value().name, "t");
  EXPECT_TRUE(req.value().config == config);
  ASSERT_EQ(req.value().blob_len, sizeof(blob));
  EXPECT_EQ(std::memcmp(req.value().blob, blob, sizeof(blob)), 0);

  // A blob length that disagrees with the remaining bytes is rejected.
  std::vector<std::uint8_t> truncated(frame.payload,
                                      frame.payload + frame.payload_len - 1);
  EXPECT_FALSE(DecodeRestore(truncated.data(), truncated.size()).ok());
}

TEST(FrameTest, IncompleteBufferIsOutOfRange) {
  std::vector<std::uint8_t> wire;
  EncodeQuery("t", 0.5, &wire);
  for (std::size_t n = 0; n < wire.size(); ++n) {
    Result<FrameView> frame = DecodeFrame(wire.data(), n);
    ASSERT_FALSE(frame.ok());
    EXPECT_EQ(frame.status().code(), StatusCode::kOutOfRange)
        << "prefix length " << n;
  }
}

TEST(FrameTest, CorruptionIsRejected) {
  std::vector<std::uint8_t> wire;
  EncodeQuery("t", 0.5, &wire);

  // Any single flipped payload bit must fail the CRC.
  for (std::size_t i = kFrameHeaderSize; i < wire.size(); ++i) {
    std::vector<std::uint8_t> bad = wire;
    bad[i] ^= 0x01;
    Result<FrameView> frame = DecodeFrame(bad.data(), bad.size());
    ASSERT_FALSE(frame.ok());
    EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
  }

  std::vector<std::uint8_t> bad = wire;
  bad[4] = 99;  // version
  EXPECT_FALSE(DecodeFrame(bad.data(), bad.size()).ok());

  bad = wire;
  bad[5] = 0;  // type below range
  EXPECT_FALSE(DecodeFrame(bad.data(), bad.size()).ok());
  bad[5] = 12;  // type above range (11 = kRestore is the v3 ceiling)
  EXPECT_FALSE(DecodeFrame(bad.data(), bad.size()).ok());

  bad = wire;
  bad[6] = 1;  // reserved bits
  EXPECT_FALSE(DecodeFrame(bad.data(), bad.size()).ok());

  bad = wire;
  bad[0] = 0xFF;  // absurd length prefix
  bad[1] = 0xFF;
  bad[2] = 0xFF;
  bad[3] = 0xFF;
  Result<FrameView> frame = DecodeFrame(bad.data(), bad.size());
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameTest, SemanticValidation) {
  std::vector<std::uint8_t> wire;

  // phi outside (0, 1].
  for (double phi : {0.0, -0.5, 1.5,
                     std::numeric_limits<double>::quiet_NaN(),
                     std::numeric_limits<double>::infinity()}) {
    wire.clear();
    EncodeQuery("t", phi, &wire);
    const FrameView frame = MustDecode(wire);
    EXPECT_FALSE(DecodeQuery(frame.payload, frame.payload_len).ok())
        << "phi=" << phi;
  }

  // NaN values rejected at the boundary (keeps the sketches' NaN
  // CHECK-abort unreachable from the network).
  wire.clear();
  const std::vector<Value> values = {
      1.0, std::numeric_limits<double>::quiet_NaN()};
  EncodeAddBatch("t", values, &wire);
  const FrameView frame = MustDecode(wire);
  Result<AddBatchRequest> req = DecodeAddBatch(frame.payload,
                                               frame.payload_len);
  ASSERT_TRUE(req.ok());
  std::vector<double> decoded;
  EXPECT_FALSE(DecodeDoublesInto(req.value().values_le, req.value().count,
                                 /*reject_nan=*/true, &decoded)
                   .ok());

  // Bad tenant config.
  TenantConfig config;
  config.eps = 0.75;
  wire.clear();
  EncodeCreateSketch("t", config, &wire);
  const FrameView bad_eps = MustDecode(wire);
  EXPECT_FALSE(DecodeCreateSketch(bad_eps.payload, bad_eps.payload_len).ok());
}

TEST(FrameTest, TrailingBytesRejected) {
  // Append a byte to the QUERY payload and refresh length + CRC: framing is
  // fine, but the request decoder must reject the excess.
  std::vector<std::uint8_t> wire;
  EncodeQuery("t", 0.5, &wire);
  wire.push_back(0x00);
  const std::uint32_t body_len =
      static_cast<std::uint32_t>(wire.size() - 4);
  for (int i = 0; i < 4; ++i) {
    wire[static_cast<std::size_t>(i)] = (body_len >> (8 * i)) & 0xff;
  }
  const std::uint32_t crc =
      Crc32(wire.data() + kFrameHeaderSize, wire.size() - kFrameHeaderSize);
  for (int i = 0; i < 4; ++i) {
    wire[8 + static_cast<std::size_t>(i)] = (crc >> (8 * i)) & 0xff;
  }
  const FrameView frame = MustDecode(wire);
  EXPECT_FALSE(DecodeQuery(frame.payload, frame.payload_len).ok());
}

TEST(ResponseTest, ErrorRoundTrip) {
  std::vector<std::uint8_t> wire;
  EncodeErrorResponse(MsgType::kQuery, Status::NotFound("unknown tenant"),
                      &wire);
  const FrameView frame = MustDecode(wire);
  ASSERT_EQ(frame.type, MsgType::kResponse);
  Result<ResponseView> response =
      DecodeResponse(frame.payload, frame.payload_len);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().request_type, MsgType::kQuery);
  EXPECT_FALSE(response.value().ok());
  const Status status = response.value().ToStatus();
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "unknown tenant");
}

TEST(ResponseTest, TypedBodiesRoundTrip) {
  std::vector<std::uint8_t> wire;

  EncodeAddBatchOk(12345, &wire);
  FrameView frame = MustDecode(wire);
  Result<ResponseView> response =
      DecodeResponse(frame.payload, frame.payload_len);
  ASSERT_TRUE(response.ok());
  Result<std::uint64_t> count = DecodeAddBatchOk(response.value());
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), 12345u);

  wire.clear();
  EncodeQueryOk(3.25, &wire);
  frame = MustDecode(wire);
  response = DecodeResponse(frame.payload, frame.payload_len);
  ASSERT_TRUE(response.ok());
  Result<double> answer = DecodeQueryOk(response.value());
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer.value(), 3.25);

  wire.clear();
  const std::vector<Value> values = {1.0, 2.0, 3.0};
  EncodeQueryMultiOk(values, &wire);
  frame = MustDecode(wire);
  response = DecodeResponse(frame.payload, frame.payload_len);
  ASSERT_TRUE(response.ok());
  std::vector<Value> out;
  ASSERT_TRUE(DecodeQueryMultiOk(response.value(), &out).ok());
  EXPECT_EQ(out, values);

  wire.clear();
  const std::vector<std::uint8_t> blob = {0xDE, 0xAD, 0xBE, 0xEF};
  EncodeSnapshotOk(blob, &wire);
  frame = MustDecode(wire);
  response = DecodeResponse(frame.payload, frame.payload_len);
  ASSERT_TRUE(response.ok());
  std::vector<std::uint8_t> blob_out;
  ASSERT_TRUE(DecodeSnapshotOk(response.value(), &blob_out).ok());
  EXPECT_EQ(blob_out, blob);

  wire.clear();
  StatsReply stats;
  stats.num_tenants = 2;
  stats.total_count = 1000;
  stats.tenant_present = true;
  stats.tenant_kind = SketchKind::kSharded;
  stats.tenant_count = 600;
  stats.tenant_memory_elements = 4096;
  EncodeStatsOk(stats, &wire);
  frame = MustDecode(wire);
  response = DecodeResponse(frame.payload, frame.payload_len);
  ASSERT_TRUE(response.ok());
  Result<StatsReply> stats_out = DecodeStatsOk(response.value());
  ASSERT_TRUE(stats_out.ok());
  EXPECT_EQ(stats_out.value().num_tenants, 2u);
  EXPECT_EQ(stats_out.value().total_count, 1000u);
  EXPECT_TRUE(stats_out.value().tenant_present);
  EXPECT_EQ(stats_out.value().tenant_kind, SketchKind::kSharded);
  EXPECT_EQ(stats_out.value().tenant_count, 600u);
  EXPECT_EQ(stats_out.value().tenant_memory_elements, 4096u);
}

TEST(ResponseTest, MixedOkAndErrorShapesRejected) {
  // Hand-build a response claiming OK but carrying an error message.
  std::vector<std::uint8_t> wire;
  {
    FrameBuilder frame(MsgType::kResponse, &wire);
    frame.PutU8(static_cast<std::uint8_t>(MsgType::kQuery));
    frame.PutU8(static_cast<std::uint8_t>(StatusCode::kOk));
    frame.PutU16(3);
    const char* msg = "boo";
    frame.PutBytes(reinterpret_cast<const std::uint8_t*>(msg), 3);
    frame.Finish();
  }
  FrameView frame = MustDecode(wire);
  EXPECT_FALSE(DecodeResponse(frame.payload, frame.payload_len).ok());

  // And an error that smuggles a body.
  wire.clear();
  {
    FrameBuilder builder(MsgType::kResponse, &wire);
    builder.PutU8(static_cast<std::uint8_t>(MsgType::kQuery));
    builder.PutU8(static_cast<std::uint8_t>(StatusCode::kNotFound));
    builder.PutU16(0);
    builder.PutU64(7);  // body where none is allowed
    builder.Finish();
  }
  frame = MustDecode(wire);
  EXPECT_FALSE(DecodeResponse(frame.payload, frame.payload_len).ok());
}

TEST(FrameTest, StreamDecodingConsumesExactFrames) {
  // Two back-to-back frames in one buffer: DecodeFrame must report the
  // first frame's exact size so a stream loop can advance.
  std::vector<std::uint8_t> wire;
  EncodeQuery("a", 0.25, &wire);
  const std::size_t first = wire.size();
  EncodeNameRequest(MsgType::kDelete, "b", &wire);

  Result<FrameView> frame = DecodeFrame(wire.data(), wire.size());
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame.value().type, MsgType::kQuery);
  EXPECT_EQ(frame.value().frame_size, first);

  Result<FrameView> second = DecodeFrame(wire.data() + first,
                                         wire.size() - first);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().type, MsgType::kDelete);
}

}  // namespace
}  // namespace server
}  // namespace mrl
