#include <vector>

#include <gtest/gtest.h>

#include "app/equidepth_histogram.h"
#include "app/online_aggregation.h"
#include "app/splitters.h"
#include "stream/generator.h"

namespace mrl {
namespace {

// -------------------------------------------------------------- Histogram

TEST(EquiDepthHistogramTest, RejectsTooFewBuckets) {
  EquiDepthHistogram::Options options;
  options.num_buckets = 1;
  EXPECT_EQ(EquiDepthHistogram::Create(options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EquiDepthHistogramTest, BoundariesAreApproximateQuantiles) {
  StreamSpec spec;
  spec.n = 50000;
  spec.seed = 3;
  spec.distribution = "exponential";
  Dataset ds = GenerateStream(spec);
  EquiDepthHistogram::Options options;
  options.num_buckets = 10;
  options.seed = 5;
  EquiDepthHistogram hist =
      std::move(EquiDepthHistogram::Create(options)).value();
  for (Value v : ds.values()) hist.Add(v);
  std::vector<Value> bs = hist.Boundaries().value();
  ASSERT_EQ(bs.size(), 9u);
  for (std::size_t i = 0; i < bs.size(); ++i) {
    // Default eps = 1/(10*p) = 0.01.
    EXPECT_LE(ds.QuantileError(bs[i], (i + 1) / 10.0), 0.01)
        << "boundary " << i;
  }
}

TEST(EquiDepthHistogramTest, BucketsCoverMinToMax) {
  StreamSpec spec;
  spec.n = 20000;
  spec.seed = 7;
  Dataset ds = GenerateStream(spec);
  EquiDepthHistogram::Options options;
  options.num_buckets = 4;
  EquiDepthHistogram hist =
      std::move(EquiDepthHistogram::Create(options)).value();
  for (Value v : ds.values()) hist.Add(v);
  auto buckets = hist.Buckets().value();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_DOUBLE_EQ(buckets.front().lo, ds.Min());
  EXPECT_DOUBLE_EQ(buckets.back().hi, ds.Max());
  for (std::size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_DOUBLE_EQ(buckets[i].lo, buckets[i - 1].hi);
  }
  for (const auto& b : buckets) {
    EXPECT_EQ(b.depth, 5000u);
  }
}

TEST(EquiDepthHistogramTest, StaysAccurateWhileTableGrows) {
  // Section 1.2's motivating scenario: the histogram must be accurate at
  // all times as the table grows.
  EquiDepthHistogram::Options options;
  options.num_buckets = 5;
  options.seed = 11;
  EquiDepthHistogram hist =
      std::move(EquiDepthHistogram::Create(options)).value();
  StreamSpec spec;
  spec.n = 60000;
  spec.seed = 13;
  Dataset ds = GenerateStream(spec);
  std::vector<Value> prefix;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    hist.Add(ds.values()[i]);
    prefix.push_back(ds.values()[i]);
    if ((i + 1) % 15000 == 0) {
      Dataset prefix_ds(prefix);
      std::vector<Value> bs = hist.Boundaries().value();
      for (std::size_t j = 0; j < bs.size(); ++j) {
        EXPECT_LE(prefix_ds.QuantileError(bs[j], (j + 1) / 5.0), 0.02)
            << "boundary " << j << " at " << (i + 1) << " rows";
      }
    }
  }
}

// -------------------------------------------------------------- Splitters

TEST(SplittersTest, SequentialSkewIsSmall) {
  StreamSpec spec;
  spec.n = 80000;
  spec.seed = 17;
  spec.distribution = "zipf";
  Dataset ds = GenerateStream(spec);
  SplitterOptions options;
  options.num_parts = 8;
  options.eps = 0.005;
  options.seed = 19;
  std::vector<Value> splitters =
      ComputeSplittersSequential(ds.values(), options).value();
  ASSERT_EQ(splitters.size(), 7u);
  // Zipf has huge duplicate runs, so perfect balance is impossible for any
  // value-based splitter; the skew bound is what matters on continuous
  // data. Here just require sane, ordered splitters.
  for (std::size_t i = 1; i < splitters.size(); ++i) {
    EXPECT_LE(splitters[i - 1], splitters[i]);
  }
}

TEST(SplittersTest, ContinuousDataSkewWithinTwoEps) {
  StreamSpec spec;
  spec.n = 100000;
  spec.seed = 23;
  Dataset ds = GenerateStream(spec);
  SplitterOptions options;
  options.num_parts = 10;
  options.eps = 0.004;
  options.seed = 29;
  std::vector<Value> splitters =
      ComputeSplittersSequential(ds.values(), options).value();
  EXPECT_LE(MaxPartitionSkew(ds.values(), splitters), 2 * options.eps);
}

TEST(SplittersTest, ParallelMatchesGuarantee) {
  std::vector<std::vector<Value>> shards;
  for (int i = 0; i < 4; ++i) {
    StreamSpec spec;
    spec.n = 25000;
    spec.seed = 100 + static_cast<std::uint64_t>(i);
    shards.push_back(GenerateStream(spec).values());
  }
  std::vector<Value> all;
  for (const auto& s : shards) all.insert(all.end(), s.begin(), s.end());
  SplitterOptions options;
  options.num_parts = 8;
  options.eps = 0.01;
  options.seed = 31;
  std::vector<Value> splitters =
      ComputeSplittersParallel(shards, options).value();
  ASSERT_EQ(splitters.size(), 7u);
  EXPECT_LE(MaxPartitionSkew(all, splitters), 2 * options.eps + 0.005);
}

TEST(SplittersTest, RejectsBadPartCount) {
  EXPECT_EQ(
      ComputeSplittersSequential({1.0}, {.num_parts = 1}).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(SplittersTest, SkewMetricOnPerfectSplit) {
  std::vector<Value> data;
  for (int i = 0; i < 100; ++i) data.push_back(i);
  // Splitters 24.5 / 49.5 / 74.5 split 100 elements into four 25s.
  EXPECT_DOUBLE_EQ(MaxPartitionSkew(data, {24.5, 49.5, 74.5}), 0.0);
  // Degenerate splitter: everything lands in one part.
  EXPECT_NEAR(MaxPartitionSkew(data, {1000.0}), 0.5, 1e-12);
}

// ------------------------------------------------------------ Aggregation

TEST(OnlineAggregatorTest, ValidatesOptions) {
  OnlineAggregator::Options options;
  options.tracked_phis = {};
  EXPECT_FALSE(OnlineAggregator::Create(options).ok());
  options.tracked_phis = {0.5};
  options.report_every = 0;
  EXPECT_FALSE(OnlineAggregator::Create(options).ok());
  options.report_every = 10;
  options.tracked_phis = {1.5};
  EXPECT_FALSE(OnlineAggregator::Create(options).ok());
}

TEST(OnlineAggregatorTest, RecordsRefiningHistory) {
  OnlineAggregator::Options options;
  options.eps = 0.02;
  options.report_every = 5000;
  options.seed = 37;
  OnlineAggregator agg =
      std::move(OnlineAggregator::Create(options)).value();
  StreamSpec spec;
  spec.n = 42000;
  spec.seed = 41;
  Dataset ds = GenerateStream(spec);
  for (Value v : ds.values()) agg.Add(v);
  ASSERT_EQ(agg.history().size(), 8u);  // 42000 / 5000
  for (std::size_t i = 0; i < agg.history().size(); ++i) {
    EXPECT_EQ(agg.history()[i].rows_seen, (i + 1) * 5000);
    EXPECT_EQ(agg.history()[i].estimates.size(), 3u);
  }
  // The final snapshot's median is eps-accurate for the full stream's
  // 40000-prefix; just check the current estimate against the whole set.
  std::vector<Value> current = agg.Current().value();
  EXPECT_LE(ds.QuantileError(current[1], 0.5), options.eps);
}

}  // namespace
}  // namespace mrl
