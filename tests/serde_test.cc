#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/extreme.h"
#include "core/known_n.h"
#include "core/unknown_n.h"
#include "stream/generator.h"
#include "util/serde.h"

namespace mrl {
namespace {

// ----------------------------------------------------------- Writer/Reader

TEST(SerdeTest, PrimitivesRoundTrip) {
  BinaryWriter w;
  w.PutU8(0xAB);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutI32(-42);
  w.PutDouble(-0.15625);
  w.PutValues({1.0, -2.5, 3.75});
  std::vector<std::uint8_t> bytes = w.Take();

  BinaryReader r(bytes);
  std::uint8_t u8;
  std::uint32_t u32;
  std::uint64_t u64;
  std::int32_t i32;
  double d;
  std::vector<Value> values;
  ASSERT_TRUE(r.GetU8(&u8));
  ASSERT_TRUE(r.GetU32(&u32));
  ASSERT_TRUE(r.GetU64(&u64));
  ASSERT_TRUE(r.GetI32(&i32));
  ASSERT_TRUE(r.GetDouble(&d));
  ASSERT_TRUE(r.GetValues(&values));
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i32, -42);
  EXPECT_DOUBLE_EQ(d, -0.15625);
  EXPECT_EQ(values, (std::vector<Value>{1.0, -2.5, 3.75}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, TruncatedReadFailsAndLatches) {
  BinaryWriter w;
  w.PutU32(7);
  std::vector<std::uint8_t> bytes = w.Take();
  BinaryReader r(bytes);
  std::uint64_t u64;
  EXPECT_FALSE(r.GetU64(&u64));
  EXPECT_FALSE(r.status().ok());
  // Subsequent reads keep failing without touching memory.
  std::uint8_t u8;
  EXPECT_FALSE(r.GetU8(&u8));
}

TEST(SerdeTest, HostileLengthPrefixRejected) {
  BinaryWriter w;
  w.PutU64(std::uint64_t{1} << 60);  // claims 2^60 doubles follow
  std::vector<std::uint8_t> bytes = w.Take();
  BinaryReader r(bytes);
  std::vector<Value> values;
  EXPECT_FALSE(r.GetValues(&values));
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerdeTest, RandomStateRoundTrip) {
  Random a(12345);
  a.NextUint64();
  a.NextUint64();
  Random b = Random::FromState(a.SaveState());
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(SerdeTest, BlockSamplerStateRoundTripMidBlock) {
  BlockSampler a(Random(5), 8);
  for (int i = 0; i < 13; ++i) a.Add(i);  // mid-block: 13 = 8 + 5
  BlockSampler b = BlockSampler::FromState(a.SaveState());
  EXPECT_EQ(b.rate(), a.rate());
  EXPECT_EQ(b.pending_count(), a.pending_count());
  EXPECT_EQ(b.pending_candidate(), a.pending_candidate());
  for (int i = 13; i < 200; ++i) {
    auto ra = a.Add(i);
    auto rb = b.Add(i);
    ASSERT_EQ(ra.has_value(), rb.has_value());
    if (ra) {
      EXPECT_DOUBLE_EQ(*ra, *rb);
    }
  }
}

// ----------------------------------------------------- Sketch checkpoints

class SketchCheckpointTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SketchCheckpointTest, RoundTripAtVariousCutPoints) {
  // Serialize after `cut` elements, restore, and feed the identical
  // remainder to both: every subsequent answer must match bit-for-bit.
  const std::size_t cut = GetParam();
  StreamSpec spec;
  spec.n = 50'000;
  spec.seed = 3;
  Dataset ds = GenerateStream(spec);

  UnknownNParams p;
  p.b = 4;
  p.k = 64;
  p.h = 3;
  p.alpha = 0.5;
  UnknownNOptions options;
  options.params = p;  // small params: collapses/sampling within 50k
  options.seed = 9;
  UnknownNSketch original = std::move(UnknownNSketch::Create(options)).value();
  for (std::size_t i = 0; i < cut; ++i) original.Add(ds.values()[i]);

  std::vector<std::uint8_t> bytes = original.Serialize();
  Result<UnknownNSketch> restored_r = UnknownNSketch::Deserialize(bytes);
  ASSERT_TRUE(restored_r.ok()) << restored_r.status();
  UnknownNSketch& restored = restored_r.value();

  EXPECT_EQ(restored.count(), original.count());
  EXPECT_EQ(restored.HeldWeight(), original.HeldWeight());
  EXPECT_EQ(restored.sampling_rate(), original.sampling_rate());

  for (std::size_t i = cut; i < ds.size(); ++i) {
    original.Add(ds.values()[i]);
    restored.Add(ds.values()[i]);
  }
  EXPECT_EQ(restored.HeldWeight(), ds.size());
  for (double phi : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    EXPECT_DOUBLE_EQ(restored.Query(phi).value(),
                     original.Query(phi).value())
        << "cut=" << cut << " phi=" << phi;
  }
  EXPECT_EQ(restored.tree_stats().num_collapses,
            original.tree_stats().num_collapses);
}

INSTANTIATE_TEST_SUITE_P(
    CutPoints, SketchCheckpointTest,
    ::testing::Values(0, 1, 63, 64, 65, 1000, 4096, 12345, 50'000),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      return "cut" + std::to_string(info.param);
    });

TEST(SketchCheckpointTest, SolvedParamsRoundTrip) {
  UnknownNOptions options;
  options.eps = 0.02;
  options.delta = 1e-3;
  options.seed = 21;
  UnknownNSketch sketch = std::move(UnknownNSketch::Create(options)).value();
  StreamSpec spec;
  spec.n = 30'000;
  spec.seed = 7;
  Dataset ds = GenerateStream(spec);
  for (Value v : ds.values()) sketch.Add(v);
  Result<UnknownNSketch> restored =
      UnknownNSketch::Deserialize(sketch.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_DOUBLE_EQ(restored.value().Query(0.5).value(),
                   sketch.Query(0.5).value());
  EXPECT_EQ(restored.value().params().b, sketch.params().b);
  EXPECT_EQ(restored.value().params().k, sketch.params().k);
}

TEST(SketchCheckpointTest, RejectsGarbage) {
  EXPECT_EQ(UnknownNSketch::Deserialize({}).status().code(),
            StatusCode::kInvalidArgument);
  std::vector<std::uint8_t> junk(100, 0x5A);
  EXPECT_EQ(UnknownNSketch::Deserialize(junk).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SketchCheckpointTest, RejectsTruncation) {
  UnknownNParams p;
  p.b = 3;
  p.k = 16;
  p.h = 2;
  p.alpha = 0.5;
  UnknownNOptions options;
  options.params = p;
  UnknownNSketch sketch = std::move(UnknownNSketch::Create(options)).value();
  for (int i = 0; i < 500; ++i) sketch.Add(i);
  std::vector<std::uint8_t> bytes = sketch.Serialize();
  // Every strict prefix must be rejected cleanly (no crash, no success).
  for (std::size_t len : {std::size_t{0}, bytes.size() / 4,
                          bytes.size() / 2, bytes.size() - 1}) {
    std::vector<std::uint8_t> prefix(bytes.begin(),
                                     bytes.begin() + static_cast<long>(len));
    EXPECT_FALSE(UnknownNSketch::Deserialize(prefix).ok()) << "len=" << len;
  }
}

TEST(SketchCheckpointTest, RejectsTrailingBytes) {
  UnknownNParams p;
  p.b = 3;
  p.k = 16;
  p.h = 2;
  p.alpha = 0.5;
  UnknownNOptions options;
  options.params = p;
  UnknownNSketch sketch = std::move(UnknownNSketch::Create(options)).value();
  sketch.Add(1.0);
  std::vector<std::uint8_t> bytes = sketch.Serialize();
  bytes.push_back(0);
  EXPECT_FALSE(UnknownNSketch::Deserialize(bytes).ok());
}

TEST(SketchCheckpointTest, RejectsBitFlippedFullBuffer) {
  // Flip bytes across the checkpoint; decoding must never crash, and if it
  // "succeeds" the restored sketch must at least be internally queryable.
  UnknownNParams p;
  p.b = 3;
  p.k = 32;
  p.h = 2;
  p.alpha = 0.5;
  UnknownNOptions options;
  options.params = p;
  options.seed = 13;
  UnknownNSketch sketch = std::move(UnknownNSketch::Create(options)).value();
  for (int i = 0; i < 1000; ++i) sketch.Add(i);
  std::vector<std::uint8_t> bytes = sketch.Serialize();
  int rejected = 0;
  for (std::size_t pos = 0; pos < bytes.size(); pos += 7) {
    std::vector<std::uint8_t> corrupted = bytes;
    corrupted[pos] ^= 0xFF;
    Result<UnknownNSketch> r = UnknownNSketch::Deserialize(corrupted);
    if (!r.ok()) {
      ++rejected;
    } else {
      (void)r.value().Query(0.5);  // must not crash
    }
  }
  EXPECT_GT(rejected, 0);
}

// The same hostile-input contract holds for every checkpointable sketch
// kind, not just unknown-N: trailing bytes, truncation at any prefix, and
// semantically illegal pools must all come back as Status, never a crash.

KnownNSketch MakeKnownNForCorruption() {
  KnownNOptions options;
  options.eps = 0.05;
  options.delta = 1e-3;
  options.n = 5000;
  options.seed = 17;
  KnownNSketch sketch = std::move(KnownNSketch::Create(options)).value();
  for (int i = 0; i < 3000; ++i) sketch.Add(static_cast<Value>(i * 31 % 997));
  return sketch;
}

ExtremeValueSketch MakeExtremeForCorruption() {
  ExtremeValueOptions options;
  options.phi = 0.01;
  options.eps = 0.005;
  options.delta = 1e-3;
  options.n = 5000;
  options.seed = 17;
  ExtremeValueSketch sketch =
      std::move(ExtremeValueSketch::Create(options)).value();
  for (int i = 0; i < 3000; ++i) sketch.Add(static_cast<Value>(i * 31 % 997));
  return sketch;
}

TEST(KnownNCheckpointTest, RejectsTrailingBytes) {
  std::vector<std::uint8_t> bytes = MakeKnownNForCorruption().Serialize();
  bytes.push_back(0);
  EXPECT_EQ(KnownNSketch::Deserialize(bytes).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(KnownNCheckpointTest, RejectsTruncation) {
  std::vector<std::uint8_t> bytes = MakeKnownNForCorruption().Serialize();
  for (std::size_t len : {std::size_t{0}, std::size_t{4}, bytes.size() / 4,
                          bytes.size() / 2, bytes.size() - 1}) {
    std::vector<std::uint8_t> prefix(bytes.begin(),
                                     bytes.begin() + static_cast<long>(len));
    EXPECT_FALSE(KnownNSketch::Deserialize(prefix).ok()) << "len=" << len;
  }
}

TEST(KnownNCheckpointTest, BitFlipsNeverCrash) {
  std::vector<std::uint8_t> bytes = MakeKnownNForCorruption().Serialize();
  int rejected = 0;
  for (std::size_t pos = 0; pos < bytes.size(); pos += 7) {
    std::vector<std::uint8_t> corrupted = bytes;
    corrupted[pos] ^= 0xFF;
    Result<KnownNSketch> r = KnownNSketch::Deserialize(corrupted);
    if (!r.ok()) {
      ++rejected;
    } else {
      (void)r.value().Query(0.5);  // must not crash
    }
  }
  EXPECT_GT(rejected, 0);
}

TEST(ExtremeCheckpointTest, RejectsTrailingBytes) {
  std::vector<std::uint8_t> bytes = MakeExtremeForCorruption().Serialize();
  bytes.push_back(0);
  EXPECT_EQ(ExtremeValueSketch::Deserialize(bytes).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ExtremeCheckpointTest, RejectsTruncation) {
  std::vector<std::uint8_t> bytes = MakeExtremeForCorruption().Serialize();
  for (std::size_t len : {std::size_t{0}, std::size_t{4}, bytes.size() / 4,
                          bytes.size() / 2, bytes.size() - 1}) {
    std::vector<std::uint8_t> prefix(bytes.begin(),
                                     bytes.begin() + static_cast<long>(len));
    EXPECT_FALSE(ExtremeValueSketch::Deserialize(prefix).ok())
        << "len=" << len;
  }
}

TEST(ExtremeCheckpointTest, BitFlipsNeverCrash) {
  std::vector<std::uint8_t> bytes = MakeExtremeForCorruption().Serialize();
  int rejected = 0;
  for (std::size_t pos = 0; pos < bytes.size(); pos += 7) {
    std::vector<std::uint8_t> corrupted = bytes;
    corrupted[pos] ^= 0xFF;
    Result<ExtremeValueSketch> r = ExtremeValueSketch::Deserialize(corrupted);
    if (!r.ok()) {
      ++rejected;
    } else {
      (void)r.value().Query(0.01);  // must not crash
    }
  }
  EXPECT_GT(rejected, 0);
}

TEST(SketchCheckpointTest, RejectsIllegalPoolState) {
  // Serialize a sketch whose pool has a full buffer, then rewrite that
  // buffer's payload to be unsorted by swapping two value fields. The
  // decoder must notice the pool is illegal (audit::CheckFramework runs
  // inside DeserializeFrom in every build mode) rather than accept a
  // sketch that would answer queries from corrupt runs.
  UnknownNParams p;
  p.b = 3;
  p.k = 16;
  p.h = 2;
  p.alpha = 0.5;
  UnknownNOptions options;
  options.params = p;
  options.seed = 5;
  UnknownNSketch sketch = std::move(UnknownNSketch::Create(options)).value();
  for (int i = 0; i < 400; ++i) sketch.Add(static_cast<Value>(i));
  ASSERT_GT(sketch.framework().FullWeight(), 0u);
  std::vector<std::uint8_t> bytes = sketch.Serialize();

  // Find 8-byte little-endian doubles of two adjacent ascending values in
  // some full buffer by scanning for any sorted pair and swapping them.
  int rejections = 0;
  for (std::size_t pos = 0; pos + 16 <= bytes.size(); ++pos) {
    double a;
    double b;
    std::memcpy(&a, bytes.data() + pos, 8);
    std::memcpy(&b, bytes.data() + pos + 8, 8);
    if (std::isfinite(a) && std::isfinite(b) && a < b && a >= 0 &&
        b < 400) {
      std::vector<std::uint8_t> corrupted = bytes;
      // Swap the two doubles: values become locally descending.
      std::memcpy(corrupted.data() + pos, &b, 8);
      std::memcpy(corrupted.data() + pos + 8, &a, 8);
      Result<UnknownNSketch> r = UnknownNSketch::Deserialize(corrupted);
      if (!r.ok()) ++rejections;
    }
  }
  EXPECT_GT(rejections, 0);
}

}  // namespace
}  // namespace mrl
