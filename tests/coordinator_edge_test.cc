// Edge cases of the Section 6 coordinator's partial-buffer staging rules
// and the framework introspection surface.

#include <vector>

#include <gtest/gtest.h>

#include "core/collapse_policy.h"
#include "core/framework.h"
#include "core/parallel.h"
#include "core/weighted_merge.h"
#include "stream/dataset.h"

namespace mrl {
namespace {

UnknownNParams TinyParams(std::size_t k) {
  UnknownNParams p;
  p.b = 3;
  p.k = k;
  p.h = 2;
  p.alpha = 0.5;
  return p;
}

TEST(CoordinatorEdgeTest, StagingPromotesOnExactFill) {
  ParallelCoordinator coordinator(TinyParams(4), 1);
  // Two 2-element partials of equal weight fill B0 exactly once.
  coordinator.Ingest({{{4.0, 3.0}, 5, false}});
  coordinator.Ingest({{{2.0, 1.0}, 5, false}});
  // The promoted buffer must answer as a weight-5 run over {1,2,3,4}.
  EXPECT_DOUBLE_EQ(coordinator.Query(0.5).value(), 2.0);
  EXPECT_DOUBLE_EQ(coordinator.Query(1.0).value(), 4.0);
  EXPECT_EQ(coordinator.ReceivedWeight(), 20u);
}

TEST(CoordinatorEdgeTest, StagingCarriesRemainderAcrossPromotion) {
  ParallelCoordinator coordinator(TinyParams(4), 1);
  // 3 staged + 3 incoming = 6: one promotion of 4, remainder of 2 stays.
  coordinator.Ingest({{{1.0, 2.0, 3.0}, 2, false}});
  coordinator.Ingest({{{4.0, 5.0, 6.0}, 2, false}});
  EXPECT_DOUBLE_EQ(coordinator.Query(1.0).value(), 6.0);
  EXPECT_DOUBLE_EQ(coordinator.Query(1e-9).value(), 1.0);
}

TEST(CoordinatorEdgeTest, ManySmallPartialsSameWeight) {
  ParallelCoordinator coordinator(TinyParams(3), 2);
  for (int i = 0; i < 20; ++i) {
    coordinator.Ingest({{{static_cast<Value>(i)}, 1, false}});
  }
  EXPECT_EQ(coordinator.ReceivedWeight(), 20u);
  Value med = coordinator.Query(0.5).value();
  EXPECT_GE(med, 4.0);
  EXPECT_LE(med, 15.0);
}

TEST(CoordinatorEdgeTest, HeavierIncomingShrinksStaging) {
  // Staging holds weight-1 elements; a weight-8 partial arrives. The
  // staging must be subsampled (keep ~1/8) and re-weighted to 8; total
  // represented weight stays ~constant in expectation.
  ParallelCoordinator coordinator(TinyParams(64), 7);
  std::vector<Value> light;
  for (int i = 0; i < 40; ++i) light.push_back(i);
  coordinator.Ingest({{light, 1, false}});
  coordinator.Ingest({{{1000.0, 1001.0}, 8, false}});
  EXPECT_EQ(coordinator.ReceivedWeight(), 40u + 16u);
  // Querying still works and the top quantile comes from the heavy batch.
  EXPECT_GE(coordinator.Query(1.0).value(), 1000.0);
}

TEST(CoordinatorEdgeTest, MixedFullAndPartialInOneShipment) {
  ParallelCoordinator coordinator(TinyParams(2), 3);
  coordinator.Ingest({
      {{1.0, 2.0}, 4, true},    // full (k = 2)
      {{9.0}, 4, false},        // partial
      {{5.0}, 1, false},        // tail with a different weight
  });
  EXPECT_EQ(coordinator.ReceivedWeight(), 8u + 4u + 1u);
  EXPECT_TRUE(coordinator.Query(0.5).ok());
}

TEST(CoordinatorEdgeTest, ExtremeWeightRatioReconciliation) {
  // Weight-1 staging meets a weight-1000 partial: the staging survives
  // Bernoulli(1/1000) subsampling essentially never, but the *accounted*
  // weight must stay within the reconciliation's drift bound — the drift
  // per reconciliation is at most the lighter buffer's total weight.
  const Weight heavy = 1000;
  std::vector<Value> light;
  for (int i = 0; i < 30; ++i) light.push_back(static_cast<Value>(i));
  const Weight light_total = 1 * light.size();

  ParallelCoordinator coordinator(TinyParams(64), 123);
  coordinator.Ingest({{light, 1, false}});
  coordinator.Ingest({{{5000.0, 6000.0}, heavy, false}});

  // Accounting is exact: ReceivedWeight sums raw incoming weight before
  // reconciliation. The drift lives in the *represented* multiset (the
  // staging subsample), bounded below via the quantile assertions.
  EXPECT_EQ(coordinator.ReceivedWeight(), light_total + heavy * 2);
  // The heavy elements carry 2000 of 2030 total weight (~98.5%); every
  // quantile above the light mass must come from them, whatever the
  // Bernoulli draw did to the 30 light survivors.
  EXPECT_GE(coordinator.Query(0.9).value(), 5000.0);
  EXPECT_LE(coordinator.Query(0.9).value(), 6000.0);
}

TEST(CoordinatorEdgeTest, LighterBufferOfSizeOneAtExtremeRatio) {
  // The degenerate reconciliation: a single weight-1 element against
  // weight-1000 incoming. Whatever the Bernoulli draw does, the
  // coordinator must stay legal (staging < k, weight consistent) and
  // queryable, and accounting drift is bounded by the heavy weight.
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    ParallelCoordinator coordinator(TinyParams(8), seed);
    coordinator.Ingest({{{7.0}, 1, false}});
    coordinator.Ingest({{{9999.0}, 1000, false}});
    EXPECT_EQ(coordinator.ReceivedWeight(), 1001u) << "seed=" << seed;
    Result<Value> top = coordinator.Query(1.0);
    ASSERT_TRUE(top.ok()) << "seed=" << seed;
    EXPECT_DOUBLE_EQ(top.value(), 9999.0) << "seed=" << seed;
    // The light element survives the 1/1000 draw essentially never; when
    // it does it is re-weighted to 1000, so the median may legitimately
    // be either element — but never anything else.
    Value median = coordinator.Query(0.5).value();
    EXPECT_TRUE(median == 9999.0 || median == 7.0) << "seed=" << seed;
  }
}

TEST(CoordinatorEdgeTest, ReverseExtremeRatioKeepsHeavyStaging) {
  // Mirror case: heavy staging, light incoming. The incoming weight-1
  // buffer is the lighter side and gets subsampled at 1/1000; the heavy
  // staged elements must never be disturbed.
  ParallelCoordinator coordinator(TinyParams(64), 9);
  coordinator.Ingest({{{100.0, 200.0, 300.0}, 1000, false}});
  std::vector<Value> light;
  for (int i = 0; i < 50; ++i) light.push_back(static_cast<Value>(i));
  coordinator.Ingest({{light, 1, false}});
  // The three heavy values carry 3000 of ~3050 total weight; the median
  // must be one of them regardless of the subsample outcome.
  Value median = coordinator.Query(0.5).value();
  EXPECT_TRUE(median == 100.0 || median == 200.0 || median == 300.0)
      << median;
}

TEST(CoordinatorEdgeTest, EmptyShipmentsAreHarmless) {
  ParallelCoordinator coordinator(TinyParams(4), 1);
  coordinator.Ingest({});
  coordinator.Ingest({{{}, 3, false}});  // empty value list
  EXPECT_EQ(coordinator.ReceivedWeight(), 0u);
  EXPECT_EQ(coordinator.Query(0.5).status().code(),
            StatusCode::kFailedPrecondition);
}

// ------------------------------------------------------------ DebugString

TEST(DebugStringTest, DescribesPoolAndCounters) {
  CollapseFramework fw(3, 2, MakeCollapsePolicy(CollapsePolicyKind::kMrl));
  fw.IngestFull({1.0, 2.0}, 4, 1);
  std::string s = fw.DebugString();
  EXPECT_NE(s.find("b=3"), std::string::npos) << s;
  EXPECT_NE(s.find("k=2"), std::string::npos);
  EXPECT_NE(s.find("full level=1 weight=4 size=2/2"), std::string::npos)
      << s;
  EXPECT_NE(s.find("[1] empty"), std::string::npos);
}

// --------------------------------------------------- Huge-weight merging

TEST(HugeWeightTest, WeightedSelectionNearOverflowBoundary) {
  // Weights near 2^61: cumulative arithmetic must not wrap for realistic
  // stream lengths (the sketch's rates cap at 2^62 by CHECK).
  const Weight w = Weight{1} << 61;
  std::vector<Value> a = {1.0, 2.0};
  std::vector<WeightedRun> runs = {{a.data(), a.size(), w}};
  EXPECT_EQ(TotalRunWeight(runs), 2 * w);
  std::vector<Weight> targets = {1, w, w + 1, 2 * w};
  std::vector<Value> out = SelectWeightedPositions(runs, targets);
  EXPECT_EQ(out, (std::vector<Value>{1.0, 1.0, 2.0, 2.0}));
}

}  // namespace
}  // namespace mrl
