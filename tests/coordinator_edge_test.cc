// Edge cases of the Section 6 coordinator's partial-buffer staging rules
// and the framework introspection surface.

#include <vector>

#include <gtest/gtest.h>

#include "core/collapse_policy.h"
#include "core/framework.h"
#include "core/parallel.h"
#include "core/weighted_merge.h"
#include "stream/dataset.h"

namespace mrl {
namespace {

UnknownNParams TinyParams(std::size_t k) {
  UnknownNParams p;
  p.b = 3;
  p.k = k;
  p.h = 2;
  p.alpha = 0.5;
  return p;
}

TEST(CoordinatorEdgeTest, StagingPromotesOnExactFill) {
  ParallelCoordinator coordinator(TinyParams(4), 1);
  // Two 2-element partials of equal weight fill B0 exactly once.
  coordinator.Ingest({{{4.0, 3.0}, 5, false}});
  coordinator.Ingest({{{2.0, 1.0}, 5, false}});
  // The promoted buffer must answer as a weight-5 run over {1,2,3,4}.
  EXPECT_DOUBLE_EQ(coordinator.Query(0.5).value(), 2.0);
  EXPECT_DOUBLE_EQ(coordinator.Query(1.0).value(), 4.0);
  EXPECT_EQ(coordinator.ReceivedWeight(), 20u);
}

TEST(CoordinatorEdgeTest, StagingCarriesRemainderAcrossPromotion) {
  ParallelCoordinator coordinator(TinyParams(4), 1);
  // 3 staged + 3 incoming = 6: one promotion of 4, remainder of 2 stays.
  coordinator.Ingest({{{1.0, 2.0, 3.0}, 2, false}});
  coordinator.Ingest({{{4.0, 5.0, 6.0}, 2, false}});
  EXPECT_DOUBLE_EQ(coordinator.Query(1.0).value(), 6.0);
  EXPECT_DOUBLE_EQ(coordinator.Query(1e-9).value(), 1.0);
}

TEST(CoordinatorEdgeTest, ManySmallPartialsSameWeight) {
  ParallelCoordinator coordinator(TinyParams(3), 2);
  for (int i = 0; i < 20; ++i) {
    coordinator.Ingest({{{static_cast<Value>(i)}, 1, false}});
  }
  EXPECT_EQ(coordinator.ReceivedWeight(), 20u);
  Value med = coordinator.Query(0.5).value();
  EXPECT_GE(med, 4.0);
  EXPECT_LE(med, 15.0);
}

TEST(CoordinatorEdgeTest, HeavierIncomingShrinksStaging) {
  // Staging holds weight-1 elements; a weight-8 partial arrives. The
  // staging must be subsampled (keep ~1/8) and re-weighted to 8; total
  // represented weight stays ~constant in expectation.
  ParallelCoordinator coordinator(TinyParams(64), 7);
  std::vector<Value> light;
  for (int i = 0; i < 40; ++i) light.push_back(i);
  coordinator.Ingest({{light, 1, false}});
  coordinator.Ingest({{{1000.0, 1001.0}, 8, false}});
  EXPECT_EQ(coordinator.ReceivedWeight(), 40u + 16u);
  // Querying still works and the top quantile comes from the heavy batch.
  EXPECT_GE(coordinator.Query(1.0).value(), 1000.0);
}

TEST(CoordinatorEdgeTest, MixedFullAndPartialInOneShipment) {
  ParallelCoordinator coordinator(TinyParams(2), 3);
  coordinator.Ingest({
      {{1.0, 2.0}, 4, true},    // full (k = 2)
      {{9.0}, 4, false},        // partial
      {{5.0}, 1, false},        // tail with a different weight
  });
  EXPECT_EQ(coordinator.ReceivedWeight(), 8u + 4u + 1u);
  EXPECT_TRUE(coordinator.Query(0.5).ok());
}

TEST(CoordinatorEdgeTest, EmptyShipmentsAreHarmless) {
  ParallelCoordinator coordinator(TinyParams(4), 1);
  coordinator.Ingest({});
  coordinator.Ingest({{{}, 3, false}});  // empty value list
  EXPECT_EQ(coordinator.ReceivedWeight(), 0u);
  EXPECT_EQ(coordinator.Query(0.5).status().code(),
            StatusCode::kFailedPrecondition);
}

// ------------------------------------------------------------ DebugString

TEST(DebugStringTest, DescribesPoolAndCounters) {
  CollapseFramework fw(3, 2, MakeCollapsePolicy(CollapsePolicyKind::kMrl));
  fw.IngestFull({1.0, 2.0}, 4, 1);
  std::string s = fw.DebugString();
  EXPECT_NE(s.find("b=3"), std::string::npos) << s;
  EXPECT_NE(s.find("k=2"), std::string::npos);
  EXPECT_NE(s.find("full level=1 weight=4 size=2/2"), std::string::npos)
      << s;
  EXPECT_NE(s.find("[1] empty"), std::string::npos);
}

// --------------------------------------------------- Huge-weight merging

TEST(HugeWeightTest, WeightedSelectionNearOverflowBoundary) {
  // Weights near 2^61: cumulative arithmetic must not wrap for realistic
  // stream lengths (the sketch's rates cap at 2^62 by CHECK).
  const Weight w = Weight{1} << 61;
  std::vector<Value> a = {1.0, 2.0};
  std::vector<WeightedRun> runs = {{a.data(), a.size(), w}};
  EXPECT_EQ(TotalRunWeight(runs), 2 * w);
  std::vector<Weight> targets = {1, w, w + 1, 2 * w};
  std::vector<Value> out = SelectWeightedPositions(runs, targets);
  EXPECT_EQ(out, (std::vector<Value>{1.0, 1.0, 2.0, 2.0}));
}

}  // namespace
}  // namespace mrl
