// Consistent-hash ring placement properties (router/hash_ring.h).

#include "router/hash_ring.h"

#include <map>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace mrl {
namespace router {
namespace {

std::vector<std::string> Fleet(int n) {
  std::vector<std::string> backends;
  for (int i = 0; i < n; ++i) {
    backends.push_back("unix:/tmp/backend" + std::to_string(i) + ".sock");
  }
  return backends;
}

std::string TenantName(int i) { return "tenant-" + std::to_string(i); }

TEST(HashRingTest, DeterministicPlacement) {
  const HashRing a(Fleet(5), 64);
  const HashRing b(Fleet(5), 64);
  for (int i = 0; i < 1000; ++i) {
    const std::string name = TenantName(i);
    EXPECT_EQ(a.OwnerOf(name), b.OwnerOf(name));
    EXPECT_EQ(a.ReplicaOf(name), b.ReplicaOf(name));
  }
}

TEST(HashRingTest, OwnersCoverTheFleetRoughlyEvenly) {
  constexpr int kBackends = 4;
  constexpr int kTenants = 10000;
  const HashRing ring(Fleet(kBackends), 64);
  std::map<int, int> owners;
  for (int i = 0; i < kTenants; ++i) {
    const int owner = ring.OwnerOf(TenantName(i));
    ASSERT_GE(owner, 0);
    ASSERT_LT(owner, kBackends);
    ++owners[owner];
  }
  // Every backend owns a meaningful share. With 64 vnodes the spread is
  // loose (a backend can land near 5% of the keyspace) but no backend
  // should be starved or dominant.
  for (int b = 0; b < kBackends; ++b) {
    EXPECT_GT(owners[b], kTenants / (kBackends * 8)) << "backend " << b;
    EXPECT_LT(owners[b], kTenants / 2) << "backend " << b;
  }
}

TEST(HashRingTest, MinimalDisruptionOnBackendRemoval) {
  constexpr int kTenants = 5000;
  const HashRing before(Fleet(5), 64);
  // Remove the last backend; survivors keep their indices in this fleet.
  const HashRing after(Fleet(4), 64);
  int moved = 0;
  for (int i = 0; i < kTenants; ++i) {
    const std::string name = TenantName(i);
    const int old_owner = before.OwnerOf(name);
    const int new_owner = after.OwnerOf(name);
    if (old_owner != 4 && new_owner != old_owner) ++moved;
  }
  // Consistent hashing: tenants not owned by the removed backend should
  // essentially all stay put. Allow a sliver for vnode boundary shifts.
  EXPECT_LT(moved, kTenants / 20) << "non-evicted tenants moved";
}

TEST(HashRingTest, ReplicaIsDistinctFromOwner) {
  const HashRing ring(Fleet(3), 64);
  for (int i = 0; i < 1000; ++i) {
    const std::string name = TenantName(i);
    const int owner = ring.OwnerOf(name);
    const int replica = ring.ReplicaOf(name);
    ASSERT_GE(replica, 0);
    EXPECT_NE(owner, replica) << name;
  }
}

TEST(HashRingTest, SingleBackendHasNoReplica) {
  const HashRing ring(Fleet(1), 64);
  EXPECT_EQ(ring.OwnerOf("anything"), 0);
  EXPECT_EQ(ring.ReplicaOf("anything"), -1);
}

TEST(HashRingTest, VnodeFloorAndAccessors) {
  const HashRing ring(Fleet(2), 0);  // clamped to 1 vnode
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.backend(0), "unix:/tmp/backend0.sock");
  const int owner = ring.OwnerOf("x");
  EXPECT_TRUE(owner == 0 || owner == 1);
}

}  // namespace
}  // namespace router
}  // namespace mrl
