#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/collapse_policy.h"
#include "core/framework.h"
#include "util/math.h"

namespace mrl {
namespace {

// --------------------------------------------------------------- Policies

TEST(MrlPolicyTest, CollapsesAllAtLowestLevel) {
  MrlCollapsePolicy policy;
  auto d = policy.Choose({{0, 0, 1}, {1, 0, 1}, {2, 1, 2}});
  EXPECT_EQ(d.indices, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(d.output_level, 1);
}

TEST(MrlPolicyTest, PromotesLoneLowestBuffer) {
  // Levels {0:1, 2:2}: the lone level-0 buffer is promoted to 2 and all of
  // level <= 2 collapse into level 3.
  MrlCollapsePolicy policy;
  auto d = policy.Choose({{0, 0, 1}, {1, 2, 4}, {2, 2, 4}});
  EXPECT_EQ(d.indices, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(d.output_level, 3);
}

TEST(MrlPolicyTest, PromotionSkipsGaps) {
  // Levels {0:1, 3:1, 5:1}: promote 0 to 3 -> two at 3 -> collapse those
  // two, output level 4; the level-5 buffer stays.
  MrlCollapsePolicy policy;
  auto d = policy.Choose({{0, 0, 1}, {1, 3, 8}, {2, 5, 32}});
  EXPECT_EQ(d.indices, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(d.output_level, 4);
}

TEST(MunroPatersonPolicyTest, PicksTwoLowest) {
  MunroPatersonPolicy policy;
  auto d = policy.Choose({{0, 2, 4}, {1, 0, 1}, {2, 1, 2}, {3, 0, 1}});
  EXPECT_EQ(d.indices, (std::vector<std::size_t>{1, 3}));
  EXPECT_EQ(d.output_level, 1);
}

TEST(MunroPatersonPolicyTest, UnequalLevelsWhenForced) {
  MunroPatersonPolicy policy;
  auto d = policy.Choose({{0, 3, 8}, {1, 1, 2}});
  EXPECT_EQ(d.indices, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(d.output_level, 4);
}

TEST(CollapseAllPolicyTest, TakesEverything) {
  CollapseAllPolicy policy;
  auto d = policy.Choose({{0, 0, 1}, {1, 2, 3}, {2, 1, 2}});
  EXPECT_EQ(d.indices.size(), 3u);
  EXPECT_EQ(d.output_level, 3);
}

TEST(PolicyFactoryTest, MakesAllKinds) {
  EXPECT_EQ(MakeCollapsePolicy(CollapsePolicyKind::kMrl)->name(), "mrl");
  EXPECT_EQ(MakeCollapsePolicy(CollapsePolicyKind::kMunroPaterson)->name(),
            "munro_paterson");
  EXPECT_EQ(MakeCollapsePolicy(CollapsePolicyKind::kCollapseAll)->name(),
            "collapse_all");
}

// -------------------------------------------------------------- Framework

// Feeds `leaves` weight-1 full buffers through the framework and returns it.
void FeedLeaves(CollapseFramework* fw, int leaves) {
  for (int i = 0; i < leaves; ++i) {
    std::size_t slot = fw->AcquireEmptySlot();
    Buffer& buf = fw->buffer(slot);
    buf.StartFill();
    for (std::size_t j = 0; j < fw->buffer_capacity(); ++j) {
      buf.Append(static_cast<Value>(i * 100 + static_cast<int>(j)));
    }
    fw->CommitFull(slot, /*weight=*/1, /*level=*/0);
  }
}

TEST(FrameworkTest, NoCollapseUntilPoolFull) {
  CollapseFramework fw(4, 2, MakeCollapsePolicy(CollapsePolicyKind::kMrl));
  FeedLeaves(&fw, 4);
  EXPECT_EQ(fw.stats().num_collapses, 0u);
  EXPECT_EQ(fw.CountState(BufferState::kFull), 4u);
  FeedLeaves(&fw, 1);
  EXPECT_EQ(fw.stats().num_collapses, 1u);
}

TEST(FrameworkTest, WeightIsConserved) {
  CollapseFramework fw(3, 4, MakeCollapsePolicy(CollapsePolicyKind::kMrl));
  for (int leaves : {1, 5, 17, 100}) {
    CollapseFramework local(3, 4,
                            MakeCollapsePolicy(CollapsePolicyKind::kMrl));
    FeedLeaves(&local, leaves);
    EXPECT_EQ(local.FullWeight(),
              static_cast<Weight>(leaves) * local.buffer_capacity());
  }
  (void)fw;
}

TEST(FrameworkTest, FullBufferValuesStaySorted) {
  CollapseFramework fw(3, 8, MakeCollapsePolicy(CollapsePolicyKind::kMrl));
  FeedLeaves(&fw, 50);
  for (int i = 0; i < fw.num_buffers(); ++i) {
    const Buffer& buf = fw.buffer(static_cast<std::size_t>(i));
    if (buf.state() == BufferState::kFull) {
      EXPECT_TRUE(std::is_sorted(buf.values().begin(), buf.values().end()));
    }
  }
}

// The leaf capacity of the MRL policy tree: with b buffers, the first
// buffer at height h appears after exactly C(b+h-1, h) leaves. This is the
// executable form of Figure 2 (b=5 tree) and backs the solver's use of the
// (smaller) paper bound L_d = C(b+h-2, h-1) as a conservative value.
struct TreeShapeCase {
  int b;
  int h;
};

class TreeShapeTest : public ::testing::TestWithParam<TreeShapeCase> {};

TEST_P(TreeShapeTest, HeightAppearsAtBinomialLeafCount) {
  const int b = GetParam().b;
  const int target_h = GetParam().h;
  const std::uint64_t capacity = SaturatingBinomial(
      static_cast<std::uint64_t>(b + target_h - 1),
      static_cast<std::uint64_t>(target_h));
  CollapseFramework fw(b, 1, MakeCollapsePolicy(CollapsePolicyKind::kMrl));
  // Collapses are lazy (they run when the *next* leaf needs a slot), so the
  // tree holds exactly `capacity` leaves below height target_h, and the
  // (capacity + 1)-th leaf's acquisition creates the first buffer at
  // target_h.
  FeedLeaves(&fw, static_cast<int>(capacity));
  EXPECT_LT(fw.max_level(), target_h);
  FeedLeaves(&fw, 1);
  EXPECT_EQ(fw.max_level(), target_h);
  // The paper's solver constant is a valid lower bound on what the
  // implementation actually consumes before sampling would start.
  EXPECT_GE(capacity, SaturatingBinomial(
                          static_cast<std::uint64_t>(b + target_h - 2),
                          static_cast<std::uint64_t>(target_h - 1)));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TreeShapeTest,
    ::testing::Values(TreeShapeCase{2, 1}, TreeShapeCase{2, 4},
                      TreeShapeCase{3, 3}, TreeShapeCase{4, 3},
                      TreeShapeCase{5, 2}, TreeShapeCase{5, 4},
                      TreeShapeCase{6, 5}, TreeShapeCase{10, 3}),
    [](const ::testing::TestParamInfo<TreeShapeCase>& info) {
      return "b" + std::to_string(info.param.b) + "_h" +
             std::to_string(info.param.h);
    });

TEST(FrameworkTest, MunroPatersonBuildsBinaryTree) {
  // With the MP policy, 2^(b-1) weight-1 leaves collapse into a single
  // buffer of weight 2^(b-1) at level b-1.
  const int b = 4;
  CollapseFramework fw(b, 2,
                       MakeCollapsePolicy(CollapsePolicyKind::kMunroPaterson));
  FeedLeaves(&fw, 1 << (b - 1));
  // Force the final merges by demanding space.
  while (fw.CountState(BufferState::kFull) > 1) {
    fw.CollapseAllFull();
  }
  for (int i = 0; i < fw.num_buffers(); ++i) {
    const Buffer& buf = fw.buffer(static_cast<std::size_t>(i));
    if (buf.state() == BufferState::kFull) {
      EXPECT_EQ(buf.weight(), static_cast<Weight>(1) << (b - 1));
    }
  }
}

TEST(FrameworkTest, IngestFullAddsWeightedRun) {
  CollapseFramework fw(3, 2, MakeCollapsePolicy(CollapsePolicyKind::kMrl));
  fw.IngestFull({1.0, 2.0}, 5, 0);
  EXPECT_EQ(fw.FullWeight(), 10u);
  EXPECT_EQ(fw.stats().leaves_created, 1u);
}

TEST(FrameworkTest, CollapseAllFullNoOpBelowTwo) {
  CollapseFramework fw(3, 2, MakeCollapsePolicy(CollapsePolicyKind::kMrl));
  EXPECT_FALSE(fw.CollapseAllFull());
  fw.IngestFull({1.0, 2.0}, 1, 0);
  EXPECT_FALSE(fw.CollapseAllFull());
  fw.IngestFull({3.0, 4.0}, 1, 0);
  EXPECT_TRUE(fw.CollapseAllFull());
  EXPECT_EQ(fw.CountState(BufferState::kFull), 1u);
}

TEST(FrameworkTest, UsableBuffersRestrictsAcquisition) {
  CollapseFramework fw(4, 2, MakeCollapsePolicy(CollapsePolicyKind::kMrl));
  fw.SetUsableBuffers(2);
  FeedLeaves(&fw, 2);
  EXPECT_EQ(fw.stats().num_collapses, 0u);
  FeedLeaves(&fw, 1);  // pool of 2 is full -> must collapse
  EXPECT_EQ(fw.stats().num_collapses, 1u);
  fw.SetUsableBuffers(4);
  FeedLeaves(&fw, 2);  // now there is room again
  EXPECT_EQ(fw.stats().num_collapses, 1u);
}

TEST(FrameworkDeathTest, ShrinkingOverNonEmptySlotAborts) {
  CollapseFramework fw(3, 2, MakeCollapsePolicy(CollapsePolicyKind::kMrl));
  FeedLeaves(&fw, 3);
  EXPECT_DEATH(fw.SetUsableBuffers(2), "cannot exclude");
}

TEST(FrameworkTest, StatsTrackCollapseWeights) {
  CollapseFramework fw(2, 2, MakeCollapsePolicy(CollapsePolicyKind::kMrl));
  FeedLeaves(&fw, 3);  // leaves 1,2 collapse (W += 2) to make room for 3
  EXPECT_EQ(fw.stats().num_collapses, 1u);
  EXPECT_EQ(fw.stats().sum_collapse_weights, 2u);
  EXPECT_EQ(fw.stats().leaves_created, 3u);
  EXPECT_EQ(fw.max_level(), 1);
}

}  // namespace
}  // namespace mrl
