#include <vector>

#include <gtest/gtest.h>

#include "core/output.h"
#include "core/unknown_n.h"
#include "stream/generator.h"

namespace mrl {
namespace {

std::vector<WeightedRun> OneRun(const std::vector<Value>& v, Weight w) {
  return {{v.data(), v.size(), w}};
}

TEST(OutputTest, PositionIsCeilPhiW) {
  // 4 elements of weight 1: phi-quantile = element at ceil(phi * 4).
  std::vector<Value> v = {10, 20, 30, 40};
  auto runs = OneRun(v, 1);
  EXPECT_DOUBLE_EQ(WeightedQuantile(runs, 0.25).value(), 10);
  EXPECT_DOUBLE_EQ(WeightedQuantile(runs, 0.2500001).value(), 20);
  EXPECT_DOUBLE_EQ(WeightedQuantile(runs, 0.5).value(), 20);
  EXPECT_DOUBLE_EQ(WeightedQuantile(runs, 0.75).value(), 30);
  EXPECT_DOUBLE_EQ(WeightedQuantile(runs, 1.0).value(), 40);
  EXPECT_DOUBLE_EQ(WeightedQuantile(runs, 1e-9).value(), 10);
}

TEST(OutputTest, WeightsShiftTheQuantile) {
  // 10 has weight 9, 20 has weight 1: the median is 10.
  std::vector<Value> v = {10, 20};
  std::vector<WeightedRun> runs = {{v.data(), 1, 9}, {v.data() + 1, 1, 1}};
  EXPECT_DOUBLE_EQ(WeightedQuantile(runs, 0.5).value(), 10);
  EXPECT_DOUBLE_EQ(WeightedQuantile(runs, 0.9).value(), 10);
  EXPECT_DOUBLE_EQ(WeightedQuantile(runs, 0.91).value(), 20);
}

TEST(OutputTest, InvalidPhiRejected) {
  std::vector<Value> v = {1};
  auto runs = OneRun(v, 1);
  EXPECT_EQ(WeightedQuantile(runs, 0.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(WeightedQuantile(runs, -0.5).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(WeightedQuantile(runs, 1.0001).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(OutputTest, EmptyRunsFail) {
  EXPECT_EQ(WeightedQuantile({}, 0.5).status().code(),
            StatusCode::kFailedPrecondition);
  std::vector<WeightedRun> zero = {{nullptr, 0, 5}};
  EXPECT_EQ(WeightedQuantile(zero, 0.5).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(OutputTest, BatchAnswersAlignWithInputOrder) {
  std::vector<Value> v = {1, 2, 3, 4, 5};
  auto runs = OneRun(v, 2);
  std::vector<double> phis = {0.9, 0.1, 0.5, 0.1};
  std::vector<Value> out = WeightedQuantiles(runs, phis).value();
  ASSERT_EQ(out.size(), 4u);
  EXPECT_DOUBLE_EQ(out[0], 5);
  EXPECT_DOUBLE_EQ(out[1], 1);
  EXPECT_DOUBLE_EQ(out[2], 3);
  EXPECT_DOUBLE_EQ(out[3], 1);
}

TEST(OutputTest, BatchWithOneBadPhiFailsAtomically) {
  std::vector<Value> v = {1, 2};
  auto runs = OneRun(v, 1);
  EXPECT_FALSE(WeightedQuantiles(runs, {0.5, 0.0}).ok());
}

TEST(OutputTest, DuplicateValuesAcrossRuns) {
  std::vector<Value> a = {5, 5};
  std::vector<Value> b = {5, 6};
  std::vector<WeightedRun> runs = {{a.data(), a.size(), 3},
                                   {b.data(), b.size(), 1}};
  // Weighted multiset: 5 x (3+3+1) = weight 7, then 6 x 1.
  EXPECT_DOUBLE_EQ(WeightedQuantile(runs, 0.875).value(), 5);
  EXPECT_DOUBLE_EQ(WeightedQuantile(runs, 0.876).value(), 6);
}

// Exactness property: when the sketch has enough capacity for the whole
// stream (no sampling, no collapse), Output degenerates to the exact
// phi-quantile of the paper's definition — position ceil(phi*N) of the
// sorted input. This pins the position arithmetic end to end.
class ExactnessTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ExactnessTest, UncompressedSketchIsExact) {
  const std::size_t n = GetParam();
  UnknownNParams p;
  p.b = 4;
  p.k = 300;  // capacity 1200 >= every n used here
  p.h = 10;
  p.alpha = 0.5;
  UnknownNOptions options;
  options.params = p;
  options.seed = 3;
  UnknownNSketch sketch = std::move(UnknownNSketch::Create(options)).value();
  StreamSpec spec;
  spec.n = n;
  spec.seed = 50 + n;
  Dataset ds = GenerateStream(spec);
  for (Value v : ds.values()) sketch.Add(v);
  ASSERT_EQ(sketch.tree_stats().num_collapses, 0u);
  for (double phi : {0.001, 0.1, 0.25, 0.333, 0.5, 0.75, 0.9, 0.999, 1.0}) {
    EXPECT_DOUBLE_EQ(sketch.Query(phi).value(), ds.ExactQuantile(phi))
        << "n=" << n << " phi=" << phi;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ExactnessTest,
                         ::testing::Values(1, 2, 3, 7, 299, 300, 301, 899,
                                           1200),
                         [](const ::testing::TestParamInfo<std::size_t>& i) {
                           return "n" + std::to_string(i.param);
                         });

}  // namespace
}  // namespace mrl
