// Reset() contract: a reset sketch is indistinguishable — byte-for-byte in
// serialized state, and therefore in every future answer and every future
// random draw — from a freshly constructed one, while reusing the existing
// buffer pool. This is what lets a serving layer (src/server/registry)
// recycle tenant slots without reallocating.

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "core/det_reservoir.h"
#include "core/estimator.h"
#include "core/extreme.h"
#include "core/kll.h"
#include "core/known_n.h"
#include "core/sharded.h"
#include "core/unknown_n.h"
#include "util/random.h"

namespace mrl {
namespace {

std::vector<Value> TestStream(std::size_t n, std::uint64_t seed) {
  Random rng(seed);
  std::vector<Value> values(n);
  for (Value& v : values) v = rng.UniformDouble(-1e6, 1e6);
  return values;
}

TEST(ResetTest, UnknownNByteIdenticalToFresh) {
  UnknownNOptions options;
  options.eps = 0.05;
  options.delta = 1e-3;
  options.seed = 42;
  Result<UnknownNSketch> fresh = UnknownNSketch::Create(options);
  ASSERT_TRUE(fresh.ok());
  Result<UnknownNSketch> used = UnknownNSketch::Create(options);
  ASSERT_TRUE(used.ok());
  UnknownNSketch& sketch = used.value();
  sketch.AddAll(TestStream(100000, 7));
  ASSERT_GT(sketch.count(), 0u);

  sketch.Reset();
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_EQ(sketch.Serialize(), fresh.value().Serialize());

  // Indistinguishable going forward too: same stream => same bytes again.
  const std::vector<Value> stream = TestStream(50000, 9);
  sketch.AddAll(stream);
  fresh.value().AddAll(stream);
  EXPECT_EQ(sketch.Serialize(), fresh.value().Serialize());
}

TEST(ResetTest, UnknownNResetWithExplicitSeed) {
  UnknownNOptions options;
  options.eps = 0.05;
  options.delta = 1e-3;
  options.seed = 1234;
  Result<UnknownNSketch> fresh = UnknownNSketch::Create(options);
  ASSERT_TRUE(fresh.ok());

  options.seed = 999;  // construct under a different seed, then re-seed
  Result<UnknownNSketch> used = UnknownNSketch::Create(options);
  ASSERT_TRUE(used.ok());
  used.value().AddAll(TestStream(20000, 3));
  used.value().Reset(1234);
  EXPECT_EQ(used.value().Serialize(), fresh.value().Serialize());
}

TEST(ResetTest, KnownNByteIdenticalToFresh) {
  KnownNOptions options;
  options.eps = 0.02;
  options.delta = 1e-3;
  options.n = 200000;
  options.seed = 11;
  Result<KnownNSketch> fresh = KnownNSketch::Create(options);
  ASSERT_TRUE(fresh.ok());
  Result<KnownNSketch> used = KnownNSketch::Create(options);
  ASSERT_TRUE(used.ok());
  used.value().AddAll(TestStream(150000, 5));

  used.value().Reset();
  EXPECT_EQ(used.value().count(), 0u);
  EXPECT_EQ(used.value().Serialize(), fresh.value().Serialize());
}

TEST(ResetTest, KnownNResetClearsOverflow) {
  KnownNOptions options;
  options.eps = 0.1;
  options.delta = 1e-2;
  options.n = 1000;
  Result<KnownNSketch> sketch = KnownNSketch::Create(options);
  ASSERT_TRUE(sketch.ok());
  sketch.value().AddAll(TestStream(1500, 2));  // overflow the declared n
  ASSERT_TRUE(sketch.value().overflowed());
  sketch.value().Reset();
  EXPECT_FALSE(sketch.value().overflowed());
  sketch.value().AddAll(TestStream(500, 2));
  EXPECT_TRUE(sketch.value().Query(0.5).ok());
}

TEST(ResetTest, ShardedByteIdenticalPerShard) {
  ShardedQuantileSketch::Options options;
  options.eps = 0.05;
  options.delta = 1e-3;
  options.num_shards = 3;
  options.seed = 77;
  Result<ShardedQuantileSketch> fresh =
      ShardedQuantileSketch::Create(options);
  ASSERT_TRUE(fresh.ok());
  Result<ShardedQuantileSketch> used =
      ShardedQuantileSketch::Create(options);
  ASSERT_TRUE(used.ok());
  for (int s = 0; s < options.num_shards; ++s) {
    used.value().AddBatch(s, TestStream(30000, 100 + s));
  }

  used.value().Reset();
  EXPECT_EQ(used.value().count(), 0u);
  for (int s = 0; s < options.num_shards; ++s) {
    EXPECT_EQ(used.value().shard(s).Serialize(),
              fresh.value().shard(s).Serialize())
        << "shard " << s;
  }
}

TEST(ResetTest, ShardedResetWithSeedMatchesCreate) {
  ShardedQuantileSketch::Options options;
  options.eps = 0.05;
  options.delta = 1e-3;
  options.num_shards = 2;
  options.seed = 5;
  Result<ShardedQuantileSketch> a = ShardedQuantileSketch::Create(options);
  ASSERT_TRUE(a.ok());
  a.value().AddBatch(0, TestStream(10000, 1));

  options.seed = 6;
  Result<ShardedQuantileSketch> b = ShardedQuantileSketch::Create(options);
  ASSERT_TRUE(b.ok());

  a.value().Reset(6);  // re-derive per-shard seeds from the new top seed
  for (int s = 0; s < options.num_shards; ++s) {
    EXPECT_EQ(a.value().shard(s).Serialize(), b.value().shard(s).Serialize())
        << "shard " << s;
  }
}

// --------------------------------------------- interface-level backend sweep
//
// Every backend the registry can instantiate must honor the same contract
// through the QuantileEstimator interface alone: Reset() is byte-identical
// to fresh construction, Reset(seed) is byte-identical to constructing
// under that seed, and the equivalence extends to all future bytes.

struct BackendFactory {
  const char* name;
  std::function<std::unique_ptr<QuantileEstimator>(std::uint64_t)> make;
};

std::vector<BackendFactory> AllBackends() {
  std::vector<BackendFactory> backends;
  backends.push_back({"unknown_n", [](std::uint64_t seed) {
    UnknownNOptions options;
    options.eps = 0.05;
    options.delta = 1e-3;
    options.seed = seed;
    return std::unique_ptr<QuantileEstimator>(new UnknownNSketch(
        std::move(UnknownNSketch::Create(options)).value()));
  }});
  backends.push_back({"known_n", [](std::uint64_t seed) {
    KnownNOptions options;
    options.eps = 0.02;
    options.delta = 1e-3;
    options.n = std::uint64_t{1} << 20;
    options.seed = seed;
    return std::unique_ptr<QuantileEstimator>(
        new KnownNSketch(std::move(KnownNSketch::Create(options)).value()));
  }});
  backends.push_back({"sharded", [](std::uint64_t seed) {
    ShardedQuantileSketch::Options options;
    options.eps = 0.05;
    options.delta = 1e-3;
    options.num_shards = 3;
    options.seed = seed;
    return std::unique_ptr<QuantileEstimator>(new ShardedQuantileSketch(
        std::move(ShardedQuantileSketch::Create(options)).value()));
  }});
  backends.push_back({"extreme_value", [](std::uint64_t seed) {
    ExtremeValueOptions options;
    options.phi = 0.05;
    options.eps = 0.01;
    options.delta = 1e-3;
    options.n = 200000;
    options.seed = seed;
    return std::unique_ptr<QuantileEstimator>(new ExtremeValueSketch(
        std::move(ExtremeValueSketch::Create(options)).value()));
  }});
  backends.push_back({"kll", [](std::uint64_t seed) {
    KllOptions options;
    options.eps = 0.02;
    options.delta = 1e-3;
    options.seed = seed;
    return std::unique_ptr<QuantileEstimator>(
        new KllSketch(std::move(KllSketch::Create(options)).value()));
  }});
  backends.push_back({"det_reservoir", [](std::uint64_t seed) {
    DetReservoirOptions options;
    options.eps = 0.02;
    options.delta = 1e-3;
    options.seed = seed;
    return std::unique_ptr<QuantileEstimator>(new DeterministicReservoirSketch(
        std::move(DeterministicReservoirSketch::Create(options)).value()));
  }});
  return backends;
}

TEST(ResetTest, EveryBackendResetIsByteIdenticalToFresh) {
  for (const BackendFactory& backend : AllBackends()) {
    SCOPED_TRACE(backend.name);
    std::unique_ptr<QuantileEstimator> fresh = backend.make(42);
    std::unique_ptr<QuantileEstimator> used = backend.make(42);
    ASSERT_TRUE(used->SupportsCheckpoint());
    used->AddAll(TestStream(60000, 7));
    ASSERT_GT(used->count(), 0u);

    used->Reset();
    EXPECT_EQ(used->count(), 0u);
    EXPECT_EQ(used->Serialize(), fresh->Serialize());

    // Indistinguishable going forward: same post-reset stream, same bytes.
    const std::vector<Value> stream = TestStream(40000, 9);
    used->AddAll(stream);
    fresh->AddAll(stream);
    EXPECT_EQ(used->count(), fresh->count());
    EXPECT_EQ(used->Serialize(), fresh->Serialize());
  }
}

TEST(ResetTest, EveryBackendResetWithSeedMatchesConstruction) {
  for (const BackendFactory& backend : AllBackends()) {
    SCOPED_TRACE(backend.name);
    std::unique_ptr<QuantileEstimator> fresh = backend.make(1234);
    std::unique_ptr<QuantileEstimator> used = backend.make(999);
    used->AddAll(TestStream(20000, 3));
    used->Reset(1234);
    EXPECT_EQ(used->Serialize(), fresh->Serialize());
  }
}

TEST(ResetTest, EveryBackendRestoreRoundTripsThroughInterface) {
  for (const BackendFactory& backend : AllBackends()) {
    SCOPED_TRACE(backend.name);
    std::unique_ptr<QuantileEstimator> source = backend.make(5);
    source->AddAll(TestStream(30000, 13));
    const std::vector<std::uint8_t> blob = source->Serialize();

    // Restore overwrites whatever state the target held, seed included.
    std::unique_ptr<QuantileEstimator> target = backend.make(6);
    target->AddAll(TestStream(100, 14));
    const Status status = target->Restore(
        std::span<const std::uint8_t>(blob.data(), blob.size()));
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_EQ(target->count(), source->count());
    EXPECT_EQ(target->Serialize(), blob);

    // The restored sketch continues the stream exactly like the original.
    const std::vector<Value> tail = TestStream(10000, 15);
    source->AddAll(tail);
    target->AddAll(tail);
    EXPECT_EQ(target->Serialize(), source->Serialize());
  }
}

}  // namespace
}  // namespace mrl
