// Parameterized property sweeps across the library's configuration spaces:
// each TEST_P asserts an invariant (not a specific value) over a grid of
// parameters, catching interactions single-point unit tests miss.

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/extreme.h"
#include "core/known_n.h"
#include "core/params.h"
#include "core/unknown_n.h"
#include "stream/generator.h"
#include "util/math.h"

namespace mrl {
namespace {

// ---------------------------------------------- Known-N checkpoint sweeps

class KnownNCheckpointSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KnownNCheckpointSweep, RoundTripAtCut) {
  const std::size_t cut = GetParam();
  KnownNParams p;
  p.b = 3;
  p.k = 32;
  p.h = 4;
  p.rate = 3;  // non-power-of-two rate: stresses block-tail encoding
  p.alpha = 0.5;
  p.n = 20000;
  KnownNOptions options;
  options.params = p;
  options.seed = 3;
  KnownNSketch original = std::move(KnownNSketch::Create(options)).value();
  StreamSpec spec;
  spec.n = 20000;
  spec.seed = 5;
  Dataset ds = GenerateStream(spec);
  for (std::size_t i = 0; i < cut && i < ds.size(); ++i) {
    original.Add(ds.values()[i]);
  }
  Result<KnownNSketch> restored_r =
      KnownNSketch::Deserialize(original.Serialize());
  ASSERT_TRUE(restored_r.ok()) << restored_r.status();
  KnownNSketch& restored = restored_r.value();
  for (std::size_t i = cut; i < ds.size(); ++i) {
    original.Add(ds.values()[i]);
    restored.Add(ds.values()[i]);
  }
  EXPECT_EQ(restored.HeldWeight(), original.HeldWeight());
  EXPECT_DOUBLE_EQ(restored.Query(0.5).value(), original.Query(0.5).value());
}

INSTANTIATE_TEST_SUITE_P(Cuts, KnownNCheckpointSweep,
                         ::testing::Values(0, 1, 2, 3, 95, 96, 97, 5000,
                                           19999, 20000),
                         [](const ::testing::TestParamInfo<std::size_t>& i) {
                           return "cut" + std::to_string(i.param);
                         });

// ------------------------------------------------- Extreme sizing sweeps

struct ExtremeCase {
  double phi;
  double eps;
  double delta;
};

class ExtremeSizingSweep : public ::testing::TestWithParam<ExtremeCase> {};

TEST_P(ExtremeSizingSweep, SizingSatisfiesSteinAndScales) {
  const ExtremeCase& c = GetParam();
  auto sizing =
      SolveExtremeValue(c.phi, c.eps, c.delta, 100'000'000).value();
  const double tail = std::min(c.phi, 1.0 - c.phi);
  // Stein condition holds at the chosen s.
  double s = static_cast<double>(sizing.sample_size);
  double fail = std::exp(-s * KlBernoulli(tail, tail - c.eps)) +
                std::exp(-s * KlBernoulli(tail, tail + c.eps));
  EXPECT_LE(fail, c.delta * (1 + 1e-9));
  // k tracks phi * s.
  EXPECT_NEAR(static_cast<double>(sizing.k), tail * s, 1.0);
  // Tightening eps by 2x must cost more sample (roughly 4x for small eps).
  auto tighter =
      SolveExtremeValue(c.phi, c.eps / 2, c.delta, 100'000'000).value();
  EXPECT_GT(tighter.sample_size, sizing.sample_size);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ExtremeSizingSweep,
    ::testing::Values(ExtremeCase{0.01, 0.002, 1e-3},
                      ExtremeCase{0.01, 0.005, 1e-4},
                      ExtremeCase{0.05, 0.01, 1e-4},
                      ExtremeCase{0.002, 0.001, 1e-2},
                      ExtremeCase{0.99, 0.002, 1e-3},
                      ExtremeCase{0.999, 0.0005, 1e-4}),
    [](const ::testing::TestParamInfo<ExtremeCase>& i) {
      return "phi" + std::to_string(static_cast<int>(1e4 * i.param.phi)) +
             "_eps" + std::to_string(static_cast<int>(1e5 * i.param.eps)) +
             "_d" +
             std::to_string(static_cast<int>(-std::log10(i.param.delta)));
    });

// ------------------------------------------ Parallel extra-height sweeps

class ParallelHeightSweep : public ::testing::TestWithParam<int> {};

TEST_P(ParallelHeightSweep, WorkerParamsSatisfyRaisedTreeConstraint) {
  const int h_prime = GetParam();
  const double eps = 0.01;
  const double delta = 1e-4;
  UnknownNParams p = SolveUnknownN(eps, delta, h_prime).value();
  // Raised Eq. 2: h + h' + 1 <= 2 alpha eps k.
  EXPECT_LE(p.h + h_prime + 1,
            2.0 * p.alpha * eps * static_cast<double>(p.k) * (1 + 1e-9) + 1);
}

INSTANTIATE_TEST_SUITE_P(Heights, ParallelHeightSweep,
                         ::testing::Values(0, 1, 2, 4, 8, 16),
                         [](const ::testing::TestParamInfo<int>& i) {
                           return "hprime" + std::to_string(i.param);
                         });

// ---------------------------------------------------- Tiny-k degeneracy

class TinyKSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TinyKSweep, DegenerateBufferSizesStillAccount) {
  // k = 1 and other minimal sizes: the machinery must not divide by zero,
  // lose elements, or violate ordering.
  UnknownNParams p;
  p.b = 2;
  p.k = GetParam();
  p.h = 1;
  p.alpha = 0.5;
  UnknownNOptions options;
  options.params = p;
  options.seed = 3;
  UnknownNSketch sketch = std::move(UnknownNSketch::Create(options)).value();
  for (int i = 0; i < 5000; ++i) {
    sketch.Add(static_cast<Value>(i % 100));
    ASSERT_EQ(sketch.HeldWeight(), static_cast<Weight>(i + 1));
  }
  Value lo = sketch.Query(0.01).value();
  Value hi = sketch.Query(0.99).value();
  EXPECT_LE(lo, hi);
  EXPECT_GE(lo, 0.0);
  EXPECT_LE(hi, 99.0);
}

INSTANTIATE_TEST_SUITE_P(Ks, TinyKSweep,
                         ::testing::Values(1, 2, 3, 5, 8),
                         [](const ::testing::TestParamInfo<std::size_t>& i) {
                           return "k" + std::to_string(i.param);
                         });

// --------------------------------------------- Known-N solver phase sweep

class KnownNSolverSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KnownNSolverSweep, MemoryIsMonotoneUpToPlateau) {
  // Memory at N must never exceed memory at 1024*N by more than the
  // plateau value (i.e., the curve is growth-then-plateau, no spikes).
  const std::uint64_t n = GetParam();
  std::uint64_t here = KnownNMemoryElements(0.01, 1e-4, n).value();
  std::uint64_t plateau =
      KnownNMemoryElements(0.01, 1e-4, std::uint64_t{1} << 55).value();
  EXPECT_LE(here, plateau);
}

INSTANTIATE_TEST_SUITE_P(
    Ns, KnownNSolverSweep,
    ::testing::Values(1, 100, 10'000, 1'000'000, 100'000'000,
                      std::uint64_t{1} << 40),
    [](const ::testing::TestParamInfo<std::uint64_t>& i) {
      return "n" + std::to_string(i.param);
    });

}  // namespace
}  // namespace mrl
