// Direct tests of the invariant auditor (src/util/audit.h): each checker
// passes on states real executions produce and fails on synthetic
// corruptions of the same states. The checkers are plain Status-returning
// functions in every build mode, so these tests run regardless of
// -DMRLQUANT_AUDIT (which only controls the in-sketch abort hooks).

#include "util/audit.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/buffer.h"
#include "core/collapse_policy.h"
#include "core/framework.h"
#include "core/known_n.h"
#include "core/parallel.h"
#include "core/unknown_n.h"
#include "util/status.h"

namespace mrl {
namespace {

Buffer MakeFullBuffer(std::size_t k, Weight weight, int level) {
  Buffer b(k);
  std::vector<Value> sorted;
  sorted.reserve(k);
  for (std::size_t i = 0; i < k; ++i) sorted.push_back(static_cast<Value>(i));
  b.AssignSorted(std::move(sorted), weight, level);
  return b;
}

TEST(CheckBufferTest, AcceptsLegalStates) {
  Buffer empty(8);
  EXPECT_TRUE(audit::CheckBuffer(empty, 0).ok());

  Buffer filling(8);
  filling.StartFill();
  filling.Append(3.0);
  EXPECT_TRUE(audit::CheckBuffer(filling, 1).ok());

  EXPECT_TRUE(audit::CheckBuffer(MakeFullBuffer(8, 4, 2), 2).ok());
}

TEST(CheckBufferTest, RejectsUnsortedFullBuffer) {
  Buffer b(4);
  // AssignSorted trusts its caller in release builds; feed it a descending
  // run to model a corrupted pool.
  b.AssignSorted({4.0, 3.0, 2.0, 1.0}, 1, 0);
  Status s = audit::CheckBuffer(b, 0);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("sorted"), std::string::npos) << s;
}

TEST(CheckFrameworkTest, AcceptsFreshAndWorkedPools) {
  CollapseFramework fresh(5, 16,
                          MakeCollapsePolicy(CollapsePolicyKind::kMrl));
  EXPECT_TRUE(audit::CheckFramework(fresh).ok());

  // Drive enough leaves through a tiny pool to force several collapses.
  CollapseFramework worked(3, 4,
                           MakeCollapsePolicy(CollapsePolicyKind::kMrl));
  for (int leaf = 0; leaf < 10; ++leaf) {
    std::size_t slot = worked.AcquireEmptySlot();
    worked.buffer(slot).StartFill();
    for (int i = 0; i < 4; ++i) {
      worked.buffer(slot).Append(static_cast<Value>(leaf * 4 + i));
    }
    worked.CommitFull(slot, 1, 0);
    EXPECT_TRUE(audit::CheckFramework(worked).ok());
  }
}

TEST(CheckFrameworkTest, RejectsImpossibleTreeCounters) {
  CollapseFramework f(3, 4, MakeCollapsePolicy(CollapsePolicyKind::kMrl));
  // Two full buffers but the stats claim no leaf was ever created: the
  // counters cannot cover the pool.
  f.IngestFull({1.0, 2.0, 3.0, 4.0}, 1, 0);
  f.IngestFull({5.0, 6.0, 7.0, 8.0}, 1, 0);
  Status before = audit::CheckFramework(f);
  ASSERT_TRUE(before.ok()) << before;

  CollapseFramework corrupt(3, 4,
                            MakeCollapsePolicy(CollapsePolicyKind::kMrl));
  corrupt.buffer(0).AssignSorted({1.0, 2.0, 3.0, 4.0}, 1, 5);
  // max_level in stats stays 0 while the buffer claims level 5.
  Status s = audit::CheckFramework(corrupt);
  EXPECT_FALSE(s.ok());
}

TEST(CollapseConservationTest, ExactEqualityRequired) {
  EXPECT_TRUE(audit::CheckCollapseConservation(120, 120).ok());
  EXPECT_FALSE(audit::CheckCollapseConservation(120, 119).ok());
  EXPECT_FALSE(audit::CheckCollapseConservation(120, 121).ok());
}

TEST(WeightConservationTest, ExactEqualityRequired) {
  EXPECT_TRUE(audit::CheckWeightConservation(0, 0).ok());
  EXPECT_TRUE(audit::CheckWeightConservation(1000, 1000).ok());
  Status s = audit::CheckWeightConservation(999, 1000);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("weight was lost or invented"),
            std::string::npos)
      << s;
}

TEST(WeightConservationTest, HoldsOnLiveUnknownNSketch) {
  UnknownNOptions options;
  options.eps = 0.05;
  options.delta = 1e-3;
  Result<UnknownNSketch> sketch = UnknownNSketch::Create(options);
  ASSERT_TRUE(sketch.ok());
  for (int i = 0; i < 50000; ++i) {
    sketch.value().Add(static_cast<Value>(i % 997));
    if (i % 4096 == 0) {
      EXPECT_TRUE(audit::CheckWeightConservation(sketch.value().HeldWeight(),
                                                 sketch.value().count())
                      .ok());
    }
  }
  EXPECT_TRUE(audit::CheckWeightConservation(sketch.value().HeldWeight(),
                                             sketch.value().count())
                  .ok());
}

TEST(WeightConservationTest, HoldsOnLiveKnownNSketch) {
  KnownNOptions options;
  options.eps = 0.05;
  options.delta = 1e-3;
  options.n = 30000;
  Result<KnownNSketch> sketch = KnownNSketch::Create(options);
  ASSERT_TRUE(sketch.ok());
  for (std::uint64_t i = 0; i < options.n; ++i) {
    sketch.value().Add(static_cast<Value>(i));
  }
  EXPECT_TRUE(audit::CheckWeightConservation(sketch.value().HeldWeight(),
                                             options.n)
                  .ok());
}

TEST(UnknownNHeightTest, HoldsOnLiveSketchAndRejectsTightBudget) {
  UnknownNOptions options;
  options.eps = 0.02;
  options.delta = 1e-3;
  Result<UnknownNSketch> sketch = UnknownNSketch::Create(options);
  ASSERT_TRUE(sketch.ok());
  for (int i = 0; i < 300000; ++i) {
    sketch.value().Add(static_cast<Value>(i));
  }
  const UnknownNSketch& s = sketch.value();
  EXPECT_TRUE(audit::CheckUnknownNHeight(s.framework(), s.params().h,
                                         s.sampling_rate())
                  .ok());
  // A rate that is not a power of two is impossible under §3.7.
  EXPECT_FALSE(
      audit::CheckUnknownNHeight(s.framework(), s.params().h, 3).ok());
  if (s.framework().max_level() > 0) {
    // Claiming budget h = -1 with rate 1 must fail once the tree has any
    // height at all.
    EXPECT_FALSE(audit::CheckUnknownNHeight(s.framework(), -1, 1).ok());
  }
}

TEST(KnownNHeightTest, HoldsOnSolverSizedSketch) {
  KnownNOptions options;
  options.eps = 0.05;
  options.delta = 1e-3;
  options.n = 100000;
  Result<KnownNSketch> sketch = KnownNSketch::Create(options);
  ASSERT_TRUE(sketch.ok());
  for (std::uint64_t i = 0; i < options.n; ++i) {
    sketch.value().Add(static_cast<Value>(options.n - i));
  }
  const KnownNSketch& s = sketch.value();
  EXPECT_TRUE(audit::CheckKnownNHeight(s.framework(), s.params().h).ok());
  if (s.framework().max_level() > 0) {
    EXPECT_FALSE(audit::CheckKnownNHeight(s.framework(), -1).ok());
  }
}

TEST(CoordinatorStagingTest, LegalityBounds) {
  // Empty staging carries no weight.
  EXPECT_TRUE(audit::CheckCoordinatorStaging(0, 100, 0).ok());
  // Non-empty staging below k with positive weight is legal.
  EXPECT_TRUE(audit::CheckCoordinatorStaging(99, 100, 7).ok());
  // Staging at or past k must have been promoted.
  EXPECT_FALSE(audit::CheckCoordinatorStaging(100, 100, 7).ok());
  // Non-empty staging with zero weight is illegal.
  EXPECT_FALSE(audit::CheckCoordinatorStaging(5, 100, 0).ok());
  // Empty staging with leftover weight is illegal.
  EXPECT_FALSE(audit::CheckCoordinatorStaging(0, 100, 3).ok());
}

TEST(CoordinatorStagingTest, HoldsAcrossLiveIngest) {
  ParallelOptions options;
  options.eps = 0.05;
  options.delta = 1e-3;
  options.num_workers = 3;
  Result<UnknownNParams> params = SolveParallelWorker(options);
  ASSERT_TRUE(params.ok());
  ParallelCoordinator coordinator(params.value(), /*seed=*/7);
  for (int w = 0; w < options.num_workers; ++w) {
    UnknownNOptions worker_options;
    worker_options.params = params.value();
    worker_options.seed = 100 + static_cast<std::uint64_t>(w);
    Result<UnknownNSketch> worker =
        UnknownNSketch::Create(worker_options);
    ASSERT_TRUE(worker.ok());
    for (int i = 0; i < 20000 + w * 1717; ++i) {
      worker.value().Add(static_cast<Value>(i * (w + 1)));
    }
    coordinator.Ingest(worker.value().FinishAndExport());
  }
  Result<Value> median = coordinator.Query(0.5);
  EXPECT_TRUE(median.ok());
}

}  // namespace
}  // namespace mrl
