#include <vector>

#include <gtest/gtest.h>

#include "core/dynamic_alloc.h"
#include "core/unknown_n.h"
#include "stream/generator.h"

namespace mrl {
namespace {

std::vector<MemoryLimitPoint> GenerousLimits() {
  // Plenty of room from the start.
  return {{0, 1'000'000}};
}

std::vector<MemoryLimitPoint> StaircaseLimits() {
  // Memory allowance that grows with the stream, Figure 5 style. (Starting
  // much lower than ~3 buffers' worth makes eps = 0.01 infeasible: with
  // only two buffers the tree height grows by one per buffer-fill, and the
  // pre-sampling height budget h <= 2*eps*k runs out before the schedule
  // can allocate more — the planner correctly rejects such curves, see
  // InfeasiblyTightCurveFails.)
  return {{0, 1'200},      {5'000, 2'400},   {20'000, 4'000},
          {100'000, 8'000}, {500'000, 16'000}};
}

TEST(PlannerTest, RejectsMalformedCurves) {
  EXPECT_EQ(PlanDynamicAllocation(0.01, 1e-4, {}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      PlanDynamicAllocation(0.01, 1e-4, {{5, 100}}).status().code(),
      StatusCode::kInvalidArgument);  // first knot must be n = 0
  EXPECT_EQ(PlanDynamicAllocation(0.01, 1e-4, {{0, 100}, {0, 200}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);  // non-increasing n
  EXPECT_EQ(PlanDynamicAllocation(0.01, 1e-4, {{0, 300}, {10, 200}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);  // decreasing limit
  EXPECT_EQ(PlanDynamicAllocation(0.0, 1e-4, GenerousLimits())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(PlannerTest, InfeasiblyTightCurveFails) {
  // 10 elements of memory can never satisfy eps = 0.01.
  EXPECT_EQ(PlanDynamicAllocation(0.01, 1e-4, {{0, 10}}).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(PlannerTest, GenerousLimitsYieldValidPlan) {
  Result<DynamicAllocationPlan> r =
      PlanDynamicAllocation(0.01, 1e-4, GenerousLimits());
  ASSERT_TRUE(r.ok()) << r.status();
  const DynamicAllocationPlan& plan = r.value();
  EXPECT_GE(plan.params.b, 2);
  EXPECT_GE(plan.params.h, 1);
  EXPECT_GT(plan.params.alpha, 0.0);
  EXPECT_LT(plan.params.alpha, 1.0);
  EXPECT_EQ(plan.allocate_at.size(), static_cast<std::size_t>(plan.params.b));
  EXPECT_EQ(plan.allocate_at.front(), 0u);
  // Schedule must be nondecreasing.
  for (std::size_t i = 1; i < plan.allocate_at.size(); ++i) {
    EXPECT_GE(plan.allocate_at[i], plan.allocate_at[i - 1]);
  }
}

TEST(PlannerTest, StaircasePlanRespectsLimitsEverywhere) {
  Result<DynamicAllocationPlan> r =
      PlanDynamicAllocation(0.01, 1e-3, StaircaseLimits());
  ASSERT_TRUE(r.ok()) << r.status();
  const DynamicAllocationPlan& plan = r.value();
  auto limits = StaircaseLimits();
  auto limit_at = [&](std::uint64_t n) {
    std::uint64_t v = 0;
    for (const auto& p : limits) {
      if (p.n > n) break;
      v = p.max_elements;
    }
    return v;
  };
  for (std::uint64_t n : {1ull, 100ull, 4999ull, 5000ull, 19999ull, 20000ull,
                          99999ull, 100000ull, 500000ull, 2000000ull}) {
    EXPECT_LE(plan.MemoryElementsAt(n), limit_at(n)) << "n=" << n;
  }
}

TEST(PlannerTest, AllowanceFunctionMatchesSchedule) {
  Result<DynamicAllocationPlan> r =
      PlanDynamicAllocation(0.02, 1e-3, StaircaseLimits());
  ASSERT_TRUE(r.ok()) << r.status();
  const DynamicAllocationPlan& plan = r.value();
  auto allowance = plan.AllowanceFunction();
  for (std::uint64_t n : {1ull, 1000ull, 5000ull, 100000ull, 3000000ull}) {
    int expected = plan.AllowedBuffersAt(n);
    if (expected < 1) expected = 1;
    EXPECT_EQ(allowance(n), expected) << "n=" << n;
  }
}

TEST(DynamicSketchTest, RunsUnderScheduleAndStaysAccurate) {
  Result<DynamicAllocationPlan> planned =
      PlanDynamicAllocation(0.02, 1e-3, StaircaseLimits());
  ASSERT_TRUE(planned.ok()) << planned.status();
  const DynamicAllocationPlan& plan = planned.value();

  UnknownNOptions options;
  options.params = plan.params;
  options.buffer_allowance = plan.AllowanceFunction();
  options.seed = 7;
  UnknownNSketch sketch = std::move(UnknownNSketch::Create(options)).value();

  StreamSpec spec;
  spec.n = 150000;
  spec.seed = 11;
  Dataset ds = GenerateStream(spec);
  auto limits = StaircaseLimits();
  auto limit_at = [&](std::uint64_t n) {
    std::uint64_t v = 0;
    for (const auto& p : limits) {
      if (p.n > n) break;
      v = p.max_elements;
    }
    return v;
  };
  for (std::size_t i = 0; i < ds.size(); ++i) {
    sketch.Add(ds.values()[i]);
    if ((i + 1) % 10000 == 0) {
      // Memory actually in use never exceeds the user's curve.
      EXPECT_LE(sketch.CurrentMemoryElements(), limit_at(i + 1))
          << "at n=" << (i + 1);
    }
  }
  EXPECT_EQ(sketch.HeldWeight(), ds.size());
  for (double phi : {0.1, 0.5, 0.9}) {
    Value est = sketch.Query(phi).value();
    EXPECT_LE(ds.QuantileError(est, phi), 0.02) << "phi " << phi;
  }
}

TEST(DynamicSketchTest, MemoryGrowsOverTime) {
  Result<DynamicAllocationPlan> planned =
      PlanDynamicAllocation(0.02, 1e-3, StaircaseLimits());
  ASSERT_TRUE(planned.ok());
  const DynamicAllocationPlan& plan = planned.value();
  UnknownNOptions options;
  options.params = plan.params;
  options.buffer_allowance = plan.AllowanceFunction();
  UnknownNSketch sketch = std::move(UnknownNSketch::Create(options)).value();

  std::uint64_t early = 0, late = 0;
  for (int i = 0; i < 100000; ++i) {
    sketch.Add(i);
    if (i == 100) early = sketch.CurrentMemoryElements();
  }
  late = sketch.CurrentMemoryElements();
  EXPECT_LT(early, late) << "allocation should be lazy";
  EXPECT_LE(late, sketch.MemoryElements());
}

TEST(PlannerTest, PlanAccuracyAtEveryPrefix) {
  // The defining property of a *valid* schedule: the guarantee holds at
  // every termination point, including while memory is still small.
  Result<DynamicAllocationPlan> planned =
      PlanDynamicAllocation(0.05, 1e-3, {{0, 200}, {1000, 400}, {5000, 800},
                                         {20000, 1600}, {100000, 3200}});
  ASSERT_TRUE(planned.ok()) << planned.status();
  UnknownNOptions options;
  options.params = planned.value().params;
  options.buffer_allowance = planned.value().AllowanceFunction();
  options.seed = 3;
  UnknownNSketch sketch = std::move(UnknownNSketch::Create(options)).value();

  StreamSpec spec;
  spec.n = 60000;
  spec.seed = 13;
  Dataset ds = GenerateStream(spec);
  std::vector<Value> prefix;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    sketch.Add(ds.values()[i]);
    prefix.push_back(ds.values()[i]);
    if ((i + 1) % 6000 == 0) {
      Dataset prefix_ds(prefix);
      Value est = sketch.Query(0.5).value();
      EXPECT_LE(prefix_ds.QuantileError(est, 0.5), 0.05)
          << "prefix " << (i + 1);
    }
  }
}

}  // namespace
}  // namespace mrl
