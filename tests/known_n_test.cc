#include <vector>

#include <gtest/gtest.h>

#include "core/known_n.h"
#include "stream/generator.h"

namespace mrl {
namespace {

TEST(KnownNSketchTest, RequiresN) {
  KnownNOptions options;
  options.n = 0;
  EXPECT_EQ(KnownNSketch::Create(options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(KnownNSketchTest, RejectsBadExplicitParams) {
  KnownNOptions options;
  KnownNParams p;
  p.b = 1;
  p.k = 10;
  p.rate = 1;
  p.n = 100;
  options.params = p;
  EXPECT_EQ(KnownNSketch::Create(options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(KnownNSketchTest, DeterministicVariantIsAccurate) {
  StreamSpec spec;
  spec.n = 50000;
  spec.seed = 3;
  Dataset ds = GenerateStream(spec);
  KnownNOptions options;
  options.eps = 0.01;
  options.delta = 1e-4;
  options.n = ds.size();
  KnownNSketch sketch = std::move(KnownNSketch::Create(options)).value();
  EXPECT_EQ(sketch.params().rate, 1u) << "small n should not sample";
  for (Value v : ds.values()) sketch.Add(v);
  EXPECT_EQ(sketch.count(), ds.size());
  EXPECT_EQ(sketch.HeldWeight(), ds.size());
  for (double phi : {0.01, 0.1, 0.5, 0.9, 0.99}) {
    Value est = sketch.Query(phi).value();
    EXPECT_LE(ds.QuantileError(est, phi), 0.01) << "phi " << phi;
  }
}

TEST(KnownNSketchTest, SampledVariantIsAccurate) {
  // Force sampling with explicit params: rate 8 over 80000 elements.
  KnownNParams p;
  p.b = 5;
  p.k = 256;
  p.h = 5;
  p.rate = 8;
  p.alpha = 0.5;
  p.n = 80000;
  KnownNOptions options;
  options.params = p;
  options.seed = 7;
  KnownNSketch sketch = std::move(KnownNSketch::Create(options)).value();

  StreamSpec spec;
  spec.n = 80000;
  spec.seed = 11;
  spec.distribution = "gaussian";
  Dataset ds = GenerateStream(spec);
  for (Value v : ds.values()) sketch.Add(v);
  EXPECT_EQ(sketch.HeldWeight(), ds.size());
  for (double phi : {0.1, 0.5, 0.9}) {
    Value est = sketch.Query(phi).value();
    // (h+1)/(2k) ~ 0.012 tree budget + sampling noise at rate 8.
    EXPECT_LE(ds.QuantileError(est, phi), 0.03) << "phi " << phi;
  }
}

TEST(KnownNSketchTest, HugeDeclaredNUsesSampling) {
  KnownNOptions options;
  options.eps = 0.01;
  options.delta = 1e-4;
  options.n = std::uint64_t{1} << 40;
  KnownNSketch sketch = std::move(KnownNSketch::Create(options)).value();
  EXPECT_GT(sketch.params().rate, 1u);
  // Feed only a prefix; anytime queries still work.
  for (int i = 0; i < 100000; ++i) {
    sketch.Add(static_cast<Value>(i % 1000));
  }
  EXPECT_TRUE(sketch.Query(0.5).ok());
  EXPECT_EQ(sketch.HeldWeight(), 100000u);
}

TEST(KnownNSketchTest, OverflowVoidsGuarantee) {
  KnownNParams p;
  p.b = 3;
  p.k = 16;
  p.h = 2;
  p.rate = 1;
  p.alpha = 1.0;
  p.n = 100;
  KnownNOptions options;
  options.params = p;
  KnownNSketch sketch = std::move(KnownNSketch::Create(options)).value();
  for (int i = 0; i < 100; ++i) sketch.Add(i);
  EXPECT_FALSE(sketch.overflowed());
  EXPECT_TRUE(sketch.Query(0.5).ok());
  sketch.Add(100);
  EXPECT_TRUE(sketch.overflowed());
  EXPECT_EQ(sketch.Query(0.5).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(sketch.QueryMany({0.5}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(KnownNSketchTest, PartialTailAccountsExactly) {
  // Stream length not a multiple of rate*k: the partial buffer and the
  // in-flight block candidate must account for the remainder.
  KnownNParams p;
  p.b = 3;
  p.k = 10;
  p.h = 2;
  p.rate = 4;
  p.alpha = 0.5;
  p.n = 1000;
  KnownNOptions options;
  options.params = p;
  options.seed = 13;
  KnownNSketch sketch = std::move(KnownNSketch::Create(options)).value();
  for (int i = 0; i < 357; ++i) {  // 357 = 8 * 40 + 37: mid-buffer + mid-block
    sketch.Add(i);
    ASSERT_EQ(sketch.HeldWeight(), static_cast<Weight>(i + 1));
  }
}

TEST(KnownNSketchTest, QueryManyMatchesSingles) {
  KnownNOptions options;
  options.eps = 0.02;
  options.delta = 1e-3;
  options.n = 20000;
  options.seed = 17;
  KnownNSketch sketch = std::move(KnownNSketch::Create(options)).value();
  StreamSpec spec;
  spec.n = 20000;
  spec.seed = 19;
  Dataset ds = GenerateStream(spec);
  for (Value v : ds.values()) sketch.Add(v);
  std::vector<double> phis = {0.2, 0.8, 0.5};
  std::vector<Value> batch = sketch.QueryMany(phis).value();
  for (std::size_t i = 0; i < phis.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], sketch.Query(phis[i]).value());
  }
}

}  // namespace
}  // namespace mrl
