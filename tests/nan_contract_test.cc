// Regression tests for the NaN ingestion contract (estimator.h): the
// sketches are comparison based, so NaN has no rank and is rejected at the
// sketch boundary with a CHECK abort — on every element-wise Add, and on
// the batch path wherever a NaN would actually enter sketch state (sampled
// survivors and the pending block candidate; MRLQUANT_AUDIT builds scan
// whole batches). Every other IEEE-754 special — ±inf, ±0.0, denormals —
// is an ordinary totally-ordered value and must keep working.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/extreme.h"
#include "core/known_n.h"
#include "core/unknown_n.h"
#include "util/types.h"

namespace mrl {
namespace {

const Value kNaN = std::numeric_limits<Value>::quiet_NaN();

UnknownNSketch MakeUnknownN() {
  UnknownNOptions options;
  options.eps = 0.05;
  options.delta = 1e-3;
  Result<UnknownNSketch> r = UnknownNSketch::Create(options);
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

KnownNSketch MakeKnownN() {
  KnownNOptions options;
  options.eps = 0.05;
  options.delta = 1e-3;
  options.n = 100000;
  Result<KnownNSketch> r = KnownNSketch::Create(options);
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

TEST(NanContractTest, UnknownNAddRejectsNaN) {
  UnknownNSketch sketch = MakeUnknownN();
  sketch.Add(1.0);
  EXPECT_DEATH(sketch.Add(kNaN), "NaN rejected at the sketch boundary");
}

TEST(NanContractTest, UnknownNAddBatchRejectsSampledNaN) {
  UnknownNSketch sketch = MakeUnknownN();
  // The sampler's rate is 1 before any collapse, so every batch element is
  // a survivor and the boundary check must see the NaN.
  std::vector<Value> batch = {1.0, 2.0, kNaN, 4.0};
  // Release builds trap the sampled survivor ("rejected at the sketch
  // boundary"); MRLQUANT_AUDIT builds trap earlier with the whole-span scan
  // ("at batch offset"). Either way the batch must die on the NaN.
  EXPECT_DEATH(sketch.AddBatch(batch), "NaN (rejected|at batch offset)");
}

TEST(NanContractTest, KnownNAddRejectsNaN) {
  KnownNSketch sketch = MakeKnownN();
  sketch.Add(1.0);
  EXPECT_DEATH(sketch.Add(kNaN), "NaN rejected at the sketch boundary");
}

TEST(NanContractTest, KnownNAddBatchRejectsSampledNaN) {
  // Pin the sampling rate to 1 so every batch element is a survivor; with
  // the solved rate (> 1) the release-mode check only sees the NaN if the
  // sampler happens to draw it (MRLQUANT_AUDIT builds always see it).
  KnownNOptions options;
  KnownNParams params;
  params.b = 4;
  params.k = 32;
  params.h = 4;
  params.rate = 1;
  params.n = 100000;
  options.params = params;
  Result<KnownNSketch> r = KnownNSketch::Create(options);
  ASSERT_TRUE(r.ok());
  KnownNSketch sketch = std::move(r).value();
  std::vector<Value> batch(64, 1.5);
  batch[17] = kNaN;
  // See UnknownNAddBatchRejectsSampledNaN: audit builds die in the
  // whole-span scan, release builds on the sampled survivor.
  EXPECT_DEATH(sketch.AddBatch(batch), "NaN (rejected|at batch offset)");
}

TEST(NanContractTest, ExtremeAddRejectsNaN) {
  ExtremeValueOptions options;
  options.phi = 0.01;
  options.eps = 0.005;
  options.delta = 1e-3;
  options.n = 100000;
  Result<ExtremeValueSketch> r = ExtremeValueSketch::Create(options);
  ASSERT_TRUE(r.ok());
  ExtremeValueSketch sketch = std::move(r).value();
  sketch.Add(1.0);
  EXPECT_DEATH(sketch.Add(kNaN), "NaN rejected at the sketch boundary");
}

TEST(NanContractTest, NonNaNSpecialsAreOrdinaryValues) {
  UnknownNSketch sketch = MakeUnknownN();
  const Value inf = std::numeric_limits<Value>::infinity();
  std::vector<Value> batch = {
      -inf, inf, 0.0, -0.0, std::numeric_limits<Value>::denorm_min(),
      -std::numeric_limits<Value>::denorm_min(), 1.0, -1.0};
  for (int rep = 0; rep < 64; ++rep) sketch.AddBatch(batch);
  Result<Value> low = sketch.Query(0.05);
  Result<Value> high = sketch.Query(0.99);
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  EXPECT_EQ(low.value(), -inf);
  EXPECT_EQ(high.value(), inf);
}

}  // namespace
}  // namespace mrl
