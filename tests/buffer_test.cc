#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/buffer.h"
#include "core/collapse.h"
#include "core/weighted_merge.h"
#include "util/random.h"

namespace mrl {
namespace {

// ----------------------------------------------------------------- Buffer

TEST(BufferTest, LifecycleEmptyFillingFull) {
  Buffer buf(3);
  EXPECT_EQ(buf.state(), BufferState::kEmpty);
  EXPECT_EQ(buf.capacity(), 3u);
  buf.StartFill();
  EXPECT_EQ(buf.state(), BufferState::kFilling);
  buf.Append(3.0);
  buf.Append(1.0);
  buf.Append(2.0);
  buf.MarkFull(/*weight=*/4, /*level=*/2);
  EXPECT_EQ(buf.state(), BufferState::kFull);
  EXPECT_EQ(buf.weight(), 4u);
  EXPECT_EQ(buf.level(), 2);
  EXPECT_EQ(buf.values(), (std::vector<Value>{1.0, 2.0, 3.0}))
      << "MarkFull must sort";
  EXPECT_EQ(buf.TotalWeight(), 12u);
  buf.Clear();
  EXPECT_EQ(buf.state(), BufferState::kEmpty);
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.weight(), 0u);
}

TEST(BufferTest, AssignSortedFromAnyState) {
  Buffer buf(2);
  buf.AssignSorted({1.0, 5.0}, 3, 1);
  EXPECT_EQ(buf.state(), BufferState::kFull);
  buf.AssignSorted({0.0, 2.0}, 7, 2);  // reuse in situ, like Collapse does
  EXPECT_EQ(buf.weight(), 7u);
}

TEST(BufferTest, PromoteLevel) {
  Buffer buf(1);
  buf.AssignSorted({1.0}, 1, 0);
  buf.PromoteLevel(3);
  EXPECT_EQ(buf.level(), 3);
}

TEST(BufferDeathTest, MisuseAborts) {
  Buffer buf(2);
  EXPECT_DEATH(buf.Append(1.0), "kFilling");
  buf.StartFill();
  EXPECT_DEATH(buf.MarkFull(1, 0), "values_.size");
  buf.Append(1.0);
  buf.Append(2.0);
  EXPECT_DEATH(buf.Append(3.0), "values_.size");
}

// ---------------------------------------------------------- WeightedMerge

// Brute-force reference: expand each element into `weight` copies, sort,
// and index 1-based.
std::vector<Value> BruteForceSelect(const std::vector<WeightedRun>& runs,
                                    const std::vector<Weight>& targets) {
  std::vector<Value> expanded;
  for (const WeightedRun& r : runs) {
    for (std::size_t i = 0; i < r.size; ++i) {
      for (Weight w = 0; w < r.weight; ++w) expanded.push_back(r.data[i]);
    }
  }
  std::sort(expanded.begin(), expanded.end());
  std::vector<Value> out;
  for (Weight t : targets) out.push_back(expanded[t - 1]);
  return out;
}

TEST(WeightedMergeTest, TotalRunWeight) {
  std::vector<Value> a = {1, 2, 3};
  std::vector<Value> b = {4, 5};
  std::vector<WeightedRun> runs = {{a.data(), a.size(), 2},
                                   {b.data(), b.size(), 5}};
  EXPECT_EQ(TotalRunWeight(runs), 3 * 2 + 2 * 5u);
}

TEST(WeightedMergeTest, MatchesBruteForceSimple) {
  std::vector<Value> a = {1, 3, 5};
  std::vector<Value> b = {2, 4, 6};
  std::vector<WeightedRun> runs = {{a.data(), a.size(), 1},
                                   {b.data(), b.size(), 1}};
  std::vector<Weight> targets = {1, 3, 4, 6};
  EXPECT_EQ(SelectWeightedPositions(runs, targets),
            BruteForceSelect(runs, targets));
}

TEST(WeightedMergeTest, MatchesBruteForceWeighted) {
  std::vector<Value> a = {10, 30};
  std::vector<Value> b = {20};
  std::vector<WeightedRun> runs = {{a.data(), a.size(), 3},
                                   {b.data(), b.size(), 4}};
  // Expanded: 10,10,10,20,20,20,20,30,30,30
  std::vector<Weight> targets = {1, 3, 4, 7, 8, 10};
  EXPECT_EQ(SelectWeightedPositions(runs, targets),
            BruteForceSelect(runs, targets));
}

TEST(WeightedMergeTest, HandlesTiesAndDuplicateTargets) {
  std::vector<Value> a = {5, 5};
  std::vector<Value> b = {5, 7};
  std::vector<WeightedRun> runs = {{a.data(), a.size(), 2},
                                   {b.data(), b.size(), 2}};
  std::vector<Weight> targets = {2, 2, 6, 8};
  EXPECT_EQ(SelectWeightedPositions(runs, targets),
            BruteForceSelect(runs, targets));
}

TEST(WeightedMergeTest, RandomizedAgainstBruteForce) {
  Random rng(77);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<std::vector<Value>> storage;
    std::vector<WeightedRun> runs;
    const int num_runs = 1 + static_cast<int>(rng.UniformUint64(5));
    for (int r = 0; r < num_runs; ++r) {
      const std::size_t len = 1 + rng.UniformUint64(8);
      std::vector<Value> vals;
      for (std::size_t i = 0; i < len; ++i) {
        vals.push_back(static_cast<Value>(rng.UniformUint64(10)));
      }
      std::sort(vals.begin(), vals.end());
      storage.push_back(std::move(vals));
    }
    for (const auto& v : storage) {
      runs.push_back({v.data(), v.size(), 1 + rng.UniformUint64(6)});
    }
    const Weight total = TotalRunWeight(runs);
    std::vector<Weight> targets;
    for (int t = 0; t < 10; ++t) {
      targets.push_back(1 + rng.UniformUint64(total));
    }
    std::sort(targets.begin(), targets.end());
    EXPECT_EQ(SelectWeightedPositions(runs, targets),
              BruteForceSelect(runs, targets))
        << "iteration " << iter;
  }
}

TEST(WeightedMergeTest, EmptyTargetsYieldEmpty) {
  std::vector<Value> a = {1};
  std::vector<WeightedRun> runs = {{a.data(), a.size(), 1}};
  EXPECT_TRUE(SelectWeightedPositions(runs, {}).empty());
}

// --------------------------------------------------------------- Collapse

TEST(CollapsePositionsTest, OddWeightUsesMiddle) {
  // w = 5, k = 3: positions j*5 + 3.
  EXPECT_EQ(CollapsePositions(5, 3, true), (std::vector<Weight>{3, 8, 13}));
  EXPECT_EQ(CollapsePositions(5, 3, false), (std::vector<Weight>{3, 8, 13}));
}

TEST(CollapsePositionsTest, EvenWeightAlternatesOffsets) {
  // w = 4, k = 2: low phase -> j*4 + 2; high phase -> j*4 + 3.
  EXPECT_EQ(CollapsePositions(4, 2, true), (std::vector<Weight>{2, 6}));
  EXPECT_EQ(CollapsePositions(4, 2, false), (std::vector<Weight>{3, 7}));
}

TEST(CollapseTest, EqualWeightPairMatchesPaperExample) {
  // Two weight-1 buffers of k=3: w(Y)=2, positions (low phase) 1,3,5 of the
  // merged 6.
  Buffer x(3), y(3);
  x.AssignSorted({1, 3, 5}, 1, 0);
  y.AssignSorted({2, 4, 6}, 1, 0);
  bool even_low = true;
  Weight w = Collapse({&x, &y}, /*output_slot=*/0, /*output_level=*/1,
                      &even_low);
  EXPECT_EQ(w, 2u);
  EXPECT_FALSE(even_low) << "even collapse must flip the phase";
  EXPECT_EQ(x.state(), BufferState::kFull);
  EXPECT_EQ(x.values(), (std::vector<Value>{1, 3, 5}));
  EXPECT_EQ(x.weight(), 2u);
  EXPECT_EQ(x.level(), 1);
  EXPECT_EQ(y.state(), BufferState::kEmpty);
}

TEST(CollapseTest, AlternationPicksOtherOffsetsNextTime) {
  Buffer x(3), y(3);
  x.AssignSorted({1, 3, 5}, 1, 0);
  y.AssignSorted({2, 4, 6}, 1, 0);
  bool even_low = false;  // high phase: positions 2,4,6
  Collapse({&x, &y}, 0, 1, &even_low);
  EXPECT_TRUE(even_low);
  EXPECT_EQ(x.values(), (std::vector<Value>{2, 4, 6}));
}

TEST(CollapseTest, WeightConservation) {
  Buffer a(2), b(2), c(2);
  a.AssignSorted({1, 2}, 3, 1);
  b.AssignSorted({3, 4}, 4, 1);
  c.AssignSorted({5, 6}, 5, 1);
  bool even_low = true;
  Weight w = Collapse({&a, &b, &c}, /*output_slot=*/1, 2, &even_low);
  EXPECT_EQ(w, 12u);
  EXPECT_EQ(b.TotalWeight(), 24u);  // k * w(Y) = 2 * 12
  EXPECT_EQ(a.state(), BufferState::kEmpty);
  EXPECT_EQ(c.state(), BufferState::kEmpty);
}

TEST(CollapseTest, OutputMatchesBruteForceSelection) {
  Random rng(88);
  for (int iter = 0; iter < 30; ++iter) {
    const std::size_t k = 2 + rng.UniformUint64(6);
    const int c = 2 + static_cast<int>(rng.UniformUint64(4));
    std::vector<Buffer> buffers;
    buffers.reserve(static_cast<std::size_t>(c));
    std::vector<WeightedRun> runs_copy;
    std::vector<std::vector<Value>> storage;
    for (int i = 0; i < c; ++i) {
      std::vector<Value> vals;
      for (std::size_t j = 0; j < k; ++j) {
        vals.push_back(static_cast<Value>(rng.UniformUint64(100)));
      }
      std::sort(vals.begin(), vals.end());
      storage.push_back(vals);
      buffers.emplace_back(k);
      buffers.back().AssignSorted(vals, 1 + rng.UniformUint64(7), 0);
    }
    Weight w = 0;
    for (int i = 0; i < c; ++i) {
      runs_copy.push_back(
          {storage[static_cast<std::size_t>(i)].data(), k,
           buffers[static_cast<std::size_t>(i)].weight()});
      w += buffers[static_cast<std::size_t>(i)].weight();
    }
    bool even_low = (iter % 2 == 0);
    std::vector<Weight> expected_positions =
        CollapsePositions(w, k, even_low);
    std::vector<Value> expected =
        BruteForceSelect(runs_copy, expected_positions);

    std::vector<Buffer*> inputs;
    for (Buffer& buf : buffers) inputs.push_back(&buf);
    Collapse(inputs, 0, 1, &even_low);
    EXPECT_EQ(buffers[0].values(), expected) << "iteration " << iter;
  }
}

TEST(CollapseDeathTest, RejectsNonFullInputs) {
  Buffer a(2), b(2);
  a.AssignSorted({1, 2}, 1, 0);
  bool even_low = true;
  EXPECT_DEATH(Collapse({&a, &b}, 0, 1, &even_low), "full");
}

}  // namespace
}  // namespace mrl
