// Golden-state pins for the merge engine rewrite: the serialized state of
// every sketch family after a fixed seeded stream, hashed with FNV-1a. The
// constants below were captured from the flat-cursor-scan implementation
// (pre loser-tree); the loser-tree merge and the scratch-arena collapse
// path must reproduce them byte for byte — same §3.2 offset alternation,
// same tie-breaking by run index, same answers. A mismatch here means the
// merge rewrite changed an answer somewhere.
//
// To regenerate after an INTENTIONAL state-format change, build with
// -DMRLQUANT_GOLDEN_PRINT and run the binary: it prints the new constants
// instead of asserting (see tests/CMakeLists.txt).

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "core/collapse_policy.h"
#include "core/framework.h"
#include "core/known_n.h"
#include "core/parallel.h"
#include "core/sharded.h"
#include "core/unknown_n.h"
#include "stream/generator.h"
#include "util/serde.h"

namespace mrl {
namespace {

std::uint64_t Fnv1a(const std::uint8_t* data, std::size_t size,
                    std::uint64_t hash = 0xcbf29ce484222325ull) {
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::uint64_t Fnv1a(const std::vector<std::uint8_t>& bytes,
                    std::uint64_t hash = 0xcbf29ce484222325ull) {
  return Fnv1a(bytes.data(), bytes.size(), hash);
}

std::uint64_t HashValues(const std::vector<Value>& values,
                         std::uint64_t hash = 0xcbf29ce484222325ull) {
  for (Value v : values) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    hash = Fnv1a(reinterpret_cast<const std::uint8_t*>(&bits), sizeof(bits),
                 hash);
  }
  return hash;
}

const std::vector<double>& Phis() {
  static const std::vector<double> phis = {0.001, 0.01, 0.1, 0.25, 0.5,
                                           0.75,  0.9,  0.99, 0.999};
  return phis;
}

#ifdef MRLQUANT_GOLDEN_PRINT
#define GOLDEN_EQ(actual, expected) \
  printf("%s = 0x%016llxull\n", #expected, \
         static_cast<unsigned long long>(actual))
#else
#define GOLDEN_EQ(actual, expected) \
  EXPECT_EQ(actual, expected) << "state diverged from the pre-rewrite merge"
#endif

// ------------------------------------------------------------- unknown-N

std::uint64_t UnknownNGolden(bool small_params) {
  StreamSpec spec;
  spec.distribution = small_params ? "uniform" : "gaussian";
  spec.n = small_params ? 30000 : 60000;
  spec.seed = small_params ? 42 : 43;
  std::vector<Value> stream = GenerateStream(spec).values();

  UnknownNOptions options;
  options.seed = small_params ? 7 : 8;
  if (small_params) {
    UnknownNParams p;
    p.b = 4;
    p.k = 32;
    p.h = 2;
    p.alpha = 0.5;
    options.params = p;
  } else {
    options.eps = 0.02;
    options.delta = 1e-3;
  }
  UnknownNSketch sketch = std::move(UnknownNSketch::Create(options)).value();
  sketch.AddBatch(stream);
  std::uint64_t hash = Fnv1a(sketch.Serialize());
  hash = HashValues(sketch.QueryMany(Phis()).value(), hash);
  return hash;
}

constexpr std::uint64_t kUnknownNSmallGolden = 0xe4bb8fa9665a0386ull;
constexpr std::uint64_t kUnknownNSolvedGolden = 0x33bbf0baaed6e8ccull;

TEST(StateGoldenTest, UnknownNSmallParams) {
  GOLDEN_EQ(UnknownNGolden(/*small_params=*/true), kUnknownNSmallGolden);
}

TEST(StateGoldenTest, UnknownNSolvedParams) {
  GOLDEN_EQ(UnknownNGolden(/*small_params=*/false), kUnknownNSolvedGolden);
}

// --------------------------------------------------------------- known-N

constexpr std::uint64_t kKnownNGolden = 0xbe42a30174193dedull;

TEST(StateGoldenTest, KnownN) {
  StreamSpec spec;
  spec.n = 30000;
  spec.seed = 44;
  std::vector<Value> stream = GenerateStream(spec).values();

  KnownNOptions options;
  options.eps = 0.01;
  options.delta = 1e-4;
  options.n = std::uint64_t{1} << 30;  // sampling active (rate > 1)
  options.seed = 9;
  KnownNSketch sketch = std::move(KnownNSketch::Create(options)).value();
  sketch.AddBatch(stream);
  std::uint64_t hash = Fnv1a(sketch.Serialize());
  hash = HashValues(sketch.QueryMany(Phis()).value(), hash);
  GOLDEN_EQ(hash, kKnownNGolden);
}

// --------------------------------------------------------------- sharded

constexpr std::uint64_t kShardedGolden = 0xd6b53cc44dad8efcull;

TEST(StateGoldenTest, Sharded) {
  StreamSpec spec;
  spec.n = 24000;
  spec.seed = 6;
  std::vector<Value> stream = GenerateStream(spec).values();

  ShardedQuantileSketch::Options options;
  options.num_shards = 3;
  options.seed = 13;
  ShardedQuantileSketch sketch =
      std::move(ShardedQuantileSketch::Create(options)).value();
  std::size_t pos = 0;
  int shard = 0;
  while (pos < stream.size()) {
    std::size_t chunk = std::min<std::size_t>(1000, stream.size() - pos);
    sketch.AddBatch(shard, std::span<const Value>(stream.data() + pos, chunk));
    pos += chunk;
    shard = (shard + 1) % options.num_shards;
  }
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (int s = 0; s < options.num_shards; ++s) {
    hash = Fnv1a(sketch.shard(s).Serialize(), hash);
  }
  hash = HashValues(sketch.QueryMany(Phis()).value(), hash);
  GOLDEN_EQ(hash, kShardedGolden);
}

// -------------------------------------------------------------- parallel

constexpr std::uint64_t kParallelGolden = 0xb9adc76d657a2512ull;

TEST(StateGoldenTest, ParallelCoordinator) {
  ParallelOptions options;
  options.eps = 0.03;
  options.delta = 1e-3;
  options.num_workers = 3;
  UnknownNParams params = SolveParallelWorker(options).value();

  // Single-threaded deterministic replay of the Section 6 protocol: the
  // coordinator's state depends only on the per-worker exports and their
  // ingest order, both fixed here.
  ParallelCoordinator coordinator(params, /*seed=*/11);
  for (int w = 0; w < options.num_workers; ++w) {
    StreamSpec spec;
    spec.n = 20000 + static_cast<std::size_t>(w) * 7321;
    spec.seed = 100 + static_cast<std::uint64_t>(w);
    std::vector<Value> stream = GenerateStream(spec).values();
    UnknownNOptions worker_options;
    worker_options.params = params;
    worker_options.seed = 1000 + static_cast<std::uint64_t>(w);
    UnknownNSketch worker =
        std::move(UnknownNSketch::Create(worker_options)).value();
    worker.AddBatch(stream);
    coordinator.Ingest(worker.FinishAndExport());
  }
  std::uint64_t hash = HashValues(coordinator.QueryMany(Phis()).value());
  const std::uint64_t received = coordinator.ReceivedWeight();
  hash = Fnv1a(reinterpret_cast<const std::uint8_t*>(&received),
               sizeof(received), hash);
  const std::uint64_t collapses = coordinator.tree_stats().num_collapses;
  hash = Fnv1a(reinterpret_cast<const std::uint8_t*>(&collapses),
               sizeof(collapses), hash);
  GOLDEN_EQ(hash, kParallelGolden);
}

// ----------------------------------------------- framework, every policy

std::uint64_t PolicyGolden(CollapsePolicyKind kind) {
  // Drive the bare framework through enough leaves that every policy
  // collapses many times, including promotions and uneven levels.
  CollapseFramework fw(/*num_buffers=*/5, /*buffer_capacity=*/16,
                       MakeCollapsePolicy(kind));
  std::uint64_t x = 88172645463325252ull;  // xorshift64, fixed seed
  for (int leaf = 0; leaf < 64; ++leaf) {
    std::size_t slot = fw.AcquireEmptySlot();
    fw.buffer(slot).StartFill();
    for (std::size_t i = 0; i < fw.buffer_capacity(); ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      fw.buffer(slot).Append(
          static_cast<Value>(x % 1000));  // duplicate-heavy
    }
    fw.CommitFull(slot, /*weight=*/1, /*level=*/0);
  }
  BinaryWriter writer;
  fw.SerializeTo(&writer);
  return Fnv1a(writer.Take());
}

constexpr std::uint64_t kMrlPolicyGolden = 0x0762fa809649afc1ull;
constexpr std::uint64_t kMunroPatersonPolicyGolden = 0x4d86e6b7678dc9ddull;
constexpr std::uint64_t kCollapseAllPolicyGolden = 0x07982ed0f3ebb6eaull;

TEST(StateGoldenTest, MrlPolicyFramework) {
  GOLDEN_EQ(PolicyGolden(CollapsePolicyKind::kMrl), kMrlPolicyGolden);
}

TEST(StateGoldenTest, MunroPatersonPolicyFramework) {
  GOLDEN_EQ(PolicyGolden(CollapsePolicyKind::kMunroPaterson),
            kMunroPatersonPolicyGolden);
}

TEST(StateGoldenTest, CollapseAllPolicyFramework) {
  GOLDEN_EQ(PolicyGolden(CollapsePolicyKind::kCollapseAll),
            kCollapseAllPolicyGolden);
}

}  // namespace
}  // namespace mrl
