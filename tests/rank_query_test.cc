#include <vector>

#include <gtest/gtest.h>

#include "app/selectivity.h"
#include "core/output.h"
#include "core/unknown_n.h"
#include "stream/generator.h"

namespace mrl {
namespace {

// ---------------------------------------------------------- WeightedRankOf

TEST(WeightedRankOfTest, CountsWeightedCopies) {
  std::vector<Value> a = {1, 3, 5};
  std::vector<Value> b = {2, 4};
  std::vector<WeightedRun> runs = {{a.data(), a.size(), 2},
                                   {b.data(), b.size(), 3}};
  // Expanded multiset: 1,1,2,2,2,3,3,4,4,4,5,5
  EXPECT_EQ(WeightedRankOf(runs, 0.5).value(), 0u);
  EXPECT_EQ(WeightedRankOf(runs, 1.0).value(), 2u);
  EXPECT_EQ(WeightedRankOf(runs, 2.5).value(), 5u);
  EXPECT_EQ(WeightedRankOf(runs, 4.0).value(), 10u);
  EXPECT_EQ(WeightedRankOf(runs, 100.0).value(), 12u);
}

TEST(WeightedRankOfTest, EmptyFails) {
  EXPECT_EQ(WeightedRankOf({}, 1.0).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(WeightedRankOfTest, DualOfQuantile) {
  // RankOf(Quantile(phi)) must be ~phi on the same runs.
  std::vector<Value> a;
  for (int i = 0; i < 100; ++i) a.push_back(i);
  std::vector<WeightedRun> runs = {{a.data(), a.size(), 4}};
  for (double phi : {0.1, 0.5, 0.9}) {
    Value q = WeightedQuantile(runs, phi).value();
    double rank = static_cast<double>(WeightedRankOf(runs, q).value()) /
                  static_cast<double>(TotalRunWeight(runs));
    EXPECT_NEAR(rank, phi, 0.011) << "phi " << phi;
  }
}

// ----------------------------------------------------- UnknownNSketch rank

TEST(SketchRankTest, MatchesTrueNormalizedRank) {
  StreamSpec spec;
  spec.n = 100'000;
  spec.seed = 3;
  Dataset ds = GenerateStream(spec);  // uniform on [0,1): rank(v) ~ v
  UnknownNOptions options;
  options.eps = 0.01;
  options.delta = 1e-4;
  options.seed = 5;
  UnknownNSketch sketch = std::move(UnknownNSketch::Create(options)).value();
  for (Value v : ds.values()) sketch.Add(v);
  for (double c : {0.05, 0.2, 0.5, 0.8, 0.95}) {
    double est = sketch.RankOf(c).value();
    auto iv = ds.RankOf(c);
    double truth = static_cast<double>(iv.hi) /
                   static_cast<double>(ds.size());
    EXPECT_NEAR(est, truth, options.eps) << "c=" << c;
  }
}

TEST(SketchRankTest, ExtremeCutoffs) {
  UnknownNOptions options;
  options.eps = 0.05;
  UnknownNSketch sketch = std::move(UnknownNSketch::Create(options)).value();
  for (int i = 1; i <= 100; ++i) sketch.Add(i);
  EXPECT_DOUBLE_EQ(sketch.RankOf(0.0).value(), 0.0);
  EXPECT_DOUBLE_EQ(sketch.RankOf(1000.0).value(), 1.0);
}

TEST(SketchRankTest, EmptySketchFails) {
  UnknownNOptions options;
  options.eps = 0.05;
  UnknownNSketch sketch = std::move(UnknownNSketch::Create(options)).value();
  EXPECT_EQ(sketch.RankOf(1.0).status().code(),
            StatusCode::kFailedPrecondition);
}

// ------------------------------------------------------------- Selectivity

TEST(SelectivityTest, PointAndRangePredicates) {
  StreamSpec spec;
  spec.n = 200'000;
  spec.seed = 7;
  spec.distribution = "gaussian";
  Dataset ds = GenerateStream(spec);
  SelectivityEstimator::Options options;
  options.eps = 0.005;
  options.delta = 1e-4;
  options.seed = 9;
  SelectivityEstimator est =
      std::move(SelectivityEstimator::Create(options)).value();
  for (Value v : ds.values()) est.Add(v);

  // True selectivities from the materialized column.
  auto truth_le = [&](Value c) {
    return static_cast<double>(ds.RankOf(c).hi) /
           static_cast<double>(ds.size());
  };
  for (Value c : {-2.0, -1.0, 0.0, 1.0, 2.0}) {
    EXPECT_NEAR(est.LessOrEqual(c).value(), truth_le(c), options.eps)
        << "c=" << c;
  }
  for (auto [lo, hi] : std::vector<std::pair<Value, Value>>{
           {-1.0, 1.0}, {0.0, 0.5}, {-3.0, 3.0}, {2.0, 2.1}}) {
    double truth = truth_le(hi) - truth_le(lo);
    EXPECT_NEAR(est.Range(lo, hi).value(), truth, 2 * options.eps)
        << "range (" << lo << ", " << hi << "]";
  }
}

TEST(SelectivityTest, DegenerateAndInvalidRanges) {
  SelectivityEstimator::Options options;
  options.eps = 0.05;
  SelectivityEstimator est =
      std::move(SelectivityEstimator::Create(options)).value();
  for (int i = 0; i < 1000; ++i) est.Add(i);
  EXPECT_EQ(est.Range(5.0, 1.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_DOUBLE_EQ(est.Range(3.0, 3.0).value(), 0.0);
  EXPECT_GE(est.Range(-1.0, 2000.0).value(), 0.99);
}

TEST(SelectivityTest, StaysValidAsTableGrows) {
  // The unknown-N property applied to the optimizer use case: estimates are
  // valid at every table size without rebuilds.
  SelectivityEstimator::Options options;
  options.eps = 0.02;
  options.seed = 11;
  SelectivityEstimator est =
      std::move(SelectivityEstimator::Create(options)).value();
  StreamSpec spec;
  spec.n = 60'000;
  spec.seed = 13;
  Dataset ds = GenerateStream(spec);
  std::vector<Value> prefix;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    est.Add(ds.values()[i]);
    prefix.push_back(ds.values()[i]);
    if ((i + 1) % 20'000 == 0) {
      Dataset prefix_ds(prefix);
      double truth = static_cast<double>(prefix_ds.RankOf(0.3).hi) /
                     static_cast<double>(prefix_ds.size());
      EXPECT_NEAR(est.LessOrEqual(0.3).value(), truth, options.eps)
          << "at " << (i + 1) << " rows";
    }
  }
}

}  // namespace
}  // namespace mrl
