#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "sampling/bernoulli_sampler.h"
#include "sampling/block_sampler.h"
#include "sampling/reservoir.h"
#include "util/random.h"

namespace mrl {
namespace {

// -------------------------------------------------------------- Reservoir

class ReservoirMethodTest
    : public ::testing::TestWithParam<ReservoirSampler::Method> {};

TEST_P(ReservoirMethodTest, SampleSizeNeverExceedsCapacity) {
  ReservoirSampler sampler(10, Random(1), GetParam());
  for (int i = 0; i < 1000; ++i) {
    sampler.Add(i);
    EXPECT_EQ(sampler.sample().size(),
              std::min<std::size_t>(10, static_cast<std::size_t>(i + 1)));
  }
  EXPECT_EQ(sampler.count(), 1000u);
}

TEST_P(ReservoirMethodTest, ShortStreamKeepsEverything) {
  ReservoirSampler sampler(100, Random(2), GetParam());
  for (int i = 0; i < 5; ++i) sampler.Add(i);
  std::vector<Value> s = sampler.sample();
  std::sort(s.begin(), s.end());
  EXPECT_EQ(s, (std::vector<Value>{0, 1, 2, 3, 4}));
}

TEST_P(ReservoirMethodTest, InclusionIsUniform) {
  // Stream 0..199, capacity 20: every element should appear with
  // probability 0.1. Average indicator over 300 trials; tolerance ~6 sigma.
  constexpr int kStream = 200;
  constexpr int kCap = 20;
  constexpr int kTrials = 300;
  std::vector<int> hits(kStream, 0);
  for (int t = 0; t < kTrials; ++t) {
    ReservoirSampler sampler(kCap, Random(1000 + t), GetParam());
    for (int i = 0; i < kStream; ++i) sampler.Add(i);
    for (Value v : sampler.sample()) ++hits[static_cast<int>(v)];
  }
  const double p = static_cast<double>(kCap) / kStream;
  const double sigma = std::sqrt(p * (1 - p) * kTrials);
  for (int i = 0; i < kStream; ++i) {
    EXPECT_NEAR(hits[i], p * kTrials, 6 * sigma) << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Methods, ReservoirMethodTest,
    ::testing::Values(ReservoirSampler::Method::kAlgorithmR,
                      ReservoirSampler::Method::kAlgorithmX),
    [](const ::testing::TestParamInfo<ReservoirSampler::Method>& info) {
      return info.param == ReservoirSampler::Method::kAlgorithmR
                 ? "AlgorithmR"
                 : "AlgorithmX";
    });

// ----------------------------------------------------------- BlockSampler

TEST(BlockSamplerTest, RateOneEmitsEverythingInOrder) {
  BlockSampler sampler(Random(1), 1);
  for (int i = 0; i < 100; ++i) {
    auto out = sampler.Add(i);
    ASSERT_TRUE(out.has_value());
    EXPECT_DOUBLE_EQ(*out, i);
    EXPECT_TRUE(sampler.at_block_boundary());
  }
}

TEST(BlockSamplerTest, EmitsExactlyOncePerBlock) {
  constexpr Weight kRate = 8;
  BlockSampler sampler(Random(2), kRate);
  int emitted = 0;
  for (int i = 0; i < 800; ++i) {
    auto out = sampler.Add(i);
    if (out.has_value()) {
      ++emitted;
      // The pick must come from the block just finished.
      int block = i / static_cast<int>(kRate);
      EXPECT_GE(*out, block * static_cast<int>(kRate));
      EXPECT_LE(*out, i);
      EXPECT_TRUE(sampler.at_block_boundary());
    }
  }
  EXPECT_EQ(emitted, 100);
}

TEST(BlockSamplerTest, PickIsUniformWithinBlock) {
  constexpr Weight kRate = 4;
  constexpr int kTrials = 4000;
  int position_counts[kRate] = {};
  BlockSampler sampler(Random(3), kRate);
  for (int t = 0; t < kTrials; ++t) {
    for (int j = 0; j < static_cast<int>(kRate); ++j) {
      auto out = sampler.Add(j);
      if (out.has_value()) ++position_counts[static_cast<int>(*out)];
    }
  }
  for (Weight j = 0; j < kRate; ++j) {
    EXPECT_NEAR(position_counts[j], kTrials / static_cast<int>(kRate), 180)
        << "position " << j;
  }
}

TEST(BlockSamplerTest, PendingCandidateTracksOpenBlock) {
  BlockSampler sampler(Random(4), 4);
  EXPECT_EQ(sampler.pending_count(), 0u);
  sampler.Add(10);
  EXPECT_EQ(sampler.pending_count(), 1u);
  EXPECT_DOUBLE_EQ(sampler.pending_candidate(), 10.0);
  sampler.Add(20);
  EXPECT_EQ(sampler.pending_count(), 2u);
  Value c = sampler.pending_candidate();
  EXPECT_TRUE(c == 10.0 || c == 20.0);
}

TEST(BlockSamplerTest, SetRateAtBoundary) {
  BlockSampler sampler(Random(5), 2);
  sampler.Add(1);
  sampler.Add(2);  // block closes
  ASSERT_TRUE(sampler.at_block_boundary());
  sampler.SetRate(4);
  EXPECT_EQ(sampler.rate(), 4u);
  int emitted = 0;
  for (int i = 0; i < 4; ++i) {
    if (sampler.Add(i).has_value()) ++emitted;
  }
  EXPECT_EQ(emitted, 1);
}

TEST(BlockSamplerDeathTest, SetRateMidBlockAborts) {
  BlockSampler sampler(Random(6), 4);
  sampler.Add(1);
  EXPECT_DEATH(sampler.SetRate(8), "rate change mid-block");
}

// ------------------------------------------------------- BernoulliSampler

TEST(BernoulliSamplerTest, KeepsFractionNearP) {
  BernoulliSampler sampler(Random(7), 0.25);
  for (int i = 0; i < 20000; ++i) sampler.Sample();
  EXPECT_EQ(sampler.seen(), 20000u);
  EXPECT_NEAR(static_cast<double>(sampler.kept()) / 20000.0, 0.25, 0.015);
}

TEST(BernoulliSamplerTest, ProbabilityOneKeepsAll) {
  BernoulliSampler sampler(Random(8), 1.0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(sampler.Sample());
}

TEST(BernoulliSamplerTest, HalveReducesRate) {
  BernoulliSampler sampler(Random(9), 0.8);
  sampler.Halve();
  EXPECT_DOUBLE_EQ(sampler.probability(), 0.4);
  sampler.Halve();
  EXPECT_DOUBLE_EQ(sampler.probability(), 0.2);
}

}  // namespace
}  // namespace mrl
