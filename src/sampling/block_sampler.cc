#include "sampling/block_sampler.h"

#include "util/logging.h"

namespace mrl {

BlockSampler::BlockSampler(Random rng, Weight rate, PickPolicy pick)
    : rng_(rng), rate_(rate), pick_(pick) {
  MRL_CHECK_GE(rate, 1u);
}

std::optional<Value> BlockSampler::Add(Value v) {
  if (seen_in_block_ == 0) {
    pick_offset_ = DrawPickOffset();
    candidate_ = v;  // provisional until the pick position streams by
  }
  if (seen_in_block_ == pick_offset_) {
    candidate_ = v;
  }
  ++seen_in_block_;
  if (seen_in_block_ == rate_) {
    seen_in_block_ = 0;
    return candidate_;
  }
  return std::nullopt;
}

void BlockSampler::AddBatch(const Value* data, std::size_t n,
                            std::vector<Value>& out) {
  if (rate_ == 1) {
    // No sampling: every element survives; bulk-copy the whole span. The
    // trailing state assignments keep SaveState() bit-identical to the
    // element-wise path (which leaves the last element as candidate).
    out.insert(out.end(), data, data + n);
    if (n > 0) {
      pick_offset_ = 0;
      candidate_ = data[n - 1];
    }
    return;
  }
  std::size_t i = 0;
  while (i < n) {
    if (seen_in_block_ == 0) {
      pick_offset_ = DrawPickOffset();
      candidate_ = data[i];
    }
    const Weight remaining = rate_ - seen_in_block_;
    const std::size_t available = n - i;
    if (remaining <= available) {
      // The open block completes within the span: resolve its pick with a
      // single indexed load and skip the rest of the block.
      if (pick_offset_ >= seen_in_block_) {
        candidate_ = data[i + static_cast<std::size_t>(pick_offset_ -
                                                       seen_in_block_)];
      }
      out.push_back(candidate_);
      i += static_cast<std::size_t>(remaining);
      seen_in_block_ = 0;
    } else {
      // The span ends mid-block: keep the candidate current if the pick
      // position falls inside this span, then record the partial progress.
      if (pick_offset_ >= seen_in_block_ &&
          pick_offset_ - seen_in_block_ < available) {
        candidate_ = data[i + static_cast<std::size_t>(pick_offset_ -
                                                       seen_in_block_)];
      }
      seen_in_block_ += available;
      i = n;
    }
  }
}

void BlockSampler::SetRate(Weight rate) {
  MRL_CHECK_GE(rate, 1u);
  MRL_CHECK_EQ(seen_in_block_, 0u) << "rate change mid-block";
  rate_ = rate;
}

}  // namespace mrl
