#include "sampling/block_sampler.h"

#include "util/logging.h"

namespace mrl {

BlockSampler::BlockSampler(Random rng, Weight rate, PickPolicy pick)
    : rng_(rng), rate_(rate), pick_(pick) {
  MRL_CHECK_GE(rate, 1u);
}

std::optional<Value> BlockSampler::Add(Value v) {
  ++seen_in_block_;
  if (seen_in_block_ == 1) {
    candidate_ = v;
  } else if (pick_ == PickPolicy::kUniformWithinBlock) {
    // Reservoir of size one within the block: the j-th element of the block
    // replaces the candidate with probability 1/j, which leaves every
    // element equally likely once the block completes.
    if (rng_.UniformUint64(seen_in_block_) == 0) {
      candidate_ = v;
    }
  }  // kFirstOfBlock: keep the first element (ablation only).
  if (seen_in_block_ == rate_) {
    seen_in_block_ = 0;
    return candidate_;
  }
  return std::nullopt;
}

void BlockSampler::SetRate(Weight rate) {
  MRL_CHECK_GE(rate, 1u);
  MRL_CHECK_EQ(seen_in_block_, 0u) << "rate change mid-block";
  rate_ = rate;
}

}  // namespace mrl
