#include "sampling/reservoir.h"

#include "util/logging.h"

namespace mrl {

ReservoirSampler::ReservoirSampler(std::size_t capacity, Random rng,
                                   Method method)
    : capacity_(capacity), rng_(rng), method_(method) {
  MRL_CHECK_GE(capacity, 1u);
  sample_.reserve(capacity);
}

void ReservoirSampler::Add(Value v) {
  if (method_ == Method::kAlgorithmR) {
    AddAlgorithmR(v);
  } else {
    AddAlgorithmX(v);
  }
}

void ReservoirSampler::AddAlgorithmR(Value v) {
  ++count_;
  if (sample_.size() < capacity_) {
    sample_.push_back(v);
    return;
  }
  // Keep the t-th element with probability capacity / t.
  std::uint64_t j = rng_.UniformUint64(count_);
  if (j < capacity_) {
    sample_[static_cast<std::size_t>(j)] = v;
  }
}

void ReservoirSampler::DrawSkip() {
  // Vitter's Algorithm X: inverse-transform sampling of the skip length by
  // sequential search. After this call, skip_ elements are passed over and
  // the one after them replaces a random slot.
  double v = rng_.UniformDouble();
  std::uint64_t s = 0;
  double t = static_cast<double>(count_);
  double n = static_cast<double>(capacity_);
  double quot = (t + 1.0 - n) / (t + 1.0);
  while (quot > v) {
    ++s;
    t += 1.0;
    quot *= (t + 1.0 - n) / (t + 1.0);
  }
  skip_ = s;
}

void ReservoirSampler::AddAlgorithmX(Value v) {
  if (sample_.size() < capacity_) {
    sample_.push_back(v);
    ++count_;
    if (sample_.size() == capacity_) DrawSkip();
    return;
  }
  if (skip_ > 0) {
    --skip_;
    ++count_;
    return;
  }
  std::uint64_t j = rng_.UniformUint64(capacity_);
  sample_[static_cast<std::size_t>(j)] = v;
  ++count_;
  DrawSkip();
}

}  // namespace mrl
