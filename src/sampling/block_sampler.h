#ifndef MRLQUANT_SAMPLING_BLOCK_SAMPLER_H_
#define MRLQUANT_SAMPLING_BLOCK_SAMPLER_H_

#include <cstdint>
#include <optional>

#include "util/random.h"
#include "util/types.h"

namespace mrl {

/// The sampling primitive inside the paper's `New` operation (Section 3.1):
/// from each block of `rate` consecutive stream elements, retain exactly one
/// chosen uniformly at random. Sampling is therefore without replacement
/// across blocks, which the paper notes is what makes the scheme easy to
/// implement. rate == 1 means no sampling (every element is emitted).
///
/// The rate may be changed, but only at a block boundary (the unknown-N
/// algorithm doubles it when the collapse tree grows); changing it
/// mid-block would bias the in-flight pick.
class BlockSampler {
 public:
  /// How the representative of a block is chosen. kUniformWithinBlock is
  /// the paper's randomized pick (required for the Hoeffding analysis);
  /// kFirstOfBlock is deterministic systematic sampling, provided ONLY for
  /// the ablation bench that demonstrates why the randomness matters (it
  /// is biased on periodic/adversarial arrival orders).
  enum class PickPolicy { kUniformWithinBlock, kFirstOfBlock };

  explicit BlockSampler(Random rng, Weight rate = 1,
                        PickPolicy pick = PickPolicy::kUniformWithinBlock);

  /// Feeds one element. Returns the block's pick when this element closes a
  /// block, std::nullopt otherwise.
  std::optional<Value> Add(Value v);

  /// Current sampling rate r (block size).
  Weight rate() const { return rate_; }

  /// Elements consumed by the currently open block (0 when at a boundary).
  Weight pending_count() const { return seen_in_block_; }

  /// The uniformly-chosen candidate of the open block; meaningful only when
  /// pending_count() > 0. Together with pending_count() this lets a caller
  /// account for a partially consumed block at query time: the candidate is
  /// a uniform pick from the pending_count() elements seen so far.
  Value pending_candidate() const { return candidate_; }

  /// True iff no block is in flight.
  bool at_block_boundary() const { return seen_in_block_ == 0; }

  /// Sets a new rate. Must be called at a block boundary; rate >= 1.
  void SetRate(Weight rate);

  /// Checkpointing support: full sampler state, including the in-flight
  /// block.
  struct State {
    Random::State rng;
    Weight rate;
    Weight seen_in_block;
    Value candidate;
  };
  State SaveState() const {
    return {rng_.SaveState(), rate_, seen_in_block_, candidate_};
  }
  static BlockSampler FromState(const State& s) {
    BlockSampler b(Random::FromState(s.rng), s.rate);
    b.seen_in_block_ = s.seen_in_block;
    b.candidate_ = s.candidate;
    return b;
  }

 private:
  Random rng_;
  Weight rate_;
  PickPolicy pick_;
  Weight seen_in_block_ = 0;
  Value candidate_ = Value{};
};

}  // namespace mrl

#endif  // MRLQUANT_SAMPLING_BLOCK_SAMPLER_H_
