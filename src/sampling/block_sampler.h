#ifndef MRLQUANT_SAMPLING_BLOCK_SAMPLER_H_
#define MRLQUANT_SAMPLING_BLOCK_SAMPLER_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "util/random.h"
#include "util/types.h"

namespace mrl {

/// The sampling primitive inside the paper's `New` operation (Section 3.1):
/// from each block of `rate` consecutive stream elements, retain exactly one
/// chosen uniformly at random. Sampling is therefore without replacement
/// across blocks, which the paper notes is what makes the scheme easy to
/// implement. rate == 1 means no sampling (every element is emitted).
///
/// Randomness schedule: the pick's offset within the block is drawn ONCE,
/// when the block's first element arrives (one UniformUint64(rate) draw per
/// block; none at rate 1). Because the draw position depends only on the
/// stream position — never on how arrivals are chunked — Add and AddBatch
/// produce bit-identical sampler state and output for any partition of the
/// stream into batches, and AddBatch can skip the interior of a block with
/// arithmetic instead of per-element work.
///
/// The rate may be changed, but only at a block boundary (the unknown-N
/// algorithm doubles it when the collapse tree grows); changing it
/// mid-block would bias the in-flight pick.
class BlockSampler {
 public:
  /// How the representative of a block is chosen. kUniformWithinBlock is
  /// the paper's randomized pick (required for the Hoeffding analysis);
  /// kFirstOfBlock is deterministic systematic sampling, provided ONLY for
  /// the ablation bench that demonstrates why the randomness matters (it
  /// is biased on periodic/adversarial arrival orders).
  enum class PickPolicy { kUniformWithinBlock, kFirstOfBlock };

  explicit BlockSampler(Random rng, Weight rate = 1,
                        PickPolicy pick = PickPolicy::kUniformWithinBlock);

  /// Feeds one element. Returns the block's pick when this element closes a
  /// block, std::nullopt otherwise.
  std::optional<Value> Add(Value v);

  /// Feeds `n` elements at once, appending one survivor per completed block
  /// to `out` (in stream order). Bit-identical to calling Add(data[i]) for
  /// each element in turn: same survivors, same final state, same RNG
  /// consumption. Whole blocks are advanced with one index computation and
  /// one load instead of `rate` per-element steps, so the cost is
  /// O(n / rate + #blocks) rather than O(n).
  void AddBatch(const Value* data, std::size_t n, std::vector<Value>& out);

  /// Current sampling rate r (block size).
  Weight rate() const { return rate_; }

  /// Elements consumed by the currently open block (0 when at a boundary).
  Weight pending_count() const { return seen_in_block_; }

  /// Anytime view of the open block; meaningful only when
  /// pending_count() > 0. Once the pre-drawn pick position has streamed by
  /// this is the block's final pick (conditionally uniform over the
  /// elements seen so far); before that it is the block's first element — a
  /// deterministic stand-in whose rank error contribution is bounded by the
  /// open block's pending_count() out of n. Together with pending_count()
  /// this lets a caller account for a partially consumed block at query
  /// time.
  Value pending_candidate() const { return candidate_; }

  /// True iff no block is in flight.
  bool at_block_boundary() const { return seen_in_block_ == 0; }

  /// Sets a new rate. Must be called at a block boundary; rate >= 1.
  void SetRate(Weight rate);

  /// Checkpointing support: full sampler state, including the in-flight
  /// block and its pre-drawn pick offset.
  struct State {
    Random::State rng;
    Weight rate;
    Weight seen_in_block;
    Weight pick_offset;
    Value candidate;
  };
  State SaveState() const {
    return {rng_.SaveState(), rate_, seen_in_block_, pick_offset_,
            candidate_};
  }
  static BlockSampler FromState(const State& s) {
    BlockSampler b(Random::FromState(s.rng), s.rate);
    b.seen_in_block_ = s.seen_in_block;
    b.pick_offset_ = s.pick_offset;
    b.candidate_ = s.candidate;
    return b;
  }

 private:
  /// Draws the open block's pick offset in [0, rate). Called exactly when a
  /// block's first element arrives; rate 1 and the first-of-block ablation
  /// consume no randomness.
  Weight DrawPickOffset() {
    if (rate_ > 1 && pick_ == PickPolicy::kUniformWithinBlock) {
      return rng_.UniformUint64(rate_);
    }
    return 0;
  }

  Random rng_;
  Weight rate_;
  PickPolicy pick_;
  Weight seen_in_block_ = 0;
  Weight pick_offset_ = 0;
  Value candidate_ = Value{};
};

}  // namespace mrl

#endif  // MRLQUANT_SAMPLING_BLOCK_SAMPLER_H_
