#ifndef MRLQUANT_SAMPLING_RESERVOIR_H_
#define MRLQUANT_SAMPLING_RESERVOIR_H_

#include <cstdint>
#include <vector>

#include "util/random.h"
#include "util/types.h"

namespace mrl {

/// Classic reservoir sampling (Vitter 1985): maintains a uniform sample of
/// fixed size without advance knowledge of the stream length. This is the
/// paper's Section 2.2 baseline; its O(eps^-2 log delta^-1) space is what
/// the MRL99 non-uniform scheme improves upon.
///
/// Two replacement strategies are provided:
///  * kAlgorithmR — one random draw per element (the textbook method).
///  * kAlgorithmX — Vitter's skip-based variant; draws one random skip
///    length per *accepted* element, so long streams cost far fewer random
///    numbers.
class ReservoirSampler {
 public:
  enum class Method { kAlgorithmR, kAlgorithmX };

  /// `capacity` must be >= 1.
  ReservoirSampler(std::size_t capacity, Random rng,
                   Method method = Method::kAlgorithmR);

  /// Offers the next stream element.
  void Add(Value v);

  /// Elements seen so far.
  std::uint64_t count() const { return count_; }

  std::size_t capacity() const { return capacity_; }

  /// Current sample; uniform over all elements seen so far. Size is
  /// min(count, capacity).
  const std::vector<Value>& sample() const { return sample_; }

  /// Returns the sampler to its freshly constructed state with a new
  /// generator, reusing the sample storage.
  void Reset(Random rng) {
    rng_ = rng;
    sample_.clear();
    count_ = 0;
    skip_ = 0;
  }

 private:
  void AddAlgorithmR(Value v);
  void AddAlgorithmX(Value v);
  void DrawSkip();

  std::size_t capacity_;
  Random rng_;
  Method method_;
  std::vector<Value> sample_;
  std::uint64_t count_ = 0;
  std::uint64_t skip_ = 0;  // Algorithm X: elements to pass over
};

}  // namespace mrl

#endif  // MRLQUANT_SAMPLING_RESERVOIR_H_
