#ifndef MRLQUANT_SAMPLING_BERNOULLI_SAMPLER_H_
#define MRLQUANT_SAMPLING_BERNOULLI_SAMPLER_H_

#include <cstdint>

#include "util/logging.h"
#include "util/random.h"
#include "util/types.h"

namespace mrl {

/// Independent per-element sampling with probability p — the sampling model
/// under which Section 7's Stein-lemma analysis is carried out ("a random
/// sample with replacement ... not much different from a sample without
/// replacement if the sample size is small with respect to N").
class BernoulliSampler {
 public:
  BernoulliSampler(Random rng, double p) : rng_(rng), p_(p) {
    MRL_CHECK(p > 0.0 && p <= 1.0) << "p=" << p;
  }

  /// True iff the element should enter the sample.
  bool Sample() {
    ++seen_;
    if (rng_.Bernoulli(p_)) {
      ++kept_;
      return true;
    }
    return false;
  }

  double probability() const { return p_; }

  /// Halves the inclusion probability (used by the adaptive extreme-value
  /// sketch when the stream outgrows its assumed length).
  void Halve() { p_ *= 0.5; }

  std::uint64_t seen() const { return seen_; }
  std::uint64_t kept() const { return kept_; }

  /// Checkpointing support.
  struct State {
    Random::State rng;
    double p;
    std::uint64_t seen;
    std::uint64_t kept;
  };
  State SaveState() const { return {rng_.SaveState(), p_, seen_, kept_}; }
  static BernoulliSampler FromState(const State& s) {
    BernoulliSampler b(Random::FromState(s.rng), s.p);
    b.seen_ = s.seen;
    b.kept_ = s.kept;
    return b;
  }

 private:
  Random rng_;
  double p_;
  std::uint64_t seen_ = 0;
  std::uint64_t kept_ = 0;
};

}  // namespace mrl

#endif  // MRLQUANT_SAMPLING_BERNOULLI_SAMPLER_H_
