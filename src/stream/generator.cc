#include "stream/generator.h"

#include <memory>
#include <vector>

#include "stream/distribution.h"
#include "util/logging.h"
#include "util/random.h"

namespace mrl {

Dataset GenerateStream(const StreamSpec& spec) {
  std::unique_ptr<Distribution> dist = MakeDistribution(spec.distribution);
  MRL_CHECK(dist != nullptr) << "unknown distribution: " << spec.distribution;
  Random rng(spec.seed);
  std::vector<Value> values;
  values.reserve(spec.n);
  for (std::size_t i = 0; i < spec.n; ++i) {
    values.push_back(dist->Draw(&rng));
  }
  ApplyArrivalOrder(spec.order, &rng, &values);
  return Dataset(std::move(values));
}

GeneratedStreamReader::GeneratedStreamReader(const StreamSpec& spec)
    : n_(spec.n), rng_(spec.seed) {
  if (spec.order == ArrivalOrder::kAsDrawn) {
    dist_ = MakeDistribution(spec.distribution);
    MRL_CHECK(dist_ != nullptr)
        << "unknown distribution: " << spec.distribution;
  } else {
    materialized_ = GenerateStream(spec).values();
  }
}

std::size_t GeneratedStreamReader::ReadBatch(Value* out, std::size_t max) {
  std::size_t produced = 0;
  if (dist_ != nullptr) {
    while (produced < max && position_ < n_) {
      out[produced++] = dist_->Draw(&rng_);
      ++position_;
    }
  } else {
    while (produced < max && position_ < n_) {
      out[produced++] = materialized_[static_cast<std::size_t>(position_)];
      ++position_;
    }
  }
  return produced;
}

}  // namespace mrl
