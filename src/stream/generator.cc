#include "stream/generator.h"

#include <memory>
#include <vector>

#include "stream/distribution.h"
#include "util/logging.h"
#include "util/random.h"

namespace mrl {

Dataset GenerateStream(const StreamSpec& spec) {
  std::unique_ptr<Distribution> dist = MakeDistribution(spec.distribution);
  MRL_CHECK(dist != nullptr) << "unknown distribution: " << spec.distribution;
  Random rng(spec.seed);
  std::vector<Value> values;
  values.reserve(spec.n);
  for (std::size_t i = 0; i < spec.n; ++i) {
    values.push_back(dist->Draw(&rng));
  }
  ApplyArrivalOrder(spec.order, &rng, &values);
  return Dataset(std::move(values));
}

}  // namespace mrl
