#include "stream/text_stream.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace mrl {

Status WriteValuesTextFile(const std::string& path,
                           const std::vector<Value>& values) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::NotFound("cannot open for write: " + path + ": " +
                            std::strerror(errno));
  }
  bool ok = true;
  for (Value v : values) {
    if (std::fprintf(f, "%.17g\n", v) < 0) {
      ok = false;
      break;
    }
  }
  if (std::fclose(f) != 0) ok = false;
  if (!ok) return Status::Internal("write failed for " + path);
  return Status::OK();
}

TextValueReader::~TextValueReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Status TextValueReader::Open(const std::string& path) {
  if (file_ != nullptr) {
    return Status::FailedPrecondition("reader already open");
  }
  file_ = std::fopen(path.c_str(), "r");
  if (file_ == nullptr) {
    return Status::NotFound("cannot open: " + path + ": " +
                            std::strerror(errno));
  }
  return Status::OK();
}

bool TextValueReader::Next(Value* out) {
  if (!status_.ok() || file_ == nullptr) return false;
  char buf[256];
  while (std::fgets(buf, sizeof(buf), file_) != nullptr) {
    ++line_;
    // Trim leading whitespace; skip blanks and comments.
    char* p = buf;
    while (*p == ' ' || *p == '\t') ++p;
    if (*p == '\0' || *p == '\n' || *p == '\r' || *p == '#') continue;
    char* end = nullptr;
    errno = 0;
    double v = std::strtod(p, &end);
    // ERANGE covers both overflow (reject) and gradual underflow to a
    // denormal or zero (accept: the nearest representable value is fine).
    const bool overflow =
        errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL);
    if (end == p || overflow) {
      status_ = Status::InvalidArgument(
          "malformed value at line " + std::to_string(line_));
      return false;
    }
    // Only whitespace may follow the number.
    while (*end == ' ' || *end == '\t' || *end == '\n' || *end == '\r') {
      ++end;
    }
    if (*end != '\0') {
      status_ = Status::InvalidArgument(
          "trailing garbage at line " + std::to_string(line_));
      return false;
    }
    *out = v;
    return true;
  }
  if (std::ferror(file_)) {
    status_ = Status::Internal("read error");
  }
  return false;
}

std::size_t TextValueReader::ReadBatch(Value* out, std::size_t max) {
  std::size_t produced = 0;
  while (produced < max && Next(&out[produced])) ++produced;
  return produced;
}

}  // namespace mrl
