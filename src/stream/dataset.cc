#include "stream/dataset.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/sort.h"

namespace mrl {

Dataset::Dataset(std::vector<Value> values) : values_(std::move(values)) {}

void Dataset::EnsureSorted() const {
  if (sorted_.size() != values_.size()) {
    sorted_ = values_;
    SortValues(sorted_.data(), sorted_.size());
  }
}

Value Dataset::ExactQuantile(double phi) const {
  MRL_CHECK(!values_.empty());
  MRL_CHECK(phi > 0.0 && phi <= 1.0) << "phi=" << phi;
  EnsureSorted();
  std::size_t n = sorted_.size();
  std::size_t pos = static_cast<std::size_t>(
      std::ceil(phi * static_cast<double>(n)));
  if (pos < 1) pos = 1;
  if (pos > n) pos = n;
  return sorted_[pos - 1];
}

Dataset::RankInterval Dataset::RankOf(Value v) const {
  EnsureSorted();
  auto lo_it = std::lower_bound(sorted_.begin(), sorted_.end(), v);
  auto hi_it = std::upper_bound(sorted_.begin(), sorted_.end(), v);
  std::size_t lo = static_cast<std::size_t>(lo_it - sorted_.begin()) + 1;
  std::size_t hi = static_cast<std::size_t>(hi_it - sorted_.begin());
  return {lo, hi};
}

double Dataset::QuantileError(Value v, double phi) const {
  MRL_CHECK(!values_.empty());
  RankInterval iv = RankOf(v);
  double n = static_cast<double>(values_.size());
  double target = phi * n;
  double lo = static_cast<double>(iv.lo);
  double hi = static_cast<double>(iv.hi);
  if (hi < lo) {
    // Absent value: it splits the data at insertion rank iv.lo - 0.5;
    // attainable "rank" is that single point.
    lo = hi = static_cast<double>(iv.lo) - 0.5;
  }
  if (target < lo) return (lo - target) / n;
  if (target > hi) return (target - hi) / n;
  return 0.0;
}

Value Dataset::Min() const {
  MRL_CHECK(!values_.empty());
  EnsureSorted();
  return sorted_.front();
}

Value Dataset::Max() const {
  MRL_CHECK(!values_.empty());
  EnsureSorted();
  return sorted_.back();
}

}  // namespace mrl
