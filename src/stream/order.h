#ifndef MRLQUANT_STREAM_ORDER_H_
#define MRLQUANT_STREAM_ORDER_H_

#include <string>
#include <vector>

#include "util/random.h"
#include "util/types.h"

namespace mrl {

/// Arrival-order transforms. Section 1.3 requires correctness to be
/// independent of the arrival distribution; the test and benchmark sweeps
/// exercise each of these orders.
enum class ArrivalOrder {
  kAsDrawn,       ///< Values in the order the distribution produced them.
  kShuffled,      ///< Uniform random permutation.
  kSortedAsc,     ///< Fully sorted ascending (adversarial for many sketches).
  kSortedDesc,    ///< Fully sorted descending.
  kSawtooth,      ///< Sorted runs of a fixed period, repeated.
  kAlternating,   ///< Alternates smallest-remaining / largest-remaining.
  kBlockShuffled, ///< Sorted, then fixed-size blocks permuted.
};

/// All orders, for parameterized sweeps.
const std::vector<ArrivalOrder>& AllArrivalOrders();

/// Stable display name ("shuffled", "sorted_asc", ...).
std::string ArrivalOrderName(ArrivalOrder order);

/// Rearranges `values` in place according to `order`, drawing any needed
/// randomness from `rng`.
void ApplyArrivalOrder(ArrivalOrder order, Random* rng,
                       std::vector<Value>* values);

}  // namespace mrl

#endif  // MRLQUANT_STREAM_ORDER_H_
