#include "stream/file_stream.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace mrl {

namespace {
constexpr std::size_t kBufferValues = 1 << 16;  // 512 KiB of doubles
}  // namespace

Status WriteValuesFile(const std::string& path,
                       const std::vector<Value>& values) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::NotFound("cannot open for write: " + path + ": " +
                            std::strerror(errno));
  }
  std::size_t written =
      values.empty()
          ? 0
          : std::fwrite(values.data(), sizeof(Value), values.size(), f);
  int close_rc = std::fclose(f);
  if (written != values.size() || close_rc != 0) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

FileValueReader::~FileValueReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileValueReader::Open(const std::string& path) {
  if (file_ != nullptr) {
    return Status::FailedPrecondition("reader already open");
  }
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    return Status::NotFound("cannot open: " + path + ": " +
                            std::strerror(errno));
  }
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    return Status::Internal("seek failed on " + path);
  }
  long bytes = std::ftell(file_);
  if (bytes < 0) {
    return Status::Internal("ftell failed on " + path);
  }
  if (static_cast<std::size_t>(bytes) % sizeof(Value) != 0) {
    return Status::InvalidArgument(path + " size is not a multiple of " +
                                   std::to_string(sizeof(Value)));
  }
  size_ = static_cast<std::uint64_t>(bytes) / sizeof(Value);
  std::rewind(file_);
  buffer_.reserve(kBufferValues);
  return Status::OK();
}

Status FileValueReader::FillBuffer() {
  buffer_.resize(kBufferValues);
  std::size_t got = std::fread(buffer_.data(), sizeof(Value), kBufferValues,
                               file_);
  buffer_.resize(got);
  buffer_pos_ = 0;
  if (got < kBufferValues) {
    if (std::ferror(file_)) {
      return Status::Internal("read error");
    }
    eof_ = true;
  }
  return Status::OK();
}

bool FileValueReader::Next(Value* out) {
  if (!status_.ok() || file_ == nullptr) return false;
  if (buffer_pos_ == buffer_.size()) {
    if (eof_) return false;
    status_ = FillBuffer();
    if (!status_.ok() || buffer_.empty()) return false;
  }
  *out = buffer_[buffer_pos_++];
  return true;
}

std::size_t FileValueReader::ReadBatch(Value* out, std::size_t max) {
  std::size_t produced = 0;
  while (produced < max) {
    if (!status_.ok() || file_ == nullptr) break;
    if (buffer_pos_ == buffer_.size()) {
      if (eof_) break;
      status_ = FillBuffer();
      if (!status_.ok() || buffer_.empty()) break;
    }
    const std::size_t run =
        std::min(max - produced, buffer_.size() - buffer_pos_);
    std::copy(buffer_.begin() + static_cast<std::ptrdiff_t>(buffer_pos_),
              buffer_.begin() + static_cast<std::ptrdiff_t>(buffer_pos_ + run),
              out + produced);
    buffer_pos_ += run;
    produced += run;
  }
  return produced;
}

}  // namespace mrl
