#ifndef MRLQUANT_STREAM_TEXT_STREAM_H_
#define MRLQUANT_STREAM_TEXT_STREAM_H_

#include <cstdio>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/types.h"

namespace mrl {

/// Writes one value per line in plain decimal text — the interchange
/// format the command-line tool and ad-hoc scripts use.
Status WriteValuesTextFile(const std::string& path,
                           const std::vector<Value>& values);

/// Buffered single-pass reader over a text file of one value per line.
/// Blank lines and lines starting with '#' are skipped. A malformed line
/// stops the stream with an InvalidArgument status naming the line number.
///
///   TextValueReader reader;
///   MRL_RETURN_IF_ERROR(reader.Open(path));
///   Value v;
///   while (reader.Next(&v)) sketch.Add(v);
///   MRL_RETURN_IF_ERROR(reader.status());
class TextValueReader {
 public:
  TextValueReader() = default;
  ~TextValueReader();

  TextValueReader(const TextValueReader&) = delete;
  TextValueReader& operator=(const TextValueReader&) = delete;

  Status Open(const std::string& path);

  /// Reads the next value; false at end of stream or on error (check
  /// status() to distinguish).
  bool Next(Value* out);

  /// Reads up to `max` values into `out`, returning how many were read
  /// (0 at end of stream or on error). Parsing is per-line either way; the
  /// batch form exists so callers can feed sketches through AddBatch in
  /// chunks instead of one virtual-ingest call per line.
  std::size_t ReadBatch(Value* out, std::size_t max);

  const Status& status() const { return status_; }

  /// Lines consumed so far (including skipped ones).
  std::uint64_t line_number() const { return line_; }

 private:
  std::FILE* file_ = nullptr;
  std::uint64_t line_ = 0;
  Status status_;
};

}  // namespace mrl

#endif  // MRLQUANT_STREAM_TEXT_STREAM_H_
