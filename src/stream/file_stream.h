#ifndef MRLQUANT_STREAM_FILE_STREAM_H_
#define MRLQUANT_STREAM_FILE_STREAM_H_

#include <cstdio>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/types.h"

namespace mrl {

/// Writes `values` to `path` as raw little-endian doubles. Models the
/// paper's "disk-resident datasets" read in a single pass.
Status WriteValuesFile(const std::string& path,
                       const std::vector<Value>& values);

/// Buffered single-pass reader over a file written by WriteValuesFile.
/// Usage (batch path, preferred):
///   FileValueReader reader;
///   MRL_RETURN_IF_ERROR(reader.Open(path));
///   std::vector<Value> chunk(1 << 16);
///   while (std::size_t got = reader.ReadBatch(chunk.data(), chunk.size()))
///     sketch.AddBatch({chunk.data(), got});
///   MRL_RETURN_IF_ERROR(reader.status());
class FileValueReader {
 public:
  FileValueReader() = default;
  ~FileValueReader();

  FileValueReader(const FileValueReader&) = delete;
  FileValueReader& operator=(const FileValueReader&) = delete;

  /// Opens `path`; fails if the file is missing or its size is not a
  /// multiple of sizeof(Value).
  Status Open(const std::string& path);

  /// Reads the next value. Returns false at end of stream or on I/O error;
  /// distinguish via status().
  bool Next(Value* out);

  /// Reads up to `max` values into `out`, returning how many were read
  /// (0 at end of stream or on error; distinguish via status()). One bulk
  /// copy out of the read buffer per call — the chunked feed for AddBatch.
  std::size_t ReadBatch(Value* out, std::size_t max);

  /// OK unless an I/O error occurred.
  const Status& status() const { return status_; }

  /// Number of values the open file holds.
  std::uint64_t size() const { return size_; }

 private:
  Status FillBuffer();

  std::FILE* file_ = nullptr;
  std::uint64_t size_ = 0;
  std::vector<Value> buffer_;
  std::size_t buffer_pos_ = 0;
  Status status_;
  bool eof_ = false;
};

}  // namespace mrl

#endif  // MRLQUANT_STREAM_FILE_STREAM_H_
