#include "stream/distribution.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace mrl {

ZipfDistribution::ZipfDistribution(std::size_t num_distinct, double skew) {
  MRL_CHECK_GE(num_distinct, 1u);
  MRL_CHECK_GT(skew, 0.0);
  cdf_.resize(num_distinct);
  double total = 0.0;
  for (std::size_t i = 0; i < num_distinct; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), skew);
    cdf_[i] = total;
  }
  for (double& c : cdf_) c /= total;
}

Value ZipfDistribution::Draw(Random* rng) {
  double u = rng->UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  std::size_t idx = static_cast<std::size_t>(it - cdf_.begin());
  if (idx >= cdf_.size()) idx = cdf_.size() - 1;
  return static_cast<Value>(idx + 1);
}

Value LogNormalDistribution::Draw(Random* rng) {
  return std::exp(mu_ + sigma_ * rng->Gaussian());
}

Value ParetoDistribution::Draw(Random* rng) {
  double u;
  do {
    u = rng->UniformDouble();
  } while (u == 0.0);
  return scale_ / std::pow(u, 1.0 / shape_);
}

Value BimodalDistribution::Draw(Random* rng) {
  const double mean = rng->Bernoulli(0.5) ? mean_a_ : mean_b_;
  return mean + stddev_ * rng->Gaussian();
}

std::unique_ptr<Distribution> MakeDistribution(const std::string& name) {
  if (name == "uniform") {
    return std::make_unique<UniformDistribution>(0.0, 1.0);
  }
  if (name == "gaussian") {
    return std::make_unique<GaussianDistribution>(0.0, 1.0);
  }
  if (name == "exponential") {
    return std::make_unique<ExponentialDistribution>(1.0);
  }
  if (name == "zipf") {
    return std::make_unique<ZipfDistribution>(1000, 1.2);
  }
  if (name == "constant") {
    return std::make_unique<ConstantDistribution>(42.0);
  }
  if (name == "two_point") {
    return std::make_unique<TwoPointDistribution>(-1.0, 1.0, 0.3);
  }
  if (name == "lognormal") {
    return std::make_unique<LogNormalDistribution>(0.0, 1.0);
  }
  if (name == "pareto") {
    return std::make_unique<ParetoDistribution>(1.0, 1.5);
  }
  if (name == "bimodal") {
    return std::make_unique<BimodalDistribution>(-5.0, 5.0, 1.0);
  }
  return nullptr;
}

}  // namespace mrl
