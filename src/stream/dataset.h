#ifndef MRLQUANT_STREAM_DATASET_H_
#define MRLQUANT_STREAM_DATASET_H_

#include <cstddef>
#include <vector>

#include "util/types.h"

namespace mrl {

/// An in-memory dataset in arrival order, with exact order-statistics
/// utilities for ground truth. All ranks are 1-based, matching the paper:
/// the phi-quantile is the element at position ceil(phi * N) of the sorted
/// sequence, and v is an eps-approximate phi-quantile iff some occurrence of
/// v has rank within [(phi - eps) * N, (phi + eps) * N].
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<Value> values);

  const std::vector<Value>& values() const { return values_; }
  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  /// Exact phi-quantile: sorted[ceil(phi * N)] (1-based), phi in (0, 1].
  /// Requires a non-empty dataset.
  Value ExactQuantile(double phi) const;

  /// Position interval [lo, hi] (1-based, inclusive) that occurrences of `v`
  /// occupy in the sorted sequence. If `v` is absent, returns the interval
  /// it *would* occupy, i.e. lo = hi + 1 collapses to the insertion point:
  /// lo = (#elements < v) + 1, hi = #elements <= v; hence hi < lo for absent
  /// values.
  struct RankInterval {
    std::size_t lo;
    std::size_t hi;
  };
  RankInterval RankOf(Value v) const;

  /// Normalized rank error of `v` as an estimate of the phi-quantile:
  /// min over attainable ranks r of |r - phi * N| / N. For values present in
  /// the dataset the attainable ranks are [RankOf(v).lo, RankOf(v).hi]; for
  /// absent values the insertion point is used (the estimate still splits
  /// the data at a well-defined rank).
  double QuantileError(Value v, double phi) const;

  /// True iff v is an eps-approximate phi-quantile per the paper.
  bool IsApproxQuantile(Value v, double phi, double eps) const {
    return QuantileError(v, phi) <= eps + 1e-12;
  }

  Value Min() const;
  Value Max() const;

 private:
  void EnsureSorted() const;

  std::vector<Value> values_;
  mutable std::vector<Value> sorted_;  // built lazily
};

}  // namespace mrl

#endif  // MRLQUANT_STREAM_DATASET_H_
