#ifndef MRLQUANT_STREAM_GENERATOR_H_
#define MRLQUANT_STREAM_GENERATOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "stream/dataset.h"
#include "stream/distribution.h"
#include "stream/order.h"
#include "util/random.h"

namespace mrl {

/// Declarative description of a synthetic stream: what values, in what
/// order, how many, from which seed. The tuple fully determines the stream.
struct StreamSpec {
  std::string distribution = "uniform";  ///< See MakeDistribution().
  ArrivalOrder order = ArrivalOrder::kAsDrawn;
  std::size_t n = 0;
  std::uint64_t seed = 1;
};

/// Materializes the stream described by `spec`. CHECK-fails on an unknown
/// distribution name (specs are programmer-provided in this library).
Dataset GenerateStream(const StreamSpec& spec);

/// Incremental view of the stream described by a StreamSpec: produces the
/// exact same value sequence as GenerateStream(spec) but hands it out in
/// caller-sized chunks, so benchmark and ingestion loops can feed sketches
/// through AddBatch without the generator dictating the chunking. For
/// ArrivalOrder::kAsDrawn values are drawn on the fly in O(chunk) memory;
/// any other order requires the full permutation and is materialized once
/// up front.
class GeneratedStreamReader {
 public:
  /// CHECK-fails on an unknown distribution name, like GenerateStream.
  explicit GeneratedStreamReader(const StreamSpec& spec);

  /// Copies up to `max` values into `out`; returns how many were produced
  /// (0 once the spec's n values have been emitted).
  std::size_t ReadBatch(Value* out, std::size_t max);

  /// Values emitted so far.
  std::uint64_t position() const { return position_; }

  /// Total stream length (the spec's n).
  std::uint64_t size() const { return n_; }

 private:
  std::uint64_t n_;
  std::uint64_t position_ = 0;
  std::unique_ptr<Distribution> dist_;  // null when materialized_ is used
  Random rng_;
  std::vector<Value> materialized_;  // non-kAsDrawn orders only
};

}  // namespace mrl

#endif  // MRLQUANT_STREAM_GENERATOR_H_
