#ifndef MRLQUANT_STREAM_GENERATOR_H_
#define MRLQUANT_STREAM_GENERATOR_H_

#include <cstdint>
#include <string>

#include "stream/dataset.h"
#include "stream/order.h"

namespace mrl {

/// Declarative description of a synthetic stream: what values, in what
/// order, how many, from which seed. The tuple fully determines the stream.
struct StreamSpec {
  std::string distribution = "uniform";  ///< See MakeDistribution().
  ArrivalOrder order = ArrivalOrder::kAsDrawn;
  std::size_t n = 0;
  std::uint64_t seed = 1;
};

/// Materializes the stream described by `spec`. CHECK-fails on an unknown
/// distribution name (specs are programmer-provided in this library).
Dataset GenerateStream(const StreamSpec& spec);

}  // namespace mrl

#endif  // MRLQUANT_STREAM_GENERATOR_H_
