#ifndef MRLQUANT_STREAM_DISTRIBUTION_H_
#define MRLQUANT_STREAM_DISTRIBUTION_H_

#include <memory>
#include <string>
#include <vector>

#include "util/random.h"
#include "util/types.h"

namespace mrl {

/// A value distribution for synthetic streams. Implementations must be
/// deterministic functions of the supplied Random generator so that whole
/// experiments replay from a single seed.
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Draws one value.
  virtual Value Draw(Random* rng) = 0;

  /// Short name used in benchmark table rows ("uniform", "zipf", ...).
  virtual std::string name() const = 0;
};

/// Uniform on [lo, hi).
class UniformDistribution : public Distribution {
 public:
  UniformDistribution(double lo, double hi) : lo_(lo), hi_(hi) {}
  Value Draw(Random* rng) override { return rng->UniformDouble(lo_, hi_); }
  std::string name() const override { return "uniform"; }

 private:
  double lo_, hi_;
};

/// Normal(mean, stddev).
class GaussianDistribution : public Distribution {
 public:
  GaussianDistribution(double mean, double stddev)
      : mean_(mean), stddev_(stddev) {}
  Value Draw(Random* rng) override { return mean_ + stddev_ * rng->Gaussian(); }
  std::string name() const override { return "gaussian"; }

 private:
  double mean_, stddev_;
};

/// Exponential with the given rate; heavily right-skewed, a stand-in for
/// sales / latency columns where extreme quantiles matter (Section 1.1).
class ExponentialDistribution : public Distribution {
 public:
  explicit ExponentialDistribution(double lambda) : lambda_(lambda) {}
  Value Draw(Random* rng) override { return rng->Exponential(lambda_); }
  std::string name() const override { return "exponential"; }

 private:
  double lambda_;
};

/// Zipf over `num_distinct` values {1..num_distinct} with exponent `skew`;
/// models low-cardinality, heavily duplicated database columns.
class ZipfDistribution : public Distribution {
 public:
  ZipfDistribution(std::size_t num_distinct, double skew);
  Value Draw(Random* rng) override;
  std::string name() const override { return "zipf"; }

 private:
  std::vector<double> cdf_;  // cdf_[i] = P(value <= i + 1)
};

/// Always emits the same value; degenerate duplicate-only column.
class ConstantDistribution : public Distribution {
 public:
  explicit ConstantDistribution(Value v) : v_(v) {}
  Value Draw(Random*) override { return v_; }
  std::string name() const override { return "constant"; }

 private:
  Value v_;
};

/// Log-normal: exp(mu + sigma * Z). Classic model for sizes, incomes,
/// response times — long-tailed with all moments finite.
class LogNormalDistribution : public Distribution {
 public:
  LogNormalDistribution(double mu, double sigma) : mu_(mu), sigma_(sigma) {}
  Value Draw(Random* rng) override;
  std::string name() const override { return "lognormal"; }

 private:
  double mu_, sigma_;
};

/// Pareto with scale x_m and shape alpha: the heaviest tail in the suite
/// (infinite variance for alpha <= 2); stresses extreme-quantile logic.
class ParetoDistribution : public Distribution {
 public:
  ParetoDistribution(double scale, double shape)
      : scale_(scale), shape_(shape) {}
  Value Draw(Random* rng) override;
  std::string name() const override { return "pareto"; }

 private:
  double scale_, shape_;
};

/// Equal mixture of two well-separated Gaussians; quantiles near the mass
/// gap move fast in value space, stressing value-vs-rank error distinctions.
class BimodalDistribution : public Distribution {
 public:
  BimodalDistribution(double mean_a, double mean_b, double stddev)
      : mean_a_(mean_a), mean_b_(mean_b), stddev_(stddev) {}
  Value Draw(Random* rng) override;
  std::string name() const override { return "bimodal"; }

 private:
  double mean_a_, mean_b_, stddev_;
};

/// Mixes two point masses; stresses rank accounting around ties.
class TwoPointDistribution : public Distribution {
 public:
  TwoPointDistribution(Value a, Value b, double p_a) : a_(a), b_(b), pa_(p_a) {}
  Value Draw(Random* rng) override { return rng->Bernoulli(pa_) ? a_ : b_; }
  std::string name() const override { return "two_point"; }

 private:
  Value a_, b_;
  double pa_;
};

/// Well-known distribution presets keyed by name; used by benchmark loops.
/// Supported: "uniform", "gaussian", "exponential", "zipf", "constant",
/// "two_point". Returns nullptr for unknown names.
std::unique_ptr<Distribution> MakeDistribution(const std::string& name);

}  // namespace mrl

#endif  // MRLQUANT_STREAM_DISTRIBUTION_H_
