#include "stream/order.h"

#include <algorithm>

#include "util/logging.h"
#include "util/sort.h"

namespace mrl {

namespace {

void ShuffleInPlace(Random* rng, std::vector<Value>* values) {
  // Fisher–Yates with our deterministic generator.
  for (std::size_t i = values->size(); i > 1; --i) {
    std::size_t j = static_cast<std::size_t>(rng->UniformUint64(i));
    std::swap((*values)[i - 1], (*values)[j]);
  }
}

void SawtoothInPlace(std::vector<Value>* values) {
  SortValues(values->data(), values->size());
  // Deal the sorted sequence round-robin into 8 teeth, then emit the teeth
  // one after another: each tooth is an ascending run spanning the full
  // value range.
  constexpr std::size_t kTeeth = 8;
  std::vector<Value> out;
  out.reserve(values->size());
  for (std::size_t t = 0; t < kTeeth; ++t) {
    for (std::size_t i = t; i < values->size(); i += kTeeth) {
      out.push_back((*values)[i]);
    }
  }
  *values = std::move(out);
}

void AlternatingInPlace(std::vector<Value>* values) {
  SortValues(values->data(), values->size());
  std::vector<Value> out;
  out.reserve(values->size());
  std::size_t lo = 0;
  std::size_t hi = values->size();
  while (lo < hi) {
    out.push_back((*values)[lo++]);
    if (lo < hi) out.push_back((*values)[--hi]);
  }
  *values = std::move(out);
}

void BlockShuffledInPlace(Random* rng, std::vector<Value>* values) {
  SortValues(values->data(), values->size());
  constexpr std::size_t kBlock = 1024;
  std::size_t num_blocks = (values->size() + kBlock - 1) / kBlock;
  if (num_blocks <= 1) return;
  std::vector<std::size_t> perm(num_blocks);
  for (std::size_t i = 0; i < num_blocks; ++i) perm[i] = i;
  for (std::size_t i = num_blocks; i > 1; --i) {
    std::size_t j = static_cast<std::size_t>(rng->UniformUint64(i));
    std::swap(perm[i - 1], perm[j]);
  }
  std::vector<Value> out;
  out.reserve(values->size());
  for (std::size_t b : perm) {
    std::size_t begin = b * kBlock;
    std::size_t end = std::min(begin + kBlock, values->size());
    out.insert(out.end(), values->begin() + begin, values->begin() + end);
  }
  *values = std::move(out);
}

}  // namespace

const std::vector<ArrivalOrder>& AllArrivalOrders() {
  static const std::vector<ArrivalOrder>* kAll = new std::vector<ArrivalOrder>{
      ArrivalOrder::kAsDrawn,      ArrivalOrder::kShuffled,
      ArrivalOrder::kSortedAsc,    ArrivalOrder::kSortedDesc,
      ArrivalOrder::kSawtooth,     ArrivalOrder::kAlternating,
      ArrivalOrder::kBlockShuffled};
  return *kAll;
}

std::string ArrivalOrderName(ArrivalOrder order) {
  switch (order) {
    case ArrivalOrder::kAsDrawn:
      return "as_drawn";
    case ArrivalOrder::kShuffled:
      return "shuffled";
    case ArrivalOrder::kSortedAsc:
      return "sorted_asc";
    case ArrivalOrder::kSortedDesc:
      return "sorted_desc";
    case ArrivalOrder::kSawtooth:
      return "sawtooth";
    case ArrivalOrder::kAlternating:
      return "alternating";
    case ArrivalOrder::kBlockShuffled:
      return "block_shuffled";
  }
  return "unknown";
}

void ApplyArrivalOrder(ArrivalOrder order, Random* rng,
                       std::vector<Value>* values) {
  MRL_CHECK(values != nullptr);
  switch (order) {
    case ArrivalOrder::kAsDrawn:
      return;
    case ArrivalOrder::kShuffled:
      ShuffleInPlace(rng, values);
      return;
    case ArrivalOrder::kSortedAsc:
      // Whole-dataset sorts: the radix engine keeps Fig-4/Table-1 bench
      // setup time from dwarfing the measured ingestion time.
      SortValues(values->data(), values->size());
      return;
    case ArrivalOrder::kSortedDesc:
      SortValuesDescending(values->data(), values->size());
      return;
    case ArrivalOrder::kSawtooth:
      SawtoothInPlace(values);
      return;
    case ArrivalOrder::kAlternating:
      AlternatingInPlace(values);
      return;
    case ArrivalOrder::kBlockShuffled:
      BlockShuffledInPlace(rng, values);
      return;
  }
}

}  // namespace mrl
