#ifndef MRLQUANT_CORE_DYNAMIC_ALLOC_H_
#define MRLQUANT_CORE_DYNAMIC_ALLOC_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/params.h"
#include "util/status.h"
#include "util/types.h"

namespace mrl {

/// One knot of a user-specified memory-limit curve (Section 5): for stream
/// lengths >= n (until the next knot), at most `max_elements` elements of
/// buffer memory may be in use. The curve is a nondecreasing step function;
/// the first knot must have n == 0.
struct MemoryLimitPoint {
  std::uint64_t n = 0;
  std::uint64_t max_elements = 0;
};

/// A valid buffer-allocation schedule (Section 5): buffer i+1 may first be
/// used once the stream position reaches allocate_at[i]. "Valid" means the
/// eps/delta guarantee holds at *every* possible termination point, which
/// the planner establishes by simulating the collapse tree growth under
/// the schedule and checking the pre-sampling height bound throughout.
struct DynamicAllocationPlan {
  UnknownNParams params;  ///< b (the final buffer count), k, h, alpha
  /// allocate_at[i] = smallest stream position at which buffer i+1 may be
  /// allocated; allocate_at[0] == 0. Size == params.b.
  std::vector<std::uint64_t> allocate_at;

  /// Buffers allowed at stream position n (>= 1 once the stream started).
  int AllowedBuffersAt(std::uint64_t n) const;

  /// Memory in elements the schedule has allocated at position n.
  std::uint64_t MemoryElementsAt(std::uint64_t n) const {
    return static_cast<std::uint64_t>(AllowedBuffersAt(n)) * params.k;
  }

  /// Adapter for UnknownNOptions::buffer_allowance.
  std::function<int(std::uint64_t)> AllowanceFunction() const;
};

/// Searches for the smallest-k valid schedule that stays under `limits` at
/// every stream position, following the paper's procedure: try increasing
/// k; a fixed k fixes b (from the final limit) and the schedule (earliest
/// allocation the limits allow); pick the largest h compatible with Eq. 3;
/// accept when the alpha interval implied by Eq. 1 (upper bound) and Eq. 2
/// (lower bound) is non-empty and the simulated tree never exceeds height
/// h before sampling starts with all b buffers allocated.
///
/// Fails with InvalidArgument on a malformed limit curve and
/// ResourceExhausted when no k in the search range yields a valid schedule
/// (limits too tight).
Result<DynamicAllocationPlan> PlanDynamicAllocation(
    double eps, double delta, const std::vector<MemoryLimitPoint>& limits);

}  // namespace mrl

#endif  // MRLQUANT_CORE_DYNAMIC_ALLOC_H_
