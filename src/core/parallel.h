#ifndef MRLQUANT_CORE_PARALLEL_H_
#define MRLQUANT_CORE_PARALLEL_H_

#include <cstdint>
#include <vector>

#include "core/framework.h"
#include "core/params.h"
#include "core/unknown_n.h"
#include "util/random.h"
#include "util/status.h"
#include "util/types.h"

namespace mrl {

/// Configuration for the parallel algorithm of Section 6.
struct ParallelOptions {
  double eps = 0.01;
  double delta = 1e-4;
  int num_workers = 4;
  /// h': the extra tree height the merging processor may add. The worker
  /// parameter solver tightens Eq. 2 to h + h' + 1 <= 2*alpha*eps*k so the
  /// overall guarantee is unchanged.
  int coordinator_extra_height = 4;
  std::uint64_t seed = 1;
};

/// Coordinator ("Processor P0") that merges worker sketches per Section 6:
/// incoming full buffers enter a collapse tree at level 0 with their
/// weights retained; incoming partial buffers are staged in an extra buffer
/// B0 — equal weights are concatenated, unequal weights are reconciled by
/// subsampling the lighter buffer at the weight ratio and re-weighting.
/// When B0 fills it is promoted into the tree. The final Output runs over
/// the tree plus whatever remains in B0.
class ParallelCoordinator {
 public:
  /// `params` must be the (identical) parameters of every worker sketch.
  ParallelCoordinator(const UnknownNParams& params, std::uint64_t seed);

  /// Ingests one worker's shipped buffers (see
  /// UnknownNSketch::FinishAndExport).
  void Ingest(std::vector<ShippedBuffer> shipped);

  /// Total weight received so far; equals the total number of elements the
  /// workers consumed, up to the (bounded, expected-zero) drift introduced
  /// by Bernoulli reconciliation of unequal-weight partial buffers.
  Weight ReceivedWeight() const { return received_weight_; }

  Result<Value> Query(double phi) const;
  Result<std::vector<Value>> QueryMany(const std::vector<double>& phis) const;

  const TreeStats& tree_stats() const { return framework_.stats(); }

 private:
  void StagePartial(std::vector<Value> values, Weight weight);
  void PromoteStaging();

  std::size_t k_;
  CollapseFramework framework_;
  Random rng_;
  std::vector<Value> staging_;  ///< B0
  Weight staging_weight_ = 0;
  Weight received_weight_ = 0;
};

/// End-to-end helper: runs one UnknownNSketch per shard on its own thread
/// (workers never communicate until termination, as the paper requires),
/// ships the results to a coordinator, and answers `phis`. Each worker uses
/// parameters solved with the coordinator_extra_height margin so the
/// combined answer carries the full (eps, delta) guarantee.
Result<std::vector<Value>> ParallelQuantiles(
    const std::vector<std::vector<Value>>& shards,
    const ParallelOptions& options, const std::vector<double>& phis);

/// Solves the worker parameters for the parallel setting (Eq. 4–6): the
/// same optimization as SolveUnknownN with the tree constraint raised by
/// coordinator_extra_height.
Result<UnknownNParams> SolveParallelWorker(const ParallelOptions& options);

}  // namespace mrl

#endif  // MRLQUANT_CORE_PARALLEL_H_
