#ifndef MRLQUANT_CORE_KLL_H_
#define MRLQUANT_CORE_KLL_H_

#include <cstdint>
#include <vector>

#include "core/estimator.h"
#include "util/random.h"
#include "util/sort.h"
#include "util/status.h"
#include "util/types.h"

namespace mrl {

/// Configuration for the KLL backend. Either pin `k` directly or leave it 0
/// and let Create derive it from (eps, delta) via the empirical
/// single-stream error fit (see KllSketch).
struct KllOptions {
  double eps = 0.01;
  double delta = 1e-4;
  std::uint64_t seed = 1;
  /// Base compactor capacity; 0 derives k from (eps, delta).
  std::uint32_t k = 0;
};

/// KLL sketch (Karnin, Lang, Liberty, FOCS 2016) with the lazy compaction
/// schedule of Ivkin et al. (2019): a hierarchy of compactors where level l
/// holds items of weight 2^l and has capacity max(2, ceil(k * c^(H-1-l)))
/// with c = 2/3. Items enter at level 0; when the total held count exceeds
/// the total capacity, the lowest over-capacity level is sorted and every
/// other element (random offset) is promoted to the next level at doubled
/// weight. Pair promotion conserves total held weight exactly — an odd
/// element is held back at its level — so sum(size_l * 2^l) == count() is a
/// hard invariant (checked on Restore).
///
/// This is the contrast backend to the MRL99 collapse tree: mergeable
/// without structural coupling beyond k, and with memory O((1/eps)^1.06)
/// independent of the stream length. Compaction sorts run through the
/// radix-sort engine (util/sort.h) against a member SortScratch and the
/// per-level buffers retain their storage across compactions, so
/// steady-state ingestion performs no heap allocation.
class KllSketch : public QuantileEstimator {
 public:
  static Result<KllSketch> Create(const KllOptions& options);

  KllSketch(KllSketch&&) = default;
  KllSketch& operator=(KllSketch&&) = default;

  void Add(Value v) override;
  std::uint64_t count() const override { return count_; }

  Result<Value> Query(double phi) const override;
  Result<std::vector<Value>> QueryMany(
      const std::vector<double>& phis) const override;

  std::uint64_t MemoryElements() const override { return total_capacity_; }
  std::string name() const override { return "kll"; }

  void Reset() override { Reset(options_.seed); }
  void Reset(std::uint64_t seed) override;

  /// Merges another KLL sketch with the same k. Appends the other sketch's
  /// compactors level-wise and re-runs lazy compaction; seeds need not
  /// match (randomness only enters at compaction time).
  Status Merge(const QuantileEstimator& other) override;

  bool SupportsCheckpoint() const override { return true; }
  std::vector<std::uint8_t> Serialize() const override;
  Status Restore(std::span<const std::uint8_t> bytes) override;
  static Result<KllSketch> Deserialize(const std::vector<std::uint8_t>& bytes);

  std::uint32_t k() const { return k_; }
  std::size_t num_levels() const { return levels_.size(); }
  /// Items currently held across all levels (<= MemoryElements() after
  /// every Add returns).
  std::uint64_t held_items() const { return size_; }

  /// Derived base capacity for an (eps, delta) target: inverts the
  /// DataSketches empirical fit eps ~= 2.296 / k^0.9433 (99% confidence),
  /// widened by sqrt(ln(1/delta)/ln(100)) for smaller delta.
  static std::uint32_t SolveK(double eps, double delta);

 private:
  KllSketch(const KllOptions& options, std::uint32_t k);

  std::size_t LevelCapacity(std::size_t level) const;
  void RecomputeCapacity();
  /// Compacts the lowest over-capacity level until the total held count is
  /// back within the total capacity.
  void Compress();
  void CompactLevel(std::size_t level);
  /// All held (value, weight) records sorted by value (stable).
  std::vector<KeyedPayload> SortedSummary() const;

  KllOptions options_;
  std::uint32_t k_ = 0;
  Random rng_;
  /// levels_[l] holds items of weight 2^l, unsorted between compactions.
  std::vector<std::vector<Value>> levels_;
  std::uint64_t size_ = 0;   ///< items held across all levels
  std::uint64_t count_ = 0;  ///< stream elements consumed
  std::uint64_t total_capacity_ = 0;
  SortScratch scratch_;
};

}  // namespace mrl

#endif  // MRLQUANT_CORE_KLL_H_
