#include "core/partial.h"

#include <cmath>
#include <utility>

#include "core/parallel.h"
#include "util/serde.h"

namespace mrl {

namespace {
// Partial-summary wire framing: header, per-buffer records. Unlike the
// sketch checkpoint ("MRLQ") this carries only the distribution content —
// no sampler or RNG state — because the consumer is a coordinator, not a
// resumed sketch.
constexpr std::uint32_t kPartialMagic = 0x4D524C50;  // "MRLP"
constexpr std::uint8_t kPartialVersion = 1;
// A producer ships at most b full buffers plus a couple of partials per
// shard; even a wide sharded sketch stays far below this.
constexpr std::uint64_t kMaxPartialBuffers = std::uint64_t{1} << 16;
}  // namespace

void SerializePartialSummary(const PartialSummary& summary,
                             std::vector<std::uint8_t>* out) {
  BinaryWriter writer;
  writer.PutU32(kPartialMagic);
  writer.PutU8(kPartialVersion);
  writer.PutI32(summary.params.b);
  writer.PutU64(summary.params.k);
  writer.PutI32(summary.params.h);
  writer.PutDouble(summary.params.alpha);
  writer.PutU64(summary.params.leaves_before_sampling);
  writer.PutU64(summary.count);
  writer.PutU32(static_cast<std::uint32_t>(summary.buffers.size()));
  for (const ShippedBuffer& buf : summary.buffers) {
    writer.PutU8(buf.full ? 1 : 0);
    writer.PutU64(buf.weight);
    writer.PutValues(buf.values);
  }
  std::vector<std::uint8_t> bytes = writer.Take();
  out->insert(out->end(), bytes.begin(), bytes.end());
}

Result<PartialSummary> DeserializePartialSummary(
    std::span<const std::uint8_t> bytes) {
  BinaryReader reader(bytes.data(), bytes.size());
  std::uint32_t magic;
  std::uint8_t version;
  if (!reader.GetU32(&magic) || !reader.GetU8(&version)) {
    return reader.status();
  }
  if (magic != kPartialMagic) {
    return Status::InvalidArgument("not a partial summary");
  }
  if (version != kPartialVersion) {
    return Status::InvalidArgument("unsupported partial summary version");
  }
  PartialSummary summary;
  std::uint64_t k;
  std::uint32_t num_buffers;
  if (!reader.GetI32(&summary.params.b) || !reader.GetU64(&k) ||
      !reader.GetI32(&summary.params.h) ||
      !reader.GetDouble(&summary.params.alpha) ||
      !reader.GetU64(&summary.params.leaves_before_sampling) ||
      !reader.GetU64(&summary.count) || !reader.GetU32(&num_buffers)) {
    return reader.status();
  }
  summary.params.k = static_cast<std::size_t>(k);
  // The same pool caps as the sketch checkpoint decoder: bound what an
  // unauthenticated peer can make the merge allocate.
  if (summary.params.b < 2 || summary.params.b > 10000 ||
      summary.params.k < 1 || summary.params.h < 1 ||
      summary.params.MemoryElements() > (std::uint64_t{1} << 28)) {
    return Status::InvalidArgument("partial summary parameters out of range");
  }
  if (!std::isfinite(summary.params.alpha)) {
    return Status::InvalidArgument("partial summary alpha not finite");
  }
  if (num_buffers > kMaxPartialBuffers) {
    return Status::InvalidArgument("partial summary buffer count absurd");
  }
  summary.buffers.reserve(num_buffers);
  for (std::uint32_t i = 0; i < num_buffers; ++i) {
    ShippedBuffer buf;
    std::uint8_t full;
    if (!reader.GetU8(&full) || !reader.GetU64(&buf.weight) ||
        !reader.GetValues(&buf.values)) {
      return reader.status();
    }
    buf.full = full != 0;
    if (full > 1) {
      return Status::InvalidArgument("partial summary full flag out of range");
    }
    // The coordinator CHECK-aborts on these; reject them here so wire input
    // can never reach those aborts.
    if (buf.full && buf.values.size() != summary.params.k) {
      return Status::InvalidArgument(
          "full buffer does not hold exactly k elements");
    }
    if (!buf.full && buf.values.size() >= summary.params.k) {
      return Status::InvalidArgument("partial buffer holds k or more elements");
    }
    if (!buf.values.empty() && buf.weight < 1) {
      return Status::InvalidArgument("non-empty buffer with zero weight");
    }
    for (Value v : buf.values) {
      if (std::isnan(v)) {
        return Status::InvalidArgument(
            "NaN rejected at the partial summary boundary");
      }
    }
    summary.buffers.push_back(std::move(buf));
  }
  if (!reader.AtEnd()) {
    return reader.status().ok()
               ? Status::InvalidArgument(
                     "trailing bytes after partial summary")
               : reader.status();
  }
  return summary;
}

Result<std::vector<Value>> MergePartialQuantiles(
    const std::vector<PartialSummary>& parts, std::uint64_t seed,
    const std::vector<double>& phis) {
  if (parts.empty()) {
    return Status::InvalidArgument("need at least one partial summary");
  }
  std::size_t widest = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (parts[i].params.k != parts[0].params.k) {
      return Status::InvalidArgument(
          "partial summaries disagree on buffer size k");
    }
    if (parts[i].params.b > parts[widest].params.b) widest = i;
  }
  // The coordinator only needs (b, k); give it the widest pool any producer
  // used so its own tree stays at least as shallow as theirs.
  ParallelCoordinator coordinator(parts[widest].params, seed);
  for (const PartialSummary& part : parts) {
    coordinator.Ingest(part.buffers);
  }
  if (coordinator.ReceivedWeight() == 0) {
    return Status::FailedPrecondition("no elements in any partial summary");
  }
  return coordinator.QueryMany(phis);
}

}  // namespace mrl
