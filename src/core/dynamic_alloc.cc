#include "core/dynamic_alloc.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/math.h"

namespace mrl {

namespace {

constexpr int kMaxBuffersDyn = 50;
constexpr int kMaxHeightDyn = 50;
constexpr std::uint64_t kSimLeafCap = 4'000'000;

Status ValidateLimits(const std::vector<MemoryLimitPoint>& limits) {
  if (limits.empty()) {
    return Status::InvalidArgument("limit curve must have at least one knot");
  }
  if (limits.front().n != 0) {
    return Status::InvalidArgument("first limit knot must have n == 0");
  }
  for (std::size_t i = 1; i < limits.size(); ++i) {
    if (limits[i].n <= limits[i - 1].n) {
      return Status::InvalidArgument("limit knots must have increasing n");
    }
    if (limits[i].max_elements < limits[i - 1].max_elements) {
      return Status::InvalidArgument("limit curve must be nondecreasing");
    }
  }
  return Status::OK();
}

std::uint64_t LimitAt(const std::vector<MemoryLimitPoint>& limits,
                      std::uint64_t n) {
  std::uint64_t value = 0;
  for (const MemoryLimitPoint& p : limits) {
    if (p.n > n) break;
    value = p.max_elements;
  }
  return value;
}

/// Smallest stream position at which the limit curve permits `elements`;
/// returns false when it never does.
bool FirstPositionAllowing(const std::vector<MemoryLimitPoint>& limits,
                           std::uint64_t elements, std::uint64_t* position) {
  for (const MemoryLimitPoint& p : limits) {
    if (p.max_elements >= elements) {
      *position = p.n;
      return true;
    }
  }
  return false;
}

/// Simulates the pre-sampling collapse tree under the schedule (leaf
/// granularity; one leaf = k stream elements at rate 1) and decides
/// validity: the schedule is valid iff all b buffers become available
/// before the tree height first reaches h, and the pool never deadlocks
/// (pool full with fewer than two full buffers). Once all b buffers are
/// allocated without sampling having started, the run is exactly the
/// standard algorithm, so simulation can stop there. Pre-sampling heights
/// can never exceed h (a collapse output level is at most one above an
/// existing level), so no other failure mode exists.
bool ScheduleIsValid(const std::vector<MemoryLimitPoint>& limits,
                     std::uint64_t k, int b, int h) {
  std::vector<int> levels;  // levels of full buffers
  int max_height = 0;
  for (std::uint64_t leaf = 1; leaf <= kSimLeafCap; ++leaf) {
    const std::uint64_t position = (leaf - 1) * k + 1;
    const int allowed = static_cast<int>(std::min<std::uint64_t>(
        static_cast<std::uint64_t>(b), LimitAt(limits, position) / k));
    if (allowed < 1) return false;  // cannot even hold the filling buffer
    if (allowed >= b) return true;  // fully allocated before sampling: valid
    // Make room for the leaf about to fill.
    while (static_cast<int>(levels.size()) + 1 > allowed) {
      if (levels.size() < 2) return false;  // deadlock
      std::sort(levels.begin(), levels.end());
      const int l_star = levels[1];
      std::vector<int> rest;
      for (int l : levels) {
        if (l > l_star) rest.push_back(l);
      }
      rest.push_back(l_star + 1);
      levels = std::move(rest);
      max_height = std::max(max_height, l_star + 1);
      if (max_height >= h) {
        // Sampling onset with an incomplete allocation: invalid.
        return false;
      }
    }
    levels.push_back(0);
  }
  return false;  // allocation did not complete within the simulation cap
}

}  // namespace

int DynamicAllocationPlan::AllowedBuffersAt(std::uint64_t n) const {
  int allowed = 0;
  for (std::size_t i = 0; i < allocate_at.size(); ++i) {
    if (allocate_at[i] <= n) {
      allowed = static_cast<int>(i) + 1;
    } else {
      break;
    }
  }
  return allowed;
}

std::function<int(std::uint64_t)> DynamicAllocationPlan::AllowanceFunction()
    const {
  // Copy the schedule so the function outlives the plan.
  std::vector<std::uint64_t> schedule = allocate_at;
  return [schedule](std::uint64_t n) {
    int allowed = 0;
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      if (schedule[i] <= n) {
        allowed = static_cast<int>(i) + 1;
      } else {
        break;
      }
    }
    return allowed < 1 ? 1 : allowed;
  };
}

Result<DynamicAllocationPlan> PlanDynamicAllocation(
    double eps, double delta, const std::vector<MemoryLimitPoint>& limits) {
  if (!(eps > 0.0) || eps >= 1.0 || !(delta > 0.0) || delta >= 1.0) {
    return Status::InvalidArgument("eps and delta must be in (0, 1)");
  }
  MRL_RETURN_IF_ERROR(ValidateLimits(limits));
  const std::uint64_t final_limit = limits.back().max_elements;
  const double log_term = std::log(2.0 / delta);

  // Paper §5: try increasingly large k. A fixed k fixes b (from the final
  // limit) and the earliest-possible allocation schedule.
  std::uint64_t k = static_cast<std::uint64_t>(std::ceil(1.0 / eps));
  if (k < 2) k = 2;
  for (; final_limit / k >= 2; k = std::max(k + 1, k + k / 5)) {
    const int b = static_cast<int>(
        std::min<std::uint64_t>(kMaxBuffersDyn, final_limit / k));
    const int h_cap = std::min<int>(
        kMaxHeightDyn,
        static_cast<int>(std::floor(2.0 * eps * static_cast<double>(k))) - 1);
    if (h_cap < 1) continue;

    // The stream cannot start unless one buffer fits immediately.
    if (LimitAt(limits, 1) < k) continue;

    // Try h from largest down: a taller pre-sampling tree defers the
    // sampling onset, which is what lets a slowly-growing allocation
    // schedule complete in time (ScheduleIsValid).
    int best_h = -1;
    double best_alpha = 0.0;
    for (int h = h_cap; h >= 1; --h) {
      const std::uint64_t ld = SaturatingBinomial(
          static_cast<std::uint64_t>(b + h - 2),
          static_cast<std::uint64_t>(h - 1));
      const std::uint64_t ls = SaturatingBinomial(
          static_cast<std::uint64_t>(b + h - 3),
          static_cast<std::uint64_t>(h - 1));
      const double leaf_min = std::min(
          static_cast<double>(ld), (8.0 / 3.0) * static_cast<double>(ls));
      // Eq. 1: (1 - alpha)^2 >= R  ->  alpha <= 1 - sqrt(R).
      const double r = log_term / (2.0 * eps * eps *
                                   static_cast<double>(k) * leaf_min);
      if (r >= 1.0) continue;
      const double alpha_hi = 1.0 - std::sqrt(r);
      // Eq. 2: alpha >= (h + 1) / (2 eps k).
      const double alpha_lo = static_cast<double>(h + 1) /
                              (2.0 * eps * static_cast<double>(k));
      if (alpha_lo >= alpha_hi) continue;
      if (!ScheduleIsValid(limits, k, b, h)) continue;
      best_h = h;
      best_alpha = 0.5 * (alpha_lo + alpha_hi);
      break;
    }
    if (best_h < 0) continue;

    DynamicAllocationPlan plan;
    plan.params.b = b;
    plan.params.k = static_cast<std::size_t>(k);
    plan.params.h = best_h;
    plan.params.alpha = best_alpha;
    plan.params.leaves_before_sampling = SaturatingBinomial(
        static_cast<std::uint64_t>(b + best_h - 2),
        static_cast<std::uint64_t>(best_h - 1));
    plan.allocate_at.resize(static_cast<std::size_t>(b));
    for (int i = 0; i < b; ++i) {
      std::uint64_t pos = 0;
      const bool found = FirstPositionAllowing(
          limits, static_cast<std::uint64_t>(i + 1) * k, &pos);
      MRL_CHECK(found);  // i + 1 <= b = final_limit / k
      plan.allocate_at[static_cast<std::size_t>(i)] = pos;
    }
    return plan;
  }
  return Status::ResourceExhausted(
      "no valid buffer allocation schedule within the memory limits");
}

}  // namespace mrl
