#include "core/int64_sketch.h"

#include <cmath>

namespace mrl {

Result<Int64QuantileSketch> Int64QuantileSketch::Create(
    const Options& options) {
  UnknownNOptions inner_options;
  inner_options.eps = options.eps;
  inner_options.delta = options.delta;
  inner_options.seed = options.seed;
  Result<UnknownNSketch> inner = UnknownNSketch::Create(inner_options);
  if (!inner.ok()) return inner.status();
  return Int64QuantileSketch(std::move(inner).value());
}

bool Int64QuantileSketch::Add(std::int64_t v) {
  if (v > kMaxMagnitude || v < -kMaxMagnitude) {
    ++rejected_;
    return false;
  }
  inner_.Add(static_cast<Value>(v));
  return true;
}

std::size_t Int64QuantileSketch::AddBatch(
    std::span<const std::int64_t> values) {
  batch_scratch_.clear();
  batch_scratch_.reserve(values.size());
  std::size_t accepted = 0;
  for (std::int64_t v : values) {
    if (v > kMaxMagnitude || v < -kMaxMagnitude) {
      ++rejected_;
      continue;
    }
    batch_scratch_.push_back(static_cast<Value>(v));
    ++accepted;
  }
  inner_.AddBatch(
      std::span<const Value>(batch_scratch_.data(), batch_scratch_.size()));
  return accepted;
}

Result<std::int64_t> Int64QuantileSketch::Query(double phi) const {
  Result<Value> q = inner_.Query(phi);
  if (!q.ok()) return q.status();
  // The sketch only selects inserted elements, so the double is an exact
  // integer; llround is a formality.
  return static_cast<std::int64_t>(std::llround(q.value()));
}

Result<std::vector<std::int64_t>> Int64QuantileSketch::QueryMany(
    const std::vector<double>& phis) const {
  Result<std::vector<Value>> q = inner_.QueryMany(phis);
  if (!q.ok()) return q.status();
  std::vector<std::int64_t> out;
  out.reserve(q.value().size());
  for (Value v : q.value()) {
    out.push_back(static_cast<std::int64_t>(std::llround(v)));
  }
  return out;
}

Result<double> Int64QuantileSketch::RankOf(std::int64_t v) const {
  // Clamp out-of-range probes to the representable boundary; ranks are
  // monotone so the clamped answer is exact for any out-of-range probe.
  std::int64_t clamped = v;
  if (clamped > kMaxMagnitude) clamped = kMaxMagnitude;
  if (clamped < -kMaxMagnitude) clamped = -kMaxMagnitude;
  return inner_.RankOf(static_cast<Value>(clamped));
}

}  // namespace mrl
