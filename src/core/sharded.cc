#include "core/sharded.h"

#include <cstdlib>

#include "core/params.h"
#include "util/logging.h"
#include "util/random.h"

namespace mrl {

Result<ShardedQuantileSketch> ShardedQuantileSketch::Create(
    const Options& options) {
  if (options.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  // Solve once; all shards share parameters (and so the same eps).
  Result<UnknownNParams> params = SolveUnknownN(options.eps, options.delta);
  if (!params.ok()) return params.status();
  Random seeder(options.seed);
  std::vector<UnknownNSketch> shards;
  shards.reserve(static_cast<std::size_t>(options.num_shards));
  for (int i = 0; i < options.num_shards; ++i) {
    UnknownNOptions shard_options;
    shard_options.params = params.value();
    shard_options.seed = seeder.NextUint64();
    Result<UnknownNSketch> shard = UnknownNSketch::Create(shard_options);
    if (!shard.ok()) return shard.status();
    shards.push_back(std::move(shard).value());
  }
  return ShardedQuantileSketch(std::move(shards), options.seed);
}

Result<ShardedQuantileSketch> ShardedQuantileSketch::FromShards(
    std::vector<UnknownNSketch> shards) {
  if (shards.empty()) {
    return Status::InvalidArgument("FromShards requires at least one shard");
  }
  for (const UnknownNSketch& s : shards) {
    if (s.params().b != shards.front().params().b ||
        s.params().k != shards.front().params().k) {
      return Status::InvalidArgument(
          "FromShards requires all shards to share (b, k)");
    }
  }
  return ShardedQuantileSketch(std::move(shards));
}

void ShardedQuantileSketch::Reset() { Reset(seed_); }

void ShardedQuantileSketch::Reset(std::uint64_t seed) {
  seed_ = seed;
  // Re-derive the per-shard seeds exactly as Create does.
  Random seeder(seed);
  for (UnknownNSketch& s : shards_) s.Reset(seeder.NextUint64());
}

void ShardedQuantileSketch::ShardIndexFatal(int shard) const {
  MRL_CHECK(false) << "shard index " << shard << " outside [0, "
                   << shards_.size() << ")";
  std::abort();  // unreachable; MRL_CHECK(false) aborts
}

void ShardedQuantileSketch::Add(int shard, Value v) {
  CheckShardIndex(shard);
  shards_[static_cast<std::size_t>(shard)].Add(v);
}

void ShardedQuantileSketch::AddBatch(int shard,
                                     std::span<const Value> values) {
  CheckShardIndex(shard);
  shards_[static_cast<std::size_t>(shard)].AddBatch(values);
}

std::uint64_t ShardedQuantileSketch::count() const {
  std::uint64_t total = 0;
  for (const UnknownNSketch& s : shards_) total += s.count();
  return total;
}

namespace {

/// Per-call working set for the merged-summary query path, reused across
/// calls (thread-local: concurrent const queries on quiescent shards are
/// part of the thread contract).
struct MergedQueryScratch {
  std::vector<QuantileSummary> parts;
  std::vector<const QuantileSummary*> pointers;
  SummaryScratch weighted;
  QuantileSummary merged;
};

MergedQueryScratch& QueryScratchForThisThread() {
  thread_local MergedQueryScratch scratch;
  return scratch;
}

}  // namespace

void ShardedQuantileSketch::MergedSummaryInto(QuantileSummary* out) const {
  MergedQueryScratch& s = QueryScratchForThisThread();
  s.parts.resize(shards_.size());
  s.pointers.clear();
  std::size_t used = 0;
  for (const UnknownNSketch& shard : shards_) {
    if (shard.count() > 0) {
      shard.ExportSummaryInto(&s.parts[used]);
      s.pointers.push_back(&s.parts[used]);
      ++used;
    }
  }
  QuantileSummary::MergeInto(s.pointers, &s.weighted, out);
}

QuantileSummary ShardedQuantileSketch::MergedSummary() const {
  QuantileSummary out;
  MergedSummaryInto(&out);
  return out;
}

Result<Value> ShardedQuantileSketch::Query(double phi) const {
  MergedQueryScratch& s = QueryScratchForThisThread();
  MergedSummaryInto(&s.merged);
  return s.merged.Quantile(phi);
}

Result<std::vector<Value>> ShardedQuantileSketch::QueryMany(
    const std::vector<double>& phis) const {
  MergedQueryScratch& s = QueryScratchForThisThread();
  MergedSummaryInto(&s.merged);
  std::vector<Value> out;
  out.reserve(phis.size());
  for (double phi : phis) {
    Result<Value> q = s.merged.Quantile(phi);
    if (!q.ok()) return q.status();
    out.push_back(q.value());
  }
  return out;
}

std::uint64_t ShardedQuantileSketch::MemoryElements() const {
  std::uint64_t total = 0;
  for (const UnknownNSketch& s : shards_) total += s.MemoryElements();
  return total;
}

}  // namespace mrl
