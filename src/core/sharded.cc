#include "core/sharded.h"

#include <cstdlib>
#include <utility>

#include "core/params.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/serde.h"

namespace mrl {

Result<ShardedQuantileSketch> ShardedQuantileSketch::Create(
    const Options& options) {
  if (options.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  // Solve once; all shards share parameters (and so the same eps).
  Result<UnknownNParams> params = SolveUnknownN(options.eps, options.delta);
  if (!params.ok()) return params.status();
  Random seeder(options.seed);
  std::vector<UnknownNSketch> shards;
  shards.reserve(static_cast<std::size_t>(options.num_shards));
  for (int i = 0; i < options.num_shards; ++i) {
    UnknownNOptions shard_options;
    shard_options.params = params.value();
    shard_options.seed = seeder.NextUint64();
    Result<UnknownNSketch> shard = UnknownNSketch::Create(shard_options);
    if (!shard.ok()) return shard.status();
    shards.push_back(std::move(shard).value());
  }
  return ShardedQuantileSketch(std::move(shards), options.seed);
}

Result<ShardedQuantileSketch> ShardedQuantileSketch::FromShards(
    std::vector<UnknownNSketch> shards) {
  if (shards.empty()) {
    return Status::InvalidArgument("FromShards requires at least one shard");
  }
  for (const UnknownNSketch& s : shards) {
    if (s.params().b != shards.front().params().b ||
        s.params().k != shards.front().params().k) {
      return Status::InvalidArgument(
          "FromShards requires all shards to share (b, k)");
    }
  }
  return ShardedQuantileSketch(std::move(shards));
}

void ShardedQuantileSketch::Reset() { Reset(seed_); }

void ShardedQuantileSketch::Reset(std::uint64_t seed) {
  seed_ = seed;
  rr_cursor_ = 0;
  // Re-derive the per-shard seeds exactly as Create does.
  Random seeder(seed);
  for (UnknownNSketch& s : shards_) s.Reset(seeder.NextUint64());
}

void ShardedQuantileSketch::ShardIndexFatal(int shard) const {
  MRL_CHECK(false) << "shard index " << shard << " outside [0, "
                   << shards_.size() << ")";
  std::abort();  // unreachable; MRL_CHECK(false) aborts
}

void ShardedQuantileSketch::Add(int shard, Value v) {
  CheckShardIndex(shard);
  shards_[static_cast<std::size_t>(shard)].Add(v);
}

void ShardedQuantileSketch::AddBatch(int shard,
                                     std::span<const Value> values) {
  CheckShardIndex(shard);
  shards_[static_cast<std::size_t>(shard)].AddBatch(values);
}

void ShardedQuantileSketch::Add(Value v) {
  shards_[static_cast<std::size_t>(rr_cursor_)].Add(v);
  rr_cursor_ = (rr_cursor_ + 1) % shards_.size();
}

void ShardedQuantileSketch::AddBatch(std::span<const Value> values) {
  const std::size_t num_shards = shards_.size();
  if (num_shards == 1) {
    shards_[0].AddBatch(values);
    return;
  }
  // Element i belongs to shard (rr_cursor_ + i) mod S — the same routing
  // the element-wise Add performs. Gathering each shard's strided slice
  // keeps that bit-identity while still driving the per-shard batch fast
  // path; the staging vector is reused across calls.
  for (std::size_t sh = 0; sh < num_shards; ++sh) {
    const std::size_t first =
        (sh + num_shards - static_cast<std::size_t>(rr_cursor_) % num_shards) %
        num_shards;
    batch_scratch_.clear();
    for (std::size_t i = first; i < values.size(); i += num_shards) {
      batch_scratch_.push_back(values[i]);
    }
    if (!batch_scratch_.empty()) {
      shards_[sh].AddBatch(std::span<const Value>(batch_scratch_.data(),
                                                  batch_scratch_.size()));
    }
  }
  rr_cursor_ = (rr_cursor_ + values.size()) % num_shards;
}

std::uint64_t ShardedQuantileSketch::count() const {
  std::uint64_t total = 0;
  for (const UnknownNSketch& s : shards_) total += s.count();
  return total;
}

namespace {

/// Per-call working set for the merged-summary query path, reused across
/// calls (thread-local: concurrent const queries on quiescent shards are
/// part of the thread contract).
struct MergedQueryScratch {
  std::vector<QuantileSummary> parts;
  std::vector<const QuantileSummary*> pointers;
  SummaryScratch weighted;
  QuantileSummary merged;
};

MergedQueryScratch& QueryScratchForThisThread() {
  thread_local MergedQueryScratch scratch;
  return scratch;
}

}  // namespace

void ShardedQuantileSketch::MergedSummaryInto(QuantileSummary* out) const {
  MergedQueryScratch& s = QueryScratchForThisThread();
  s.parts.resize(shards_.size());
  s.pointers.clear();
  std::size_t used = 0;
  for (const UnknownNSketch& shard : shards_) {
    if (shard.count() > 0) {
      shard.ExportSummaryInto(&s.parts[used]);
      s.pointers.push_back(&s.parts[used]);
      ++used;
    }
  }
  QuantileSummary::MergeInto(s.pointers, &s.weighted, out);
}

QuantileSummary ShardedQuantileSketch::MergedSummary() const {
  QuantileSummary out;
  MergedSummaryInto(&out);
  return out;
}

Result<Value> ShardedQuantileSketch::Query(double phi) const {
  MergedQueryScratch& s = QueryScratchForThisThread();
  MergedSummaryInto(&s.merged);
  return s.merged.Quantile(phi);
}

Result<std::vector<Value>> ShardedQuantileSketch::QueryMany(
    const std::vector<double>& phis) const {
  MergedQueryScratch& s = QueryScratchForThisThread();
  MergedSummaryInto(&s.merged);
  std::vector<Value> out;
  out.reserve(phis.size());
  for (double phi : phis) {
    Result<Value> q = s.merged.Quantile(phi);
    if (!q.ok()) return q.status();
    out.push_back(q.value());
  }
  return out;
}

std::uint64_t ShardedQuantileSketch::MemoryElements() const {
  std::uint64_t total = 0;
  for (const UnknownNSketch& s : shards_) total += s.MemoryElements();
  return total;
}

namespace {
constexpr std::uint32_t kCheckpointMagic = 0x4D524C51;  // "MRLQ"
constexpr std::uint8_t kCheckpointVersion = 2;
constexpr std::uint8_t kKindSharded = 4;
constexpr std::uint32_t kMaxShards = 1024;  // matches the wire-level bound
}  // namespace

std::vector<std::uint8_t> ShardedQuantileSketch::Serialize() const {
  BinaryWriter writer;
  writer.PutU32(kCheckpointMagic);
  writer.PutU8(kCheckpointVersion);
  writer.PutU8(kKindSharded);
  writer.PutU64(seed_);
  writer.PutU64(rr_cursor_);
  writer.PutU32(static_cast<std::uint32_t>(shards_.size()));
  for (const UnknownNSketch& s : shards_) {
    const std::vector<std::uint8_t> blob = s.Serialize();
    writer.PutU32(static_cast<std::uint32_t>(blob.size()));
    for (std::uint8_t byte : blob) writer.PutU8(byte);
  }
  return writer.Take();
}

Status ShardedQuantileSketch::Restore(std::span<const std::uint8_t> bytes) {
  BinaryReader reader(bytes.data(), bytes.size());
  std::uint32_t magic;
  std::uint8_t version, kind;
  std::uint64_t seed, rr_cursor;
  std::uint32_t num_shards;
  if (!reader.GetU32(&magic) || !reader.GetU8(&version) ||
      !reader.GetU8(&kind) || !reader.GetU64(&seed) ||
      !reader.GetU64(&rr_cursor) || !reader.GetU32(&num_shards)) {
    return reader.status();
  }
  if (magic != kCheckpointMagic) {
    return Status::InvalidArgument("not an mrlquant checkpoint");
  }
  if (version != kCheckpointVersion || kind != kKindSharded) {
    return Status::InvalidArgument("unsupported checkpoint version or kind");
  }
  if (num_shards < 1 || num_shards > kMaxShards) {
    return Status::InvalidArgument("checkpoint shard count out of range");
  }
  if (rr_cursor >= num_shards) {
    return Status::InvalidArgument("checkpoint round-robin cursor invalid");
  }
  std::vector<UnknownNSketch> shards;
  shards.reserve(num_shards);
  std::vector<std::uint8_t> blob;
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    std::uint32_t len;
    if (!reader.GetU32(&len)) return reader.status();
    if (len > reader.Remaining()) {
      return Status::InvalidArgument("checkpoint shard blob truncated");
    }
    blob.clear();
    blob.reserve(len);
    for (std::uint32_t i = 0; i < len; ++i) {
      std::uint8_t byte;
      if (!reader.GetU8(&byte)) return reader.status();
      blob.push_back(byte);
    }
    Result<UnknownNSketch> shard = UnknownNSketch::Deserialize(blob);
    if (!shard.ok()) return shard.status();
    shards.push_back(std::move(shard).value());
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after checkpoint");
  }
  Result<ShardedQuantileSketch> restored = FromShards(std::move(shards));
  if (!restored.ok()) return restored.status();
  *this = std::move(restored).value();
  seed_ = seed;
  rr_cursor_ = rr_cursor;
  return Status::OK();
}

Status ShardedQuantileSketch::ExportPartial(PartialSummary* out) const {
  // FromShards/Create guarantee a shared (b, k) across shards, so the
  // concatenated buffers carry one parameter set.
  out->params = shards_.front().params();
  out->count = count();
  out->buffers.clear();
  PartialSummary shard_part;
  for (const UnknownNSketch& shard : shards_) {
    MRL_RETURN_IF_ERROR(shard.ExportPartial(&shard_part));
    for (ShippedBuffer& buf : shard_part.buffers) {
      out->buffers.push_back(std::move(buf));
    }
  }
  return Status::OK();
}

}  // namespace mrl
