#include "core/unknown_n.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "core/output.h"
#include "util/audit.h"
#include "util/logging.h"
#include "util/serde.h"
#include "util/sort.h"

namespace mrl {

Result<UnknownNSketch> UnknownNSketch::Create(const UnknownNOptions& options) {
  UnknownNParams params;
  if (options.params.has_value()) {
    params = *options.params;
    if (params.b < 2 || params.k < 1 || params.h < 1) {
      return Status::InvalidArgument(
          "explicit params require b >= 2, k >= 1, h >= 1");
    }
  } else {
    Result<UnknownNParams> solved = SolveUnknownN(options.eps, options.delta);
    if (!solved.ok()) return solved.status();
    params = solved.value();
  }
  return UnknownNSketch(params, options);
}

UnknownNSketch::UnknownNSketch(const UnknownNParams& params,
                               const UnknownNOptions& options)
    : params_(params),
      framework_(params.b, params.k,
                 MakeCollapsePolicy(CollapsePolicyKind::kMrl)),
      sampler_(Random(options.seed), /*rate=*/1,
               options.ablation_first_of_block_sampling
                   ? BlockSampler::PickPolicy::kFirstOfBlock
                   : BlockSampler::PickPolicy::kUniformWithinBlock),
      buffer_allowance_(options.buffer_allowance),
      seed_(options.seed),
      ablation_first_of_block_(options.ablation_first_of_block_sampling) {
  if (options.ablation_disable_collapse_alternation) {
    framework_.SetOffsetAlternationEnabled(false);
  }
  if (buffer_allowance_) UpdateUsableBuffers();
}

void UnknownNSketch::Reset() { Reset(seed_); }

void UnknownNSketch::Reset(std::uint64_t seed) {
  seed_ = seed;
  framework_.Reset();
  sampler_ = BlockSampler(Random(seed), /*rate=*/1,
                          ablation_first_of_block_
                              ? BlockSampler::PickPolicy::kFirstOfBlock
                              : BlockSampler::PickPolicy::kUniformWithinBlock);
  count_ = 0;
  filling_ = false;
  fill_slot_ = 0;
  fill_weight_ = 1;
  fill_level_ = 0;
  if (buffer_allowance_) UpdateUsableBuffers();
}

void UnknownNSketch::UpdateUsableBuffers() {
  int allowed = buffer_allowance_(count_ + 1);
  if (allowed < 1) allowed = 1;
  if (allowed > params_.b) allowed = params_.b;
  if (allowed > framework_.usable_buffers() ||
      framework_.stats().leaves_created == 0) {
    framework_.SetUsableBuffers(allowed);
  }
}

std::pair<Weight, int> UnknownNSketch::NextNewRateAndLevel() const {
  const int max_level = framework_.max_level();
  if (max_level < params_.h) {
    return {Weight{1}, 0};
  }
  // Section 3.7: once the first buffer at level h+i exists (i >= 0), New
  // runs at rate 2^(i+1) and its buffers enter at level i+1.
  const int i = max_level - params_.h;
  MRL_CHECK_LT(i, 62) << "sampling rate would overflow";
  return {Weight{1} << (i + 1), i + 1};
}

void UnknownNSketch::StartNewFill() {
  MRL_CHECK(!filling_);
  if (buffer_allowance_) UpdateUsableBuffers();
  // Acquire first: a Collapse triggered here may raise the tree height,
  // which in turn determines this New's sampling rate and level.
  fill_slot_ = framework_.AcquireEmptySlot();
  auto [rate, level] = NextNewRateAndLevel();
  sampler_.SetRate(rate);
  fill_weight_ = rate;
  fill_level_ = level;
  framework_.buffer(fill_slot_).StartFill();
  filling_ = true;
  // New round complete: the rate/height coupling of §3.7 must hold now
  // that the rate has caught up with any collapse-driven tree growth.
  MRL_AUDIT(audit::CheckUnknownNHeight(framework_, params_.h,
                                       sampler_.rate()));
}

void UnknownNSketch::Add(Value v) {
  MRL_CHECK(!std::isnan(v)) << "NaN rejected at the sketch boundary: the "
                               "comparison-based buffers are undefined over "
                               "NaN (docs/algorithm.md §8)";
  if (!filling_) StartNewFill();
  std::optional<Value> sample = sampler_.Add(v);
  ++count_;
  if (!sample.has_value()) return;
  Buffer& buf = framework_.buffer(fill_slot_);
  buf.Append(*sample);
  if (buf.size() == buf.capacity()) {
    framework_.CommitFull(fill_slot_, fill_weight_, fill_level_);
    filling_ = false;
    MRL_AUDIT(audit::CheckWeightConservation(HeldWeight(), count_));
  }
}

void UnknownNSketch::AddBatch(std::span<const Value> values) {
  // NaN boundary contract: the release build traps every NaN that would
  // enter sketch state — sampled survivors (below) and the block candidate
  // left pending at return — without touching the elements the sampler
  // skips; audit builds scan the whole span here.
  MRL_AUDIT(audit::CheckNoNaN(values.data(), values.size()));
  while (!values.empty()) {
    if (!filling_) StartNewFill();
    Buffer& buf = framework_.buffer(fill_slot_);
    const std::uint64_t room = buf.capacity() - buf.size();
    const Weight rate = sampler_.rate();
    // Largest element count that keeps this buffer from overfilling: the
    // sampler emits floor((pending + t) / rate) survivors for t elements,
    // so t = room * rate - pending is the exact fill-to-capacity point.
    std::uint64_t take = values.size();
    if (room < std::numeric_limits<std::uint64_t>::max() / rate) {
      take = std::min<std::uint64_t>(
          take, room * rate - sampler_.pending_count());
    }  // else the fill point exceeds any real span; consume it whole
    batch_scratch_.clear();
    sampler_.AddBatch(values.data(), static_cast<std::size_t>(take),
                      batch_scratch_);
    count_ += take;
    for (Value s : batch_scratch_) {
      MRL_CHECK(!std::isnan(s))
          << "NaN rejected at the sketch boundary (sampled survivor)";
    }
    buf.AppendSpan(batch_scratch_.data(), batch_scratch_.size());
    if (buf.size() == buf.capacity()) {
      framework_.CommitFull(fill_slot_, fill_weight_, fill_level_);
      filling_ = false;
      MRL_AUDIT(audit::CheckWeightConservation(HeldWeight(), count_));
    }
    values = values.subspan(static_cast<std::size_t>(take));
  }
  if (sampler_.pending_count() > 0) {
    MRL_CHECK(!std::isnan(sampler_.pending_candidate()))
        << "NaN rejected at the sketch boundary (pending block candidate)";
  }
}

void UnknownNSketch::SnapshotInto(RunSnapshot* snap) const {
  snap->partial_sorted.clear();
  snap->tail.clear();
  if (filling_) {
    const Buffer& buf = framework_.buffer(fill_slot_);
    if (!buf.values().empty()) {
      snap->partial_sorted.assign(buf.values().begin(), buf.values().end());
      SortValues(snap->partial_sorted.data(), snap->partial_sorted.size());
    }
  }
  if (sampler_.pending_count() > 0) {
    snap->tail.push_back(sampler_.pending_candidate());
  }
  framework_.FullBufferRunsInto(&snap->runs);
  if (!snap->partial_sorted.empty()) {
    snap->runs.push_back(
        {snap->partial_sorted.data(), snap->partial_sorted.size(),
         fill_weight_});
  }
  if (!snap->tail.empty()) {
    // The candidate is a uniform pick from the pending_count() elements of
    // the open block; weighting it by that count keeps HeldWeight == count.
    snap->runs.push_back({snap->tail.data(), 1, sampler_.pending_count()});
  }
}

UnknownNSketch::RunSnapshot UnknownNSketch::Snapshot() const {
  RunSnapshot snap;
  SnapshotInto(&snap);
  return snap;
}

Result<Value> UnknownNSketch::Query(double phi) const {
  thread_local RunSnapshot snap;
  SnapshotInto(&snap);
  // Output round: everything consumed must be represented, exactly.
  MRL_AUDIT(audit::CheckWeightConservation(TotalRunWeight(snap.runs),
                                           count_));
  return WeightedQuantile(snap.runs, phi);
}

Result<std::vector<Value>> UnknownNSketch::QueryMany(
    const std::vector<double>& phis) const {
  thread_local RunSnapshot snap;
  SnapshotInto(&snap);
  MRL_AUDIT(audit::CheckWeightConservation(TotalRunWeight(snap.runs),
                                           count_));
  return WeightedQuantiles(snap.runs, phis);
}

Result<double> UnknownNSketch::RankOf(Value v) const {
  thread_local RunSnapshot snap;
  SnapshotInto(&snap);
  Result<Weight> rank = WeightedRankOf(snap.runs, v);
  if (!rank.ok()) return rank.status();
  return static_cast<double>(rank.value()) /
         static_cast<double>(TotalRunWeight(snap.runs));
}

QuantileSummary UnknownNSketch::ExportSummary() const {
  QuantileSummary out;
  ExportSummaryInto(&out);
  return out;
}

void UnknownNSketch::ExportSummaryInto(QuantileSummary* out) const {
  thread_local RunSnapshot snap;
  thread_local SummaryScratch scratch;
  SnapshotInto(&snap);
  QuantileSummary::FromRunsInto(snap.runs, &scratch, out);
}

Weight UnknownNSketch::HeldWeight() const {
  thread_local RunSnapshot snap;
  SnapshotInto(&snap);
  return TotalRunWeight(snap.runs);
}

namespace {
constexpr std::uint32_t kCheckpointMagic = 0x4D524C51;  // "MRLQ"
// Version 2 added the sampler's pre-drawn pick offset (docs/checkpoint_format.md).
constexpr std::uint8_t kCheckpointVersion = 2;
constexpr std::uint8_t kKindUnknownN = 1;
}  // namespace

std::vector<std::uint8_t> UnknownNSketch::Serialize() const {
  BinaryWriter writer;
  writer.PutU32(kCheckpointMagic);
  writer.PutU8(kCheckpointVersion);
  writer.PutU8(kKindUnknownN);
  writer.PutI32(params_.b);
  writer.PutU64(params_.k);
  writer.PutI32(params_.h);
  writer.PutDouble(params_.alpha);
  writer.PutU64(params_.leaves_before_sampling);
  writer.PutU64(count_);
  writer.PutU8(filling_ ? 1 : 0);
  writer.PutU32(static_cast<std::uint32_t>(fill_slot_));
  writer.PutU64(fill_weight_);
  writer.PutI32(fill_level_);
  BlockSampler::State sampler = sampler_.SaveState();
  writer.PutU64(sampler.rng.state);
  writer.PutU64(sampler.rng.inc);
  writer.PutU64(sampler.rate);
  writer.PutU64(sampler.seen_in_block);
  writer.PutU64(sampler.pick_offset);
  writer.PutDouble(sampler.candidate);
  framework_.SerializeTo(&writer);
  return writer.Take();
}

Result<UnknownNSketch> UnknownNSketch::Deserialize(
    const std::vector<std::uint8_t>& bytes,
    std::function<int(std::uint64_t)> buffer_allowance) {
  BinaryReader reader(bytes);
  std::uint32_t magic;
  std::uint8_t version, kind;
  if (!reader.GetU32(&magic) || !reader.GetU8(&version) ||
      !reader.GetU8(&kind)) {
    return reader.status();
  }
  if (magic != kCheckpointMagic) {
    return Status::InvalidArgument("not an mrlquant checkpoint");
  }
  if (version != kCheckpointVersion || kind != kKindUnknownN) {
    return Status::InvalidArgument("unsupported checkpoint version or kind");
  }
  UnknownNParams params;
  std::uint64_t k;
  if (!reader.GetI32(&params.b) || !reader.GetU64(&k) ||
      !reader.GetI32(&params.h) || !reader.GetDouble(&params.alpha) ||
      !reader.GetU64(&params.leaves_before_sampling)) {
    return reader.status();
  }
  params.k = static_cast<std::size_t>(k);
  // Bound the pool we are willing to allocate for an (unauthenticated)
  // checkpoint before touching it: 2^28 elements = 2 GiB of doubles.
  if (params.b < 2 || params.b > 10000 || params.k < 1 || params.h < 1 ||
      params.MemoryElements() > (std::uint64_t{1} << 28)) {
    return Status::InvalidArgument("checkpoint parameters out of range");
  }
  std::uint64_t count;
  std::uint8_t filling;
  std::uint32_t fill_slot;
  std::uint64_t fill_weight;
  std::int32_t fill_level;
  BlockSampler::State sampler_state;
  if (!reader.GetU64(&count) || !reader.GetU8(&filling) ||
      !reader.GetU32(&fill_slot) || !reader.GetU64(&fill_weight) ||
      !reader.GetI32(&fill_level) || !reader.GetU64(&sampler_state.rng.state) ||
      !reader.GetU64(&sampler_state.rng.inc) ||
      !reader.GetU64(&sampler_state.rate) ||
      !reader.GetU64(&sampler_state.seen_in_block) ||
      !reader.GetU64(&sampler_state.pick_offset) ||
      !reader.GetDouble(&sampler_state.candidate)) {
    return reader.status();
  }
  if (sampler_state.rate < 1 ||
      sampler_state.seen_in_block >= sampler_state.rate ||
      sampler_state.pick_offset >= sampler_state.rate ||
      fill_slot >= static_cast<std::uint32_t>(params.b) ||
      (filling != 0 && fill_weight < 1)) {
    return Status::InvalidArgument("checkpoint sampler/fill state invalid");
  }

  UnknownNOptions restore_options;
  restore_options.buffer_allowance = std::move(buffer_allowance);
  UnknownNSketch sketch(params, restore_options);
  MRL_RETURN_IF_ERROR(sketch.framework_.DeserializeFrom(&reader));
  if (!reader.AtEnd()) {
    return reader.status().ok()
               ? Status::InvalidArgument("trailing bytes after checkpoint")
               : reader.status();
  }
  sketch.sampler_ = BlockSampler::FromState(sampler_state);
  sketch.count_ = count;
  sketch.filling_ = (filling != 0);
  sketch.fill_slot_ = fill_slot;
  sketch.fill_weight_ = fill_weight;
  sketch.fill_level_ = fill_level;
  // Cross-consistency: the filling flag must agree with the pool.
  const std::size_t num_filling =
      sketch.framework_.CountState(BufferState::kFilling);
  if (sketch.filling_) {
    if (num_filling != 1 ||
        sketch.framework_.buffer(sketch.fill_slot_).state() !=
            BufferState::kFilling) {
      return Status::InvalidArgument(
          "checkpoint fill slot inconsistent with pool");
    }
  } else if (num_filling != 0) {
    return Status::InvalidArgument("checkpoint has an orphan filling buffer");
  }
  // Checkpoint round: the restored sketch must satisfy the same invariants
  // as a live one. These run in every build mode (the input is untrusted),
  // via the same checkers the MRLQUANT_AUDIT hooks use, but reject with a
  // Status instead of aborting.
  Status conserved =
      audit::CheckWeightConservation(sketch.HeldWeight(), sketch.count_);
  if (!conserved.ok()) {
    return Status::InvalidArgument("checkpoint inconsistent: " +
                                   conserved.message());
  }
  Status height = audit::CheckUnknownNHeight(
      sketch.framework_, sketch.params_.h, sketch.sampler_.rate());
  if (!height.ok()) {
    return Status::InvalidArgument("checkpoint inconsistent: " +
                                   height.message());
  }
  return sketch;
}

Status UnknownNSketch::Restore(std::span<const std::uint8_t> bytes) {
  Result<UnknownNSketch> restored =
      Deserialize(std::vector<std::uint8_t>(bytes.begin(), bytes.end()));
  if (!restored.ok()) return restored.status();
  *this = std::move(restored).value();
  return Status::OK();
}

std::vector<ShippedBuffer> UnknownNSketch::FinishAndExport() {
  std::vector<ShippedBuffer> out;
  framework_.CollapseAllFull();
  for (int i = 0; i < framework_.num_buffers(); ++i) {
    const Buffer& buf = framework_.buffer(static_cast<std::size_t>(i));
    if (buf.state() == BufferState::kFull) {
      out.push_back({buf.values(), buf.weight(), /*full=*/true});
    }
  }
  if (filling_) {
    const Buffer& buf = framework_.buffer(fill_slot_);
    if (!buf.values().empty()) {
      out.push_back({buf.values(), fill_weight_, /*full=*/false});
    }
    filling_ = false;
  }
  if (sampler_.pending_count() > 0) {
    out.push_back({{sampler_.pending_candidate()},
                   sampler_.pending_count(),
                   /*full=*/false});
  }
  return out;
}

Status UnknownNSketch::ExportPartial(PartialSummary* out) const {
  out->params = params_;
  out->count = count_;
  out->buffers.clear();
  // Every full buffer travels at its own weight; the coordinator re-enters
  // them at level 0 (Section 6), so skipping the worker's final collapse
  // costs nothing but frame bytes — and keeps this const.
  for (int i = 0; i < framework_.num_buffers(); ++i) {
    const Buffer& buf = framework_.buffer(static_cast<std::size_t>(i));
    if (buf.state() == BufferState::kFull) {
      out->buffers.push_back({buf.values(), buf.weight(), /*full=*/true});
    }
  }
  if (filling_) {
    const Buffer& buf = framework_.buffer(fill_slot_);
    if (!buf.values().empty()) {
      out->buffers.push_back({buf.values(), fill_weight_,
                              buf.values().size() == params_.k});
    }
  }
  if (sampler_.pending_count() > 0) {
    // The candidate is a uniform pick from the open block's
    // pending_count() elements; that weight keeps exported weight == count.
    out->buffers.push_back({{sampler_.pending_candidate()},
                            sampler_.pending_count(),
                            /*full=*/params_.k == 1});
  }
  return Status::OK();
}

}  // namespace mrl
