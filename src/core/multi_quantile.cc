#include "core/multi_quantile.h"

#include <algorithm>
#include <cmath>

namespace mrl {

Result<MultiQuantileSketch> MultiQuantileSketch::Create(
    const Options& options) {
  if (options.num_quantiles == 0) {
    return Status::InvalidArgument("num_quantiles must be >= 1");
  }
  UnknownNOptions inner_options;
  inner_options.eps = options.eps;
  inner_options.delta =
      options.delta / static_cast<double>(options.num_quantiles);
  inner_options.seed = options.seed;
  Result<UnknownNSketch> inner = UnknownNSketch::Create(inner_options);
  if (!inner.ok()) return inner.status();
  return MultiQuantileSketch(std::move(inner).value(), options.num_quantiles);
}

Result<std::vector<Value>> MultiQuantileSketch::QueryMany(
    const std::vector<double>& phis) const {
  if (phis.size() > p_) {
    return Status::InvalidArgument(
        "requested " + std::to_string(phis.size()) +
        " quantiles but the joint guarantee covers only " +
        std::to_string(p_));
  }
  return inner_.QueryMany(phis);
}

Result<PrecomputedQuantiles> PrecomputedQuantiles::Create(
    const Options& options) {
  if (!(options.eps > 0.0) || options.eps >= 1.0) {
    return Status::InvalidArgument("eps must be in (0, 1)");
  }
  // Grid points (2i - 1) * eps / 2; each maintained eps/2-approximately so
  // that nearest-point lookup is eps-approximate overall.
  std::vector<double> grid;
  for (double phi = options.eps / 2.0; phi < 1.0; phi += options.eps) {
    grid.push_back(phi);
  }
  UnknownNOptions inner_options;
  inner_options.eps = options.eps / 2.0;
  inner_options.delta = options.delta / static_cast<double>(grid.size());
  inner_options.seed = options.seed;
  Result<UnknownNSketch> inner = UnknownNSketch::Create(inner_options);
  if (!inner.ok()) return inner.status();
  return PrecomputedQuantiles(std::move(inner).value(), std::move(grid),
                              options.eps);
}

Result<Value> PrecomputedQuantiles::Query(double phi) const {
  if (!(phi > 0.0) || phi > 1.0) {
    return Status::InvalidArgument("phi must be in (0, 1]");
  }
  // Nearest grid point.
  auto it = std::lower_bound(grid_.begin(), grid_.end(), phi);
  double best;
  if (it == grid_.end()) {
    best = grid_.back();
  } else if (it == grid_.begin()) {
    best = grid_.front();
  } else {
    best = (*it - phi < phi - *(it - 1)) ? *it : *(it - 1);
  }
  return inner_.Query(best);
}

}  // namespace mrl
