#include "core/collapse_policy.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/logging.h"

namespace mrl {

void MrlCollapsePolicy::ChooseInto(const std::vector<FullBufferInfo>& full,
                                   Decision* out) const {
  MRL_CHECK_GE(full.size(), 2u);
  // l* = smallest level at which the cumulative count of buffers with
  // level <= l* reaches two (see class comment for why this matches the
  // paper's promotion loop) — i.e. the second-smallest level counting
  // multiplicity, found with one scan instead of a sorted copy.
  int min1 = std::numeric_limits<int>::max();
  int min2 = std::numeric_limits<int>::max();
  for (const FullBufferInfo& f : full) {
    if (f.level < min1) {
      min2 = min1;
      min1 = f.level;
    } else if (f.level < min2) {
      min2 = f.level;
    }
  }
  const int l_star = min2;

  out->indices.clear();
  out->output_level = l_star + 1;
  for (const FullBufferInfo& f : full) {
    if (f.level <= l_star) out->indices.push_back(f.index);
  }
  MRL_CHECK_GE(out->indices.size(), 2u);
}

void MunroPatersonPolicy::ChooseInto(const std::vector<FullBufferInfo>& full,
                                     Decision* out) const {
  MRL_CHECK_GE(full.size(), 2u);
  // The two lowest-level buffers, ties broken by pool order (the same
  // pair a stable sort on level would put first).
  const std::size_t npos = full.size();
  std::size_t first = npos;
  for (std::size_t i = 0; i < full.size(); ++i) {
    if (first == npos || full[i].level < full[first].level) first = i;
  }
  std::size_t second = npos;
  for (std::size_t i = 0; i < full.size(); ++i) {
    if (i == first) continue;
    if (second == npos || full[i].level < full[second].level) second = i;
  }
  out->indices.clear();
  out->indices.push_back(full[first].index);
  out->indices.push_back(full[second].index);
  if (out->indices[0] > out->indices[1]) {
    std::swap(out->indices[0], out->indices[1]);
  }
  out->output_level = std::max(full[first].level, full[second].level) + 1;
}

void CollapseAllPolicy::ChooseInto(const std::vector<FullBufferInfo>& full,
                                   Decision* out) const {
  MRL_CHECK_GE(full.size(), 2u);
  out->indices.clear();
  int max_level = std::numeric_limits<int>::min();
  for (const FullBufferInfo& f : full) {
    out->indices.push_back(f.index);
    max_level = std::max(max_level, f.level);
  }
  out->output_level = max_level + 1;
}

std::unique_ptr<CollapsePolicy> MakeCollapsePolicy(CollapsePolicyKind kind) {
  switch (kind) {
    case CollapsePolicyKind::kMrl:
      return std::make_unique<MrlCollapsePolicy>();
    case CollapsePolicyKind::kMunroPaterson:
      return std::make_unique<MunroPatersonPolicy>();
    case CollapsePolicyKind::kCollapseAll:
      return std::make_unique<CollapseAllPolicy>();
  }
  return nullptr;
}

}  // namespace mrl
