#include "core/collapse_policy.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace mrl {

CollapsePolicy::Decision MrlCollapsePolicy::Choose(
    const std::vector<FullBufferInfo>& full) const {
  MRL_CHECK_GE(full.size(), 2u);
  // l* = smallest level at which the cumulative count of buffers with
  // level <= l* reaches two (see class comment for why this matches the
  // paper's promotion loop).
  std::vector<int> levels;
  levels.reserve(full.size());
  for (const FullBufferInfo& f : full) levels.push_back(f.level);
  std::sort(levels.begin(), levels.end());
  int l_star = levels[1];  // level of the second-lowest buffer

  Decision d;
  d.output_level = l_star + 1;
  for (const FullBufferInfo& f : full) {
    if (f.level <= l_star) d.indices.push_back(f.index);
  }
  MRL_CHECK_GE(d.indices.size(), 2u);
  return d;
}

CollapsePolicy::Decision MunroPatersonPolicy::Choose(
    const std::vector<FullBufferInfo>& full) const {
  MRL_CHECK_GE(full.size(), 2u);
  // The two lowest-level buffers; stable on index so the choice is
  // deterministic.
  std::vector<FullBufferInfo> sorted = full;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const FullBufferInfo& a, const FullBufferInfo& b) {
                     return a.level < b.level;
                   });
  Decision d;
  d.indices = {sorted[0].index, sorted[1].index};
  std::sort(d.indices.begin(), d.indices.end());
  d.output_level = std::max(sorted[0].level, sorted[1].level) + 1;
  return d;
}

CollapsePolicy::Decision CollapseAllPolicy::Choose(
    const std::vector<FullBufferInfo>& full) const {
  MRL_CHECK_GE(full.size(), 2u);
  Decision d;
  int max_level = std::numeric_limits<int>::min();
  for (const FullBufferInfo& f : full) {
    d.indices.push_back(f.index);
    max_level = std::max(max_level, f.level);
  }
  d.output_level = max_level + 1;
  return d;
}

std::unique_ptr<CollapsePolicy> MakeCollapsePolicy(CollapsePolicyKind kind) {
  switch (kind) {
    case CollapsePolicyKind::kMrl:
      return std::make_unique<MrlCollapsePolicy>();
    case CollapsePolicyKind::kMunroPaterson:
      return std::make_unique<MunroPatersonPolicy>();
    case CollapsePolicyKind::kCollapseAll:
      return std::make_unique<CollapseAllPolicy>();
  }
  return nullptr;
}

}  // namespace mrl
