#include "core/parallel.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "core/output.h"
#include "util/audit.h"
#include "util/logging.h"
#include "util/sort.h"

namespace mrl {

namespace {
// The coordinator gets a generous pool so its own tree stays shallow (its
// height with b buffers after P ingested leaves grows like the inverse of
// C(b+h-1, h)); 16 buffers keep it within a few levels for hundreds of
// workers.
constexpr int kMinCoordinatorBuffers = 16;
}  // namespace

Result<UnknownNParams> SolveParallelWorker(const ParallelOptions& options) {
  if (options.num_workers < 1) {
    return Status::InvalidArgument("num_workers must be >= 1");
  }
  if (options.coordinator_extra_height < 0) {
    return Status::InvalidArgument("coordinator_extra_height must be >= 0");
  }
  return SolveUnknownN(options.eps, options.delta,
                       options.coordinator_extra_height);
}

ParallelCoordinator::ParallelCoordinator(const UnknownNParams& params,
                                         std::uint64_t seed)
    : k_(params.k),
      framework_(std::max(params.b, kMinCoordinatorBuffers), params.k,
                 MakeCollapsePolicy(CollapsePolicyKind::kMrl)),
      rng_(seed) {
  staging_.reserve(2 * k_);
}

void ParallelCoordinator::Ingest(std::vector<ShippedBuffer> shipped) {
  for (ShippedBuffer& buf : shipped) {
    if (buf.values.empty()) continue;
    received_weight_ +=
        static_cast<Weight>(buf.values.size()) * buf.weight;
    if (buf.full) {
      MRL_CHECK_EQ(buf.values.size(), k_);
      SortValues(buf.values.data(), buf.values.size());
      framework_.IngestFull(std::move(buf.values), buf.weight, /*level=*/0);
    } else {
      MRL_CHECK_LT(buf.values.size(), k_);
      StagePartial(std::move(buf.values), buf.weight);
    }
  }
  // Ingest round complete: the tree was audited by IngestFull; B0 must be
  // back under k elements with a consistent weight.
  MRL_AUDIT(audit::CheckCoordinatorStaging(staging_.size(), k_,
                                           staging_weight_));
  MRL_AUDIT(audit::CheckFramework(framework_));
}

void ParallelCoordinator::StagePartial(std::vector<Value> values,
                                       Weight weight) {
  if (staging_.empty()) {
    staging_ = std::move(values);
    staging_weight_ = weight;
    PromoteStaging();
    return;
  }
  if (staging_weight_ != weight) {
    // Section 6: shrink the lighter buffer by sampling at the weight ratio,
    // then re-weight it to the heavier weight. Weights here are not always
    // integer multiples (partial blocks), so we use Bernoulli inclusion
    // with p = w_lo / w_hi, which conserves weight in expectation.
    const Weight hi = std::max(staging_weight_, weight);
    const Weight lo = std::min(staging_weight_, weight);
    const double p = static_cast<double>(lo) / static_cast<double>(hi);
    // In-place compaction: same Bernoulli draw per element in the same
    // order as the old copy-out loop, so the RNG sequence and the kept
    // set are bit-identical, with no allocation.
    auto shrink = [&](std::vector<Value>* v) {
      auto keep_end = v->begin();
      for (Value x : *v) {
        if (rng_.Bernoulli(p)) *keep_end++ = x;
      }
      v->erase(keep_end, v->end());
    };
    if (staging_weight_ < weight) {
      shrink(&staging_);
    } else {
      shrink(&values);
    }
    staging_weight_ = hi;
  }
  staging_.insert(staging_.end(), values.begin(), values.end());
  PromoteStaging();
}

void ParallelCoordinator::PromoteStaging() {
  while (staging_.size() >= k_) {
    // Sort the first k in place and copy them into the framework's own
    // storage; the sorted prefix is then erased, so the surviving suffix
    // (and therefore the promoted buffer content) is bit-identical to the
    // old copy-out-then-erase implementation, without the per-promotion
    // allocation.
    const auto prefix_end = staging_.begin() + static_cast<long>(k_);
    SortValues(staging_.data(), k_);
    framework_.IngestFullCopy(staging_.data(), k_, staging_weight_,
                              /*level=*/0);
    staging_.erase(staging_.begin(), prefix_end);
  }
  if (staging_.empty()) staging_weight_ = 0;
}

Result<Value> ParallelCoordinator::Query(double phi) const {
  Result<std::vector<Value>> r = QueryMany({phi});
  if (!r.ok()) return r.status();
  return r.value()[0];
}

Result<std::vector<Value>> ParallelCoordinator::QueryMany(
    const std::vector<double>& phis) const {
  // Thread-local (not member) scratch: concurrent const queries on a
  // quiescent coordinator stay race-free.
  thread_local std::vector<Value> staged_sorted;
  thread_local std::vector<WeightedRun> runs;
  staged_sorted.assign(staging_.begin(), staging_.end());
  SortValues(staged_sorted.data(), staged_sorted.size());
  framework_.FullBufferRunsInto(&runs);
  if (!staged_sorted.empty()) {
    runs.push_back(
        {staged_sorted.data(), staged_sorted.size(), staging_weight_});
  }
  return WeightedQuantiles(runs, phis);
}

Result<std::vector<Value>> ParallelQuantiles(
    const std::vector<std::vector<Value>>& shards,
    const ParallelOptions& options, const std::vector<double>& phis) {
  if (shards.empty()) {
    return Status::InvalidArgument("need at least one shard");
  }
  ParallelOptions opts = options;
  opts.num_workers = static_cast<int>(shards.size());
  Result<UnknownNParams> params = SolveParallelWorker(opts);
  if (!params.ok()) return params.status();

  Random seeder(options.seed);
  std::vector<UnknownNSketch> workers;
  workers.reserve(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    UnknownNOptions worker_options;
    worker_options.params = params.value();
    worker_options.seed = seeder.NextUint64();
    Result<UnknownNSketch> w = UnknownNSketch::Create(worker_options);
    if (!w.ok()) return w.status();
    workers.push_back(std::move(w).value());
  }

  // Workers run independently, one thread each, with no communication
  // until termination (Section 6).
  {
    std::vector<std::thread> threads;
    threads.reserve(shards.size());
    for (std::size_t i = 0; i < shards.size(); ++i) {
      threads.emplace_back(
          [&workers, &shards, i] { workers[i].AddAll(shards[i]); });
    }
    for (std::thread& t : threads) t.join();
  }

  ParallelCoordinator coordinator(params.value(), seeder.NextUint64());
  for (UnknownNSketch& w : workers) {
    coordinator.Ingest(w.FinishAndExport());
  }
  return coordinator.QueryMany(phis);
}

}  // namespace mrl
