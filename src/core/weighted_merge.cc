#include "core/weighted_merge.h"

#include <algorithm>
#include <bit>
#include <limits>

#include "util/logging.h"
#include "util/simd.h"

namespace mrl {
namespace {

constexpr std::size_t kMaxRuns = 1u << 20;  // sanity bound for uint32 nodes

/// Leaf-head refill prefetch distance, in elements. When a run wins it
/// will keep being probed (and, if it keeps winning, consumed) from its
/// cursor forward; prefetching one cache line past the new head (8 doubles
/// = 64 bytes) keeps the next refill's load off the miss path while the
/// tournament replay and target arithmetic execute. Larger distances buy
/// nothing here: a run that stays hot advances linearly (the hardware
/// prefetcher takes over), and a run that loses the next match wasted the
/// fetch — one line is the sweet spot measured in bench/merge_kernels.cc.
constexpr std::size_t kRefillPrefetchDistance = 8;

}  // namespace

Weight TotalRunWeight(const std::vector<WeightedRun>& runs) {
  Weight total = 0;
  for (const WeightedRun& r : runs) {
    total += static_cast<Weight>(r.size) * r.weight;
  }
  return total;
}

void SelectWeightedPositionsInto(const WeightedRun* runs,
                                 std::size_t num_runs, const Weight* targets,
                                 std::size_t num_targets,
                                 MergeScratch* scratch, Value* out) {
  if (num_targets == 0) return;
  MRL_CHECK(scratch != nullptr);
  MRL_CHECK(out != nullptr);
  MRL_CHECK_LE(num_runs, kMaxRuns);

  Weight total = 0;
  for (std::size_t r = 0; r < num_runs; ++r) {
    total += static_cast<Weight>(runs[r].size) * runs[r].weight;
  }
  MRL_CHECK_GE(targets[0], 1u);
  MRL_CHECK_LE(targets[num_targets - 1], total);
  for (std::size_t i = 0; i + 1 < num_targets; ++i) {
    MRL_DCHECK_LE(targets[i], targets[i + 1]);
  }

  // NOLINTNEXTLINE(mrlquant-no-alloc-in-hot-path): MergeScratch arena —
  // cursor/key/sec/loser/winner capacities are warmed by the first merge
  // at each run count and recycled (see core/collapse.h).
  scratch->cursor.assign(num_runs, 0);

  // Each leaf's head is cached as a (key, sec) pair so a tournament match
  // is two loads and a compare, with no cursor/size/data chasing:
  //   key = head value, or +inf once the run is exhausted (or for padding
  //         leaves with id >= num_runs);
  //   sec = run index while live, m + run index once exhausted.
  // Lexicographic (key, sec) order is exactly the order the naive scan's
  // first-wins strict-< pass induces — equal values resolve to the lower
  // run index, exhausted runs sort after every live head (even a live
  // +inf, whose sec stays < m) — so the two kernels select identical
  // elements.
  const std::size_t m = std::bit_ceil(std::max<std::size_t>(num_runs, 1));
  // NOLINTNEXTLINE(mrlquant-no-alloc-in-hot-path): arena
  scratch->key.resize(m);
  // NOLINTNEXTLINE(mrlquant-no-alloc-in-hot-path): arena
  scratch->sec.resize(m);
  Value* key = scratch->key.data();
  std::uint32_t* sec = scratch->sec.data();
  constexpr Value kExhausted = std::numeric_limits<Value>::infinity();
  for (std::size_t i = 0; i < m; ++i) {
    if (i < num_runs && runs[i].size > 0) {
      key[i] = runs[i].data[0];
      sec[i] = static_cast<std::uint32_t>(i);
    } else {
      key[i] = kExhausted;
      sec[i] = static_cast<std::uint32_t>(m + i);
    }
  }
  auto beats = [&](std::uint32_t a, std::uint32_t b) {
    if (key[a] != key[b]) return key[a] < key[b];
    return sec[a] < sec[b];
  };

  // Build the loser tree: m leaves (power of two), internal node i holds
  // the loser of the match between its subtrees, loser[0] the champion.
  // NOLINTNEXTLINE(mrlquant-no-alloc-in-hot-path): arena
  scratch->loser.resize(m);
  // NOLINTNEXTLINE(mrlquant-no-alloc-in-hot-path): arena
  scratch->winner.resize(2 * m);
  std::uint32_t* loser = scratch->loser.data();
  std::uint32_t* winner = scratch->winner.data();
  for (std::size_t i = 0; i < m; ++i) {
    winner[m + i] = static_cast<std::uint32_t>(i);
  }
  for (std::size_t i = m; i-- > 1;) {
    const std::uint32_t a = winner[2 * i];
    const std::uint32_t b = winner[2 * i + 1];
    if (beats(a, b)) {
      winner[i] = a;
      loser[i] = b;
    } else {
      winner[i] = b;
      loser[i] = a;
    }
  }
  loser[0] = m > 1 ? winner[1] : winner[m];

  // Galloping is adaptive (the Timsort heuristic): while runs alternate,
  // each tournament win advances its run by a single element — one O(log b)
  // replay, no challenger computation. Once the same run wins kMinGallop
  // times in a row its data is running well below everyone else's, so we
  // compute the true runner-up (challenger) and consume the whole eligible
  // prefix in one galloped chunk, serving the targets inside it with O(1)
  // arithmetic each and skipping untargeted stretches without touching
  // their data.
  constexpr std::uint32_t kMinGallop = 4;
  std::uint32_t streak = 0;
  std::uint32_t last_win = static_cast<std::uint32_t>(2 * m);  // != any leaf
  Weight cum = 0;     // weight consumed so far
  std::size_t t = 0;  // next target index
  while (t < num_targets) {
    const std::uint32_t win = loser[0];
    MRL_CHECK_LT(sec[win], m) << "targets exceed total weight";
    const WeightedRun& run = runs[win];
    const std::size_t start = scratch->cursor[win];
    if (win == last_win) {
      ++streak;
    } else {
      last_win = win;
      streak = 1;
    }

    if (streak < kMinGallop) {
      // Single-step advance: consume one element (weight `run.weight`).
      cum += run.weight;
      while (t < num_targets && targets[t] <= cum) {
        out[t] = run.data[start];
        ++t;
      }
      const std::size_t next = start + 1;
      scratch->cursor[win] = next;
      if (next < run.size) {
        key[win] = run.data[next];
        simd::PrefetchRead(
            run.data + std::min(run.size - 1, next + kRefillPrefetchDistance));
      } else {
        key[win] = kExhausted;
        sec[win] = static_cast<std::uint32_t>(m + win);
      }
    } else {
      // The challenger (global runner-up) is the best of the losers along
      // the winner's leaf-to-root path: each such loser is the champion of
      // a subtree not containing the winner, and together those subtrees
      // cover every other run.
      std::uint32_t chal = win;  // == win means "no challenger yet"
      Value chal_key = 0;
      std::uint32_t chal_sec = 0;
      for (std::size_t node = (m + win) >> 1; node >= 1; node >>= 1) {
        const std::uint32_t l = loser[node];
        const Value lk = key[l];
        if (chal == win || lk < chal_key ||
            (lk == chal_key && sec[l] < chal_sec)) {
          chal = l;
          chal_key = lk;
          chal_sec = sec[l];
        }
      }

      // Gallop: find the maximal prefix of the winner's run that precedes
      // the challenger's head, by exponential probing then binary search on
      // the bracketed range. At an equal value the lower run index goes
      // first, so equal values stay eligible only when win < chal.
      std::size_t limit;
      if (chal == win || sec[chal] >= m) {
        limit = run.size;
      } else {
        const Value cv = key[chal];
        std::size_t step = 1;
        std::size_t lo = start;  // data[lo] known eligible (tournament winner)
        std::size_t hi = start + 1;
        auto eligible = [&](Value v) { return win < chal ? v <= cv : v < cv; };
        while (hi < run.size && eligible(run.data[hi])) {
          lo = hi;
          hi = std::min(run.size, hi + step);
          step <<= 1;
          // The next exponential probe (and the first binary-search
          // midpoint after the bracket closes) lands near hi + step/2;
          // fetch both candidate lines while the current probe's compare
          // retires. Prefetching past run.size is safe — hints never
          // fault — so the bound check is only cosmetic.
          simd::PrefetchRead(run.data + std::min(run.size - 1, hi));
          simd::PrefetchRead(run.data +
                             std::min(run.size - 1, hi + step / 2));
        }
        const Value* pos =
            win < chal
                ? std::upper_bound(run.data + lo, run.data + hi, cv)
                : std::lower_bound(run.data + lo, run.data + hi, cv);
        limit = static_cast<std::size_t>(pos - run.data);
      }

      // Consume the whole chunk with O(1) arithmetic per selected target;
      // targets falling between chunks are skipped without touching data.
      const Weight chunk_weight =
          static_cast<Weight>(limit - start) * run.weight;
      while (t < num_targets && targets[t] <= cum + chunk_weight) {
        const std::size_t idx =
            start +
            static_cast<std::size_t>((targets[t] - cum - 1) / run.weight);
        out[t] = run.data[idx];
        ++t;
      }
      cum += chunk_weight;
      scratch->cursor[win] = limit;
      if (limit < run.size) {
        key[win] = run.data[limit];
        simd::PrefetchRead(
            run.data +
            std::min(run.size - 1, limit + kRefillPrefetchDistance));
      } else {
        key[win] = kExhausted;
        sec[win] = static_cast<std::uint32_t>(m + win);
      }
      streak = 0;  // the chunk ended because another run's head is due
    }

    // Replay the winner's path with its new head. The contender's (key,
    // sec) ride in locals: writes to loser[] could alias sec[] (same
    // element type), so indexing through cur would force reloads.
    std::uint32_t cur = win;
    Value ck = key[cur];
    std::uint32_t cs = sec[cur];
    for (std::size_t node = (m + win) >> 1; node >= 1; node >>= 1) {
      const std::uint32_t l = loser[node];
      const Value lk = key[l];
      if (lk < ck || (lk == ck && sec[l] < cs)) {
        loser[node] = cur;
        cur = l;
        ck = lk;
        cs = sec[l];
      }
    }
    loser[0] = cur;
  }
}

std::vector<Value> SelectWeightedPositions(
    const std::vector<WeightedRun>& runs, const std::vector<Weight>& targets) {
  std::vector<Value> out(targets.size());
  MergeScratch scratch;
  SelectWeightedPositionsInto(runs.data(), runs.size(), targets.data(),
                              targets.size(), &scratch, out.data());
  return out;
}

std::vector<Value> SelectWeightedPositionsNaive(
    const std::vector<WeightedRun>& runs, const std::vector<Weight>& targets) {
  std::vector<Value> out;
  out.reserve(targets.size());
  if (targets.empty()) return out;

  const Weight total = TotalRunWeight(runs);
  MRL_CHECK_GE(targets.front(), 1u);
  MRL_CHECK_LE(targets.back(), total);
  for (std::size_t i = 0; i + 1 < targets.size(); ++i) {
    MRL_DCHECK_LE(targets[i], targets[i + 1]);
  }

  std::vector<std::size_t> cursor(runs.size(), 0);
  Weight cum = 0;     // weight consumed so far
  std::size_t t = 0;  // next target index
  while (t < targets.size()) {
    // Find the smallest current element across runs (ties by run index).
    std::size_t best = runs.size();
    for (std::size_t r = 0; r < runs.size(); ++r) {
      if (cursor[r] >= runs[r].size) continue;
      if (best == runs.size() ||
          runs[r].data[cursor[r]] < runs[best].data[cursor[best]]) {
        best = r;
      }
    }
    MRL_CHECK_LT(best, runs.size()) << "targets exceed total weight";
    Value v = runs[best].data[cursor[best]];
    cum += runs[best].weight;
    ++cursor[best];
    while (t < targets.size() && targets[t] <= cum) {
      out.push_back(v);
      ++t;
    }
  }
  return out;
}

}  // namespace mrl
