#include "core/weighted_merge.h"

#include "util/logging.h"

namespace mrl {

Weight TotalRunWeight(const std::vector<WeightedRun>& runs) {
  Weight total = 0;
  for (const WeightedRun& r : runs) {
    total += static_cast<Weight>(r.size) * r.weight;
  }
  return total;
}

std::vector<Value> SelectWeightedPositions(
    const std::vector<WeightedRun>& runs, const std::vector<Weight>& targets) {
  std::vector<Value> out;
  out.reserve(targets.size());
  if (targets.empty()) return out;

  const Weight total = TotalRunWeight(runs);
  MRL_CHECK_GE(targets.front(), 1u);
  MRL_CHECK_LE(targets.back(), total);
  for (std::size_t i = 0; i + 1 < targets.size(); ++i) {
    MRL_DCHECK_LE(targets[i], targets[i + 1]);
  }

  std::vector<std::size_t> cursor(runs.size(), 0);
  Weight cum = 0;           // weight consumed so far
  std::size_t t = 0;        // next target index
  while (t < targets.size()) {
    // Find the smallest current element across runs (ties by run index).
    std::size_t best = runs.size();
    for (std::size_t r = 0; r < runs.size(); ++r) {
      if (cursor[r] >= runs[r].size) continue;
      if (best == runs.size() ||
          runs[r].data[cursor[r]] < runs[best].data[cursor[best]]) {
        best = r;
      }
    }
    MRL_CHECK_LT(best, runs.size()) << "targets exceed total weight";
    Value v = runs[best].data[cursor[best]];
    cum += runs[best].weight;
    ++cursor[best];
    while (t < targets.size() && targets[t] <= cum) {
      out.push_back(v);
      ++t;
    }
  }
  return out;
}

}  // namespace mrl
