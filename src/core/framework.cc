#include "core/framework.h"

#include <algorithm>
#include <string>

#include "core/collapse.h"
#include "util/audit.h"
#include "util/logging.h"

namespace mrl {

CollapseFramework::CollapseFramework(int num_buffers,
                                     std::size_t buffer_capacity,
                                     std::unique_ptr<CollapsePolicy> policy)
    : buffer_capacity_(buffer_capacity), policy_(std::move(policy)) {
  MRL_CHECK_GE(num_buffers, 2);
  MRL_CHECK_GE(buffer_capacity, 1u);
  MRL_CHECK(policy_ != nullptr);
  buffers_.reserve(static_cast<std::size_t>(num_buffers));
  for (int i = 0; i < num_buffers; ++i) {
    buffers_.emplace_back(buffer_capacity);
  }
  usable_buffers_ = num_buffers;
}

void CollapseFramework::Reset() {
  for (Buffer& b : buffers_) b.Clear();
  even_low_offset_ = true;
  usable_buffers_ = num_buffers();
  stats_ = TreeStats{};
}

void CollapseFramework::SetUsableBuffers(int m) {
  MRL_CHECK_GE(m, 1);
  MRL_CHECK_LE(m, num_buffers());
  // Shrinking is only legal while the excluded slots are still empty
  // (i.e. before they were ever used); growth is always legal.
  for (std::size_t i = static_cast<std::size_t>(m); i < buffers_.size();
       ++i) {
    MRL_CHECK(buffers_[i].state() == BufferState::kEmpty)
        << "cannot exclude non-empty slot " << i;
  }
  usable_buffers_ = m;
}

std::size_t CollapseFramework::AcquireEmptySlot() {
  const std::size_t usable = static_cast<std::size_t>(usable_buffers_);
  for (std::size_t i = 0; i < usable; ++i) {
    if (buffers_[i].state() == BufferState::kEmpty) return i;
  }
  MRL_CHECK_EQ(CountState(BufferState::kFilling), 0u)
      << "cannot collapse while a buffer is being filled";
  CollapseOnce();
  for (std::size_t i = 0; i < usable; ++i) {
    if (buffers_[i].state() == BufferState::kEmpty) return i;
  }
  MRL_CHECK(false) << "Collapse freed no buffer";
  return 0;
}

void CollapseFramework::CollapseOnce() {
#ifdef MRLQUANT_AUDIT
  const Weight full_weight_before = FullWeight();
#endif
  FullBuffersInto(&scratch_.full);
  policy_->ChooseInto(scratch_.full, &scratch_.decision);
  const CollapsePolicy::Decision& d = scratch_.decision;
  MRL_CHECK_GE(d.indices.size(), 2u);
  scratch_.inputs.clear();
  for (std::size_t idx : d.indices) {
    MRL_CHECK_LT(idx, buffers_.size());
    scratch_.inputs.push_back(&buffers_[idx]);
  }
  Weight w = Collapse(scratch_.inputs, /*output_slot=*/0, d.output_level,
                      &even_low_offset_, &scratch_);
  if (!alternation_enabled_) even_low_offset_ = true;
  ++stats_.num_collapses;
  stats_.sum_collapse_weights += w;
  stats_.max_level = std::max(stats_.max_level, d.output_level);
#ifdef MRLQUANT_AUDIT
  MRL_AUDIT(audit::CheckCollapseConservation(full_weight_before,
                                             FullWeight()));
#endif
  MRL_AUDIT(audit::CheckFramework(*this));
}

void CollapseFramework::CommitFull(std::size_t slot, Weight weight,
                                   int level) {
  MRL_CHECK_LT(slot, buffers_.size());
  buffers_[slot].MarkFull(weight, level);
  ++stats_.leaves_created;
  stats_.max_level = std::max(stats_.max_level, level);
  MRL_AUDIT(audit::CheckFramework(*this));
}

void CollapseFramework::IngestFull(std::vector<Value> sorted, Weight weight,
                                   int level) {
  std::size_t slot = AcquireEmptySlot();
  buffers_[slot].AssignSorted(std::move(sorted), weight, level);
  ++stats_.leaves_created;
  stats_.max_level = std::max(stats_.max_level, level);
  MRL_AUDIT(audit::CheckFramework(*this));
}

void CollapseFramework::IngestFullCopy(const Value* sorted, std::size_t n,
                                       Weight weight, int level) {
  std::size_t slot = AcquireEmptySlot();
  buffers_[slot].AssignSortedCopy(sorted, n, weight, level);
  ++stats_.leaves_created;
  stats_.max_level = std::max(stats_.max_level, level);
  MRL_AUDIT(audit::CheckFramework(*this));
}

bool CollapseFramework::CollapseAllFull() {
  FullBuffersInto(&scratch_.full);
  if (scratch_.full.size() < 2) return false;
  scratch_.inputs.clear();
  int max_level = 0;
  for (const FullBufferInfo& f : scratch_.full) {
    scratch_.inputs.push_back(&buffers_[f.index]);
    max_level = std::max(max_level, f.level);
  }
  Weight w = Collapse(scratch_.inputs, /*output_slot=*/0, max_level + 1,
                      &even_low_offset_, &scratch_);
  if (!alternation_enabled_) even_low_offset_ = true;
  ++stats_.num_collapses;
  stats_.sum_collapse_weights += w;
  stats_.max_level = std::max(stats_.max_level, max_level + 1);
  MRL_AUDIT(audit::CheckFramework(*this));
  return true;
}

std::size_t CollapseFramework::CountState(BufferState s) const {
  std::size_t n = 0;
  for (const Buffer& b : buffers_) {
    if (b.state() == s) ++n;
  }
  return n;
}

std::vector<FullBufferInfo> CollapseFramework::FullBuffers() const {
  std::vector<FullBufferInfo> out;
  FullBuffersInto(&out);
  return out;
}

void CollapseFramework::FullBuffersInto(
    std::vector<FullBufferInfo>* out) const {
  out->clear();
  for (std::size_t i = 0; i < buffers_.size(); ++i) {
    if (buffers_[i].state() == BufferState::kFull) {
      out->push_back({i, buffers_[i].level(), buffers_[i].weight()});
    }
  }
}

std::vector<WeightedRun> CollapseFramework::FullBufferRuns() const {
  std::vector<WeightedRun> runs;
  FullBufferRunsInto(&runs);
  return runs;
}

void CollapseFramework::FullBufferRunsInto(
    std::vector<WeightedRun>* out) const {
  out->clear();
  for (const Buffer& b : buffers_) {
    if (b.state() == BufferState::kFull) {
      out->push_back({b.values().data(), b.size(), b.weight()});
    }
  }
}

void CollapseFramework::SerializeTo(BinaryWriter* writer) const {
  writer->PutU8(even_low_offset_ ? 1 : 0);
  writer->PutI32(usable_buffers_);
  writer->PutU64(stats_.num_collapses);
  writer->PutU64(stats_.sum_collapse_weights);
  writer->PutU64(stats_.leaves_created);
  writer->PutI32(stats_.max_level);
  writer->PutU32(static_cast<std::uint32_t>(buffers_.size()));
  for (const Buffer& b : buffers_) {
    writer->PutU8(static_cast<std::uint8_t>(b.state()));
    writer->PutU64(b.weight());
    writer->PutI32(b.level());
    writer->PutValues(b.values());
  }
}

Status CollapseFramework::DeserializeFrom(BinaryReader* reader) {
  std::uint8_t even_low;
  std::int32_t usable;
  TreeStats stats;
  std::uint32_t pool_size;
  if (!reader->GetU8(&even_low) || !reader->GetI32(&usable) ||
      !reader->GetU64(&stats.num_collapses) ||
      !reader->GetU64(&stats.sum_collapse_weights) ||
      !reader->GetU64(&stats.leaves_created) ||
      !reader->GetI32(&stats.max_level) || !reader->GetU32(&pool_size)) {
    return reader->status();
  }
  if (pool_size != buffers_.size()) {
    return Status::InvalidArgument(
        "checkpoint pool size does not match this framework");
  }
  if (usable < 1 || usable > num_buffers()) {
    return Status::InvalidArgument("checkpoint usable_buffers out of range");
  }
  std::vector<Buffer> restored;
  restored.reserve(buffers_.size());
  for (std::uint32_t i = 0; i < pool_size; ++i) {
    std::uint8_t state_byte;
    std::uint64_t weight;
    std::int32_t level;
    std::vector<Value> values;
    if (!reader->GetU8(&state_byte) || !reader->GetU64(&weight) ||
        !reader->GetI32(&level) || !reader->GetValues(&values)) {
      return reader->status();
    }
    Buffer buf(buffer_capacity_);
    switch (state_byte) {
      case static_cast<std::uint8_t>(BufferState::kEmpty):
        if (!values.empty()) {
          return Status::InvalidArgument("empty buffer with values");
        }
        break;
      case static_cast<std::uint8_t>(BufferState::kFilling):
        if (values.size() >= buffer_capacity_) {
          return Status::InvalidArgument("filling buffer already full");
        }
        buf.StartFill();
        for (Value v : values) buf.Append(v);
        break;
      case static_cast<std::uint8_t>(BufferState::kFull):
        if (values.size() != buffer_capacity_ || weight < 1 || level < 0 ||
            !std::is_sorted(values.begin(), values.end())) {
          return Status::InvalidArgument("malformed full buffer");
        }
        buf.AssignSorted(std::move(values), weight, level);
        break;
      default:
        return Status::InvalidArgument("unknown buffer state");
    }
    restored.push_back(std::move(buf));
  }
  buffers_ = std::move(restored);
  even_low_offset_ = (even_low != 0);
  usable_buffers_ = usable;
  stats_ = stats;
  // A checkpoint is untrusted input: re-derive the whole-pool legality via
  // the invariant auditor in every build mode, rejecting (rather than
  // crashing on) states no legal operation sequence can produce — e.g. a
  // non-empty buffer beyond usable_buffers, two kFilling buffers, or a
  // buffer level above the recorded tree height.
  Status legal = audit::CheckFramework(*this);
  if (!legal.ok()) {
    return Status::InvalidArgument("checkpoint pool illegal: " +
                                   legal.message());
  }
  return Status::OK();
}

Weight CollapseFramework::FullWeight() const {
  Weight total = 0;
  for (const Buffer& b : buffers_) {
    if (b.state() == BufferState::kFull) total += b.TotalWeight();
  }
  return total;
}

std::string CollapseFramework::DebugString() const {
  std::string out = "CollapseFramework{b=" + std::to_string(num_buffers()) +
                    " k=" + std::to_string(buffer_capacity_) +
                    " usable=" + std::to_string(usable_buffers_) +
                    " collapses=" + std::to_string(stats_.num_collapses) +
                    " W=" + std::to_string(stats_.sum_collapse_weights) +
                    " leaves=" + std::to_string(stats_.leaves_created) +
                    " height=" + std::to_string(stats_.max_level) + "\n";
  for (std::size_t i = 0; i < buffers_.size(); ++i) {
    const Buffer& b = buffers_[i];
    out += "  [" + std::to_string(i) + "] " + BufferStateName(b.state());
    if (b.state() != BufferState::kEmpty) {
      out += " level=" + std::to_string(b.level()) +
             " weight=" + std::to_string(b.weight()) +
             " size=" + std::to_string(b.size()) + "/" +
             std::to_string(b.capacity());
    }
    out += "\n";
  }
  out += "}";
  return out;
}

}  // namespace mrl
