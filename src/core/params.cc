#include "core/params.h"

#include <cmath>
#include <limits>

#include "util/logging.h"
#include "util/math.h"

namespace mrl {

namespace {

constexpr int kMaxBuffers = 50;
constexpr int kMaxHeight = 50;
constexpr std::uint64_t kMaxK = std::uint64_t{1} << 40;

Status ValidateEpsDelta(double eps, double delta) {
  if (!(eps > 0.0) || eps >= 1.0) {
    return Status::InvalidArgument("eps must be in (0, 1), got " +
                                   std::to_string(eps));
  }
  if (!(delta > 0.0) || delta >= 1.0) {
    return Status::InvalidArgument("delta must be in (0, 1), got " +
                                   std::to_string(delta));
  }
  return Status::OK();
}

/// Leaf-capacity of the collapse tree with b buffers grown to height h
/// before sampling; the paper's L_d (Section 4.5).
std::uint64_t LeavesLd(int b, int h) {
  return SaturatingBinomial(static_cast<std::uint64_t>(b + h - 2),
                            static_cast<std::uint64_t>(h - 1));
}

/// The paper's L_s: leaves consumed per level once sampling is active.
std::uint64_t LeavesLs(int b, int h) {
  if (b + h - 3 < h - 1) return 1;
  return SaturatingBinomial(static_cast<std::uint64_t>(b + h - 3),
                            static_cast<std::uint64_t>(h - 1));
}

}  // namespace

Result<UnknownNParams> SolveUnknownN(double eps, double delta,
                                     int extra_height) {
  MRL_RETURN_IF_ERROR(ValidateEpsDelta(eps, delta));
  if (extra_height < 0) {
    return Status::InvalidArgument("extra_height must be >= 0");
  }

  // Derivation of the constants (DESIGN.md §2, "Substitutions"):
  //
  // Sampling (Eq. 1). Lemma 2 bounds each tail by
  //   exp(-2 (1-a)^2 eps^2 (sum n_i)^2 / sum n_i^2)
  // and (sum n_i)^2 / sum n_i^2 >= min(L_d k, (8/3) L_s k) over all tree
  // heights H. Union over both tails gives the factor 2 inside the log:
  //   min(L_d k, (8/3) L_s k) >= ln(2/delta) / (2 (1-a)^2 eps^2).
  //
  // Tree (Eq. 2 / Eq. 3). Lemma 4/5 bound the weighted rank error of the
  // tree by roughly (height+1)/2 per consumed element; we use the
  // conservative uniform form (h + 1)/2 <= a*eps*k (the paper subtracts a
  // policy-dependent c >= 0 from h; dropping it can only increase k).
  UnknownNParams best;
  std::uint64_t best_memory = std::numeric_limits<std::uint64_t>::max();

  const double log_term = std::log(2.0 / delta);
  for (int b = 2; b <= kMaxBuffers; ++b) {
    for (int h = 1; h <= kMaxHeight; ++h) {
      const std::uint64_t ld = LeavesLd(b, h);
      const std::uint64_t ls = LeavesLs(b, h);
      const double leaf_min =
          std::min(static_cast<double>(ld), (8.0 / 3.0) *
                                                static_cast<double>(ls));
      // k >= c1 / (1-a)^2  and  k >= c2 / a.
      const double c1 = log_term / (2.0 * eps * eps * leaf_min);
      const double c2 =
          static_cast<double>(h + extra_height + 1) / (2.0 * eps);
      // The max of the two lower bounds is minimized where they cross:
      // c2 a^2 - (2 c2 + c1) a + c2 = 0; smaller root, computed stably.
      const double bq = 2.0 * c2 + c1;
      const double disc = bq * bq - 4.0 * c2 * c2;
      MRL_DCHECK_GE(disc, 0.0);
      const double alpha = 2.0 * c2 / (bq + std::sqrt(disc));
      MRL_DCHECK(alpha > 0.0 && alpha < 1.0);
      const double k_real = std::max(c1 / ((1.0 - alpha) * (1.0 - alpha)),
                                     c2 / alpha);
      if (!(k_real < static_cast<double>(kMaxK))) continue;
      const std::uint64_t k = static_cast<std::uint64_t>(std::ceil(k_real));
      const std::uint64_t memory = static_cast<std::uint64_t>(b) * k;
      if (memory < best_memory) {
        best_memory = memory;
        best.b = b;
        best.k = static_cast<std::size_t>(k);
        best.h = h;
        best.alpha = alpha;
        best.leaves_before_sampling = ld;
      }
    }
  }
  if (best_memory == std::numeric_limits<std::uint64_t>::max()) {
    return Status::ResourceExhausted(
        "no feasible (b, k, h) within search bounds");
  }
  return best;
}

Result<std::uint64_t> UnknownNMemoryElements(double eps, double delta) {
  Result<UnknownNParams> p = SolveUnknownN(eps, delta);
  if (!p.ok()) return p.status();
  return p.value().MemoryElements();
}

Result<KnownNParams> SolveKnownN(double eps, double delta, std::uint64_t n) {
  MRL_RETURN_IF_ERROR(ValidateEpsDelta(eps, delta));
  if (n == 0) {
    return Status::InvalidArgument("n must be >= 1");
  }

  KnownNParams best;
  std::uint64_t best_memory = std::numeric_limits<std::uint64_t>::max();

  // Sizes the deterministic tree so that leaf capacity covers `count`
  // elements with tree guarantee `tree_eps`; minimizes b*k.
  auto solve_deterministic = [&](double tree_eps, std::uint64_t count,
                                 KnownNParams* out) -> bool {
    std::uint64_t local_best = std::numeric_limits<std::uint64_t>::max();
    for (int b = 2; b <= kMaxBuffers; ++b) {
      for (int h = 1; h <= kMaxHeight; ++h) {
        const std::uint64_t capacity_leaves = LeavesLd(b, h);
        const double k_tree =
            static_cast<double>(h + 1) / (2.0 * tree_eps);
        std::uint64_t k = static_cast<std::uint64_t>(std::ceil(k_tree));
        if (k == 0) k = 1;
        // Leaf capacity: capacity_leaves * k >= count.
        const std::uint64_t k_capacity = CeilDiv(count, capacity_leaves);
        if (k_capacity > k) k = k_capacity;
        if (k > kMaxK) continue;
        const std::uint64_t memory = static_cast<std::uint64_t>(b) * k;
        if (memory < local_best) {
          local_best = memory;
          out->b = b;
          out->k = static_cast<std::size_t>(k);
          out->h = h;
        }
      }
    }
    return local_best != std::numeric_limits<std::uint64_t>::max();
  };

  // Option (a): no sampling; the tree consumes all n elements.
  {
    KnownNParams cand;
    cand.rate = 1;
    cand.alpha = 1.0;
    cand.n = n;
    if (solve_deterministic(eps, n, &cand) &&
        cand.MemoryElements() < best_memory) {
      best = cand;
      best_memory = cand.MemoryElements();
    }
  }

  // Option (b): uniform sampling at fixed rate r = floor(n / s), where the
  // sample of size s = ln(2/delta) / (2 (1-a)^2 eps^2) absorbs (1-a)*eps of
  // the budget and the tree runs at a*eps (MRL98's randomized variant).
  for (int ai = 1; ai <= 19; ++ai) {
    const double alpha = 0.05 * ai;
    const double s_real = std::log(2.0 / delta) /
                          (2.0 * (1.0 - alpha) * (1.0 - alpha) * eps * eps);
    if (!(s_real < static_cast<double>(n))) continue;  // sampling pointless
    const std::uint64_t s = static_cast<std::uint64_t>(std::ceil(s_real));
    const Weight rate = n / s;  // r >= 1; sample size n/r >= s
    if (rate < 2) continue;
    KnownNParams cand;
    cand.rate = rate;
    cand.alpha = alpha;
    cand.n = n;
    const std::uint64_t consumed = CeilDiv(n, rate);
    if (!solve_deterministic(alpha * eps, consumed, &cand)) continue;
    if (cand.MemoryElements() < best_memory) {
      best = cand;
      best_memory = cand.MemoryElements();
    }
  }

  if (best_memory == std::numeric_limits<std::uint64_t>::max()) {
    return Status::ResourceExhausted("no feasible known-N parameters");
  }
  return best;
}

Result<std::uint64_t> KnownNMemoryElements(double eps, double delta,
                                           std::uint64_t n) {
  Result<KnownNParams> p = SolveKnownN(eps, delta, n);
  if (!p.ok()) return p.status();
  return p.value().MemoryElements();
}

std::uint64_t ReservoirMemoryElements(double eps, double delta) {
  return HoeffdingSampleSize(eps, delta);
}

Result<std::uint64_t> MultiQuantileMemoryElements(double eps, double delta,
                                                  std::uint64_t p) {
  if (p == 0) {
    return Status::InvalidArgument("p must be >= 1");
  }
  return UnknownNMemoryElements(eps, delta / static_cast<double>(p));
}

Result<std::uint64_t> PrecomputedGridMemoryElements(double eps, double delta) {
  // 2/eps grid points, each eps/2-approximate: eps -> eps/2 and
  // delta -> delta * eps / 2 by the union bound.
  return UnknownNMemoryElements(eps / 2.0, delta * eps / 2.0);
}

}  // namespace mrl
