#ifndef MRLQUANT_CORE_SUMMARY_H_
#define MRLQUANT_CORE_SUMMARY_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/weighted_merge.h"
#include "util/serde.h"
#include "util/status.h"
#include "util/types.h"

namespace mrl {

/// Reusable staging area for summary construction: the flattened
/// (value, weight) pairs awaiting sort. Recycled across calls so repeated
/// exports/merges reuse one allocation.
struct SummaryScratch {
  std::vector<std::pair<Value, Weight>> weighted;
};

/// An immutable snapshot of a sketch's distribution estimate: distinct
/// values ascending, each with the cumulative weight of everything <= it.
/// This is the "synopsis data structure" view (Section 1.5, [GM98]): a
/// self-contained object that a query optimizer can version, cache, ship
/// between nodes, and query in O(log m) — decoupled from the live sketch,
/// which keeps streaming.
///
/// Obtained from UnknownNSketch::ExportSummary() (and the known-N
/// equivalent); both quantile and rank queries inherit the sketch's
/// eps-approximation guarantee at the moment of export.
class QuantileSummary {
 public:
  struct Entry {
    Value value;
    Weight cumulative_weight;  ///< weight of all elements <= value
  };

  /// Builds a summary from weighted runs (each sorted ascending). Equal
  /// values are coalesced.
  static QuantileSummary FromRuns(const std::vector<WeightedRun>& runs);

  /// As FromRuns, but writes into *out and stages through *scratch so both
  /// reuse their capacity across calls.
  static void FromRunsInto(const std::vector<WeightedRun>& runs,
                           SummaryScratch* scratch, QuantileSummary* out);

  /// Merges summaries over disjoint data into one over the union: the
  /// weighted multisets simply add, so rank errors add too — merging P
  /// shard summaries that are each eps-approximate for their shard yields
  /// an eps-approximate summary for the union. This is how sharded scans
  /// combine results when shipping a summary is preferable to the Section
  /// 6 buffer protocol.
  static QuantileSummary Merge(const std::vector<const QuantileSummary*>& parts);

  /// As Merge, into caller-provided scratch and output (capacity reused).
  static void MergeInto(const std::vector<const QuantileSummary*>& parts,
                        SummaryScratch* scratch, QuantileSummary* out);

  QuantileSummary() = default;

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  Weight total_weight() const {
    return entries_.empty() ? 0 : entries_.back().cumulative_weight;
  }
  const std::vector<Entry>& entries() const { return entries_; }

  /// The weighted phi-quantile, phi in (0, 1]. O(log size).
  Result<Value> Quantile(double phi) const;

  /// Normalized rank of v: (weight of elements <= v) / total, in [0, 1].
  Result<double> Rank(Value v) const;

  /// Evenly spaced CDF points (value, cumulative fraction) for plotting or
  /// histogram export; `points` >= 2.
  Result<std::vector<std::pair<Value, double>>> CdfPoints(
      std::size_t points) const;

  /// Checkpoint encoding (appended to `writer`).
  void SerializeTo(BinaryWriter* writer) const;

  /// Decodes a summary written by SerializeTo; validates monotonicity.
  static Result<QuantileSummary> DeserializeFrom(BinaryReader* reader);

 private:
  explicit QuantileSummary(std::vector<Entry> entries)
      : entries_(std::move(entries)) {}

  /// Sorts scratch->weighted by value and re-accumulates it into *entries
  /// (cleared first), coalescing duplicates.
  static void AccumulateInto(SummaryScratch* scratch,
                             std::vector<Entry>* entries);

  std::vector<Entry> entries_;
};

}  // namespace mrl

#endif  // MRLQUANT_CORE_SUMMARY_H_
