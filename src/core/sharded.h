#ifndef MRLQUANT_CORE_SHARDED_H_
#define MRLQUANT_CORE_SHARDED_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/estimator.h"
#include "core/summary.h"
#include "core/unknown_n.h"
#include "util/status.h"
#include "util/types.h"

namespace mrl {

/// The production deployment shape for a parallel scan: one unknown-N
/// sketch per shard (worker thread / partition), fed independently, merged
/// at query time via summary addition. Because merging weighted multisets
/// adds rank errors proportionally, the union-level answers carry the same
/// eps as the per-shard sketches — no coordinator tree, no extra height
/// budget (contrast with the Section 6 protocol, which exists to bound
/// *communication*; this class optimizes for shared-memory scans where
/// shipping is free).
///
/// Thread contract: shard s is single-writer; Add(s, v) may run
/// concurrently across different shards with no synchronization. Queries
/// must not run concurrently with Adds (take a scan barrier first) — the
/// same external-synchronization contract as mainstream sketch libraries.
///
/// The QuantileEstimator overrides (shardless Add/AddBatch) route elements
/// round-robin across shards from an internal cursor and require external
/// synchronization like any single-threaded backend; the shard-indexed
/// entry points below keep the concurrent single-writer-per-shard contract.
class ShardedQuantileSketch : public QuantileEstimator {
 public:
  struct Options {
    double eps = 0.01;
    double delta = 1e-4;
    int num_shards = 4;
    std::uint64_t seed = 1;
  };

  static Result<ShardedQuantileSketch> Create(const Options& options);

  /// Assembles a sharded sketch from independently restored shards (the
  /// cross-process recovery path: each shard round-trips through
  /// UnknownNSketch::Serialize/Deserialize). Requires at least one shard;
  /// all shards must share (b, k) so the merged guarantee is uniform.
  static Result<ShardedQuantileSketch> FromShards(
      std::vector<UnknownNSketch> shards);

  ShardedQuantileSketch(ShardedQuantileSketch&&) = default;
  ShardedQuantileSketch& operator=(ShardedQuantileSketch&&) = default;

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Routes one element to shard `shard` (0-based).
  ///
  /// Contract (release-mode, not just debug): `shard` must be in
  /// [0, num_shards()). An out-of-range index aborts with a message — a
  /// mis-routed write under the concurrent single-writer contract would
  /// otherwise corrupt a foreign shard silently. The check is a single
  /// unsigned comparison on the hot path.
  void Add(int shard, Value v);

  /// Routes a whole span to shard `shard` via the batch ingestion path;
  /// state-identical to per-element Add under the same seed. The
  /// single-writer-per-shard thread contract is unchanged, and the same
  /// release-mode shard-range contract as Add applies.
  void AddBatch(int shard, std::span<const Value> values);

  /// QuantileEstimator ingestion: routes each element to the next shard in
  /// round-robin order from an internal cursor (the serving registry's
  /// distribution policy). AddBatch gathers each shard's strided slice and
  /// feeds it through that shard's batch fast path, so it is bit-identical
  /// to calling Add per element while keeping per-shard batch throughput.
  void Add(Value v) override;
  void AddBatch(std::span<const Value> values) override;

  /// Elements consumed across all shards.
  std::uint64_t count() const override;

  /// The phi-quantile of the union of all shards.
  Result<Value> Query(double phi) const override;

  /// Batch form over the merged summary (one merge for all phis).
  Result<std::vector<Value>> QueryMany(
      const std::vector<double>& phis) const override;

  /// Merged summary over all shards (also the hand-off format for
  /// cross-process aggregation).
  QuantileSummary MergedSummary() const;

  /// As MergedSummary, into *out (capacity reused). Query/QueryMany route
  /// through this with thread-local scratch, so each call builds the
  /// merged summary exactly once and reuses prior allocations.
  void MergedSummaryInto(QuantileSummary* out) const;

  /// Direct access to a shard's sketch (e.g. for per-shard statistics).
  const UnknownNSketch& shard(int s) const {
    return shards_[static_cast<std::size_t>(s)];
  }

  std::uint64_t MemoryElements() const override;
  std::string name() const override { return "mrl99_sharded"; }

  /// Returns every shard to its freshly constructed state without
  /// releasing any buffer pool (see UnknownNSketch::Reset). Reset() replays
  /// the construction seed; Reset(seed) re-derives the per-shard seeds from
  /// `seed` exactly as Create would, so serialized per-shard state is
  /// byte-identical to a fresh Create with that seed. The round-robin
  /// cursor returns to shard 0 either way.
  void Reset() override;
  void Reset(std::uint64_t seed) override;

  /// Checkpointing: a framed blob (docs/checkpoint_format.md, kind 4)
  /// carrying the top seed, the round-robin cursor and every shard's own
  /// checkpoint, so a restored sketch continues routing exactly where the
  /// original stopped.
  bool SupportsCheckpoint() const override { return true; }
  std::vector<std::uint8_t> Serialize() const override;
  Status Restore(std::span<const std::uint8_t> bytes) override;

  /// Concatenation of every shard's non-destructive export (all shards
  /// share (b, k), so the buffers merge under one parameter set). Queries
  /// must not run concurrently with Adds, as usual.
  bool SupportsPartialExport() const override { return true; }
  Status ExportPartial(PartialSummary* out) const override;

 private:
  explicit ShardedQuantileSketch(std::vector<UnknownNSketch> shards,
                                 std::uint64_t seed = 1)
      : shards_(std::move(shards)), seed_(seed) {}

  /// Release-mode shard-range contract shared by Add/AddBatch: one branch
  /// (the unsigned cast folds the negative check in), aborting via the
  /// cold out-of-line path on violation.
  void CheckShardIndex(int shard) const {
    if (static_cast<std::size_t>(static_cast<unsigned int>(shard)) >=
        shards_.size()) [[unlikely]] {
      ShardIndexFatal(shard);
    }
  }

  [[noreturn]] void ShardIndexFatal(int shard) const;

  std::vector<UnknownNSketch> shards_;
  std::uint64_t seed_ = 1;  ///< construction seed, replayed by Reset()
  /// Next shard the interface-level Add routes to (round-robin).
  std::uint64_t rr_cursor_ = 0;
  /// Strided-gather staging for the interface-level AddBatch; holds at most
  /// one batch and is reused across calls (not sketch state).
  std::vector<Value> batch_scratch_;
};

}  // namespace mrl

#endif  // MRLQUANT_CORE_SHARDED_H_
