#include "core/det_reservoir.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/logging.h"
#include "util/math.h"
#include "util/serde.h"
#include "util/sort.h"

namespace mrl {

namespace {

/// At skip degree 32 only hash == 0 survives (1 in 2^32); raising further
/// would be meaningless for a 32-bit hash.
constexpr std::uint8_t kMaxSkipDegree = 32;

constexpr std::uint32_t kCheckpointMagic = 0x4D524C51;  // "MRLQ"
constexpr std::uint8_t kCheckpointVersion = 2;
constexpr std::uint8_t kKindDetReservoir = 6;

constexpr std::uint64_t kMaxCapacity = std::uint64_t{1} << 28;

Status ValidateEpsDelta(double eps, double delta) {
  if (!(eps > 0.0) || eps >= 1.0) {
    return Status::InvalidArgument("eps must be in (0, 1)");
  }
  if (!(delta > 0.0) || delta >= 1.0) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  return Status::OK();
}

}  // namespace

std::uint32_t DeterministicReservoirSketch::HashPosition(std::uint64_t seed,
                                                         std::uint64_t pos) {
  // SplitMix64 finalizer over the golden-ratio counter offset by the seed:
  // full-avalanche even for sequential positions.
  std::uint64_t z = seed + (pos + 1) * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return static_cast<std::uint32_t>(z);
}

Result<DeterministicReservoirSketch> DeterministicReservoirSketch::Create(
    const DetReservoirOptions& options) {
  MRL_RETURN_IF_ERROR(ValidateEpsDelta(options.eps, options.delta));
  std::uint64_t capacity = options.capacity;
  if (capacity == 0) {
    capacity = HoeffdingSampleSize(options.eps, options.delta);
  }
  if (capacity < 1 || capacity > kMaxCapacity) {
    return Status::InvalidArgument("capacity out of range");
  }
  return DeterministicReservoirSketch(options, capacity);
}

DeterministicReservoirSketch::DeterministicReservoirSketch(
    const DetReservoirOptions& options, std::uint64_t capacity)
    : options_(options), capacity_(capacity) {
  values_.reserve(static_cast<std::size_t>(capacity));
  hashes_.reserve(static_cast<std::size_t>(capacity));
}

void DeterministicReservoirSketch::Add(Value v) {
  MRL_CHECK(!std::isnan(v)) << "NaN rejected at the sketch boundary: the "
                               "sample order is undefined over NaN";
  const std::uint32_t hash = HashPosition(options_.seed, count_);
  ++count_;
  if (!Good(hash)) return;
  if (values_.size() >= capacity_) ThinOut();
  if (!Good(hash)) return;  // the raised skip degree may exclude it now
  values_.push_back(v);
  hashes_.push_back(hash);
}

void DeterministicReservoirSketch::ThinOut() {
  while (values_.size() >= capacity_ && skip_degree_ < kMaxSkipDegree) {
    ++skip_degree_;
    std::size_t out = 0;
    for (std::size_t i = 0; i < values_.size(); ++i) {
      if (Good(hashes_[i])) {
        values_[out] = values_[i];
        hashes_[out] = hashes_[i];
        ++out;
      }
    }
    values_.resize(out);
    hashes_.resize(out);
  }
}

Result<Value> DeterministicReservoirSketch::Query(double phi) const {
  if (!(phi > 0.0) || phi > 1.0) {
    return Status::InvalidArgument("phi must be in (0, 1]");
  }
  if (values_.empty()) {
    return Status::FailedPrecondition("no elements consumed yet");
  }
  std::vector<Value> sorted = values_;
  SortValues(sorted.data(), sorted.size());
  std::size_t pos = static_cast<std::size_t>(
      std::ceil(phi * static_cast<double>(sorted.size())));
  if (pos < 1) pos = 1;
  if (pos > sorted.size()) pos = sorted.size();
  return sorted[pos - 1];
}

void DeterministicReservoirSketch::Reset(std::uint64_t seed) {
  options_.seed = seed;
  skip_degree_ = 0;
  count_ = 0;
  values_.clear();
  hashes_.clear();
}

Status DeterministicReservoirSketch::Merge(const QuantileEstimator& other) {
  const DeterministicReservoirSketch* peer =
      dynamic_cast<const DeterministicReservoirSketch*>(&other);
  if (peer == nullptr) {
    return Status::InvalidArgument(
        "deterministic reservoir can only merge with another deterministic "
        "reservoir (got " +
        other.name() + ")");
  }
  if (peer == this) {
    return Status::InvalidArgument("cannot merge a sketch into itself");
  }
  if (peer->options_.seed != options_.seed) {
    return Status::FailedPrecondition(
        "deterministic merge requires equal hash seeds");
  }
  // Adopt the stricter survival predicate, re-filter our sample under it,
  // then take the peer's survivors. Everything below is a pure function of
  // the two states — no randomness.
  if (peer->skip_degree_ > skip_degree_) {
    skip_degree_ = peer->skip_degree_;
    std::size_t out = 0;
    for (std::size_t i = 0; i < values_.size(); ++i) {
      if (Good(hashes_[i])) {
        values_[out] = values_[i];
        hashes_[out] = hashes_[i];
        ++out;
      }
    }
    values_.resize(out);
    hashes_.resize(out);
  }
  for (std::size_t i = 0; i < peer->values_.size(); ++i) {
    if (!Good(peer->hashes_[i])) continue;
    if (values_.size() >= capacity_) ThinOut();
    if (!Good(peer->hashes_[i])) continue;
    values_.push_back(peer->values_[i]);
    hashes_.push_back(peer->hashes_[i]);
  }
  count_ += peer->count_;
  return Status::OK();
}

std::vector<std::uint8_t> DeterministicReservoirSketch::Serialize() const {
  BinaryWriter writer;
  writer.PutU32(kCheckpointMagic);
  writer.PutU8(kCheckpointVersion);
  writer.PutU8(kKindDetReservoir);
  writer.PutDouble(options_.eps);
  writer.PutDouble(options_.delta);
  writer.PutU64(options_.seed);
  writer.PutU64(capacity_);
  writer.PutU8(skip_degree_);
  writer.PutU64(count_);
  writer.PutValues(values_);
  for (std::uint32_t hash : hashes_) writer.PutU32(hash);
  return writer.Take();
}

Result<DeterministicReservoirSketch> DeterministicReservoirSketch::Deserialize(
    const std::vector<std::uint8_t>& bytes) {
  BinaryReader reader(bytes);
  std::uint32_t magic;
  std::uint8_t version, kind;
  if (!reader.GetU32(&magic) || !reader.GetU8(&version) ||
      !reader.GetU8(&kind)) {
    return reader.status();
  }
  if (magic != kCheckpointMagic) {
    return Status::InvalidArgument("not an mrlquant checkpoint");
  }
  if (version != kCheckpointVersion || kind != kKindDetReservoir) {
    return Status::InvalidArgument("unsupported checkpoint version or kind");
  }
  DetReservoirOptions options;
  std::uint64_t capacity, count;
  std::uint8_t skip_degree;
  std::vector<Value> values;
  if (!reader.GetDouble(&options.eps) || !reader.GetDouble(&options.delta) ||
      !reader.GetU64(&options.seed) || !reader.GetU64(&capacity) ||
      !reader.GetU8(&skip_degree) || !reader.GetU64(&count) ||
      !reader.GetValues(&values)) {
    return reader.status();
  }
  Status valid = ValidateEpsDelta(options.eps, options.delta);
  if (!valid.ok()) {
    return Status::InvalidArgument("checkpoint options invalid: " +
                                   valid.message());
  }
  if (capacity < 1 || capacity > kMaxCapacity) {
    return Status::InvalidArgument("checkpoint capacity out of range");
  }
  if (skip_degree > kMaxSkipDegree) {
    return Status::InvalidArgument("checkpoint skip degree out of range");
  }
  if (values.size() > capacity || values.size() > count) {
    return Status::InvalidArgument("checkpoint sample larger than capacity");
  }
  std::vector<std::uint32_t> hashes(values.size());
  for (std::size_t i = 0; i < hashes.size(); ++i) {
    if (!reader.GetU32(&hashes[i])) return reader.status();
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after checkpoint");
  }
  options.capacity = capacity;
  DeterministicReservoirSketch sketch(options, capacity);
  sketch.skip_degree_ = skip_degree;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (std::isnan(values[i])) {
      return Status::InvalidArgument("checkpoint contains NaN");
    }
    if (!sketch.Good(hashes[i])) {
      // Every retained hash must satisfy the recorded skip degree; a
      // violation means the blob was corrupted or hand-edited.
      return Status::InvalidArgument("checkpoint hash tag audit failed");
    }
  }
  sketch.count_ = count;
  sketch.values_ = std::move(values);
  sketch.hashes_ = std::move(hashes);
  return sketch;
}

Status DeterministicReservoirSketch::Restore(
    std::span<const std::uint8_t> bytes) {
  Result<DeterministicReservoirSketch> restored =
      Deserialize(std::vector<std::uint8_t>(bytes.begin(), bytes.end()));
  if (!restored.ok()) return restored.status();
  *this = std::move(restored).value();
  return Status::OK();
}

}  // namespace mrl
