#ifndef MRLQUANT_CORE_UNKNOWN_N_H_
#define MRLQUANT_CORE_UNKNOWN_N_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/estimator.h"
#include "core/framework.h"
#include "core/params.h"
#include "core/partial.h"
#include "core/summary.h"
#include "sampling/block_sampler.h"
#include "util/random.h"
#include "util/thread_annotations.h"
#include "util/status.h"
#include "util/types.h"

namespace mrl {

/// Configuration for UnknownNSketch.
struct UnknownNOptions {
  /// Maximum normalized rank error of answers.
  double eps = 0.01;
  /// Failure probability: every answer is eps-approximate with probability
  /// at least 1 - delta, for any stream length and arrival order.
  double delta = 1e-4;
  /// Seed of the sketch's private random generator.
  std::uint64_t seed = 1;
  /// Explicit (b, k, h, alpha) override; when absent, SolveUnknownN picks
  /// the memory-optimal parameters.
  std::optional<UnknownNParams> params;
  /// Dynamic buffer allocation (Section 5): when set, the sketch only uses
  /// `buffer_allowance(n)` of its b buffers while the stream position is n
  /// (clamped to [1, b]; must be nondecreasing in n). Produced by
  /// DynamicAllocationPlanner; leave unset for the standard algorithm.
  std::function<int(std::uint64_t)> buffer_allowance;
  /// ABLATION ONLY (bench/ablation_*): replace the uniform within-block
  /// pick by deterministic first-of-block sampling. Voids the guarantee on
  /// adversarial arrival orders — that demonstration is its entire point.
  bool ablation_first_of_block_sampling = false;
  /// ABLATION ONLY: freeze the even-weight Collapse offset instead of
  /// alternating it (Section 3.2).
  bool ablation_disable_collapse_alternation = false;
};

/// The paper's headline algorithm (Sections 3–4): single-pass,
/// eps-approximate quantiles with probability >= 1 - delta, using O(1)
/// working memory independent of the stream length, *without knowing the
/// stream length in advance*.
///
/// Structure (Figure 1): a non-uniform block sampler feeds a deterministic
/// collapse tree. New buffers enter at level 0 and sampling rate 1 until
/// the tree reaches height h; each time the tree grows one level past h,
/// the sampling rate doubles and new buffers enter one level higher
/// (Section 3.7). Output is non-destructive, so the sketch can serve
/// anytime queries over every prefix — the online-aggregation property the
/// paper highlights.
///
/// Usage:
///   UnknownNOptions options;
///   options.eps = 0.01;
///   options.delta = 1e-4;
///   auto sketch = UnknownNSketch::Create(options);
///   MRL_CHECK(sketch.ok());
///   for (Value v : stream) sketch.value().Add(v);
///   Result<Value> median = sketch.value().Query(0.5);
class UnknownNSketch : public QuantileEstimator {
 public:
  /// Validates options and solves for parameters.
  static Result<UnknownNSketch> Create(const UnknownNOptions& options);

  UnknownNSketch(UnknownNSketch&&) = default;
  UnknownNSketch& operator=(UnknownNSketch&&) = default;

  void Add(Value v) override;

  /// Batch ingestion fast path: consumes the span with per-block (not
  /// per-element) sampling work and bulk buffer fills between collapse
  /// checks. Bit-identical to calling Add on each element in turn under the
  /// same seed — same sampler state, same collapse tree, same answers — for
  /// any partition of the stream into batches.
  MRLQUANT_HOT void AddBatch(std::span<const Value> values) override;

  std::uint64_t count() const override { return count_; }
  Result<Value> Query(double phi) const override;
  std::uint64_t MemoryElements() const override {
    return params_.MemoryElements();
  }
  std::string name() const override { return "mrl99_unknown_n"; }

  /// Returns the sketch to its freshly constructed state without releasing
  /// the buffer pool or any warmed scratch storage, so a serving layer can
  /// recycle tenant slots allocation-free. Serialized state after Reset()
  /// is byte-identical to a newly constructed sketch with the same options
  /// (tests/reset_test.cc pins this). A sketch restored via Deserialize
  /// resets to the restore-time default seed; use Reset(seed) to pick the
  /// seed explicitly.
  void Reset() override;

  /// As Reset(), but re-seeds the sampler's generator with `seed` (the
  /// state a fresh sketch constructed with options.seed == seed would
  /// have). Subsequent Reset() calls reuse this seed.
  void Reset(std::uint64_t seed) override;

  /// Batch query: one merge pass for all of `phis` (any order).
  Result<std::vector<Value>> QueryMany(
      const std::vector<double>& phis) const override;

  /// Dual query: the approximate normalized rank of `v` — the fraction of
  /// consumed elements that are <= v, accurate to within eps with the same
  /// probability as Query. Powers selectivity estimation (Section 1.1).
  Result<double> RankOf(Value v) const;

  /// Immutable snapshot of the current distribution estimate (the synopsis
  /// view, Section 1.5): answers repeated quantile/rank queries in
  /// O(log b*k) without touching the live sketch.
  QuantileSummary ExportSummary() const;

  /// As ExportSummary, into *out (reusing its capacity); intermediates come
  /// from thread-local scratch, so repeated exports allocate nothing once
  /// warmed. Powers ShardedQuantileSketch's per-call summary reuse.
  void ExportSummaryInto(QuantileSummary* out) const;

  const UnknownNParams& params() const { return params_; }

  /// Current block-sampling rate r (1 until the tree reaches height h,
  /// then 2, 4, ... as the tree grows).
  Weight sampling_rate() const { return sampler_.rate(); }

  /// Memory in use right now: allocated buffers times k. Differs from
  /// MemoryElements() only under dynamic buffer allocation.
  std::uint64_t CurrentMemoryElements() const {
    return static_cast<std::uint64_t>(framework_.usable_buffers()) *
           params_.k;
  }

  /// Tree statistics (collapses, their weight sum, leaves, height).
  const TreeStats& tree_stats() const { return framework_.stats(); }

  /// Sum of weights currently represented by the sketch; equals count()
  /// at all times (an invariant the tests rely on).
  Weight HeldWeight() const;

  /// Internal framework, exposed read-only for white-box tests.
  const CollapseFramework& framework() const { return framework_; }

  /// Checkpointing: encodes the complete sketch state (parameters, buffer
  /// pool, sampler with its in-flight block, counters) so a DBMS operator
  /// can suspend and resume a scan. The byte format is versioned;
  /// Deserialize rejects truncated or inconsistent input with a Status
  /// rather than crashing.
  bool SupportsCheckpoint() const override { return true; }
  std::vector<std::uint8_t> Serialize() const override;

  /// In-place restore from Serialize() output (the interface-driven
  /// counterpart of the static Deserialize; registry recovery uses it).
  /// Any dynamic buffer-allowance schedule is dropped, as with
  /// Deserialize's default argument. On error the sketch is unchanged.
  Status Restore(std::span<const std::uint8_t> bytes) override;

  /// Restores a sketch from Serialize() output. `buffer_allowance` is a
  /// function and cannot be encoded; when the original sketch ran under a
  /// dynamic allocation schedule (Section 5), pass the same allowance
  /// again, otherwise leave it null.
  static Result<UnknownNSketch> Deserialize(
      const std::vector<std::uint8_t>& bytes,
      std::function<int(std::uint64_t)> buffer_allowance = nullptr);

  /// Worker-side termination for the parallel algorithm (Section 6):
  /// performs the final Collapse over all full buffers and returns at most
  /// one full buffer plus up to two partial ones (the in-progress buffer
  /// and the in-flight block candidate), each tagged with its weight.
  /// The sketch must not be used afterwards.
  std::vector<ShippedBuffer> FinishAndExport();

  /// Non-destructive counterpart of FinishAndExport for the distributed
  /// tier: copies every full buffer, the in-progress partial and the
  /// in-flight block candidate into a PartialSummary without the final
  /// collapse, so the sketch keeps serving afterwards. Safe under the
  /// concurrent const-reader contract (a query-side snapshot, copied out).
  bool SupportsPartialExport() const override { return true; }
  Status ExportPartial(PartialSummary* out) const override;

 private:
  UnknownNSketch(const UnknownNParams& params, const UnknownNOptions& options);

  /// Applies buffer_allowance_ at the current stream position.
  void UpdateUsableBuffers();

  /// (rate, level) the next New operation must use, per Section 3.7.
  std::pair<Weight, int> NextNewRateAndLevel() const;

  void StartNewFill();

  /// Owned snapshot of everything held: full buffers, the in-progress
  /// (partial) buffer sorted into `partial_sorted`, and the in-flight block
  /// candidate in `tail`. `runs` points into the framework's buffers and
  /// into the two local vectors; the heap storage keeps those pointers
  /// valid across moves of the snapshot.
  struct RunSnapshot {
    std::vector<Value> partial_sorted;
    std::vector<Value> tail;  // zero or one element
    std::vector<WeightedRun> runs;
  };
  RunSnapshot Snapshot() const;

  /// As Snapshot, reusing *snap's capacity. The const query paths hand a
  /// thread-local snapshot here (not a mutable member: concurrent const
  /// queries on a quiescent sketch are part of the thread contract).
  void SnapshotInto(RunSnapshot* snap) const;

  UnknownNParams params_;
  CollapseFramework framework_;
  BlockSampler sampler_;
  std::function<int(std::uint64_t)> buffer_allowance_;
  std::uint64_t seed_ = 1;  ///< construction seed, replayed by Reset()
  /// Pick policy of the construction options, replayed by Reset().
  bool ablation_first_of_block_ = false;
  std::uint64_t count_ = 0;

  bool filling_ = false;
  std::size_t fill_slot_ = 0;
  Weight fill_weight_ = 1;  ///< sampling rate of the buffer being filled
  int fill_level_ = 0;      ///< level it will be committed at

  /// Survivor staging area reused across AddBatch calls (holds at most k
  /// elements; no allocation in steady state). Not part of sketch state.
  std::vector<Value> batch_scratch_;
};

}  // namespace mrl

#endif  // MRLQUANT_CORE_UNKNOWN_N_H_
