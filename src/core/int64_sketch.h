#ifndef MRLQUANT_CORE_INT64_SKETCH_H_
#define MRLQUANT_CORE_INT64_SKETCH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/unknown_n.h"
#include "util/status.h"

namespace mrl {

/// Unknown-N quantiles over 64-bit integer columns — the common database
/// case. The core library stores `double`; every integer with magnitude at
/// most 2^53 maps losslessly, and because the algorithm only ever *selects*
/// elements (never averages), every answer is one of the inserted integers,
/// returned exactly.
///
/// Values outside the safe range are rejected by Add (returns false and
/// counts them) rather than silently rounded — a silent off-by-one on a
/// key column is the kind of bug a database cannot tolerate.
class Int64QuantileSketch {
 public:
  /// Largest magnitude representable exactly in a double: 2^53.
  static constexpr std::int64_t kMaxMagnitude =
      std::int64_t{1} << 53;

  struct Options {
    double eps = 0.01;
    double delta = 1e-4;
    std::uint64_t seed = 1;
  };

  static Result<Int64QuantileSketch> Create(const Options& options);

  Int64QuantileSketch(Int64QuantileSketch&&) = default;
  Int64QuantileSketch& operator=(Int64QuantileSketch&&) = default;

  /// Consumes one value. Returns false (and counts the rejection) when
  /// |v| > 2^53; the guarantee then covers only the accepted values.
  bool Add(std::int64_t v);

  /// Consumes a whole int64 column slice: validates and converts the span
  /// in bulk, feeds the accepted values through the batch ingestion path,
  /// and returns how many were accepted. Accepted/rejected decisions, order
  /// and sketch state are identical to calling Add per element.
  std::size_t AddBatch(std::span<const std::int64_t> values);

  std::uint64_t count() const { return inner_.count(); }
  std::uint64_t rejected_count() const { return rejected_; }

  /// The phi-quantile of the accepted values — always one of them, exact
  /// as an integer.
  Result<std::int64_t> Query(double phi) const;

  Result<std::vector<std::int64_t>> QueryMany(
      const std::vector<double>& phis) const;

  /// Fraction of accepted values <= v.
  Result<double> RankOf(std::int64_t v) const;

  std::uint64_t MemoryElements() const { return inner_.MemoryElements(); }

 private:
  explicit Int64QuantileSketch(UnknownNSketch inner)
      : inner_(std::move(inner)) {}

  UnknownNSketch inner_;
  std::uint64_t rejected_ = 0;

  /// Conversion staging area reused across AddBatch calls.
  std::vector<Value> batch_scratch_;
};

}  // namespace mrl

#endif  // MRLQUANT_CORE_INT64_SKETCH_H_
