#ifndef MRLQUANT_CORE_BUFFER_H_
#define MRLQUANT_CORE_BUFFER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/thread_annotations.h"
#include "util/types.h"

namespace mrl {

/// Lifecycle of a physical buffer (Section 3): empty slots are acquired for
/// `New`, filled incrementally (kFilling), and become kFull with an attached
/// weight and tree level. The paper's "partial" buffer is the kFilling
/// buffer at the moment the stream terminates; it participates only in
/// `Output`, never in `Collapse`.
enum class BufferState { kEmpty, kFilling, kFull };

const char* BufferStateName(BufferState s);

/// One of the b physical buffers of the MRL framework: at most `capacity`
/// (= k) elements, a weight w(X) (every stored element represents w(X)
/// input elements), and a level in the collapse tree.
///
/// Invariants (CHECKed):
///  * kEmpty buffers hold no elements and have weight 0.
///  * kFull buffers hold exactly `capacity` sorted elements and weight >= 1.
///  * kFilling buffers hold < `capacity` (unsorted) elements.
class Buffer {
 public:
  explicit Buffer(std::size_t capacity);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return values_.size(); }
  BufferState state() const { return state_; }
  Weight weight() const { return weight_; }
  int level() const { return level_; }

  /// Elements; sorted ascending iff the buffer is kFull.
  const std::vector<Value>& values() const { return values_; }

  /// Sum of element weights: size() * weight().
  Weight TotalWeight() const { return weight_ * values_.size(); }

  /// kEmpty -> kFilling.
  void StartFill();

  /// Appends one sampled element while kFilling. The caller promotes the
  /// buffer with MarkFull once size() reaches capacity().
  MRLQUANT_HOT void Append(Value v);

  /// Appends `n` sampled elements at once (one bulk copy) while kFilling;
  /// the batch ingestion path's fill primitive. Requires room for all `n`.
  MRLQUANT_HOT void AppendSpan(const Value* data, std::size_t n);

  /// kFilling -> kFull: sorts the contents and attaches (weight, level).
  /// Requires size() == capacity().
  MRLQUANT_HOT void MarkFull(Weight weight, int level);

  /// Installs collapse output: `sorted_values` must be ascending and have
  /// exactly capacity() elements. Valid from any state (a collapse reuses
  /// one of its input slots).
  void AssignSorted(std::vector<Value> sorted_values, Weight weight,
                    int level);

  /// Zero-allocation variant of AssignSorted: swaps storage with
  /// *sorted_values, so the buffer's previous vector lands back in the
  /// caller's scratch for recycling on the next collapse.
  MRLQUANT_HOT void SwapSorted(std::vector<Value>* sorted_values,
                               Weight weight, int level);

  /// Copying variant of AssignSorted: assigns the range into the existing
  /// storage, so no allocation occurs once values_ has ever reached
  /// capacity() elements.
  void AssignSortedCopy(const Value* data, std::size_t n, Weight weight,
                        int level);

  /// Any state -> kEmpty.
  MRLQUANT_HOT void Clear();

  /// Raises the buffer's level (the MRL99 policy promotes a lone buffer at
  /// the lowest level; Section 3.6). Requires kFull and new_level > level().
  void PromoteLevel(int new_level);

 private:
  std::size_t capacity_;
  std::vector<Value> values_;
  Weight weight_ = 0;
  int level_ = 0;
  BufferState state_ = BufferState::kEmpty;
};

}  // namespace mrl

#endif  // MRLQUANT_CORE_BUFFER_H_
