#include "core/output.h"

#include <algorithm>
#include <cmath>

namespace mrl {

namespace {

Status ValidatePhi(double phi) {
  if (!(phi > 0.0) || phi > 1.0) {
    return Status::InvalidArgument("phi must be in (0, 1], got " +
                                   std::to_string(phi));
  }
  return Status::OK();
}

Weight PhiToPosition(double phi, Weight total) {
  Weight pos = static_cast<Weight>(
      std::ceil(phi * static_cast<double>(total)));
  if (pos < 1) pos = 1;
  if (pos > total) pos = total;
  return pos;
}

}  // namespace

Result<Weight> WeightedRankOf(const std::vector<WeightedRun>& runs,
                              Value v) {
  if (TotalRunWeight(runs) == 0) {
    return Status::FailedPrecondition("no elements consumed yet");
  }
  Weight rank = 0;
  for (const WeightedRun& run : runs) {
    const Value* begin = run.data;
    const Value* end = run.data + run.size;
    rank += static_cast<Weight>(std::upper_bound(begin, end, v) - begin) *
            run.weight;
  }
  return rank;
}

Result<Value> WeightedQuantile(const std::vector<WeightedRun>& runs,
                               double phi) {
  Result<std::vector<Value>> r = WeightedQuantiles(runs, {phi});
  if (!r.ok()) return r.status();
  return r.value()[0];
}

Result<std::vector<Value>> WeightedQuantiles(
    const std::vector<WeightedRun>& runs, const std::vector<double>& phis,
    QueryScratch* scratch) {
  for (double phi : phis) {
    MRL_RETURN_IF_ERROR(ValidatePhi(phi));
  }
  const Weight total = TotalRunWeight(runs);
  if (total == 0) {
    return Status::FailedPrecondition("no elements consumed yet");
  }

  // Sort queries by phi (the sort engine, stable, carrying each query's
  // original index as payload); answer all in one merge pass; undo the
  // permutation at the end. Equal phis map to equal targets, so the
  // stable order changes no answer.
  scratch->keyed.clear();
  for (std::size_t i = 0; i < phis.size(); ++i) {
    scratch->keyed.emplace_back(phis[i], static_cast<std::uint64_t>(i));
  }
  SortPairs(scratch->keyed.data(), scratch->keyed.size());
  scratch->targets.clear();
  for (const KeyedPayload& q : scratch->keyed) {
    scratch->targets.push_back(PhiToPosition(q.first, total));
  }
  scratch->picked.resize(phis.size());
  SelectWeightedPositionsInto(runs.data(), runs.size(),
                              scratch->targets.data(),
                              scratch->targets.size(), &scratch->merge,
                              scratch->picked.data());

  std::vector<Value> out(phis.size());
  for (std::size_t i = 0; i < scratch->keyed.size(); ++i) {
    out[static_cast<std::size_t>(scratch->keyed[i].second)] =
        scratch->picked[i];
  }
  return out;
}

Result<std::vector<Value>> WeightedQuantiles(
    const std::vector<WeightedRun>& runs, const std::vector<double>& phis) {
  thread_local QueryScratch scratch;
  return WeightedQuantiles(runs, phis, &scratch);
}

}  // namespace mrl
