#include "core/output.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace mrl {

namespace {

Status ValidatePhi(double phi) {
  if (!(phi > 0.0) || phi > 1.0) {
    return Status::InvalidArgument("phi must be in (0, 1], got " +
                                   std::to_string(phi));
  }
  return Status::OK();
}

Weight PhiToPosition(double phi, Weight total) {
  Weight pos = static_cast<Weight>(
      std::ceil(phi * static_cast<double>(total)));
  if (pos < 1) pos = 1;
  if (pos > total) pos = total;
  return pos;
}

}  // namespace

Result<Weight> WeightedRankOf(const std::vector<WeightedRun>& runs,
                              Value v) {
  if (TotalRunWeight(runs) == 0) {
    return Status::FailedPrecondition("no elements consumed yet");
  }
  Weight rank = 0;
  for (const WeightedRun& run : runs) {
    const Value* begin = run.data;
    const Value* end = run.data + run.size;
    rank += static_cast<Weight>(std::upper_bound(begin, end, v) - begin) *
            run.weight;
  }
  return rank;
}

Result<Value> WeightedQuantile(const std::vector<WeightedRun>& runs,
                               double phi) {
  Result<std::vector<Value>> r = WeightedQuantiles(runs, {phi});
  if (!r.ok()) return r.status();
  return r.value()[0];
}

Result<std::vector<Value>> WeightedQuantiles(
    const std::vector<WeightedRun>& runs, const std::vector<double>& phis) {
  for (double phi : phis) {
    MRL_RETURN_IF_ERROR(ValidatePhi(phi));
  }
  const Weight total = TotalRunWeight(runs);
  if (total == 0) {
    return Status::FailedPrecondition("no elements consumed yet");
  }

  // Sort queries by target position; answer all in one merge pass; undo the
  // permutation at the end.
  std::vector<std::size_t> order(phis.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return phis[a] < phis[b];
  });
  std::vector<Weight> targets;
  targets.reserve(phis.size());
  for (std::size_t i : order) {
    targets.push_back(PhiToPosition(phis[i], total));
  }
  std::vector<Value> picked = SelectWeightedPositions(runs, targets);

  std::vector<Value> out(phis.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    out[order[i]] = picked[i];
  }
  return out;
}

}  // namespace mrl
