#include "core/summary.h"

#include <algorithm>
#include <cmath>
#include <type_traits>

#include "util/logging.h"
#include "util/sort.h"

namespace mrl {

void QuantileSummary::AccumulateInto(SummaryScratch* scratch,
                                     std::vector<Entry>* entries) {
  // (value, weight) is exactly the engine's KeyedPayload record; the
  // stable radix sort keeps equal values in insertion order, and the
  // coalescing below sums their weights either way.
  static_assert(std::is_same_v<std::pair<Value, Weight>, KeyedPayload>);
  SortPairs(scratch->weighted.data(), scratch->weighted.size());
  entries->clear();
  Weight cum = 0;
  for (const auto& [value, weight] : scratch->weighted) {
    cum += weight;
    if (!entries->empty() && entries->back().value == value) {
      entries->back().cumulative_weight = cum;  // coalesce duplicates
    } else {
      entries->push_back({value, cum});
    }
  }
}

void QuantileSummary::FromRunsInto(const std::vector<WeightedRun>& runs,
                                   SummaryScratch* scratch,
                                   QuantileSummary* out) {
  scratch->weighted.clear();
  for (const WeightedRun& run : runs) {
    for (std::size_t i = 0; i < run.size; ++i) {
      scratch->weighted.emplace_back(run.data[i], run.weight);
    }
  }
  AccumulateInto(scratch, &out->entries_);
}

QuantileSummary QuantileSummary::FromRuns(
    const std::vector<WeightedRun>& runs) {
  SummaryScratch scratch;
  QuantileSummary out;
  FromRunsInto(runs, &scratch, &out);
  return out;
}

void QuantileSummary::MergeInto(
    const std::vector<const QuantileSummary*>& parts,
    SummaryScratch* scratch, QuantileSummary* out) {
  // Decompose each summary back into (value, weight) deltas, merge-sort,
  // and re-accumulate.
  scratch->weighted.clear();
  for (const QuantileSummary* part : parts) {
    MRL_CHECK(part != nullptr);
    Weight prev = 0;
    for (const Entry& e : part->entries_) {
      scratch->weighted.emplace_back(e.value, e.cumulative_weight - prev);
      prev = e.cumulative_weight;
    }
  }
  AccumulateInto(scratch, &out->entries_);
}

QuantileSummary QuantileSummary::Merge(
    const std::vector<const QuantileSummary*>& parts) {
  SummaryScratch scratch;
  QuantileSummary out;
  MergeInto(parts, &scratch, &out);
  return out;
}

Result<Value> QuantileSummary::Quantile(double phi) const {
  if (!(phi > 0.0) || phi > 1.0) {
    return Status::InvalidArgument("phi must be in (0, 1]");
  }
  if (entries_.empty()) {
    return Status::FailedPrecondition("empty summary");
  }
  const Weight total = total_weight();
  Weight target = static_cast<Weight>(
      std::ceil(phi * static_cast<double>(total)));
  if (target < 1) target = 1;
  if (target > total) target = total;
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), target,
      [](const Entry& e, Weight t) { return e.cumulative_weight < t; });
  MRL_DCHECK(it != entries_.end());
  return it->value;
}

Result<double> QuantileSummary::Rank(Value v) const {
  if (entries_.empty()) {
    return Status::FailedPrecondition("empty summary");
  }
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), v,
      [](Value x, const Entry& e) { return x < e.value; });
  if (it == entries_.begin()) return 0.0;
  return static_cast<double>((it - 1)->cumulative_weight) /
         static_cast<double>(total_weight());
}

Result<std::vector<std::pair<Value, double>>> QuantileSummary::CdfPoints(
    std::size_t points) const {
  if (points < 2) {
    return Status::InvalidArgument("need at least 2 CDF points");
  }
  if (entries_.empty()) {
    return Status::FailedPrecondition("empty summary");
  }
  std::vector<std::pair<Value, double>> out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double phi =
        static_cast<double>(i + 1) / static_cast<double>(points);
    Result<Value> q = Quantile(phi);
    if (!q.ok()) return q.status();
    out.emplace_back(q.value(), phi);
  }
  return out;
}

void QuantileSummary::SerializeTo(BinaryWriter* writer) const {
  writer->PutU64(entries_.size());
  for (const Entry& e : entries_) {
    writer->PutDouble(e.value);
    writer->PutU64(e.cumulative_weight);
  }
}

Result<QuantileSummary> QuantileSummary::DeserializeFrom(
    BinaryReader* reader) {
  std::uint64_t n;
  if (!reader->GetU64(&n)) return reader->status();
  if (n > reader->Remaining() / 16) {
    return Status::InvalidArgument("summary length exceeds input");
  }
  std::vector<Entry> entries;
  entries.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    Entry e;
    if (!reader->GetDouble(&e.value) ||
        !reader->GetU64(&e.cumulative_weight)) {
      return reader->status();
    }
    if (!entries.empty() &&
        (e.value <= entries.back().value ||
         e.cumulative_weight <= entries.back().cumulative_weight)) {
      return Status::InvalidArgument("summary entries not monotone");
    }
    entries.push_back(e);
  }
  return QuantileSummary(std::move(entries));
}

}  // namespace mrl
