#include "core/kll.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/logging.h"
#include "util/serde.h"

namespace mrl {

namespace {

/// Level-capacity decay rate; 2/3 is the paper's choice and keeps the total
/// capacity a geometric series summing to ~3k.
constexpr double kDecay = 2.0 / 3.0;

constexpr std::uint32_t kMinK = 8;
constexpr std::uint32_t kMaxK = 1u << 16;
constexpr std::size_t kMaxLevels = 64;

constexpr std::uint32_t kCheckpointMagic = 0x4D524C51;  // "MRLQ"
constexpr std::uint8_t kCheckpointVersion = 2;
constexpr std::uint8_t kKindKll = 5;

Status ValidateEpsDelta(double eps, double delta) {
  if (!(eps > 0.0) || eps >= 1.0) {
    return Status::InvalidArgument("eps must be in (0, 1)");
  }
  if (!(delta > 0.0) || delta >= 1.0) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  return Status::OK();
}

}  // namespace

std::uint32_t KllSketch::SolveK(double eps, double delta) {
  // eps ~= a / k^0.9433 with a = 2.296 at 99% confidence; scale a by
  // sqrt(ln(1/delta)/ln(100)) when delta < 1e-2 (the failure probability
  // of the rank estimate decays exponentially in k * eps).
  const double widen =
      std::sqrt(std::max(1.0, std::log(1.0 / delta) / std::log(100.0)));
  const double a = 2.296 * widen;
  const double k = std::ceil(std::pow(a / eps, 1.0 / 0.9433));
  if (k < kMinK) return kMinK;
  if (k > kMaxK) return kMaxK;
  return static_cast<std::uint32_t>(k);
}

Result<KllSketch> KllSketch::Create(const KllOptions& options) {
  MRL_RETURN_IF_ERROR(ValidateEpsDelta(options.eps, options.delta));
  std::uint32_t k = options.k;
  if (k == 0) {
    k = SolveK(options.eps, options.delta);
  } else if (k < kMinK || k > kMaxK) {
    return Status::InvalidArgument("k must be in [8, 65536]");
  }
  return KllSketch(options, k);
}

KllSketch::KllSketch(const KllOptions& options, std::uint32_t k)
    : options_(options), k_(k), rng_(options.seed) {
  levels_.emplace_back();
  RecomputeCapacity();
  levels_[0].reserve(LevelCapacity(0) + 1);
}

std::size_t KllSketch::LevelCapacity(std::size_t level) const {
  const std::size_t depth = levels_.size() - 1 - level;
  const double cap = static_cast<double>(k_) *
                     std::pow(kDecay, static_cast<double>(depth));
  const double rounded = std::ceil(cap);
  return rounded < 2.0 ? 2 : static_cast<std::size_t>(rounded);
}

void KllSketch::RecomputeCapacity() {
  std::uint64_t total = 0;
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    total += LevelCapacity(l);
  }
  total_capacity_ = total;
}

void KllSketch::Add(Value v) {
  MRL_CHECK(!std::isnan(v)) << "NaN rejected at the sketch boundary: the "
                               "compactor order is undefined over NaN";
  levels_[0].push_back(v);
  ++size_;
  ++count_;
  if (size_ > total_capacity_) Compress();
}

void KllSketch::Compress() {
  while (size_ > total_capacity_) {
    std::size_t l = 0;
    while (l < levels_.size() && levels_[l].size() < LevelCapacity(l)) ++l;
    if (l == levels_.size()) break;  // all under capacity: nothing to do
    CompactLevel(l);
  }
}

void KllSketch::CompactLevel(std::size_t level) {
  if (level + 1 == levels_.size()) {
    levels_.emplace_back();
    RecomputeCapacity();
  }
  std::vector<Value>& items = levels_[level];
  SortValues(items.data(), items.size(), &scratch_);
  // An odd element is held back at this level (the sorted minimum) so that
  // pair promotion conserves total weight exactly.
  const std::size_t begin = items.size() % 2;
  const std::size_t offset = rng_.NextUint32() & 1;
  std::vector<Value>& up = levels_[level + 1];
  for (std::size_t i = begin + offset; i < items.size(); i += 2) {
    up.push_back(items[i]);
  }
  size_ -= (items.size() - begin) / 2;
  items.resize(begin);  // retains capacity: no realloc on the next fill
}

std::vector<KeyedPayload> KllSketch::SortedSummary() const {
  std::vector<KeyedPayload> summary;
  summary.reserve(static_cast<std::size_t>(size_));
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const std::uint64_t weight = std::uint64_t{1} << l;
    for (Value v : levels_[l]) summary.emplace_back(v, weight);
  }
  SortPairs(summary.data(), summary.size());
  return summary;
}

Result<Value> KllSketch::Query(double phi) const {
  std::vector<double> phis = {phi};
  Result<std::vector<Value>> answers = QueryMany(phis);
  if (!answers.ok()) return answers.status();
  return answers.value()[0];
}

Result<std::vector<Value>> KllSketch::QueryMany(
    const std::vector<double>& phis) const {
  for (double phi : phis) {
    if (!(phi > 0.0) || phi > 1.0) {
      return Status::InvalidArgument("phi must be in (0, 1]");
    }
  }
  if (count_ == 0) {
    return Status::FailedPrecondition("no elements consumed yet");
  }
  const std::vector<KeyedPayload> summary = SortedSummary();
  std::vector<Value> answers;
  answers.reserve(phis.size());
  for (double phi : phis) {
    std::uint64_t target = static_cast<std::uint64_t>(
        std::ceil(phi * static_cast<double>(count_)));
    if (target < 1) target = 1;
    if (target > count_) target = count_;
    std::uint64_t cumulative = 0;
    Value answer = summary.back().first;
    for (const KeyedPayload& record : summary) {
      cumulative += record.second;
      if (cumulative >= target) {
        answer = record.first;
        break;
      }
    }
    answers.push_back(answer);
  }
  return answers;
}

void KllSketch::Reset(std::uint64_t seed) {
  options_.seed = seed;
  rng_ = Random(seed);
  levels_.resize(1);
  levels_[0].clear();
  size_ = 0;
  count_ = 0;
  RecomputeCapacity();
}

Status KllSketch::Merge(const QuantileEstimator& other) {
  const KllSketch* peer = dynamic_cast<const KllSketch*>(&other);
  if (peer == nullptr) {
    return Status::InvalidArgument(
        "KLL can only merge with another KLL sketch (got " + other.name() +
        ")");
  }
  if (peer == this) {
    return Status::InvalidArgument("cannot merge a sketch into itself");
  }
  if (peer->k_ != k_) {
    return Status::FailedPrecondition(
        "KLL merge requires equal k: " + std::to_string(k_) + " vs " +
        std::to_string(peer->k_));
  }
  while (levels_.size() < peer->levels_.size()) levels_.emplace_back();
  RecomputeCapacity();
  for (std::size_t l = 0; l < peer->levels_.size(); ++l) {
    levels_[l].insert(levels_[l].end(), peer->levels_[l].begin(),
                      peer->levels_[l].end());
  }
  size_ += peer->size_;
  count_ += peer->count_;
  Compress();
  return Status::OK();
}

std::vector<std::uint8_t> KllSketch::Serialize() const {
  BinaryWriter writer;
  writer.PutU32(kCheckpointMagic);
  writer.PutU8(kCheckpointVersion);
  writer.PutU8(kKindKll);
  writer.PutDouble(options_.eps);
  writer.PutDouble(options_.delta);
  writer.PutU64(options_.seed);
  writer.PutU32(k_);
  writer.PutU64(count_);
  Random::State rng = rng_.SaveState();
  writer.PutU64(rng.state);
  writer.PutU64(rng.inc);
  writer.PutU32(static_cast<std::uint32_t>(levels_.size()));
  for (const std::vector<Value>& level : levels_) {
    writer.PutValues(level);
  }
  return writer.Take();
}

Result<KllSketch> KllSketch::Deserialize(
    const std::vector<std::uint8_t>& bytes) {
  BinaryReader reader(bytes);
  std::uint32_t magic;
  std::uint8_t version, kind;
  if (!reader.GetU32(&magic) || !reader.GetU8(&version) ||
      !reader.GetU8(&kind)) {
    return reader.status();
  }
  if (magic != kCheckpointMagic) {
    return Status::InvalidArgument("not an mrlquant checkpoint");
  }
  if (version != kCheckpointVersion || kind != kKindKll) {
    return Status::InvalidArgument("unsupported checkpoint version or kind");
  }
  KllOptions options;
  std::uint32_t k;
  std::uint64_t count;
  Random::State rng_state;
  std::uint32_t num_levels;
  if (!reader.GetDouble(&options.eps) || !reader.GetDouble(&options.delta) ||
      !reader.GetU64(&options.seed) || !reader.GetU32(&k) ||
      !reader.GetU64(&count) || !reader.GetU64(&rng_state.state) ||
      !reader.GetU64(&rng_state.inc) || !reader.GetU32(&num_levels)) {
    return reader.status();
  }
  Status valid = ValidateEpsDelta(options.eps, options.delta);
  if (!valid.ok()) {
    return Status::InvalidArgument("checkpoint options invalid: " +
                                   valid.message());
  }
  if (k < kMinK || k > kMaxK) {
    return Status::InvalidArgument("checkpoint k out of range");
  }
  if (num_levels < 1 || num_levels > kMaxLevels) {
    return Status::InvalidArgument("checkpoint level count out of range");
  }
  options.k = k;
  KllSketch sketch(options, k);
  sketch.levels_.resize(num_levels);
  std::uint64_t held = 0;
  std::uint64_t weight = 0;
  for (std::uint32_t l = 0; l < num_levels; ++l) {
    if (!reader.GetValues(&sketch.levels_[l])) return reader.status();
    for (Value v : sketch.levels_[l]) {
      if (std::isnan(v)) {
        return Status::InvalidArgument("checkpoint contains NaN");
      }
    }
    held += sketch.levels_[l].size();
    weight += sketch.levels_[l].size() * (std::uint64_t{1} << l);
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after checkpoint");
  }
  if (held > (std::uint64_t{1} << 28)) {
    return Status::InvalidArgument("checkpoint holds too many items");
  }
  if (weight != count) {
    // Pair promotion conserves weight exactly; a mismatch means the blob
    // was corrupted or hand-edited.
    return Status::InvalidArgument(
        "checkpoint weight audit failed: held weight " +
        std::to_string(weight) + " != count " + std::to_string(count));
  }
  sketch.size_ = held;
  sketch.count_ = count;
  sketch.rng_ = Random::FromState(rng_state);
  sketch.RecomputeCapacity();
  return sketch;
}

Status KllSketch::Restore(std::span<const std::uint8_t> bytes) {
  Result<KllSketch> restored =
      Deserialize(std::vector<std::uint8_t>(bytes.begin(), bytes.end()));
  if (!restored.ok()) return restored.status();
  *this = std::move(restored).value();
  return Status::OK();
}

}  // namespace mrl
