#ifndef MRLQUANT_CORE_COLLAPSE_POLICY_H_
#define MRLQUANT_CORE_COLLAPSE_POLICY_H_

#include <memory>
#include <string>
#include <vector>

#include "util/types.h"

namespace mrl {

/// Snapshot of one full buffer, as seen by a collapse policy.
struct FullBufferInfo {
  std::size_t index;  ///< slot in the pool
  int level;
  Weight weight;
};

/// Strategy deciding *which* full buffers to Collapse when space runs out.
/// MRL98 showed that several known one-pass algorithms are exactly such
/// strategies within the New/Collapse/Output framework; MRL99 reuses the
/// best one (see MrlCollapsePolicy).
class CollapsePolicy {
 public:
  struct Decision {
    std::vector<std::size_t> indices;  ///< pool slots to collapse (>= 2)
    int output_level;                  ///< level assigned to the result
  };

  virtual ~CollapsePolicy() = default;

  /// Chooses the collapse set into *out, reusing its capacity (the hot
  /// path hands the same Decision back every collapse, so steady state
  /// allocates nothing). `full` holds every full buffer (>= 2 of them),
  /// in pool order. Implementations must reset *out before writing.
  virtual void ChooseInto(const std::vector<FullBufferInfo>& full,
                          Decision* out) const = 0;

  /// Allocating convenience wrapper over ChooseInto.
  Decision Choose(const std::vector<FullBufferInfo>& full) const {
    Decision d;
    ChooseInto(full, &d);
    return d;
  }

  virtual std::string name() const = 0;
};

/// The MRL99 policy (Section 3.6): let l be the smallest level among full
/// buffers; a lone buffer at l is promoted upward until at least two
/// buffers share the lowest level; all buffers at that level are collapsed
/// into level l+1. Equivalently: collapse every buffer with level <= l*,
/// where l* is the smallest level at which the cumulative buffer count
/// reaches 2; output level l* + 1.
class MrlCollapsePolicy : public CollapsePolicy {
 public:
  void ChooseInto(const std::vector<FullBufferInfo>& full,
                  Decision* out) const override;
  std::string name() const override { return "mrl"; }
};

/// Munro–Paterson: binary collapses of the two lowest-level buffers
/// (preferring an equal-level pair), reproducing the classic p-pass
/// algorithm's merge tree as a special case of the framework.
class MunroPatersonPolicy : public CollapsePolicy {
 public:
  void ChooseInto(const std::vector<FullBufferInfo>& full,
                  Decision* out) const override;
  std::string name() const override { return "munro_paterson"; }
};

/// Alsabti–Ranka–Singh-style: collapse the entire set of full buffers at
/// once (a wide, shallow tree).
class CollapseAllPolicy : public CollapsePolicy {
 public:
  void ChooseInto(const std::vector<FullBufferInfo>& full,
                  Decision* out) const override;
  std::string name() const override { return "collapse_all"; }
};

enum class CollapsePolicyKind { kMrl, kMunroPaterson, kCollapseAll };

std::unique_ptr<CollapsePolicy> MakeCollapsePolicy(CollapsePolicyKind kind);

}  // namespace mrl

#endif  // MRLQUANT_CORE_COLLAPSE_POLICY_H_
