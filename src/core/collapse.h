#ifndef MRLQUANT_CORE_COLLAPSE_H_
#define MRLQUANT_CORE_COLLAPSE_H_

#include <vector>

#include "core/buffer.h"
#include "core/collapse_policy.h"
#include "core/weighted_merge.h"
#include "util/thread_annotations.h"
#include "util/types.h"

namespace mrl {

/// Reusable arena for everything a Collapse round needs: the run table,
/// the selected weighted positions, the output storage, and the merge
/// kernel's tournament state — plus the framework-side full-buffer table,
/// policy decision, and input pointer list. One instance lives in each
/// CollapseFramework; after the first few collapses warm its capacity,
/// steady-state collapses perform zero heap allocations (the output
/// buffer's previous storage is swapped back into `selected` and
/// recycled, see Buffer::SwapSorted).
struct CollapseScratch {
  std::vector<WeightedRun> runs;
  std::vector<Weight> positions;
  std::vector<Value> selected;
  MergeScratch merge;
  // Used by CollapseFramework (core/framework.cc):
  std::vector<FullBufferInfo> full;
  std::vector<Buffer*> inputs;
  CollapsePolicy::Decision decision;
};

/// The Collapse operator (Section 3.2). Merges c >= 2 full buffers of equal
/// capacity k into one full buffer of weight w(Y) = sum of input weights,
/// whose k elements are equally spaced picks from the weighted merge:
///
///   w(Y) odd:  weighted positions j*w(Y) + (w(Y)+1)/2,   j = 0..k-1
///   w(Y) even: weighted positions j*w(Y) + w(Y)/2  or
///              j*w(Y) + (w(Y)+2)/2, alternating across successive
///              even-weight collapses (the alternation state lives in
///              *even_low_offset and is owned by the caller, typically one
///              flag per sketch).
///
/// The output is written into *inputs[output_slot] (the paper performs
/// Collapse in situ) with the given output level; all other inputs are
/// cleared to kEmpty. All working storage comes from *scratch.
///
/// Returns w(Y). MRLQUANT_HOT: steady-state collapses draw everything
/// from *scratch and must not allocate (mrlquant-no-alloc-in-hot-path).
MRLQUANT_HOT Weight Collapse(const std::vector<Buffer*>& inputs,
                             std::size_t output_slot, int output_level,
                             bool* even_low_offset, CollapseScratch* scratch);

/// Allocating convenience wrapper (function-local scratch).
Weight Collapse(const std::vector<Buffer*>& inputs, std::size_t output_slot,
                int output_level, bool* even_low_offset);

/// Computes just the k weighted positions a Collapse with output weight `w`
/// and buffer size `k` would select, given the current alternation phase
/// `even_low` (ignored for odd w), into *out (reusing its capacity).
/// Exposed for tests and for the dynamic allocation validity checker.
MRLQUANT_HOT void CollapsePositionsInto(Weight w, std::size_t k,
                                        bool even_low,
                                        std::vector<Weight>* out);

/// Allocating convenience wrapper over CollapsePositionsInto.
std::vector<Weight> CollapsePositions(Weight w, std::size_t k, bool even_low);

}  // namespace mrl

#endif  // MRLQUANT_CORE_COLLAPSE_H_
