#ifndef MRLQUANT_CORE_PARAMS_H_
#define MRLQUANT_CORE_PARAMS_H_

#include <cstdint>

#include "util/status.h"
#include "util/types.h"

namespace mrl {

/// Parameters of the unknown-N algorithm (Section 4.5): b buffers of k
/// elements, pre-sampling tree height h, and the error split alpha
/// ((1-alpha)*eps absorbs sampling error, alpha*eps absorbs tree error).
struct UnknownNParams {
  int b = 0;
  std::size_t k = 0;
  int h = 0;
  double alpha = 0.0;
  /// L_d: leaves the solver assumes arrive before sampling starts (the
  /// paper's C(b+h-2, h-1); the implementation actually consumes at least
  /// this many, which only tightens the guarantee).
  std::uint64_t leaves_before_sampling = 0;

  std::uint64_t MemoryElements() const {
    return static_cast<std::uint64_t>(b) * k;
  }
};

/// Solves min b*k subject to (re-derived; see the .cc for the exact
/// constants and DESIGN.md for why they may differ from the paper's
/// typeset ones by small factors):
///
///   Eq.1 (sampling):  min(L_d*k, (8/3)*L_s*k) >= ln(2/delta) /
///                                               (2*(1-alpha)^2*eps^2)
///   Eq.2 (tree):      h + 1 <= 2*alpha*eps*k
///   Eq.3 (pre-sampling tree): h + 1 <= 2*eps*k   (implied by Eq.2)
///
/// with L_d = C(b+h-2, h-1), L_s = C(b+h-3, h-1). `extra_height` raises the
/// tree constraint to h + extra_height + 1 <= 2*alpha*eps*k, which is how
/// the parallel algorithm (Section 6) accounts for the coordinator's
/// additional collapses.
///
/// Fails with InvalidArgument for eps or delta outside (0, 1).
Result<UnknownNParams> SolveUnknownN(double eps, double delta,
                                     int extra_height = 0);

/// Convenience: memory (in elements) of the unknown-N algorithm.
Result<std::uint64_t> UnknownNMemoryElements(double eps, double delta);

/// Parameters of the known-N MRL98 algorithm used as the paper's
/// comparator: a fixed up-front sampling rate r (r = 1 means the fully
/// deterministic variant) followed by the same collapse tree.
struct KnownNParams {
  int b = 0;
  std::size_t k = 0;
  int h = 0;          ///< height the tree may reach
  Weight rate = 1;    ///< uniform sampling rate (1 = deterministic)
  double alpha = 1.0; ///< error split; 1.0 for the deterministic variant
  std::uint64_t n = 0;

  std::uint64_t MemoryElements() const {
    return static_cast<std::uint64_t>(b) * k;
  }
  bool sampled() const { return rate > 1; }
};

/// Solves the known-N problem for a stream of exactly `n` elements: the
/// cheaper of (a) the deterministic tree sized to consume n elements, and
/// (b) uniform sampling down to a Hoeffding-sized sample consumed by a tree
/// with guarantee alpha*eps (alpha swept over a grid). This reproduces the
/// "Known N" curve of Figure 4: memory grows with n until sampling takes
/// over, then flattens.
Result<KnownNParams> SolveKnownN(double eps, double delta, std::uint64_t n);

/// Convenience: memory (in elements) of the known-N algorithm for length n.
Result<std::uint64_t> KnownNMemoryElements(double eps, double delta,
                                           std::uint64_t n);

/// Memory (in elements) of the reservoir-sampling baseline (Section 2.2):
/// the whole Hoeffding-sized sample must be stored.
std::uint64_t ReservoirMemoryElements(double eps, double delta);

/// Memory for p simultaneous quantiles (Section 4.7): the union bound
/// replaces delta by delta / p.
Result<std::uint64_t> MultiQuantileMemoryElements(double eps, double delta,
                                                  std::uint64_t p);

/// Memory upper bound for arbitrarily many quantiles via the
/// pre-computation trick (Section 4.7): an eps/2-approximate quantile at
/// each of the 2/eps grid points phi = eps/2, 3*eps/2, ... answers any phi
/// to within eps. Equivalent to the unknown-N cost at (eps/2, delta*eps/2).
Result<std::uint64_t> PrecomputedGridMemoryElements(double eps, double delta);

}  // namespace mrl

#endif  // MRLQUANT_CORE_PARAMS_H_
