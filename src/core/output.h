#ifndef MRLQUANT_CORE_OUTPUT_H_
#define MRLQUANT_CORE_OUTPUT_H_

#include <vector>

#include "core/weighted_merge.h"
#include "util/sort.h"
#include "util/status.h"
#include "util/types.h"

namespace mrl {

/// The Output operator (Section 3.3): the weighted phi-quantile of the
/// union of the runs — the element at weighted position max(1, ceil(phi*W))
/// where W is the total run weight. phi must lie in (0, 1]. Fails with
/// FailedPrecondition when the runs are empty (nothing consumed yet) and
/// InvalidArgument for phi outside (0, 1].
Result<Value> WeightedQuantile(const std::vector<WeightedRun>& runs,
                               double phi);

/// Reusable working storage for WeightedQuantiles: the (phi, query index)
/// permutation records, the sorted weighted targets, the picked values,
/// and the merge kernel's tournament state. Recycled across calls so
/// repeated queries allocate only their result vector.
struct QueryScratch {
  std::vector<KeyedPayload> keyed;  ///< (phi, original query index)
  std::vector<Weight> targets;
  std::vector<Value> picked;
  MergeScratch merge;
};

/// Batch form: one merge pass answers all of `phis` (any order, duplicates
/// allowed); result[i] corresponds to phis[i]. This is what equi-depth
/// histogram maintenance uses. All intermediates come from *scratch.
Result<std::vector<Value>> WeightedQuantiles(
    const std::vector<WeightedRun>& runs, const std::vector<double>& phis,
    QueryScratch* scratch);

/// Convenience wrapper using a thread-local scratch (safe for concurrent
/// const queries on quiescent sketches; see docs/engineering.md).
Result<std::vector<Value>> WeightedQuantiles(
    const std::vector<WeightedRun>& runs, const std::vector<double>& phis);

/// The dual operation: the weighted count of elements <= v across the
/// runs. An estimator whose quantile answers are eps-approximate answers
/// rank queries eps-approximately too (same weighted-merge rank error);
/// this is what selectivity estimation for range predicates uses
/// (Section 1.1, [SALP79]). Fails with FailedPrecondition on empty runs.
Result<Weight> WeightedRankOf(const std::vector<WeightedRun>& runs, Value v);

}  // namespace mrl

#endif  // MRLQUANT_CORE_OUTPUT_H_
