#ifndef MRLQUANT_CORE_EXTREME_H_
#define MRLQUANT_CORE_EXTREME_H_

#include <cstdint>

#include "core/estimator.h"
#include "sampling/bernoulli_sampler.h"
#include "util/bounded_heap.h"
#include "util/random.h"
#include "util/status.h"
#include "util/types.h"

namespace mrl {

/// Configuration for the Section 7 extreme-value estimator.
struct ExtremeValueOptions {
  /// Target quantile; must be "extreme": phi in (0, 0.5) uses the k
  /// smallest sampled elements, phi in (0.5, 1) symmetrically uses the k
  /// largest (with phi' = 1 - phi in the sizing formulas).
  double phi = 0.01;
  double eps = 0.001;
  double delta = 1e-4;
  /// Stream length; the fixed-rate variant needs it to pick the sampling
  /// probability s/N (the paper notes this dependence explicitly).
  std::uint64_t n = 0;
  std::uint64_t seed = 1;
};

/// Derived sizing of the estimator: sample size s from Stein's lemma
/// (delta >= exp(-s D(phi;phi-eps)) + exp(-s D(phi;phi+eps))) and heap
/// size k = ceil(phi * s), so the expected rank of the k-th smallest
/// sampled element is phi * N.
struct ExtremeValueSizing {
  std::uint64_t sample_size = 0;  ///< s
  std::uint64_t k = 0;            ///< retained elements = memory footprint
  double sample_probability = 1.0;  ///< s / N, clamped to 1
};

/// Computes the sizing; fails on invalid (phi, eps, delta) or eps >= min(phi,
/// 1-phi) violations of the paper's premise eps <= phi (when eps == phi the
/// caller should just track Min/Max in O(1)).
Result<ExtremeValueSizing> SolveExtremeValue(double phi, double eps,
                                             double delta, std::uint64_t n);

/// Section 7 algorithm: Bernoulli-sample the stream at rate s/N and keep
/// only the k most extreme sampled elements in a bounded heap; the k-th
/// one (heap root) is the estimate. Memory is k elements — quantifiably
/// smaller than the general algorithm's b*k when phi is close to 0 or 1
/// (the bench/extreme_values harness reproduces that comparison).
class ExtremeValueSketch : public QuantileEstimator {
 public:
  static Result<ExtremeValueSketch> Create(const ExtremeValueOptions& options);

  ExtremeValueSketch(ExtremeValueSketch&&) = default;
  ExtremeValueSketch& operator=(ExtremeValueSketch&&) = default;

  void Add(Value v) override;
  std::uint64_t count() const override { return count_; }

  /// The estimate. Degrades gracefully when fewer than k sampled elements
  /// exist (short stream): returns the most interior retained element.
  /// Fails only when no element was sampled at all.
  Result<Value> Query(double phi) const override;

  std::uint64_t MemoryElements() const override { return sizing_.k; }
  std::string name() const override { return "extreme_value"; }

  const ExtremeValueSizing& sizing() const { return sizing_; }
  std::uint64_t sampled_count() const { return heap_offered_; }

  /// Returns the sketch to its freshly constructed state, reusing the heap
  /// storage. Reset() replays the construction seed; Reset(seed) re-seeds.
  void Reset() override { Reset(options_.seed); }
  void Reset(std::uint64_t seed) override;

  /// Checkpointing, mirroring UnknownNSketch::Serialize/Deserialize.
  bool SupportsCheckpoint() const override { return true; }
  std::vector<std::uint8_t> Serialize() const override;
  static Result<ExtremeValueSketch> Deserialize(
      const std::vector<std::uint8_t>& bytes);

  /// In-place restore from Serialize() output (see UnknownNSketch::Restore).
  Status Restore(std::span<const std::uint8_t> bytes) override;

 private:
  ExtremeValueSketch(const ExtremeValueOptions& options,
                     const ExtremeValueSizing& sizing);

  ExtremeValueOptions options_;
  ExtremeValueSizing sizing_;
  BernoulliSampler sampler_;
  KBest heap_;
  std::uint64_t count_ = 0;
  std::uint64_t heap_offered_ = 0;
};

/// Extension beyond the paper (documented in DESIGN.md): the same estimator
/// without advance knowledge of N. It starts at sampling probability 1 and
/// halves the probability (subsampling the retained set to match) whenever
/// the expected sample size would exceed the Stein budget, in the spirit of
/// the unknown-N algorithm's rate doubling. Memory is a constant factor
/// above the fixed-rate variant's k.
class AdaptiveExtremeValueSketch : public QuantileEstimator {
 public:
  struct Options {
    double phi = 0.01;
    double eps = 0.001;
    double delta = 1e-4;
    std::uint64_t seed = 1;
  };

  static Result<AdaptiveExtremeValueSketch> Create(const Options& options);

  AdaptiveExtremeValueSketch(AdaptiveExtremeValueSketch&&) = default;
  AdaptiveExtremeValueSketch& operator=(AdaptiveExtremeValueSketch&&) =
      default;

  void Add(Value v) override;
  std::uint64_t count() const override { return count_; }
  Result<Value> Query(double phi) const override;
  std::uint64_t MemoryElements() const override { return heap_.capacity(); }
  std::string name() const override { return "extreme_value_adaptive"; }

  /// Returns the sketch to its freshly constructed state, reusing the heap
  /// storage. Reset() replays the construction seed; Reset(seed) re-seeds.
  void Reset() override { Reset(options_.seed); }
  void Reset(std::uint64_t seed) override;

  double sample_probability() const { return probability_; }

 private:
  AdaptiveExtremeValueSketch(const Options& options, std::uint64_t budget_s,
                             std::size_t heap_capacity);

  Options options_;
  std::uint64_t budget_s_;   ///< Stein sample-size budget s*
  double probability_ = 1.0; ///< current inclusion probability
  Random rng_;
  KBest heap_;
  std::uint64_t count_ = 0;
  std::uint64_t sampled_ = 0;  ///< elements currently represented (kept/q)
};

}  // namespace mrl

#endif  // MRLQUANT_CORE_EXTREME_H_
