#ifndef MRLQUANT_CORE_DET_RESERVOIR_H_
#define MRLQUANT_CORE_DET_RESERVOIR_H_

#include <cstdint>
#include <vector>

#include "core/estimator.h"
#include "util/status.h"
#include "util/types.h"

namespace mrl {

/// Configuration for the deterministic-merge reservoir backend.
struct DetReservoirOptions {
  double eps = 0.01;
  double delta = 1e-4;
  /// Hash seed. Sketches can only merge when their seeds are equal (the
  /// seed defines the survival predicate, not a PRNG stream).
  std::uint64_t seed = 1;
  /// Sample capacity; 0 derives it from (eps, delta) via the Hoeffding
  /// bound, matching the classic reservoir baseline.
  std::uint64_t capacity = 0;
};

/// Hash-thinned reservoir in the style of ClickHouse's
/// ReservoirSamplerDeterministic: element at stream position p survives iff
/// the low `skip_degree` bits of a 32-bit position hash are zero
/// (`good(hash)`), and when the sample overflows its capacity the skip
/// degree is raised and the retained set re-filtered. There is no PRNG
/// state at all — survival is a pure function of (seed, position) — so two
/// sketches built from the same inputs are bitwise identical, and Merge is
/// deterministic and collision-exact: it adopts the larger skip degree,
/// re-filters both sides under it, and concatenates. Each retained element
/// represents 2^skip_degree stream elements, so the plain order statistic
/// of the sample estimates the quantile.
class DeterministicReservoirSketch : public QuantileEstimator {
 public:
  static Result<DeterministicReservoirSketch> Create(
      const DetReservoirOptions& options);

  DeterministicReservoirSketch(DeterministicReservoirSketch&&) = default;
  DeterministicReservoirSketch& operator=(DeterministicReservoirSketch&&) =
      default;

  void Add(Value v) override;
  std::uint64_t count() const override { return count_; }

  Result<Value> Query(double phi) const override;

  std::uint64_t MemoryElements() const override { return capacity_; }
  /// Each retained slot carries the value plus its 32-bit hash tag.
  std::uint64_t MemoryBytes() const override {
    return capacity_ * (sizeof(Value) + sizeof(std::uint32_t));
  }
  std::string name() const override { return "det_reservoir"; }

  void Reset() override { Reset(options_.seed); }
  void Reset(std::uint64_t seed) override;

  /// Deterministic merge: requires equal hash seeds (the survival
  /// predicates must agree), adopts max(skip_degree), re-filters, and
  /// concatenates. Capacities may differ; the smaller of the two bounds the
  /// merged sample.
  Status Merge(const QuantileEstimator& other) override;

  bool SupportsCheckpoint() const override { return true; }
  std::vector<std::uint8_t> Serialize() const override;
  Status Restore(std::span<const std::uint8_t> bytes) override;
  static Result<DeterministicReservoirSketch> Deserialize(
      const std::vector<std::uint8_t>& bytes);

  std::uint8_t skip_degree() const { return skip_degree_; }
  std::uint64_t sample_size() const { return values_.size(); }

  /// 32-bit position hash: the SplitMix64 finalizer over the seed-offset
  /// golden-ratio counter (the determinator). Exposed for tests.
  static std::uint32_t HashPosition(std::uint64_t seed, std::uint64_t pos);

 private:
  DeterministicReservoirSketch(const DetReservoirOptions& options,
                               std::uint64_t capacity);

  bool Good(std::uint32_t hash) const {
    return hash == ((hash >> skip_degree_) << skip_degree_);
  }
  /// Raises skip_degree_ and re-filters until the sample fits.
  void ThinOut();

  DetReservoirOptions options_;
  std::uint64_t capacity_ = 0;
  std::uint8_t skip_degree_ = 0;
  std::uint64_t count_ = 0;
  /// Parallel arrays: retained values and their position-hash tags.
  std::vector<Value> values_;
  std::vector<std::uint32_t> hashes_;
};

}  // namespace mrl

#endif  // MRLQUANT_CORE_DET_RESERVOIR_H_
