#ifndef MRLQUANT_CORE_ESTIMATOR_H_
#define MRLQUANT_CORE_ESTIMATOR_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/partial.h"
#include "util/status.h"
#include "util/types.h"

namespace mrl {

/// Common interface of every single-pass quantile estimator in the library
/// (the MRL99 sketches, the KLL and deterministic-reservoir backends, and
/// the baselines). Since PR 6 this is the full backend lifecycle contract —
/// the serving registry, the checkpoint paths and the differential/bench
/// harnesses all drive sketches through it — not just a query-side test
/// convenience. Hot paths are still free to use the concrete classes
/// directly and skip the virtual dispatch.
class QuantileEstimator {
 public:
  virtual ~QuantileEstimator() = default;

  /// Consumes one stream element.
  ///
  /// NaN contract: the algorithms are comparison based, so NaN input has no
  /// defined rank and is a caller error. The core sketches trap (CHECK-
  /// abort) any NaN that would enter sketch state — every element on the
  /// element-wise path, sampled survivors and the pending block candidate
  /// on the batch path — and MRLQUANT_AUDIT builds scan whole batches
  /// (audit::CheckNoNaN). ±inf, ±0.0 and denormals are ordinary values.
  virtual void Add(Value v) = 0;

  /// Consumes a contiguous span of stream elements, equivalent to calling
  /// Add on each in turn. Sketches with a batch ingestion fast path
  /// (UnknownNSketch and its wrappers) override this with an implementation
  /// that is bit-identical to the element-wise loop under the same seed but
  /// substantially faster; the default simply loops.
  /// tests/batch_equivalence_test.cc pins the bit-identity contract for
  /// every backend.
  virtual void AddBatch(std::span<const Value> values) {
    for (Value v : values) Add(v);
  }

  /// Elements consumed so far.
  virtual std::uint64_t count() const = 0;

  /// Estimate of the phi-quantile of everything consumed so far.
  /// Fails with FailedPrecondition before any element has been consumed and
  /// InvalidArgument for phi outside (0, 1].
  virtual Result<Value> Query(double phi) const = 0;

  /// Answers every phi in one call. Backends with a merged-summary batch
  /// path override this to build their synopsis once; the default loops
  /// Query. Fails under the same conditions as Query.
  virtual Result<std::vector<Value>> QueryMany(
      const std::vector<double>& phis) const {
    std::vector<Value> answers;
    answers.reserve(phis.size());
    for (double phi : phis) {
      Result<Value> answer = Query(phi);
      if (!answer.ok()) return answer.status();
      answers.push_back(answer.value());
    }
    return answers;
  }

  /// Peak main-memory footprint in stored elements (the unit the paper's
  /// tables use).
  virtual std::uint64_t MemoryElements() const = 0;

  /// Peak main-memory footprint in bytes. The default charges
  /// sizeof(Value) per stored element; backends that carry per-element
  /// metadata (e.g. the deterministic reservoir's hash tags) override it.
  virtual std::uint64_t MemoryBytes() const {
    return MemoryElements() * sizeof(Value);
  }

  /// Short display name for reports.
  virtual std::string name() const = 0;

  // -------------------------------------------------------------------------
  // Lifecycle (registry/checkpoint surface)

  /// Returns the sketch to its freshly constructed state without releasing
  /// buffer pools or warmed scratch storage, so a serving layer can recycle
  /// tenant slots allocation-free. For checkpoint-capable backends the
  /// serialized state after Reset() is byte-identical to a newly
  /// constructed sketch with the same options (tests/reset_test.cc).
  virtual void Reset() = 0;

  /// As Reset(), but re-seeds the backend's randomness with `seed` (the
  /// state a fresh sketch constructed with that seed would have).
  /// Deterministic backends without internal randomness ignore the seed;
  /// the default delegates to Reset().
  virtual void Reset(std::uint64_t seed) {
    (void)seed;
    Reset();
  }

  /// Folds `other` into this sketch so that subsequent queries answer over
  /// the union of both streams. Backends that cannot merge return
  /// Unimplemented (the default); mergeable backends document their
  /// compatibility requirements (same structural parameters, and for the
  /// deterministic reservoir the same hash seed).
  virtual Status Merge(const QuantileEstimator& other) {
    (void)other;
    return Status::Unimplemented("this backend does not support Merge");
  }

  /// True when Serialize()/Restore() round-trip the complete sketch state
  /// (docs/checkpoint_format.md). The registry only instantiates
  /// checkpoint-capable backends.
  virtual bool SupportsCheckpoint() const { return false; }

  /// Encodes the complete sketch state in the backend's versioned
  /// checkpoint format. Returns an empty blob for backends without
  /// checkpoint support (SupportsCheckpoint() == false).
  virtual std::vector<std::uint8_t> Serialize() const { return {}; }

  /// Restores this instance from Serialize() output of a structurally
  /// compatible sketch. Rejects truncated, corrupt or kind-mismatched
  /// input with a Status rather than crashing; on error the sketch is
  /// unchanged. The default (non-checkpoint backends) is Unimplemented.
  virtual Status Restore(std::span<const std::uint8_t> bytes) {
    (void)bytes;
    return Status::Unimplemented("this backend does not support Restore");
  }

  /// True when ExportPartial produces a Section 6 partial summary. Only the
  /// MRL99 backends (collapse-tree buffers are the paper's hand-off unit)
  /// support it; the router's fan-out merge requires it on every backend of
  /// a range-partitioned tenant.
  virtual bool SupportsPartialExport() const { return false; }

  /// Exports the sketch's current content as weighted Section 6 buffers
  /// without disturbing the live sketch (contrast with
  /// UnknownNSketch::FinishAndExport, which terminates the worker). The
  /// default (backends without a buffer structure) is Unimplemented.
  virtual Status ExportPartial(PartialSummary* out) const {
    (void)out;
    return Status::Unimplemented(
        "this backend does not support partial export");
  }

  /// Convenience: consume a whole vector (via the batch path).
  void AddAll(const std::vector<Value>& values) {
    AddBatch(std::span<const Value>(values.data(), values.size()));
  }
};

}  // namespace mrl

#endif  // MRLQUANT_CORE_ESTIMATOR_H_
