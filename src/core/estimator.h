#ifndef MRLQUANT_CORE_ESTIMATOR_H_
#define MRLQUANT_CORE_ESTIMATOR_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/types.h"

namespace mrl {

/// Common interface of every single-pass quantile estimator in the library
/// (the MRL99 sketches and the baselines), so that tests and benchmark
/// harnesses can sweep over algorithms uniformly. Hot paths are free to use
/// the concrete classes directly and skip the virtual dispatch.
class QuantileEstimator {
 public:
  virtual ~QuantileEstimator() = default;

  /// Consumes one stream element.
  ///
  /// NaN contract: the algorithms are comparison based, so NaN input has no
  /// defined rank and is a caller error. The core sketches trap (CHECK-
  /// abort) any NaN that would enter sketch state — every element on the
  /// element-wise path, sampled survivors and the pending block candidate
  /// on the batch path — and MRLQUANT_AUDIT builds scan whole batches
  /// (audit::CheckNoNaN). ±inf, ±0.0 and denormals are ordinary values.
  virtual void Add(Value v) = 0;

  /// Consumes a contiguous span of stream elements, equivalent to calling
  /// Add on each in turn. Sketches with a batch ingestion fast path
  /// (UnknownNSketch and its wrappers) override this with an implementation
  /// that is bit-identical to the element-wise loop under the same seed but
  /// substantially faster; the default simply loops.
  virtual void AddBatch(std::span<const Value> values) {
    for (Value v : values) Add(v);
  }

  /// Elements consumed so far.
  virtual std::uint64_t count() const = 0;

  /// Estimate of the phi-quantile of everything consumed so far.
  /// Fails with FailedPrecondition before any element has been consumed and
  /// InvalidArgument for phi outside (0, 1].
  virtual Result<Value> Query(double phi) const = 0;

  /// Peak main-memory footprint in stored elements (the unit the paper's
  /// tables use; multiply by sizeof(Value) for bytes).
  virtual std::uint64_t MemoryElements() const = 0;

  /// Short display name for reports.
  virtual std::string name() const = 0;

  /// Convenience: consume a whole vector (via the batch path).
  void AddAll(const std::vector<Value>& values) {
    AddBatch(std::span<const Value>(values.data(), values.size()));
  }
};

}  // namespace mrl

#endif  // MRLQUANT_CORE_ESTIMATOR_H_
