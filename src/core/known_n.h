#ifndef MRLQUANT_CORE_KNOWN_N_H_
#define MRLQUANT_CORE_KNOWN_N_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/estimator.h"
#include "core/framework.h"
#include "core/params.h"
#include "sampling/block_sampler.h"
#include "util/random.h"
#include "util/status.h"
#include "util/types.h"

namespace mrl {

/// Configuration for KnownNSketch.
struct KnownNOptions {
  double eps = 0.01;
  double delta = 1e-4;
  /// Declared stream length. The guarantee covers streams of exactly this
  /// length; feeding more elements flips the sketch into an overflowed
  /// state where Query returns FailedPrecondition.
  std::uint64_t n = 0;
  std::uint64_t seed = 1;
  std::optional<KnownNParams> params;
};

/// The MRL98 comparator: requires N in advance. A *uniform* block sampler
/// at a fixed rate r (chosen up front from N, eps, delta) feeds the same
/// deterministic collapse tree; r = 1 degenerates to the fully
/// deterministic algorithm. This is the "Known N" line of Figure 4 and the
/// right-hand columns of Table 1.
class KnownNSketch : public QuantileEstimator {
 public:
  static Result<KnownNSketch> Create(const KnownNOptions& options);

  KnownNSketch(KnownNSketch&&) = default;
  KnownNSketch& operator=(KnownNSketch&&) = default;

  void Add(Value v) override;

  /// Batch ingestion fast path; bit-identical to element-wise Add under the
  /// same seed for any batching of the stream (see UnknownNSketch::AddBatch).
  void AddBatch(std::span<const Value> values) override;

  std::uint64_t count() const override { return count_; }

  /// Anytime estimate over the prefix consumed so far; the paper-grade
  /// guarantee applies at count() == n. Fails with FailedPrecondition when
  /// nothing was consumed or when the sketch overflowed its declared n.
  Result<Value> Query(double phi) const override;

  std::uint64_t MemoryElements() const override {
    return params_.MemoryElements();
  }
  std::string name() const override { return "mrl98_known_n"; }

  Result<std::vector<Value>> QueryMany(
      const std::vector<double>& phis) const override;

  /// Returns the sketch to its freshly constructed state (clearing any
  /// overflow) without releasing the buffer pool; serialized state after
  /// Reset() is byte-identical to a new sketch with the same options. See
  /// UnknownNSketch::Reset for the seed semantics.
  void Reset() override;
  void Reset(std::uint64_t seed) override;

  const KnownNParams& params() const { return params_; }
  bool overflowed() const { return count_ > params_.n; }
  const TreeStats& tree_stats() const { return framework_.stats(); }
  Weight HeldWeight() const;

  /// Internal framework, exposed read-only for white-box tests (mirrors
  /// UnknownNSketch::framework()).
  const CollapseFramework& framework() const { return framework_; }

  /// Checkpointing, mirroring UnknownNSketch::Serialize/Deserialize.
  bool SupportsCheckpoint() const override { return true; }
  std::vector<std::uint8_t> Serialize() const override;
  static Result<KnownNSketch> Deserialize(
      const std::vector<std::uint8_t>& bytes);

  /// In-place restore from Serialize() output (see UnknownNSketch::Restore).
  Status Restore(std::span<const std::uint8_t> bytes) override;

 private:
  KnownNSketch(const KnownNParams& params, std::uint64_t seed);

  struct RunSnapshot {
    std::vector<Value> partial_sorted;
    std::vector<Value> tail;
    std::vector<WeightedRun> runs;
  };
  RunSnapshot Snapshot() const;

  /// As Snapshot, reusing *snap's capacity (see UnknownNSketch).
  void SnapshotInto(RunSnapshot* snap) const;

  void StartNewFill();

  /// MRLQUANT_AUDIT hook run after each buffer commit: weight conservation
  /// always, the Eq. 2 height budget when params_ came from the solver.
  void AuditAfterCommit() const;

  KnownNParams params_;
  CollapseFramework framework_;
  BlockSampler sampler_;
  std::uint64_t seed_ = 1;  ///< construction seed, replayed by Reset()
  std::uint64_t count_ = 0;

  bool filling_ = false;
  std::size_t fill_slot_ = 0;

  /// True when params_ came from SolveKnownN, whose Eq. 2 sizing is what
  /// justifies the MRLQUANT_AUDIT tree-height check; explicit parameters
  /// make no height promise. Not checkpointed (restored sketches skip the
  /// height audit).
  bool audit_height_budget_ = false;

  /// Survivor staging area reused across AddBatch calls; not sketch state.
  std::vector<Value> batch_scratch_;
};

}  // namespace mrl

#endif  // MRLQUANT_CORE_KNOWN_N_H_
