#ifndef MRLQUANT_CORE_PARTIAL_H_
#define MRLQUANT_CORE_PARTIAL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/params.h"
#include "util/status.h"
#include "util/types.h"

namespace mrl {

/// A buffer a parallel worker ships to the coordinator on termination
/// (Section 6): its elements, their common weight, and whether the buffer
/// is full (exactly k elements) or partial.
struct ShippedBuffer {
  std::vector<Value> values;
  Weight weight = 1;
  bool full = false;
};

/// A self-describing bundle of shipped buffers: the distributed hand-off
/// format of the Section 6 protocol. A backend exports one non-destructively
/// (QuantileEstimator::ExportPartial), ships it over the wire
/// (Serialize/DeserializePartialSummary below), and a router merges any
/// number of them with the coordinator's own rules (MergePartialQuantiles)
/// — no re-ingestion, same (eps, delta) story as the in-process protocol.
struct PartialSummary {
  /// Parameters of the producing sketch. Merging requires identical k
  /// across summaries (the collapse tree operates on k-element buffers).
  UnknownNParams params;
  /// Elements the producer had consumed at export time.
  std::uint64_t count = 0;
  std::vector<ShippedBuffer> buffers;
};

/// Appends the versioned wire encoding of `summary` to *out.
void SerializePartialSummary(const PartialSummary& summary,
                             std::vector<std::uint8_t>* out);

/// Decodes SerializePartialSummary output. The input is untrusted (it
/// arrives over the network): every field is validated — magic/version,
/// parameter ranges (the same caps as the sketch checkpoint decoder),
/// full-buffer sizes, weights, NaN elements — so a hostile blob can never
/// reach the coordinator's CHECK-aborting ingest path.
Result<PartialSummary> DeserializePartialSummary(
    std::span<const std::uint8_t> bytes);

/// Merges any number of partial summaries with the Section 6 coordinator
/// rules (full buffers enter a collapse tree with weights retained;
/// partials are staged with subsample-the-lighter reconciliation) and
/// answers every phi. Requires at least one summary and identical k across
/// all of them; `seed` drives the Bernoulli reconciliation draws.
Result<std::vector<Value>> MergePartialQuantiles(
    const std::vector<PartialSummary>& parts, std::uint64_t seed,
    const std::vector<double>& phis);

}  // namespace mrl

#endif  // MRLQUANT_CORE_PARTIAL_H_
