#include "core/collapse.h"

#include "core/weighted_merge.h"
#include "util/logging.h"

namespace mrl {

std::vector<Weight> CollapsePositions(Weight w, std::size_t k, bool even_low) {
  MRL_CHECK_GE(w, 2u);
  std::vector<Weight> positions;
  positions.reserve(k);
  Weight offset;
  if (w % 2 == 1) {
    offset = (w + 1) / 2;
  } else {
    offset = even_low ? w / 2 : (w + 2) / 2;
  }
  for (std::size_t j = 0; j < k; ++j) {
    positions.push_back(static_cast<Weight>(j) * w + offset);
  }
  return positions;
}

Weight Collapse(const std::vector<Buffer*>& inputs, std::size_t output_slot,
                int output_level, bool* even_low_offset) {
  MRL_CHECK_GE(inputs.size(), 2u);
  MRL_CHECK_LT(output_slot, inputs.size());
  MRL_CHECK(even_low_offset != nullptr);

  const std::size_t k = inputs[0]->capacity();
  Weight w = 0;
  std::vector<WeightedRun> runs;
  runs.reserve(inputs.size());
  for (Buffer* in : inputs) {
    MRL_CHECK(in->state() == BufferState::kFull)
        << "Collapse input must be full, got " << BufferStateName(in->state());
    MRL_CHECK_EQ(in->capacity(), k);
    MRL_CHECK_EQ(in->size(), k);
    w += in->weight();
    runs.push_back({in->values().data(), in->size(), in->weight()});
  }

  std::vector<Weight> positions = CollapsePositions(w, k, *even_low_offset);
  if (w % 2 == 0) {
    *even_low_offset = !*even_low_offset;  // alternate on even weights (§3.2)
  }
  std::vector<Value> selected = SelectWeightedPositions(runs, positions);
  MRL_CHECK_EQ(selected.size(), k);

  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (i != output_slot) inputs[i]->Clear();
  }
  inputs[output_slot]->AssignSorted(std::move(selected), w, output_level);
  return w;
}

}  // namespace mrl
