#include "core/collapse.h"

#include "core/weighted_merge.h"
#include "util/logging.h"

namespace mrl {

void CollapsePositionsInto(Weight w, std::size_t k, bool even_low,
                           std::vector<Weight>* out) {
  MRL_CHECK_GE(w, 2u);
  MRL_CHECK(out != nullptr);
  out->clear();
  Weight offset;
  if (w % 2 == 1) {
    offset = (w + 1) / 2;
  } else {
    offset = even_low ? w / 2 : (w + 2) / 2;
  }
  for (std::size_t j = 0; j < k; ++j) {
    // NOLINTNEXTLINE(mrlquant-no-alloc-in-hot-path): *out is arena-owned
    // (CollapseScratch::positions); capacity k is warmed by the first
    // collapse and recycled forever after.
    out->push_back(static_cast<Weight>(j) * w + offset);
  }
}

std::vector<Weight> CollapsePositions(Weight w, std::size_t k, bool even_low) {
  std::vector<Weight> positions;
  positions.reserve(k);
  CollapsePositionsInto(w, k, even_low, &positions);
  return positions;
}

Weight Collapse(const std::vector<Buffer*>& inputs, std::size_t output_slot,
                int output_level, bool* even_low_offset,
                CollapseScratch* scratch) {
  MRL_CHECK_GE(inputs.size(), 2u);
  MRL_CHECK_LT(output_slot, inputs.size());
  MRL_CHECK(even_low_offset != nullptr);
  MRL_CHECK(scratch != nullptr);

  const std::size_t k = inputs[0]->capacity();
  Weight w = 0;
  scratch->runs.clear();
  for (Buffer* in : inputs) {
    MRL_CHECK(in->state() == BufferState::kFull)
        << "Collapse input must be full, got " << BufferStateName(in->state());
    MRL_CHECK_EQ(in->capacity(), k);
    MRL_CHECK_EQ(in->size(), k);
    w += in->weight();
    // NOLINTNEXTLINE(mrlquant-no-alloc-in-hot-path): run table capacity
    // (≤ b entries) is warmed by the first collapse and recycled.
    scratch->runs.push_back({in->values().data(), in->size(), in->weight()});
  }

  CollapsePositionsInto(w, k, *even_low_offset, &scratch->positions);
  if (w % 2 == 0) {
    *even_low_offset = !*even_low_offset;  // alternate on even weights (§3.2)
  }
  // NOLINTNEXTLINE(mrlquant-no-alloc-in-hot-path): storage swaps back out
  // of the output buffer (SwapSorted below), so capacity k is always
  // already present in steady state.
  scratch->selected.resize(k);
  SelectWeightedPositionsInto(scratch->runs.data(), scratch->runs.size(),
                              scratch->positions.data(),
                              scratch->positions.size(), &scratch->merge,
                              scratch->selected.data());

  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (i != output_slot) inputs[i]->Clear();
  }
  // Swap rather than move-assign: the output slot's old storage returns to
  // the scratch arena and is recycled by the next collapse.
  inputs[output_slot]->SwapSorted(&scratch->selected, w, output_level);
  return w;
}

Weight Collapse(const std::vector<Buffer*>& inputs, std::size_t output_slot,
                int output_level, bool* even_low_offset) {
  CollapseScratch scratch;
  return Collapse(inputs, output_slot, output_level, even_low_offset,
                  &scratch);
}

}  // namespace mrl
