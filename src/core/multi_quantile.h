#ifndef MRLQUANT_CORE_MULTI_QUANTILE_H_
#define MRLQUANT_CORE_MULTI_QUANTILE_H_

#include <cstdint>
#include <vector>

#include "core/estimator.h"
#include "core/unknown_n.h"
#include "util/status.h"
#include "util/types.h"

namespace mrl {

/// Simultaneous computation of up to `num_quantiles` quantiles (Section
/// 4.7): the algorithm is unchanged; the analysis replaces delta by
/// delta / p (union bound), so each of the p answers is eps-approximate
/// with overall probability >= 1 - delta.
class MultiQuantileSketch : public QuantileEstimator {
 public:
  struct Options {
    double eps = 0.01;
    double delta = 1e-4;
    std::uint64_t num_quantiles = 1;  ///< p
    std::uint64_t seed = 1;
  };

  static Result<MultiQuantileSketch> Create(const Options& options);

  MultiQuantileSketch(MultiQuantileSketch&&) = default;
  MultiQuantileSketch& operator=(MultiQuantileSketch&&) = default;

  void Add(Value v) override { inner_.Add(v); }
  void AddBatch(std::span<const Value> values) override {
    inner_.AddBatch(values);
  }
  std::uint64_t count() const override { return inner_.count(); }
  Result<Value> Query(double phi) const override { return inner_.Query(phi); }
  std::uint64_t MemoryElements() const override {
    return inner_.MemoryElements();
  }
  std::string name() const override { return "mrl99_multi_quantile"; }

  /// All requested quantiles in one merge pass. The joint guarantee covers
  /// at most `num_quantiles` simultaneous answers; more is rejected.
  Result<std::vector<Value>> QueryMany(
      const std::vector<double>& phis) const override;

  void Reset() override { inner_.Reset(); }
  void Reset(std::uint64_t seed) override { inner_.Reset(seed); }

  std::uint64_t num_quantiles() const { return p_; }
  const UnknownNParams& params() const { return inner_.params(); }

 private:
  MultiQuantileSketch(UnknownNSketch inner, std::uint64_t p)
      : inner_(std::move(inner)), p_(p) {}

  UnknownNSketch inner_;
  std::uint64_t p_;
};

/// The pre-computation trick (Section 4.7): maintain eps/2-approximate
/// quantiles at the grid phi = eps/2, 3*eps/2, 5*eps/2, ...; answering any
/// phi with the nearest grid point is eps-approximate. Memory is
/// independent of the number of queries — useful when p is huge or unknown
/// (e.g. equi-depth histograms with p not fixed in advance).
class PrecomputedQuantiles : public QuantileEstimator {
 public:
  struct Options {
    double eps = 0.01;
    double delta = 1e-4;
    std::uint64_t seed = 1;
  };

  static Result<PrecomputedQuantiles> Create(const Options& options);

  PrecomputedQuantiles(PrecomputedQuantiles&&) = default;
  PrecomputedQuantiles& operator=(PrecomputedQuantiles&&) = default;

  void Add(Value v) override { inner_.Add(v); }
  void AddBatch(std::span<const Value> values) override {
    inner_.AddBatch(values);
  }
  std::uint64_t count() const override { return inner_.count(); }

  /// Answers any phi in (0, 1] via the nearest grid point.
  Result<Value> Query(double phi) const override;

  std::uint64_t MemoryElements() const override {
    return inner_.MemoryElements();
  }
  std::string name() const override { return "mrl99_precomputed_grid"; }

  void Reset() override { inner_.Reset(); }
  void Reset(std::uint64_t seed) override { inner_.Reset(seed); }

  /// The grid of quantile fractions this sketch maintains.
  const std::vector<double>& grid() const { return grid_; }

 private:
  PrecomputedQuantiles(UnknownNSketch inner, std::vector<double> grid,
                       double eps)
      : inner_(std::move(inner)), grid_(std::move(grid)), eps_(eps) {}

  UnknownNSketch inner_;
  std::vector<double> grid_;
  double eps_;
};

}  // namespace mrl

#endif  // MRLQUANT_CORE_MULTI_QUANTILE_H_
