#ifndef MRLQUANT_CORE_FRAMEWORK_H_
#define MRLQUANT_CORE_FRAMEWORK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/buffer.h"
#include "core/collapse.h"
#include "core/collapse_policy.h"
#include "core/weighted_merge.h"
#include "util/serde.h"
#include "util/types.h"

namespace mrl {

/// Counters describing the collapse tree built so far; used by the analysis
/// (Lemmas 4–5 bound the output error via C and W), by tests asserting tree
/// shape (Figures 2–3), and by benchmark reports.
struct TreeStats {
  std::uint64_t num_collapses = 0;  ///< C: Collapse invocations
  Weight sum_collapse_weights = 0;  ///< W: sum of output weights of Collapses
  std::uint64_t leaves_created = 0; ///< New buffers committed full
  int max_level = 0;                ///< highest level of any buffer so far
};

/// The deterministic second stage of Figure 1: b physical buffers of k
/// elements each, a collapse policy, and the Collapse bookkeeping shared by
/// every algorithm in the MRL framework (known-N, unknown-N, the baselines,
/// and the parallel coordinator).
///
/// The framework does not sample and does not know about phi; callers fill
/// buffers (New) and read runs out of it (Output).
class CollapseFramework {
 public:
  CollapseFramework(int num_buffers, std::size_t buffer_capacity,
                    std::unique_ptr<CollapsePolicy> policy);

  CollapseFramework(const CollapseFramework&) = delete;
  CollapseFramework& operator=(const CollapseFramework&) = delete;
  CollapseFramework(CollapseFramework&&) = default;
  CollapseFramework& operator=(CollapseFramework&&) = default;

  int num_buffers() const { return static_cast<int>(buffers_.size()); }
  std::size_t buffer_capacity() const { return buffer_capacity_; }

  Buffer& buffer(std::size_t slot) { return buffers_[slot]; }
  const Buffer& buffer(std::size_t slot) const { return buffers_[slot]; }

  /// Returns the slot of an empty buffer among the first usable_buffers()
  /// slots, invoking Collapse per the policy when none exists. Requires
  /// that no buffer is currently kFilling when a collapse becomes necessary
  /// (the caller fills one buffer at a time).
  std::size_t AcquireEmptySlot();

  /// Dynamic buffer allocation (Section 5): restricts the framework to its
  /// first `m` slots (1 <= m <= num_buffers()). Shrinking below the current
  /// value is only legal while the excluded slots are still empty, i.e.
  /// right after construction.
  void SetUsableBuffers(int m);
  int usable_buffers() const { return usable_buffers_; }

  /// Promotes the kFilling buffer in `slot` to kFull with the given weight
  /// and level, updating tree statistics.
  void CommitFull(std::size_t slot, Weight weight, int level);

  /// Ingests an externally produced sorted run as a full buffer (used by
  /// the parallel coordinator, Section 6). `sorted` must have exactly
  /// buffer_capacity() elements.
  void IngestFull(std::vector<Value> sorted, Weight weight, int level);

  /// Copying variant of IngestFull: assigns the range into the target
  /// slot's existing storage, so a warmed pool allocates nothing.
  void IngestFullCopy(const Value* sorted, std::size_t n, Weight weight,
                      int level);

  /// Collapses all full buffers into one (a worker's final collapse before
  /// shipping, Section 6). Returns false (and does nothing) when fewer than
  /// two buffers are full.
  bool CollapseAllFull();

  /// Number of buffers in the given state.
  std::size_t CountState(BufferState s) const;

  /// View of every full buffer for policies / tests.
  std::vector<FullBufferInfo> FullBuffers() const;

  /// As FullBuffers, into caller-provided scratch (capacity reused).
  void FullBuffersInto(std::vector<FullBufferInfo>* out) const;

  /// Weighted runs over all full buffers; the caller appends any partial /
  /// in-flight runs before calling Output.
  std::vector<WeightedRun> FullBufferRuns() const;

  /// As FullBufferRuns, into caller-provided scratch (capacity reused).
  void FullBufferRunsInto(std::vector<WeightedRun>* out) const;

  /// Sum of TotalWeight over full buffers.
  Weight FullWeight() const;

  const TreeStats& stats() const { return stats_; }
  int max_level() const { return stats_.max_level; }

  /// One-line-per-buffer human-readable dump of the pool (state, level,
  /// weight, fill), plus the tree counters — the textual form of the
  /// paper's Figure 2/3 trees, for logs and debugging.
  std::string DebugString() const;

  const CollapsePolicy& policy() const { return *policy_; }

  /// Ablation-only: freezes the Collapse even-weight offset at the low
  /// choice instead of alternating (Section 3.2 prescribes alternation; the
  /// ablation bench quantifies the drift this prevents).
  void SetOffsetAlternationEnabled(bool enabled) {
    alternation_enabled_ = enabled;
  }

  /// Returns the framework to its freshly constructed state — all buffers
  /// empty, statistics zeroed, alternation phase reset, every slot usable —
  /// without releasing any buffer storage. The ablation-only alternation
  /// switch is preserved (it is construction-time configuration, not
  /// stream state). Serialized state after Reset is byte-identical to a
  /// newly constructed framework's.
  void Reset();

  /// Checkpointing (util/serde.h): writes the buffer pool, the collapse
  /// alternation phase, the usable-buffer count, and the tree statistics.
  void SerializeTo(BinaryWriter* writer) const;

  /// Restores state written by SerializeTo onto a freshly constructed
  /// framework with identical (num_buffers, buffer_capacity, policy).
  /// Fails (without crashing) on truncated or semantically invalid input.
  Status DeserializeFrom(BinaryReader* reader);

 private:
  void CollapseOnce();

  std::size_t buffer_capacity_;
  std::vector<Buffer> buffers_;
  int usable_buffers_ = 0;  // set to num_buffers() in the constructor
  std::unique_ptr<CollapsePolicy> policy_;
  bool even_low_offset_ = true;      // Collapse alternation phase (§3.2)
  bool alternation_enabled_ = true;  // false only in ablation runs
  TreeStats stats_;
  // Reused across collapses so steady state allocates nothing. Holds only
  // transient per-collapse state; safe to move with the framework because
  // every collapse rebuilds it from scratch.
  CollapseScratch scratch_;
};

}  // namespace mrl

#endif  // MRLQUANT_CORE_FRAMEWORK_H_
