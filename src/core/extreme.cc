#include "core/extreme.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/math.h"
#include "util/serde.h"

namespace mrl {

namespace {

Status ValidateExtreme(double phi, double eps, double delta) {
  if (!(phi > 0.0) || phi >= 1.0 || phi == 0.5) {
    return Status::InvalidArgument(
        "extreme-value estimation needs phi in (0,1) \\ {0.5}, got " +
        std::to_string(phi));
  }
  const double tail = std::min(phi, 1.0 - phi);
  if (!(eps > 0.0) || eps > tail) {
    return Status::InvalidArgument(
        "requires 0 < eps <= min(phi, 1-phi); with eps == phi simply track "
        "Min/Max in O(1)");
  }
  if (!(delta > 0.0) || delta >= 1.0) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  return Status::OK();
}

/// Index (1-based, counted from the extreme end) of the estimate within a
/// sample of size `sample_size`: round(tail_phi * sample_size), clamped to
/// at least 1. tail_phi is phi for low quantiles and 1-phi for high ones.
std::uint64_t EstimateIndex(double tail_phi, std::uint64_t sample_size) {
  double j = std::llround(tail_phi * static_cast<double>(sample_size));
  if (j < 1.0) return 1;
  return static_cast<std::uint64_t>(j);
}

}  // namespace

Result<ExtremeValueSizing> SolveExtremeValue(double phi, double eps,
                                             double delta, std::uint64_t n) {
  MRL_RETURN_IF_ERROR(ValidateExtreme(phi, eps, delta));
  if (n == 0) {
    return Status::InvalidArgument("n must be >= 1");
  }
  const double tail = std::min(phi, 1.0 - phi);
  ExtremeValueSizing sizing;
  sizing.sample_size = SteinSampleSize(tail, eps, delta);
  sizing.k = static_cast<std::uint64_t>(
      std::ceil(tail * static_cast<double>(sizing.sample_size)));
  if (sizing.k == 0) sizing.k = 1;
  sizing.sample_probability =
      std::min(1.0, static_cast<double>(sizing.sample_size) /
                        static_cast<double>(n));
  return sizing;
}

Result<ExtremeValueSketch> ExtremeValueSketch::Create(
    const ExtremeValueOptions& options) {
  Result<ExtremeValueSizing> sizing =
      SolveExtremeValue(options.phi, options.eps, options.delta, options.n);
  if (!sizing.ok()) return sizing.status();
  return ExtremeValueSketch(options, sizing.value());
}

ExtremeValueSketch::ExtremeValueSketch(const ExtremeValueOptions& options,
                                       const ExtremeValueSizing& sizing)
    : options_(options),
      sizing_(sizing),
      sampler_(Random(options.seed), sizing.sample_probability),
      heap_(static_cast<std::size_t>(sizing.k),
            /*keep_largest=*/options.phi > 0.5) {}

void ExtremeValueSketch::Add(Value v) {
  MRL_CHECK(!std::isnan(v)) << "NaN rejected at the sketch boundary: the "
                               "k-best heap order is undefined over NaN";
  ++count_;
  if (sampler_.Sample()) {
    ++heap_offered_;
    heap_.Push(v);
  }
}

Result<Value> ExtremeValueSketch::Query(double phi) const {
  const bool high = options_.phi > 0.5;
  if ((high && !(phi > 0.5)) || (!high && !(phi < 0.5))) {
    return Status::InvalidArgument(
        "this sketch was configured for the other tail");
  }
  if (heap_.empty()) {
    return Status::FailedPrecondition("no element sampled yet");
  }
  const double tail_phi = high ? (1.0 - phi) : phi;
  std::uint64_t j = EstimateIndex(tail_phi, heap_offered_);
  std::vector<Value> sorted = heap_.SortedFromExtreme();
  if (j > sorted.size()) {
    if (heap_.full()) {
      // phi is not extreme enough for this sketch's retained set.
      return Status::OutOfRange(
          "phi * sample_size exceeds the retained k elements");
    }
    j = sorted.size();  // short stream: degrade to the most interior element
  }
  return sorted[static_cast<std::size_t>(j - 1)];
}

namespace {
constexpr std::uint32_t kCheckpointMagic = 0x4D524C51;  // "MRLQ"
// Version 2: repo-wide bump (kinds 1-2 gained the sampler pick offset;
// this kind's layout is unchanged from v1).
constexpr std::uint8_t kCheckpointVersion = 2;
constexpr std::uint8_t kKindExtreme = 3;
}  // namespace

std::vector<std::uint8_t> ExtremeValueSketch::Serialize() const {
  BinaryWriter writer;
  writer.PutU32(kCheckpointMagic);
  writer.PutU8(kCheckpointVersion);
  writer.PutU8(kKindExtreme);
  writer.PutDouble(options_.phi);
  writer.PutDouble(options_.eps);
  writer.PutDouble(options_.delta);
  writer.PutU64(options_.n);
  writer.PutU64(sizing_.sample_size);
  writer.PutU64(sizing_.k);
  writer.PutDouble(sizing_.sample_probability);
  BernoulliSampler::State sampler = sampler_.SaveState();
  writer.PutU64(sampler.rng.state);
  writer.PutU64(sampler.rng.inc);
  writer.PutDouble(sampler.p);
  writer.PutU64(sampler.seen);
  writer.PutU64(sampler.kept);
  writer.PutU64(count_);
  writer.PutU64(heap_offered_);
  writer.PutValues(heap_.raw_values());
  return writer.Take();
}

Result<ExtremeValueSketch> ExtremeValueSketch::Deserialize(
    const std::vector<std::uint8_t>& bytes) {
  BinaryReader reader(bytes);
  std::uint32_t magic;
  std::uint8_t version, kind;
  if (!reader.GetU32(&magic) || !reader.GetU8(&version) ||
      !reader.GetU8(&kind)) {
    return reader.status();
  }
  if (magic != kCheckpointMagic) {
    return Status::InvalidArgument("not an mrlquant checkpoint");
  }
  if (version != kCheckpointVersion || kind != kKindExtreme) {
    return Status::InvalidArgument("unsupported checkpoint version or kind");
  }
  ExtremeValueOptions options;
  ExtremeValueSizing sizing;
  if (!reader.GetDouble(&options.phi) || !reader.GetDouble(&options.eps) ||
      !reader.GetDouble(&options.delta) || !reader.GetU64(&options.n) ||
      !reader.GetU64(&sizing.sample_size) || !reader.GetU64(&sizing.k) ||
      !reader.GetDouble(&sizing.sample_probability)) {
    return reader.status();
  }
  Status valid = ValidateExtreme(options.phi, options.eps, options.delta);
  if (!valid.ok()) {
    return Status::InvalidArgument("checkpoint options invalid: " +
                                   valid.message());
  }
  if (sizing.k < 1 || sizing.k > (std::uint64_t{1} << 28) ||
      !(sizing.sample_probability > 0.0) ||
      sizing.sample_probability > 1.0) {
    return Status::InvalidArgument("checkpoint sizing out of range");
  }
  BernoulliSampler::State sampler_state;
  std::uint64_t count, offered;
  std::vector<Value> heap_values;
  if (!reader.GetU64(&sampler_state.rng.state) ||
      !reader.GetU64(&sampler_state.rng.inc) ||
      !reader.GetDouble(&sampler_state.p) ||
      !reader.GetU64(&sampler_state.seen) ||
      !reader.GetU64(&sampler_state.kept) || !reader.GetU64(&count) ||
      !reader.GetU64(&offered) || !reader.GetValues(&heap_values)) {
    return reader.status();
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after checkpoint");
  }
  if (!(sampler_state.p > 0.0) || sampler_state.p > 1.0 ||
      heap_values.size() > sizing.k ||
      heap_values.size() > offered) {
    return Status::InvalidArgument("checkpoint heap state invalid");
  }
  ExtremeValueSketch sketch(options, sizing);
  sketch.sampler_ = BernoulliSampler::FromState(sampler_state);
  sketch.heap_ = KBest::FromValues(static_cast<std::size_t>(sizing.k),
                                   options.phi > 0.5,
                                   std::move(heap_values));
  sketch.count_ = count;
  sketch.heap_offered_ = offered;
  return sketch;
}

Result<AdaptiveExtremeValueSketch> AdaptiveExtremeValueSketch::Create(
    const Options& options) {
  MRL_RETURN_IF_ERROR(
      ValidateExtreme(options.phi, options.eps, options.delta));
  const double tail = std::min(options.phi, 1.0 - options.phi);
  // Halve delta: a union bound over the (at most log2 N) rate levels is
  // overkill; the dominant level is the final one, and budgeting s* for
  // delta/2 empirically covers the subsampling noise (EXPERIMENTS.md).
  const std::uint64_t s_star =
      SteinSampleSize(tail, options.eps, options.delta / 2.0);
  // Right before a halving the sample holds up to s* elements, needing
  // ceil(tail * s*) retained; keep 2x plus slack for binomial fluctuation.
  const std::size_t capacity = static_cast<std::size_t>(
      std::ceil(2.0 * tail * static_cast<double>(s_star))) + 16;
  return AdaptiveExtremeValueSketch(options, s_star, capacity);
}

AdaptiveExtremeValueSketch::AdaptiveExtremeValueSketch(
    const Options& options, std::uint64_t budget_s, std::size_t heap_capacity)
    : options_(options),
      budget_s_(budget_s),
      rng_(options.seed),
      heap_(heap_capacity, /*keep_largest=*/options.phi > 0.5) {}

void AdaptiveExtremeValueSketch::Add(Value v) {
  ++count_;
  if (rng_.Bernoulli(probability_)) {
    ++sampled_;
    heap_.Push(v);
  }
  // Keep the expected sample size within the Stein budget: halve the
  // probability and subsample the retained set, mirroring the unknown-N
  // algorithm's rate doubling.
  if (static_cast<double>(count_) * probability_ >
      static_cast<double>(budget_s_)) {
    probability_ *= 0.5;
    std::uint64_t kept = 0;
    heap_.Filter([&](Value) {
      if (rng_.Bernoulli(0.5)) {
        ++kept;
        return true;
      }
      return false;
    });
    sampled_ = (sampled_ + 1) / 2;  // expectation; queries use sampled_
  }
}

Result<Value> AdaptiveExtremeValueSketch::Query(double phi) const {
  const bool high = options_.phi > 0.5;
  if ((high && !(phi > 0.5)) || (!high && !(phi < 0.5))) {
    return Status::InvalidArgument(
        "this sketch was configured for the other tail");
  }
  if (heap_.empty()) {
    return Status::FailedPrecondition("no element sampled yet");
  }
  const double tail_phi = high ? (1.0 - phi) : phi;
  std::uint64_t j = EstimateIndex(tail_phi, sampled_);
  std::vector<Value> sorted = heap_.SortedFromExtreme();
  if (j > sorted.size()) j = sorted.size();
  return sorted[static_cast<std::size_t>(j - 1)];
}

void ExtremeValueSketch::Reset(std::uint64_t seed) {
  options_.seed = seed;
  sampler_ = BernoulliSampler(Random(seed), sizing_.sample_probability);
  heap_.Clear();
  count_ = 0;
  heap_offered_ = 0;
}

Status ExtremeValueSketch::Restore(std::span<const std::uint8_t> bytes) {
  Result<ExtremeValueSketch> restored =
      Deserialize(std::vector<std::uint8_t>(bytes.begin(), bytes.end()));
  if (!restored.ok()) return restored.status();
  *this = std::move(restored).value();
  return Status::OK();
}

void AdaptiveExtremeValueSketch::Reset(std::uint64_t seed) {
  options_.seed = seed;
  probability_ = 1.0;
  rng_ = Random(seed);
  heap_.Clear();
  count_ = 0;
  sampled_ = 0;
}

}  // namespace mrl
