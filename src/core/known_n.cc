#include "core/known_n.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/output.h"
#include "util/audit.h"
#include "util/logging.h"
#include "util/serde.h"
#include "util/sort.h"

namespace mrl {

Result<KnownNSketch> KnownNSketch::Create(const KnownNOptions& options) {
  KnownNParams params;
  if (options.params.has_value()) {
    params = *options.params;
    if (params.b < 2 || params.k < 1 || params.rate < 1 || params.n < 1) {
      return Status::InvalidArgument(
          "explicit params require b >= 2, k >= 1, rate >= 1, n >= 1");
    }
  } else {
    if (options.n == 0) {
      return Status::InvalidArgument("KnownNSketch requires n >= 1");
    }
    Result<KnownNParams> solved =
        SolveKnownN(options.eps, options.delta, options.n);
    if (!solved.ok()) return solved.status();
    params = solved.value();
  }
  KnownNSketch sketch(params, options.seed);
  // Only solver-produced parameters promise that the tree stays within h
  // (Eq. 2); explicit caller parameters carry no such budget, so the
  // height audit is restricted to the solved case.
  sketch.audit_height_budget_ = !options.params.has_value();
  return sketch;
}

KnownNSketch::KnownNSketch(const KnownNParams& params, std::uint64_t seed)
    : params_(params),
      framework_(params.b, params.k,
                 MakeCollapsePolicy(CollapsePolicyKind::kMrl)),
      sampler_(Random(seed), params.rate),
      seed_(seed) {}

void KnownNSketch::Reset() { Reset(seed_); }

void KnownNSketch::Reset(std::uint64_t seed) {
  seed_ = seed;
  framework_.Reset();
  sampler_ = BlockSampler(Random(seed), params_.rate);
  count_ = 0;
  filling_ = false;
  fill_slot_ = 0;
}

void KnownNSketch::StartNewFill() {
  MRL_CHECK(!filling_);
  fill_slot_ = framework_.AcquireEmptySlot();
  framework_.buffer(fill_slot_).StartFill();
  filling_ = true;
}

void KnownNSketch::Add(Value v) {
  MRL_CHECK(!std::isnan(v)) << "NaN rejected at the sketch boundary: the "
                               "comparison-based buffers are undefined over "
                               "NaN (docs/algorithm.md §8)";
  if (!filling_) StartNewFill();
  std::optional<Value> sample = sampler_.Add(v);
  ++count_;
  if (!sample.has_value()) return;
  Buffer& buf = framework_.buffer(fill_slot_);
  buf.Append(*sample);
  if (buf.size() == buf.capacity()) {
    framework_.CommitFull(fill_slot_, params_.rate, /*level=*/0);
    filling_ = false;
    AuditAfterCommit();
  }
}

void KnownNSketch::AddBatch(std::span<const Value> values) {
  // NaN boundary contract: see UnknownNSketch::AddBatch.
  MRL_AUDIT(audit::CheckNoNaN(values.data(), values.size()));
  while (!values.empty()) {
    if (!filling_) StartNewFill();
    Buffer& buf = framework_.buffer(fill_slot_);
    const std::uint64_t room = buf.capacity() - buf.size();
    const Weight rate = sampler_.rate();
    // Exact fill-to-capacity element count (see UnknownNSketch::AddBatch).
    std::uint64_t take = values.size();
    if (room < std::numeric_limits<std::uint64_t>::max() / rate) {
      take = std::min<std::uint64_t>(
          take, room * rate - sampler_.pending_count());
    }
    batch_scratch_.clear();
    sampler_.AddBatch(values.data(), static_cast<std::size_t>(take),
                      batch_scratch_);
    count_ += take;
    for (Value s : batch_scratch_) {
      MRL_CHECK(!std::isnan(s))
          << "NaN rejected at the sketch boundary (sampled survivor)";
    }
    buf.AppendSpan(batch_scratch_.data(), batch_scratch_.size());
    if (buf.size() == buf.capacity()) {
      framework_.CommitFull(fill_slot_, params_.rate, /*level=*/0);
      filling_ = false;
      AuditAfterCommit();
    }
    values = values.subspan(static_cast<std::size_t>(take));
  }
  if (sampler_.pending_count() > 0) {
    MRL_CHECK(!std::isnan(sampler_.pending_candidate()))
        << "NaN rejected at the sketch boundary (pending block candidate)";
  }
}

void KnownNSketch::AuditAfterCommit() const {
  MRL_AUDIT(audit::CheckWeightConservation(HeldWeight(), count_));
  if (audit_height_budget_ && !overflowed()) {
    MRL_AUDIT(audit::CheckKnownNHeight(framework_, params_.h));
  }
}

void KnownNSketch::SnapshotInto(RunSnapshot* snap) const {
  snap->partial_sorted.clear();
  snap->tail.clear();
  if (filling_) {
    const Buffer& buf = framework_.buffer(fill_slot_);
    if (!buf.values().empty()) {
      snap->partial_sorted.assign(buf.values().begin(), buf.values().end());
      SortValues(snap->partial_sorted.data(), snap->partial_sorted.size());
    }
  }
  if (sampler_.pending_count() > 0) {
    snap->tail.push_back(sampler_.pending_candidate());
  }
  framework_.FullBufferRunsInto(&snap->runs);
  if (!snap->partial_sorted.empty()) {
    snap->runs.push_back({snap->partial_sorted.data(),
                          snap->partial_sorted.size(), params_.rate});
  }
  if (!snap->tail.empty()) {
    snap->runs.push_back({snap->tail.data(), 1, sampler_.pending_count()});
  }
}

KnownNSketch::RunSnapshot KnownNSketch::Snapshot() const {
  RunSnapshot snap;
  SnapshotInto(&snap);
  return snap;
}

Result<Value> KnownNSketch::Query(double phi) const {
  if (overflowed()) {
    return Status::FailedPrecondition(
        "stream exceeded the declared n; the known-N guarantee is void");
  }
  thread_local RunSnapshot snap;
  SnapshotInto(&snap);
  MRL_AUDIT(audit::CheckWeightConservation(TotalRunWeight(snap.runs),
                                           count_));
  return WeightedQuantile(snap.runs, phi);
}

Result<std::vector<Value>> KnownNSketch::QueryMany(
    const std::vector<double>& phis) const {
  if (overflowed()) {
    return Status::FailedPrecondition(
        "stream exceeded the declared n; the known-N guarantee is void");
  }
  thread_local RunSnapshot snap;
  SnapshotInto(&snap);
  MRL_AUDIT(audit::CheckWeightConservation(TotalRunWeight(snap.runs),
                                           count_));
  return WeightedQuantiles(snap.runs, phis);
}

Weight KnownNSketch::HeldWeight() const {
  thread_local RunSnapshot snap;
  SnapshotInto(&snap);
  return TotalRunWeight(snap.runs);
}

namespace {
constexpr std::uint32_t kCheckpointMagic = 0x4D524C51;  // "MRLQ"
// Version 2 added the sampler's pre-drawn pick offset (docs/checkpoint_format.md).
constexpr std::uint8_t kCheckpointVersion = 2;
constexpr std::uint8_t kKindKnownN = 2;
}  // namespace

std::vector<std::uint8_t> KnownNSketch::Serialize() const {
  BinaryWriter writer;
  writer.PutU32(kCheckpointMagic);
  writer.PutU8(kCheckpointVersion);
  writer.PutU8(kKindKnownN);
  writer.PutI32(params_.b);
  writer.PutU64(params_.k);
  writer.PutI32(params_.h);
  writer.PutU64(params_.rate);
  writer.PutDouble(params_.alpha);
  writer.PutU64(params_.n);
  writer.PutU64(count_);
  writer.PutU8(filling_ ? 1 : 0);
  writer.PutU32(static_cast<std::uint32_t>(fill_slot_));
  BlockSampler::State sampler = sampler_.SaveState();
  writer.PutU64(sampler.rng.state);
  writer.PutU64(sampler.rng.inc);
  writer.PutU64(sampler.rate);
  writer.PutU64(sampler.seen_in_block);
  writer.PutU64(sampler.pick_offset);
  writer.PutDouble(sampler.candidate);
  framework_.SerializeTo(&writer);
  return writer.Take();
}

Result<KnownNSketch> KnownNSketch::Deserialize(
    const std::vector<std::uint8_t>& bytes) {
  BinaryReader reader(bytes);
  std::uint32_t magic;
  std::uint8_t version, kind;
  if (!reader.GetU32(&magic) || !reader.GetU8(&version) ||
      !reader.GetU8(&kind)) {
    return reader.status();
  }
  if (magic != kCheckpointMagic) {
    return Status::InvalidArgument("not an mrlquant checkpoint");
  }
  if (version != kCheckpointVersion || kind != kKindKnownN) {
    return Status::InvalidArgument("unsupported checkpoint version or kind");
  }
  KnownNParams params;
  std::uint64_t k;
  if (!reader.GetI32(&params.b) || !reader.GetU64(&k) ||
      !reader.GetI32(&params.h) || !reader.GetU64(&params.rate) ||
      !reader.GetDouble(&params.alpha) || !reader.GetU64(&params.n)) {
    return reader.status();
  }
  params.k = static_cast<std::size_t>(k);
  if (params.b < 2 || params.b > 10000 || params.k < 1 || params.h < 1 ||
      params.rate < 1 || params.n < 1 ||
      params.MemoryElements() > (std::uint64_t{1} << 28)) {
    return Status::InvalidArgument("checkpoint parameters out of range");
  }
  std::uint64_t count;
  std::uint8_t filling;
  std::uint32_t fill_slot;
  BlockSampler::State sampler_state;
  if (!reader.GetU64(&count) || !reader.GetU8(&filling) ||
      !reader.GetU32(&fill_slot) ||
      !reader.GetU64(&sampler_state.rng.state) ||
      !reader.GetU64(&sampler_state.rng.inc) ||
      !reader.GetU64(&sampler_state.rate) ||
      !reader.GetU64(&sampler_state.seen_in_block) ||
      !reader.GetU64(&sampler_state.pick_offset) ||
      !reader.GetDouble(&sampler_state.candidate)) {
    return reader.status();
  }
  if (sampler_state.rate != params.rate ||
      sampler_state.seen_in_block >= sampler_state.rate ||
      sampler_state.pick_offset >= sampler_state.rate ||
      fill_slot >= static_cast<std::uint32_t>(params.b)) {
    return Status::InvalidArgument("checkpoint sampler/fill state invalid");
  }
  KnownNSketch sketch(params, /*seed=*/0);
  MRL_RETURN_IF_ERROR(sketch.framework_.DeserializeFrom(&reader));
  if (!reader.AtEnd()) {
    return reader.status().ok()
               ? Status::InvalidArgument("trailing bytes after checkpoint")
               : reader.status();
  }
  sketch.sampler_ = BlockSampler::FromState(sampler_state);
  sketch.count_ = count;
  sketch.filling_ = (filling != 0);
  sketch.fill_slot_ = fill_slot;
  const std::size_t num_filling =
      sketch.framework_.CountState(BufferState::kFilling);
  if (sketch.filling_) {
    if (num_filling != 1 ||
        sketch.framework_.buffer(sketch.fill_slot_).state() !=
            BufferState::kFilling) {
      return Status::InvalidArgument(
          "checkpoint fill slot inconsistent with pool");
    }
  } else if (num_filling != 0) {
    return Status::InvalidArgument("checkpoint has an orphan filling buffer");
  }
  // Checkpoint hardening (every build mode): weight held by the restored
  // pool + sampler must equal the recorded element count exactly.
  Status conserved =
      audit::CheckWeightConservation(sketch.HeldWeight(), sketch.count_);
  if (!conserved.ok()) {
    return Status::InvalidArgument("checkpoint inconsistent: " +
                                   conserved.message());
  }
  return sketch;
}

Status KnownNSketch::Restore(std::span<const std::uint8_t> bytes) {
  Result<KnownNSketch> restored =
      Deserialize(std::vector<std::uint8_t>(bytes.begin(), bytes.end()));
  if (!restored.ok()) return restored.status();
  *this = std::move(restored).value();
  return Status::OK();
}

}  // namespace mrl
