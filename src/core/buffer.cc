#include "core/buffer.h"

#include <algorithm>

#include "util/logging.h"
#include "util/sort.h"

namespace mrl {

const char* BufferStateName(BufferState s) {
  switch (s) {
    case BufferState::kEmpty:
      return "empty";
    case BufferState::kFilling:
      return "filling";
    case BufferState::kFull:
      return "full";
  }
  return "unknown";
}

Buffer::Buffer(std::size_t capacity) : capacity_(capacity) {
  MRL_CHECK_GE(capacity, 1u);
  values_.reserve(capacity);
}

void Buffer::StartFill() {
  MRL_CHECK(state_ == BufferState::kEmpty)
      << "StartFill from " << BufferStateName(state_);
  state_ = BufferState::kFilling;
}

void Buffer::Append(Value v) {
  MRL_CHECK(state_ == BufferState::kFilling);
  MRL_CHECK_LT(values_.size(), capacity_);
  // NOLINTNEXTLINE(mrlquant-no-alloc-in-hot-path): capacity_ elements are
  // reserved in the constructor and the size CHECK above bounds the fill,
  // so this push_back can never reallocate.
  values_.push_back(v);
}

void Buffer::AppendSpan(const Value* data, std::size_t n) {
  MRL_CHECK(state_ == BufferState::kFilling);
  MRL_CHECK_LE(values_.size() + n, capacity_);
  // NOLINTNEXTLINE(mrlquant-no-alloc-in-hot-path): bounded by the
  // reserved capacity_ (CHECK above), so no reallocation is possible.
  values_.insert(values_.end(), data, data + n);
}

void Buffer::MarkFull(Weight weight, int level) {
  MRL_CHECK(state_ == BufferState::kFilling);
  MRL_CHECK_EQ(values_.size(), capacity_);
  MRL_CHECK_GE(weight, 1u);
  // The per-level hot sort of the framework (every New ends here): the
  // radix engine, with thread-local scratch so steady-state MarkFull
  // performs no heap allocation (bench/sort_kernels.cc enforces this).
  SortValues(values_.data(), values_.size());
  weight_ = weight;
  level_ = level;
  state_ = BufferState::kFull;
}

void Buffer::AssignSorted(std::vector<Value> sorted_values, Weight weight,
                          int level) {
  MRL_CHECK_EQ(sorted_values.size(), capacity_);
  MRL_CHECK_GE(weight, 1u);
  MRL_DCHECK(std::is_sorted(sorted_values.begin(), sorted_values.end()));
  values_ = std::move(sorted_values);
  weight_ = weight;
  level_ = level;
  state_ = BufferState::kFull;
}

void Buffer::SwapSorted(std::vector<Value>* sorted_values, Weight weight,
                        int level) {
  MRL_CHECK(sorted_values != nullptr);
  MRL_CHECK_EQ(sorted_values->size(), capacity_);
  MRL_CHECK_GE(weight, 1u);
  MRL_DCHECK(std::is_sorted(sorted_values->begin(), sorted_values->end()));
  values_.swap(*sorted_values);
  weight_ = weight;
  level_ = level;
  state_ = BufferState::kFull;
}

void Buffer::AssignSortedCopy(const Value* data, std::size_t n, Weight weight,
                              int level) {
  MRL_CHECK_EQ(n, capacity_);
  MRL_CHECK_GE(weight, 1u);
  MRL_DCHECK(std::is_sorted(data, data + n));
  values_.assign(data, data + n);
  weight_ = weight;
  level_ = level;
  state_ = BufferState::kFull;
}

void Buffer::Clear() {
  values_.clear();
  weight_ = 0;
  level_ = 0;
  state_ = BufferState::kEmpty;
}

void Buffer::PromoteLevel(int new_level) {
  MRL_CHECK(state_ == BufferState::kFull);
  MRL_CHECK_GT(new_level, level_);
  level_ = new_level;
}

}  // namespace mrl
