#ifndef MRLQUANT_CORE_WEIGHTED_MERGE_H_
#define MRLQUANT_CORE_WEIGHTED_MERGE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/thread_annotations.h"
#include "util/types.h"

namespace mrl {

/// A sorted run of equally-weighted elements. Both `Collapse` and `Output`
/// operate on the *weighted merge* of such runs: conceptually, w copies of
/// every element, sorted (Section 3.2) — the copies are never materialized.
struct WeightedRun {
  const Value* data = nullptr;
  std::size_t size = 0;
  Weight weight = 0;  ///< weight of each element in the run (>= 1)
};

/// Sum of size * weight over runs: the length of the implied copy-expanded
/// sequence.
Weight TotalRunWeight(const std::vector<WeightedRun>& runs);

/// Reusable state for the loser-tree merge kernel: run cursors plus the
/// tournament nodes. Sized on first use and recycled across calls, so a
/// caller that keeps one MergeScratch alive performs no heap allocation in
/// steady state (part of the CollapseScratch arena; see core/collapse.h).
struct MergeScratch {
  std::vector<std::size_t> cursor;    ///< per-run read position
  std::vector<std::uint32_t> loser;   ///< internal tournament nodes
  std::vector<std::uint32_t> winner;  ///< build-time winner propagation
  std::vector<Value> key;             ///< cached head value per leaf
  std::vector<std::uint32_t> sec;     ///< tie-break rank per leaf
};

/// Core merge kernel: writes the elements of the weighted merge found at
/// the given 1-based weighted positions into `out` (which must have room
/// for `num_targets` values). `targets` must be sorted ascending and each
/// must lie in [1, total run weight]. Element e with weight w occupies the
/// weighted interval (c, c + w] where c is the cumulative weight before
/// it; the result for target t is the element whose interval contains t.
///
/// Runs must each be sorted ascending; ties across runs are broken by run
/// index (lower index first), making the merge deterministic and identical
/// to the naive flat cursor scan below.
///
/// Cost: a loser-tree (tournament) k-way merge — O(log b) per advanced
/// *chunk*, where a chunk is a maximal prefix of the current winner run
/// that precedes every other run's head. Chunks are located by galloping
/// (exponential then binary search), and whole chunks whose weight falls
/// between consecutive targets are skipped with O(1) arithmetic, so
/// selecting k positions out of a b*k-element weighted merge does not
/// touch every element of every run.
MRLQUANT_HOT void SelectWeightedPositionsInto(
    const WeightedRun* runs, std::size_t num_runs, const Weight* targets,
    std::size_t num_targets, MergeScratch* scratch, Value* out);

/// Allocating convenience wrapper over SelectWeightedPositionsInto (uses a
/// function-local scratch; prefer the Into form on hot paths).
std::vector<Value> SelectWeightedPositions(
    const std::vector<WeightedRun>& runs, const std::vector<Weight>& targets);

/// Reference implementation: the original O(total_elements * num_runs)
/// flat cursor scan. Kept for differential testing (tests/
/// merge_differential_test.cc) and side-by-side numbers in
/// bench/merge_kernels.cc; the loser-tree kernel must match it exactly,
/// including tie-breaking by run index.
std::vector<Value> SelectWeightedPositionsNaive(
    const std::vector<WeightedRun>& runs, const std::vector<Weight>& targets);

}  // namespace mrl

#endif  // MRLQUANT_CORE_WEIGHTED_MERGE_H_
