#ifndef MRLQUANT_CORE_WEIGHTED_MERGE_H_
#define MRLQUANT_CORE_WEIGHTED_MERGE_H_

#include <cstddef>
#include <vector>

#include "util/types.h"

namespace mrl {

/// A sorted run of equally-weighted elements. Both `Collapse` and `Output`
/// operate on the *weighted merge* of such runs: conceptually, w copies of
/// every element, sorted (Section 3.2) — the copies are never materialized.
struct WeightedRun {
  const Value* data = nullptr;
  std::size_t size = 0;
  Weight weight = 0;  ///< weight of each element in the run (>= 1)
};

/// Sum of size * weight over runs: the length of the implied copy-expanded
/// sequence.
Weight TotalRunWeight(const std::vector<WeightedRun>& runs);

/// Returns the elements of the weighted merge found at the given 1-based
/// weighted positions. `targets` must be sorted ascending and each must lie
/// in [1, TotalRunWeight(runs)]. Element e with weight w occupies the
/// weighted interval (c, c + w] where c is the cumulative weight before it;
/// the result for target t is the element whose interval contains t.
///
/// Runs must each be sorted ascending. Cost: O(total_elements * num_runs)
/// comparisons with a flat cursor scan (num_runs is at most b <= ~50, and
/// ties are broken by run index, making the merge deterministic).
std::vector<Value> SelectWeightedPositions(
    const std::vector<WeightedRun>& runs, const std::vector<Weight>& targets);

}  // namespace mrl

#endif  // MRLQUANT_CORE_WEIGHTED_MERGE_H_
