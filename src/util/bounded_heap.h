#ifndef MRLQUANT_UTIL_BOUNDED_HEAP_H_
#define MRLQUANT_UTIL_BOUNDED_HEAP_H_

#include <algorithm>
#include <functional>
#include <vector>

#include "util/logging.h"
#include "util/sort.h"
#include "util/types.h"

namespace mrl {

/// Keeps the `capacity` smallest values pushed so far (a bounded max-heap).
/// This is the storage behind the extreme-value estimator of Section 7: the
/// k-th smallest retained sample element is the quantile estimate.
///
/// With `kLargest = true`, keeps the `capacity` largest values instead
/// (for quantiles near 1).
class KBest {
 public:
  /// `capacity` must be >= 1. `keep_largest` selects which tail to retain.
  KBest(std::size_t capacity, bool keep_largest = false)
      : capacity_(capacity), keep_largest_(keep_largest) {
    MRL_CHECK_GE(capacity, 1u);
    values_.reserve(capacity);
  }

  /// Offers a value; it is retained iff it belongs to the current k-best.
  /// Returns true when the value was retained.
  bool Push(Value v) {
    if (values_.size() < capacity_) {
      values_.push_back(v);
      std::push_heap(values_.begin(), values_.end(), Less());
      return true;
    }
    if (Better(v, values_.front())) {
      std::pop_heap(values_.begin(), values_.end(), Less());
      values_.back() = v;
      std::push_heap(values_.begin(), values_.end(), Less());
      return true;
    }
    return false;
  }

  /// Drops every retained value (capacity and tail choice unchanged),
  /// reusing the heap storage.
  void Clear() { values_.clear(); }

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  std::size_t capacity() const { return capacity_; }
  bool full() const { return values_.size() == capacity_; }

  /// The worst retained value: the largest of the k smallest (or the
  /// smallest of the k largest). Requires size() >= 1. This is exactly the
  /// Section 7 estimate once the heap is full.
  Value Worst() const {
    MRL_CHECK_GE(values_.size(), 1u);
    return values_.front();
  }

  /// Retained values sorted from the extreme inward (ascending when keeping
  /// smallest; descending when keeping largest), via the radix sort engine
  /// — this extraction runs on every extreme-value query.
  std::vector<Value> SortedFromExtreme() const {
    std::vector<Value> out = values_;
    if (keep_largest_) {
      SortValuesDescending(out.data(), out.size());
    } else {
      SortValues(out.data(), out.size());
    }
    return out;
  }

  /// Mutable access for subsampling in the adaptive extreme sketch.
  /// `keep` decides element-wise retention; the heap is rebuilt afterwards.
  template <typename KeepFn>
  void Filter(KeepFn keep) {
    std::vector<Value> kept;
    kept.reserve(values_.size());
    for (Value v : values_) {
      if (keep(v)) kept.push_back(v);
    }
    values_ = std::move(kept);
    std::make_heap(values_.begin(), values_.end(), Less());
  }

  bool keeps_largest() const { return keep_largest_; }

  /// Raw retained values in heap order (checkpointing; treat as opaque).
  const std::vector<Value>& raw_values() const { return values_; }

  /// Reconstructs a heap from checkpointed values. `values.size()` must
  /// not exceed `capacity`.
  static KBest FromValues(std::size_t capacity, bool keep_largest,
                          std::vector<Value> values) {
    MRL_CHECK_LE(values.size(), capacity);
    KBest heap(capacity, keep_largest);
    heap.values_ = std::move(values);
    std::make_heap(heap.values_.begin(), heap.values_.end(), heap.Less());
    return heap;
  }

 private:
  // Heap comparator so that the *worst* retained element sits at the front.
  std::function<bool(Value, Value)> Less() const {
    if (keep_largest_) {
      return [](Value a, Value b) { return a > b; };  // min-heap
    }
    return [](Value a, Value b) { return a < b; };  // max-heap
  }

  // True when `a` is more worth keeping than `b`.
  bool Better(Value a, Value b) const {
    return keep_largest_ ? (a > b) : (a < b);
  }

  std::size_t capacity_;
  bool keep_largest_;
  std::vector<Value> values_;
};

}  // namespace mrl

#endif  // MRLQUANT_UTIL_BOUNDED_HEAP_H_
