#ifndef MRLQUANT_UTIL_SERDE_H_
#define MRLQUANT_UTIL_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/types.h"

namespace mrl {

/// Little-endian binary encoder for sketch checkpoints. Append-only; call
/// Take() to claim the buffer.
class BinaryWriter {
 public:
  void PutU8(std::uint8_t v) { out_.push_back(v); }

  void PutU16(std::uint16_t v) {
    out_.push_back(v & 0xff);
    out_.push_back((v >> 8) & 0xff);
  }

  void PutU32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back((v >> (8 * i)) & 0xff);
  }

  void PutU64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back((v >> (8 * i)) & 0xff);
  }

  void PutI32(std::int32_t v) { PutU32(static_cast<std::uint32_t>(v)); }

  void PutDouble(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }

  void PutValues(const std::vector<Value>& values) {
    PutU64(values.size());
    for (Value v : values) PutDouble(v);
  }

  std::size_t size() const { return out_.size(); }
  std::vector<std::uint8_t> Take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

/// Bounds-checked decoder. Every Get* returns false (and latches an error
/// status) on truncated input; callers may batch reads and check status()
/// once.
class BinaryReader {
 public:
  BinaryReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit BinaryReader(const std::vector<std::uint8_t>& bytes)
      : BinaryReader(bytes.data(), bytes.size()) {}

  bool GetU8(std::uint8_t* out) {
    if (!Require(1)) return false;
    *out = data_[pos_++];
    return true;
  }

  bool GetU16(std::uint16_t* out) {
    if (!Require(2)) return false;
    *out = static_cast<std::uint16_t>(
        data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
    pos_ += 2;
    return true;
  }

  bool GetU32(std::uint32_t* out) {
    if (!Require(4)) return false;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 4;
    *out = v;
    return true;
  }

  bool GetU64(std::uint64_t* out) {
    if (!Require(8)) return false;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 8;
    *out = v;
    return true;
  }

  bool GetI32(std::int32_t* out) {
    std::uint32_t v;
    if (!GetU32(&v)) return false;
    *out = static_cast<std::int32_t>(v);
    return true;
  }

  bool GetDouble(double* out) {
    std::uint64_t bits;
    if (!GetU64(&bits)) return false;
    std::memcpy(out, &bits, sizeof(*out));
    return true;
  }

  /// Reads a length-prefixed value vector; rejects lengths that exceed the
  /// remaining bytes (corrupt or adversarial input).
  bool GetValues(std::vector<Value>* out) {
    std::uint64_t n;
    if (!GetU64(&n)) return false;
    if (n > Remaining() / sizeof(double)) {
      Fail("value vector length exceeds remaining input");
      return false;
    }
    out->clear();
    out->reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      double v;
      if (!GetDouble(&v)) return false;
      out->push_back(v);
    }
    return true;
  }

  std::size_t Remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_ && status_.ok(); }
  const Status& status() const { return status_; }

  /// Latches a custom decode error (e.g. semantic validation failure).
  void Fail(const std::string& message) {
    if (status_.ok()) {
      status_ = Status::InvalidArgument("decode error: " + message);
    }
  }

 private:
  bool Require(std::size_t n) {
    if (!status_.ok()) return false;
    if (size_ - pos_ < n) {
      Fail("truncated input");
      return false;
    }
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  Status status_;
};

}  // namespace mrl

#endif  // MRLQUANT_UTIL_SERDE_H_
