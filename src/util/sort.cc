#include "util/sort.h"

#include <algorithm>

#include "util/logging.h"
#include "util/simd.h"

namespace mrl {
namespace {

/// Below this size the constant costs of the radix path (16 KiB histogram
/// clear, transform + write-back passes) beat its O(n) advantage;
/// std::sort over OrderedLess wins. Tuned with bench/sort_kernels.cc.
constexpr std::size_t kRadixCutoff = 256;
constexpr int kRadixPasses = 8;

/// How far ahead the counting scatter prefetches its destination. The
/// store address for element i+d is only known exactly at step i+d (pos[]
/// advances between now and then), but by at most d slots — well inside
/// the prefetched line's 64-byte reach for d = 16. One line ≈ 8 keys, so
/// 16 keeps roughly two lines of slack ahead of the store stream without
/// overrunning the L1 fill buffers.
constexpr std::size_t kScatterPrefetchDistance = 16;

/// LSD radix core over scratch->keys[0..n): one counting scatter per
/// non-uniform byte position, ping-ponging between keys and keys_alt (and,
/// when kWithPayload, between the payload mirrors — the scatter moves each
/// record's payload alongside its key, which is what makes the sort
/// stable). `hist` holds all eight byte histograms of the keys (built by
/// the caller through the dispatched fused kernel). Returns the array
/// holding the sorted keys; *payload_out (when kWithPayload) receives the
/// matching payload array. Requires n >= 1 and all four scratch vectors
/// resized to n by the caller.
template <bool kWithPayload>
const std::uint64_t* RadixSortKeys(SortScratch* scratch, std::size_t n,
                                   const std::size_t (*hist)[256],
                                   const std::uint64_t** payload_out) {
  std::uint64_t* src = scratch->keys.data();
  std::uint64_t* dst = scratch->keys_alt.data();
  std::uint64_t* psrc = kWithPayload ? scratch->payload.data() : nullptr;
  std::uint64_t* pdst = kWithPayload ? scratch->payload_alt.data() : nullptr;
  for (int p = 0; p < kRadixPasses; ++p) {
    const int shift = 8 * p;
    // Skip detection: a byte position on which every key agrees scatters
    // into a single bucket — the identity permutation. The histogram is a
    // multiset property, so probing it through the current src is exact.
    if (hist[p][(src[0] >> shift) & 0xFF] == n) continue;
    std::size_t pos[256];
    std::size_t sum = 0;
    for (int j = 0; j < 256; ++j) {
      pos[j] = sum;
      sum += hist[p][j];
    }
    for (std::size_t i = 0; i < n; ++i) {
      // The scatter's stores are the one random-access stream in the
      // engine. Peeking the digit of the key kScatterPrefetchDistance
      // ahead and prefetching its current bucket cursor hides most of the
      // store-miss latency; the cursor may advance before that store
      // lands, but never by more than the distance, so the prefetched
      // line is (almost) always the one the store hits.
      if (i + kScatterPrefetchDistance < n) {
        const std::uint64_t ahead = src[i + kScatterPrefetchDistance];
        simd::PrefetchWrite(&dst[pos[(ahead >> shift) & 0xFF]]);
      }
      const std::uint64_t k = src[i];
      const std::size_t d = pos[(k >> shift) & 0xFF]++;
      dst[d] = k;
      if constexpr (kWithPayload) pdst[d] = psrc[i];
    }
    std::swap(src, dst);
    if constexpr (kWithPayload) std::swap(psrc, pdst);
  }
  if constexpr (kWithPayload) *payload_out = psrc;
  return src;
}

}  // namespace

void SortValues(Value* data, std::size_t n, SortScratch* scratch) {
  if (n < kRadixCutoff) {
    std::sort(data, data + n, OrderedLess);
    return;
  }
  MRL_DCHECK(scratch != nullptr);
  // NOLINTNEXTLINE(mrlquant-no-alloc-in-hot-path): SortScratch arena —
  // warmed to the largest n seen, then recycled allocation-free.
  scratch->keys.resize(n);
  // NOLINTNEXTLINE(mrlquant-no-alloc-in-hot-path): arena
  scratch->keys_alt.resize(n);
  // The key transform and the fused histogram pass run through the SIMD
  // dispatch (util/simd.h): AVX2 when the host has it, the scalar
  // reference otherwise — bit-identical either way.
  const simd::SortKernelOps& ops = simd::ActiveSortKernels();
  std::size_t hist[kRadixPasses][256];
  ops.transform_and_histogram(data, scratch->keys.data(), n, hist);
  const std::uint64_t* sorted =
      RadixSortKeys<false>(scratch, n, hist, nullptr);
  ops.inverse_keys(sorted, data, n);
}

void SortValues(Value* data, std::size_t n) {
  thread_local SortScratch scratch;
  SortValues(data, n, &scratch);
}

void SortValuesDescending(Value* data, std::size_t n) {
  SortValues(data, n);
  std::reverse(data, data + n);
}

void SortPairs(KeyedPayload* data, std::size_t n, SortScratch* scratch) {
  if (n < kRadixCutoff) {
    std::stable_sort(data, data + n,
                     [](const KeyedPayload& a, const KeyedPayload& b) {
                       return OrderedLess(a.first, b.first);
                     });
    return;
  }
  MRL_DCHECK(scratch != nullptr);
  // NOLINTNEXTLINE(mrlquant-no-alloc-in-hot-path): SortScratch arena —
  // warmed to the largest n seen, then recycled allocation-free.
  scratch->keys.resize(n);
  // NOLINTNEXTLINE(mrlquant-no-alloc-in-hot-path): arena
  scratch->keys_alt.resize(n);
  // NOLINTNEXTLINE(mrlquant-no-alloc-in-hot-path): arena
  scratch->payload.resize(n);
  // NOLINTNEXTLINE(mrlquant-no-alloc-in-hot-path): arena
  scratch->payload_alt.resize(n);
  std::uint64_t* keys = scratch->keys.data();
  std::uint64_t* payload = scratch->payload.data();
  // The record split is strided (AoS pairs), so it stays scalar; the
  // histogram over the freshly packed contiguous keys dispatches.
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = OrderedKeyFromValue(data[i].first);
    payload[i] = data[i].second;
  }
  const simd::SortKernelOps& ops = simd::ActiveSortKernels();
  std::size_t hist[kRadixPasses][256];
  ops.histogram(keys, n, hist);
  const std::uint64_t* sorted_payload = nullptr;
  const std::uint64_t* sorted =
      RadixSortKeys<true>(scratch, n, hist, &sorted_payload);
  for (std::size_t i = 0; i < n; ++i) {
    data[i].first = ValueFromOrderedKey(sorted[i]);
    data[i].second = sorted_payload[i];
  }
}

void SortPairs(KeyedPayload* data, std::size_t n) {
  thread_local SortScratch scratch;
  SortPairs(data, n, &scratch);
}

void SortValuesNaive(Value* data, std::size_t n) {
  std::sort(data, data + n, OrderedLess);
}

void SortPairsNaive(KeyedPayload* data, std::size_t n) {
  std::stable_sort(data, data + n,
                   [](const KeyedPayload& a, const KeyedPayload& b) {
                     return OrderedLess(a.first, b.first);
                   });
}

}  // namespace mrl
