#include "util/sort.h"

#include <algorithm>
#include <cstring>

#include "util/logging.h"

namespace mrl {
namespace {

/// Below this size the constant costs of the radix path (16 KiB histogram
/// clear, transform + write-back passes) beat its O(n) advantage;
/// std::sort over OrderedLess wins. Tuned with bench/sort_kernels.cc.
constexpr std::size_t kRadixCutoff = 256;
constexpr int kRadixPasses = 8;

/// All eight byte histograms of keys[0..n) in one fused pass (one read of
/// the data instead of eight).
void BuildHistograms(const std::uint64_t* keys, std::size_t n,
                     std::size_t hist[][256]) {
  std::memset(
      hist, 0,
      static_cast<std::size_t>(kRadixPasses) * 256 * sizeof(hist[0][0]));
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = keys[i];
    ++hist[0][k & 0xFF];
    ++hist[1][(k >> 8) & 0xFF];
    ++hist[2][(k >> 16) & 0xFF];
    ++hist[3][(k >> 24) & 0xFF];
    ++hist[4][(k >> 32) & 0xFF];
    ++hist[5][(k >> 40) & 0xFF];
    ++hist[6][(k >> 48) & 0xFF];
    ++hist[7][(k >> 56) & 0xFF];
  }
}

/// LSD radix core over scratch->keys[0..n): one counting scatter per
/// non-uniform byte position, ping-ponging between keys and keys_alt (and,
/// when kWithPayload, between the payload mirrors — the scatter moves each
/// record's payload alongside its key, which is what makes the sort
/// stable). Returns the array holding the sorted keys; *payload_out (when
/// kWithPayload) receives the matching payload array. Requires n >= 1 and
/// all four scratch vectors resized to n by the caller.
template <bool kWithPayload>
const std::uint64_t* RadixSortKeys(SortScratch* scratch, std::size_t n,
                                   const std::uint64_t** payload_out) {
  std::size_t hist[kRadixPasses][256];
  BuildHistograms(scratch->keys.data(), n, hist);

  std::uint64_t* src = scratch->keys.data();
  std::uint64_t* dst = scratch->keys_alt.data();
  std::uint64_t* psrc = kWithPayload ? scratch->payload.data() : nullptr;
  std::uint64_t* pdst = kWithPayload ? scratch->payload_alt.data() : nullptr;
  for (int p = 0; p < kRadixPasses; ++p) {
    const int shift = 8 * p;
    // Skip detection: a byte position on which every key agrees scatters
    // into a single bucket — the identity permutation. The histogram is a
    // multiset property, so probing it through the current src is exact.
    if (hist[p][(src[0] >> shift) & 0xFF] == n) continue;
    std::size_t pos[256];
    std::size_t sum = 0;
    for (int j = 0; j < 256; ++j) {
      pos[j] = sum;
      sum += hist[p][j];
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t k = src[i];
      const std::size_t d = pos[(k >> shift) & 0xFF]++;
      dst[d] = k;
      if constexpr (kWithPayload) pdst[d] = psrc[i];
    }
    std::swap(src, dst);
    if constexpr (kWithPayload) std::swap(psrc, pdst);
  }
  if constexpr (kWithPayload) *payload_out = psrc;
  return src;
}

}  // namespace

void SortValues(Value* data, std::size_t n, SortScratch* scratch) {
  if (n < kRadixCutoff) {
    std::sort(data, data + n, OrderedLess);
    return;
  }
  MRL_DCHECK(scratch != nullptr);
  // NOLINTNEXTLINE(mrlquant-no-alloc-in-hot-path): SortScratch arena —
  // warmed to the largest n seen, then recycled allocation-free.
  scratch->keys.resize(n);
  // NOLINTNEXTLINE(mrlquant-no-alloc-in-hot-path): arena
  scratch->keys_alt.resize(n);
  std::uint64_t* keys = scratch->keys.data();
  for (std::size_t i = 0; i < n; ++i) keys[i] = OrderedKeyFromValue(data[i]);
  const std::uint64_t* sorted = RadixSortKeys<false>(scratch, n, nullptr);
  for (std::size_t i = 0; i < n; ++i) data[i] = ValueFromOrderedKey(sorted[i]);
}

void SortValues(Value* data, std::size_t n) {
  thread_local SortScratch scratch;
  SortValues(data, n, &scratch);
}

void SortValuesDescending(Value* data, std::size_t n) {
  SortValues(data, n);
  std::reverse(data, data + n);
}

void SortPairs(KeyedPayload* data, std::size_t n, SortScratch* scratch) {
  if (n < kRadixCutoff) {
    std::stable_sort(data, data + n,
                     [](const KeyedPayload& a, const KeyedPayload& b) {
                       return OrderedLess(a.first, b.first);
                     });
    return;
  }
  MRL_DCHECK(scratch != nullptr);
  // NOLINTNEXTLINE(mrlquant-no-alloc-in-hot-path): SortScratch arena —
  // warmed to the largest n seen, then recycled allocation-free.
  scratch->keys.resize(n);
  // NOLINTNEXTLINE(mrlquant-no-alloc-in-hot-path): arena
  scratch->keys_alt.resize(n);
  // NOLINTNEXTLINE(mrlquant-no-alloc-in-hot-path): arena
  scratch->payload.resize(n);
  // NOLINTNEXTLINE(mrlquant-no-alloc-in-hot-path): arena
  scratch->payload_alt.resize(n);
  std::uint64_t* keys = scratch->keys.data();
  std::uint64_t* payload = scratch->payload.data();
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = OrderedKeyFromValue(data[i].first);
    payload[i] = data[i].second;
  }
  const std::uint64_t* sorted_payload = nullptr;
  const std::uint64_t* sorted =
      RadixSortKeys<true>(scratch, n, &sorted_payload);
  for (std::size_t i = 0; i < n; ++i) {
    data[i].first = ValueFromOrderedKey(sorted[i]);
    data[i].second = sorted_payload[i];
  }
}

void SortPairs(KeyedPayload* data, std::size_t n) {
  thread_local SortScratch scratch;
  SortPairs(data, n, &scratch);
}

void SortValuesNaive(Value* data, std::size_t n) {
  std::sort(data, data + n, OrderedLess);
}

void SortPairsNaive(KeyedPayload* data, std::size_t n) {
  std::stable_sort(data, data + n,
                   [](const KeyedPayload& a, const KeyedPayload& b) {
                     return OrderedLess(a.first, b.first);
                   });
}

}  // namespace mrl
