#ifndef MRLQUANT_UTIL_SORT_H_
#define MRLQUANT_UTIL_SORT_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/thread_annotations.h"
#include "util/types.h"

namespace mrl {

/// The hot-path sort engine. Every full-buffer sort the collapse framework
/// performs (Buffer::MarkFull, the coordinator staging sorts, summary
/// accumulation) runs over the same fixed-width key type — IEEE-754
/// `double` — so comparison sorting leaves throughput on the table. The
/// engine is an LSD radix sort over the order-preserving bit transform
/// below: 8-bit digits, one fused histogram pass, per-pass skip detection
/// (a byte position on which all keys agree costs nothing), and a
/// comparison-sort fallback below a small-n cutoff. All working storage
/// lives in a caller-owned (or thread-local) SortScratch, so steady-state
/// sorting performs zero heap allocations — the same arena contract as
/// CollapseScratch/MergeScratch (core/collapse.h), and enforced by the
/// same counting operator-new hook pattern (bench/sort_kernels.cc).
///
/// NaN is excluded by the sketch boundary contract (see
/// UnknownNSketch::Add); the transform maps every non-NaN double, including
/// -0.0, +0.0, denormals and the infinities, onto a total order.

/// Order-preserving key transform: flip the sign bit of non-negative
/// doubles, complement negative ones. For any non-NaN a, b:
///   a < b  (IEEE)  =>  key(a) < key(b),
/// and the induced order is *total*: -inf < negatives < -0.0 < +0.0 <
/// positives < +inf, with -0.0 and +0.0 adjacent (their keys differ by
/// exactly 1). Equals std::strong_order restricted to non-NaN values.
inline std::uint64_t OrderedKeyFromValue(Value v) {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
  // Negative: mask = all ones (complement). Non-negative: mask = sign bit.
  const std::uint64_t mask =
      static_cast<std::uint64_t>(-static_cast<std::int64_t>(bits >> 63)) |
      (std::uint64_t{1} << 63);
  return bits ^ mask;
}

/// Exact inverse of OrderedKeyFromValue (bit-for-bit round trip).
inline Value ValueFromOrderedKey(std::uint64_t key) {
  const std::uint64_t mask =
      (key >> 63) != 0 ? (std::uint64_t{1} << 63) : ~std::uint64_t{0};
  return std::bit_cast<Value>(key ^ mask);
}

/// Strict total order on non-NaN doubles (the transform's order). Used by
/// the small-n fallback and the naive reference so every path through the
/// engine produces one deterministic output, including -0.0 vs +0.0.
inline bool OrderedLess(Value a, Value b) {
  return OrderedKeyFromValue(a) < OrderedKeyFromValue(b);
}

/// A (sort key, 64-bit payload) record; SortPairs orders by key, stably.
/// `std::pair<Value, Weight>` (summary staging) is exactly this type.
using KeyedPayload = std::pair<Value, std::uint64_t>;

/// Reusable working storage for the radix passes: transformed keys and the
/// ping-pong partner, plus payload mirrors for SortPairs. Sized on first
/// use and recycled, so a caller that keeps one SortScratch alive (or uses
/// the thread-local overloads) sorts without heap allocation in steady
/// state.
struct SortScratch {
  std::vector<std::uint64_t> keys;
  std::vector<std::uint64_t> keys_alt;
  std::vector<std::uint64_t> payload;
  std::vector<std::uint64_t> payload_alt;
};

/// Sorts `data[0..n)` ascending in the engine's total order (a valid
/// ascending order under `<` too, since only bitwise-distinct equal values
/// — the two zeros — are ordered more finely). Below the tuned cutoff this
/// is std::sort with OrderedLess; above it, the radix path.
MRLQUANT_HOT void SortValues(Value* data, std::size_t n,
                             SortScratch* scratch);

/// Thread-local-scratch convenience overload (safe on any thread; each
/// thread warms its own arena).
MRLQUANT_HOT void SortValues(Value* data, std::size_t n);

/// Sorts descending: ascending pass + reversal (equal doubles are
/// bitwise-interchangeable except the zeros, whose relative order after
/// reversal is +0.0 before -0.0 — the descending total order).
void SortValuesDescending(Value* data, std::size_t n);

/// Stable sort of (key, payload) records by key: records with equal keys
/// (even bitwise-equal) keep their input order, which is what makes the
/// summary accumulation and the batch-query permutation deterministic.
MRLQUANT_HOT void SortPairs(KeyedPayload* data, std::size_t n,
                            SortScratch* scratch);

/// Thread-local-scratch convenience overload.
MRLQUANT_HOT void SortPairs(KeyedPayload* data, std::size_t n);

/// Reference implementations (std::sort / std::stable_sort over
/// OrderedLess), kept for differential testing (tests/sort_test.cc) and
/// side-by-side numbers in bench/sort_kernels.cc — the
/// SelectWeightedPositionsNaive pattern. The radix paths must match them
/// bit for bit.
void SortValuesNaive(Value* data, std::size_t n);
void SortPairsNaive(KeyedPayload* data, std::size_t n);

}  // namespace mrl

#endif  // MRLQUANT_UTIL_SORT_H_
