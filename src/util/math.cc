#include "util/math.h"

#include <cmath>

#include "util/logging.h"

namespace mrl {

namespace {
constexpr std::uint64_t kSaturated = std::numeric_limits<std::uint64_t>::max();
}  // namespace

std::uint64_t SaturatingBinomial(std::uint64_t n, std::uint64_t r) {
  if (r > n) return 0;
  if (r > n - r) r = n - r;
  if (r == 0) return 1;
  // Detect saturation cheaply with the log form before multiplying.
  if (LogBinomial(n, r) > 43.6) {  // ln(2^63) ~ 43.67
    return kSaturated;
  }
  std::uint64_t result = 1;
  for (std::uint64_t i = 1; i <= r; ++i) {
    // result * (n - r + i) / i is always integral at each step.
    result = result / i * (n - r + i) + result % i * (n - r + i) / i;
  }
  return result;
}

double LogBinomial(std::uint64_t n, std::uint64_t r) {
  MRL_CHECK_LE(r, n);
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(r) + 1.0) -
         std::lgamma(static_cast<double>(n - r) + 1.0);
}

double KlBernoulli(double p, double q) {
  MRL_CHECK(p >= 0.0 && p <= 1.0) << "p=" << p;
  MRL_CHECK(q >= 0.0 && q <= 1.0) << "q=" << q;
  auto term = [](double a, double b) {
    if (a == 0.0) return 0.0;
    if (b == 0.0) return std::numeric_limits<double>::infinity();
    return a * std::log(a / b);
  };
  return term(p, q) + term(1.0 - p, 1.0 - q);
}

std::uint64_t HoeffdingSampleSize(double eps, double delta) {
  MRL_CHECK(eps > 0.0 && eps < 1.0) << "eps=" << eps;
  MRL_CHECK(delta > 0.0 && delta < 1.0) << "delta=" << delta;
  double s = std::log(2.0 / delta) / (2.0 * eps * eps);
  return static_cast<std::uint64_t>(std::ceil(s));
}

std::uint64_t SteinSampleSize(double phi, double eps, double delta) {
  MRL_CHECK(phi > 0.0 && phi < 1.0) << "phi=" << phi;
  MRL_CHECK_GT(eps, 0.0);
  MRL_CHECK(delta > 0.0 && delta < 1.0) << "delta=" << delta;
  double d_lo = (phi - eps > 0.0)
                    ? KlBernoulli(phi, phi - eps)
                    : std::numeric_limits<double>::infinity();
  double d_hi = (phi + eps < 1.0)
                    ? KlBernoulli(phi, phi + eps)
                    : std::numeric_limits<double>::infinity();
  auto failure = [&](double s) {
    double f = 0.0;
    if (std::isfinite(d_lo)) f += std::exp(-s * d_lo);
    if (std::isfinite(d_hi)) f += std::exp(-s * d_hi);
    return f;
  };
  if (failure(1.0) <= delta) return 1;
  // Exponential search for an upper bracket, then binary search.
  double hi = 1.0;
  while (failure(hi) > delta) {
    hi *= 2.0;
    MRL_CHECK_LT(hi, 1e18) << "SteinSampleSize diverged";
  }
  double lo = hi / 2.0;
  for (int i = 0; i < 64; ++i) {
    double mid = 0.5 * (lo + hi);
    if (failure(mid) > delta) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return static_cast<std::uint64_t>(std::ceil(hi));
}

std::uint64_t NextPow2(std::uint64_t x) {
  MRL_CHECK_GE(x, 1u);
  std::uint64_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

}  // namespace mrl
