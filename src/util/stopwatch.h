#ifndef MRLQUANT_UTIL_STOPWATCH_H_
#define MRLQUANT_UTIL_STOPWATCH_H_

#include <chrono>

namespace mrl {

/// Wall-clock stopwatch used by the benchmark harnesses that report
/// table-style output (the google-benchmark binaries use its own timers).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedNanos() const { return ElapsedSeconds() * 1e9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mrl

#endif  // MRLQUANT_UTIL_STOPWATCH_H_
