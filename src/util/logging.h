#ifndef MRLQUANT_UTIL_LOGGING_H_
#define MRLQUANT_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace mrl {
namespace internal_logging {

/// Collects a fatal message and aborts on destruction. Used only by the
/// MRL_CHECK family below; not a general logging facility.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition
            << " ";
  }

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  [[noreturn]] ~FatalMessage() {
    std::cerr << stream_.str() << '\n' << std::flush;
    std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace mrl

/// Aborts with a diagnostic when `cond` is false. Active in all build modes;
/// used for internal invariants whose violation indicates a library bug
/// (user-facing validation returns Status instead).
#define MRL_CHECK(cond)                                              \
  if (cond) {                                                        \
  } else /* NOLINT */                                                \
    ::mrl::internal_logging::FatalMessage(__FILE__, __LINE__, #cond) \
        .stream()

#define MRL_CHECK_BINOP(a, b, op)                                  \
  MRL_CHECK((a)op(b)) << "(" << #a << "=" << (a) << " vs " << #b   \
                      << "=" << (b) << ") "

#define MRL_CHECK_EQ(a, b) MRL_CHECK_BINOP(a, b, ==)
#define MRL_CHECK_NE(a, b) MRL_CHECK_BINOP(a, b, !=)
#define MRL_CHECK_LT(a, b) MRL_CHECK_BINOP(a, b, <)
#define MRL_CHECK_LE(a, b) MRL_CHECK_BINOP(a, b, <=)
#define MRL_CHECK_GT(a, b) MRL_CHECK_BINOP(a, b, >)
#define MRL_CHECK_GE(a, b) MRL_CHECK_BINOP(a, b, >=)

#ifdef NDEBUG
#define MRL_DCHECK(cond) MRL_CHECK(true)
#define MRL_DCHECK_EQ(a, b) MRL_CHECK(true)
#define MRL_DCHECK_LE(a, b) MRL_CHECK(true)
#define MRL_DCHECK_LT(a, b) MRL_CHECK(true)
#define MRL_DCHECK_GE(a, b) MRL_CHECK(true)
#define MRL_DCHECK_GT(a, b) MRL_CHECK(true)
#else
#define MRL_DCHECK(cond) MRL_CHECK(cond)
#define MRL_DCHECK_EQ(a, b) MRL_CHECK_EQ(a, b)
#define MRL_DCHECK_LE(a, b) MRL_CHECK_LE(a, b)
#define MRL_DCHECK_LT(a, b) MRL_CHECK_LT(a, b)
#define MRL_DCHECK_GE(a, b) MRL_CHECK_GE(a, b)
#define MRL_DCHECK_GT(a, b) MRL_CHECK_GT(a, b)
#endif

#endif  // MRLQUANT_UTIL_LOGGING_H_
