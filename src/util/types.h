#ifndef MRLQUANT_UTIL_TYPES_H_
#define MRLQUANT_UTIL_TYPES_H_

#include <cstdint>

namespace mrl {

/// Element type processed by all sketches in this library.
///
/// The MRL99 algorithms are purely comparison based; we fix the element type
/// to `double` for a readable release (see DESIGN.md §2). Ranks, weights and
/// stream positions are 64-bit.
using Value = double;

/// Rank / position / weight within a (possibly weighted) sequence.
using Weight = std::uint64_t;

/// Signed counter type used where differences of weights are needed.
using SignedWeight = std::int64_t;

}  // namespace mrl

#endif  // MRLQUANT_UTIL_TYPES_H_
