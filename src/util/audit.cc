#include "util/audit.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "core/buffer.h"
#include "core/framework.h"

namespace mrl {
namespace audit {

namespace {

Status Violation(const std::string& message) {
  return Status::InvalidArgument(message);
}

bool IsPowerOfTwo(Weight w) { return w != 0 && (w & (w - 1)) == 0; }

/// floor(log2(w)) for w >= 1.
int FloorLog2(Weight w) {
  int log = 0;
  while (w > 1) {
    w >>= 1;
    ++log;
  }
  return log;
}

}  // namespace

Status CheckBuffer(const Buffer& buffer, std::size_t index) {
  const std::string tag = "buffer[" + std::to_string(index) + "] ";
  switch (buffer.state()) {
    case BufferState::kEmpty:
      if (buffer.size() != 0) {
        return Violation(tag + "is empty but holds " +
                         std::to_string(buffer.size()) + " elements");
      }
      if (buffer.weight() != 0) {
        return Violation(tag + "is empty but has weight " +
                         std::to_string(buffer.weight()));
      }
      break;
    case BufferState::kFilling:
      if (buffer.size() >= buffer.capacity()) {
        return Violation(tag + "is filling but size " +
                         std::to_string(buffer.size()) +
                         " has reached capacity " +
                         std::to_string(buffer.capacity()));
      }
      break;
    case BufferState::kFull: {
      if (buffer.size() != buffer.capacity()) {
        return Violation(tag + "is full but holds " +
                         std::to_string(buffer.size()) + " of " +
                         std::to_string(buffer.capacity()) + " elements");
      }
      if (buffer.weight() < 1) {
        return Violation(tag + "is full with weight " +
                         std::to_string(buffer.weight()) + " < 1");
      }
      if (buffer.level() < 0) {
        return Violation(tag + "is full with negative level " +
                         std::to_string(buffer.level()));
      }
      if (!std::is_sorted(buffer.values().begin(), buffer.values().end())) {
        return Violation(tag + "is full but its elements are not sorted");
      }
      break;
    }
  }
  return Status::OK();
}

Status CheckFramework(const CollapseFramework& framework) {
  const int b = framework.num_buffers();
  const int usable = framework.usable_buffers();
  if (usable < 1 || usable > b) {
    return Violation("usable_buffers " + std::to_string(usable) +
                     " outside [1, " + std::to_string(b) + "]");
  }
  std::size_t num_filling = 0;
  for (int i = 0; i < b; ++i) {
    const Buffer& buffer = framework.buffer(static_cast<std::size_t>(i));
    MRL_RETURN_IF_ERROR(CheckBuffer(buffer, static_cast<std::size_t>(i)));
    if (buffer.capacity() != framework.buffer_capacity()) {
      return Violation("buffer[" + std::to_string(i) + "] capacity " +
                       std::to_string(buffer.capacity()) +
                       " != framework capacity " +
                       std::to_string(framework.buffer_capacity()));
    }
    if (buffer.state() == BufferState::kFilling) ++num_filling;
    if (i >= usable && buffer.state() != BufferState::kEmpty) {
      return Violation("buffer[" + std::to_string(i) +
                       "] is non-empty beyond usable_buffers " +
                       std::to_string(usable));
    }
    if (buffer.state() != BufferState::kEmpty &&
        buffer.level() > framework.stats().max_level) {
      return Violation("buffer[" + std::to_string(i) + "] level " +
                       std::to_string(buffer.level()) +
                       " exceeds recorded max_level " +
                       std::to_string(framework.stats().max_level));
    }
  }
  if (num_filling > 1) {
    return Violation(std::to_string(num_filling) +
                     " buffers are filling; the framework fills one at a "
                     "time");
  }
  // Every collapse merges >= 2 full buffers down to one, so after L leaves
  // and C collapses the pool holds at most L - C full buffers; equivalently
  // C + #full <= L. (The kFilling buffer is not a leaf yet.)
  const TreeStats& stats = framework.stats();
  const std::uint64_t num_full = framework.CountState(BufferState::kFull);
  if (stats.num_collapses + num_full > stats.leaves_created) {
    return Violation("pool holds " + std::to_string(num_full) +
                     " full buffers but the tree counters (" +
                     std::to_string(stats.leaves_created) + " leaves, " +
                     std::to_string(stats.num_collapses) +
                     " collapses) cannot account for them");
  }
  return Status::OK();
}

Status CheckCollapseConservation(Weight full_weight_before,
                                 Weight full_weight_after) {
  if (full_weight_before != full_weight_after) {
    return Violation("Collapse changed the pool's total full weight from " +
                     std::to_string(full_weight_before) + " to " +
                     std::to_string(full_weight_after));
  }
  return Status::OK();
}

Status CheckWeightConservation(Weight held, std::uint64_t consumed) {
  if (held != consumed) {
    return Violation("held weight " + std::to_string(held) +
                     " != consumed elements " + std::to_string(consumed) +
                     "; weight was lost or invented across "
                     "New/Collapse/Output");
  }
  return Status::OK();
}

Status CheckUnknownNHeight(const CollapseFramework& framework, int h,
                           Weight sampling_rate) {
  if (!IsPowerOfTwo(sampling_rate)) {
    return Violation("sampling rate " + std::to_string(sampling_rate) +
                     " is not a power of two");
  }
  const int budget = h + FloorLog2(sampling_rate);
  if (framework.max_level() > budget) {
    return Violation("tree height " +
                     std::to_string(framework.max_level()) +
                     " exceeds the Eq. 3 budget h + log2(rate) = " +
                     std::to_string(h) + " + " +
                     std::to_string(FloorLog2(sampling_rate)));
  }
  return Status::OK();
}

Status CheckKnownNHeight(const CollapseFramework& framework, int h) {
  if (framework.max_level() > h) {
    return Violation("tree height " +
                     std::to_string(framework.max_level()) +
                     " exceeds the Eq. 2 budget h = " + std::to_string(h));
  }
  return Status::OK();
}

Status CheckCoordinatorStaging(std::size_t staging_size, std::size_t k,
                               Weight staging_weight) {
  if (staging_size >= k) {
    return Violation("coordinator staging holds " +
                     std::to_string(staging_size) +
                     " elements; >= k = " + std::to_string(k) +
                     " should have been promoted into the tree");
  }
  if (staging_size == 0 && staging_weight != 0) {
    return Violation("empty coordinator staging has weight " +
                     std::to_string(staging_weight));
  }
  if (staging_size > 0 && staging_weight < 1) {
    return Violation("non-empty coordinator staging has weight " +
                     std::to_string(staging_weight) + " < 1");
  }
  return Status::OK();
}

Status CheckNoNaN(const Value* data, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (std::isnan(data[i])) {
      return Violation("NaN at batch offset " + std::to_string(i) +
                       "; the sketches are comparison based and reject NaN "
                       "at the ingestion boundary");
    }
  }
  return Status::OK();
}

}  // namespace audit
}  // namespace mrl
