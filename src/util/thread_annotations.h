#ifndef MRLQUANT_UTIL_THREAD_ANNOTATIONS_H_
#define MRLQUANT_UTIL_THREAD_ANNOTATIONS_H_

#include <mutex>
#include <shared_mutex>

/// Clang thread-safety capability annotations (no-ops everywhere else),
/// plus the annotated mutex wrappers the rest of the tree uses instead of
/// raw std::mutex / std::shared_mutex.
///
/// Why wrappers and not bare std types: libstdc++'s std::mutex carries no
/// capability attribute, so `-Wthread-safety` cannot see it — a
/// GUARDED_BY(raw_std_mutex) is rejected by the analysis itself. mrl::Mutex
/// and mrl::SharedMutex are zero-overhead shells whose type carries
/// MRLQUANT_CAPABILITY, which makes every GUARDED_BY / REQUIRES /
/// ACQUIRE annotation over them statically checkable. The in-repo
/// clang-tidy check `mrlquant-guarded-mutex` (tools/tidy) enforces the
/// policy: a raw std mutex member anywhere in src/ is a finding.
///
/// The annotation policy itself (which members get GUARDED_BY, how lock
/// order is documented, how to suppress a finding) lives in
/// docs/engineering.md, "The static-analysis wall".

#if defined(__clang__) && !defined(SWIG)
#define MRLQUANT_THREAD_ATTR__(x) __attribute__((x))
#else
#define MRLQUANT_THREAD_ATTR__(x)  // no-op
#endif

/// A type that is a lockable capability ("mutex", "shared_mutex", ...).
#define MRLQUANT_CAPABILITY(x) MRLQUANT_THREAD_ATTR__(capability(x))

/// RAII types that acquire in the constructor and release in the
/// destructor.
#define MRLQUANT_SCOPED_CAPABILITY MRLQUANT_THREAD_ATTR__(scoped_lockable)

/// Data member readable/writable only while holding the given capability
/// (shared suffices for reads, exclusive for writes).
#define MRLQUANT_GUARDED_BY(x) MRLQUANT_THREAD_ATTR__(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given capability.
#define MRLQUANT_PT_GUARDED_BY(x) MRLQUANT_THREAD_ATTR__(pt_guarded_by(x))

/// The function must be called with the capability held exclusively /
/// shared; it neither acquires nor releases it.
#define MRLQUANT_REQUIRES(...) \
  MRLQUANT_THREAD_ATTR__(requires_capability(__VA_ARGS__))
#define MRLQUANT_REQUIRES_SHARED(...) \
  MRLQUANT_THREAD_ATTR__(requires_shared_capability(__VA_ARGS__))

/// The function acquires/releases the capability (exclusive or shared).
#define MRLQUANT_ACQUIRE(...) \
  MRLQUANT_THREAD_ATTR__(acquire_capability(__VA_ARGS__))
#define MRLQUANT_ACQUIRE_SHARED(...) \
  MRLQUANT_THREAD_ATTR__(acquire_shared_capability(__VA_ARGS__))
#define MRLQUANT_RELEASE(...) \
  MRLQUANT_THREAD_ATTR__(release_capability(__VA_ARGS__))
#define MRLQUANT_RELEASE_SHARED(...) \
  MRLQUANT_THREAD_ATTR__(release_shared_capability(__VA_ARGS__))
/// Generic release: matches however the scope acquired (used by scoped
/// guards whose constructor may take either mode).
#define MRLQUANT_RELEASE_GENERIC(...) \
  MRLQUANT_THREAD_ATTR__(release_generic_capability(__VA_ARGS__))

/// The caller must NOT hold the capability (non-reentrant helper that
/// acquires it itself).
#define MRLQUANT_EXCLUDES(...) \
  MRLQUANT_THREAD_ATTR__(locks_excluded(__VA_ARGS__))

/// Static lock-order edges between capabilities.
#define MRLQUANT_ACQUIRED_BEFORE(...) \
  MRLQUANT_THREAD_ATTR__(acquired_before(__VA_ARGS__))
#define MRLQUANT_ACQUIRED_AFTER(...) \
  MRLQUANT_THREAD_ATTR__(acquired_after(__VA_ARGS__))

/// Returns a reference to the named capability.
#define MRLQUANT_RETURN_CAPABILITY(x) \
  MRLQUANT_THREAD_ATTR__(lock_returned(x))

/// Escape hatch: the function's locking is deliberately invisible to the
/// analysis. Every use must carry a comment justifying it.
#define MRLQUANT_NO_THREAD_SAFETY_ANALYSIS \
  MRLQUANT_THREAD_ATTR__(no_thread_safety_analysis)

/// Steady-state hot-path marker: functions annotated MRLQUANT_HOT are the
/// zero-allocation contract surface (AddBatch ingestion, Collapse, the
/// merge/sort kernels, the query read path). The in-repo clang-tidy check
/// `mrlquant-no-alloc-in-hot-path` flags `new`, make_unique/make_shared,
/// malloc-family calls, and growth-prone container calls lexically inside
/// them; warmed-arena growth (capacity reached once, recycled forever) is
/// suppressed per line with
///   // NOLINT(mrlquant-no-alloc-in-hot-path): <why the line cannot
///   // allocate in steady state>
/// Compiles to an `annotate` attribute under Clang (which is what the
/// check matches on) and to nothing elsewhere.
#if defined(__clang__)
#define MRLQUANT_HOT __attribute__((annotate("mrlquant_hot")))
#else
#define MRLQUANT_HOT
#endif

namespace mrl {

/// std::mutex with a capability-annotated type. Prefer the scoped
/// MutexLock; Lock/Unlock exist for the rare manual pattern.
class MRLQUANT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() MRLQUANT_ACQUIRE() { mu_.lock(); }
  void Unlock() MRLQUANT_RELEASE() { mu_.unlock(); }

  /// The wrapped std::mutex, for interop with std::condition_variable
  /// (via MutexLock::native()). Not part of the analysed surface.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// std::shared_mutex with a capability-annotated type: exclusive for
/// writers (WriterLock), shared for readers (ReaderLock).
class MRLQUANT_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() MRLQUANT_ACQUIRE() { mu_.lock(); }
  void Unlock() MRLQUANT_RELEASE() { mu_.unlock(); }
  void LockShared() MRLQUANT_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() MRLQUANT_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// Scoped exclusive lock on a Mutex. Holds a std::unique_lock so a
/// std::condition_variable can wait on it through native(); the analysis
/// treats the capability as held for the whole lexical scope, which is the
/// correct reading of a condvar wait loop (the predicate is only examined
/// with the lock reacquired).
class MRLQUANT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MRLQUANT_ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() MRLQUANT_RELEASE() = default;
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// Scoped exclusive (writer) lock on a SharedMutex.
class MRLQUANT_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) MRLQUANT_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterLock() MRLQUANT_RELEASE() { mu_.Unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped shared (reader) lock on a SharedMutex.
class MRLQUANT_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) MRLQUANT_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() MRLQUANT_RELEASE_GENERIC() { mu_.UnlockShared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace mrl

#endif  // MRLQUANT_UTIL_THREAD_ANNOTATIONS_H_
