#ifndef MRLQUANT_UTIL_SIMD_H_
#define MRLQUANT_UTIL_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/types.h"

namespace mrl {
namespace simd {

/// The SIMD kernel lane. The radix sort engine (util/sort.h) and the
/// loser-tree merge (core/weighted_merge.h) spend their per-value budget in
/// three tight loops over contiguous doubles: the order-preserving key
/// transform, the fused byte-histogram pass, and the leaf-head refill. This
/// header is the dispatch seam between their portable scalar
/// implementations (util/simd.cc — the differential references, bit-for-bit
/// what PR4 shipped) and the AVX2 implementations (util/sort_simd.cc,
/// compiled with -mavx2 in its own TU and only ever *called* after a
/// runtime cpuid check).
///
/// Dispatch policy: resolved exactly once, at first use, into a
/// function-pointer table.
///   * `MRLQUANT_FORCE_SCALAR` set to anything but "" / "0" pins the
///     scalar kernels regardless of what the CPU supports (path name
///     "forced-scalar") — the portable-build escape hatch CI exercises on
///     every PR.
///   * Otherwise `__builtin_cpu_supports("avx2")` selects the AVX2 table
///     when the host has it and this build compiled it ("avx2").
///   * Anything else — non-x86, compiler without -mavx2, pre-AVX2 silicon
///     — runs scalar ("scalar").
/// Both tables produce bit-identical outputs for every input (asserted by
/// tests/simd_kernel_test.cc and the golden state hashes in
/// tests/state_golden_test.cc); dispatch can therefore never change an
/// answer, only the wall clock.

/// Which kernel table ActiveSortKernels() resolved to.
enum class DispatchPath {
  kScalar,        ///< portable kernels; host/build has no AVX2
  kForcedScalar,  ///< portable kernels pinned by MRLQUANT_FORCE_SCALAR
  kAvx2,          ///< AVX2 kernels, selected by cpuid
};

/// Stable lowercase name ("scalar" / "forced-scalar" / "avx2") — recorded
/// in every bench JSON row and printed by the daemon at startup.
const char* DispatchPathName(DispatchPath path);

/// The path the process resolved (env override + cpuid, decided once).
DispatchPath ActivePath();

/// DispatchPathName(ActivePath()).
const char* ActivePathName();

/// Comma-separated feature list the runtime detected on this host
/// ("sse4.2,avx,avx2" / "portable" off x86) — bench artifact metadata, so
/// tools/bench_diff can refuse to silently compare numbers from different
/// silicon.
std::string CpuFeatureString();

/// The three span kernels the sort engine dispatches. All pointers are
/// always non-null; tail elements past the widest vector multiple are
/// handled inside each kernel, so callers never mind n % 4 or alignment
/// (kernels use unaligned loads — spans come from Buffer storage and
/// arbitrary user batches).
struct SortKernelOps {
  /// out[i] = OrderedKeyFromValue(in[i]) for i in [0, n).
  void (*transform_keys)(const Value* in, std::uint64_t* out, std::size_t n);

  /// out[i] = ValueFromOrderedKey(in[i]) for i in [0, n) — the exact
  /// inverse, used for the post-sort write-back.
  void (*inverse_keys)(const std::uint64_t* in, Value* out, std::size_t n);

  /// Fused first pass of the radix engine: transform values into keys AND
  /// accumulate all eight byte histograms in the same sweep (one read of
  /// the data). `hist` is an [8][256] table the kernel fully overwrites.
  /// The AVX2 kernel accumulates into four partial count tables (one per
  /// lane) merged before return, dodging the store-forwarding stalls that
  /// serialize a single table on duplicate-heavy data.
  void (*transform_and_histogram)(const Value* in, std::uint64_t* out,
                                  std::size_t n, std::size_t (*hist)[256]);

  /// All eight byte histograms of already-transformed keys (the SortPairs
  /// path, whose key extraction is strided and stays scalar). Same partial
  /// table treatment as transform_and_histogram.
  void (*histogram)(const std::uint64_t* keys, std::size_t n,
                    std::size_t (*hist)[256]);
};

/// The table ActivePath() selected. First call resolves the dispatch;
/// subsequent calls are a single atomic load (hot paths may call this per
/// sort, not per element).
const SortKernelOps& ActiveSortKernels();

/// The portable reference table — always available, what "scalar" and
/// "forced-scalar" run.
const SortKernelOps& ScalarSortKernels();

/// The AVX2 table, or nullptr when the host lacks AVX2 or this build could
/// not compile it. Differential tests sweep it against the scalar table
/// directly.
const SortKernelOps* Avx2SortKernelsOrNull();

/// Test hook: swap the active table (and the reported path) to `path`,
/// returning the previous path so tests can restore it. CHECK-fails when
/// asked for kAvx2 on a host without it. Not for production call sites —
/// the env override exists for that.
DispatchPath ForceDispatchForTesting(DispatchPath path);

/// Software prefetch hints for the merge engine's pointer-chasing loops.
/// No-ops where the builtin is unavailable; never required for
/// correctness. `p` may point anywhere, including out of bounds — prefetch
/// instructions do not fault.
inline void PrefetchRead(const void* p) {
#if (defined(__GNUC__) || defined(__clang__)) && !defined(MRLQUANT_NO_PREFETCH)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

inline void PrefetchWrite(const void* p) {
#if (defined(__GNUC__) || defined(__clang__)) && !defined(MRLQUANT_NO_PREFETCH)
  __builtin_prefetch(p, /*rw=*/1, /*locality=*/3);
#else
  (void)p;
#endif
}

}  // namespace simd
}  // namespace mrl

#endif  // MRLQUANT_UTIL_SIMD_H_
