#ifndef MRLQUANT_UTIL_STATUS_H_
#define MRLQUANT_UTIL_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace mrl {

/// Error categories used across the library. Modeled after the RocksDB /
/// Abseil convention: no exceptions anywhere; fallible public entry points
/// return `Status` (or `Result<T>`), and internal invariants use the CHECK
/// macros from util/logging.h.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kOutOfRange,
  kResourceExhausted,
  kInternal,
  kNotFound,
  kUnimplemented,
};

/// Returns a stable human-readable name for `code` ("OK", "InvalidArgument",
/// ...).
const char* StatusCodeToString(StatusCode code);

/// Value-semantic error indicator. Cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Minimal StatusOr-style holder: either an OK status plus a value, or a
/// non-OK status. Callers must test `ok()` before `value()`. Works with
/// move-only and non-default-constructible payloads.
template <typename T>
class Result {
 public:
  /// Implicit from value: the common "return computed_thing;" path.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit from error status: the common "return Status::...;" path.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  /// Returns the contained value or `fallback` when in the error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller.
#define MRL_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::mrl::Status _st = (expr);              \
    if (!_st.ok()) return _st;               \
  } while (false)

}  // namespace mrl

#endif  // MRLQUANT_UTIL_STATUS_H_
