#ifndef MRLQUANT_UTIL_MATH_H_
#define MRLQUANT_UTIL_MATH_H_

#include <cstdint>
#include <limits>

namespace mrl {

/// Ceiling of a/b for positive integers.
constexpr std::uint64_t CeilDiv(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

/// Binomial coefficient C(n, r), saturating at
/// std::numeric_limits<uint64_t>::max() instead of overflowing. The MRL99
/// parameter solver uses these for leaf counts L_d = C(b+h-2, h-1), which
/// exceed 2^64 for large (b, h); saturation keeps the constraint checks
/// correct (a saturated leaf count trivially satisfies the lower bounds).
std::uint64_t SaturatingBinomial(std::uint64_t n, std::uint64_t r);

/// Natural log of C(n, r) via lgamma. Requires r <= n.
double LogBinomial(std::uint64_t n, std::uint64_t r);

/// Kullback–Leibler divergence D(p || q) between Bernoulli(p) and
/// Bernoulli(q), in nats. Handles the p in {0,1} boundary cases; returns
/// +infinity when q is 0 or 1 while p is not.
double KlBernoulli(double p, double q);

/// Two-sided Hoeffding sample size: the smallest integer s such that
///   2 * exp(-2 * s * eps^2) <= delta,
/// i.e. a uniform sample of size s yields an eps-accurate quantile estimate
/// with probability >= 1 - delta (the folklore bound from Section 2.2).
std::uint64_t HoeffdingSampleSize(double eps, double delta);

/// Stein / Chernoff sample size for the extreme-value estimator (Section 7):
/// the smallest s such that
///   exp(-s * D(phi || phi - eps)) + exp(-s * D(phi || phi + eps)) <= delta
/// with the lower-tail term dropped when phi - eps <= 0 and the upper-tail
/// term dropped when phi + eps >= 1. Requires 0 < phi < 1, eps > 0,
/// 0 < delta < 1.
std::uint64_t SteinSampleSize(double phi, double eps, double delta);

/// Smallest power of two >= x (x >= 1).
std::uint64_t NextPow2(std::uint64_t x);

/// True if x is a power of two (x > 0).
constexpr bool IsPow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

}  // namespace mrl

#endif  // MRLQUANT_UTIL_MATH_H_
