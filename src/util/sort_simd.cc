// The AVX2 half of the SIMD kernel lane (util/simd.h). This TU — and only
// this TU — is compiled with -mavx2 (see src/util/CMakeLists.txt), so
// nothing here may be called without the runtime cpuid check the dispatch
// in util/simd.cc performs: every entry point below is reached exclusively
// through Avx2SortKernelsOrNull(), which returns nullptr unless
// __builtin_cpu_supports("avx2") said yes.
//
// When the toolchain cannot target AVX2 (non-x86, ancient compiler), the
// whole file collapses to the nullptr stub at the bottom and the dispatch
// resolves to the scalar table — the portable build stays portable.
//
// Every kernel is bit-identical to its scalar reference in util/simd.cc:
// the key transform is pure integer bit math (no FP ops, so no rounding or
// flush-to-zero hazards — denormals and the zeros pass through untouched),
// and the histogram kernels count the same multiset into the same [8][256]
// shape, only via four partial tables. tests/simd_kernel_test.cc sweeps
// the equivalence over adversarial inputs, tails, and alignments.

#include "util/simd.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstring>

#include "util/sort.h"
#include "util/thread_annotations.h"

namespace mrl {
namespace simd {
namespace {

// OrderedKeyFromValue over 4 doubles per op. The scalar transform is
//   mask = (bits >> 63 ? ~0 : 0) | 0x8000...0;  key = bits ^ mask;
// which vectorizes as a signed 64-bit "is negative" compare (all-ones
// exactly where the sign bit is set) OR'd with the broadcast sign bit.
MRLQUANT_HOT void Avx2TransformKeys(const Value* in, std::uint64_t* out,
                                    std::size_t n) {
  const __m256i sign = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ull));
  const __m256i zero = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i bits = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(in + i));
    const __m256i neg = _mm256_cmpgt_epi64(zero, bits);
    const __m256i key = _mm256_xor_si256(bits, _mm256_or_si256(neg, sign));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), key);
  }
  for (; i < n; ++i) out[i] = OrderedKeyFromValue(in[i]);
}

// Exact inverse: mask = (key >> 63 ? sign : ~0); value = key ^ mask. The
// select vectorizes as sign | ~isneg (all-ones branch keeps every bit, the
// negative branch keeps only the sign bit).
MRLQUANT_HOT void Avx2InverseKeys(const std::uint64_t* in, Value* out,
                                  std::size_t n) {
  const __m256i sign = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ull));
  const __m256i zero = _mm256_setzero_si256();
  const __m256i ones = _mm256_set1_epi64x(-1);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i key = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(in + i));
    const __m256i top = _mm256_cmpgt_epi64(zero, key);
    const __m256i mask =
        _mm256_or_si256(sign, _mm256_xor_si256(top, ones));
    const __m256i bits = _mm256_xor_si256(key, mask);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), bits);
  }
  for (; i < n; ++i) out[i] = ValueFromOrderedKey(in[i]);
}

/// Below this n the 4x partial-table clear + merge (64 KiB + 8K adds)
/// costs more than the store-forwarding stalls it avoids; a single table
/// through the scalar accumulator wins. Tail sizes in the bench grid (257,
/// 4097) sit on both sides of this line on purpose.
constexpr std::size_t kPartialTableCutoff = 4096;

/// Bump all eight byte counters of `k` in partial table `t`.
inline void CountKey(std::size_t (*t)[256], std::uint64_t k) {
  ++t[0][k & 0xFF];
  ++t[1][(k >> 8) & 0xFF];
  ++t[2][(k >> 16) & 0xFF];
  ++t[3][(k >> 24) & 0xFF];
  ++t[4][(k >> 32) & 0xFF];
  ++t[5][(k >> 40) & 0xFF];
  ++t[6][(k >> 48) & 0xFF];
  ++t[7][(k >> 56) & 0xFF];
}

/// Four partial count tables, one per AVX2 lane. Consecutive keys land in
/// different tables, so runs of equal (or byte-sharing) values increment
/// four independent counters instead of serializing on one address through
/// the store-to-load forwarding path — the classic radix-histogram conflict
/// stall on duplicate-heavy and presorted data. Merged into `hist` before
/// the prefix-sum.
struct PartialTables {
  std::size_t t[4][8][256];
};

void MergePartials(const PartialTables& part, std::size_t (*hist)[256]) {
  for (int p = 0; p < 8; ++p) {
    for (int j = 0; j < 256; ++j) {
      hist[p][j] = part.t[0][p][j] + part.t[1][p][j] + part.t[2][p][j] +
                   part.t[3][p][j];
    }
  }
}

MRLQUANT_HOT void Avx2Histogram(const std::uint64_t* keys, std::size_t n,
                                std::size_t (*hist)[256]) {
  if (n < kPartialTableCutoff) {
    ScalarSortKernels().histogram(keys, n, hist);
    return;
  }
  PartialTables part;
  std::memset(&part, 0, sizeof(part));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    CountKey(part.t[0], keys[i]);
    CountKey(part.t[1], keys[i + 1]);
    CountKey(part.t[2], keys[i + 2]);
    CountKey(part.t[3], keys[i + 3]);
  }
  for (; i < n; ++i) CountKey(part.t[0], keys[i]);
  MergePartials(part, hist);
}

// The fused first pass of the radix engine: one sweep transforms 4 values
// per op and feeds the fresh keys straight into the per-lane partial
// tables while they are still in registers — the scalar path reads the
// data once for the transform and the key array again for the histogram.
MRLQUANT_HOT void Avx2TransformAndHistogram(const Value* in,
                                            std::uint64_t* out, std::size_t n,
                                            std::size_t (*hist)[256]) {
  if (n < kPartialTableCutoff) {
    Avx2TransformKeys(in, out, n);
    ScalarSortKernels().histogram(out, n, hist);
    return;
  }
  const __m256i sign = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ull));
  const __m256i zero = _mm256_setzero_si256();
  PartialTables part;
  std::memset(&part, 0, sizeof(part));
  alignas(32) std::uint64_t lane[4];
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i bits = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(in + i));
    const __m256i neg = _mm256_cmpgt_epi64(zero, bits);
    const __m256i key = _mm256_xor_si256(bits, _mm256_or_si256(neg, sign));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), key);
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane), key);
    CountKey(part.t[0], lane[0]);
    CountKey(part.t[1], lane[1]);
    CountKey(part.t[2], lane[2]);
    CountKey(part.t[3], lane[3]);
  }
  for (; i < n; ++i) {
    const std::uint64_t k = OrderedKeyFromValue(in[i]);
    out[i] = k;
    CountKey(part.t[0], k);
  }
  MergePartials(part, hist);
}

constexpr SortKernelOps kAvx2Ops = {
    Avx2TransformKeys,
    Avx2InverseKeys,
    Avx2TransformAndHistogram,
    Avx2Histogram,
};

bool HostHasAvx2() {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

}  // namespace

const SortKernelOps* Avx2SortKernelsOrNull() {
  return HostHasAvx2() ? &kAvx2Ops : nullptr;
}

}  // namespace simd
}  // namespace mrl

#else  // !defined(__AVX2__)

namespace mrl {
namespace simd {

// This build could not target AVX2 (non-x86 architecture or a compiler
// without -mavx2); the dispatch falls back to the scalar table.
const SortKernelOps* Avx2SortKernelsOrNull() { return nullptr; }

}  // namespace simd
}  // namespace mrl

#endif  // defined(__AVX2__)
