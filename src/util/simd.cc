#include "util/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "util/logging.h"
#include "util/sort.h"
#include "util/thread_annotations.h"

namespace mrl {
namespace simd {
namespace {

// ------------------------------------------------------------------ scalar
// The portable kernels — bit-for-bit the loops PR4 shipped inside
// util/sort.cc, now hoisted behind the dispatch table so they double as the
// differential references for the AVX2 lane (the SortValuesNaive pattern:
// the old code stays in the library and the new code must match it).

MRLQUANT_HOT void ScalarTransformKeys(const Value* in, std::uint64_t* out,
                                      std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = OrderedKeyFromValue(in[i]);
}

MRLQUANT_HOT void ScalarInverseKeys(const std::uint64_t* in, Value* out,
                                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = ValueFromOrderedKey(in[i]);
}

/// All eight byte histograms of keys[0..n) in one fused pass (one read of
/// the data instead of eight).
MRLQUANT_HOT void ScalarHistogram(const std::uint64_t* keys, std::size_t n,
                                  std::size_t (*hist)[256]) {
  std::memset(hist, 0, 8 * 256 * sizeof(hist[0][0]));
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = keys[i];
    ++hist[0][k & 0xFF];
    ++hist[1][(k >> 8) & 0xFF];
    ++hist[2][(k >> 16) & 0xFF];
    ++hist[3][(k >> 24) & 0xFF];
    ++hist[4][(k >> 32) & 0xFF];
    ++hist[5][(k >> 40) & 0xFF];
    ++hist[6][(k >> 48) & 0xFF];
    ++hist[7][(k >> 56) & 0xFF];
  }
}

MRLQUANT_HOT void ScalarTransformAndHistogram(const Value* in,
                                              std::uint64_t* out,
                                              std::size_t n,
                                              std::size_t (*hist)[256]) {
  ScalarTransformKeys(in, out, n);
  ScalarHistogram(out, n, hist);
}

constexpr SortKernelOps kScalarOps = {
    ScalarTransformKeys,
    ScalarInverseKeys,
    ScalarTransformAndHistogram,
    ScalarHistogram,
};

// ---------------------------------------------------------------- dispatch

bool ForceScalarFromEnv() {
  const char* env = std::getenv("MRLQUANT_FORCE_SCALAR");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

struct Resolved {
  DispatchPath path;
  const SortKernelOps* ops;
};

Resolved ResolveOnce() {
  if (ForceScalarFromEnv()) {
    return {DispatchPath::kForcedScalar, &kScalarOps};
  }
  const SortKernelOps* avx2 = Avx2SortKernelsOrNull();
  if (avx2 != nullptr) return {DispatchPath::kAvx2, avx2};
  return {DispatchPath::kScalar, &kScalarOps};
}

/// Dispatch state. Resolved lazily on first use (no static-init-order
/// dependence; getenv + cpuid are both async-signal-trivial) and then
/// immutable except through ForceDispatchForTesting. Two atomics instead
/// of one struct keeps hot-path reads a single relaxed pointer load; the
/// pair is only ever (path, matching table), so a torn *pair* read during
/// a test's force-swap can at worst mislabel a path name, never run a
/// kernel the host lacks.
std::atomic<const SortKernelOps*> g_active_ops{nullptr};
std::atomic<DispatchPath> g_active_path{DispatchPath::kScalar};

const SortKernelOps* ResolveAndPublish() {
  const Resolved r = ResolveOnce();
  g_active_path.store(r.path, std::memory_order_relaxed);
  g_active_ops.store(r.ops, std::memory_order_release);
  return r.ops;
}

}  // namespace

const char* DispatchPathName(DispatchPath path) {
  switch (path) {
    case DispatchPath::kScalar:
      return "scalar";
    case DispatchPath::kForcedScalar:
      return "forced-scalar";
    case DispatchPath::kAvx2:
      return "avx2";
  }
  return "unknown";
}

DispatchPath ActivePath() {
  if (g_active_ops.load(std::memory_order_acquire) == nullptr) {
    ResolveAndPublish();
  }
  return g_active_path.load(std::memory_order_relaxed);
}

const char* ActivePathName() { return DispatchPathName(ActivePath()); }

std::string CpuFeatureString() {
#if (defined(__GNUC__) || defined(__clang__)) && \
    (defined(__x86_64__) || defined(__i386__))
  std::string features;
  const auto append = [&features](const char* name, bool present) {
    if (!present) return;
    if (!features.empty()) features += ',';
    features += name;
  };
  append("sse4.2", __builtin_cpu_supports("sse4.2") != 0);
  append("avx", __builtin_cpu_supports("avx") != 0);
  append("avx2", __builtin_cpu_supports("avx2") != 0);
  append("avx512f", __builtin_cpu_supports("avx512f") != 0);
  return features.empty() ? "pre-sse4.2" : features;
#else
  return "portable";
#endif
}

const SortKernelOps& ActiveSortKernels() {
  const SortKernelOps* ops = g_active_ops.load(std::memory_order_acquire);
  if (ops == nullptr) ops = ResolveAndPublish();
  return *ops;
}

const SortKernelOps& ScalarSortKernels() { return kScalarOps; }

DispatchPath ForceDispatchForTesting(DispatchPath path) {
  const DispatchPath previous = ActivePath();
  const SortKernelOps* ops = &kScalarOps;
  if (path == DispatchPath::kAvx2) {
    ops = Avx2SortKernelsOrNull();
    MRL_CHECK(ops != nullptr)
        << "ForceDispatchForTesting(kAvx2): host or build lacks AVX2";
  }
  g_active_path.store(path, std::memory_order_relaxed);
  g_active_ops.store(ops, std::memory_order_release);
  return previous;
}

}  // namespace simd
}  // namespace mrl
