#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace mrl {

Random::Random(std::uint64_t seed) {
  std::uint64_t sm = seed;
  std::uint64_t initstate = SplitMix64(&sm);
  std::uint64_t initseq = SplitMix64(&sm);
  state_ = 0U;
  inc_ = (initseq << 1u) | 1u;
  NextUint32();
  state_ += initstate;
  NextUint32();
}

std::uint32_t Random::NextUint32() {
  std::uint64_t oldstate = state_;
  state_ = oldstate * 6364136223846793005ULL + inc_;
  std::uint32_t xorshifted =
      static_cast<std::uint32_t>(((oldstate >> 18u) ^ oldstate) >> 27u);
  std::uint32_t rot = static_cast<std::uint32_t>(oldstate >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint64_t Random::NextUint64() {
  return (static_cast<std::uint64_t>(NextUint32()) << 32) | NextUint32();
}

std::uint64_t Random::UniformUint64(std::uint64_t n) {
  MRL_DCHECK_GT(n, 0u);
  // Lemire's nearly-divisionless method, 64-bit variant with rejection.
  while (true) {
    std::uint64_t x = NextUint64();
    // 128-bit multiply-high.
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    std::uint64_t lo = static_cast<std::uint64_t>(m);
    if (lo >= n || lo >= (0ULL - n) % n) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

double Random::UniformDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Random::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Random::Gaussian() {
  // Box–Muller; reject u1 == 0 to keep log() finite.
  double u1;
  do {
    u1 = UniformDouble();
  } while (u1 == 0.0);
  double u2 = UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

double Random::Exponential(double lambda) {
  MRL_DCHECK_GT(lambda, 0.0);
  double u;
  do {
    u = UniformDouble();
  } while (u == 0.0);
  return -std::log(u) / lambda;
}

Random Random::Fork() { return Random(NextUint64()); }

}  // namespace mrl
