#ifndef MRLQUANT_UTIL_AUDIT_H_
#define MRLQUANT_UTIL_AUDIT_H_

#include <cstdint>

#include "util/status.h"
#include "util/types.h"

namespace mrl {

class Buffer;
class CollapseFramework;

/// Machine-checked statements of the invariants the MRL99 guarantee rests
/// on. Every checker returns OK or an InvalidArgument Status naming the
/// violated invariant; none of them mutate anything. They are compiled in
/// all build modes (so tests can exercise them directly), but the sketches
/// only *call* them when the library is built with -DMRLQUANT_AUDIT=ON
/// (see the MRL_AUDIT macro below), because a full audit after every
/// New/Collapse/Output round costs O(b*k) per round.
///
/// The checkers are deliberately redundant with the CHECKs inside Buffer
/// and Collapse: those fire at the instant a single operation misbehaves,
/// while the auditor re-derives the *global* state legality from scratch
/// after each round, so a bug that corrupts state through a legal-looking
/// sequence of operations is still caught at the next audit point.
namespace audit {

/// Single-buffer legality (the Buffer class invariants, §3):
///  * kEmpty   => size == 0, weight == 0
///  * kFilling => size < capacity
///  * kFull    => size == capacity, weight >= 1, level >= 0, values sorted
Status CheckBuffer(const Buffer& buffer, std::size_t index);

/// Whole-pool legality: every buffer passes CheckBuffer, at most one buffer
/// is kFilling, usable_buffers is in [1, b], slots past usable_buffers are
/// empty, and the tree counters cover the pool (stats.max_level is >= the
/// level of every buffer; leaves_created >= num_collapses' inputs demand).
Status CheckFramework(const CollapseFramework& framework);

/// Local conservation across one Collapse round: the pool's total full
/// weight (sum of weight * entries over full buffers) must be identical
/// before and after, because the output buffer's weight is the sum of its
/// inputs' weights over the same k entries (§3.2).
Status CheckCollapseConservation(Weight full_weight_before,
                                 Weight full_weight_after);

/// Weight conservation (Lemma 4 bookkeeping): the total weight held by a
/// sketch -- full buffers plus the partial buffer plus the sampler's
/// in-flight block -- must equal the number of consumed elements exactly.
/// The block sampler never silently discards: a block's non-picked
/// elements are represented by the survivor's weight, and an open block by
/// its candidate weighted pending_count, so `held == consumed` with no
/// drift term.
Status CheckWeightConservation(Weight held, std::uint64_t consumed);

/// Tree-height budget for the unknown-N algorithm (Eq. 3 / §3.7): the
/// sampling rate doubles each time the tree grows a level past h, so at
/// every audit point rate == 2^i implies max_level <= h + i. Also checks
/// that the rate is a power of two (the only rates §3.7 can produce).
Status CheckUnknownNHeight(const CollapseFramework& framework, int h,
                           Weight sampling_rate);

/// Tree-height budget for the known-N algorithm (Eq. 2): the solver sizes
/// (b, k, h) so the tree consuming ceil(n / rate) elements stays within
/// height h. Only meaningful while count <= n and for solver-produced
/// parameters (explicit caller parameters carry no such promise).
Status CheckKnownNHeight(const CollapseFramework& framework, int h);

/// NaN boundary contract (docs/algorithm.md §8): the comparison-based
/// sketches are undefined over NaN, so `Add`/`AddBatch` trap any NaN that
/// would enter sketch state with an MRL_CHECK, and MRLQUANT_AUDIT builds
/// additionally scan every ingested span with this checker — catching
/// NaNs the sampler would have discarded before they were drawn.
Status CheckNoNaN(const Value* data, std::size_t n);

/// Coordinator staging buffer (B0, §6) legality after an ingest round: the
/// staging area holds fewer than k elements (anything more must have been
/// promoted into the tree) and carries a weight >= 1 exactly when
/// non-empty. Weight conservation across reconciliation is *expected*, not
/// exact (Bernoulli subsampling of the lighter buffer), so it is
/// deliberately not audited here.
Status CheckCoordinatorStaging(std::size_t staging_size, std::size_t k,
                               Weight staging_weight);

}  // namespace audit
}  // namespace mrl

/// Audit hook: evaluates a `Status`-returning audit expression and aborts
/// with the violation message when it fails. Compiles to nothing (the
/// expression is not evaluated) unless the build defines MRLQUANT_AUDIT.
#ifdef MRLQUANT_AUDIT
#include "util/logging.h"
#define MRL_AUDIT(expr)                                          \
  do {                                                           \
    const ::mrl::Status mrl_audit_status = (expr);               \
    MRL_CHECK(mrl_audit_status.ok())                             \
        << "invariant audit failed: " << mrl_audit_status;       \
  } while (false)
#else
#define MRL_AUDIT(expr) \
  do {                  \
  } while (false)
#endif

#endif  // MRLQUANT_UTIL_AUDIT_H_
