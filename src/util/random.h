#ifndef MRLQUANT_UTIL_RANDOM_H_
#define MRLQUANT_UTIL_RANDOM_H_

#include <cstdint>

namespace mrl {

/// SplitMix64 — used to expand a user seed into generator state. Public
/// domain construction (Steele, Lea, Flood 2014).
inline std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Deterministic, seedable PRNG (PCG32, O'Neill 2014; public domain
/// reference construction). All randomized components of the library draw
/// from this type so experiments are exactly reproducible from a seed.
class Random {
 public:
  /// Seeds the generator; equal seeds produce equal streams.
  explicit Random(std::uint64_t seed = 0x853C49E6748FEA9BULL);

  /// 32 uniform bits.
  std::uint32_t NextUint32();

  /// 64 uniform bits.
  std::uint64_t NextUint64();

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (Lemire's method).
  std::uint64_t UniformUint64(std::uint64_t n);

  /// Uniform double in [0, 1) with 53 random bits.
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box–Muller (no state cached; two uniforms/draw).
  double Gaussian();

  /// Exponential with rate lambda > 0.
  double Exponential(double lambda);

  /// Creates an independent generator derived from this one; convenient for
  /// giving each parallel worker its own stream.
  Random Fork();

  /// Opaque generator state for checkpointing (util/serde.h consumers).
  struct State {
    std::uint64_t state;
    std::uint64_t inc;
  };
  State SaveState() const { return {state_, inc_}; }
  static Random FromState(const State& s) {
    Random r(0);
    r.state_ = s.state;
    r.inc_ = s.inc | 1u;  // the increment must be odd for PCG32
    return r;
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace mrl

#endif  // MRLQUANT_UTIL_RANDOM_H_
