#include "app/splitters.h"

#include <algorithm>
#include <cmath>

#include "core/multi_quantile.h"
#include "core/parallel.h"
#include "util/sort.h"

namespace mrl {

namespace {

Status ValidateSplitterOptions(const SplitterOptions& options) {
  if (options.num_parts < 2) {
    return Status::InvalidArgument("num_parts must be >= 2");
  }
  return Status::OK();
}

std::vector<double> SplitterPhis(int num_parts) {
  std::vector<double> phis;
  phis.reserve(static_cast<std::size_t>(num_parts) - 1);
  for (int i = 1; i < num_parts; ++i) {
    phis.push_back(static_cast<double>(i) / static_cast<double>(num_parts));
  }
  return phis;
}

}  // namespace

Result<std::vector<Value>> ComputeSplittersSequential(
    const std::vector<Value>& data, const SplitterOptions& options) {
  MRL_RETURN_IF_ERROR(ValidateSplitterOptions(options));
  MultiQuantileSketch::Options sketch_options;
  sketch_options.eps = options.eps;
  sketch_options.delta = options.delta;
  sketch_options.num_quantiles =
      static_cast<std::uint64_t>(options.num_parts) - 1;
  sketch_options.seed = options.seed;
  Result<MultiQuantileSketch> sketch =
      MultiQuantileSketch::Create(sketch_options);
  if (!sketch.ok()) return sketch.status();
  sketch.value().AddAll(data);
  return sketch.value().QueryMany(SplitterPhis(options.num_parts));
}

Result<std::vector<Value>> ComputeSplittersParallel(
    const std::vector<std::vector<Value>>& shards,
    const SplitterOptions& options) {
  MRL_RETURN_IF_ERROR(ValidateSplitterOptions(options));
  ParallelOptions parallel_options;
  parallel_options.eps = options.eps;
  // Union bound over the num_parts - 1 simultaneous splitters.
  parallel_options.delta =
      options.delta / static_cast<double>(options.num_parts - 1);
  parallel_options.num_workers = static_cast<int>(shards.size());
  parallel_options.seed = options.seed;
  return ParallelQuantiles(shards, parallel_options,
                           SplitterPhis(options.num_parts));
}

double MaxPartitionSkew(const std::vector<Value>& data,
                        const std::vector<Value>& splitters) {
  if (data.empty()) return 0.0;
  std::vector<Value> sorted_splitters = splitters;
  SortValues(sorted_splitters.data(), sorted_splitters.size());
  const std::size_t parts = sorted_splitters.size() + 1;
  std::vector<std::uint64_t> counts(parts, 0);
  for (Value v : data) {
    // Partition i receives v iff splitter[i-1] < v <= splitter[i].
    const std::size_t idx = static_cast<std::size_t>(
        std::lower_bound(sorted_splitters.begin(), sorted_splitters.end(), v)
        - sorted_splitters.begin());
    ++counts[idx];
  }
  const double ideal =
      static_cast<double>(data.size()) / static_cast<double>(parts);
  double max_skew = 0.0;
  for (std::uint64_t c : counts) {
    max_skew = std::max(
        max_skew, std::abs(static_cast<double>(c) - ideal) /
                      static_cast<double>(data.size()));
  }
  return max_skew;
}

}  // namespace mrl
