#include "app/equidepth_histogram.h"

#include <algorithm>

namespace mrl {

Result<EquiDepthHistogram> EquiDepthHistogram::Create(const Options& options) {
  if (options.num_buckets < 2) {
    return Status::InvalidArgument("num_buckets must be >= 2");
  }
  double eps = options.eps;
  if (eps == 0.0) {
    eps = 1.0 / (10.0 * static_cast<double>(options.num_buckets));
  }
  MultiQuantileSketch::Options sketch_options;
  sketch_options.eps = eps;
  sketch_options.delta = options.delta;
  sketch_options.num_quantiles = options.num_buckets - 1;
  sketch_options.seed = options.seed;
  Result<MultiQuantileSketch> sketch =
      MultiQuantileSketch::Create(sketch_options);
  if (!sketch.ok()) return sketch.status();
  return EquiDepthHistogram(std::move(sketch).value(), options.num_buckets);
}

void EquiDepthHistogram::Add(Value v) {
  if (sketch_.count() == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  sketch_.Add(v);
}

void EquiDepthHistogram::AddBatch(std::span<const Value> values) {
  if (values.empty()) return;
  auto [lo, hi] = std::minmax_element(values.begin(), values.end());
  if (sketch_.count() == 0) {
    min_ = *lo;
    max_ = *hi;
  } else {
    min_ = std::min(min_, *lo);
    max_ = std::max(max_, *hi);
  }
  sketch_.AddBatch(values);
}

Result<std::vector<Value>> EquiDepthHistogram::Boundaries() const {
  std::vector<double> phis;
  phis.reserve(num_buckets_ - 1);
  for (std::size_t i = 1; i < num_buckets_; ++i) {
    phis.push_back(static_cast<double>(i) /
                   static_cast<double>(num_buckets_));
  }
  return sketch_.QueryMany(phis);
}

Result<std::vector<EquiDepthHistogram::Bucket>> EquiDepthHistogram::Buckets()
    const {
  Result<std::vector<Value>> boundaries = Boundaries();
  if (!boundaries.ok()) return boundaries.status();
  const std::vector<Value>& bs = boundaries.value();
  const std::uint64_t depth =
      count() / static_cast<std::uint64_t>(num_buckets_);
  std::vector<Bucket> buckets;
  buckets.reserve(num_buckets_);
  Value lo = min_;
  for (std::size_t i = 0; i < num_buckets_; ++i) {
    const Value hi = (i + 1 < num_buckets_) ? bs[i] : max_;
    buckets.push_back({lo, hi, depth});
    lo = hi;
  }
  return buckets;
}

}  // namespace mrl
