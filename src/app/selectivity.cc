#include "app/selectivity.h"

namespace mrl {

Result<SelectivityEstimator> SelectivityEstimator::Create(
    const Options& options) {
  UnknownNOptions sketch_options;
  sketch_options.eps = options.eps;
  // Two rank lookups per range predicate share the failure budget.
  sketch_options.delta = options.delta / 2.0;
  sketch_options.seed = options.seed;
  Result<UnknownNSketch> sketch = UnknownNSketch::Create(sketch_options);
  if (!sketch.ok()) return sketch.status();
  return SelectivityEstimator(std::move(sketch).value());
}

Result<double> SelectivityEstimator::Range(Value lo, Value hi) const {
  if (lo > hi) {
    return Status::InvalidArgument("range requires lo <= hi");
  }
  Result<double> upper = sketch_.RankOf(hi);
  if (!upper.ok()) return upper.status();
  Result<double> lower = sketch_.RankOf(lo);
  if (!lower.ok()) return lower.status();
  double sel = upper.value() - lower.value();
  if (sel < 0.0) sel = 0.0;  // estimates are each noisy; clamp
  return sel;
}

}  // namespace mrl
