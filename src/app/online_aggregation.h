#ifndef MRLQUANT_APP_ONLINE_AGGREGATION_H_
#define MRLQUANT_APP_ONLINE_AGGREGATION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/unknown_n.h"
#include "util/status.h"
#include "util/types.h"

namespace mrl {

/// Online aggregation (Section 1.5, [Hel97]): because Output never destroys
/// sketch state and the unknown-N guarantee holds for *every prefix*, the
/// sketch can drive a progress display that refines quantile estimates
/// while the scan is still running. This wrapper records a snapshot of the
/// tracked quantiles every `report_every` elements.
class OnlineAggregator {
 public:
  struct Options {
    double eps = 0.01;
    double delta = 1e-4;
    std::vector<double> tracked_phis = {0.25, 0.5, 0.75};
    std::uint64_t report_every = 10000;
    std::uint64_t seed = 1;
  };

  struct ProgressSnapshot {
    std::uint64_t rows_seen;
    std::vector<Value> estimates;  ///< aligned with tracked_phis
  };

  static Result<OnlineAggregator> Create(const Options& options);

  OnlineAggregator(OnlineAggregator&&) = default;
  OnlineAggregator& operator=(OnlineAggregator&&) = default;

  /// Consumes one row; records a snapshot at each reporting boundary.
  void Add(Value v);

  /// Consumes a batch of rows through the sketch's batch ingestion path,
  /// splitting it internally at reporting boundaries so the recorded
  /// history is identical to per-row Add.
  void AddBatch(std::span<const Value> values);

  std::uint64_t count() const { return sketch_.count(); }

  /// Snapshots taken so far, oldest first.
  const std::vector<ProgressSnapshot>& history() const { return history_; }

  /// Current estimates of the tracked quantiles.
  Result<std::vector<Value>> Current() const {
    return sketch_.QueryMany(options_.tracked_phis);
  }

 private:
  OnlineAggregator(UnknownNSketch sketch, Options options)
      : sketch_(std::move(sketch)), options_(std::move(options)) {}

  /// Records a snapshot when the row count sits on a reporting boundary.
  void MaybeSnapshot();

  UnknownNSketch sketch_;
  Options options_;
  std::vector<ProgressSnapshot> history_;
};

}  // namespace mrl

#endif  // MRLQUANT_APP_ONLINE_AGGREGATION_H_
