#ifndef MRLQUANT_APP_SELECTIVITY_H_
#define MRLQUANT_APP_SELECTIVITY_H_

#include <cstdint>
#include <span>

#include "core/unknown_n.h"
#include "util/status.h"
#include "util/types.h"

namespace mrl {

/// Selectivity estimation for simple range predicates over a column
/// (Section 1.1, [SALP79]): a query optimizer maintains this summary over
/// the column in one pass and answers "what fraction of rows satisfies
/// v <= c" / "lo < v <= hi" to within eps (absolute), with probability
/// >= 1 - delta per estimate — without knowing the table size up front,
/// so the summary stays valid as the table grows.
class SelectivityEstimator {
 public:
  struct Options {
    double eps = 0.01;
    double delta = 1e-4;
    std::uint64_t seed = 1;
  };

  static Result<SelectivityEstimator> Create(const Options& options);

  SelectivityEstimator(SelectivityEstimator&&) = default;
  SelectivityEstimator& operator=(SelectivityEstimator&&) = default;

  /// Inserts one row value.
  void Add(Value v) { sketch_.Add(v); }

  /// Inserts a batch of row values via the sketch's batch ingestion path;
  /// state-identical to per-row Add.
  void AddBatch(std::span<const Value> values) { sketch_.AddBatch(values); }

  std::uint64_t count() const { return sketch_.count(); }

  /// Estimated selectivity of the predicate (column <= c), in [0, 1].
  Result<double> LessOrEqual(Value c) const { return sketch_.RankOf(c); }

  /// Estimated selectivity of (lo < column <= hi). Requires lo <= hi.
  /// The absolute error is at most 2*eps (one eps per endpoint).
  Result<double> Range(Value lo, Value hi) const;

  std::uint64_t MemoryElements() const { return sketch_.MemoryElements(); }

 private:
  explicit SelectivityEstimator(UnknownNSketch sketch)
      : sketch_(std::move(sketch)) {}

  UnknownNSketch sketch_;
};

}  // namespace mrl

#endif  // MRLQUANT_APP_SELECTIVITY_H_
