#include "app/online_aggregation.h"

#include <algorithm>

namespace mrl {

Result<OnlineAggregator> OnlineAggregator::Create(const Options& options) {
  if (options.tracked_phis.empty()) {
    return Status::InvalidArgument("tracked_phis must not be empty");
  }
  if (options.report_every == 0) {
    return Status::InvalidArgument("report_every must be >= 1");
  }
  for (double phi : options.tracked_phis) {
    if (!(phi > 0.0) || phi > 1.0) {
      return Status::InvalidArgument("tracked phis must be in (0, 1]");
    }
  }
  UnknownNOptions sketch_options;
  sketch_options.eps = options.eps;
  // Union bound: every snapshot reports |tracked_phis| estimates; the
  // per-prefix guarantee already covers all prefixes jointly, so only the
  // quantile count divides delta.
  sketch_options.delta =
      options.delta / static_cast<double>(options.tracked_phis.size());
  sketch_options.seed = options.seed;
  Result<UnknownNSketch> sketch = UnknownNSketch::Create(sketch_options);
  if (!sketch.ok()) return sketch.status();
  return OnlineAggregator(std::move(sketch).value(), options);
}

void OnlineAggregator::Add(Value v) {
  sketch_.Add(v);
  MaybeSnapshot();
}

void OnlineAggregator::AddBatch(std::span<const Value> values) {
  while (!values.empty()) {
    // Stop at the next reporting boundary so every snapshot lands at the
    // exact row count the element-wise path would report at.
    const std::uint64_t until_report =
        options_.report_every - (sketch_.count() % options_.report_every);
    const std::size_t take = static_cast<std::size_t>(
        std::min<std::uint64_t>(values.size(), until_report));
    sketch_.AddBatch(values.first(take));
    MaybeSnapshot();
    values = values.subspan(take);
  }
}

void OnlineAggregator::MaybeSnapshot() {
  if (sketch_.count() % options_.report_every == 0) {
    Result<std::vector<Value>> estimates =
        sketch_.QueryMany(options_.tracked_phis);
    if (estimates.ok()) {
      history_.push_back({sketch_.count(), std::move(estimates).value()});
    }
  }
}

}  // namespace mrl
