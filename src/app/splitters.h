#ifndef MRLQUANT_APP_SPLITTERS_H_
#define MRLQUANT_APP_SPLITTERS_H_

#include <cstdint>
#include <vector>

#include "util/status.h"
#include "util/types.h"

namespace mrl {

/// Splitter computation for value-range partitioning (Section 1.1: DB2 /
/// Informix data partitioning, distributed sorting [DNS91]): values v with
/// splitter[i-1] < v <= splitter[i] go to partition i, yielding
/// `num_parts` approximately equal parts.
struct SplitterOptions {
  int num_parts = 8;      ///< >= 2
  double eps = 0.001;     ///< rank error per splitter, fraction of N
  double delta = 1e-4;    ///< joint failure probability over all splitters
  std::uint64_t seed = 1;
};

/// Single-node: one pass of the unknown-N sketch over `data`.
Result<std::vector<Value>> ComputeSplittersSequential(
    const std::vector<Value>& data, const SplitterOptions& options);

/// Multi-node: one sketch per shard on its own thread, merged by the
/// Section 6 coordinator.
Result<std::vector<Value>> ComputeSplittersParallel(
    const std::vector<std::vector<Value>>& shards,
    const SplitterOptions& options);

/// Quality metric: the maximum over partitions of |actual_size -
/// ideal_size| / N, where the partitions are induced by `splitters` over
/// `data`. A perfect split scores 0; eps-approximate splitters score at
/// most about 2*eps.
double MaxPartitionSkew(const std::vector<Value>& data,
                        const std::vector<Value>& splitters);

}  // namespace mrl

#endif  // MRLQUANT_APP_SPLITTERS_H_
