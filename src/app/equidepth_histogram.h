#ifndef MRLQUANT_APP_EQUIDEPTH_HISTOGRAM_H_
#define MRLQUANT_APP_EQUIDEPTH_HISTOGRAM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/multi_quantile.h"
#include "util/status.h"
#include "util/types.h"

namespace mrl {

/// Approximate equi-depth histogram maintenance over a dynamically growing
/// table (Sections 1.1–1.2): the bucket boundaries are the i/p-quantiles
/// for i = 1..p-1, each maintained eps-approximately with joint probability
/// >= 1 - delta, accurate at all times irrespective of the current table
/// size — which is exactly why the unknown-N algorithm is the right engine.
class EquiDepthHistogram {
 public:
  struct Options {
    std::size_t num_buckets = 10;  ///< p; must be >= 2
    /// Per-boundary rank error as a fraction of the table size. Defaults to
    /// a tenth of the bucket depth so buckets stay visibly equi-depth.
    double eps = 0.0;  ///< 0 means 1 / (10 * num_buckets)
    double delta = 1e-4;
    std::uint64_t seed = 1;
  };

  static Result<EquiDepthHistogram> Create(const Options& options);

  EquiDepthHistogram(EquiDepthHistogram&&) = default;
  EquiDepthHistogram& operator=(EquiDepthHistogram&&) = default;

  /// Inserts one row value.
  void Add(Value v);

  /// Inserts a batch of row values (one min/max scan plus the sketch's
  /// batch ingestion path); state-identical to per-row Add.
  void AddBatch(std::span<const Value> values);

  std::uint64_t count() const { return sketch_.count(); }

  /// A materialized histogram: p buckets of (approximately) equal row
  /// counts.
  struct Bucket {
    Value lo;               ///< inclusive lower value bound
    Value hi;               ///< upper value bound (inclusive for the last)
    std::uint64_t depth;    ///< approximate rows in the bucket
  };

  /// The p-1 interior boundaries (i/p-quantiles).
  Result<std::vector<Value>> Boundaries() const;

  /// Boundaries plus the exactly-tracked min/max, as p buckets.
  Result<std::vector<Bucket>> Buckets() const;

  std::uint64_t MemoryElements() const { return sketch_.MemoryElements(); }
  std::size_t num_buckets() const { return num_buckets_; }

 private:
  EquiDepthHistogram(MultiQuantileSketch sketch, std::size_t num_buckets)
      : sketch_(std::move(sketch)), num_buckets_(num_buckets) {}

  MultiQuantileSketch sketch_;
  std::size_t num_buckets_;
  Value min_ = 0;
  Value max_ = 0;
};

}  // namespace mrl

#endif  // MRLQUANT_APP_EQUIDEPTH_HISTOGRAM_H_
