#include "app/group_by.h"

#include "core/params.h"
#include "util/logging.h"

namespace mrl {

Result<GroupByQuantiles> GroupByQuantiles::Create(const Options& options) {
  if (options.max_groups == 0) {
    return Status::InvalidArgument("max_groups must be >= 1");
  }
  // Solve (b, k, h, alpha) once; every group's sketch shares them.
  Result<UnknownNParams> params = SolveUnknownN(options.eps, options.delta);
  if (!params.ok()) return params.status();
  return GroupByQuantiles(options, params.value());
}

UnknownNSketch* GroupByQuantiles::FindOrCreate(std::int64_t group_key) {
  auto it = groups_.find(group_key);
  if (it == groups_.end()) {
    if (groups_.size() >= options_.max_groups) return nullptr;
    UnknownNOptions sketch_options;
    sketch_options.params = params_;
    sketch_options.seed = seeder_.NextUint64();
    Result<UnknownNSketch> sketch = UnknownNSketch::Create(sketch_options);
    MRL_CHECK(sketch.ok()) << sketch.status().ToString();
    it = groups_.emplace(group_key, std::move(sketch).value()).first;
  }
  return &it->second;
}

void GroupByQuantiles::Add(std::int64_t group_key, Value v) {
  UnknownNSketch* sketch = FindOrCreate(group_key);
  if (sketch == nullptr) {
    ++dropped_rows_;
    return;
  }
  sketch->Add(v);
}

void GroupByQuantiles::AddBatch(std::int64_t group_key,
                                std::span<const Value> values) {
  if (values.empty()) return;
  UnknownNSketch* sketch = FindOrCreate(group_key);
  if (sketch == nullptr) {
    dropped_rows_ += values.size();
    return;
  }
  sketch->AddBatch(values);
}

std::uint64_t GroupByQuantiles::GroupCount(std::int64_t group_key) const {
  auto it = groups_.find(group_key);
  return it == groups_.end() ? 0 : it->second.count();
}

Result<Value> GroupByQuantiles::Query(std::int64_t group_key,
                                      double phi) const {
  auto it = groups_.find(group_key);
  if (it == groups_.end()) {
    return Status::NotFound("no such group: " + std::to_string(group_key));
  }
  return it->second.Query(phi);
}

std::vector<std::int64_t> GroupByQuantiles::Keys() const {
  std::vector<std::int64_t> keys;
  keys.reserve(groups_.size());
  for (const auto& [key, sketch] : groups_) keys.push_back(key);
  return keys;
}

std::uint64_t GroupByQuantiles::MemoryElements() const {
  return static_cast<std::uint64_t>(groups_.size()) *
         params_.MemoryElements();
}

}  // namespace mrl
