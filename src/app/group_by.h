#ifndef MRLQUANT_APP_GROUP_BY_H_
#define MRLQUANT_APP_GROUP_BY_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/unknown_n.h"
#include "util/status.h"
#include "util/types.h"

namespace mrl {

/// Per-group quantile maintenance, the Group By scenario of Section 1.3:
/// aggregation plans compute many quantile aggregates concurrently, which
/// is exactly why the per-sketch memory footprint must be small and
/// predictable. One UnknownNSketch per distinct group key, created lazily
/// on first touch, each with an independent deterministic random stream.
///
/// Example:
///   GroupByQuantiles gb = ...;
///   for (auto& row : scan) gb.Add(row.region_id, row.sale_amount);
///   Result<Value> p95_emea = gb.Query(kEmea, 0.95);
class GroupByQuantiles {
 public:
  struct Options {
    double eps = 0.01;
    double delta = 1e-4;
    std::uint64_t seed = 1;
    /// Safety valve for runaway cardinality: Add to a brand-new key beyond
    /// this many groups is ignored and counted in dropped_groups().
    std::size_t max_groups = 1 << 20;
  };

  static Result<GroupByQuantiles> Create(const Options& options);

  GroupByQuantiles(GroupByQuantiles&&) = default;
  GroupByQuantiles& operator=(GroupByQuantiles&&) = default;

  /// Routes one row to its group's sketch.
  void Add(std::int64_t group_key, Value v);

  /// Routes a run of rows that share a group key (the common shape after a
  /// sort or partition) to that group's sketch in one batch; one hash
  /// lookup for the whole run, state-identical to per-row Add.
  void AddBatch(std::int64_t group_key, std::span<const Value> values);

  /// Number of distinct groups currently tracked.
  std::size_t num_groups() const { return groups_.size(); }

  /// Rows whose (new) group was dropped due to the max_groups cap.
  std::uint64_t dropped_rows() const { return dropped_rows_; }

  /// Rows consumed by a given group; 0 for unknown keys.
  std::uint64_t GroupCount(std::int64_t group_key) const;

  /// The phi-quantile of one group. NotFound for unseen keys.
  Result<Value> Query(std::int64_t group_key, double phi) const;

  /// All group keys, unordered.
  std::vector<std::int64_t> Keys() const;

  /// Total memory across groups — grows linearly in the number of groups
  /// and in nothing else, the property Section 1.3 asks for.
  std::uint64_t MemoryElements() const;

 private:
  /// The group's sketch, created lazily; nullptr when a new group would
  /// exceed max_groups (the caller accounts for the dropped rows).
  UnknownNSketch* FindOrCreate(std::int64_t group_key);

  GroupByQuantiles(Options options, UnknownNParams params)
      : options_(std::move(options)),
        params_(params),
        seeder_(options_.seed) {}

  Options options_;
  UnknownNParams params_;  ///< solved once, shared by every group's sketch
  Random seeder_;
  std::unordered_map<std::int64_t, UnknownNSketch> groups_;
  std::uint64_t dropped_rows_ = 0;
};

}  // namespace mrl

#endif  // MRLQUANT_APP_GROUP_BY_H_
